package forkbase_test

// Chunk-granular transfer over the wire: the delta-sync acceptance
// criterion (re-reading a 1%-edited object moves <=10% of its bytes),
// torture tests for the chunk ops' failure modes, the negotiation
// shields' GC interplay across disconnects, and the fallback when a
// server does not offer the feature.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	forkbase "forkbase"
	"forkbase/internal/chunk"
	"forkbase/internal/wire"
)

// readDoc fetches key over chunk sync and returns its full contents.
func readDoc(t *testing.T, rc *forkbase.RemoteStore, key string) []byte {
	t.Helper()
	ctx := context.Background()
	o, err := rc.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rc.Value(ctx, key, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := forkbase.AsBlob(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// spliceAt returns data with ins spliced over len(ins) bytes at off —
// the expected image of a Blob.Splice with del == len(ins).
func spliceAt(data, ins []byte, off int) []byte {
	out := append([]byte{}, data[:off]...)
	out = append(out, ins...)
	return append(out, data[off+len(ins):]...)
}

// TestChunkSyncDeltaBytesOnWire is the subsystem's reason to exist,
// measured at the socket: after a 1% edit, re-reading the object moves
// at most 10% of its bytes over the wire, and re-writing the client's
// own 1% edit uploads at most 10% too.
func TestChunkSyncDeltaBytesOnWire(t *testing.T) {
	db := forkbase.Open()
	addr, _ := startServer(t, db, forkbase.ServerOptions{})
	rc, err := forkbase.Dial(addr, forkbase.RemoteConfig{
		ChunkSync:     true,
		ChunkCacheDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ctx := context.Background()

	rnd := rand.New(rand.NewSource(42))
	data := make([]byte, 4<<20)
	rnd.Read(data)
	if _, err := db.Put(ctx, "doc", forkbase.NewBlob(data)); err != nil {
		t.Fatal(err)
	}

	// Cold read: the whole object must cross the wire once.
	base := rc.WireStats().BytesReceived
	if got := readDoc(t, rc, "doc"); !bytes.Equal(got, data) {
		t.Fatal("cold read corrupted the object")
	}
	cold := rc.WireStats().BytesReceived - base
	if cold < int64(len(data)) {
		t.Fatalf("cold read of %d bytes moved only %d on the wire", len(data), cold)
	}

	// A 1% edit lands on the server behind the client's back.
	edit := make([]byte, len(data)/100)
	rnd.Read(edit)
	o, err := db.Get(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.Value(ctx, "doc", o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := forkbase.AsBlob(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Splice(uint64(len(data)/2), uint64(len(edit)), edit); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put(ctx, "doc", b); err != nil {
		t.Fatal(err)
	}
	edited := spliceAt(data, edit, len(data)/2)

	// Warm re-read: only the delta may cross.
	base = rc.WireStats().BytesReceived
	if got := readDoc(t, rc, "doc"); !bytes.Equal(got, edited) {
		t.Fatal("re-read did not observe the edit")
	}
	delta := rc.WireStats().BytesReceived - base
	if limit := int64(len(data)) / 10; delta > limit {
		t.Fatalf("1%% edit re-read moved %d of %d bytes on the wire (limit %d)", delta, len(data), limit)
	}

	// Write direction: the client edits 1% and Puts; the negotiation
	// must skip everything the server already holds.
	o2, err := rc.Get(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := rc.Value(ctx, "doc", o2)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := forkbase.AsBlob(v2)
	if err != nil {
		t.Fatal(err)
	}
	edit2 := make([]byte, len(data)/100)
	rnd.Read(edit2)
	if err := b2.Splice(uint64(len(data)/4), uint64(len(edit2)), edit2); err != nil {
		t.Fatal(err)
	}
	sentBase := rc.WireStats().BytesSent
	uid, err := rc.Put(ctx, "doc", b2)
	if err != nil {
		t.Fatal(err)
	}
	sent := rc.WireStats().BytesSent - sentBase
	if limit := int64(len(data)) / 10; sent > limit {
		t.Fatalf("1%% edit put sent %d of %d bytes on the wire (limit %d)", sent, len(data), limit)
	}
	// The server materializes exactly the client's image.
	so, err := db.Get(ctx, "doc")
	if err != nil || so.UID() != uid {
		t.Fatalf("server head: %v (uid match %v)", err, so.UID() == uid)
	}
	sb, err := db.BlobOf(so)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sb.Bytes()
	if err != nil || !bytes.Equal(got, spliceAt(edited, edit2, len(data)/4)) {
		t.Fatalf("server content diverged after delta put: %v", err)
	}
}

// TestChunkSyncCachePersistsAcrossDials: a fresh client pointed at the
// same cache directory re-reads an unchanged object without re-pulling
// its chunks.
func TestChunkSyncCachePersistsAcrossDials(t *testing.T) {
	db := forkbase.Open()
	addr, _ := startServer(t, db, forkbase.ServerOptions{})
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(7))
	data := make([]byte, 1<<20)
	rnd.Read(data)
	if _, err := db.Put(ctx, "doc", forkbase.NewBlob(data)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rc1, err := forkbase.Dial(addr, forkbase.RemoteConfig{ChunkSync: true, ChunkCacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := readDoc(t, rc1, "doc"); !bytes.Equal(got, data) {
		t.Fatal("cold read corrupted the object")
	}
	rc1.Close()

	rc2, err := forkbase.Dial(addr, forkbase.RemoteConfig{ChunkSync: true, ChunkCacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	base := rc2.WireStats().BytesReceived
	if got := readDoc(t, rc2, "doc"); !bytes.Equal(got, data) {
		t.Fatal("warm read corrupted the object")
	}
	if moved := rc2.WireStats().BytesReceived - base; moved > int64(len(data))/10 {
		t.Fatalf("warm read against a persistent cache still moved %d bytes", moved)
	}
}

// TestChunkSyncColdMissHonorsCtx: a chunk-synced handle's lazy fetches
// are scoped by the context of the Value call that attached it. After
// the local cache loses the tree, reading the handle cold-misses over
// the wire — with the attach context live that refetch is transparent;
// cancelled, it must abort instead of riding an unbounded background
// request.
func TestChunkSyncColdMissHonorsCtx(t *testing.T) {
	db := forkbase.Open()
	addr, _ := startServer(t, db, forkbase.ServerOptions{})
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(11))
	data := make([]byte, 1<<20)
	rnd.Read(data)
	if _, err := db.Put(ctx, "doc", forkbase.NewBlob(data)); err != nil {
		t.Fatal(err)
	}

	rc, err := forkbase.Dial(addr, forkbase.RemoteConfig{ChunkSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Live attach context: a handle whose chunks vanished refetches
	// them transparently.
	o, err := rc.Get(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	v1, err := rc.Value(ctx, "doc", o)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := forkbase.AsBlob(v1)
	if err != nil {
		t.Fatal(err)
	}
	rc.DropChunkCacheForTest()
	base := rc.WireStats().BytesReceived
	got, err := b1.Bytes()
	if err != nil {
		t.Fatalf("read after cache loss with live ctx: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("lazy refetch corrupted the object")
	}
	if moved := rc.WireStats().BytesReceived - base; moved < int64(len(data)) {
		t.Fatalf("read after cache loss moved only %d of %d bytes", moved, len(data))
	}

	// Cancelled attach context: the cold miss must abort, not fetch.
	vctx, cancel := context.WithCancel(ctx)
	v2, err := rc.Value(vctx, "doc", o)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := forkbase.AsBlob(v2)
	if err != nil {
		t.Fatal(err)
	}
	rc.DropChunkCacheForTest()
	cancel()
	base = rc.WireStats().BytesReceived
	if _, err := b2.Bytes(); !errors.Is(err, context.Canceled) {
		t.Fatalf("read after cancel: err = %v, want context.Canceled", err)
	}
	if moved := rc.WireStats().BytesReceived - base; moved > 4<<10 {
		t.Fatalf("cancelled read still moved %d bytes over the wire", moved)
	}
}

// rawChunkConn dials a raw wire connection and completes the hello,
// for handcrafted chunk-op frames.
func rawChunkConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	var e wire.Enc
	e.U32(wire.ProtoVersion)
	e.Str("")
	if err := wire.WriteFrame(c, 1, wire.OpHello, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := wire.ReadFrame(c, 0); err != nil {
		t.Fatal(err)
	}
	return c
}

// chunkReq sends one chunk op carrying empty call options plus fill's
// payload and returns the decoded response: (body, nil) on success,
// (nil, error payload) on a request-scoped failure. Any transport
// error fails the test — these requests must never kill a connection.
func chunkReq(t *testing.T, c net.Conn, op uint8, fill func(e *wire.Enc)) (*wire.Dec, *wire.ErrorPayload) {
	t.Helper()
	var e wire.Enc
	wire.EncodeCallOptions(&e, wire.CallOptions{})
	if fill != nil {
		fill(&e)
	}
	if err := wire.WriteFrame(c, 99, op, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	_, _, payload, err := wire.ReadFrame(c, 0)
	if err != nil {
		t.Fatalf("op %d killed the connection: %v", op, err)
	}
	if len(payload) == 0 {
		t.Fatalf("op %d: empty response", op)
	}
	d := wire.NewDec(payload[1:])
	if payload[0] != 0 {
		ep, derr := wire.DecodeError(d)
		if derr != nil {
			t.Fatalf("op %d: undecodable error payload: %v", op, derr)
		}
		return nil, &ep
	}
	return d, nil
}

// probeChunk asks (via Want, which takes no GC shields) whether the
// server still holds id.
func probeChunk(t *testing.T, c net.Conn, id chunk.ID) bool {
	t.Helper()
	d, ep := chunkReq(t, c, wire.OpChunkWant, func(e *wire.Enc) {
		e.Str("doc")
		wire.EncodeUIDs(e, []chunk.ID{id})
	})
	if ep != nil {
		t.Fatalf("want probe failed: %v", ep.Err)
	}
	got := wire.DecodeWantResponse(d)
	return len(got) == 1 && got[0] != nil
}

// TestChunkSyncTortureWireOps attacks the chunk ops the way the
// generic torture test attacks the core ones: malformed payloads and
// integrity violations cost one request, an unframeable write costs
// the connection, and in every case other clients stay served.
func TestChunkSyncTortureWireOps(t *testing.T) {
	db := forkbase.Open()
	addr, _ := startServer(t, db, forkbase.ServerOptions{})
	healthy, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	ctx := context.Background()

	checkHealthy := func(attack string) {
		t.Helper()
		key := fmt.Sprintf("k-%s", attack)
		uid, err := healthy.Put(ctx, key, forkbase.String("alive"))
		if err != nil {
			t.Fatalf("after %s: healthy put: %v", attack, err)
		}
		o, err := healthy.Get(ctx, key)
		if err != nil || o.UID() != uid {
			t.Fatalf("after %s: healthy get: %v", attack, err)
		}
	}

	t.Run("GarbageHaveWantLists", func(t *testing.T) {
		c := rawChunkConn(t, addr)
		for _, op := range []uint8{wire.OpChunkHave, wire.OpChunkWant} {
			if _, ep := chunkReq(t, c, op, func(e *wire.Enc) {
				e.Str("doc")
				e.U32(0xfffffff0) // a uid count the payload cannot hold
			}); ep == nil {
				t.Fatalf("op %d decoded a hostile uid count", op)
			}
		}
		// The connection survives and still answers a real request.
		if present := probeChunk(t, c, chunk.ID{1, 2, 3}); present {
			t.Fatal("phantom chunk reported present")
		}
		checkHealthy("garbage-have-want")
	})

	t.Run("UIDMismatchedPayload", func(t *testing.T) {
		c := rawChunkConn(t, addr)
		good := chunk.New(chunk.TypeBlob, []byte("honest bytes"))
		var wrong chunk.ID
		wrong[0] = 0xee
		_, ep := chunkReq(t, c, wire.OpChunkSend, func(e *wire.Enc) {
			e.Str("doc")
			e.U32(1)
			e.UID(wrong)
			e.Blob(good.Bytes())
		})
		if ep == nil || !errors.Is(ep.Err, forkbase.ErrCorrupt) {
			t.Fatalf("uid-mismatched chunk: %+v", ep)
		}
		// The batch was rejected before admission: neither the claimed
		// nor the actual id exists server-side.
		if probeChunk(t, c, wrong) || probeChunk(t, c, good.ID()) {
			t.Fatal("rejected upload left chunks behind")
		}
		// Undecodable bytes are the same class of failure.
		if _, ep := chunkReq(t, c, wire.OpChunkSend, func(e *wire.Enc) {
			e.Str("doc")
			e.U32(1)
			e.UID(good.ID())
			e.Blob([]byte{0xff, 0x00})
		}); ep == nil || !errors.Is(ep.Err, forkbase.ErrCorrupt) {
			t.Fatalf("undecodable chunk: %+v", ep)
		}
		checkHealthy("uid-mismatch")
	})

	t.Run("OversizedChunkFrame", func(t *testing.T) {
		c := rawChunkConn(t, addr)
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(wire.DefaultMaxFrame+1))
		c.Write(hdr[:])
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 1024)
		for {
			if _, err := c.Read(buf); err != nil {
				break // closed: a frame violation costs the connection
			}
		}
		checkHealthy("oversized-chunk-frame")
	})

	t.Run("MidNegotiationDisconnect", func(t *testing.T) {
		// An uploader negotiates, pushes a chunk, and vanishes before
		// committing. While its connection lives, the shield holds the
		// orphan through a GC; once it drops, the next GC sweeps it —
		// and the server serves everyone else throughout.
		c := rawChunkConn(t, addr)
		orphan := chunk.New(chunk.TypeBlob, bytes.Repeat([]byte("orphan"), 4096))
		d, ep := chunkReq(t, c, wire.OpChunkSend, func(e *wire.Enc) {
			e.Str("doc")
			e.U32(1)
			e.UID(orphan.ID())
			e.Blob(orphan.Bytes())
		})
		if ep != nil {
			t.Fatalf("upload: %v", ep.Err)
		}
		if stored := d.U32(); stored != 1 {
			t.Fatalf("upload admitted %d chunks", stored)
		}
		probe := rawChunkConn(t, addr)
		if _, err := db.GC(ctx); err != nil {
			t.Fatal(err)
		}
		if !probeChunk(t, probe, orphan.ID()) {
			t.Fatal("GC swept a chunk shielded by a live negotiation")
		}
		c.Close()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, err := db.GC(ctx); err != nil {
				t.Fatal(err)
			}
			if !probeChunk(t, probe, orphan.ID()) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("orphan chunk survived GC after its uploader disconnected")
			}
			time.Sleep(10 * time.Millisecond)
		}
		checkHealthy("mid-negotiation-disconnect")
	})
}

// TestChunkSyncDisabled: a server that does not offer the feature
// still serves a chunk-sync-configured client (which falls back to
// full-ship), and a direct chunk op gets the typed unsupported error.
func TestChunkSyncDisabled(t *testing.T) {
	addr, _ := startServer(t, forkbase.Open(), forkbase.ServerOptions{DisableChunkSync: true})
	rc, err := forkbase.Dial(addr, forkbase.RemoteConfig{ChunkSync: true, ChunkCacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ctx := context.Background()
	data := bytes.Repeat([]byte("fallback"), 1<<15)
	if _, err := rc.Put(ctx, "doc", forkbase.NewBlob(data)); err != nil {
		t.Fatal(err)
	}
	if got := readDoc(t, rc, "doc"); !bytes.Equal(got, data) {
		t.Fatal("full-ship fallback corrupted the object")
	}

	c := rawChunkConn(t, addr)
	_, ep := chunkReq(t, c, wire.OpChunkHave, func(e *wire.Enc) {
		e.Str("doc")
		wire.EncodeUIDs(e, []chunk.ID{{1}})
	})
	if ep == nil || !errors.Is(ep.Err, wire.ErrUnsupported) {
		t.Fatalf("chunk op on a disabled server: %+v", ep)
	}
}
