package forkbase

import (
	"context"
	"errors"
	"fmt"
	"time"

	"forkbase/internal/core"
	"forkbase/internal/servlet"
	"forkbase/internal/store"
)

// Store is the unified ForkBase client API. Every deployment mode —
// the embedded *DB, the simulated-cluster ClusterClient, and any
// future RPC client — implements this one surface, so applications
// written against it move between deployment modes without change;
// the paper's architecture (§4.1) serves all of them through the same
// dispatcher → access controller → branch table → object manager
// pipeline.
//
// The interface collapses the M1–M17 operations of paper Table 1 into
// orthogonal calls whose variants are selected by functional options:
//
//	Get(ctx, key)                          M1 (default branch)
//	Get(ctx, key, WithBranch(b))           M1
//	Get(ctx, key, WithBase(uid))           M2
//	Put(ctx, key, v, WithBranch(b))        M3
//	Put(ctx, key, v, WithBase(uid))        M4 (fork-on-conflict)
//	Put(ctx, key, v, WithGuard(uid))       guarded Put (§4.5.1)
//	Merge(ctx, key, tgt, WithBranch(b))    M5
//	Merge(ctx, key, tgt, WithBase(uid))    M6
//	Merge(ctx, key, "", WithBase(u1), WithBase(u2))  M7
//	ListKeys(ctx)                          M8
//	ListBranches(ctx, key)                 M9 + M10
//	Fork(ctx, key, nb, WithBranch(b))      M11
//	Fork(ctx, key, nb, WithBase(uid))      M12
//	RenameBranch(ctx, key, b, nb)          M13
//	RemoveBranch(ctx, key, b)              M14
//	Track(ctx, key, from, to)              M15
//	Track(ctx, key, from, to, WithBase(u)) M16
//
// Every call takes a context honoured before (and, where the backend
// allows, during) execution, and WithUser routes the call through the
// access controller; stores without a configured ACL run in open mode
// and admit everything.
type Store interface {
	// Get reads a branch head (M1) or, with WithBase, a pinned
	// version (M2), verifying it against its uid.
	Get(ctx context.Context, key string, opts ...Option) (*FObject, error)
	// Put writes a new version and returns its uid: to a branch head
	// (M3), conditionally with WithGuard, or deriving from an explicit
	// base with WithBase (M4, fork-on-conflict). WithMeta attaches
	// application metadata to the version.
	Put(ctx context.Context, key string, v Value, opts ...Option) (UID, error)
	// Apply executes a Batch, amortizing per-write locking and
	// dispatch; see Batch for grouping and atomicity semantics.
	// Options apply to the whole batch (notably WithUser).
	Apply(ctx context.Context, b *Batch, opts ...Option) ([]UID, error)
	// Fork creates newBranch at a reference branch's head (M11) or,
	// with WithBase, at an arbitrary version (M12).
	Fork(ctx context.Context, key, newBranch string, opts ...Option) error
	// Merge merges a reference — WithBranch's head (M5) or WithBase's
	// version (M6) — into tgtBranch, resolving conflicts with
	// WithResolver. With an empty tgtBranch and two or more WithBase
	// versions it merges untagged heads (M7).
	Merge(ctx context.Context, key, tgtBranch string, opts ...Option) (UID, []Conflict, error)
	// Track returns versions at derivation distances [from, to] behind
	// a branch head (M15) or, with WithBase, behind a version (M16).
	Track(ctx context.Context, key string, from, to int, opts ...Option) ([]*FObject, error)
	// Diff compares two versions of key of the same type.
	Diff(ctx context.Context, key string, a, b UID, opts ...Option) (*Diff, error)
	// ListKeys returns all keys (M8); under a closed ACL it requires
	// global read permission.
	ListKeys(ctx context.Context, opts ...Option) ([]string, error)
	// ListBranches returns a key's tagged branches and untagged heads
	// (M9 + M10).
	ListBranches(ctx context.Context, key string, opts ...Option) (BranchList, error)
	// RenameBranch renames a tagged branch (M13); admin permission.
	RenameBranch(ctx context.Context, key, branchName, newName string, opts ...Option) error
	// RemoveBranch drops a branch name (M14); versions stay reachable
	// by uid until a GC collects them. Admin permission.
	RemoveBranch(ctx context.Context, key, branchName string, opts ...Option) error
	// Pin protects a version of key — and everything it reaches: its
	// value chunks and full derivation history — from garbage
	// collection, independent of the branch tables. A client holding
	// a version only by uid (e.g. after RemoveBranch dropped the last
	// branch over it) pins it to keep deriving from it safe across
	// collections, the way git requires a ref before gc. Write
	// permission on key.
	Pin(ctx context.Context, key string, uid UID, opts ...Option) error
	// Unpin removes a Pin; the version stays alive only while a
	// branch or another pin still reaches it. Write permission on key.
	Unpin(ctx context.Context, key string, uid UID, opts ...Option) error
	// GC reclaims every chunk unreachable from the live roots — any
	// tagged branch head, untagged fork-on-conflict head or pinned
	// version, on any key — and compacts the physical storage behind
	// them. Reads and writes proceed concurrently; versions written
	// during the collection are never reclaimed. Admin permission
	// under a closed ACL. Stores that cannot reclaim space return
	// ErrNotCollectable.
	GC(ctx context.Context, opts ...Option) (GCStats, error)
	// Value decodes an FObject fetched from this store. key locates
	// the chunks (the cluster routes it to the owning servlet).
	Value(ctx context.Context, key string, o *FObject, opts ...Option) (Value, error)
	// Close releases the store's resources.
	Close() error
}

// BranchList is a key's branch table as seen by clients: the named
// branches (M9) and the untagged fork-on-conflict heads (M10) — more
// than one untagged head means unresolved siblings.
type BranchList struct {
	Tagged   []TaggedBranch
	Untagged []UID
}

// ErrBadOptions reports an option combination a call cannot satisfy
// (e.g. Put with both WithBranch and WithBase).
var ErrBadOptions = core.ErrBadOptions

// Access control, shared by every Store implementation. The embedded
// DB and the cluster both delegate to the servlet layer's branch-based
// controller (§4.1); a nil/absent ACL means open mode.
type (
	// ACL is a branch-based access controller; see NewACL.
	ACL = servlet.ACL
	// Permission is an access level; higher levels include lower ones.
	Permission = servlet.Permission
)

// Permission levels.
const (
	PermNone  = servlet.PermNone
	PermRead  = servlet.PermRead
	PermWrite = servlet.PermWrite
	PermAdmin = servlet.PermAdmin
)

// NewACL returns an access controller; open=true admits everything.
var NewACL = servlet.NewACL

// ErrAccessDenied is returned when the access controller rejects a
// call before execution.
var ErrAccessDenied = servlet.ErrAccessDenied

// AsBlob asserts that a decoded Value is a Blob.
func AsBlob(v Value) (*Blob, error) {
	b, ok := v.(*Blob)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	return b, nil
}

// AsMap asserts that a decoded Value is a Map.
func AsMap(v Value) (*Map, error) {
	m, ok := v.(*Map)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	return m, nil
}

// AsList asserts that a decoded Value is a List.
func AsList(v Value) (*List, error) {
	l, ok := v.(*List)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	return l, nil
}

// AsSet asserts that a decoded Value is a Set.
func AsSet(v Value) (*Set, error) {
	s, ok := v.(*Set)
	if !ok {
		return nil, core.ErrTypeMismatch
	}
	return s, nil
}

// --- embedded implementation ----------------------------------------

// check runs the embedded access controller, if one is configured.
func (db *DB) check(user, key, branchName string, need Permission) error {
	if db.acl == nil {
		return nil
	}
	return db.acl.Check(user, key, branchName, need)
}

// checkBaseRead verifies read permission on the key a version actually
// belongs to. Calls that accept a WithBase uid must not let the uid act
// as a capability that sidesteps per-key grants.
func (db *DB) checkBaseRead(user string, uid UID) error {
	if db.acl == nil || uid.IsNil() {
		return nil
	}
	obj, err := db.eng.GetUID(uid)
	if err != nil {
		return err
	}
	return db.check(user, string(obj.Key), "", PermRead)
}

// Get implements Store.
func (db *DB) Get(ctx context.Context, key string, opts ...Option) (*FObject, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := resolveOpts(opts)
	if uid, ok := o.base(); ok {
		if o.branchSet {
			return nil, ErrBadOptions
		}
		obj, err := db.eng.GetUID(uid)
		if err != nil {
			return nil, err
		}
		// The version names the key it belongs to; the read permission
		// that matters is on that key, not the caller-supplied one — a
		// uid must not be a capability to bypass per-key grants.
		if err := db.check(o.user, string(obj.Key), "", PermRead); err != nil {
			return nil, err
		}
		return obj, nil
	}
	br := o.branchOr(DefaultBranch)
	if err := db.check(o.user, key, br, PermRead); err != nil {
		return nil, err
	}
	return db.eng.Get([]byte(key), br)
}

// Put implements Store.
func (db *DB) Put(ctx context.Context, key string, v Value, opts ...Option) (UID, error) {
	if err := ctx.Err(); err != nil {
		return UID{}, err
	}
	o := resolveOpts(opts)
	if base, ok := o.base(); ok {
		if o.branchSet || o.guard != nil {
			return UID{}, ErrBadOptions
		}
		if err := db.check(o.user, key, "", PermWrite); err != nil {
			return UID{}, err
		}
		// Deriving from a version pulls its content into the new one;
		// that needs read permission on the key the base belongs to.
		if err := db.checkBaseRead(o.user, base); err != nil {
			return UID{}, err
		}
		return db.eng.PutBase([]byte(key), base, v, o.meta)
	}
	br := o.branchOr(DefaultBranch)
	if err := db.check(o.user, key, br, PermWrite); err != nil {
		return UID{}, err
	}
	if o.guard != nil {
		return db.eng.PutGuarded([]byte(key), br, v, o.meta, *o.guard)
	}
	return db.eng.Put([]byte(key), br, v, o.meta)
}

// Apply implements Store.
func (db *DB) Apply(ctx context.Context, b *Batch, opts ...Option) ([]UID, error) {
	if b.err != nil {
		return nil, b.err
	}
	o := resolveOpts(opts)
	for _, p := range b.puts {
		if err := db.check(o.user, string(p.Key), p.Branch, PermWrite); err != nil {
			return nil, err
		}
	}
	return db.eng.PutBatch(ctx, b.puts)
}

// putBatchServer executes a group of INDEPENDENT single puts on
// behalf of the network server's put coalescer: per-put ACL checks
// and per-put errors, with the engine-level batching of Apply. Unlike
// Apply, one failing put does not abort the others — each coalesced
// wire request must get exactly the result it would have gotten had
// it been dispatched alone.
func (db *DB) putBatchServer(ctx context.Context, user string, puts []core.BatchPut) ([]UID, []error) {
	uids := make([]UID, len(puts))
	errs := make([]error, len(puts))
	run := make([]core.BatchPut, 0, len(puts))
	idx := make([]int, 0, len(puts))
	for i, p := range puts {
		if err := db.check(user, string(p.Key), p.Branch, PermWrite); err != nil {
			errs[i] = err
			continue
		}
		run = append(run, p)
		idx = append(idx, i)
	}
	ruids, rerrs := db.eng.PutBatchIndependent(ctx, run)
	for j, i := range idx {
		uids[i], errs[i] = ruids[j], rerrs[j]
	}
	return uids, errs
}

// Fork implements Store.
func (db *DB) Fork(ctx context.Context, key, newBranch string, opts ...Option) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	o := resolveOpts(opts)
	if err := db.check(o.user, key, newBranch, PermWrite); err != nil {
		return err
	}
	if uid, ok := o.base(); ok {
		if o.branchSet {
			return ErrBadOptions
		}
		// Tagging a version makes it readable under this key's
		// branches; require read permission on its own key.
		if err := db.checkBaseRead(o.user, uid); err != nil {
			return err
		}
		return db.eng.ForkUID([]byte(key), uid, newBranch)
	}
	return db.eng.Fork([]byte(key), o.branchOr(DefaultBranch), newBranch)
}

// Merge implements Store.
func (db *DB) Merge(ctx context.Context, key, tgtBranch string, opts ...Option) (UID, []Conflict, error) {
	if err := ctx.Err(); err != nil {
		return UID{}, nil, err
	}
	o := resolveOpts(opts)
	if tgtBranch == "" {
		if len(o.bases) < 2 || o.branchSet {
			return UID{}, nil, ErrBadOptions
		}
		if err := db.check(o.user, key, "", PermWrite); err != nil {
			return UID{}, nil, err
		}
		for _, uid := range o.bases {
			if err := db.checkBaseRead(o.user, uid); err != nil {
				return UID{}, nil, err
			}
		}
		return db.eng.MergeUntagged(ctx, []byte(key), o.resolver, o.meta, o.bases...)
	}
	if err := db.check(o.user, key, tgtBranch, PermWrite); err != nil {
		return UID{}, nil, err
	}
	if ref, ok := o.base(); ok {
		if o.branchSet || len(o.bases) > 1 {
			return UID{}, nil, ErrBadOptions
		}
		// Merging a version folds its content into the target; that
		// needs read permission on the key it belongs to.
		if err := db.checkBaseRead(o.user, ref); err != nil {
			return UID{}, nil, err
		}
		return db.eng.MergeUID(ctx, []byte(key), tgtBranch, ref, o.resolver, o.meta)
	}
	return db.eng.MergeBranches(ctx, []byte(key), tgtBranch, o.branchOr(DefaultBranch), o.resolver, o.meta)
}

// Track implements Store.
func (db *DB) Track(ctx context.Context, key string, from, to int, opts ...Option) ([]*FObject, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := resolveOpts(opts)
	if uid, ok := o.base(); ok {
		if o.branchSet {
			return nil, ErrBadOptions
		}
		// Read permission is checked on the key the version actually
		// belongs to (derivation chains never cross keys).
		if err := db.checkBaseRead(o.user, uid); err != nil {
			return nil, err
		}
		return db.eng.TrackUID(ctx, uid, from, to)
	}
	br := o.branchOr(DefaultBranch)
	if err := db.check(o.user, key, br, PermRead); err != nil {
		return nil, err
	}
	return db.eng.Track(ctx, []byte(key), br, from, to)
}

// Diff implements Store.
func (db *DB) Diff(ctx context.Context, key string, a, b UID, opts ...Option) (*Diff, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := resolveOpts(opts)
	// Permission is checked on the keys the two versions belong to.
	for _, uid := range []UID{a, b} {
		if err := db.checkBaseRead(o.user, uid); err != nil {
			return nil, err
		}
	}
	return db.eng.Diff(ctx, a, b)
}

// ListKeys implements Store.
func (db *DB) ListKeys(ctx context.Context, opts ...Option) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := resolveOpts(opts)
	if err := db.check(o.user, "", "", PermRead); err != nil {
		return nil, err
	}
	return db.eng.ListKeys(), nil
}

// ListBranches implements Store.
func (db *DB) ListBranches(ctx context.Context, key string, opts ...Option) (BranchList, error) {
	if err := ctx.Err(); err != nil {
		return BranchList{}, err
	}
	o := resolveOpts(opts)
	if err := db.check(o.user, key, "", PermRead); err != nil {
		return BranchList{}, err
	}
	return BranchList{
		Tagged:   db.eng.ListTaggedBranches([]byte(key)),
		Untagged: db.eng.ListUntaggedBranches([]byte(key)),
	}, nil
}

// RenameBranch implements Store.
func (db *DB) RenameBranch(ctx context.Context, key, branchName, newName string, opts ...Option) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	o := resolveOpts(opts)
	if err := db.check(o.user, key, branchName, PermAdmin); err != nil {
		return err
	}
	return db.eng.Rename([]byte(key), branchName, newName)
}

// RemoveBranch implements Store. With WithAutoGC configured, every
// n-th successful removal triggers a full collection before returning.
func (db *DB) RemoveBranch(ctx context.Context, key, branchName string, opts ...Option) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	o := resolveOpts(opts)
	if err := db.check(o.user, key, branchName, PermAdmin); err != nil {
		return err
	}
	if err := db.eng.RemoveBranch([]byte(key), branchName); err != nil {
		return err
	}
	if db.autoGCEvery > 0 && db.removals.Add(1)%int64(db.autoGCEvery) == 0 {
		// A collection already sweeping (another removal's auto-GC, or
		// an explicit GC) will take this removal's garbage with it or
		// leave it for the next round — not an error. The removal
		// itself succeeded either way; a real GC failure is reported
		// wrapped so the caller can tell the two apart.
		if _, err := db.runGC(ctx); err != nil && !errors.Is(err, store.ErrSweepInProgress) {
			return fmt.Errorf("forkbase: auto-gc after branch removal: %w", err)
		}
	}
	return nil
}

// Pin implements Store; like every other mutating call it runs
// through the access controller (write permission on key).
func (db *DB) Pin(ctx context.Context, key string, uid UID, opts ...Option) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	o := resolveOpts(opts)
	if err := db.check(o.user, key, "", PermWrite); err != nil {
		return err
	}
	return db.eng.PinUID(uid)
}

// Unpin implements Store.
func (db *DB) Unpin(ctx context.Context, key string, uid UID, opts ...Option) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	o := resolveOpts(opts)
	if err := db.check(o.user, key, "", PermWrite); err != nil {
		return err
	}
	return db.eng.UnpinUID(uid)
}

// GC implements Store: one mark-and-sweep collection over the embedded
// engine. The compaction threshold is the open-time WithGCThreshold
// (store default when unset).
func (db *DB) GC(ctx context.Context, opts ...Option) (GCStats, error) {
	if err := ctx.Err(); err != nil {
		return GCStats{}, err
	}
	o := resolveOpts(opts)
	// Collection deletes data store-wide; gate it like the other
	// destructive admin operations, on the global wildcard.
	if err := db.check(o.user, "", "", PermAdmin); err != nil {
		return GCStats{}, err
	}
	return db.runGC(ctx)
}

// runGC is the single chokepoint every collection (explicit or auto)
// runs through, so the GC pause histogram sees them all.
func (db *DB) runGC(ctx context.Context) (GCStats, error) {
	start := time.Now()
	stats, err := db.eng.GC(ctx, db.gcThreshold)
	db.gcPause.ObserveSince(start)
	return stats, err
}

// Value implements Store.
func (db *DB) Value(ctx context.Context, key string, o *FObject, opts ...Option) (Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	co := resolveOpts(opts)
	// The object names its own key; check permission on that.
	if err := db.check(co.user, string(o.Key), "", PermRead); err != nil {
		return nil, err
	}
	return db.eng.Value(o)
}

var _ Store = (*DB)(nil)
