package forkbase

// Option customizes a single Store call. Options compose the M1–M17
// method zoo of paper Table 1 into a handful of orthogonal calls: the
// operation names the verb (Get, Put, Fork, Merge, Track, …) and the
// options select the variant — which branch, which base version, which
// guard, which resolver, and on whose behalf the call runs.
type Option func(*callOpts)

// callOpts is the resolved option set for one call.
type callOpts struct {
	branch    string
	branchSet bool
	bases     []UID
	guard     *UID
	meta      []byte
	resolver  Resolver
	user      string
}

// resolveOpts folds opts over the defaults.
func resolveOpts(opts []Option) callOpts {
	var o callOpts
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// branchOr returns the selected branch, or def when none was chosen.
func (o *callOpts) branchOr(def string) string {
	if o.branchSet {
		return o.branch
	}
	return def
}

// base returns the single selected base version, if any.
func (o *callOpts) base() (UID, bool) {
	if len(o.bases) == 0 {
		return UID{}, false
	}
	return o.bases[0], true
}

// WithBranch selects the branch a call operates on. For Get/Put/Track
// it names the branch to read or write (default DefaultBranch); for
// Fork and Merge it names the reference branch the new branch or merge
// derives from.
func WithBranch(name string) Option {
	return func(o *callOpts) { o.branch, o.branchSet = name, true }
}

// WithBase pins a call to an explicit version instead of a branch head:
// Get reads that version (M2), Put derives from it — the
// fork-on-conflict path (M4) — Fork tags it (M12), Merge merges it
// (M6), and Track walks history behind it (M16). Repeating WithBase
// accumulates versions; Merge with two or more bases and an empty
// target branch merges untagged heads (M7).
func WithBase(uid UID) Option {
	return func(o *callOpts) { o.bases = append(o.bases, uid) }
}

// WithGuard makes a Put conditional: it succeeds only while the branch
// head still equals uid (§4.5.1), failing with ErrGuardFailed when the
// head has moved and with ErrBranchNotFound when the branch does not
// exist at all — so a caller can tell "re-read and retry" from "the
// branch is gone". Protects read-modify-write cycles against lost
// updates.
func WithGuard(uid UID) Option {
	return func(o *callOpts) { u := uid; o.guard = &u }
}

// WithMeta attaches application metadata (e.g. a commit message) to the
// version a write creates; it is stored in the version's context field.
func WithMeta(msg string) Option {
	return func(o *callOpts) { o.meta = []byte(msg) }
}

// WithResolver sets the conflict resolver a Merge uses (§4.5.2). See
// ChooseA, ChooseB, AppendResolve, Aggregate for built-ins. Without a
// resolver, differing values surface as ErrConflict.
func WithResolver(r Resolver) Option {
	return func(o *callOpts) { o.resolver = r }
}

// WithUser runs the call on behalf of a user; the access controller
// checks that user's permissions before execution and denies the call
// with ErrAccessDenied otherwise. Without it the call is anonymous,
// which open-mode stores (the embedded default) accept.
func WithUser(u string) Option {
	return func(o *callOpts) { o.user = u }
}
