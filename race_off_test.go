//go:build !race

package forkbase_test

const raceEnabled = false
