package wire

import (
	"bytes"
	"testing"
)

// The frame codec is the per-request floor of the whole remote path:
// every op pays it twice per direction. These pins keep the reusable
// entry points allocation-free in steady state, so pooling above them
// cannot silently rot back to a malloc per frame.

func TestAppendFrameSteadyStateAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 256)
	buf := make([]byte, 0, 4+frameOverhead+len(payload))
	n := testing.AllocsPerRun(200, func() {
		buf = AppendFrame(buf[:0], 7, OpGet, payload)
	})
	if n != 0 {
		t.Fatalf("AppendFrame with a warm buffer: %.1f allocs/op, want 0", n)
	}
}

func TestFramePartsSteadyStateAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 1024)
	n := testing.AllocsPerRun(200, func() {
		hdr, tail := FrameParts(9, OpPut, payload)
		_, _ = hdr, tail
	})
	// The 13-byte header escapes into crc32.Update; FrameParts backs
	// the large-payload writev path, where that is noise — pin it so
	// it cannot grow, not to zero.
	if n > 1 {
		t.Fatalf("FrameParts: %.1f allocs/op, want ≤1", n)
	}
}

func TestReadFrameIntoSteadyStateAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte("z"), 512)
	frame := AppendFrame(nil, 11, OpPut, payload)
	r := bytes.NewReader(frame)
	scratch := make([]byte, 0, len(frame))
	n := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		_, _, _, buf, err := ReadFrameInto(r, 0, scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = buf
	})
	if n != 0 {
		t.Fatalf("ReadFrameInto with a warm buffer: %.1f allocs/op, want 0", n)
	}
}

func TestEncWithSteadyStateAllocs(t *testing.T) {
	buf := make([]byte, 0, 256)
	n := testing.AllocsPerRun(200, func() {
		e := EncWith(buf)
		e.U8(0)
		e.U64(42)
		e.Str("steady")
		buf = e.Bytes()
	})
	if n != 0 {
		t.Fatalf("EncWith on a warm buffer: %.1f allocs/op, want 0", n)
	}
}

// TestFramePartsMatchesAppendFrame pins the scatter-gather encoding
// to the canonical one: a reader cannot tell which write path built a
// frame.
func TestFramePartsMatchesAppendFrame(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("p"), bytes.Repeat([]byte("q"), 4096)} {
		want := AppendFrame(nil, 77, OpGet, payload)
		hdr, tail := FrameParts(77, OpGet, payload)
		got := append(append(append([]byte(nil), hdr[:]...), payload...), tail[:]...)
		if !bytes.Equal(got, want) {
			t.Fatalf("FrameParts(payload len %d) diverges from AppendFrame", len(payload))
		}
	}
}

// TestFrameBufPoolRoundTrip exercises the pool contract: grown
// buffers come back empty, oversized ones are dropped rather than
// pinned.
func TestFrameBufPoolRoundTrip(t *testing.T) {
	b := GetFrameBuf()
	if len(b) != 0 {
		t.Fatalf("pooled buffer arrived non-empty: len %d", len(b))
	}
	b = append(b, make([]byte, 8192)...)
	PutFrameBuf(b)
	PutFrameBuf(make([]byte, maxPooledBuf+1)) // must not be retained
	if c := GetFrameBuf(); cap(c) > maxPooledBuf {
		t.Fatalf("pool retained a %d-byte buffer past the %d cap", cap(c), maxPooledBuf)
	}
}
