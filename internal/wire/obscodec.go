package wire

import (
	"strconv"

	"forkbase/internal/obs"
)

// OpName returns a stable lowercase label for an op code — the tag
// value metric series and slow-op log lines carry. Labels are part of
// the exported metric surface: renaming one breaks dashboards, so
// treat them like wire constants. Unknown codes format as "op<n>".
func OpName(op uint8) string {
	switch op {
	case OpHello:
		return "hello"
	case OpCancel:
		return "cancel"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpApply:
		return "apply"
	case OpFork:
		return "fork"
	case OpMerge:
		return "merge"
	case OpTrack:
		return "track"
	case OpDiff:
		return "diff"
	case OpListKeys:
		return "list_keys"
	case OpListBranches:
		return "list_branches"
	case OpRenameBranch:
		return "rename_branch"
	case OpRemoveBranch:
		return "remove_branch"
	case OpPin:
		return "pin"
	case OpUnpin:
		return "unpin"
	case OpGC:
		return "gc"
	case OpValue:
		return "value"
	case OpStats:
		return "stats"
	case OpChunkHave:
		return "chunk_have"
	case OpChunkWant:
		return "chunk_want"
	case OpChunkSend:
		return "chunk_send"
	case OpPutChunked:
		return "put_chunked"
	case OpChunkWantPart:
		return "chunk_want_part"
	case OpServerStats:
		return "server_stats"
	}
	return "op" + strconv.Itoa(int(op))
}

// NumErrorCodes is one past the highest assigned error code — the
// bound for per-code error counter tables. (Deliberately not named
// Code*: it is a table size, not a wire code, and the wireexhaustive
// analyzer holds every Code* constant to the sentinel contract.)
const NumErrorCodes = CodeDuplicateRequest + 1

// CodeName returns a stable lowercase label for an error code, used
// as the code tag on error counters. Unknown codes format as
// "code<n>".
func CodeName(code uint8) string {
	switch code {
	case CodeGeneric:
		return "generic"
	case CodeKeyNotFound:
		return "key_not_found"
	case CodeBranchNotFound:
		return "branch_not_found"
	case CodeBranchExists:
		return "branch_exists"
	case CodeGuardFailed:
		return "guard_failed"
	case CodeConflict:
		return "conflict"
	case CodeAccessDenied:
		return "access_denied"
	case CodeCorrupt:
		return "corrupt"
	case CodeNotCollectable:
		return "not_collectable"
	case CodeSweepInProgress:
		return "sweep_in_progress"
	case CodeBadOptions:
		return "bad_options"
	case CodeTypeMismatch:
		return "type_mismatch"
	case CodeCanceled:
		return "canceled"
	case CodeDeadline:
		return "deadline"
	case CodeShutdown:
		return "shutdown"
	case CodeUnsupported:
		return "unsupported"
	case CodeProto:
		return "proto"
	case CodeDuplicateRequest:
		return "duplicate_request"
	}
	return "code" + strconv.Itoa(int(code))
}

// sampleWireMin is the least bytes one encoded sample can occupy:
// two string length prefixes, kind, value, sum and a bucket count.
const sampleWireMin = 4 + 4 + 1 + 8 + 8 + 4

// EncodeSamples serializes an observability snapshot — the
// OpServerStats response body.
func EncodeSamples(e *Enc, samples []obs.Sample) {
	e.U32(uint32(len(samples)))
	for _, s := range samples {
		e.Str(s.Name)
		e.Str(s.Tags)
		e.U8(uint8(s.Kind))
		e.I64(s.Value)
		e.I64(s.Sum)
		e.U32(uint32(len(s.Buckets)))
		for _, b := range s.Buckets {
			e.U64(b)
		}
	}
}

// DecodeSamples parses an observability snapshot. The per-sample
// bucket slice is bounds-checked like every other count, so a hostile
// payload cannot balloon memory.
func DecodeSamples(d *Dec) []obs.Sample {
	n := d.Count(sampleWireMin)
	var out []obs.Sample
	for i := 0; i < n && d.err == nil; i++ {
		s := obs.Sample{
			Name:  d.Str(),
			Tags:  d.Str(),
			Kind:  obs.Kind(d.U8()),
			Value: d.I64(),
			Sum:   d.I64(),
		}
		nb := d.Count(8)
		if nb > 0 && d.err == nil {
			s.Buckets = make([]uint64, 0, nb)
			for j := 0; j < nb && d.err == nil; j++ {
				s.Buckets = append(s.Buckets, d.U64())
			}
		}
		if d.err == nil {
			out = append(out, s)
		}
	}
	return out
}
