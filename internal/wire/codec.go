package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"

	"forkbase/internal/branch"
	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/merge"
	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
)

// ErrCodec reports a payload that does not decode: truncated, an
// impossible length, an unknown tag. Unlike ErrFrame it is scoped to
// one request — the frame around it was intact, so the connection
// survives; only the request fails.
var ErrCodec = errors.New("wire: malformed payload")

// nilLen is the length sentinel distinguishing a nil byte slice from
// an empty one (Conflict fields and metadata rely on the difference).
const nilLen = math.MaxUint32

// --- encoder ---------------------------------------------------------

// Enc builds a payload. The zero value is ready to use.
type Enc struct{ buf []byte }

// EncWith returns an encoder that appends onto buf (reset to empty),
// so hot paths can feed pooled buffers through the codec instead of
// growing a fresh allocation per message.
func EncWith(buf []byte) Enc { return Enc{buf: buf[:0]} }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// UID appends a fixed-size chunk identifier.
func (e *Enc) UID(id chunk.ID) { e.buf = append(e.buf, id[:]...) }

// Blob appends a length-prefixed byte string, preserving nil-ness.
func (e *Enc) Blob(b []byte) {
	if b == nil {
		e.U32(nilLen)
		return
	}
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// --- decoder ---------------------------------------------------------

// Dec consumes a payload with sticky error handling: after the first
// violation every subsequent read returns a zero value, and Err
// reports the failure. Every read is bounds-checked — arbitrary
// garbage can never panic a decoder, only fail it.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over the payload.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Err returns the first decoding violation, if any.
func (d *Dec) Err() error { return d.err }

// Rest returns the undecoded remainder (diagnostics only).
func (d *Dec) Rest() int { return len(d.buf) - d.off }

// fail records the first violation.
func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCodec, what, d.off)
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.fail(fmt.Sprintf("need %d bytes, have %d", n, len(d.buf)-d.off))
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// UID reads a fixed-size chunk identifier.
func (d *Dec) UID() chunk.ID {
	var id chunk.ID
	copy(id[:], d.take(chunk.IDSize))
	return id
}

// Blob reads a length-prefixed byte string (nil-aware). The claimed
// length is validated against the remaining payload before any
// allocation, so a hostile length cannot balloon memory.
func (d *Dec) Blob() []byte {
	n := d.U32()
	if n == nilLen {
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		// Distinguishable from a decoded nil only through d.err.
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// BlobRef is Blob without the defensive copy: the returned slice
// aliases the decoder's underlying buffer. It exists for the server's
// hot path, where the payload buffer is pooled and reused for the
// next frame — the caller must therefore fully consume (or copy) the
// result before that reuse. Safe today because every sink on those
// paths copies on ingest: types.NewBlob and friends copy staged
// bytes, and chunk.Decode copies the chunk body.
func (d *Dec) BlobRef() []byte {
	n := d.U32()
	if n == nilLen {
		return nil
	}
	return d.take(int(n))
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.U32()
	if n == nilLen {
		d.fail("nil sentinel in string")
		return ""
	}
	return string(d.take(int(n)))
}

// Count reads a u32 element count for elements of at least elemMin
// bytes each, rejecting counts the remaining payload cannot hold.
func (d *Dec) Count(elemMin int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if elemMin > 0 && int64(n)*int64(elemMin) > int64(len(d.buf)-d.off) {
		d.fail(fmt.Sprintf("count %d exceeds payload", n))
		return 0
	}
	return int(n)
}

// --- values ----------------------------------------------------------

// EncodeValue serializes a Value by content: primitives by their
// canonical encodings, chunkable types fully materialized. The remote
// protocol ships content, not trees — the receiving end rebuilds the
// POS-Tree, and content-defined chunking guarantees the rebuilt tree
// has the same root cid as the original.
func EncodeValue(e *Enc, v types.Value) error {
	e.U8(uint8(v.Type()))
	switch x := v.(type) {
	case types.String:
		e.Str(string(x))
	case types.Int:
		e.I64(int64(x))
	case types.Float:
		e.U64(math.Float64bits(float64(x)))
	case types.Bool:
		e.Bool(bool(x))
	case types.Tuple:
		e.Blob(types.EncodeTuple(x))
	case *types.Blob:
		data, err := x.Bytes()
		if err != nil {
			return err
		}
		e.Blob(data)
	case *types.List:
		e.U32(uint32(x.Len()))
		if err := x.Iter(func(_ uint64, elem []byte) bool {
			e.Blob(elem)
			return true
		}); err != nil {
			return err
		}
	case *types.Map:
		e.U32(uint32(x.Len()))
		if err := x.Iter(func(key, value []byte) bool {
			e.Blob(key)
			e.Blob(value)
			return true
		}); err != nil {
			return err
		}
	case *types.Set:
		e.U32(uint32(x.Len()))
		if err := x.Iter(func(elem []byte) bool {
			e.Blob(elem)
			return true
		}); err != nil {
			return err
		}
	default:
		return fmt.Errorf("wire: cannot encode value type %T", v)
	}
	return nil
}

// DecodeValue reconstructs a Value. Chunkable types come back staged
// (unattached to any store), exactly like a freshly built NewBlob /
// NewMap / NewList / NewSet — ready to be read, edited and Put.
func DecodeValue(d *Dec) (types.Value, error) {
	return decodeValue(d, (*Dec).Blob)
}

// DecodeValueRef is DecodeValue feeding byte fields through BlobRef
// instead of Blob: no intermediate copy between the frame buffer and
// the value. The returned Value never aliases the payload — the
// types constructors copy staged bytes on ingest — so it outlives any
// reuse of the decoder's buffer; only the decode itself must finish
// before that reuse. This is the server-side decode for pooled frame
// buffers.
func DecodeValueRef(d *Dec) (types.Value, error) {
	return decodeValue(d, (*Dec).BlobRef)
}

func decodeValue(d *Dec, blob func(*Dec) []byte) (types.Value, error) {
	t := types.Type(d.U8())
	var v types.Value
	switch t {
	case types.TypeString:
		v = types.String(d.Str())
	case types.TypeInt:
		v = types.Int(d.I64())
	case types.TypeFloat:
		v = types.Float(math.Float64frombits(d.U64()))
	case types.TypeBool:
		v = types.Bool(d.Bool())
	case types.TypeTuple:
		// Always the copying accessor: DecodeTuple aliases its input,
		// so a ref-decoded Tuple would outlive the pooled frame buffer.
		raw := d.Blob()
		if d.err == nil {
			tup, err := types.DecodeTuple(raw)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCodec, err)
			}
			v = tup
		}
	case types.TypeBlob:
		v = types.NewBlob(blob(d))
	case types.TypeList:
		n := d.Count(4)
		l := types.NewList()
		for i := 0; i < n && d.err == nil; i++ {
			if err := l.Append(blob(d)); err != nil {
				return nil, err
			}
		}
		v = l
	case types.TypeMap:
		n := d.Count(8)
		m := types.NewMap()
		for i := 0; i < n && d.err == nil; i++ {
			k, val := blob(d), blob(d)
			if d.err == nil {
				if err := m.Set(k, val); err != nil {
					return nil, err
				}
			}
		}
		v = m
	case types.TypeSet:
		n := d.Count(4)
		s := types.NewSet()
		for i := 0; i < n && d.err == nil; i++ {
			if err := s.Add(blob(d)); err != nil {
				return nil, err
			}
		}
		v = s
	default:
		d.fail(fmt.Sprintf("unknown value type %d", uint8(t)))
	}
	if d.err != nil {
		return nil, d.err
	}
	return v, nil
}

// --- FObjects ---------------------------------------------------------

// EncodeFObject ships a version as its canonical meta-chunk payload.
// The uid travels implicitly: it IS the digest of these bytes, so the
// receiver recomputes it — a server cannot mis-attribute a version
// without the client noticing (the tamper evidence of §3.2 extends
// across the wire for free).
func EncodeFObject(e *Enc, o *types.FObject) {
	e.Blob(types.MarshalFObject(o))
}

// DecodeFObject parses a version and recomputes its uid.
func DecodeFObject(d *Dec) (*types.FObject, error) {
	raw := d.Blob()
	if d.err != nil {
		return nil, d.err
	}
	o, err := types.UnmarshalFObject(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	return o, nil
}

// --- conflicts, diffs, branch lists, stats ---------------------------

// EncodeConflicts serializes a merge conflict list.
func EncodeConflicts(e *Enc, cs []merge.Conflict) {
	e.U32(uint32(len(cs)))
	for _, c := range cs {
		e.Blob(c.Key)
		e.Blob(c.Base)
		e.Blob(c.A)
		e.Blob(c.B)
		e.Str(c.Message)
	}
}

// DecodeConflicts parses a merge conflict list.
func DecodeConflicts(d *Dec) []merge.Conflict {
	n := d.Count(5 * 4)
	var out []merge.Conflict
	for i := 0; i < n && d.err == nil; i++ {
		c := merge.Conflict{Key: d.Blob(), Base: d.Blob(), A: d.Blob(), B: d.Blob(), Message: d.Str()}
		if d.err == nil {
			out = append(out, c)
		}
	}
	return out
}

// Diff kind tags.
const (
	diffPrimitive uint8 = iota
	diffSorted
	diffUnsorted
)

// EncodeDiff serializes a version comparison.
func EncodeDiff(e *Enc, df *core.Diff) {
	e.U8(uint8(df.Type))
	switch {
	case df.Sorted != nil:
		e.U8(diffSorted)
		for _, kvs := range [][]postree.KV{df.Sorted.Added, df.Sorted.Removed, df.Sorted.Modified} {
			e.U32(uint32(len(kvs)))
			for _, kv := range kvs {
				e.Blob(kv.Key)
				e.Blob(kv.Value)
			}
		}
		e.U32(uint32(df.Sorted.SharedLeaves))
		e.U32(uint32(df.Sorted.TotalLeaves))
	case df.Unsorted != nil:
		e.U8(diffUnsorted)
		e.U32(uint32(df.Unsorted.SharedLeaves))
		e.U32(uint32(df.Unsorted.OnlyA))
		e.U32(uint32(df.Unsorted.OnlyB))
		e.U64(df.Unsorted.BytesA)
		e.U64(df.Unsorted.BytesB)
	default:
		e.U8(diffPrimitive)
		e.Bool(df.PrimitiveEqual)
	}
}

// DecodeDiff parses a version comparison.
func DecodeDiff(d *Dec) (*core.Diff, error) {
	df := &core.Diff{Type: types.Type(d.U8())}
	switch kind := d.U8(); kind {
	case diffSorted:
		sd := &postree.SortedDiff{}
		for _, dst := range []*[]postree.KV{&sd.Added, &sd.Removed, &sd.Modified} {
			n := d.Count(8)
			for i := 0; i < n && d.err == nil; i++ {
				kv := postree.KV{Key: d.Blob(), Value: d.Blob()}
				if d.err == nil {
					*dst = append(*dst, kv)
				}
			}
		}
		sd.SharedLeaves = int(d.U32())
		sd.TotalLeaves = int(d.U32())
		df.Sorted = sd
	case diffUnsorted:
		ud := &postree.UnsortedDiff{}
		ud.SharedLeaves = int(d.U32())
		ud.OnlyA = int(d.U32())
		ud.OnlyB = int(d.U32())
		ud.BytesA = d.U64()
		ud.BytesB = d.U64()
		df.Unsorted = ud
	case diffPrimitive:
		df.PrimitiveEqual = d.Bool()
	default:
		d.fail(fmt.Sprintf("unknown diff kind %d", kind))
	}
	if d.err != nil {
		return nil, d.err
	}
	return df, nil
}

// EncodeTaggedBranches serializes a branch table's tagged half.
func EncodeTaggedBranches(e *Enc, tagged []branch.TaggedBranch) {
	e.U32(uint32(len(tagged)))
	for _, tb := range tagged {
		e.Str(tb.Name)
		e.UID(tb.Head)
	}
}

// DecodeTaggedBranches parses a tagged-branch list.
func DecodeTaggedBranches(d *Dec) []branch.TaggedBranch {
	n := d.Count(4 + chunk.IDSize)
	var out []branch.TaggedBranch
	for i := 0; i < n && d.err == nil; i++ {
		tb := branch.TaggedBranch{Name: d.Str(), Head: d.UID()}
		if d.err == nil {
			out = append(out, tb)
		}
	}
	return out
}

// EncodeUIDs serializes a uid list.
func EncodeUIDs(e *Enc, uids []types.UID) {
	e.U32(uint32(len(uids)))
	for _, uid := range uids {
		e.UID(uid)
	}
}

// DecodeUIDs parses a uid list.
func DecodeUIDs(d *Dec) []types.UID {
	n := d.Count(chunk.IDSize)
	var out []types.UID
	for i := 0; i < n && d.err == nil; i++ {
		uid := d.UID()
		if d.err == nil {
			out = append(out, uid)
		}
	}
	return out
}

// EncodeGCStats serializes a collection report.
func EncodeGCStats(e *Enc, s store.GCStats) {
	e.I64(int64(s.Marked))
	e.I64(int64(s.Reclaimed))
	e.I64(s.ReclaimedBytes)
	e.I64(int64(s.Relocated))
	e.I64(s.RelocatedBytes)
	e.I64(int64(s.SegmentsCompacted))
	e.I64(int64(s.SegmentsKept))
}

// DecodeGCStats parses a collection report.
func DecodeGCStats(d *Dec) store.GCStats {
	return store.GCStats{
		Marked:            int(d.I64()),
		Reclaimed:         int(d.I64()),
		ReclaimedBytes:    d.I64(),
		Relocated:         int(d.I64()),
		RelocatedBytes:    d.I64(),
		SegmentsCompacted: int(d.I64()),
		SegmentsKept:      int(d.I64()),
	}
}

// EncodeStats serializes chunk-storage counters.
func EncodeStats(e *Enc, s store.Stats) {
	e.I64(int64(s.Chunks))
	e.I64(s.Bytes)
	e.I64(s.Puts)
	e.I64(s.Dups)
	e.I64(s.Gets)
	e.I64(s.DupBytes)
	e.I64(s.ReadBytes)
	e.I64(s.CacheHits)
	e.I64(s.CacheMisses)
	e.I64(s.CacheEvictions)
	e.I64(s.CacheBytes)
}

// DecodeStats parses chunk-storage counters.
func DecodeStats(d *Dec) store.Stats {
	return store.Stats{
		Chunks:         int(d.I64()),
		Bytes:          d.I64(),
		Puts:           d.I64(),
		Dups:           d.I64(),
		Gets:           d.I64(),
		DupBytes:       d.I64(),
		ReadBytes:      d.I64(),
		CacheHits:      d.I64(),
		CacheMisses:    d.I64(),
		CacheEvictions: d.I64(),
		CacheBytes:     d.I64(),
	}
}

// --- call options -----------------------------------------------------

// CallOptions is the wire form of a call's resolved option set — the
// per-request state that must cross the network for the server to
// reconstruct the caller's intent, including the user identity the
// ACL checks run against.
type CallOptions struct {
	User      string
	Branch    string
	BranchSet bool
	Bases     []types.UID
	Guard     *types.UID
	Meta      []byte
	Resolver  uint8 // ResolverNone or a builtin code
}

// Resolver codes: merge resolvers are functions and cannot cross the
// wire, but the paper's built-ins (§4.5.2) are known to both ends by
// code. Custom resolvers are rejected client-side before any bytes
// move.
const (
	ResolverNone uint8 = iota
	ResolverChooseA
	ResolverChooseB
	ResolverAppend
	ResolverAggregate
)

// ResolverCode maps a resolver function to its wire code; ok is false
// for custom resolvers, which cannot be shipped.
func ResolverCode(r merge.Resolver) (uint8, bool) {
	if r == nil {
		return ResolverNone, true
	}
	p := reflect.ValueOf(r).Pointer()
	for code, builtin := range builtinResolvers {
		if builtin != nil && reflect.ValueOf(builtin).Pointer() == p {
			return uint8(code), true
		}
	}
	return ResolverNone, false
}

// ResolverFromCode returns the built-in resolver for a wire code (nil
// for ResolverNone and unknown codes).
func ResolverFromCode(code uint8) merge.Resolver {
	if int(code) < len(builtinResolvers) {
		return builtinResolvers[code]
	}
	return nil
}

var builtinResolvers = []merge.Resolver{
	ResolverNone:      nil,
	ResolverChooseA:   merge.ChooseA,
	ResolverChooseB:   merge.ChooseB,
	ResolverAppend:    merge.Append,
	ResolverAggregate: merge.Aggregate,
}

// EncodeCallOptions serializes a call's option set.
func EncodeCallOptions(e *Enc, o CallOptions) {
	e.Str(o.User)
	e.Bool(o.BranchSet)
	e.Str(o.Branch)
	EncodeUIDs(e, o.Bases)
	e.Bool(o.Guard != nil)
	if o.Guard != nil {
		e.UID(*o.Guard)
	}
	e.Blob(o.Meta)
	e.U8(o.Resolver)
}

// DecodeCallOptions parses a call's option set.
func DecodeCallOptions(d *Dec) CallOptions {
	o := CallOptions{
		User:      d.Str(),
		BranchSet: d.Bool(),
		Branch:    d.Str(),
		Bases:     DecodeUIDs(d),
	}
	if d.Bool() {
		g := d.UID()
		o.Guard = &g
	}
	o.Meta = d.Blob()
	o.Resolver = d.U8()
	return o
}
