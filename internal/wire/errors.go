package wire

import (
	"context"
	"errors"

	"forkbase/internal/branch"
	"forkbase/internal/core"
	"forkbase/internal/merge"
	"forkbase/internal/servlet"
	"forkbase/internal/store"
	"forkbase/internal/types"
)

// ErrShutdown is returned for requests that arrive while the server
// is draining: in-flight work completes, new work is refused.
var ErrShutdown = errors.New("wire: server shutting down")

// ErrUnsupported reports a request the server understood but cannot
// serve (e.g. Stats against a backend without counters).
var ErrUnsupported = errors.New("wire: operation not supported by this server")

// ErrDuplicateRequest reports a request id that is already in flight
// on the same connection. The server refuses the newcomer instead of
// overwriting the original's registration — overwriting would leak
// the first request's context and make it uncancelable. The original
// request is unaffected; only the reusing frame gets this error.
var ErrDuplicateRequest = errors.New("wire: request id already in flight")

// Error codes. A response's error payload leads with one of these so
// the client can rebuild the exact sentinel the backend returned —
// errors.Is works identically against a RemoteStore and an embedded
// DB, which is what lets the conformance suite run unchanged over a
// socket.
const (
	CodeGeneric uint8 = iota
	CodeKeyNotFound
	CodeBranchNotFound
	CodeBranchExists
	CodeGuardFailed
	CodeConflict
	CodeAccessDenied
	CodeCorrupt
	CodeNotCollectable
	CodeSweepInProgress
	CodeBadOptions
	CodeTypeMismatch
	CodeCanceled
	CodeDeadline
	CodeShutdown
	CodeUnsupported
	CodeProto // framing-level violation reported per-request (unknown op)
	CodeDuplicateRequest
)

// codeSentinels maps each code to the sentinel the decoded error must
// satisfy errors.Is against. CodeGeneric and unknown codes map to nil:
// the decoded error is opaque.
var codeSentinels = map[uint8]error{
	CodeKeyNotFound:      core.ErrKeyNotFound,
	CodeBranchNotFound:   branch.ErrBranchNotFound,
	CodeBranchExists:     branch.ErrBranchExists,
	CodeGuardFailed:      branch.ErrGuardFailed,
	CodeConflict:         merge.ErrConflict,
	CodeAccessDenied:     servlet.ErrAccessDenied,
	CodeCorrupt:          store.ErrCorrupt,
	CodeNotCollectable:   store.ErrNotCollectable,
	CodeSweepInProgress:  store.ErrSweepInProgress,
	CodeBadOptions:       core.ErrBadOptions,
	CodeTypeMismatch:     core.ErrTypeMismatch,
	CodeCanceled:         context.Canceled,
	CodeDeadline:         context.DeadlineExceeded,
	CodeShutdown:         ErrShutdown,
	CodeUnsupported:      ErrUnsupported,
	CodeProto:            ErrCodec,
	CodeDuplicateRequest: ErrDuplicateRequest,
}

// ErrorCode classifies an error for transport. The first matching
// sentinel wins; wrapped chains are honoured via errors.Is.
func ErrorCode(err error) uint8 {
	// Ordered: specific failures before the broad ones they may wrap.
	for _, code := range []uint8{
		CodeGuardFailed, CodeBranchExists, CodeBranchNotFound, CodeKeyNotFound,
		CodeConflict, CodeAccessDenied, CodeCorrupt, CodeSweepInProgress,
		CodeNotCollectable, CodeBadOptions, CodeTypeMismatch,
		CodeCanceled, CodeDeadline, CodeShutdown, CodeUnsupported, CodeProto,
		CodeDuplicateRequest,
	} {
		if errors.Is(err, codeSentinels[code]) {
			return code
		}
	}
	return CodeGeneric
}

// remoteError is a decoded wire error: it prints the server's message
// and unwraps to the local sentinel, so errors.Is sees through it.
type remoteError struct {
	sentinel error
	msg      string
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// ErrorPayload is the decoded form of an error response. Merge errors
// carry their conflict list; the rare paths that return both a uid and
// an error (durability reports) carry the uid.
type ErrorPayload struct {
	Err       error
	Conflicts []merge.Conflict
	UID       types.UID
}

// EncodeError serializes an error response body (the status byte is
// the caller's concern).
func EncodeError(e *Enc, err error, conflicts []merge.Conflict, uid types.UID) {
	e.U8(ErrorCode(err))
	e.Str(err.Error())
	EncodeConflicts(e, conflicts)
	e.UID(uid)
}

// DecodeError parses an error response body.
func DecodeError(d *Dec) (ErrorPayload, error) {
	code := d.U8()
	msg := d.Str()
	conflicts := DecodeConflicts(d)
	uid := d.UID()
	if err := d.Err(); err != nil {
		return ErrorPayload{}, err
	}
	var err error
	if sentinel := codeSentinels[code]; sentinel != nil {
		err = &remoteError{sentinel: sentinel, msg: msg}
	} else {
		err = errors.New(msg)
	}
	return ErrorPayload{Err: err, Conflicts: conflicts, UID: uid}, nil
}
