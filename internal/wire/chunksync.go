package wire

// Codecs for the chunk-granular transfer ops. Requests lead with the
// usual CallOptions prefix (user identity for the access check) and a
// routing key; these helpers cover the op-specific remainder. Chunks
// travel in their canonical serialized form (chunk.Chunk.Bytes: type
// byte + payload), so the receiving end can recompute the content id
// and refuse a chunk whose bytes do not hash to the id it was claimed
// under — the transport never becomes a way to smuggle unverified data
// into a content-addressed store.

import (
	"forkbase/internal/chunk"
)

// OpChunkWant request flags. They travel as an optional trailing byte
// after the id list: servers that predate the flags never read it
// (their decoder stops at the ids), which is what makes the extension
// wire-compatible in both directions. Clients must only set flags
// after seeing FeatureWantStream in the server's Hello.
const (
	// WantFlagStream asks the server to answer across multiple
	// OpChunkWantPart frames instead of a single prefix response, so
	// every requested id is answered in one round trip regardless of
	// the frame cap, and chunks start arriving before the server has
	// read the whole batch.
	WantFlagStream uint8 = 1 << 0
	// WantFlagDeep asks the server to treat the (single) requested id
	// as a POS-Tree root and stream every chunk reachable from it —
	// a cold read's whole tree in one round trip instead of one per
	// level. Implies WantFlagStream. Best-effort: chunks the server
	// does not hold are skipped, and the client's pull sweep remains
	// responsible for completeness.
	WantFlagDeep uint8 = 1 << 1
)

// Streamed Want parts carry chunk batches in the exact OpChunkSend
// upload layout, so EncodeChunkUpload/DecodeChunkUpload serve both
// directions and the verify-before-admit rule applies symmetrically.

// EncodeBitmap appends a presence bitmap: one bit per entry, LSB-first
// within each byte. The count is not encoded — both ends know it from
// the id list the bitmap answers.
func EncodeBitmap(e *Enc, bits []bool) {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << (i % 8)
		}
	}
	e.Blob(out)
}

// DecodeBitmap parses a presence bitmap for n entries.
func DecodeBitmap(d *Dec, n int) []bool {
	raw := d.Blob()
	if d.err != nil {
		return nil
	}
	if len(raw) != (n+7)/8 {
		d.fail("bitmap length")
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return out
}

// ChunkFrame is one uploaded chunk as it appears on the wire: the id
// the sender claims, and the serialized bytes the receiver must verify
// against it.
type ChunkFrame struct {
	ID    chunk.ID
	Bytes []byte
}

// chunkFrameMin is the smallest possible encoded ChunkFrame: id, byte
// count, and the one type byte every serialized chunk carries.
const chunkFrameMin = chunk.IDSize + 4 + 1

// encodeChunkBody appends a chunk's serialized form (type byte +
// payload) as a length-prefixed blob without materializing the
// intermediate chunk.Bytes() copy — on the bulk paths (uploads, Want
// answers) that copy would be the single largest allocation per chunk.
func encodeChunkBody(e *Enc, c *chunk.Chunk) {
	e.U32(uint32(1 + len(c.Data())))
	e.U8(byte(c.Type()))
	e.buf = append(e.buf, c.Data()...)
}

// EncodeChunkUpload appends an OpChunkSend chunk batch.
func EncodeChunkUpload(e *Enc, chunks []*chunk.Chunk) {
	e.U32(uint32(len(chunks)))
	for _, c := range chunks {
		e.UID(c.ID())
		encodeChunkBody(e, c)
	}
}

// DecodeChunkUpload parses an OpChunkSend chunk batch. The frames are
// returned as claimed — verification (decode + id recompute) is the
// caller's job, so a failure can be attributed to the specific chunk.
//
// Zero-copy: each frame's Bytes aliases the decoder's buffer, so the
// batch is only valid until that buffer is reused. The server's
// admission path respects this — chunk.Decode copies the body before
// anything is stored — and finishes before the frame buffer returns
// to the pool.
func DecodeChunkUpload(d *Dec) []ChunkFrame {
	n := d.Count(chunkFrameMin)
	out := make([]ChunkFrame, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		var f ChunkFrame
		f.ID = d.UID()
		f.Bytes = d.BlobRef()
		if d.err == nil {
			out = append(out, f)
		}
	}
	return out
}

// EncodeWantResponse appends an OpChunkWant response body: how many of
// the requested ids are answered (a prefix — the server stops early
// rather than overflow the frame cap), then a presence flag and the
// raw bytes for each answered id. Entries for ids the server does not
// hold carry present=false and no bytes.
func EncodeWantResponse(e *Enc, answered []*chunk.Chunk) {
	e.U32(uint32(len(answered)))
	for _, c := range answered {
		if c == nil {
			e.Bool(false)
			continue
		}
		e.Bool(true)
		encodeChunkBody(e, c)
	}
}

// DecodeWantResponse parses an OpChunkWant response: serialized chunk
// bytes aligned with the answered prefix of the request's id list, nil
// where the server held nothing.
//
// Zero-copy: the returned slices alias the decoder's buffer. The
// client consumes them immediately — chunk.Decode copies on ingest —
// and response payloads are never pooled, so no reuse can bite.
func DecodeWantResponse(d *Dec) [][]byte {
	n := d.Count(1)
	out := make([][]byte, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		if !d.Bool() {
			if d.err == nil {
				out = append(out, nil)
			}
			continue
		}
		b := d.BlobRef()
		if d.err == nil {
			out = append(out, b)
		}
	}
	return out
}
