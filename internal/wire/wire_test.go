package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"forkbase/internal/branch"
	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/merge"
	"forkbase/internal/postree"
	"forkbase/internal/servlet"
	"forkbase/internal/store"
	"forkbase/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("hello"), bytes.Repeat([]byte{0xab}, 1<<16)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, uint64(i)+7, OpGet, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		reqID, op, got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if reqID != uint64(i)+7 || op != OpGet || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: id=%d op=%d len=%d", i, reqID, op, len(got))
		}
	}
}

func TestFrameViolations(t *testing.T) {
	// Torn frame: length promises more than the stream holds.
	frame := AppendFrame(nil, 1, OpGet, []byte("payload"))
	_, _, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3]), 0)
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("torn frame: %v", err)
	}
	// Flipped payload bit: crc catches it.
	bad := append([]byte(nil), frame...)
	bad[15] ^= 0x01
	if _, _, _, err := ReadFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrFrame) {
		t.Fatalf("crc: %v", err)
	}
	// Oversized claimed length.
	huge := []byte{0xff, 0xff, 0xff, 0x7f}
	if _, _, _, err := ReadFrame(bytes.NewReader(huge), 64); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized: %v", err)
	}
	// Length below the fixed overhead.
	tiny := []byte{3, 0, 0, 0, 1, 2, 3}
	if _, _, _, err := ReadFrame(bytes.NewReader(tiny), 0); !errors.Is(err, ErrFrame) {
		t.Fatalf("undersized: %v", err)
	}
	// Clean EOF between frames is NOT a framing violation.
	if _, _, _, err := ReadFrame(bytes.NewReader(nil), 0); !errors.Is(err, io.EOF) {
		t.Fatalf("eof: %v", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	s := store.NewMemStore()
	cfg := postree.DefaultConfig()
	big := bytes.Repeat([]byte("forkbase wire "), 4096)

	attached := func(v types.Value) types.Value {
		// Round a value through a store so the encoder exercises the
		// attached (tree-backed) path, not just staged handles.
		o, err := types.Save(s, cfg, []byte("k"), v, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		av, err := o.Value(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return av
	}
	m := types.NewMap()
	for i := 0; i < 500; i++ {
		m.Set([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	l := types.NewList([]byte("a"), []byte("bb"), nil, []byte("dddd"))
	set := types.NewSet([]byte("x"), []byte("y"), []byte("z"))

	cases := []types.Value{
		types.String("plain"),
		types.Int(-42),
		types.Float(3.25),
		types.Bool(true),
		types.Tuple{[]byte("f1"), nil, []byte("f3")},
		types.NewBlob(big),
		attached(types.NewBlob(big)),
		m,
		attached(m),
		l,
		attached(l),
		set,
		attached(set),
	}
	for i, v := range cases {
		var e Enc
		if err := EncodeValue(&e, v); err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		d := NewDec(e.Bytes())
		got, err := DecodeValue(d)
		if err != nil {
			t.Fatalf("case %d decode: %v", i, err)
		}
		// Compare by content through a fresh persist: equal content
		// must chunk to the same root (the Merkle property).
		oa, err := types.Save(store.NewMemStore(), cfg, []byte("k"), v, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := types.Save(store.NewMemStore(), cfg, []byte("k"), got, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if oa.UID() != ob.UID() {
			t.Fatalf("case %d (%v): content changed across the wire", i, v.Type())
		}
	}
}

func TestFObjectRoundTrip(t *testing.T) {
	s := store.NewMemStore()
	cfg := postree.DefaultConfig()
	base, err := types.Save(s, cfg, []byte("k"), types.String("v1"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := types.Save(s, cfg, []byte("k"), types.String("v2"), []*types.FObject{base}, []byte("meta"))
	if err != nil {
		t.Fatal(err)
	}
	var e Enc
	EncodeFObject(&e, o)
	got, err := DecodeFObject(NewDec(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.UID() != o.UID() || got.Depth != o.Depth || string(got.Context) != "meta" ||
		len(got.Bases) != 1 || got.Bases[0] != base.UID() {
		t.Fatalf("fobject mangled: %+v", got)
	}
	// Tamper evidence survives transit: flip a content byte and the
	// recomputed uid diverges — the receiver can always tell.
	raw := types.MarshalFObject(o)
	raw[len(raw)-1] ^= 0xff
	forged, err := types.UnmarshalFObject(raw)
	if err == nil && forged.UID() == o.UID() {
		t.Fatal("forged payload kept its uid")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	cases := []error{
		core.ErrKeyNotFound,
		fmt.Errorf("wrapped: %w", branch.ErrBranchNotFound),
		branch.ErrBranchExists,
		branch.ErrGuardFailed,
		merge.ErrConflict,
		servlet.ErrAccessDenied,
		store.ErrCorrupt,
		store.ErrNotCollectable,
		store.ErrSweepInProgress,
		core.ErrBadOptions,
		core.ErrTypeMismatch,
		context.Canceled,
		context.DeadlineExceeded,
		ErrShutdown,
		ErrUnsupported,
	}
	for _, want := range cases {
		var e Enc
		EncodeError(&e, fmt.Errorf("server: %w", want), nil, types.UID{})
		ep, err := DecodeError(NewDec(e.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(ep.Err, errors.Unwrap(want)) && !errors.Is(ep.Err, want) {
			t.Fatalf("decoded %v does not satisfy errors.Is(%v)", ep.Err, want)
		}
	}
	// A generic error stays opaque but keeps its message.
	var e Enc
	EncodeError(&e, errors.New("something odd"), nil, types.UID{})
	ep, err := DecodeError(NewDec(e.Bytes()))
	if err != nil || ep.Err.Error() != "something odd" {
		t.Fatalf("generic error: %v %v", ep.Err, err)
	}
	// Conflicts and the uid ride along.
	conflicts := []merge.Conflict{{Key: []byte("k"), A: []byte("a"), B: nil, Message: "m"}}
	uid := types.UID{1, 2, 3}
	e = Enc{}
	EncodeError(&e, merge.ErrConflict, conflicts, uid)
	ep, err = DecodeError(NewDec(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ep.Conflicts) != 1 || string(ep.Conflicts[0].Key) != "k" ||
		ep.Conflicts[0].B != nil || ep.UID != uid {
		t.Fatalf("conflict payload mangled: %+v", ep)
	}
}

func TestCallOptionsRoundTrip(t *testing.T) {
	guard := types.UID{9}
	in := CallOptions{
		User:      "alice",
		Branch:    "dev",
		BranchSet: true,
		Bases:     []types.UID{{1}, {2}},
		Guard:     &guard,
		Meta:      []byte("msg"),
		Resolver:  ResolverAggregate,
	}
	var e Enc
	EncodeCallOptions(&e, in)
	got := DecodeCallOptions(NewDec(e.Bytes()))
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("opts: %+v != %+v", got, in)
	}
	// Nil-ness of meta survives (it selects whether WithMeta applies).
	var e2 Enc
	EncodeCallOptions(&e2, CallOptions{})
	if got := DecodeCallOptions(NewDec(e2.Bytes())); got.Meta != nil {
		t.Fatalf("nil meta became %v", got.Meta)
	}
}

func TestResolverCodes(t *testing.T) {
	for code, r := range map[uint8]merge.Resolver{
		ResolverChooseA:   merge.ChooseA,
		ResolverChooseB:   merge.ChooseB,
		ResolverAppend:    merge.Append,
		ResolverAggregate: merge.Aggregate,
	} {
		got, ok := ResolverCode(r)
		if !ok || got != code {
			t.Fatalf("resolver code: %d != %d (%v)", got, code, ok)
		}
		if ResolverFromCode(code) == nil {
			t.Fatalf("code %d has no resolver", code)
		}
	}
	if _, ok := ResolverCode(func(merge.Conflict) ([]byte, bool) { return nil, false }); ok {
		t.Fatal("custom resolver got a code")
	}
	if c, ok := ResolverCode(nil); !ok || c != ResolverNone {
		t.Fatal("nil resolver")
	}
}

// decodeAnything exercises every decoder against one input; used by
// the garbage tests and the fuzz target. The only acceptable outcomes
// are success or a typed error — never a panic.
func decodeAnything(b []byte) {
	DecodeValue(NewDec(b))
	DecodeFObject(NewDec(b))
	DecodeError(NewDec(b))
	DecodeCallOptions(NewDec(b))
	DecodeDiff(NewDec(b))
	DecodeConflicts(NewDec(b))
	DecodeTaggedBranches(NewDec(b))
	DecodeUIDs(NewDec(b))
	DecodeGCStats(NewDec(b))
	DecodeStats(NewDec(b))
	DecodeBitmap(NewDec(b), 64)
	DecodeChunkUpload(NewDec(b))
	DecodeWantResponse(NewDec(b))
	ReadFrame(bytes.NewReader(b), 1<<20)
}

func TestChunkSyncCodecRoundTrip(t *testing.T) {
	// Bitmap: every width around the byte boundaries.
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65} {
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = i%3 == 0
		}
		var e Enc
		EncodeBitmap(&e, bits)
		got := DecodeBitmap(NewDec(e.Bytes()), n)
		if !reflect.DeepEqual(append([]bool{}, bits...), append([]bool{}, got...)) {
			t.Fatalf("bitmap width %d: %v != %v", n, got, bits)
		}
		// A claimed width that disagrees with the payload is an error,
		// not a misread.
		if n > 0 {
			d := NewDec(e.Bytes())
			DecodeBitmap(d, n+16)
			if d.Err() == nil {
				t.Fatalf("bitmap width %d decoded as %d", n, n+16)
			}
		}
	}

	chunks := []*chunk.Chunk{
		chunk.New(chunk.TypeBlob, []byte("alpha")),
		chunk.New(chunk.TypeUIndex, bytes.Repeat([]byte{9}, 500)),
	}
	var e Enc
	EncodeChunkUpload(&e, chunks)
	frames := DecodeChunkUpload(NewDec(e.Bytes()))
	if len(frames) != len(chunks) {
		t.Fatalf("upload: %d frames", len(frames))
	}
	for i, f := range frames {
		if f.ID != chunks[i].ID() || !bytes.Equal(f.Bytes, chunks[i].Bytes()) {
			t.Fatalf("upload frame %d corrupted", i)
		}
	}

	var w Enc
	EncodeWantResponse(&w, []*chunk.Chunk{chunks[0], nil, chunks[1]})
	got := DecodeWantResponse(NewDec(w.Bytes()))
	if len(got) != 3 || got[1] != nil || !bytes.Equal(got[0], chunks[0].Bytes()) || !bytes.Equal(got[2], chunks[1].Bytes()) {
		t.Fatalf("want response mangled: %d entries", len(got))
	}
}

func TestDecodersSurviveGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(256)
		b := make([]byte, n)
		rng.Read(b)
		decodeAnything(b)
	}
	// Adversarial shapes: truncations of a VALID encoding are the
	// garbage most likely to slip through bounds checks.
	var e Enc
	guard := types.UID{3}
	EncodeCallOptions(&e, CallOptions{User: "u", Branch: "b", BranchSet: true,
		Bases: []types.UID{{1}}, Guard: &guard, Meta: []byte("m")})
	EncodeValue(&e, types.NewBlob(bytes.Repeat([]byte("x"), 1000)))
	valid := e.Bytes()
	for cut := 0; cut <= len(valid); cut++ {
		decodeAnything(valid[:cut])
	}
	// Hostile length fields: huge counts over tiny payloads.
	var h Enc
	h.U32(0xfffffff0)
	decodeAnything(h.Bytes())
}

func FuzzWireDecode(f *testing.F) {
	var e Enc
	EncodeValue(&e, types.String("seed"))
	f.Add(e.Bytes())
	f.Add(AppendFrame(nil, 1, OpGet, []byte("x")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	var cs Enc
	EncodeBitmap(&cs, []bool{true, false, true, true, false, false, true, false, true})
	f.Add(cs.Bytes())
	var up Enc
	EncodeChunkUpload(&up, []*chunk.Chunk{chunk.New(chunk.TypeBlob, []byte("fuzz seed"))})
	f.Add(up.Bytes())
	var wr Enc
	EncodeWantResponse(&wr, []*chunk.Chunk{chunk.New(chunk.TypeBlob, []byte("present")), nil})
	f.Add(wr.Bytes())
	f.Fuzz(func(t *testing.T, b []byte) {
		decodeAnything(b)
	})
}
