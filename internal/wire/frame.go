// Package wire implements ForkBase's client-server protocol: a
// compact, length-prefixed binary framing with per-frame crc
// protection, and codecs for every request and response payload the
// unified Store API needs. The same codecs serve both ends — the
// RemoteStore client and the forkserved daemon — so the two cannot
// drift apart on the layout.
//
// # Frame layout
//
// Every message — request or response — travels in one frame:
//
//	u32  n        frame length: bytes that follow this field
//	u64  reqID    request identifier, chosen by the client; the
//	              response echoes it, which is what lets many
//	              in-flight requests share one connection
//	u8   op       operation code (request) / echoed op (response)
//	...  payload  op-specific body
//	u32  crc      crc32 (Castagnoli) over reqID..payload
//
// All integers are little-endian, matching the rest of the storage
// formats in this repository. The frame is the unit of trust: a bad
// length, a short read or a crc mismatch means the stream is
// desynchronized and the connection must be dropped — there is no way
// to find the next frame boundary. A well-framed request carrying an
// unknown op code, by contrast, is answered with a typed error and
// the connection survives.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ProtoVersion is the protocol revision spoken by this build. The
// Hello exchange rejects mismatched peers before any data moves.
const ProtoVersion = 1

// frameOverhead is the fixed byte cost beyond the payload: reqID (8),
// op (1) and crc (4). The leading length field is not counted by n.
const frameOverhead = 8 + 1 + 4

// DefaultMaxFrame bounds a frame's length field: 256 MiB admits any
// realistic value while stopping a hostile 4 GiB allocation.
const DefaultMaxFrame = 256 << 20

// ErrFrame reports an unrecoverable framing violation — bad length,
// torn frame, crc mismatch. The stream cannot be resynchronized; the
// connection carrying it must be closed.
var ErrFrame = errors.New("wire: malformed frame")

// castagnoli is the crc table shared by every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Operation codes. Response frames echo the request's op.
const (
	// OpHello opens a connection: protocol version and auth token.
	OpHello uint8 = iota + 1
	// OpCancel aborts the in-flight request named in the payload; it
	// has no response.
	OpCancel
	// The Store surface, one code per method.
	OpGet
	OpPut
	OpApply
	OpFork
	OpMerge
	OpTrack
	OpDiff
	OpListKeys
	OpListBranches
	OpRenameBranch
	OpRemoveBranch
	OpPin
	OpUnpin
	OpGC
	OpValue
	// OpStats reports the backend's chunk-storage counters (admin /
	// tooling; not part of the Store interface).
	OpStats
	// Chunk-granular transfer (the chunksync subsystem). These ops move
	// individual POS-Tree chunks instead of materialized values, which
	// is what lets a client that already holds 99% of a large object's
	// chunks ship only the remaining 1% — the paper's dedup argument
	// applied to the wire. Servers that cannot reach their backend's
	// chunk store (e.g. a cluster proxy) answer them with ErrUnsupported
	// and do not advertise FeatureChunkSync in their Hello.
	//
	// OpChunkHave asks which of a batch of chunk ids the server already
	// stores; the response is a presence bitmap.
	OpChunkHave
	// OpChunkWant requests a batch of chunks by id; the response carries
	// the raw chunk bytes for a prefix of the batch (the server may stop
	// early to respect the frame cap) with per-id presence flags.
	OpChunkWant
	// OpChunkSend uploads a batch of raw chunks. The server re-verifies
	// every chunk's id against its content before admission; a mismatch
	// fails the whole request (corrupt chunks cost one request).
	OpChunkSend
	// OpPutChunked commits a version whose value chunks were uploaded
	// via OpChunkSend: the payload names the POS-Tree root, and the
	// server verifies the tree is complete before the put executes.
	OpPutChunked
	opMax
)

// Hello feature bits. The server's Hello response advertises a bitmask
// of optional capabilities after its banner; clients that predate the
// field simply ignore the trailing bytes.
const (
	// FeatureChunkSync marks a server that accepts the chunk-granular
	// transfer ops (OpChunkHave/OpChunkWant/OpChunkSend/OpPutChunked).
	FeatureChunkSync uint32 = 1 << 0
)

// KnownOp reports whether op names an operation this protocol version
// understands.
func KnownOp(op uint8) bool { return op >= OpHello && op < opMax }

// MaxPayload returns the largest payload a frame can carry under the
// given cap (0 means DefaultMaxFrame). Writers must check against it
// BEFORE framing an outgoing message: the receiving end drops the
// whole connection on an oversized length — the stream cannot be
// resynchronized — so an unchecked large payload would fail every
// unrelated request multiplexed on the connection instead of just its
// own. The cap is also clamped below 4 GiB so the u32 length field
// can never wrap.
func MaxPayload(maxFrame int) int {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if maxFrame > math.MaxUint32 {
		maxFrame = math.MaxUint32
	}
	return maxFrame - frameOverhead
}

// AppendFrame serializes one frame onto dst and returns the extended
// slice.
func AppendFrame(dst []byte, reqID uint64, op uint8, payload []byte) []byte {
	n := frameOverhead + len(payload)
	var hdr [4 + 8 + 1]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(n))
	binary.LittleEndian.PutUint64(hdr[4:12], reqID)
	hdr[12] = op
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.Update(0, castagnoli, dst[len(dst)-n+4:])
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(dst, tail[:]...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, reqID uint64, op uint8, payload []byte) error {
	buf := AppendFrame(make([]byte, 0, 4+frameOverhead+len(payload)), reqID, op, payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads and verifies one frame from r. maxFrame caps the
// claimed length (0 means DefaultMaxFrame). A framing violation is
// reported wrapped in ErrFrame; the caller must close the connection,
// since the stream cannot be re-synchronized.
func ReadFrame(r io.Reader, maxFrame int) (reqID uint64, op uint8, payload []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		// A clean EOF between frames is the peer hanging up, not a
		// protocol violation; mid-frame truncation below is.
		return 0, 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n < frameOverhead {
		return 0, 0, nil, fmt.Errorf("%w: length %d below frame overhead", ErrFrame, n)
	}
	if n > maxFrame {
		return 0, 0, nil, fmt.Errorf("%w: length %d exceeds cap %d", ErrFrame, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: torn frame: %v", ErrFrame, err)
	}
	want := binary.LittleEndian.Uint32(body[n-4:])
	if got := crc32.Update(0, castagnoli, body[:n-4]); got != want {
		return 0, 0, nil, fmt.Errorf("%w: crc mismatch", ErrFrame)
	}
	reqID = binary.LittleEndian.Uint64(body[:8])
	op = body[8]
	payload = body[9 : n-4 : n-4]
	return reqID, op, payload, nil
}
