// Package wire implements ForkBase's client-server protocol: a
// compact, length-prefixed binary framing with per-frame crc
// protection, and codecs for every request and response payload the
// unified Store API needs. The same codecs serve both ends — the
// RemoteStore client and the forkserved daemon — so the two cannot
// drift apart on the layout.
//
// # Frame layout
//
// Every message — request or response — travels in one frame:
//
//	u32  n        frame length: bytes that follow this field
//	u64  reqID    request identifier, chosen by the client; the
//	              response echoes it, which is what lets many
//	              in-flight requests share one connection
//	u8   op       operation code (request) / echoed op (response)
//	...  payload  op-specific body
//	u32  crc      crc32 (Castagnoli) over reqID..payload
//
// All integers are little-endian, matching the rest of the storage
// formats in this repository. The frame is the unit of trust: a bad
// length, a short read or a crc mismatch means the stream is
// desynchronized and the connection must be dropped — there is no way
// to find the next frame boundary. A well-framed request carrying an
// unknown op code, by contrast, is answered with a typed error and
// the connection survives.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// ProtoVersion is the protocol revision spoken by this build. The
// Hello exchange rejects mismatched peers before any data moves.
const ProtoVersion = 1

// frameOverhead is the fixed byte cost beyond the payload: reqID (8),
// op (1) and crc (4). The leading length field is not counted by n.
const frameOverhead = 8 + 1 + 4

// DefaultMaxFrame bounds a frame's length field: 256 MiB admits any
// realistic value while stopping a hostile 4 GiB allocation.
const DefaultMaxFrame = 256 << 20

// ErrFrame reports an unrecoverable framing violation — bad length,
// torn frame, crc mismatch. The stream cannot be resynchronized; the
// connection carrying it must be closed.
var ErrFrame = errors.New("wire: malformed frame")

// castagnoli is the crc table shared by every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Operation codes. Response frames echo the request's op.
const (
	// OpHello opens a connection: protocol version and auth token.
	OpHello uint8 = iota + 1
	// OpCancel aborts the in-flight request named in the payload; it
	// has no response.
	OpCancel
	// The Store surface, one code per method.
	OpGet
	OpPut
	OpApply
	OpFork
	OpMerge
	OpTrack
	OpDiff
	OpListKeys
	OpListBranches
	OpRenameBranch
	OpRemoveBranch
	OpPin
	OpUnpin
	OpGC
	OpValue
	// OpStats reports the backend's chunk-storage counters (admin /
	// tooling; not part of the Store interface).
	OpStats
	// Chunk-granular transfer (the chunksync subsystem). These ops move
	// individual POS-Tree chunks instead of materialized values, which
	// is what lets a client that already holds 99% of a large object's
	// chunks ship only the remaining 1% — the paper's dedup argument
	// applied to the wire. Servers that cannot reach their backend's
	// chunk store (e.g. a cluster proxy) answer them with ErrUnsupported
	// and do not advertise FeatureChunkSync in their Hello.
	//
	// OpChunkHave asks which of a batch of chunk ids the server already
	// stores; the response is a presence bitmap.
	OpChunkHave
	// OpChunkWant requests a batch of chunks by id; the response carries
	// the raw chunk bytes for a prefix of the batch (the server may stop
	// early to respect the frame cap) with per-id presence flags.
	OpChunkWant
	// OpChunkSend uploads a batch of raw chunks. The server re-verifies
	// every chunk's id against its content before admission; a mismatch
	// fails the whole request (corrupt chunks cost one request).
	OpChunkSend
	// OpPutChunked commits a version whose value chunks were uploaded
	// via OpChunkSend: the payload names the POS-Tree root, and the
	// server verifies the tree is complete before the put executes.
	OpPutChunked
	// OpChunkWantPart is response-only: one intermediate frame of a
	// streamed OpChunkWant answer (requested with WantFlagStream). The
	// server ships chunks in bounded parts as it reads them, each part
	// a chunk batch in the OpChunkSend upload layout, and terminates
	// the stream with a normal OpChunkWant status frame — success or
	// error — so per-request error isolation survives streaming.
	// Clients never send it.
	OpChunkWantPart
	// OpServerStats returns the server's observability snapshot — the
	// per-op request counters, latency histograms and engine metrics of
	// internal/obs, encoded with EncodeSamples. Feature-gated behind
	// FeatureServerStats; pre-feature servers answer ErrUnsupported.
	OpServerStats
	// OpMax is one past the highest assigned code — the bound both ends
	// use to size per-op metric tables.
	OpMax
)

// Hello feature bits. The server's Hello response advertises a bitmask
// of optional capabilities after its banner; clients that predate the
// field simply ignore the trailing bytes.
const (
	// FeatureChunkSync marks a server that accepts the chunk-granular
	// transfer ops (OpChunkHave/OpChunkWant/OpChunkSend/OpPutChunked).
	FeatureChunkSync uint32 = 1 << 0
	// FeatureWantStream marks a server that understands the trailing
	// flags byte on OpChunkWant requests and can stream a Want answer
	// as OpChunkWantPart frames. Clients that saw the bit may set
	// WantFlagStream / WantFlagDeep; against older servers they fall
	// back to classic prefix answering (whose decoder ignores the
	// absent trailing byte by construction).
	FeatureWantStream uint32 = 1 << 1
	// FeatureServerStats marks a server that answers OpServerStats with
	// its observability snapshot. Clients without the bit never send the
	// op; clients seeing a server without it fail the call locally with
	// ErrUnsupported instead of burning a round trip.
	FeatureServerStats uint32 = 1 << 2
)

// KnownOp reports whether op names an operation this protocol version
// understands.
func KnownOp(op uint8) bool { return op >= OpHello && op < OpMax }

// MaxPayload returns the largest payload a frame can carry under the
// given cap (0 means DefaultMaxFrame). Writers must check against it
// BEFORE framing an outgoing message: the receiving end drops the
// whole connection on an oversized length — the stream cannot be
// resynchronized — so an unchecked large payload would fail every
// unrelated request multiplexed on the connection instead of just its
// own. The cap is also clamped below 4 GiB so the u32 length field
// can never wrap.
func MaxPayload(maxFrame int) int {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if maxFrame > math.MaxUint32 {
		maxFrame = math.MaxUint32
	}
	return maxFrame - frameOverhead
}

// AppendFrame serializes one frame onto dst and returns the extended
// slice.
func AppendFrame(dst []byte, reqID uint64, op uint8, payload []byte) []byte {
	n := frameOverhead + len(payload)
	var hdr [4 + 8 + 1]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(n))
	binary.LittleEndian.PutUint64(hdr[4:12], reqID)
	hdr[12] = op
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.Update(0, castagnoli, dst[len(dst)-n+4:])
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(dst, tail[:]...)
}

// FrameParts builds the length-prefixed header and crc trailer of a
// frame whose payload will travel as its own buffer (scatter-gather
// writes via net.Buffers). Writing hdr, payload, tail back to back is
// byte-identical to AppendFrame, without copying the payload.
func FrameParts(reqID uint64, op uint8, payload []byte) (hdr [13]byte, tail [4]byte) {
	n := frameOverhead + len(payload)
	binary.LittleEndian.PutUint32(hdr[:4], uint32(n))
	binary.LittleEndian.PutUint64(hdr[4:12], reqID)
	hdr[12] = op
	crc := crc32.Update(0, castagnoli, hdr[4:13])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(tail[:], crc)
	return hdr, tail
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, reqID uint64, op uint8, payload []byte) error {
	buf := AppendFrame(make([]byte, 0, 4+frameOverhead+len(payload)), reqID, op, payload)
	_, err := w.Write(buf)
	return err
}

// framePool recycles the buffers the hot paths churn through: frame
// bodies on the read side, request/response encodings on the write
// side. Entries are *[]byte so returning one does not re-box the
// slice header on every Put.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// maxPooledBuf caps what PutFrameBuf retains. A rare huge frame (a
// multi-megabyte blob) would otherwise pin its allocation in the pool
// forever; above the cap the buffer is simply dropped to the GC.
const maxPooledBuf = 1 << 20

// GetFrameBuf returns an empty reusable buffer from the frame pool.
// Pass it back via PutFrameBuf once nothing aliases it any more.
func GetFrameBuf() []byte {
	return (*framePool.Get().(*[]byte))[:0]
}

// PutFrameBuf recycles a buffer obtained from GetFrameBuf (or grown
// from one). The caller must not touch b — or anything aliasing its
// backing array, such as a payload returned by ReadFrameInto or a
// zero-copy Dec accessor — after the call.
func PutFrameBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	framePool.Put(&b)
}

// ReadFrame reads and verifies one frame from r. maxFrame caps the
// claimed length (0 means DefaultMaxFrame). A framing violation is
// reported wrapped in ErrFrame; the caller must close the connection,
// since the stream cannot be re-synchronized.
func ReadFrame(r io.Reader, maxFrame int) (reqID uint64, op uint8, payload []byte, err error) {
	reqID, op, payload, _, err = ReadFrameInto(r, maxFrame, nil)
	return reqID, op, payload, err
}

// ReadFrameInto is ReadFrame reading into a caller-supplied buffer so
// a steady-state read loop allocates nothing per frame. scratch is
// grown as needed; the (possibly reallocated) buffer comes back as
// buf — even on error — so the caller can keep reusing or pooling it.
// payload aliases buf and is valid only until buf's next reuse.
func ReadFrameInto(r io.Reader, maxFrame int, scratch []byte) (reqID uint64, op uint8, payload, buf []byte, err error) {
	buf = scratch
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	// The length prefix is read through buf too — a stack [4]byte
	// would escape into the io.Reader interface and cost the very
	// per-frame allocation this entry point exists to avoid.
	if cap(buf) < 4 {
		buf = make([]byte, 0, 1024)
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		// A clean EOF between frames is the peer hanging up, not a
		// protocol violation; mid-frame truncation below is.
		return 0, 0, nil, buf, err
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	if n < frameOverhead {
		return 0, 0, nil, buf, fmt.Errorf("%w: length %d below frame overhead", ErrFrame, n)
	}
	if n > maxFrame {
		return 0, 0, nil, buf, fmt.Errorf("%w: length %d exceeds cap %d", ErrFrame, n, maxFrame)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, nil, buf, fmt.Errorf("%w: torn frame: %v", ErrFrame, err)
	}
	want := binary.LittleEndian.Uint32(buf[n-4:])
	if got := crc32.Update(0, castagnoli, buf[:n-4]); got != want {
		return 0, 0, nil, buf, fmt.Errorf("%w: crc mismatch", ErrFrame)
	}
	reqID = binary.LittleEndian.Uint64(buf[:8])
	op = buf[8]
	payload = buf[9 : n-4 : n-4]
	return reqID, op, payload, buf, nil
}

// FrameBuffered reports whether br already holds one complete frame,
// i.e. whether a ReadFrameInto is guaranteed not to block. The server
// uses it for two batching decisions: deferring the response flush
// while a pipelined burst is still arriving, and coalescing adjacent
// Put frames — both must never trade liveness for throughput, so they
// only proceed on frames that are fully here. A hostile length field
// cannot fake completeness: the claimed n must actually be buffered.
func FrameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < 4 {
		return false
	}
	hdr, err := br.Peek(4)
	if err != nil {
		return false
	}
	n := binary.LittleEndian.Uint32(hdr)
	return n <= uint32(br.Buffered()-4)
}
