package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"forkbase"
)

// RunChunkSync measures what the have/want delta-sync subsystem buys
// on versioned workloads: the bytes a client actually moves over the
// wire, full-ship Value/Put against chunk-granular transfer. Two
// experiments:
//
//  1. Bytes-on-wire vs object size — after a 1% in-place edit lands on
//     the server, how much does re-reading the object cost? Full-ship
//     re-downloads everything; chunk sync re-fetches only the chunks
//     the edit produced (the POS-Tree shares the rest), so its cost is
//     near-constant while full-ship grows linearly.
//  2. A wiki-style edit stream — one document, a run of small edits,
//     the reader re-syncing after each — accumulated wire bytes in
//     both directions (delta puts for the writer, delta re-reads for
//     the reader).
func RunChunkSync(w io.Writer, scale Scale) error {
	sizes := []int{256 << 10, 1 << 20, 4 << 20}
	if scale == Paper {
		sizes = []int{1 << 20, 4 << 20, 16 << 20, 64 << 20}
	}
	edits := scale.pick(10, 50)

	backend := forkbase.Open()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := forkbase.NewServer(backend, forkbase.ServerOptions{})
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(bgCtx, 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
		backend.Close()
	}()
	addr := ln.Addr().String()

	fmt.Fprintln(w, "ChunkSync: bytes on the wire to re-read after a 1% edit")
	t := newTable(w, 10, 14, 14, 14, 10)
	t.row("Size", "Cold bytes", "Full-ship", "Chunk-sync", "Moved")
	rng := rand.New(rand.NewSource(11))
	for _, size := range sizes {
		key := fmt.Sprintf("doc-%d", size)
		data := make([]byte, size)
		rng.Read(data)
		if _, err := backend.Put(bgCtx, key, forkbase.NewBlob(data)); err != nil {
			return err
		}

		full, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
		if err != nil {
			return err
		}
		cs, err := forkbase.Dial(addr, forkbase.RemoteConfig{ChunkSync: true})
		if err != nil {
			full.Close()
			return err
		}
		// Cold reads populate the chunk-sync client's cache and give the
		// full-object transfer cost.
		if _, err := readBlob(full, key); err != nil {
			return err
		}
		cold := cs.WireStats().BytesReceived
		if _, err := readBlob(cs, key); err != nil {
			return err
		}
		cold = cs.WireStats().BytesReceived - cold

		if err := serverEdit(backend, key, rng, size/100); err != nil {
			return err
		}
		fullBytes := full.WireStats().BytesReceived
		if _, err := readBlob(full, key); err != nil {
			return err
		}
		fullBytes = full.WireStats().BytesReceived - fullBytes
		csBytes := cs.WireStats().BytesReceived
		if _, err := readBlob(cs, key); err != nil {
			return err
		}
		csBytes = cs.WireStats().BytesReceived - csBytes
		full.Close()
		cs.Close()

		t.row(mib(int64(size)), comma(cold), comma(fullBytes), comma(csBytes),
			fmt.Sprintf("%.1f%%", 100*float64(csBytes)/float64(size)))
		record(fmt.Sprintf("reread-1pct-edit %s", mib(int64(size))), map[string]float64{
			"object_bytes":          float64(size),
			"cold_wire_bytes":       float64(cold),
			"fullship_wire_bytes":   float64(fullBytes),
			"chunksync_wire_bytes":  float64(csBytes),
			"chunksync_moved_ratio": float64(csBytes) / float64(size),
		})
	}

	// Wiki-style stream: a writer commits a run of 1% edits from its
	// own replica; a reader re-syncs after each commit. Both directions
	// accumulate: BytesSent for the writer, BytesReceived for the
	// reader, full-ship vs chunk-sync.
	fmt.Fprintln(w)
	docSize := scale.pick(1<<20, 16<<20)
	fmt.Fprintf(w, "ChunkSync: wiki edit stream (%s doc, %d edits of 1%%)\n", mib(int64(docSize)), edits)
	tw := newTable(w, 22, 16, 16, 10)
	tw.row("Client", "Writer sent", "Reader recvd", "Factor")

	var fullSent, fullRecv, csSent, csRecv int64
	for i, chunked := range []bool{false, true} {
		key := fmt.Sprintf("wiki-%d", i)
		doc := make([]byte, docSize)
		rng.Read(doc)
		cfg := forkbase.RemoteConfig{ChunkSync: chunked}
		writer, err := forkbase.Dial(addr, cfg)
		if err != nil {
			return err
		}
		reader, err := forkbase.Dial(addr, cfg)
		if err != nil {
			writer.Close()
			return err
		}
		if _, err := writer.Put(bgCtx, key, forkbase.NewBlob(doc)); err != nil {
			return err
		}
		if _, err := readBlob(reader, key); err != nil {
			return err
		}
		sent0, recv0 := writer.WireStats().BytesSent, reader.WireStats().BytesReceived
		for e := 0; e < edits; e++ {
			// The writer edits its latest replica — over chunk sync the
			// Value is cache-backed and the Put uploads only new chunks.
			o, err := writer.Get(bgCtx, key)
			if err != nil {
				return err
			}
			v, err := writer.Value(bgCtx, key, o)
			if err != nil {
				return err
			}
			b, err := forkbase.AsBlob(v)
			if err != nil {
				return err
			}
			edit := make([]byte, docSize/100)
			rng.Read(edit)
			off := rng.Intn(docSize - len(edit))
			if err := b.Splice(uint64(off), uint64(len(edit)), edit); err != nil {
				return err
			}
			if _, err := writer.Put(bgCtx, key, b); err != nil {
				return err
			}
			if _, err := readBlob(reader, key); err != nil {
				return err
			}
		}
		sent := writer.WireStats().BytesSent - sent0
		recv := reader.WireStats().BytesReceived - recv0
		writer.Close()
		reader.Close()
		if chunked {
			csSent, csRecv = sent, recv
		} else {
			fullSent, fullRecv = sent, recv
		}
	}
	tw.row("full-ship", comma(fullSent), comma(fullRecv), "1.0x")
	factor := float64(fullSent+fullRecv) / float64(csSent+csRecv)
	tw.row("chunk-sync", comma(csSent), comma(csRecv), fmt.Sprintf("%.1fx", factor))
	record("wiki-stream full-ship", map[string]float64{
		"writer_sent_bytes": float64(fullSent), "reader_recv_bytes": float64(fullRecv),
	})
	record("wiki-stream chunk-sync", map[string]float64{
		"writer_sent_bytes": float64(csSent), "reader_recv_bytes": float64(csRecv),
		"wire_savings_factor": factor,
	})
	return nil
}

// readBlob fully materializes key's blob over st and returns its size.
func readBlob(st forkbase.Store, key string) (int, error) {
	o, err := st.Get(bgCtx, key)
	if err != nil {
		return 0, err
	}
	v, err := st.Value(bgCtx, key, o)
	if err != nil {
		return 0, err
	}
	b, err := forkbase.AsBlob(v)
	if err != nil {
		return 0, err
	}
	data, err := b.Bytes()
	if err != nil {
		return 0, err
	}
	return len(data), nil
}

// serverEdit splices n random bytes into the middle of key's blob
// directly on the backend — a version the clients haven't seen.
func serverEdit(db *forkbase.DB, key string, rng *rand.Rand, n int) error {
	o, err := db.Get(bgCtx, key)
	if err != nil {
		return err
	}
	b, err := db.BlobOf(o)
	if err != nil {
		return err
	}
	edit := make([]byte, n)
	rng.Read(edit)
	if err := b.Splice(b.Len()/2, uint64(n), edit); err != nil {
		return err
	}
	_, err = db.Put(bgCtx, key, b)
	return err
}

// comma renders a byte count with thousands separators.
func comma(n int64) string {
	s := fmt.Sprintf("%d", n)
	var out bytes.Buffer
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			out.WriteByte(',')
		}
		out.WriteRune(r)
	}
	return out.String()
}
