package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"time"

	"forkbase"
	"forkbase/internal/chunk"
	"forkbase/internal/postree"
	"forkbase/internal/store"
)

// RunChunkSync measures what the have/want delta-sync subsystem buys
// on versioned workloads: the bytes a client actually moves over the
// wire, full-ship Value/Put against chunk-granular transfer. Two
// experiments:
//
//  1. Bytes-on-wire vs object size — after a 1% in-place edit lands on
//     the server, how much does re-reading the object cost? Full-ship
//     re-downloads everything; chunk sync re-fetches only the chunks
//     the edit produced (the POS-Tree shares the rest), so its cost is
//     near-constant while full-ship grows linearly.
//  2. A wiki-style edit stream — one document, a run of small edits,
//     the reader re-syncing after each — accumulated wire bytes in
//     both directions (delta puts for the writer, delta re-reads for
//     the reader).
func RunChunkSync(w io.Writer, scale Scale) error {
	sizes := []int{256 << 10, 1 << 20, 4 << 20}
	if scale == Paper {
		sizes = []int{1 << 20, 4 << 20, 16 << 20, 64 << 20}
	}
	edits := scale.pick(10, 50)

	backend := forkbase.Open()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := forkbase.NewServer(backend, forkbase.ServerOptions{})
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(bgCtx, 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
		backend.Close()
	}()
	addr := ln.Addr().String()

	fmt.Fprintln(w, "ChunkSync: bytes on the wire to re-read after a 1% edit")
	t := newTable(w, 10, 14, 14, 14, 10)
	t.row("Size", "Cold bytes", "Full-ship", "Chunk-sync", "Moved")
	rng := rand.New(rand.NewSource(11))
	for _, size := range sizes {
		key := fmt.Sprintf("doc-%d", size)
		data := make([]byte, size)
		rng.Read(data)
		if _, err := backend.Put(bgCtx, key, forkbase.NewBlob(data)); err != nil {
			return err
		}

		full, err := forkbase.Dial(addr, forkbase.RemoteConfig{})
		if err != nil {
			return err
		}
		cs, err := forkbase.Dial(addr, forkbase.RemoteConfig{ChunkSync: true})
		if err != nil {
			full.Close()
			return err
		}
		// Cold reads populate the chunk-sync client's cache and give the
		// full-object transfer cost.
		if _, err := readBlob(full, key); err != nil {
			return err
		}
		cold := cs.WireStats().BytesReceived
		if _, err := readBlob(cs, key); err != nil {
			return err
		}
		cold = cs.WireStats().BytesReceived - cold

		if err := serverEdit(backend, key, rng, size/100); err != nil {
			return err
		}
		fullBytes := full.WireStats().BytesReceived
		if _, err := readBlob(full, key); err != nil {
			return err
		}
		fullBytes = full.WireStats().BytesReceived - fullBytes
		csBytes := cs.WireStats().BytesReceived
		if _, err := readBlob(cs, key); err != nil {
			return err
		}
		csBytes = cs.WireStats().BytesReceived - csBytes
		full.Close()
		cs.Close()

		t.row(mib(int64(size)), comma(cold), comma(fullBytes), comma(csBytes),
			fmt.Sprintf("%.1f%%", 100*float64(csBytes)/float64(size)))
		record(fmt.Sprintf("reread-1pct-edit %s", mib(int64(size))), map[string]float64{
			"object_bytes":          float64(size),
			"cold_wire_bytes":       float64(cold),
			"fullship_wire_bytes":   float64(fullBytes),
			"chunksync_wire_bytes":  float64(csBytes),
			"chunksync_moved_ratio": float64(csBytes) / float64(size),
		})
	}

	// Wiki-style stream: a writer commits a run of 1% edits from its
	// own replica; a reader re-syncs after each commit. Both directions
	// accumulate: BytesSent for the writer, BytesReceived for the
	// reader, full-ship vs chunk-sync.
	fmt.Fprintln(w)
	docSize := scale.pick(1<<20, 16<<20)
	fmt.Fprintf(w, "ChunkSync: wiki edit stream (%s doc, %d edits of 1%%)\n", mib(int64(docSize)), edits)
	tw := newTable(w, 22, 16, 16, 10)
	tw.row("Client", "Writer sent", "Reader recvd", "Factor")

	var fullSent, fullRecv, csSent, csRecv int64
	for i, chunked := range []bool{false, true} {
		key := fmt.Sprintf("wiki-%d", i)
		doc := make([]byte, docSize)
		rng.Read(doc)
		cfg := forkbase.RemoteConfig{ChunkSync: chunked}
		writer, err := forkbase.Dial(addr, cfg)
		if err != nil {
			return err
		}
		reader, err := forkbase.Dial(addr, cfg)
		if err != nil {
			writer.Close()
			return err
		}
		if _, err := writer.Put(bgCtx, key, forkbase.NewBlob(doc)); err != nil {
			return err
		}
		if _, err := readBlob(reader, key); err != nil {
			return err
		}
		sent0, recv0 := writer.WireStats().BytesSent, reader.WireStats().BytesReceived
		for e := 0; e < edits; e++ {
			// The writer edits its latest replica — over chunk sync the
			// Value is cache-backed and the Put uploads only new chunks.
			o, err := writer.Get(bgCtx, key)
			if err != nil {
				return err
			}
			v, err := writer.Value(bgCtx, key, o)
			if err != nil {
				return err
			}
			b, err := forkbase.AsBlob(v)
			if err != nil {
				return err
			}
			edit := make([]byte, docSize/100)
			rng.Read(edit)
			off := rng.Intn(docSize - len(edit))
			if err := b.Splice(uint64(off), uint64(len(edit)), edit); err != nil {
				return err
			}
			if _, err := writer.Put(bgCtx, key, b); err != nil {
				return err
			}
			if _, err := readBlob(reader, key); err != nil {
				return err
			}
		}
		sent := writer.WireStats().BytesSent - sent0
		recv := reader.WireStats().BytesReceived - recv0
		writer.Close()
		reader.Close()
		if chunked {
			csSent, csRecv = sent, recv
		} else {
			fullSent, fullRecv = sent, recv
		}
	}
	tw.row("full-ship", comma(fullSent), comma(fullRecv), "1.0x")
	factor := float64(fullSent+fullRecv) / float64(csSent+csRecv)
	tw.row("chunk-sync", comma(csSent), comma(csRecv), fmt.Sprintf("%.1fx", factor))
	record("wiki-stream full-ship", map[string]float64{
		"writer_sent_bytes": float64(fullSent), "reader_recv_bytes": float64(fullRecv),
	})
	record("wiki-stream chunk-sync", map[string]float64{
		"writer_sent_bytes": float64(csSent), "reader_recv_bytes": float64(csRecv),
		"wire_savings_factor": factor,
	})

	if err := runColdReadLatency(w, scale, backend, addr, rng); err != nil {
		return err
	}
	return runParallelBuild(w, scale, rng)
}

// runColdReadLatency measures what the pipelined prefetcher and the
// streamed deep Want buy in wall-clock over a link with real latency:
// a cold read through a loopback proxy injecting a fixed RTT, the
// level-synchronous baseline walk (PullWindow < 0, classic Want)
// against the default pipelined + streamed path. Byte counts cannot
// show this win — both variants move the same chunks — only the number
// of synchronous round trips differs.
func runColdReadLatency(w io.Writer, scale Scale, backend *forkbase.DB, addr string, rng *rand.Rand) error {
	const rtt = time.Millisecond
	sizes := []int{4 << 20}
	if scale == Paper {
		sizes = []int{4 << 20, 16 << 20}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "ChunkSync: cold read wall-clock with %s RTT injected\n", rtt)
	t := newTable(w, 10, 14, 14, 10)
	t.row("Size", "Level-sync", "Pipelined", "Speedup")
	for _, size := range sizes {
		key := fmt.Sprintf("cold-%d", size)
		data := make([]byte, size)
		rng.Read(data)
		if _, err := backend.Put(bgCtx, key, forkbase.NewBlob(data)); err != nil {
			return err
		}
		proxy, err := newLatencyProxy(addr, rtt)
		if err != nil {
			return err
		}
		// Each sample dials a fresh client with an empty in-memory cache
		// so every pull is genuinely cold; the dial happens outside the
		// timed window so both variants pay the handshake equally, and
		// the timer covers Get + Value — the version lookup and the pull
		// itself — not the in-memory byte assembly afterwards, which is
		// identical for both and touches no network. Best of three damps
		// scheduler noise without hiding the RTT cost.
		measure := func(cfg forkbase.RemoteConfig) (time.Duration, error) {
			best := time.Duration(0)
			for i := 0; i < 3; i++ {
				rc, err := forkbase.Dial(proxy.addr(), cfg)
				if err != nil {
					return 0, err
				}
				t0 := time.Now()
				o, err := rc.Get(bgCtx, key)
				if err != nil {
					rc.Close()
					return 0, err
				}
				v, err := rc.Value(bgCtx, key, o)
				d := time.Since(t0)
				if err != nil {
					rc.Close()
					return 0, err
				}
				if i == 0 {
					b, err := forkbase.AsBlob(v)
					if err != nil {
						rc.Close()
						return 0, err
					}
					data, err := b.Bytes()
					if err != nil {
						rc.Close()
						return 0, err
					}
					if len(data) != size {
						rc.Close()
						return 0, fmt.Errorf("bench: cold read returned %d of %d bytes", len(data), size)
					}
				}
				rc.Close()
				if best == 0 || d < best {
					best = d
				}
			}
			return best, nil
		}
		levelSync, err := measure(forkbase.RemoteConfig{ChunkSync: true, PullWindow: -1, DisableWantStream: true})
		if err != nil {
			proxy.close()
			return err
		}
		pipelined, err := measure(forkbase.RemoteConfig{ChunkSync: true})
		proxy.close()
		if err != nil {
			return err
		}
		speedup := levelSync.Seconds() / pipelined.Seconds()
		t.row(mib(int64(size)), levelSync.Round(time.Microsecond), pipelined.Round(time.Microsecond),
			fmt.Sprintf("%.1fx", speedup))
		record(fmt.Sprintf("coldread-%s rtt=1ms", mib(int64(size))), map[string]float64{
			"object_bytes": float64(size),
			"levelsync_ms": float64(levelSync.Microseconds()) / 1e3,
			"pipelined_ms": float64(pipelined.Microseconds()) / 1e3,
			"speedup":      speedup,
		})
	}
	return nil
}

// runParallelBuild measures the write side of the parallel data path:
// chunking a multi-MB blob into a POS-Tree with the sequential builder
// against a four-worker pool. The trees are verified byte-identical —
// the speedup must never come at the price of determinism. On a
// single-core host the pool cannot win (the committed baseline is
// honest about that); at GOMAXPROCS >= 4 it is expected to clear 2x.
func runParallelBuild(w io.Writer, scale Scale, rng *rand.Rand) error {
	size := scale.pick(8<<20, 64<<20)
	data := make([]byte, size)
	rng.Read(data)
	build := func(chunkers int) (chunk.ID, time.Duration, error) {
		cfg := postree.DefaultConfig()
		cfg.Chunkers = chunkers
		best := time.Duration(0)
		var root chunk.ID
		for i := 0; i < 3; i++ {
			b := postree.NewBuilder(store.NewMemStore(), cfg, postree.KindBlob)
			t0 := time.Now()
			b.AppendBytes(data)
			tree, err := b.Finish()
			d := time.Since(t0)
			if err != nil {
				return chunk.ID{}, 0, err
			}
			root = tree.Root()
			if best == 0 || d < best {
				best = d
			}
		}
		return root, best, nil
	}
	seqRoot, seq, err := build(1)
	if err != nil {
		return err
	}
	parRoot, par, err := build(4)
	if err != nil {
		return err
	}
	if seqRoot != parRoot {
		return fmt.Errorf("bench: parallel builder diverged: %s vs %s", parRoot.Short(), seqRoot.Short())
	}
	mbs := func(d time.Duration) float64 { return float64(size) / (1 << 20) / d.Seconds() }
	speedup := seq.Seconds() / par.Seconds()
	fmt.Fprintln(w)
	fmt.Fprintf(w, "ChunkSync: parallel POS-Tree chunking (%s blob, GOMAXPROCS=%d)\n", mib(int64(size)), runtime.GOMAXPROCS(0))
	t := newTable(w, 14, 14, 14, 10)
	t.row("Builder", "Wall", "MB/s", "Speedup")
	t.row("sequential", seq.Round(time.Microsecond), fmt.Sprintf("%.0f", mbs(seq)), "1.0x")
	t.row("chunkers=4", par.Round(time.Microsecond), fmt.Sprintf("%.0f", mbs(par)), fmt.Sprintf("%.1fx", speedup))
	record(fmt.Sprintf("parallel-build %s", mib(int64(size))), map[string]float64{
		"object_bytes": float64(size),
		"seq_mb_s":     mbs(seq),
		"par_mb_s":     mbs(par),
		"speedup":      speedup,
	})
	return nil
}

// readBlob fully materializes key's blob over st and returns its size.
func readBlob(st forkbase.Store, key string) (int, error) {
	o, err := st.Get(bgCtx, key)
	if err != nil {
		return 0, err
	}
	v, err := st.Value(bgCtx, key, o)
	if err != nil {
		return 0, err
	}
	b, err := forkbase.AsBlob(v)
	if err != nil {
		return 0, err
	}
	data, err := b.Bytes()
	if err != nil {
		return 0, err
	}
	return len(data), nil
}

// serverEdit splices n random bytes into the middle of key's blob
// directly on the backend — a version the clients haven't seen.
func serverEdit(db *forkbase.DB, key string, rng *rand.Rand, n int) error {
	o, err := db.Get(bgCtx, key)
	if err != nil {
		return err
	}
	b, err := db.BlobOf(o)
	if err != nil {
		return err
	}
	edit := make([]byte, n)
	rng.Read(edit)
	if err := b.Splice(b.Len()/2, uint64(n), edit); err != nil {
		return err
	}
	_, err = db.Put(bgCtx, key, b)
	return err
}

// comma renders a byte count with thousands separators.
func comma(n int64) string {
	s := fmt.Sprintf("%d", n)
	var out bytes.Buffer
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			out.WriteByte(',')
		}
		out.WriteRune(r)
	}
	return out.String()
}
