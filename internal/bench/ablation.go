package bench

import (
	"crypto/sha256"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"forkbase/internal/postree"
	"forkbase/internal/store"
)

// Ablations isolate the design choices DESIGN.md §6 calls out. They are
// not paper figures but quantify why the POS-Tree is built the way it
// is.

// fixedSizeConfig disables the pattern (it can never fire before the
// forced max) so every leaf splits at exactly maxBytes — the strawman
// §4.3 argues against.
func fixedSizeConfig(maxBytes int) postree.Config {
	return postree.Config{LeafQ: 62, MaxLeafBytes: maxBytes, IndexR: 6}
}

// RunAblationFixedVsPattern demonstrates the boundary-shifting problem:
// after inserting a few bytes into the middle of a large blob,
// fixed-size chunking rewrites every chunk after the insertion point,
// while pattern-based chunking re-synchronizes within a chunk or two.
func RunAblationFixedVsPattern(w io.Writer, scale Scale) error {
	size := scale.pick(1<<20, 16<<20)
	data := payload(size, 31)

	fmt.Fprintln(w, "Ablation: fixed-size vs pattern-based splitting (middle insertion)")
	t := newTable(w, 14, 12, 14, 16)
	t.row("Splitting", "Chunks", "NewChunks", "NewBytes")

	for _, mode := range []struct {
		name string
		cfg  postree.Config
	}{
		{"fixed-4KB", fixedSizeConfig(4 << 10)},
		{"pattern-4KB", postree.DefaultConfig()},
	} {
		s := store.NewMemStore()
		b := postree.NewBuilder(s, mode.cfg, postree.KindBlob)
		b.AppendBytes(data)
		tree, err := b.Finish()
		if err != nil {
			return err
		}
		st, err := tree.TreeStats()
		if err != nil {
			return err
		}
		before := s.Stats()
		if _, err := tree.SpliceBytes(uint64(size/2), 0, []byte("inserted-bytes!")); err != nil {
			return err
		}
		after := s.Stats()
		t.row(mode.name, st.Leaves, after.Chunks-before.Chunks, after.Bytes-before.Bytes)
	}
	return nil
}

// RunAblationChunkSize sweeps the expected chunk size (§4.3.3 notes the
// size is configurable per type) and reports build time, tree shape and
// dedup effectiveness for a versioned workload.
func RunAblationChunkSize(w io.Writer, scale Scale) error {
	size := scale.pick(1<<20, 8<<20)
	versions := 10
	fmt.Fprintln(w, "Ablation: expected chunk size sweep (10 versions, small edits)")
	t := newTable(w, 10, 12, 10, 14, 14)
	t.row("ChunkKB", "BuildTime", "Leaves", "StoreBytes", "vs-naive")

	for _, q := range []uint{10, 11, 12, 13, 14} {
		cfg := postree.Config{LeafQ: q, IndexR: 6}
		s := store.NewMemStore()
		data := payload(size, 33)
		t0 := time.Now()
		b := postree.NewBuilder(s, cfg, postree.KindBlob)
		b.AppendBytes(data)
		tree, err := b.Finish()
		if err != nil {
			return err
		}
		build := time.Since(t0)
		st, _ := tree.TreeStats()
		for v := 0; v < versions; v++ {
			tree, err = tree.SpliceBytes(uint64(v*1000+500), 8, []byte(fmt.Sprintf("%08d", v)))
			if err != nil {
				return err
			}
		}
		naive := int64(size) * int64(versions+1)
		t.row(1<<(q-10), fmt.Sprintf("%.1fms", ms(build)), st.Leaves,
			s.Stats().Bytes, fmt.Sprintf("%.1f%%", 100*float64(s.Stats().Bytes)/float64(naive)))
	}
	return nil
}

// RunAblationHash compares SHA-256 (tamper-evident cids) against a
// non-cryptographic FNV digest, quantifying what the security property
// costs on the write path.
func RunAblationHash(w io.Writer, scale Scale) error {
	size := scale.pick(8<<20, 64<<20)
	data := payload(size, 35)
	fmt.Fprintln(w, "Ablation: content-hash cost (the price of tamper evidence)")
	t := newTable(w, 12, 14, 14)
	t.row("Hash", "Time", "MB/s")

	t0 := time.Now()
	for off := 0; off < len(data); off += 4096 {
		end := off + 4096
		if end > len(data) {
			end = len(data)
		}
		sha256.Sum256(data[off:end])
	}
	d := time.Since(t0)
	t.row("SHA-256", fmt.Sprintf("%.1fms", ms(d)), fmt.Sprintf("%.0f", float64(size)/(1<<20)/d.Seconds()))

	t0 = time.Now()
	for off := 0; off < len(data); off += 4096 {
		end := off + 4096
		if end > len(data) {
			end = len(data)
		}
		h := fnv.New64a()
		h.Write(data[off:end])
		h.Sum64()
	}
	d = time.Since(t0)
	t.row("FNV-64a", fmt.Sprintf("%.1fms", ms(d)), fmt.Sprintf("%.0f", float64(size)/(1<<20)/d.Seconds()))
	fmt.Fprintln(w, "note: FNV would forfeit tamper evidence and dedup safety; shown for cost only")
	return nil
}

// RunAblationIndexPattern quantifies §4.3.3's claim that detecting
// index-node boundaries from child cids (P') is far cheaper than
// running the rolling hash (P) over serialized index entries.
func RunAblationIndexPattern(w io.Writer, scale Scale) error {
	elems := scale.pick(200_000, 2_000_000)
	fmt.Fprintln(w, "Ablation: index-node boundary detection, cid pattern P' vs rolling hash P")
	t := newTable(w, 16, 14)
	t.row("Detector", "Time")

	// Build a large map once; its construction uses P' internally.
	s := store.NewMemStore()
	cfg := postree.DefaultConfig()
	b := postree.NewBuilder(s, cfg, postree.KindMap)
	for i := 0; i < elems; i++ {
		b.Append(postree.EncodeMapElem([]byte(fmt.Sprintf("key-%09d", i)), []byte("value-xxxxxxxx")))
	}
	t0 := time.Now()
	tree, err := b.Finish()
	if err != nil {
		return err
	}
	build := time.Since(t0)
	st, _ := tree.TreeStats()

	// The alternative: run the rolling hash over every leaf payload
	// again, as P-over-entries would.
	t0 = time.Now()
	it := tree.Leaves()
	ch := fixedRoller()
	for it.Next() {
		ch(it.Payload())
	}
	rollCost := time.Since(t0)
	t.row("P' (cid bits)", fmt.Sprintf("%.1fms (whole build, %d nodes)", ms(build), st.Leaves+st.IndexNodes))
	t.row("P (rolling)", fmt.Sprintf("+%.1fms extra rolling-hash pass", ms(rollCost)))
	return nil
}

// fixedRoller returns a closure that feeds bytes through a rolling hash
// discarding the result — the marginal cost of P.
func fixedRoller() func([]byte) {
	ch := newRollerSink()
	return ch
}
