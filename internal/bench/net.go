package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"time"

	"forkbase"
	"forkbase/internal/workload"
)

// RunNet measures the network-serving subsystem on a TCP loopback:
// how much of the embedded engine's throughput survives the wire, and
// how pipelining depth (concurrent in-flight requests) and connection
// count buy it back. The paper serves everything through dispatchers
// (§4.1); this is the experiment that keeps our daemon honest about
// the cost of that hop.
//
// Output: one embedded baseline row, then a loopback row per
// (connections × pipelining depth) combination, for small-String puts
// and gets (per-request overhead dominated) — the workload where the
// wire hurts most. A final pair of rows shows 64 KiB Blob transfers,
// where payload bytes dominate and the gap narrows.
func RunNet(w io.Writer, scale Scale) error {
	ops := scale.pick(2_000, 50_000)
	blobOps := scale.pick(200, 5_000)

	backend := forkbase.Open()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := forkbase.NewServer(backend, forkbase.ServerOptions{})
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(bgCtx, 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
		backend.Close()
	}()

	fmt.Fprintln(w, "Net: loopback serving vs embedded, small String put/get")
	t := newTable(w, 22, 12, 12, 12, 12, 14, 14)
	t.row("Client", "Puts/s", "Gets/s", "Put allocs", "Get allocs", "Put p99", "Get p99")

	// Embedded baseline: the same operation mix with no wire at all.
	base, err := netSmallOps(backend, ops, 1)
	if err != nil {
		return err
	}
	t.row("embedded", rps(base.putRate), rps(base.getRate),
		apo(base.putAllocs), apo(base.getAllocs), base.put99, base.get99)
	record("small embedded", base.metrics())

	for _, conns := range []int{1, 4} {
		for _, depth := range []int{1, 8, 32} {
			rc, err := forkbase.Dial(ln.Addr().String(), forkbase.RemoteConfig{Conns: conns})
			if err != nil {
				return err
			}
			m, err := netSmallOps(rc, ops, depth)
			rc.Close()
			if err != nil {
				return err
			}
			name := fmt.Sprintf("remote c=%d depth=%d", conns, depth)
			t.row(name, rps(m.putRate), rps(m.getRate),
				apo(m.putAllocs), apo(m.getAllocs), m.put99, m.get99)
			record("small "+name, m.metrics())
		}
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Net: 64KB Blob transfers (payload-dominated)")
	tb := newTable(w, 22, 14, 14)
	tb.row("Client", "Put MB/s", "Get MB/s")
	putMB, getMB, err := netBlobOps(backend, blobOps)
	if err != nil {
		return err
	}
	tb.row("embedded", fmt.Sprintf("%.1f", putMB), fmt.Sprintf("%.1f", getMB))
	record("blob64k embedded", map[string]float64{"put_mb_s": putMB, "get_mb_s": getMB})
	rc, err := forkbase.Dial(ln.Addr().String(), forkbase.RemoteConfig{Conns: 4})
	if err != nil {
		return err
	}
	putMB, getMB, err = netBlobOps(rc, blobOps)
	rc.Close()
	if err != nil {
		return err
	}
	tb.row("remote c=4 depth=8", fmt.Sprintf("%.1f", putMB), fmt.Sprintf("%.1f", getMB))
	record("blob64k remote c=4 depth=8", map[string]float64{"put_mb_s": putMB, "get_mb_s": getMB})
	return nil
}

func rps(v float64) string { return fmt.Sprintf("%.0f", v) }

func apo(v float64) string { return fmt.Sprintf("%.1f", v) }

// netSmallMetrics is one netSmallOps measurement: throughputs, tail
// latencies, and process-wide allocations per operation. The alloc
// figure is a whole-pipeline number — on loopback it covers client
// encode, server dispatch and both frame trips — which is exactly the
// quantity the pooled hot path is supposed to hold down.
type netSmallMetrics struct {
	putRate, getRate     float64
	putAllocs, getAllocs float64
	put99, get99         time.Duration
}

func (m netSmallMetrics) metrics() map[string]float64 {
	return map[string]float64{
		"puts_per_s": m.putRate, "gets_per_s": m.getRate,
		"put_allocs_per_op": m.putAllocs, "get_allocs_per_op": m.getAllocs,
		"put_p99_ms": ms(m.put99), "get_p99_ms": ms(m.get99),
	}
}

// drivePool runs ops calls of fn across depth concurrent workers —
// the shape of a pipelined client — returning the wall-clock elapsed
// and, when sw is non-nil, recording per-call latencies into it. The
// lowest-indexed worker's error wins; remaining queued work still
// drains. Each worker accumulates samples and its first error in its
// own slot, merged only after the pool drains: a shared metrics mutex
// inside the timed region would serialize the workers and fold lock
// wait into the latencies being measured.
func drivePool(ops, depth int, sw *stopwatch, fn func(i int) error) (time.Duration, error) {
	var wg sync.WaitGroup
	samples := make([][]time.Duration, depth)
	errs := make([]error, depth)
	next := make(chan int)
	t0 := time.Now()
	for d := 0; d < depth; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := range next {
				s0 := time.Now()
				callErr := fn(i)
				samples[d] = append(samples[d], time.Since(s0))
				if callErr != nil && errs[d] == nil {
					errs[d] = callErr
				}
			}
		}(d)
	}
	for i := 0; i < ops; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(t0)
	var firstErr error
	for d := 0; d < depth; d++ {
		if sw != nil {
			for _, s := range samples[d] {
				sw.add(s)
			}
		}
		if errs[d] != nil && firstErr == nil {
			firstErr = errs[d]
		}
	}
	return elapsed, firstErr
}

// netSmallOps drives ops String puts then ops gets at the given
// pipelining depth (depth concurrent workers sharing the client) and
// reports throughputs, p99 latencies and allocations per op.
func netSmallOps(st forkbase.Store, ops, depth int) (m netSmallMetrics, err error) {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("net-%02d", i)
	}
	run := func(fn func(i int) error) (float64, float64, time.Duration, error) {
		var sw stopwatch
		// Mallocs deltas bracket the pool, not each call: ReadMemStats
		// stops the world, so per-call sampling would poison the very
		// latencies being measured.
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		elapsed, err := drivePool(ops, depth, &sw, fn)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return 0, 0, 0, err
		}
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(ops)
		return float64(ops) / elapsed.Seconds(), allocs, sw.percentile(99), nil
	}
	m.putRate, m.putAllocs, m.put99, err = run(func(i int) error {
		_, err := st.Put(bgCtx, keys[i%len(keys)], forkbase.String(fmt.Sprintf("v%d", i)))
		return err
	})
	if err != nil {
		return
	}
	m.getRate, m.getAllocs, m.get99, err = run(func(i int) error {
		_, err := st.Get(bgCtx, keys[i%len(keys)])
		return err
	})
	return
}

// netBlobOps measures 64 KiB Blob write and full-read bandwidth with
// 8 concurrent workers.
func netBlobOps(st forkbase.Store, ops int) (putMBs, getMBs float64, err error) {
	const blobSize = 64 << 10
	const depth = 8
	rng := rand.New(rand.NewSource(7))
	blobs := make([][]byte, 16)
	for i := range blobs {
		blobs[i] = workload.RandText(rng, blobSize)
	}
	drive := func(fn func(i int) error) (float64, error) {
		elapsed, err := drivePool(ops, depth, nil, fn)
		if err != nil {
			return 0, err
		}
		return float64(ops) * blobSize / (1 << 20) / elapsed.Seconds(), nil
	}
	putMBs, err = drive(func(i int) error {
		_, err := st.Put(bgCtx, fmt.Sprintf("blob-%02d", i%32), forkbase.NewBlob(blobs[i%len(blobs)]))
		return err
	})
	if err != nil {
		return
	}
	getMBs, err = drive(func(i int) error {
		o, err := st.Get(bgCtx, fmt.Sprintf("blob-%02d", i%32))
		if err != nil {
			return err
		}
		v, err := st.Value(bgCtx, fmt.Sprintf("blob-%02d", i%32), o)
		if err != nil {
			return err
		}
		b, err := forkbase.AsBlob(v)
		if err != nil {
			return err
		}
		_, err = b.Bytes()
		return err
	})
	return
}
