package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"forkbase"
)

// RunRecover measures metadata recovery: how long OpenPath takes to
// bring a store back as a function of the metadata journal's length,
// with snapshot compaction off (reopen replays every WAL record) and
// on (reopen loads one snapshot plus a short WAL tail). The workload
// is branch-mutation heavy — every put moves a head, every fourth op
// forks or removes a branch — so the journal, not the chunk log,
// dominates what recovery replays. Reported per journal length:
// WAL bytes and reopen latency without snapshots, then snapshot bytes,
// residual WAL bytes and reopen latency with them.
func RunRecover(w io.Writer, scale Scale) error {
	lengths := []int{512, 2048, 8192}
	if scale == Quick {
		lengths = []int{256, 1024, 4096}
	}
	snapshotEvery := 1024

	fmt.Fprintln(w, "metadata recovery: reopen latency vs journal length")
	fmt.Fprintf(w, "%8s | %12s %12s | %12s %12s %12s\n",
		"ops", "wal B (off)", "reopen (off)", "snap B (on)", "wal B (on)", "reopen (on)")
	for _, n := range lengths {
		var row [2]struct {
			walBytes  int64
			snapBytes int64
			reopen    time.Duration
		}
		for mode, every := range []int{-1, snapshotEvery} {
			dir, err := tempDir("fbrecover")
			if err != nil {
				return err
			}
			db, err := forkbase.OpenPath(dir, forkbase.WithSnapshotEvery(every))
			if err != nil {
				os.RemoveAll(dir)
				return err
			}
			if err := mutate(db, n); err != nil {
				db.Close()
				os.RemoveAll(dir)
				return err
			}
			ms, _ := db.MetaStats()
			if err := db.Close(); err != nil {
				os.RemoveAll(dir)
				return err
			}
			t0 := time.Now()
			db, err = forkbase.OpenPath(dir, forkbase.WithSnapshotEvery(every))
			if err != nil {
				os.RemoveAll(dir)
				return err
			}
			row[mode].reopen = time.Since(t0)
			row[mode].walBytes = ms.WALBytes
			row[mode].snapBytes = ms.SnapshotBytes
			db.Close()
			os.RemoveAll(dir)
		}
		fmt.Fprintf(w, "%8d | %12d %12s | %12d %12d %12s\n",
			n, row[0].walBytes, row[0].reopen.Round(10*time.Microsecond),
			row[1].snapBytes, row[1].walBytes, row[1].reopen.Round(10*time.Microsecond))
	}
	return nil
}

// mutate performs n branch-table mutations across a small key set.
func mutate(db *forkbase.DB, n int) error {
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			// Fork a key written three iterations ago, so the ref
			// branch always exists.
			key := fmt.Sprintf("key-%03d", (i-3)%64)
			if err := db.Fork(bgCtx, key, fmt.Sprintf("b%d", i)); err != nil {
				return err
			}
			continue
		}
		key := fmt.Sprintf("key-%03d", i%64)
		if _, err := db.Put(bgCtx, key, forkbase.String(fmt.Sprintf("v%d", i))); err != nil {
			return err
		}
	}
	return nil
}
