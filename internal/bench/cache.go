package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"forkbase"
	"forkbase/internal/wiki"
	"forkbase/internal/workload"
)

// bgCtx is the root context every benchmark runs under: benchmarks are
// the outermost caller, so there is no caller context to thread, and a
// single shared root keeps the measured loops free of per-op context
// construction.
//
//forkvet:allow ctxflow — benchmarks own their lifecycle; there is no caller to inherit a context from
var bgCtx = context.Background()

// RunCache measures the chunk-cache read subsystem: hit ratio vs read
// throughput on a file-backed store, for a micro workload (skewed
// repeated full reads of Blob objects) and the wiki workload (page
// loads after trace-driven edit history). The same data is read at
// several cache budgets, from disabled to larger than the working set;
// the paper's content-addressed chunks make the cache trivially
// coherent, so the whole gain is the avoided decode + crc + disk (or
// remote-hop) cost.
func RunCache(w io.Writer, scale Scale) error {
	if err := runCacheMicro(w, scale); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return runCacheWiki(w, scale)
}

// cacheBudgets are the byte budgets each phase sweeps: off, a cache
// that holds a fraction of the working set, and one that holds it all.
func cacheBudgets(datasetBytes int64) []int64 {
	return []int64{0, datasetBytes / 8, 2 * datasetBytes}
}

func budgetName(b int64) string {
	if b == 0 {
		return "off"
	}
	return mib(b)
}

// withCachedDB runs one budget's measurement against a file-backed DB
// opened with that cache budget, owning the temp dir and DB lifecycle
// so measurement code can return early on error without leaking.
func withCachedDB(budget int64, fn func(db *forkbase.DB) error) error {
	dir, err := tempDir("fbcache")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := forkbase.OpenPath(dir, forkbase.Options{CacheBytes: budget})
	if err != nil {
		return err
	}
	defer db.Close()
	return fn(db)
}

func runCacheMicro(w io.Writer, scale Scale) error {
	blobs := scale.pick(128, 1024)
	blobSize := 64 << 10
	reads := scale.pick(2_000, 40_000)
	dataset := int64(blobs) * int64(blobSize)

	fmt.Fprintln(w, "Cache (micro): skewed repeated Blob reads, file-backed store")
	t := newTable(w, 10, 12, 12, 12, 12)
	t.row("Cache", "Reads/s", "MB/s", "HitRatio", "Evictions")

	for _, budget := range cacheBudgets(dataset) {
		err := withCachedDB(budget, func(db *forkbase.DB) error {
			rng := rand.New(rand.NewSource(21))
			for i := 0; i < blobs; i++ {
				if _, err := db.Put(bgCtx, fmt.Sprintf("blob-%05d", i),
					forkbase.NewBlob(workload.RandText(rng, blobSize))); err != nil {
					return err
				}
			}
			// Zipf-skewed read mix: a hot set small caches can hold.
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(blobs-1))
			before := db.Stats()
			t0 := time.Now()
			for i := 0; i < reads; i++ {
				o, err := db.Get(bgCtx, fmt.Sprintf("blob-%05d", zipf.Uint64()))
				if err != nil {
					return err
				}
				b, err := db.BlobOf(o)
				if err != nil {
					return err
				}
				if _, err := b.Bytes(); err != nil {
					return err
				}
			}
			elapsed := time.Since(t0)
			after := db.Stats()
			t.row(budgetName(budget),
				opsPerSec(reads, elapsed),
				fmt.Sprintf("%.1f", float64(int64(reads)*int64(blobSize))/(1<<20)/elapsed.Seconds()),
				hitRatioDelta(before, after),
				after.CacheEvictions-before.CacheEvictions)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func runCacheWiki(w io.Writer, scale Scale) error {
	pages := scale.pick(160, 1600)
	versions := 4
	loads := scale.pick(2_000, 40_000)
	pageSize := 15 << 10
	dataset := int64(pages) * int64(pageSize)

	fmt.Fprintln(w, "Cache (wiki): page loads after edit history, file-backed store")
	t := newTable(w, 10, 12, 12, 12)
	t.row("Cache", "Loads/s", "HitRatio", "Evictions")

	for _, budget := range cacheBudgets(dataset) {
		err := withCachedDB(budget, func(db *forkbase.DB) error {
			e := wiki.NewForkBase(db, wiki.FetchModel{})
			seed := wiki.NewClient()
			rng := rand.New(rand.NewSource(23))
			trace := workload.NewWikiTrace(24, pages, 200, 0.9, 0)
			for p := 0; p < pages; p++ {
				if err := e.Save(bgCtx, seed, fmt.Sprintf("page-%05d", p), workload.RandText(rng, pageSize)); err != nil {
					return err
				}
			}
			for v := 1; v < versions; v++ {
				for p := 0; p < pages/4; p++ {
					if err := e.Edit(bgCtx, seed, trace.Next(pageSize)); err != nil {
						return err
					}
				}
			}
			// Fresh clients per load: the only caching under test is the
			// store's, not the wiki client's chunk set.
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(pages-1))
			before := db.Stats()
			t0 := time.Now()
			for i := 0; i < loads; i++ {
				if _, err := e.Load(bgCtx, wiki.NewClient(), fmt.Sprintf("page-%05d", zipf.Uint64())); err != nil {
					return err
				}
			}
			elapsed := time.Since(t0)
			after := db.Stats()
			t.row(budgetName(budget),
				opsPerSec(loads, elapsed),
				hitRatioDelta(before, after),
				after.CacheEvictions-before.CacheEvictions)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// hitRatioDelta formats the cache hit ratio over the window between
// two stats snapshots.
func hitRatioDelta(before, after forkbase.StoreStats) string {
	hits := after.CacheHits - before.CacheHits
	misses := after.CacheMisses - before.CacheMisses
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
}
