package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"forkbase/internal/cluster"
	"forkbase/internal/types"
	"forkbase/internal/workload"
)

// RunFig8 reproduces Figure 8: Get/Put throughput as servlets scale
// from 1 to 16 nodes, with 256 B and 2560 B values. Scaling is close to
// linear because servlets share nothing (§6.1).
func RunFig8(w io.Writer, scale Scale) error {
	nodesList := []int{1, 2, 4, 8, 12, 16}
	opsPerClient := scale.pick(300, 3000)
	clientsPerNode := 4
	fmt.Fprintln(w, "Figure 8: Scalability with multiple servlets (ops/sec)")
	t := newTable(w, 8, 14, 14, 14, 14)
	t.row("Nodes", "Get-256", "Put-256", "Get-2560", "Put-2560")

	for _, nodes := range nodesList {
		var cells [4]string
		for si, size := range []int{256, 2560} {
			c, err := cluster.New(cluster.Options{Nodes: nodes, Placement: cluster.TwoLayer})
			if err != nil {
				return err
			}
			clients := clientsPerNode * nodes
			value := payload(size, si)

			run := func(put bool) time.Duration {
				var wg sync.WaitGroup
				t0 := time.Now()
				for cl := 0; cl < clients; cl++ {
					wg.Add(1)
					go func(cl int) {
						defer wg.Done()
						for i := 0; i < opsPerClient; i++ {
							key := fmt.Sprintf("k-%d-%d", cl, i)
							if put {
								if _, err := c.Put(bgCtx, key, "master", types.String(value)); err != nil {
									panic(err)
								}
							} else {
								if _, err := c.Get(bgCtx, key, "master"); err != nil {
									panic(err)
								}
							}
						}
					}(cl)
				}
				wg.Wait()
				return time.Since(t0)
			}
			putTime := run(true)
			getTime := run(false)
			cells[si*2] = opsPerSec(clients*opsPerClient, getTime)
			cells[si*2+1] = opsPerSec(clients*opsPerClient, putTime)
			c.Close()
		}
		t.row(nodes, cells[0], cells[1], cells[2], cells[3])
	}
	return nil
}

// RunFig15 reproduces Figure 15: per-node storage size under a
// Zipf-skewed wiki workload, comparing one-layer partitioning (page
// content stored on the key's owner) against the two-layer scheme
// (chunks spread by cid).
func RunFig15(w io.Writer, scale Scale) error {
	nodes := 16
	pages := scale.pick(400, 3200)
	edits := scale.pick(800, 10000)
	pageSize := 15 << 10

	fmt.Fprintln(w, "Figure 15: Storage size distribution under zipf-skewed load (16 nodes)")
	t := newTable(w, 10, 16, 16)
	t.row("Node", "1LP-bytes", "2LP-bytes")

	sizes := make(map[cluster.Placement][]int64)
	for _, placement := range []cluster.Placement{cluster.OneLayer, cluster.TwoLayer} {
		c, err := cluster.New(cluster.Options{Nodes: nodes, Placement: placement})
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(99))
		trace := workload.NewWikiTrace(7, pages, 200, 0.9, 1.5)
		// Seed pages then edit with skew; page content goes through
		// the cluster as Blobs.
		contents := make(map[string][]byte)
		for i := 0; i < edits; i++ {
			e := trace.Next(pageSize)
			cur, ok := contents[e.Page]
			if !ok {
				cur = workload.RandText(rng, pageSize)
			}
			off := e.Offset
			if off > len(cur) {
				off = len(cur)
			}
			end := off + len(e.Content)
			if end > len(cur) {
				end = len(cur)
			}
			next := append(append(append([]byte(nil), cur[:off]...), e.Content...), cur[end:]...)
			contents[e.Page] = next
			if _, err := c.Put(bgCtx, e.Page, "master", types.NewBlob(next)); err != nil {
				return err
			}
		}
		sizes[placement] = c.NodeStorageBytes()
		c.Close()
	}
	var max1, min1, max2, min2 int64
	for i := 0; i < nodes; i++ {
		s1, s2 := sizes[cluster.OneLayer][i], sizes[cluster.TwoLayer][i]
		t.row(i, s1, s2)
		if i == 0 {
			max1, min1, max2, min2 = s1, s1, s2, s2
		}
		if s1 > max1 {
			max1 = s1
		}
		if s1 < min1 {
			min1 = s1
		}
		if s2 > max2 {
			max2 = s2
		}
		if s2 < min2 {
			min2 = s2
		}
	}
	fmt.Fprintf(w, "1LP max/min = %.2f   2LP max/min = %.2f\n", ratio(max1, min1), ratio(max2, min2))
	return nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return float64(a)
	}
	return float64(a) / float64(b)
}
