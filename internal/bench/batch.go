package bench

import (
	"fmt"
	"io"
	"time"

	"forkbase"
)

// RunBatchPut measures the batched write path of the unified Store API
// against individual Puts, on both Store implementations. The batch
// amortizes different costs per backend: the embedded engine takes
// each key's update lock once per group and defers the branch-table
// update, while the cluster client dispatches once per owning servlet
// — so with a simulated network hop the win scales with the batch
// size.
func RunBatchPut(w io.Writer, scale Scale) error {
	ctx := bgCtx
	writes := scale.pick(2000, 20000)
	batchSize := 64
	keys := scale.pick(16, 64)
	payload := []byte("batched-write-payload-0000000000")

	run := func(st forkbase.Store, batched bool) (time.Duration, error) {
		t0 := time.Now()
		if batched {
			for done := 0; done < writes; done += batchSize {
				b := forkbase.NewBatch()
				for i := 0; i < batchSize && done+i < writes; i++ {
					b.Put(fmt.Sprintf("k%d", (done+i)%keys), forkbase.String(payload))
				}
				if _, err := st.Apply(ctx, b); err != nil {
					return 0, err
				}
			}
		} else {
			for i := 0; i < writes; i++ {
				if _, err := st.Put(ctx, fmt.Sprintf("k%d", i%keys), forkbase.String(payload)); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(t0), nil
	}

	fmt.Fprintf(w, "Batched vs individual puts (%d writes, batch=%d, %d keys)\n", writes, batchSize, keys)
	tbl := newTable(w, 22, 14, 14, 10)
	tbl.row("backend", "put ops/s", "batch ops/s", "speedup")
	backends := []struct {
		name string
		open func() (forkbase.Store, error)
	}{
		{"embedded", func() (forkbase.Store, error) { return forkbase.Open(), nil }},
		{"cluster/4", func() (forkbase.Store, error) {
			return forkbase.OpenCluster(forkbase.ClusterConfig{Nodes: 4, TwoLayer: true})
		}},
	}
	if scale == Paper {
		// The simulated network hop spends real wall-clock in
		// time.Sleep; keep it out of the Quick scale so CI's bench
		// smoke (and any test harness run) never idles in sleeps.
		backends = append(backends, struct {
			name string
			open func() (forkbase.Store, error)
		}{"cluster/4+50us-net", func() (forkbase.Store, error) {
			return forkbase.OpenCluster(forkbase.ClusterConfig{
				Nodes: 4, TwoLayer: true, NetLatency: 50 * time.Microsecond,
			})
		}})
	}
	for _, be := range backends {
		var elapsed [2]time.Duration
		for mode, batched := range []bool{false, true} {
			st, err := be.open()
			if err != nil {
				return err
			}
			elapsed[mode], err = run(st, batched)
			st.Close()
			if err != nil {
				return err
			}
		}
		speedup := float64(elapsed[0]) / float64(elapsed[1])
		tbl.row(be.name, opsPerSec(writes, elapsed[0]), opsPerSec(writes, elapsed[1]),
			fmt.Sprintf("%.2fx", speedup))
	}
	return nil
}
