package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, dir, file string, rows []MetricRow) {
	t.Helper()
	out, err := json.Marshal(Metrics{Experiment: "t", Scale: "quick", Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, file), out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// scale writes both guarded snapshot files with every guarded metric
// multiplied by factor relative to a fixed base value (direction-
// aware: higher-is-better metrics shrink when factor < 1 means
// "worse" is requested by the caller choosing the factor).
func writeGuarded(t *testing.T, dir string, factor float64) {
	t.Helper()
	byFile := map[string]map[string]map[string]float64{}
	for _, g := range GuardedMetrics {
		if byFile[g.File] == nil {
			byFile[g.File] = map[string]map[string]float64{}
		}
		if byFile[g.File][g.Row] == nil {
			byFile[g.File][g.Row] = map[string]float64{}
		}
		byFile[g.File][g.Row][g.Metric] = 1000 * factor
	}
	for file, rows := range byFile {
		var out []MetricRow
		for name, vals := range rows {
			out = append(out, MetricRow{Name: name, Values: vals})
		}
		writeSnapshot(t, dir, file, out)
	}
}

func TestRatchetPassesWithinTolerance(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeGuarded(t, base, 1.0)
	writeGuarded(t, fresh, 1.0) // identical numbers: every series ok
	if fails := Ratchet(io.Discard, base, fresh, 0.20); len(fails) != 0 {
		t.Fatalf("identical snapshots failed the ratchet: %v", fails)
	}
}

func TestRatchetFailsOnRegression(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeGuarded(t, base, 1.0)
	// Every metric at half its baseline: higher-is-better series are
	// 50% worse (fail); the lower-is-better ratio improved (pass).
	writeGuarded(t, fresh, 0.5)
	fails := Ratchet(io.Discard, base, fresh, 0.20)
	var wantFails int
	for _, g := range GuardedMetrics {
		if g.HigherIsBetter {
			wantFails++
		}
	}
	if len(fails) != wantFails {
		t.Fatalf("got %d failures, want %d: %v", len(fails), wantFails, fails)
	}
}

func TestRatchetFailsOnMissingSeries(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeGuarded(t, base, 1.0)
	// fresh dir has no snapshots at all: every series must fail, not
	// silently pass.
	fails := Ratchet(io.Discard, base, fresh, 0.20)
	if len(fails) != len(GuardedMetrics) {
		t.Fatalf("got %d failures, want %d", len(fails), len(GuardedMetrics))
	}
	for _, f := range fails {
		if !strings.Contains(f, "missing") {
			t.Fatalf("unexpected failure kind: %s", f)
		}
	}
}
