package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"forkbase"
	"forkbase/internal/workload"
)

// RunGC measures the garbage collector on the wiki workload: every
// page gets a heavy edit history on a "draft" branch beside a live
// master version; removing the drafts turns most of the store into
// garbage, and one GC must hand the bytes back to the OS while reader
// and writer traffic keeps hitting master. Reported: on-disk bytes
// before/after (and the reclaimed fraction), collection wall time, and
// the Get/Put throughput sustained during the collection — with a
// post-GC integrity pass over every surviving head.
func RunGC(w io.Writer, scale Scale) error {
	pages := scale.pick(48, 320)
	pageSize := 24 << 10
	draftVersions := scale.pick(8, 24)
	editSize := 4 << 10

	dir, err := tempDir("fbgc")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db, err := forkbase.OpenPath(dir, forkbase.Options{SegmentSize: 1 << 20})
	if err != nil {
		return err
	}
	defer db.Close()

	pageKey := func(p int) string { return fmt.Sprintf("page-%05d", p) }
	rng := rand.New(rand.NewSource(42))
	for p := 0; p < pages; p++ {
		if _, err := db.Put(bgCtx, pageKey(p), forkbase.NewBlob(workload.RandText(rng, pageSize))); err != nil {
			return err
		}
		if err := db.Fork(bgCtx, pageKey(p), "draft"); err != nil {
			return err
		}
	}
	// Draft edit history: each version splices fresh text into the
	// page, so consecutive versions share most chunks (the dedup the
	// collector must be aware of) while accumulating draft-only ones.
	for v := 0; v < draftVersions; v++ {
		for p := 0; p < pages; p++ {
			o, err := db.Get(bgCtx, pageKey(p), forkbase.WithBranch("draft"))
			if err != nil {
				return err
			}
			blob, err := db.BlobOf(o)
			if err != nil {
				return err
			}
			off := uint64(rng.Intn(int(blob.Len())))
			if err := blob.Insert(off, workload.RandText(rng, editSize)); err != nil {
				return err
			}
			if _, err := db.Put(bgCtx, pageKey(p), blob, forkbase.WithBranch("draft")); err != nil {
				return err
			}
		}
	}
	before, err := diskBytes(dir)
	if err != nil {
		return err
	}
	for p := 0; p < pages; p++ {
		if err := db.RemoveBranch(bgCtx, pageKey(p), "draft"); err != nil {
			return err
		}
	}

	// Collect while concurrent traffic hammers master: correctness of
	// reads/writes during the sweep is part of what is being measured.
	var reads, writes, failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		for {
			select {
			case <-stop:
				return
			default:
			}
			o, err := db.Get(bgCtx, pageKey(rng.Intn(pages)))
			if err != nil {
				failures.Add(1)
				continue
			}
			blob, err := db.BlobOf(o)
			if err == nil {
				_, err = blob.Bytes()
			}
			if err != nil {
				failures.Add(1)
				continue
			}
			reads.Add(1)
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(78))
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Small, paced edits: the point is correctness and liveness
			// of the write path during collection. Every version written
			// here stays live forever (its history chains to the head),
			// so an unthrottled writer would grow the live set and muddy
			// the reclaim measurement.
			if _, err := db.Put(bgCtx, pageKey(rng.Intn(pages)),
				forkbase.NewBlob(workload.RandText(rng, 256))); err != nil {
				failures.Add(1)
				continue
			}
			writes.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let traffic reach steady state
	r0, w0 := reads.Load(), writes.Load()
	t0 := time.Now()
	stats, err := db.GC(bgCtx)
	gcTime := time.Since(t0)
	gcReads, gcWrites := reads.Load()-r0, writes.Load()-w0
	close(stop)
	wg.Wait()
	if err != nil {
		return err
	}
	after, err := diskBytes(dir)
	if err != nil {
		return err
	}
	// Integrity pass: every surviving master head must decode in full.
	for p := 0; p < pages; p++ {
		o, err := db.Get(bgCtx, pageKey(p))
		if err != nil {
			return fmt.Errorf("post-gc read of %s: %w", pageKey(p), err)
		}
		blob, err := db.BlobOf(o)
		if err != nil {
			return err
		}
		if _, err := blob.Bytes(); err != nil {
			return fmt.Errorf("post-gc decode of %s: %w", pageKey(p), err)
		}
	}

	reclaimed := float64(before-after) / float64(before)
	fmt.Fprintf(w, "GC (wiki): %d pages, %d draft versions each, drafts removed\n", pages, draftVersions)
	t := newTable(w, 16, 14, 14, 14, 14)
	t.row("Disk before", "Disk after", "Reclaimed", "GC time", "Marked")
	t.row(mib(before), mib(after), fmt.Sprintf("%.1f%%", 100*reclaimed),
		fmt.Sprintf("%.2fs", gcTime.Seconds()), stats.Marked)
	t.row("Chunks freed", "Relocated", "Segs compact", "Gets/s in GC", "Puts/s in GC")
	t.row(stats.Reclaimed, stats.Relocated, stats.SegmentsCompacted,
		opsPerSec(int(gcReads), gcTime), opsPerSec(int(gcWrites), gcTime))
	if f := failures.Load(); f > 0 {
		return fmt.Errorf("gc experiment: %d reads/writes failed during collection", f)
	}
	return nil
}

// diskBytes sums the segment files under a store directory.
func diskBytes(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasPrefix(d.Name(), "seg-") {
			return err
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		total += fi.Size()
		return nil
	})
	return total, err
}
