package bench

// latencyProxy is a loopback TCP forwarder that injects a fixed
// one-way delay in each direction — the wire-level counterpart of
// cluster.Options.NetLatency for experiments that talk to a real
// forkserved socket, where a time.Sleep inside the server would be
// invisible to the client's connection pipelining.
//
// The delay is added without throttling bandwidth: a reader goroutine
// drains the source as fast as bytes arrive and stamps each segment;
// a writer goroutine releases segments only once their stamp is delay
// old. Back-to-back segments therefore overlap their delays — a bulk
// stream still moves at loopback speed — while every request/response
// turnaround pays the configured round trip, which is exactly how a
// long fat pipe behaves.

import (
	"net"
	"sync"
	"time"
)

type latencyProxy struct {
	ln     net.Listener
	target string
	delay  time.Duration // one-way: half the injected RTT

	mu    sync.Mutex
	conns []net.Conn
	done  bool
}

// newLatencyProxy starts a proxy forwarding to target with rtt split
// evenly across the two directions.
func newLatencyProxy(target string, rtt time.Duration) (*latencyProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &latencyProxy{ln: ln, target: target, delay: rtt / 2}
	go p.accept()
	return p, nil
}

func (p *latencyProxy) addr() string { return p.ln.Addr().String() }

func (p *latencyProxy) close() {
	p.mu.Lock()
	p.done = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// track registers a connection for teardown; false once closed.
func (p *latencyProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return false
	}
	p.conns = append(p.conns, c)
	return true
}

func (p *latencyProxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		if !p.track(c) || !p.track(up) {
			c.Close()
			up.Close()
			return
		}
		go p.pipe(up, c)
		go p.pipe(c, up)
	}
}

// pipe forwards src to dst, releasing each segment delay after its
// arrival. Either end closing (or erroring) tears down both: the
// benchmarks proxy one protocol connection, not independent half
// streams.
func (p *latencyProxy) pipe(dst, src net.Conn) {
	type seg struct {
		buf []byte
		due time.Time
	}
	ch := make(chan seg, 1024)
	go func() {
		defer close(ch)
		for {
			buf := make([]byte, 128<<10)
			n, err := src.Read(buf)
			if n > 0 {
				ch <- seg{buf[:n], time.Now().Add(p.delay)}
			}
			if err != nil {
				return
			}
		}
	}()
	for s := range ch {
		if d := time.Until(s.due); d > 0 {
			time.Sleep(d)
		}
		if _, err := dst.Write(s.buf); err != nil {
			break
		}
	}
	// Closing src unblocks the reader goroutine; draining ch lets it
	// observe the close even if it was mid-send.
	src.Close()
	dst.Close()
	for range ch { //nolint:revive // intentional drain
	}
}
