package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The perf ratchet: CI re-measures the guarded benchmark rows on
// every change and compares them against the committed snapshots. A
// fresh number more than tolerance worse than its baseline fails the
// build — "the benchmarks still print" stops counting as passing.
// Only coarse throughput/ratio series are guarded; tail latencies are
// too noisy on shared CI runners to gate merges on.

// RatchetMetric names one guarded series: a metric inside a row
// inside a snapshot file. HigherIsBetter orients the comparison
// (true for throughputs, false for ratios like moved bytes).
type RatchetMetric struct {
	File           string
	Row            string
	Metric         string
	HigherIsBetter bool
}

// GuardedMetrics is the ratchet's contract with CI: the headline
// series a regression must not silently erode. The remote small-op
// rows are the point of the pooled/batched serving path; the embedded
// row guards the engine itself; the blob row guards bulk bandwidth;
// the chunksync ratio guards the delta-sync win the paper is about.
var GuardedMetrics = []RatchetMetric{
	{File: "BENCH_net.json", Row: "small embedded", Metric: "puts_per_s", HigherIsBetter: true},
	{File: "BENCH_net.json", Row: "small embedded", Metric: "gets_per_s", HigherIsBetter: true},
	{File: "BENCH_net.json", Row: "small remote c=1 depth=8", Metric: "puts_per_s", HigherIsBetter: true},
	{File: "BENCH_net.json", Row: "small remote c=1 depth=8", Metric: "gets_per_s", HigherIsBetter: true},
	{File: "BENCH_net.json", Row: "small remote c=4 depth=32", Metric: "puts_per_s", HigherIsBetter: true},
	{File: "BENCH_net.json", Row: "small remote c=4 depth=32", Metric: "gets_per_s", HigherIsBetter: true},
	{File: "BENCH_net.json", Row: "blob64k remote c=4 depth=8", Metric: "put_mb_s", HigherIsBetter: true},
	{File: "BENCH_net.json", Row: "blob64k remote c=4 depth=8", Metric: "get_mb_s", HigherIsBetter: true},
	{File: "BENCH_chunksync.json", Row: "reread-1pct-edit 4.0MB", Metric: "chunksync_moved_ratio", HigherIsBetter: false},
	// The parallel data path: cold-read wall clock under injected RTT
	// guards the pipelined prefetcher + streamed Want (byte counts are
	// blind to round trips), and the build speedup guards the parallel
	// chunker. Both are ratios of two runs on the same host, so they
	// ratchet cleanly across machines of different absolute speed.
	{File: "BENCH_chunksync.json", Row: "coldread-4.0MB rtt=1ms", Metric: "speedup", HigherIsBetter: true},
	{File: "BENCH_chunksync.json", Row: "parallel-build 8.0MB", Metric: "speedup", HigherIsBetter: true},
}

// Ratchet compares fresh snapshots in freshDir against baselines in
// baselineDir for every guarded metric, writing one line per series
// to w. tolerance is the fractional degradation allowed (0.20 = a
// fresh number may be up to 20% worse). It returns the failures; a
// missing file, row or metric on either side is a failure too —
// silently dropping a guarded series is how ratchets die.
func Ratchet(w io.Writer, baselineDir, freshDir string, tolerance float64) []string {
	var failures []string
	files := map[string]struct{}{}
	for _, g := range GuardedMetrics {
		files[g.File] = struct{}{}
	}
	base := map[string]map[string]map[string]float64{}
	fresh := map[string]map[string]map[string]float64{}
	for f := range files {
		base[f] = loadRows(filepath.Join(baselineDir, f))
		fresh[f] = loadRows(filepath.Join(freshDir, f))
	}
	for _, g := range GuardedMetrics {
		name := fmt.Sprintf("%s / %s / %s", g.File, g.Row, g.Metric)
		b, bok := lookup(base[g.File], g.Row, g.Metric)
		f, fok := lookup(fresh[g.File], g.Row, g.Metric)
		switch {
		case !bok:
			failures = append(failures, name+": baseline missing")
			fmt.Fprintf(w, "FAIL %s: baseline missing\n", name)
			continue
		case !fok:
			failures = append(failures, name+": fresh measurement missing")
			fmt.Fprintf(w, "FAIL %s: fresh measurement missing\n", name)
			continue
		}
		// Degradation as a fraction of the baseline, oriented so
		// positive means worse regardless of the metric's direction.
		var worse float64
		if g.HigherIsBetter {
			worse = (b - f) / b
		} else {
			worse = (f - b) / b
		}
		if worse > tolerance {
			failures = append(failures, fmt.Sprintf("%s: %.2f -> %.2f (%.0f%% worse, tolerance %.0f%%)",
				name, b, f, worse*100, tolerance*100))
			fmt.Fprintf(w, "FAIL %s: %.2f -> %.2f (%.0f%% worse)\n", name, b, f, worse*100)
			continue
		}
		fmt.Fprintf(w, "ok   %s: %.2f -> %.2f (%+.0f%%)\n", name, b, f, -worse*100)
	}
	return failures
}

// loadRows reads one snapshot file into row -> metric -> value;
// unreadable or malformed files yield nil, which the lookup reports
// as a missing series.
func loadRows(path string) map[string]map[string]float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil
	}
	rows := make(map[string]map[string]float64, len(m.Rows))
	for _, r := range m.Rows {
		rows[r.Name] = r.Values
	}
	return rows
}

func lookup(rows map[string]map[string]float64, row, metric string) (float64, bool) {
	vals, ok := rows[row]
	if !ok {
		return 0, false
	}
	v, ok := vals[metric]
	return v, ok
}
