package bench

// Sink, when non-nil, collects machine-readable metric rows alongside
// an experiment's human-readable tables; cmd/forkbench points it at a
// fresh collector per experiment and snapshots the result as
// BENCH_<experiment>.json. Experiments record only their headline
// series — the numbers a CI perf job tracks across commits — so most
// rows of the printed tables have no JSON counterpart.
var Sink *Metrics

// Metrics is one experiment's snapshot.
type Metrics struct {
	Experiment string      `json:"experiment"`
	Scale      string      `json:"scale"`
	Rows       []MetricRow `json:"rows"`
}

// MetricRow is one measured configuration: a name (matching the table
// row it came from) and its values, keyed by unit-suffixed metric
// names (puts_per_s, put_p99_ms, wire_bytes, ...).
type MetricRow struct {
	Name   string             `json:"name"`
	Values map[string]float64 `json:"values"`
}

// record appends a row to the active snapshot, if any.
func record(name string, values map[string]float64) {
	if Sink == nil {
		return
	}
	Sink.Rows = append(Sink.Rows, MetricRow{Name: name, Values: values})
}

// String names the scale the way the -scale flag spells it.
func (s Scale) String() string {
	if s == Paper {
		return "paper"
	}
	return "quick"
}
