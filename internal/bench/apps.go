package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"forkbase"
	"forkbase/internal/tabular"
	"forkbase/internal/wiki"
	"forkbase/internal/workload"
)

// wire models the 1 GbE client-server link of the paper's testbed:
// roughly 1 µs per KiB plus per-request overhead folded into the
// workload loop. Both wiki engines pay it per byte actually shipped,
// which is what separates them.
var wire = wiki.FetchModel{PerKB: 8 * time.Microsecond}

// RunFig13 reproduces Figure 13: wiki page-edit throughput (a) and
// storage consumption (b) for ForkBase vs Redis at in-place-update
// ratios 100U/90U/80U.
func RunFig13(w io.Writer, scale Scale) error {
	pages := scale.pick(320, 3200)
	requests := scale.pick(2_000, 120_000)
	pageSize := 15 << 10

	fmt.Fprintln(w, "Figure 13: wiki page editing (throughput and storage)")
	t := newTable(w, 12, 10, 14, 16)
	t.row("Engine", "xU", "Edits/s", "Storage")

	for _, inPlace := range []float64{1.0, 0.9, 0.8} {
		engines := []wiki.Engine{
			wiki.NewForkBase(forkbase.Open(), wire),
			wiki.NewRedis(wire),
		}
		for _, e := range engines {
			c := wiki.NewClient()
			rng := rand.New(rand.NewSource(11))
			for p := 0; p < pages; p++ {
				if err := e.Save(bgCtx, c, fmt.Sprintf("page-%05d", p), workload.RandText(rng, pageSize)); err != nil {
					return err
				}
			}
			trace := workload.NewWikiTrace(12, pages, 200, inPlace, 0)
			t0 := time.Now()
			for i := 0; i < requests; i++ {
				if err := e.Edit(bgCtx, c, trace.Next(pageSize)); err != nil {
					return err
				}
			}
			t.row(e.Name(), fmt.Sprintf("%d", int(inPlace*100)),
				opsPerSec(requests, time.Since(t0)), mib(e.StorageBytes()))
		}
	}
	return nil
}

// RunFig14 reproduces Figure 14: throughput of reading consecutive
// versions of a page. Redis is fastest for the latest version; as a
// client tracks more versions, ForkBase overtakes it because most
// chunks are already cached client-side.
func RunFig14(w io.Writer, scale Scale) error {
	pages := scale.pick(64, 512)
	versions := 6
	reads := scale.pick(300, 3000)
	pageSize := 48 << 10

	fmt.Fprintln(w, "Figure 14: reading consecutive versions of a wiki page (reads/sec)")
	t := newTable(w, 12, 10, 14)
	t.row("Engine", "#Versions", "Reads/s")

	// A heavier wire model than fig13's: the effect under study is
	// transfer volume (full page per version vs uncached chunks only),
	// and the simulated delay must dominate timer/sleep granularity
	// for the volume difference to be visible.
	slowWire := wiki.FetchModel{PerKB: 64 * time.Microsecond}
	engines := []wiki.Engine{
		wiki.NewForkBase(forkbase.Open(), slowWire),
		wiki.NewRedis(slowWire),
	}
	for _, e := range engines {
		seedClient := wiki.NewClient()
		rng := rand.New(rand.NewSource(13))
		trace := workload.NewWikiTrace(14, pages, 150, 1.0, 0)
		for p := 0; p < pages; p++ {
			if err := e.Save(bgCtx, seedClient, fmt.Sprintf("page-%05d", p), workload.RandText(rng, pageSize)); err != nil {
				return err
			}
		}
		for v := 1; v < versions; v++ {
			for p := 0; p < pages; p++ {
				edit := trace.Next(pageSize)
				edit.Page = fmt.Sprintf("page-%05d", p)
				if err := e.Edit(bgCtx, seedClient, edit); err != nil {
					return err
				}
			}
		}
		for track := 1; track <= versions; track++ {
			// Each exploration: a fresh client reads versions
			// latest..latest-track+1 of a random page.
			rng := rand.New(rand.NewSource(15))
			t0 := time.Now()
			total := 0
			for i := 0; i < reads/track; i++ {
				c := wiki.NewClient()
				p := fmt.Sprintf("page-%05d", rng.Intn(pages))
				for back := 0; back < track; back++ {
					if _, err := e.LoadVersion(bgCtx, c, p, back); err != nil {
						return err
					}
					total++
				}
			}
			t.row(e.Name(), track, opsPerSec(total, time.Since(t0)))
		}
	}
	return nil
}

// RunFig16 reproduces Figure 16: latency (a) and space increment (b) of
// dataset modifications at 1-5% update fractions, ForkBase vs the
// OrpheusDB-style baseline.
func RunFig16(w io.Writer, scale Scale) error {
	records := workload.Dataset(20, scale.pick(50_000, 5_000_000))
	fmt.Fprintln(w, "Figure 16: dataset modification latency and space increment")
	t := newTable(w, 10, 14, 14, 14)
	t.row("Update%", "System", "Latency", "SpaceGrow")

	for _, pct := range []int{1, 2, 3, 4, 5} {
		n := len(records) * pct / 100
		// ForkBase row layout.
		{
			db := forkbase.Open()
			tbl := tabular.NewFBTable(db, "t", tabular.RowLayout)
			if err := tbl.Import("master", records); err != nil {
				return err
			}
			before := tbl.StorageBytes()
			mods := make([]workload.Record, n)
			copy(mods, records[:n])
			for i := range mods {
				mods[i].Int1++
			}
			t0 := time.Now()
			if err := tbl.Update("master", mods, nil); err != nil {
				return err
			}
			lat := time.Since(t0)
			t.row(pct, "ForkBase", fmt.Sprintf("%.1fms", ms(lat)), mib(tbl.StorageBytes()-before))
			db.Close()
		}
		// OrpheusDB-style: checkout, modify, commit.
		{
			o := tabular.NewOrpheus()
			o.Import("v1", records)
			before := o.StorageBytes()
			t0 := time.Now()
			work, err := o.Checkout("v1")
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				work[i].Int1++
			}
			if err := o.Commit("v1", "v2", work); err != nil {
				return err
			}
			lat := time.Since(t0)
			t.row(pct, "OrpheusDB", fmt.Sprintf("%.1fms", ms(lat)), mib(o.StorageBytes()-before))
		}
	}
	return nil
}

// RunFig17 reproduces Figure 17: version-diff latency as the fraction
// of differing records grows (a), and aggregation-query latency for
// row/column ForkBase layouts vs OrpheusDB (b).
func RunFig17(w io.Writer, scale Scale) error {
	base := workload.Dataset(21, scale.pick(50_000, 5_000_000))

	fmt.Fprintln(w, "Figure 17(a): version diff latency")
	ta := newTable(w, 10, 14, 14)
	ta.row("Diff%", "ForkBase", "OrpheusDB")
	for _, pct := range []int{0, 1, 2, 4, 8} {
		n := len(base) * pct / 100
		// ForkBase: two branches differing in n records.
		db := forkbase.Open()
		tbl := tabular.NewFBTable(db, "t", tabular.RowLayout)
		if err := tbl.Import("master", base); err != nil {
			return err
		}
		if err := tbl.Fork(bgCtx, "master", "edited"); err != nil {
			return err
		}
		if n > 0 {
			mods := make([]workload.Record, n)
			copy(mods, base[:n])
			for i := range mods {
				mods[i].Text1 = "edited"
			}
			if err := tbl.Update("edited", mods, nil); err != nil {
				return err
			}
		}
		t0 := time.Now()
		_, _, modified, err := tbl.DiffCount("master", "edited")
		if err != nil {
			return err
		}
		if modified != n {
			return fmt.Errorf("bench: diff found %d, want %d", modified, n)
		}
		fbLat := time.Since(t0)
		db.Close()

		o := tabular.NewOrpheus()
		o.Import("v1", base)
		work, _ := o.Checkout("v1")
		for i := 0; i < n; i++ {
			work[i].Text1 = "edited"
		}
		o.Commit("v1", "v2", work)
		t0 = time.Now()
		if _, err := o.Diff("v1", "v2"); err != nil {
			return err
		}
		orLat := time.Since(t0)
		ta.row(pct, fmt.Sprintf("%.1fms", ms(fbLat)), fmt.Sprintf("%.1fms", ms(orLat)))
	}

	fmt.Fprintln(w, "\nFigure 17(b): aggregation query latency")
	tb := newTable(w, 12, 16, 16, 16)
	tb.row("#Records", "ForkBase-COL", "ForkBase-ROW", "OrpheusDB")
	for _, n := range []int{len(base) / 4, len(base) / 2, len(base)} {
		sub := base[:n]
		var lats [3]string
		for li, layout := range []tabular.Layout{tabular.ColLayout, tabular.RowLayout} {
			db := forkbase.Open()
			tbl := tabular.NewFBTable(db, "t", layout)
			if err := tbl.Import("master", sub); err != nil {
				return err
			}
			t0 := time.Now()
			if _, err := tbl.Aggregate("master", "int1"); err != nil {
				return err
			}
			lats[li] = fmt.Sprintf("%.1fms", ms(time.Since(t0)))
			db.Close()
		}
		o := tabular.NewOrpheus()
		o.Import("v1", sub)
		t0 := time.Now()
		if _, err := o.Aggregate("v1", "int1"); err != nil {
			return err
		}
		lats[2] = fmt.Sprintf("%.1fms", ms(time.Since(t0)))
		tb.row(n, lats[0], lats[1], lats[2])
	}
	return nil
}
