// Package bench implements the experiment harness that regenerates
// every table and figure of the paper's evaluation (§6). Each Run*
// function drives the workload of one experiment and prints the same
// rows or series the paper reports; cmd/forkbench dispatches to them
// and the repository-root benchmarks wrap them in testing.B.
//
// Scales: the paper ran on a 64-node cluster; Scale
// configures laptop-sized defaults ("quick") or settings closer to the
// paper's ("paper"). Absolute numbers differ from the publication — the
// substrate here is an in-process simulation — but the comparisons'
// shapes (who wins, by roughly what factor, where crossovers fall) are
// the reproduction target; see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// TempDirFunc creates the scratch directories on-disk experiments use.
// The default prefers TMPDIR, then the working directory: on some
// hosts /tmp sits on a throttled mount that would dominate every
// persistence measurement. Test harnesses point it at
// testing.TB.TempDir so scratch space is tracked and removed by the
// testing framework even when an experiment aborts mid-way (call sites
// still RemoveAll eagerly, which is harmless under either backing).
var TempDirFunc = defaultTempDir

func defaultTempDir(pattern string) (string, error) {
	base := os.Getenv("TMPDIR")
	if base == "" {
		base = "."
	}
	return os.MkdirTemp(base, pattern)
}

// tempDir creates a scratch directory through TempDirFunc.
func tempDir(pattern string) (string, error) { return TempDirFunc(pattern) }

// Scale selects experiment sizes.
type Scale int

const (
	// Quick finishes each experiment in seconds.
	Quick Scale = iota
	// Paper raises sizes toward the paper's settings (minutes).
	Paper
)

// ParseScale maps a -scale flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "", "quick":
		return Quick, nil
	case "paper":
		return Paper, nil
	}
	return Quick, fmt.Errorf("bench: unknown scale %q (want quick or paper)", s)
}

// pick returns q under Quick and p under Paper.
func (s Scale) pick(q, p int) int {
	if s == Paper {
		return p
	}
	return q
}

// stopwatch collects durations for percentile reporting.
type stopwatch struct {
	samples []time.Duration
}

func (s *stopwatch) time(fn func()) {
	t0 := time.Now()
	fn()
	s.samples = append(s.samples, time.Since(t0))
}

func (s *stopwatch) add(d time.Duration) { s.samples = append(s.samples, d) }

// percentile returns the p-th percentile (0 < p <= 100).
func (s *stopwatch) percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(float64(len(sorted))*p/100) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (s *stopwatch) mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range s.samples {
		total += d
	}
	return total / time.Duration(len(s.samples))
}

// cdf returns (value, fraction<=value) points for plotting.
func (s *stopwatch) cdf(points int) []struct {
	V time.Duration
	F float64
} {
	sorted := append([]time.Duration(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]struct {
		V time.Duration
		F float64
	}, 0, points)
	for i := 1; i <= points; i++ {
		idx := len(sorted)*i/points - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, struct {
			V time.Duration
			F float64
		}{sorted[idx], float64(i) / float64(points)})
	}
	return out
}

// table prints aligned rows.
type table struct {
	w    io.Writer
	cols []int
}

func newTable(w io.Writer, widths ...int) *table { return &table{w: w, cols: widths} }

func (t *table) row(cells ...interface{}) {
	for i, c := range cells {
		w := 14
		if i < len(t.cols) {
			w = t.cols[i]
		}
		fmt.Fprintf(t.w, "%-*v", w, c)
	}
	fmt.Fprintln(t.w)
}

// opsPerSec formats a throughput.
func opsPerSec(n int, elapsed time.Duration) string {
	if elapsed == 0 {
		return "inf"
	}
	v := float64(n) / elapsed.Seconds()
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	}
	return fmt.Sprintf("%.1f", v)
}

func mib(n int64) string { return fmt.Sprintf("%.1fMB", float64(n)/(1<<20)) }
