package bench

import "forkbase/internal/rollsum"

// newRollerSink returns a function that rolls bytes through the
// cyclic-polynomial hash, used to price a hypothetical P-over-entries
// index splitter.
func newRollerSink() func([]byte) {
	r := rollsum.NewRoller()
	return func(p []byte) {
		for _, b := range p {
			r.Roll(b)
		}
	}
}
