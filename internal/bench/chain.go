package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"forkbase"
	"forkbase/internal/blockchain"
	"forkbase/internal/merkle"
	"forkbase/internal/workload"
)

// chainBackends builds the three §6.2 backends over fresh storage.
func chainBackends(dir string, buckets int) (map[string]blockchain.Backend, error) {
	rocks, err := blockchain.NewRocksDBStyle(dir, blockchain.BucketMerkle, buckets)
	if err != nil {
		return nil, err
	}
	return map[string]blockchain.Backend{
		"ForkBase":    blockchain.NewNative(forkbase.Open(), "kv"),
		"Rocksdb":     rocks,
		"ForkBase-KV": blockchain.NewForkBaseKV(forkbase.Open(), blockchain.BucketMerkle, buckets),
	}, nil
}

var backendOrder = []string{"ForkBase", "Rocksdb", "ForkBase-KV"}

// RunFig9 reproduces Figure 9: 95th-percentile latency of blockchain
// read, write and commit operations as the number of updates grows
// (b=50, r=w=0.5).
func RunFig9(w io.Writer, scale Scale) error {
	updatesList := []int{scale.pick(1_000, 10_000), scale.pick(4_000, 100_000), scale.pick(16_000, 1_000_000)}
	const blockSize = 50
	fmt.Fprintln(w, "Figure 9: 95th-percentile latency of blockchain operations (b=50, r=w=0.5)")
	t := newTable(w, 10, 14, 12, 12, 12)
	t.row("#Updates", "Backend", "Read", "Write", "Commit")

	for _, updates := range updatesList {
		dir, err := tempDir("fig9")
		if err != nil {
			return err
		}
		backends, err := chainBackends(dir, 1024)
		if err != nil {
			return err
		}
		for _, name := range backendOrder {
			be := backends[name]
			var reads, writes, commits stopwatch
			y := workload.NewYCSB(workload.YCSBConfig{Seed: 5, Keys: updates, ReadRatio: 0.5, ValueSize: 100})
			pending := 0
			for i := 0; i < 2*updates; i++ {
				op := y.Next()
				if op.Read {
					reads.time(func() {
						if _, err := be.Read(bgCtx, op.Key); err != nil {
							panic(err)
						}
					})
					continue
				}
				writes.time(func() { be.BufferWrite(op.Key, op.Value) })
				pending++
				if pending == blockSize {
					h := uint64(commits.samplesLen())
					commits.time(func() {
						if _, err := be.Commit(bgCtx, h); err != nil {
							panic(err)
						}
					})
					pending = 0
				}
			}
			t.row(updates, name,
				fmt.Sprintf("%.3fms", ms(reads.percentile(95))),
				fmt.Sprintf("%.3fms", ms(writes.percentile(95))),
				fmt.Sprintf("%.3fms", ms(commits.percentile(95))))
			be.Close()
		}
		os.RemoveAll(dir)
	}
	return nil
}

func (s *stopwatch) samplesLen() int { return len(s.samples) }

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// RunFig10 reproduces Figure 10: client-perceived transaction
// throughput, which is storage-independent because execution dominates.
func RunFig10(w io.Writer, scale Scale) error {
	updatesList := []int{1 << 10, 1 << 12, scale.pick(1<<14, 1<<18)}
	const blockSize = 50
	fmt.Fprintln(w, "Figure 10: Client-perceived throughput (txns/sec)")
	t := newTable(w, 10, 14, 14)
	t.row("#Updates", "Backend", "Txn/s")
	for _, updates := range updatesList {
		dir, err := tempDir("fig10")
		if err != nil {
			return err
		}
		backends, err := chainBackends(dir, 1024)
		if err != nil {
			return err
		}
		for _, name := range backendOrder {
			be := backends[name]
			l := blockchain.NewLedger(be, blockSize)
			y := workload.NewYCSB(workload.YCSBConfig{Seed: 6, Keys: updates, ReadRatio: 0.5, ValueSize: 100})
			t0 := time.Now()
			for i := 0; i < updates; i++ {
				op := y.Next()
				// Model transaction execution cost (contract
				// interpretation dominates storage, §6.2.1).
				simulateContractWork()
				if err := l.Submit(bgCtx, blockchain.Tx{Contract: "kv", Ops: []blockchain.Op{
					{Key: op.Key, Value: op.Value, Read: op.Read}}}); err != nil {
					return err
				}
			}
			l.CommitBlock(bgCtx)
			t.row(updates, name, opsPerSec(updates, time.Since(t0)))
			be.Close()
		}
		os.RemoveAll(dir)
	}
	return nil
}

// simulateContractWork burns the CPU time a Turing-complete contract
// interpreter spends per transaction, which §6.2.1 identifies as far
// larger than the storage cost.
func simulateContractWork() {
	s := 0
	for i := 0; i < 20000; i++ {
		s += i * i
	}
	_ = s
}

// RunFig11 reproduces Figure 11: the distribution (CDF) of commit
// latency under different Merkle structures — bucket trees with 10, 1K
// and 1M buckets, the trie, and ForkBase Map objects.
func RunFig11(w io.Writer, scale Scale) error {
	commits := scale.pick(100, 1000)
	const blockSize = 50
	keys := scale.pick(20_000, 100_000)
	fmt.Fprintln(w, "Figure 11: Commit latency distribution with different Merkle trees")
	t := newTable(w, 14, 12, 12, 12, 12)
	t.row("Structure", "p10", "p50", "p90", "p99")

	type variant struct {
		name string
		be   blockchain.Backend
	}
	dir, err := tempDir("fig11")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	mkRocks := func(kind blockchain.MerkleKind, buckets int) blockchain.Backend {
		be, err := blockchain.NewRocksDBStyle(fmt.Sprintf("%s/r%d", dir, buckets), kind, buckets)
		if err != nil {
			panic(err)
		}
		return be
	}
	variants := []variant{
		{"ForkBase", blockchain.NewNative(forkbase.Open(), "kv")},
		{"Rocksdb_10", mkRocks(blockchain.BucketMerkle, 10)},
		{"Rocksdb_1K", mkRocks(blockchain.BucketMerkle, 1<<10)},
		{"Rocksdb_1M", mkRocks(blockchain.BucketMerkle, 1<<20)},
		{"Rocksdb_trie", mkRocks(blockchain.TrieMerkle, 0)},
	}
	for _, v := range variants {
		y := workload.NewYCSB(workload.YCSBConfig{Seed: 7, Keys: keys, ReadRatio: 0, ValueSize: 100})
		var lat stopwatch
		for c := 0; c < commits; c++ {
			for i := 0; i < blockSize; i++ {
				op := y.Next()
				v.be.BufferWrite(op.Key, op.Value)
			}
			lat.time(func() {
				if _, err := v.be.Commit(bgCtx, uint64(c)); err != nil {
					panic(err)
				}
			})
		}
		t.row(v.name,
			fmt.Sprintf("%.2fms", ms(lat.percentile(10))),
			fmt.Sprintf("%.2fms", ms(lat.percentile(50))),
			fmt.Sprintf("%.2fms", ms(lat.percentile(90))),
			fmt.Sprintf("%.2fms", ms(lat.percentile(99))))
		v.be.Close()
	}
	return nil
}

// RunFig12 reproduces Figure 12: latency of the two analytical queries
// — state scan (a) and block scan (b) — on ForkBase vs the
// RocksDB-style backend, for two key-population sizes.
func RunFig12(w io.Writer, scale Scale) error {
	const blockSize = 50
	blocks := scale.pick(200, 12000)
	keyCounts := []int{1 << 10, scale.pick(1<<12, 1<<16)}

	fmt.Fprintln(w, "Figure 12(a): state scan latency")
	ta := newTable(w, 10, 10, 16, 16)
	ta.row("#Keys", "#Scanned", "ForkBase", "Rocksdb")
	fmt.Fprintln(w, "")

	type prepared struct {
		name string
		be   blockchain.Backend
		keys int
	}
	var preps []prepared
	dir, err := tempDir("fig12")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	for ki, keys := range keyCounts {
		rocks, err := blockchain.NewRocksDBStyle(fmt.Sprintf("%s/r%d", dir, ki), blockchain.BucketMerkle, 1024)
		if err != nil {
			return err
		}
		for _, p := range []prepared{
			{"ForkBase", blockchain.NewNative(forkbase.Open(), "kv"), keys},
			{"Rocksdb", rocks, keys},
		} {
			y := workload.NewYCSB(workload.YCSBConfig{Seed: 8, Keys: keys, ReadRatio: 0, ValueSize: 100})
			for c := 0; c < blocks; c++ {
				for i := 0; i < blockSize; i++ {
					op := y.Next()
					p.be.BufferWrite(op.Key, op.Value)
				}
				if _, err := p.be.Commit(bgCtx, uint64(c)); err != nil {
					return err
				}
			}
			preps = append(preps, p)
		}
	}

	for _, scanned := range []int{1, 10, 100, 1000} {
		for ki, keys := range keyCounts {
			if scanned > keys {
				continue
			}
			var lats [2]string
			for pi := 0; pi < 2; pi++ {
				p := preps[ki*2+pi]
				names := make([]string, scanned)
				for i := range names {
					names[i] = workload.Key(i)
				}
				t0 := time.Now()
				if _, err := p.be.ScanStates(bgCtx, names, 1<<30); err != nil {
					return err
				}
				lats[pi] = fmt.Sprintf("%.2fms", ms(time.Since(t0)))
			}
			ta.row(keys, scanned, lats[0], lats[1])
		}
	}

	fmt.Fprintln(w, "\nFigure 12(b): block scan latency")
	tb := newTable(w, 10, 10, 16, 16)
	tb.row("#Keys", "Block", "ForkBase", "Rocksdb")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 0.99} {
		h := uint64(float64(blocks-1) * frac)
		for ki, keys := range keyCounts {
			var lats [2]string
			for pi := 0; pi < 2; pi++ {
				p := preps[ki*2+pi]
				t0 := time.Now()
				if _, err := p.be.BlockScan(bgCtx, h); err != nil {
					return err
				}
				lats[pi] = fmt.Sprintf("%.2fms", ms(time.Since(t0)))
			}
			tb.row(keys, h, lats[0], lats[1])
		}
	}
	for _, p := range preps {
		p.be.Close()
	}
	return nil
}

// MerkleAmplification is an extra diagnostic used by tests: it returns
// the bucket tree's hashed-byte counter after a fixed update stream.
func MerkleAmplification(buckets, commits, updates int) int64 {
	bt := merkle.NewBucketTree(buckets)
	for c := 0; c < commits; c++ {
		for i := 0; i < updates; i++ {
			bt.Set(workload.Key(c*updates+i), []byte("v"))
		}
		bt.Commit()
	}
	return bt.HashedBytes
}
