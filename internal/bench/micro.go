package bench

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"forkbase"
	"forkbase/internal/chunk"
	"forkbase/internal/postree"
	"forkbase/internal/rollsum"
	"forkbase/internal/store"
	"forkbase/internal/types"
	"forkbase/internal/workload"
)

// RunTable3 reproduces Table 3: throughput and average latency of nine
// ForkBase operations at 1 KB and 20 KB request sizes, driven by
// concurrent clients against one instance.
func RunTable3(w io.Writer, scale Scale) error {
	clients := 32
	opsPerClient := scale.pick(200, 2000)
	sizes := []int{1 << 10, 20 << 10}

	fmt.Fprintln(w, "Table 3: Performance of ForkBase Operations")
	t := newTable(w, 16, 14, 14, 14, 14)
	t.row("Operation", "tput-1KB", "tput-20KB", "lat-1KB", "lat-20KB")

	// Pre-generated payload pool: value generation must not pollute
	// the measured operation latency. Each op stamps a unique prefix
	// so deduplication cannot elide the write.
	pools := map[int][][]byte{}
	for _, size := range sizes {
		pool := make([][]byte, 16)
		for i := range pool {
			pool[i] = payload(size, i)
		}
		pools[size] = pool
	}
	uniquePayload := func(size, c, i int) []byte {
		pool := pools[size]
		p := append([]byte(nil), pool[(c*31+i)%len(pool)]...)
		copy(p, fmt.Sprintf("%08d-%08d", c, i))
		return p
	}

	type opSpec struct {
		name  string
		setup func(db *forkbase.DB, size int)
		run   func(db *forkbase.DB, size int, client, i int) error
	}
	keyOf := func(client, i int) string { return fmt.Sprintf("k-%d-%d", client, i) }
	ops := []opSpec{
		{"Put-String", nil, func(db *forkbase.DB, size, c, i int) error {
			_, err := db.Put(bgCtx, keyOf(c, i), forkbase.String(uniquePayload(size, c, i)))
			return err
		}},
		{"Put-Blob", nil, func(db *forkbase.DB, size, c, i int) error {
			_, err := db.Put(bgCtx, keyOf(c, i), forkbase.NewBlob(uniquePayload(size, c, i)))
			return err
		}},
		{"Put-Map", nil, func(db *forkbase.DB, size, c, i int) error {
			m := forkbase.NewMap()
			p := uniquePayload(size, c, i)
			for j := 0; j+100 <= len(p); j += 100 {
				m.Set(p[j:j+8], p[j+8:j+100])
			}
			_, err := db.Put(bgCtx, keyOf(c, i), m)
			return err
		}},
		{"Get-String", func(db *forkbase.DB, size int) { preload(db, forkbase.String(payload(size, 1)), 64) },
			func(db *forkbase.DB, size, c, i int) error {
				_, err := db.Get(bgCtx, fmt.Sprintf("pre-%d", i%64))
				return err
			}},
		{"Get-Blob-Meta", func(db *forkbase.DB, size int) { preload(db, forkbase.NewBlob(payload(size, 1)), 64) },
			func(db *forkbase.DB, size, c, i int) error {
				// Meta read: version record only, no tree traversal.
				_, err := db.Get(bgCtx, fmt.Sprintf("pre-%d", i%64))
				return err
			}},
		{"Get-Blob-Full", func(db *forkbase.DB, size int) { preload(db, forkbase.NewBlob(payload(size, 1)), 64) },
			func(db *forkbase.DB, size, c, i int) error {
				o, err := db.Get(bgCtx, fmt.Sprintf("pre-%d", i%64))
				if err != nil {
					return err
				}
				b, err := db.BlobOf(o)
				if err != nil {
					return err
				}
				_, err = b.Bytes()
				return err
			}},
		{"Get-Map-Full", func(db *forkbase.DB, size int) {
			m := forkbase.NewMap()
			p := payload(size, 1)
			for j := 0; j+100 <= len(p); j += 100 {
				m.Set(p[j:j+8], p[j+8:j+100])
			}
			preload(db, m, 64)
		}, func(db *forkbase.DB, size, c, i int) error {
			o, err := db.Get(bgCtx, fmt.Sprintf("pre-%d", i%64))
			if err != nil {
				return err
			}
			m, err := db.MapOf(o)
			if err != nil {
				return err
			}
			return m.Iter(func(k, v []byte) bool { return true })
		}},
		{"Track", func(db *forkbase.DB, size int) {
			for v := 0; v < 8; v++ {
				preload(db, forkbase.NewBlob(payload(size, v)), 64)
			}
		}, func(db *forkbase.DB, size, c, i int) error {
			_, err := db.Track(bgCtx, fmt.Sprintf("pre-%d", i%64), 0, 3)
			return err
		}},
		{"Fork", func(db *forkbase.DB, size int) { preload(db, forkbase.NewBlob(payload(size, 1)), 64) },
			func(db *forkbase.DB, size, c, i int) error {
				return db.Fork(bgCtx, fmt.Sprintf("pre-%d", i%64), fmt.Sprintf("b-%d-%d", c, i))
			}},
	}

	for _, op := range ops {
		var tputs, lats [2]string
		for si, size := range sizes {
			db := forkbase.Open()
			if op.setup != nil {
				op.setup(db, size)
			}
			var wg sync.WaitGroup
			lat := make([]time.Duration, clients)
			t0 := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					start := time.Now()
					for i := 0; i < opsPerClient; i++ {
						if err := op.run(db, size, c, i); err != nil {
							panic(fmt.Sprintf("%s: %v", op.name, err))
						}
					}
					lat[c] = time.Since(start) / time.Duration(opsPerClient)
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(t0)
			var avg time.Duration
			for _, l := range lat {
				avg += l
			}
			avg /= time.Duration(clients)
			tputs[si] = opsPerSec(clients*opsPerClient, elapsed)
			lats[si] = fmt.Sprintf("%.3fms", float64(avg.Microseconds())/1000)
			db.Close()
		}
		t.row(op.name, tputs[0], tputs[1], lats[0], lats[1])
	}
	return nil
}

func payload(size, seed int) []byte {
	return workload.RandText(rand.New(rand.NewSource(int64(seed))), size)
}

func preload(db *forkbase.DB, v forkbase.Value, n int) {
	for i := 0; i < n; i++ {
		if _, err := db.Put(bgCtx, fmt.Sprintf("pre-%d", i), v); err != nil {
			panic(err)
		}
	}
}

// RunTable4 reproduces Table 4: the cost breakdown of a Put operation
// (serialization, deserialization, cryptographic hash, rolling hash,
// persistence) for String and Blob at 1 KB and 20 KB.
func RunTable4(w io.Writer, scale Scale) error {
	iters := scale.pick(2000, 20000)
	fmt.Fprintln(w, "Table 4: Breakdown of Put Operation (µs)")
	t := newTable(w, 16, 12, 12, 12, 12)
	t.row("Step", "String-1KB", "String-20KB", "Blob-1KB", "Blob-20KB")

	sizes := []int{1 << 10, 20 << 10}
	cols := make(map[string][4]float64)
	record := func(step string, col int, d time.Duration) {
		v := cols[step]
		v[col] = float64(d.Nanoseconds()) / float64(iters) / 1000
		cols[step] = v
	}

	dir, err := tempDir("fbbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	for si, size := range sizes {
		data := payload(size, si)
		cfg := postree.DefaultConfig()

		// String: columns 0-1; Blob: columns 2-3.
		strCol, blobCol := si, 2+si

		// Serialization: building the meta-chunk payload.
		mem := store.NewMemStore()
		obj, err := types.Save(mem, cfg, []byte("k"), types.String(data), nil, nil)
		if err != nil {
			return err
		}
		metaChunk, err := mem.Get(obj.UID())
		if err != nil {
			return err
		}
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			s2 := store.NewMemStore()
			if _, err := types.Save(s2, cfg, []byte("k"), types.String(data), nil, nil); err != nil {
				return err
			}
		}
		record("Serialization", strCol, time.Since(t0))

		// Deserialization: decoding a fetched meta chunk.
		raw := metaChunk.Bytes()
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			c, err := chunk.Decode(raw)
			if err != nil {
				return err
			}
			_ = c
		}
		record("Deserialization", strCol, time.Since(t0))

		// CryptoHash: SHA-256 over the value bytes.
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			sha256.Sum256(data)
		}
		record("CryptoHash", strCol, time.Since(t0))
		record("CryptoHash", blobCol, time.Since(t0)) // same input size

		// RollingHash: the POS-Tree chunking pass (Blob only).
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			ch := rollsum.NewChunker(cfg.LeafQ, 8<<cfg.LeafQ)
			rem := data
			for len(rem) > 0 {
				n, boundary := ch.FindBoundary(rem)
				rem = rem[n:]
				if boundary {
					ch.Next()
				}
			}
		}
		record("RollingHash", blobCol, time.Since(t0))

		// Blob serialization: full POS-Tree construction.
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			s2 := store.NewMemStore()
			b := postree.NewBuilder(s2, cfg, postree.KindBlob)
			b.AppendBytes(data)
			if _, err := b.Finish(); err != nil {
				return err
			}
		}
		record("Serialization", blobCol, time.Since(t0))

		// Blob deserialization: load + full read.
		s2 := store.NewMemStore()
		bld := postree.NewBuilder(s2, cfg, postree.KindBlob)
		bld.AppendBytes(data)
		tree, err := bld.Finish()
		if err != nil {
			return err
		}
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			tr, err := postree.Load(s2, cfg, postree.KindBlob, tree.Root())
			if err != nil {
				return err
			}
			if _, err := tr.Bytes(); err != nil {
				return err
			}
		}
		record("Deserialization", blobCol, time.Since(t0))

		// Persistence: appending the chunk(s) to the log store.
		for vi, name := range []string{"str", "blob"} {
			fs, err := store.OpenFileStore(fmt.Sprintf("%s/%s-%d", dir, name, size), store.FileStoreOptions{})
			if err != nil {
				return err
			}
			col := strCol
			if vi == 1 {
				col = blobCol
			}
			t0 = time.Now()
			for i := 0; i < iters; i++ {
				// Unique content per iteration so dedup does not elide the write.
				c := chunk.New(chunk.TypeBlob, append(payloadPrefix(i), data[8:]...))
				if _, err := fs.Put(c); err != nil {
					return err
				}
			}
			record("Persistence", col, time.Since(t0))
			fs.Close()
		}
	}

	for _, step := range []string{"Serialization", "Deserialization", "CryptoHash", "RollingHash", "Persistence"} {
		v := cols[step]
		cells := make([]interface{}, 0, 5)
		cells = append(cells, step)
		for _, x := range v {
			if x == 0 {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprintf("%.1f", x))
			}
		}
		t.row(cells...)
	}
	return nil
}

func payloadPrefix(i int) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%08d", i)
	return b.Bytes()
}
