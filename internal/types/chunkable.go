package types

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"forkbase/internal/chunk"
	"forkbase/internal/postree"
	"forkbase/internal/store"
)

// Chunkable handles exist in one of two modes. A fresh handle (from
// NewBlob etc.) stages its content in memory until it is first persisted
// by a Put. An attached handle (from a Get) wraps a POS-Tree; reads
// fetch only the relevant chunks on demand, and edits produce new trees
// via copy-on-write. In both modes edits are local until committed with
// Put, matching the client-buffering behaviour of Figure 4.

// chunkRef is the meta-chunk data for a chunkable value: root cid,
// element count, tree height.
func encodeChunkRef(t *postree.Tree) []byte {
	out := make([]byte, chunk.IDSize+8+1)
	root := t.Root()
	copy(out, root[:])
	binary.LittleEndian.PutUint64(out[chunk.IDSize:], t.Count())
	out[chunk.IDSize+8] = byte(t.Height())
	return out
}

// chunkRefRoot extracts the POS-Tree root cid of an encoded chunkable
// reference. Shared by the value decode path (decodeChunkRef) and the
// GC marker (ChunkRefs), so the two cannot diverge on the layout.
func chunkRefRoot(data []byte) (chunk.ID, error) {
	if len(data) != chunk.IDSize+8+1 {
		return chunk.ID{}, fmt.Errorf("types: bad chunkable reference (%d bytes)", len(data))
	}
	var root chunk.ID
	copy(root[:], data)
	return root, nil
}

func decodeChunkRef(s store.Store, cfg postree.Config, kind postree.Kind, data []byte) (*postree.Tree, error) {
	root, err := chunkRefRoot(data)
	if err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(data[chunk.IDSize:])
	height := int(data[chunk.IDSize+8])
	return postree.Attach(s, cfg, kind, root, count, height), nil
}

// Blob is a chunkable byte sequence.
type Blob struct {
	tree   *postree.Tree // nil while staged
	staged []byte
}

// NewBlob returns a fresh Blob staging the given content.
func NewBlob(data []byte) *Blob {
	return &Blob{staged: append([]byte(nil), data...)}
}

// Type implements Value.
func (*Blob) Type() Type { return TypeBlob }

func (b *Blob) persist(s store.Store, cfg postree.Config) ([]byte, error) {
	if b.tree == nil {
		builder := postree.NewBuilder(s, cfg, postree.KindBlob)
		builder.AppendBytes(b.staged)
		t, err := builder.Finish()
		if err != nil {
			return nil, err
		}
		b.tree = t
		b.staged = nil
	}
	return encodeChunkRef(b.tree), nil
}

// Len returns the blob length in bytes.
func (b *Blob) Len() uint64 {
	if b.tree == nil {
		return uint64(len(b.staged))
	}
	return b.tree.Count()
}

// Bytes materializes the whole blob.
func (b *Blob) Bytes() ([]byte, error) {
	if b.tree == nil {
		return append([]byte(nil), b.staged...), nil
	}
	return b.tree.Bytes()
}

// ReadAt reads into p starting at offset off, fetching only the chunks
// that cover the range.
func (b *Blob) ReadAt(p []byte, off uint64) (int, error) {
	if b.tree == nil {
		if off >= uint64(len(b.staged)) {
			return 0, nil
		}
		return copy(p, b.staged[off:]), nil
	}
	return b.tree.ReadAt(p, off)
}

// Splice replaces del bytes at offset off with ins.
func (b *Blob) Splice(off, del uint64, ins []byte) error {
	if b.tree == nil {
		if off+del > uint64(len(b.staged)) {
			return fmt.Errorf("types: splice out of range")
		}
		next := make([]byte, 0, uint64(len(b.staged))-del+uint64(len(ins)))
		next = append(next, b.staged[:off]...)
		next = append(next, ins...)
		next = append(next, b.staged[off+del:]...)
		b.staged = next
		return nil
	}
	t, err := b.tree.SpliceBytes(off, del, ins)
	if err != nil {
		return err
	}
	b.tree = t
	return nil
}

// Append appends data to the blob.
func (b *Blob) Append(data []byte) error { return b.Splice(b.Len(), 0, data) }

// Remove deletes n bytes at offset off.
func (b *Blob) Remove(off, n uint64) error { return b.Splice(off, n, nil) }

// Insert inserts data at offset off.
func (b *Blob) Insert(off uint64, data []byte) error { return b.Splice(off, 0, data) }

// Tree exposes the underlying POS-Tree of an attached blob (nil while
// staged); used by diff and instrumentation.
func (b *Blob) Tree() *postree.Tree { return b.tree }

// Map is a chunkable sorted key-value collection.
type Map struct {
	tree   *postree.Tree
	staged map[string][]byte
}

// NewMap returns a fresh Map staging the given entries.
func NewMap() *Map { return &Map{staged: make(map[string][]byte)} }

// Type implements Value.
func (*Map) Type() Type { return TypeMap }

func (m *Map) persist(s store.Store, cfg postree.Config) ([]byte, error) {
	if m.tree == nil {
		keys := make([]string, 0, len(m.staged))
		for k := range m.staged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		builder := postree.NewBuilder(s, cfg, postree.KindMap)
		for _, k := range keys {
			builder.Append(postree.EncodeMapElem([]byte(k), m.staged[k]))
		}
		t, err := builder.Finish()
		if err != nil {
			return nil, err
		}
		m.tree = t
		m.staged = nil
	}
	return encodeChunkRef(m.tree), nil
}

// Len returns the number of entries.
func (m *Map) Len() uint64 {
	if m.tree == nil {
		return uint64(len(m.staged))
	}
	return m.tree.Count()
}

// Get returns the value for key.
func (m *Map) Get(key []byte) ([]byte, bool, error) {
	if m.tree == nil {
		v, ok := m.staged[string(key)]
		return v, ok, nil
	}
	return m.tree.Get(key)
}

// Set stores key = value.
func (m *Map) Set(key, value []byte) error {
	return m.Apply([]postree.KV{{Key: key, Value: value}}, nil)
}

// Delete removes key.
func (m *Map) Delete(key []byte) error {
	return m.Apply(nil, [][]byte{key})
}

// Apply performs a batch of sets and deletes in one tree pass.
func (m *Map) Apply(sets []postree.KV, deletes [][]byte) error {
	if m.tree == nil {
		for _, kv := range sets {
			m.staged[string(kv.Key)] = append([]byte(nil), kv.Value...)
		}
		for _, k := range deletes {
			delete(m.staged, string(k))
		}
		return nil
	}
	t, err := m.tree.MapApply(sets, deletes)
	if err != nil {
		return err
	}
	m.tree = t
	return nil
}

// Iter calls fn for each entry in key order until fn returns false.
func (m *Map) Iter(fn func(key, value []byte) bool) error {
	if m.tree == nil {
		keys := make([]string, 0, len(m.staged))
		for k := range m.staged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !fn([]byte(k), m.staged[k]) {
				return nil
			}
		}
		return nil
	}
	it := m.tree.Elems()
	for it.Next() {
		if !fn(postree.MapElemKey(it.Elem()), postree.MapElemValue(it.Elem())) {
			return nil
		}
	}
	return it.Err()
}

// Tree exposes the underlying POS-Tree (nil while staged).
func (m *Map) Tree() *postree.Tree { return m.tree }

// List is a chunkable element sequence.
type List struct {
	tree   *postree.Tree
	staged [][]byte
}

// NewList returns a fresh List staging the given elements.
func NewList(elems ...[]byte) *List {
	l := &List{}
	for _, e := range elems {
		l.staged = append(l.staged, append([]byte(nil), e...))
	}
	return l
}

// Type implements Value.
func (*List) Type() Type { return TypeList }

func (l *List) persist(s store.Store, cfg postree.Config) ([]byte, error) {
	if l.tree == nil {
		builder := postree.NewBuilder(s, cfg, postree.KindList)
		for _, e := range l.staged {
			builder.Append(postree.EncodeListElem(e))
		}
		t, err := builder.Finish()
		if err != nil {
			return nil, err
		}
		l.tree = t
		l.staged = nil
	}
	return encodeChunkRef(l.tree), nil
}

// Len returns the number of elements.
func (l *List) Len() uint64 {
	if l.tree == nil {
		return uint64(len(l.staged))
	}
	return l.tree.Count()
}

// Get returns element i.
func (l *List) Get(i uint64) ([]byte, error) {
	if l.tree == nil {
		if i >= uint64(len(l.staged)) {
			return nil, fmt.Errorf("types: list index %d out of range", i)
		}
		return l.staged[i], nil
	}
	enc, err := l.tree.GetAt(i)
	if err != nil {
		return nil, err
	}
	return postree.SetElemBody(enc), nil
}

// Splice replaces del elements at position at with ins.
func (l *List) Splice(at, del uint64, ins ...[]byte) error {
	if l.tree == nil {
		if at+del > uint64(len(l.staged)) {
			return fmt.Errorf("types: splice out of range")
		}
		next := make([][]byte, 0, uint64(len(l.staged))-del+uint64(len(ins)))
		next = append(next, l.staged[:at]...)
		for _, e := range ins {
			next = append(next, append([]byte(nil), e...))
		}
		next = append(next, l.staged[at+del:]...)
		l.staged = next
		return nil
	}
	t, err := l.tree.ListSplice(at, del, ins)
	if err != nil {
		return err
	}
	l.tree = t
	return nil
}

// Append appends elements.
func (l *List) Append(elems ...[]byte) error { return l.Splice(l.Len(), 0, elems...) }

// Iter calls fn for each element in order until fn returns false.
func (l *List) Iter(fn func(i uint64, elem []byte) bool) error {
	if l.tree == nil {
		for i, e := range l.staged {
			if !fn(uint64(i), e) {
				return nil
			}
		}
		return nil
	}
	it := l.tree.Elems()
	for i := uint64(0); it.Next(); i++ {
		if !fn(i, postree.SetElemBody(it.Elem())) {
			return nil
		}
	}
	return it.Err()
}

// Tree exposes the underlying POS-Tree (nil while staged).
func (l *List) Tree() *postree.Tree { return l.tree }

// Set is a chunkable sorted collection of unique elements.
type Set struct {
	tree   *postree.Tree
	staged map[string]bool
}

// NewSet returns a fresh Set staging the given elements.
func NewSet(elems ...[]byte) *Set {
	s := &Set{staged: make(map[string]bool)}
	for _, e := range elems {
		s.staged[string(e)] = true
	}
	return s
}

// Type implements Value.
func (*Set) Type() Type { return TypeSet }

func (v *Set) persist(s store.Store, cfg postree.Config) ([]byte, error) {
	if v.tree == nil {
		keys := make([]string, 0, len(v.staged))
		for k := range v.staged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		builder := postree.NewBuilder(s, cfg, postree.KindSet)
		for _, k := range keys {
			builder.Append(postree.EncodeListElem([]byte(k)))
		}
		t, err := builder.Finish()
		if err != nil {
			return nil, err
		}
		v.tree = t
		v.staged = nil
	}
	return encodeChunkRef(v.tree), nil
}

// Len returns the number of elements.
func (v *Set) Len() uint64 {
	if v.tree == nil {
		return uint64(len(v.staged))
	}
	return v.tree.Count()
}

// Has reports whether elem is in the set.
func (v *Set) Has(elem []byte) (bool, error) {
	if v.tree == nil {
		return v.staged[string(elem)], nil
	}
	return v.tree.Has(elem)
}

// Add inserts elements.
func (v *Set) Add(elems ...[]byte) error {
	if v.tree == nil {
		for _, e := range elems {
			v.staged[string(e)] = true
		}
		return nil
	}
	t, err := v.tree.SetAdd(elems...)
	if err != nil {
		return err
	}
	v.tree = t
	return nil
}

// Remove deletes elements.
func (v *Set) Remove(elems ...[]byte) error {
	if v.tree == nil {
		for _, e := range elems {
			delete(v.staged, string(e))
		}
		return nil
	}
	t, err := v.tree.SetRemove(elems...)
	if err != nil {
		return err
	}
	v.tree = t
	return nil
}

// Iter calls fn for each element in order until fn returns false.
func (v *Set) Iter(fn func(elem []byte) bool) error {
	if v.tree == nil {
		keys := make([]string, 0, len(v.staged))
		for k := range v.staged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !fn([]byte(k)) {
				return nil
			}
		}
		return nil
	}
	it := v.tree.Elems()
	for it.Next() {
		if !fn(postree.SetElemBody(it.Elem())) {
			return nil
		}
	}
	return it.Err()
}

// Tree exposes the underlying POS-Tree (nil while staged).
func (v *Set) Tree() *postree.Tree { return v.tree }

// Equal reports whether two values have identical content. Chunkable
// values compare by root cid (the Merkle property) and must be attached;
// primitives compare by their encodings.
func Equal(a, b Value) bool {
	if a.Type() != b.Type() {
		return false
	}
	if a.Type().Primitive() {
		ea, err1 := a.persist(nil, postree.Config{})
		eb, err2 := b.persist(nil, postree.Config{})
		return err1 == nil && err2 == nil && bytes.Equal(ea, eb)
	}
	ta, tb := valueTree(a), valueTree(b)
	return ta != nil && tb != nil && ta.Root() == tb.Root()
}

// AttachBlob wraps an existing POS-Tree as a Blob handle.
func AttachBlob(t *postree.Tree) *Blob { return &Blob{tree: t} }

// AttachMap wraps an existing POS-Tree as a Map handle.
func AttachMap(t *postree.Tree) *Map { return &Map{tree: t} }

// AttachList wraps an existing POS-Tree as a List handle.
func AttachList(t *postree.Tree) *List { return &List{tree: t} }

// AttachSet wraps an existing POS-Tree as a Set handle.
func AttachSet(t *postree.Tree) *Set { return &Set{tree: t} }

// CloneMap returns an independent handle on the same content. Trees are
// immutable, so an attached clone is a pointer copy; staged state is
// deep-copied.
func CloneMap(m *Map) *Map {
	if m.tree != nil {
		return &Map{tree: m.tree}
	}
	staged := make(map[string][]byte, len(m.staged))
	for k, v := range m.staged {
		staged[k] = v
	}
	return &Map{staged: staged}
}

// CloneSet returns an independent handle on the same content.
func CloneSet(s *Set) *Set {
	if s.tree != nil {
		return &Set{tree: s.tree}
	}
	staged := make(map[string]bool, len(s.staged))
	for k := range s.staged {
		staged[k] = true
	}
	return &Set{staged: staged}
}

// ParseChunkRef decodes the meta-chunk data of a chunkable value into
// its POS-Tree shape parameters. It is the exported face of the
// chunkRef layout for transports that move trees by reference (chunk
// sync) instead of materializing them.
func ParseChunkRef(data []byte) (root chunk.ID, count uint64, height int, err error) {
	root, err = chunkRefRoot(data)
	if err != nil {
		return chunk.ID{}, 0, 0, err
	}
	count = binary.LittleEndian.Uint64(data[chunk.IDSize:])
	height = int(data[chunk.IDSize+8])
	return root, count, height, nil
}

// KindOfType maps a chunkable value type to its POS-Tree kind. The
// second result is false for primitive (or invalid) types, which have
// no tree.
func KindOfType(t Type) (postree.Kind, bool) {
	switch t {
	case TypeBlob:
		return postree.KindBlob, true
	case TypeList:
		return postree.KindList, true
	case TypeMap:
		return postree.KindMap, true
	case TypeSet:
		return postree.KindSet, true
	}
	return 0, false
}

// AttachValue wraps an existing POS-Tree as the value handle matching
// the given chunkable type. The second result is false when t is not a
// chunkable type.
func AttachValue(t Type, tree *postree.Tree) (Value, bool) {
	switch t {
	case TypeBlob:
		return AttachBlob(tree), true
	case TypeList:
		return AttachList(tree), true
	case TypeMap:
		return AttachMap(tree), true
	case TypeSet:
		return AttachSet(tree), true
	}
	return nil, false
}

// TreeOf returns the underlying POS-Tree of an attached chunkable
// value, or nil for primitives and staged handles.
func TreeOf(v Value) *postree.Tree { return valueTree(v) }

// valueTree returns the underlying tree of an attached chunkable value,
// or nil.
func valueTree(v Value) *postree.Tree {
	switch x := v.(type) {
	case *Blob:
		return x.tree
	case *Map:
		return x.tree
	case *List:
		return x.tree
	case *Set:
		return x.tree
	}
	return nil
}
