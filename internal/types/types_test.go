package types

import (
	"bytes"
	"testing"
	"testing/quick"

	"forkbase/internal/postree"
	"forkbase/internal/store"
)

func testEnv() (store.Store, postree.Config) {
	return store.NewMemStore(), postree.Config{LeafQ: 8, IndexR: 3}
}

func TestPrimitiveRoundTrips(t *testing.T) {
	s, cfg := testEnv()
	cases := []Value{
		String("hello"),
		String(""),
		Int(-42),
		Int(1 << 62),
		Float(3.14159),
		Bool(true),
		Bool(false),
		Tuple{[]byte("a"), []byte(""), []byte("ccc")},
	}
	for _, v := range cases {
		o, err := Save(s, cfg, []byte("k"), v, nil, nil)
		if err != nil {
			t.Fatalf("%v: %v", v.Type(), err)
		}
		loaded, err := LoadFObject(s, o.UID())
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Value(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(v, got) {
			t.Fatalf("%v: round trip mismatch: %#v vs %#v", v.Type(), v, got)
		}
	}
}

func TestUIDCommitsToHistory(t *testing.T) {
	s, cfg := testEnv()
	v1, err := Save(s, cfg, []byte("k"), String("a"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2a, err := Save(s, cfg, []byte("k"), String("b"), []*FObject{v1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The same value with a different history must get a different uid.
	v0, err := Save(s, cfg, []byte("k"), String("zero"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2b, err := Save(s, cfg, []byte("k"), String("b"), []*FObject{v0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2a.UID() == v2b.UID() {
		t.Fatal("uid does not commit to derivation history")
	}
	// The same value with the same history must be identical
	// (logically equivalent FObjects, §3.2).
	v2c, err := Save(s, cfg, []byte("k"), String("b"), []*FObject{v1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2a.UID() != v2c.UID() {
		t.Fatal("equivalent versions got different uids")
	}
	if v2a.Depth != 1 || v1.Depth != 0 {
		t.Fatalf("depths: v1=%d v2=%d", v1.Depth, v2a.Depth)
	}
}

func TestVerifyHistory(t *testing.T) {
	s, cfg := testEnv()
	cur, err := Save(s, cfg, []byte("k"), String("v0"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		cur, err = Save(s, cfg, []byte("k"), String("v"+string(rune('0'+i))), []*FObject{cur}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	n, err := cur.VerifyHistory(s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("verified %d versions, want 10", n)
	}
	// A history whose chunks are missing fails verification.
	orphan, _ := Save(store.NewMemStore(), cfg, []byte("k"), String("x"), []*FObject{cur}, nil)
	if _, err := orphan.VerifyHistory(store.NewMemStore()); err == nil {
		t.Fatal("VerifyHistory passed with missing ancestors")
	}
}

func TestBlobStagedAndAttached(t *testing.T) {
	s, cfg := testEnv()
	b := NewBlob([]byte("0123456789"))
	if err := b.Remove(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Append([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, _ := b.Bytes()
	if string(got) != "3456789abc" {
		t.Fatalf("staged edits: %q", got)
	}
	o, err := Save(s, cfg, []byte("k"), b, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFObject(s, o.UID())
	if err != nil {
		t.Fatal(err)
	}
	v, err := loaded.Value(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ab := v.(*Blob)
	if ab.Tree() == nil {
		t.Fatal("loaded blob not attached")
	}
	if err := ab.Splice(0, 3, []byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	got, _ = ab.Bytes()
	if string(got) != "XYZ6789abc" {
		t.Fatalf("attached edits: %q", got)
	}
	// ReadAt on attached handle.
	p := make([]byte, 4)
	if n, err := ab.ReadAt(p, 3); err != nil || n != 4 || string(p) != "6789" {
		t.Fatalf("ReadAt: %q %d %v", p, n, err)
	}
}

func TestMapStagedAndAttached(t *testing.T) {
	s, cfg := testEnv()
	m := NewMap()
	m.Set([]byte("b"), []byte("2"))
	m.Set([]byte("a"), []byte("1"))
	m.Delete([]byte("b"))
	if m.Len() != 1 {
		t.Fatalf("staged len %d", m.Len())
	}
	o, err := Save(s, cfg, []byte("k"), m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded, _ := LoadFObject(s, o.UID())
	v, err := loaded.Value(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	am := v.(*Map)
	if got, ok, _ := am.Get([]byte("a")); !ok || string(got) != "1" {
		t.Fatalf("attached get: %q %v", got, ok)
	}
	am.Set([]byte("c"), []byte("3"))
	var keys []string
	am.Iter(func(k, v []byte) bool { keys = append(keys, string(k)); return true })
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "c" {
		t.Fatalf("iter keys: %v", keys)
	}
}

func TestListAndSetHandles(t *testing.T) {
	s, cfg := testEnv()
	l := NewList([]byte("x"), []byte("y"))
	l.Append([]byte("z"))
	o, err := Save(s, cfg, []byte("k"), l, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded, _ := LoadFObject(s, o.UID())
	v, _ := loaded.Value(s, cfg)
	al := v.(*List)
	if al.Len() != 3 {
		t.Fatalf("list len %d", al.Len())
	}
	if e, _ := al.Get(1); string(e) != "y" {
		t.Fatalf("list get: %q", e)
	}
	al.Splice(1, 1, []byte("Y"))
	if e, _ := al.Get(1); string(e) != "Y" {
		t.Fatalf("after splice: %q", e)
	}

	set := NewSet([]byte("p"), []byte("q"))
	o2, err := Save(s, cfg, []byte("k2"), set, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded2, _ := LoadFObject(s, o2.UID())
	v2, _ := loaded2.Value(s, cfg)
	as := v2.(*Set)
	if ok, _ := as.Has([]byte("p")); !ok {
		t.Fatal("set lost element")
	}
	as.Add([]byte("r"))
	as.Remove([]byte("p"))
	if as.Len() != 2 {
		t.Fatalf("set len %d", as.Len())
	}
}

func TestContextField(t *testing.T) {
	s, cfg := testEnv()
	ctx := []byte("commit message: fix everything")
	o, err := Save(s, cfg, []byte("k"), String("v"), nil, ctx)
	if err != nil {
		t.Fatal(err)
	}
	loaded, _ := LoadFObject(s, o.UID())
	if !bytes.Equal(loaded.Context, ctx) {
		t.Fatalf("context lost: %q", loaded.Context)
	}
}

func TestTupleOps(t *testing.T) {
	tup := Tuple{[]byte("a"), []byte("b")}
	tup2 := tup.Append([]byte("c"))
	if len(tup2) != 3 || len(tup) != 2 {
		t.Fatal("Append not functional")
	}
	tup3, err := tup.Insert(1, []byte("x"))
	if err != nil || string(tup3[1]) != "x" || len(tup3) != 3 {
		t.Fatalf("Insert: %v %v", tup3, err)
	}
	if _, err := tup.Insert(5, nil); err == nil {
		t.Fatal("Insert out of range succeeded")
	}
	enc := EncodeTuple(tup3)
	dec, err := DecodeTuple(enc)
	if err != nil || len(dec) != 3 || string(dec[1]) != "x" {
		t.Fatalf("tuple round trip: %v %v", dec, err)
	}
}

func TestStringOps(t *testing.T) {
	s := String("hello")
	if s.Append(" world") != "hello world" {
		t.Fatal("Append")
	}
	s2, err := s.Insert(5, "!")
	if err != nil || s2 != "hello!" {
		t.Fatalf("Insert: %q %v", s2, err)
	}
	if _, err := s.Insert(99, "x"); err == nil {
		t.Fatal("Insert out of range succeeded")
	}
}

func TestNumericOps(t *testing.T) {
	if Int(2).Add(3) != 5 || Int(2).Multiply(3) != 6 {
		t.Fatal("Int ops")
	}
	if Float(2).Add(0.5) != 2.5 || Float(2).Multiply(3) != 6 {
		t.Fatal("Float ops")
	}
}

func TestQuickFObjectRoundTrip(t *testing.T) {
	s, cfg := testEnv()
	f := func(key, val, ctx []byte) bool {
		o, err := Save(s, cfg, key, String(val), nil, ctx)
		if err != nil {
			return false
		}
		loaded, err := LoadFObject(s, o.UID())
		if err != nil {
			return false
		}
		return bytes.Equal(loaded.Key, key) &&
			bytes.Equal(loaded.Data, val) &&
			bytes.Equal(loaded.Context, ctx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
