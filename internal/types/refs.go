package types

import (
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/postree"
)

// ChunkRefs returns the outbound Merkle-DAG edges of a chunk: every
// cid the chunk references. It is the store.RefsFunc the garbage
// collector's marker walks with, and it must cover every reference
// kind the engine can persist, or the sweep destroys live data:
//
//   - Meta chunks reference their base versions (the derivation
//     history — keeping them live is what makes Track survive GC) and,
//     for chunkable value types, the POS-Tree root in the data field.
//   - Index chunks (sorted and unsorted) reference their children.
//   - Leaf chunks (Blob/List/Set/Map payloads) reference nothing.
func ChunkRefs(c *chunk.Chunk) ([]chunk.ID, error) {
	switch c.Type() {
	case chunk.TypeMeta:
		o, err := decodeFObject(c.Data())
		if err != nil {
			return nil, fmt.Errorf("types: refs of meta chunk: %w", err)
		}
		out := append([]chunk.ID(nil), o.Bases...)
		if !o.VType.Primitive() {
			root, err := chunkRefRoot(o.Data)
			if err != nil {
				return nil, fmt.Errorf("types: refs of meta chunk: %w", err)
			}
			if !root.IsNil() {
				out = append(out, root)
			}
		}
		return out, nil
	case chunk.TypeUIndex, chunk.TypeSIndex:
		return postree.IndexChildIDs(c.Data())
	default:
		return nil, nil
	}
}
