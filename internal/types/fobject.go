package types

import (
	"encoding/binary"
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/postree"
	"forkbase/internal/store"
)

// UID identifies a version: it is the cid of the FObject's meta chunk,
// and therefore commits to both the value and — through the bases field
// — the entire derivation history (§3.2). The storage cannot present a
// forged history without breaking the hash chain.
type UID = chunk.ID

// FObject is a node in the object derivation graph (paper Figure 2).
type FObject struct {
	// VType is the value type held by this version.
	VType Type
	// Key is the object key.
	Key []byte
	// Depth is the distance to the first version.
	Depth uint64
	// Bases are the uids of the versions this one derives from: one
	// for ordinary updates, two or more for merge results, none for
	// an initial version.
	Bases []UID
	// Context is reserved for application metadata, e.g. a commit
	// message or a proof-of-work nonce.
	Context []byte
	// Data is the inline primitive encoding, or the POS-Tree
	// reference for chunkable types.
	Data []byte

	uid UID // cid of the meta chunk; set by Save/LoadFObject
}

// UID returns the version identifier (zero until Save or LoadFObject).
func (o *FObject) UID() UID { return o.uid }

// encode serializes the FObject into a meta-chunk payload.
func (o *FObject) encode() []byte {
	n := 1 + 4 + len(o.Key) + 8 + 2 + len(o.Bases)*chunk.IDSize + 4 + len(o.Context) + 4 + len(o.Data)
	out := make([]byte, 0, n)
	var b [8]byte
	out = append(out, byte(o.VType))
	binary.LittleEndian.PutUint32(b[:4], uint32(len(o.Key)))
	out = append(out, b[:4]...)
	out = append(out, o.Key...)
	binary.LittleEndian.PutUint64(b[:8], o.Depth)
	out = append(out, b[:8]...)
	binary.LittleEndian.PutUint16(b[:2], uint16(len(o.Bases)))
	out = append(out, b[:2]...)
	for _, base := range o.Bases {
		out = append(out, base[:]...)
	}
	binary.LittleEndian.PutUint32(b[:4], uint32(len(o.Context)))
	out = append(out, b[:4]...)
	out = append(out, o.Context...)
	binary.LittleEndian.PutUint32(b[:4], uint32(len(o.Data)))
	out = append(out, b[:4]...)
	out = append(out, o.Data...)
	return out
}

// decodeFObject parses a meta-chunk payload.
func decodeFObject(payload []byte) (*FObject, error) {
	bad := func() (*FObject, error) { return nil, fmt.Errorf("types: truncated FObject") }
	if len(payload) < 1+4 {
		return bad()
	}
	o := &FObject{VType: Type(payload[0])}
	payload = payload[1:]
	kl := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) < kl+8+2 {
		return bad()
	}
	o.Key = payload[:kl:kl]
	payload = payload[kl:]
	o.Depth = binary.LittleEndian.Uint64(payload)
	payload = payload[8:]
	nb := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	if len(payload) < nb*chunk.IDSize {
		return bad()
	}
	for i := 0; i < nb; i++ {
		var id UID
		copy(id[:], payload[:chunk.IDSize])
		o.Bases = append(o.Bases, id)
		payload = payload[chunk.IDSize:]
	}
	if len(payload) < 4 {
		return bad()
	}
	cl := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) < cl+4 {
		return bad()
	}
	o.Context = payload[:cl:cl]
	payload = payload[cl:]
	dl := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) < dl {
		return bad()
	}
	o.Data = payload[:dl:dl]
	return o, nil
}

// Save persists value v as a new FObject deriving from bases and returns
// it with its uid assigned. The value's chunks (for chunkable types) are
// written first, then the meta chunk.
func Save(s store.Store, cfg postree.Config, key []byte, v Value, bases []*FObject, context []byte) (*FObject, error) {
	data, err := v.persist(s, cfg)
	if err != nil {
		return nil, err
	}
	o := &FObject{
		VType:   v.Type(),
		Key:     append([]byte(nil), key...),
		Context: append([]byte(nil), context...),
		Data:    data,
	}
	for _, b := range bases {
		o.Bases = append(o.Bases, b.uid)
		if b.Depth+1 > o.Depth {
			o.Depth = b.Depth + 1
		}
	}
	c := chunk.New(chunk.TypeMeta, o.encode())
	if _, err := s.Put(c); err != nil {
		return nil, err
	}
	o.uid = c.ID()
	return o, nil
}

// Persist writes a value's chunks without creating a version. It is the
// distributable half of a Put: POS-Tree construction can run on any
// servlet while the owner only updates the FObject and branch table
// (§4.6.1). After Persist, Save on the same handle reuses the built
// tree.
func Persist(s store.Store, cfg postree.Config, v Value) error {
	_, err := v.persist(s, cfg)
	return err
}

// MarshalFObject returns the version's canonical meta-chunk payload,
// the transportable form of an FObject. The uid travels implicitly:
// it is the digest of exactly these bytes, so UnmarshalFObject
// recomputes it — a transport cannot alter a version or mis-attribute
// a uid without the receiver noticing.
func MarshalFObject(o *FObject) []byte { return o.encode() }

// UnmarshalFObject parses a meta-chunk payload produced by
// MarshalFObject and recomputes the version's uid from the bytes,
// preserving tamper evidence (§3.2) across transports.
func UnmarshalFObject(payload []byte) (*FObject, error) {
	o, err := decodeFObject(payload)
	if err != nil {
		return nil, err
	}
	o.uid = chunk.New(chunk.TypeMeta, payload).ID()
	return o, nil
}

// LoadFObject fetches and verifies the FObject with the given uid.
func LoadFObject(s store.Store, uid UID) (*FObject, error) {
	c, err := store.GetVerified(s, uid)
	if err != nil {
		return nil, err
	}
	if c.Type() != chunk.TypeMeta {
		return nil, fmt.Errorf("types: uid %s is a %v chunk, not Meta", uid.Short(), c.Type())
	}
	o, err := decodeFObject(c.Data())
	if err != nil {
		return nil, err
	}
	o.uid = uid
	return o, nil
}

// Value decodes the FObject's value, attaching chunkable handles to s.
func (o *FObject) Value(s store.Store, cfg postree.Config) (Value, error) {
	if o.VType.Primitive() {
		return decodePrimitive(o.VType, o.Data)
	}
	var kind postree.Kind
	switch o.VType {
	case TypeBlob:
		kind = postree.KindBlob
	case TypeList:
		kind = postree.KindList
	case TypeMap:
		kind = postree.KindMap
	case TypeSet:
		kind = postree.KindSet
	default:
		return nil, fmt.Errorf("types: cannot decode value of type %v", o.VType)
	}
	t, err := decodeChunkRef(s, cfg, kind, o.Data)
	if err != nil {
		return nil, err
	}
	switch o.VType {
	case TypeBlob:
		return &Blob{tree: t}, nil
	case TypeList:
		return &List{tree: t}, nil
	case TypeMap:
		return &Map{tree: t}, nil
	default:
		return &Set{tree: t}, nil
	}
}

// VerifyHistory walks the derivation chain from o back to the first
// version, verifying every meta chunk against its uid, and returns the
// number of versions checked. It follows first bases, i.e. the primary
// derivation line. A storage provider that rewrote any ancestor would be
// detected here (§3.2).
func (o *FObject) VerifyHistory(s store.Store) (int, error) {
	n := 1
	cur := o
	for len(cur.Bases) > 0 {
		prev, err := LoadFObject(s, cur.Bases[0])
		if err != nil {
			return n, fmt.Errorf("types: history broken at depth %d: %w", cur.Depth, err)
		}
		cur = prev
		n++
	}
	return n, nil
}
