// Package types implements ForkBase's data model (paper §3): the FObject
// version structure and the built-in value types. Primitive types
// (String, Int, Float, Bool, Tuple) are small and embedded directly in
// the FObject's meta chunk for fast access; chunkable types (Blob, List,
// Map, Set) are stored as POS-Trees and deduplicated (§3.4, §4.2.2).
package types

import (
	"encoding/binary"
	"fmt"
	"math"

	"forkbase/internal/postree"
	"forkbase/internal/store"
)

// Type identifies a value type.
type Type byte

const (
	// TypeInvalid is the zero Type.
	TypeInvalid Type = iota
	// TypeString is a primitive byte string.
	TypeString
	// TypeInt is a primitive signed 64-bit integer.
	TypeInt
	// TypeFloat is a primitive 64-bit float.
	TypeFloat
	// TypeBool is a primitive boolean.
	TypeBool
	// TypeTuple is a primitive ordered collection of small byte strings.
	TypeTuple
	// TypeBlob is a chunkable byte sequence.
	TypeBlob
	// TypeList is a chunkable element sequence.
	TypeList
	// TypeMap is a chunkable sorted key-value collection.
	TypeMap
	// TypeSet is a chunkable sorted element collection.
	TypeSet
)

var typeNames = map[Type]string{
	TypeString: "String", TypeInt: "Int", TypeFloat: "Float", TypeBool: "Bool",
	TypeTuple: "Tuple", TypeBlob: "Blob", TypeList: "List", TypeMap: "Map", TypeSet: "Set",
}

// String returns the type name.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", byte(t))
}

// Primitive reports whether values of this type are embedded in the meta
// chunk rather than stored as a POS-Tree.
func (t Type) Primitive() bool {
	switch t {
	case TypeString, TypeInt, TypeFloat, TypeBool, TypeTuple:
		return true
	}
	return false
}

// Value is a typed ForkBase value. Primitive values are self-contained;
// chunkable values are handles onto POS-Trees and fetch data on demand.
type Value interface {
	// Type returns the value's type tag.
	Type() Type
	// persist writes any underlying chunks to s and returns the data
	// field to embed in the meta chunk.
	persist(s store.Store, cfg postree.Config) ([]byte, error)
}

// String is a primitive byte string optimized for fast access.
type String string

// Type implements Value.
func (String) Type() Type { return TypeString }

func (v String) persist(store.Store, postree.Config) ([]byte, error) {
	return []byte(v), nil
}

// Append returns the string with suffix appended (§3.4 type-specific op).
func (v String) Append(suffix string) String { return v + String(suffix) }

// Insert returns the string with sub inserted at byte offset at.
func (v String) Insert(at int, sub string) (String, error) {
	if at < 0 || at > len(v) {
		return v, fmt.Errorf("types: insert offset %d out of range", at)
	}
	return v[:at] + String(sub) + v[at:], nil
}

// Int is a primitive signed integer.
type Int int64

// Type implements Value.
func (Int) Type() Type { return TypeInt }

func (v Int) persist(store.Store, postree.Config) ([]byte, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:], nil
}

// Add returns v + d (§3.4 numerical op).
func (v Int) Add(d int64) Int { return v + Int(d) }

// Multiply returns v * d.
func (v Int) Multiply(d int64) Int { return v * Int(d) }

// Float is a primitive 64-bit float.
type Float float64

// Type implements Value.
func (Float) Type() Type { return TypeFloat }

func (v Float) persist(store.Store, postree.Config) ([]byte, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(float64(v)))
	return b[:], nil
}

// Add returns v + d.
func (v Float) Add(d float64) Float { return v + Float(d) }

// Multiply returns v * d.
func (v Float) Multiply(d float64) Float { return v * Float(d) }

// Bool is a primitive boolean.
type Bool bool

// Type implements Value.
func (Bool) Type() Type { return TypeBool }

func (v Bool) persist(store.Store, postree.Config) ([]byte, error) {
	if v {
		return []byte{1}, nil
	}
	return []byte{0}, nil
}

// Tuple is a primitive ordered collection of small byte strings, suited
// to things like relational records (§5.3).
type Tuple [][]byte

// Type implements Value.
func (Tuple) Type() Type { return TypeTuple }

func (v Tuple) persist(store.Store, postree.Config) ([]byte, error) {
	return EncodeTuple(v), nil
}

// EncodeTuple serializes a tuple as length-prefixed fields.
func EncodeTuple(v Tuple) []byte {
	n := 4
	for _, f := range v {
		n += 4 + len(f)
	}
	out := make([]byte, 0, n)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(v)))
	out = append(out, b[:]...)
	for _, f := range v {
		binary.LittleEndian.PutUint32(b[:], uint32(len(f)))
		out = append(out, b[:]...)
		out = append(out, f...)
	}
	return out
}

// DecodeTuple parses a serialized tuple.
func DecodeTuple(data []byte) (Tuple, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("types: truncated tuple")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	out := make(Tuple, 0, n)
	for i := 0; i < n; i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("types: truncated tuple field")
		}
		fl := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if len(data) < fl {
			return nil, fmt.Errorf("types: truncated tuple field")
		}
		out = append(out, data[:fl:fl])
		data = data[fl:]
	}
	return out, nil
}

// Field returns the i-th field.
func (v Tuple) Field(i int) []byte { return v[i] }

// Append returns the tuple with fields appended.
func (v Tuple) Append(fields ...[]byte) Tuple {
	return append(append(Tuple{}, v...), fields...)
}

// Insert returns the tuple with a field inserted at position i.
func (v Tuple) Insert(i int, field []byte) (Tuple, error) {
	if i < 0 || i > len(v) {
		return v, fmt.Errorf("types: insert index %d out of range", i)
	}
	out := make(Tuple, 0, len(v)+1)
	out = append(out, v[:i]...)
	out = append(out, field)
	out = append(out, v[i:]...)
	return out, nil
}

// decodePrimitive reconstructs a primitive value from meta-chunk data.
func decodePrimitive(t Type, data []byte) (Value, error) {
	switch t {
	case TypeString:
		return String(data), nil
	case TypeInt:
		if len(data) != 8 {
			return nil, fmt.Errorf("types: bad Int encoding")
		}
		return Int(binary.LittleEndian.Uint64(data)), nil
	case TypeFloat:
		if len(data) != 8 {
			return nil, fmt.Errorf("types: bad Float encoding")
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(data))), nil
	case TypeBool:
		if len(data) != 1 {
			return nil, fmt.Errorf("types: bad Bool encoding")
		}
		return Bool(data[0] != 0), nil
	case TypeTuple:
		return DecodeTuple(data)
	}
	return nil, fmt.Errorf("types: %v is not primitive", t)
}
