// Package rollsum implements the cyclic-polynomial rolling hash and the
// pattern detectors that define POS-Tree node boundaries (paper §4.3.2
// and §4.3.3).
//
// A leaf-node boundary occurs after byte b_k of a window (b_1..b_k) when
//
//	P(b_1..b_k) & (2^q - 1) == 0
//
// where P is a cyclic-polynomial (buzhash) rolling hash. An index-node
// boundary occurs after an entry whose child cid satisfies
//
//	cid & (2^r - 1) == 0
//
// which is cheap because cids are already uniformly distributed
// cryptographic digests.
package rollsum

import (
	"math/bits"

	"forkbase/internal/chunk"
)

// WindowSize is k, the number of bytes in the rolling window. 48 bytes is
// small enough to localize boundary decisions and large enough that the
// window content is effectively random for real data.
const WindowSize = 48

// byteTable maps each byte value to a pseudo-random 64-bit integer (the
// function h in the paper). It is fixed so that chunking is deterministic
// across processes, which the deduplication relies on. Generated once
// from a splitmix64 sequence with seed 0x666f726b62617365 ("forkbase").
var byteTable [256]uint64

// exitTable is byteTable pre-rotated by WindowSize: the term a byte
// contributes by the time it leaves the window. Precomputing it removes
// one rotate from the per-byte scan loop.
var exitTable [256]uint64

func init() {
	x := uint64(0x666f726b62617365)
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range byteTable {
		byteTable[i] = next()
		exitTable[i] = bits.RotateLeft64(byteTable[i], WindowSize%64)
	}
}

// Roller maintains the cyclic-polynomial hash over a sliding window of
// WindowSize bytes. The zero value is not usable; call NewRoller.
type Roller struct {
	window [WindowSize]byte
	pos    int
	sum    uint64
	n      int // bytes consumed since last Reset, saturating at WindowSize
}

// NewRoller returns a Roller with an empty window.
func NewRoller() *Roller {
	return &Roller{}
}

// Reset clears the window. POS-Tree construction resets the roller at
// every chunk boundary so that boundary decisions depend only on content
// after the previous boundary; this is what lets an edited tree re-align
// with the old chunk sequence.
func (r *Roller) Reset() {
	*r = Roller{}
}

// Roll consumes one byte and returns the updated hash value.
//
// The recurrence from the paper is
//
//	P(b_1..b_k) = s(P(b_0..b_{k-1})) XOR s^k(h(b_0)) XOR s^0(h(b_k))
//
// with s a one-bit cyclic left shift; bits.RotateLeft64 implements s on a
// 64-bit word, and s^k is rotation by k mod 64.
func (r *Roller) Roll(b byte) uint64 {
	old := r.window[r.pos]
	r.window[r.pos] = b
	r.pos++
	if r.pos == WindowSize {
		r.pos = 0
	}
	r.sum = bits.RotateLeft64(r.sum, 1) ^ byteTable[b]
	if r.n == WindowSize {
		// The byte leaving the window was rotated WindowSize times
		// since insertion; cancel its term. Before the window fills
		// there is nothing to remove.
		r.sum ^= exitTable[old]
	} else {
		r.n++
	}
	return r.sum
}

// Sum returns the current hash value without consuming input.
func (r *Roller) Sum() uint64 { return r.sum }

// Primed reports whether a full window has been consumed since Reset.
// Boundary checks before the window fills would act on mostly-zero
// state, so the chunker ignores them.
func (r *Roller) Primed() bool { return r.n == WindowSize }

// LeafPattern decides leaf-chunk boundaries: the pattern occurs when the
// q least significant bits of the rolling hash are zero, giving an
// expected chunk size of 2^q bytes.
type LeafPattern struct {
	mask uint64
}

// NewLeafPattern returns a leaf pattern with 2^q expected bytes between
// boundaries.
func NewLeafPattern(q uint) LeafPattern {
	return LeafPattern{mask: (uint64(1) << q) - 1}
}

// Match reports whether hash value v is a boundary.
func (p LeafPattern) Match(v uint64) bool { return v&p.mask == 0 }

// IndexPattern decides index-chunk boundaries from child cids: the
// pattern occurs when the r least significant bits of the cid are zero,
// giving an expected fan-out of 2^r entries per index node (§4.3.3).
type IndexPattern struct {
	mask uint64
}

// NewIndexPattern returns an index pattern with 2^r expected entries
// between boundaries.
func NewIndexPattern(r uint) IndexPattern {
	return IndexPattern{mask: (uint64(1) << r) - 1}
}

// Match reports whether child cid id is a boundary. The low 8 bytes of
// the digest are interpreted little-endian; any fixed slice of a
// cryptographic digest is uniformly distributed.
func (p IndexPattern) Match(id chunk.ID) bool {
	v := uint64(id[0]) | uint64(id[1])<<8 | uint64(id[2])<<16 | uint64(id[3])<<24 |
		uint64(id[4])<<32 | uint64(id[5])<<40 | uint64(id[6])<<48 | uint64(id[7])<<56
	return v&p.mask == 0
}
