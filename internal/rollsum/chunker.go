package rollsum

// Chunker segments a byte stream into content-defined chunks. The caller
// feeds element-sized slices (a whole key-value pair for Map chunks, a
// whole element for List chunks, individual byte runs for Blob chunks)
// and asks after each element whether a boundary should be placed. If the
// pattern fires in the middle of an element the boundary is extended to
// the element's end, so no element ever spans two chunks (§4.3.2).
//
// A boundary is also forced when the chunk grows to MaxSize, bounding
// node size for pattern-free (e.g. repeated) content at the cost of
// boundary-shifting on insertion, as the paper notes in §4.3.3.
type Chunker struct {
	roller  *Roller
	pattern LeafPattern
	size    int
	max     int
	hit     bool
}

// NewChunker returns a chunker with expected chunk size 2^q bytes and a
// hard cap of maxSize bytes per chunk.
func NewChunker(q uint, maxSize int) *Chunker {
	return &Chunker{
		roller:  NewRoller(),
		pattern: NewLeafPattern(q),
		max:     maxSize,
	}
}

// Feed consumes one element's bytes and remembers whether the boundary
// pattern fired at any primed position inside it.
func (c *Chunker) Feed(p []byte) {
	for _, b := range p {
		v := c.roller.Roll(b)
		if c.roller.Primed() && c.pattern.Match(v) {
			c.hit = true
		}
	}
	c.size += len(p)
}

// Boundary reports whether a chunk boundary should be placed after the
// elements fed so far.
func (c *Chunker) Boundary() bool {
	return c.hit || c.size >= c.max
}

// Size returns the number of bytes fed into the current chunk.
func (c *Chunker) Size() int { return c.size }

// Next starts a new chunk: the rolling window is reset so boundary
// decisions depend only on content after this point.
func (c *Chunker) Next() {
	c.roller.Reset()
	c.size = 0
	c.hit = false
}

// FindBoundary is the Blob fast path: it consumes bytes from p until a
// boundary condition is met and returns the number of bytes consumed and
// whether a boundary was placed there. When it returns (len(p), false)
// the caller may feed more bytes or close the final chunk.
func (c *Chunker) FindBoundary(p []byte) (n int, boundary bool) {
	for i, b := range p {
		v := c.roller.Roll(b)
		c.size++
		if (c.roller.Primed() && c.pattern.Match(v)) || c.size >= c.max {
			return i + 1, true
		}
	}
	return len(p), false
}
