package rollsum

import "math/bits"

// Chunker segments a byte stream into content-defined chunks. The caller
// feeds element-sized slices (a whole key-value pair for Map chunks, a
// whole element for List chunks, individual byte runs for Blob chunks)
// and asks after each element whether a boundary should be placed. If the
// pattern fires in the middle of an element the boundary is extended to
// the element's end, so no element ever spans two chunks (§4.3.2).
//
// A boundary is also forced when the chunk grows to MaxSize, bounding
// node size for pattern-free (e.g. repeated) content at the cost of
// boundary-shifting on insertion, as the paper notes in §4.3.3.
type Chunker struct {
	roller  *Roller
	pattern LeafPattern
	size    int
	max     int
	hit     bool
}

// NewChunker returns a chunker with expected chunk size 2^q bytes and a
// hard cap of maxSize bytes per chunk.
func NewChunker(q uint, maxSize int) *Chunker {
	return &Chunker{
		roller:  NewRoller(),
		pattern: NewLeafPattern(q),
		max:     maxSize,
	}
}

// Feed consumes one element's bytes and remembers whether the boundary
// pattern fired at any primed position inside it.
func (c *Chunker) Feed(p []byte) {
	for _, b := range p {
		v := c.roller.Roll(b)
		if c.roller.Primed() && c.pattern.Match(v) {
			c.hit = true
		}
	}
	c.size += len(p)
}

// Boundary reports whether a chunk boundary should be placed after the
// elements fed so far.
func (c *Chunker) Boundary() bool {
	return c.hit || c.size >= c.max
}

// Size returns the number of bytes fed into the current chunk.
func (c *Chunker) Size() int { return c.size }

// Next starts a new chunk: the rolling window is reset so boundary
// decisions depend only on content after this point.
func (c *Chunker) Next() {
	c.roller.Reset()
	c.size = 0
	c.hit = false
}

// FindBoundary is the Blob fast path: it consumes bytes from p until a
// boundary condition is met and returns the number of bytes consumed and
// whether a boundary was placed there. When it returns (len(p), false)
// the caller may feed more bytes or close the final chunk.
//
// The loop is the throughput ceiling of every large Blob write, so the
// roller state is hoisted into locals and split into a priming phase
// (window not yet full: no pattern checks, no exit term) and a steady
// phase (one rotate, two table lookups, one mask test per byte). The
// boundary decisions are bit-identical to Feed's.
func (c *Chunker) FindBoundary(p []byte) (n int, boundary bool) {
	r := c.roller
	sum, pos, size := r.sum, r.pos, c.size
	mask, max := c.pattern.mask, c.max
	i := 0
	for ; r.n < WindowSize && i < len(p); i++ {
		b := p[i]
		r.window[pos] = b
		pos++
		if pos == WindowSize {
			pos = 0
		}
		sum = bits.RotateLeft64(sum, 1) ^ byteTable[b]
		r.n++
		size++
		// The byte that fills the window is the first primed position,
		// so it already gets a pattern check, exactly as Feed does.
		if (r.n == WindowSize && sum&mask == 0) || size >= max {
			r.sum, r.pos, c.size = sum, pos, size
			return i + 1, true
		}
	}
	for ; i < len(p); i++ {
		b := p[i]
		old := r.window[pos]
		r.window[pos] = b
		pos++
		if pos == WindowSize {
			pos = 0
		}
		sum = bits.RotateLeft64(sum, 1) ^ byteTable[b] ^ exitTable[old]
		size++
		if sum&mask == 0 || size >= max {
			r.sum, r.pos, c.size = sum, pos, size
			return i + 1, true
		}
	}
	r.sum, r.pos, c.size = sum, pos, size
	return len(p), false
}

// ScanBoundaries finds every boundary a fresh chunker (reset state, as
// if a boundary sat immediately before p[0]) would place in p, and
// appends their end offsets (exclusive) to dst. The final partial chunk
// — bytes after the last boundary — places no offset.
//
// This is the speculative half of parallel POS-Tree construction: a
// worker scans a block under the guess that a boundary precedes it, and
// a sequential stitcher later verifies the guess (see postree). The
// offsets are exactly what repeated FindBoundary/Next calls on a fresh
// Chunker would produce.
func ScanBoundaries(q uint, maxSize int, p []byte, dst []int) []int {
	c := NewChunker(q, maxSize)
	off := 0
	for off < len(p) {
		n, boundary := c.FindBoundary(p[off:])
		off += n
		if boundary {
			dst = append(dst, off)
			c.Next()
		}
	}
	return dst
}
