package rollsum

import (
	"math/rand"
	"testing"

	"forkbase/internal/chunk"
)

func TestRollerDeterministic(t *testing.T) {
	data := make([]byte, 1024)
	rand.New(rand.NewSource(1)).Read(data)
	a, b := NewRoller(), NewRoller()
	for _, x := range data {
		if a.Roll(x) != b.Roll(x) {
			t.Fatal("two rollers diverged on identical input")
		}
	}
}

// The defining property of a rolling hash: the value depends only on the
// last WindowSize bytes, not on anything before them.
func TestRollerWindowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tail := make([]byte, WindowSize)
	rng.Read(tail)
	prefixA := make([]byte, 300)
	prefixB := make([]byte, 17)
	rng.Read(prefixA)
	rng.Read(prefixB)

	a, b := NewRoller(), NewRoller()
	for _, x := range prefixA {
		a.Roll(x)
	}
	for _, x := range prefixB {
		b.Roll(x)
	}
	var va, vb uint64
	for _, x := range tail {
		va = a.Roll(x)
		vb = b.Roll(x)
	}
	if va != vb {
		t.Fatalf("hash depends on bytes outside the window: %x vs %x", va, vb)
	}
}

func TestRollerPrimed(t *testing.T) {
	r := NewRoller()
	for i := 0; i < WindowSize-1; i++ {
		r.Roll(byte(i))
		if r.Primed() {
			t.Fatalf("primed after %d bytes", i+1)
		}
	}
	r.Roll(0)
	if !r.Primed() {
		t.Fatal("not primed after a full window")
	}
	r.Reset()
	if r.Primed() || r.Sum() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Boundary frequency should be close to 1/2^q on random data.
func TestLeafPatternFrequency(t *testing.T) {
	const q = 8 // expect 1 boundary per 256 bytes
	p := NewLeafPattern(q)
	r := NewRoller()
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 1<<20)
	rng.Read(data)
	hits := 0
	for _, x := range data {
		if v := r.Roll(x); r.Primed() && p.Match(v) {
			hits++
		}
	}
	want := len(data) / 256
	if hits < want/2 || hits > want*2 {
		t.Fatalf("boundary rate off: got %d hits, want about %d", hits, want)
	}
}

func TestChunkerSizes(t *testing.T) {
	const q = 10 // 1 KiB expected
	c := NewChunker(q, 8<<q)
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 1<<20)
	rng.Read(data)
	var sizes []int
	rem := data
	for len(rem) > 0 {
		n, boundary := c.FindBoundary(rem)
		rem = rem[n:]
		if boundary {
			sizes = append(sizes, c.Size())
			c.Next()
		}
	}
	if len(sizes) == 0 {
		t.Fatal("no chunks produced")
	}
	total := 0
	for _, s := range sizes {
		total += s
		if s > 8<<q {
			t.Fatalf("chunk size %d exceeds max %d", s, 8<<q)
		}
	}
	avg := total / len(sizes)
	if avg < (1<<q)/2 || avg > (1<<q)*2 {
		t.Fatalf("average chunk size %d far from expected %d", avg, 1<<q)
	}
}

// Chunk boundaries must be content-defined: the same data yields the
// same boundaries regardless of how it is sliced into Feed calls.
func TestChunkerSliceInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 1<<16)
	rng.Read(data)

	boundariesOf := func(step int) []int {
		c := NewChunker(10, 8<<10)
		var out []int
		pos := 0
		for off := 0; off < len(data); {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			rem := data[off:end]
			for len(rem) > 0 {
				n, boundary := c.FindBoundary(rem)
				pos += n
				rem = rem[n:]
				if boundary {
					out = append(out, pos)
					c.Next()
				}
			}
			off = end
		}
		return out
	}
	a := boundariesOf(1 << 16)
	b := boundariesOf(7)
	if len(a) != len(b) {
		t.Fatalf("boundary count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("boundary %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestChunkerMaxSizeForced(t *testing.T) {
	// Repeated content has no patterns (§4.3.3): every chunk must be
	// forced at max size.
	c := NewChunker(10, 4096)
	zeros := make([]byte, 64<<10)
	rem := zeros
	for len(rem) > 0 {
		n, boundary := c.FindBoundary(rem)
		rem = rem[n:]
		if boundary {
			if c.Size() != 4096 {
				t.Fatalf("forced chunk size %d, want 4096", c.Size())
			}
			c.Next()
		}
	}
}

func TestChunkerElementExtension(t *testing.T) {
	// Feeding whole elements: boundary is only reported after an
	// element even if the pattern fired inside it.
	c := NewChunker(6, 1<<12) // tiny chunks so patterns fire often
	rng := rand.New(rand.NewSource(6))
	elem := make([]byte, 500)
	rng.Read(elem)
	boundaries := 0
	for i := 0; i < 100; i++ {
		c.Feed(elem)
		if c.Boundary() {
			boundaries++
			c.Next()
		}
	}
	if boundaries == 0 {
		t.Fatal("no boundaries over 50KB with 64-byte expected chunks")
	}
}

// FindBoundary's unrolled loop must place boundaries exactly where the
// byte-at-a-time Feed path does — Feed is the oracle the paper's
// algorithm describes, FindBoundary the optimized equivalent.
func TestFindBoundaryMatchesFeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		data := make([]byte, 200<<10)
		rng.Read(data)
		if trial == 1 { // pattern-free: every boundary max-forced
			for i := range data {
				data[i] = 0xAB
			}
		}
		q, max := uint(10), 8<<10
		var slow []int
		c := NewChunker(q, max)
		for i, b := range data {
			c.Feed(data[i : i+1])
			_ = b
			if c.Boundary() {
				slow = append(slow, i+1)
				c.Next()
			}
		}
		fast := ScanBoundaries(q, max, data, nil)
		if len(slow) != len(fast) {
			t.Fatalf("trial %d: boundary count %d (Feed) vs %d (FindBoundary)", trial, len(slow), len(fast))
		}
		for i := range slow {
			if slow[i] != fast[i] {
				t.Fatalf("trial %d: boundary %d at %d (Feed) vs %d (FindBoundary)", trial, i, slow[i], fast[i])
			}
		}
	}
}

func TestIndexPattern(t *testing.T) {
	p := NewIndexPattern(4) // 1 in 16
	hits := 0
	const n = 4096
	for i := 0; i < n; i++ {
		c := chunk.New(chunk.TypeBlob, []byte{byte(i), byte(i >> 8)})
		if p.Match(c.ID()) {
			hits++
		}
	}
	want := n / 16
	if hits < want/2 || hits > want*2 {
		t.Fatalf("index pattern rate off: got %d, want about %d", hits, want)
	}
}
