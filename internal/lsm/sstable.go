package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
)

// SSTable file layout:
//
//	[data block]* [index block] [bloom filter] [footer]
//
// Data blocks hold sorted entries (klen | key | flag | vlen | value);
// flag 1 marks a tombstone. The index block lists (firstKey, offset,
// length) per data block. The footer records the positions of index and
// bloom. All integers are little-endian.

const (
	blockTarget   = 4 << 10
	bloomBitsPerK = 10
	bloomHashes   = 7
	tableMagic    = 0x464b4c534d544231 // "FKLSMTB1"
)

// tableMeta describes one on-disk table.
type tableMeta struct {
	path     string
	level    int
	seq      uint64
	smallest []byte
	largest  []byte
	size     int64
}

// bloomFilter is a simple split bloom filter with double hashing.
type bloomFilter struct {
	bits []byte
	k    int
}

func newBloom(n int) *bloomFilter {
	nbits := n * bloomBitsPerK
	if nbits < 64 {
		nbits = 64
	}
	return &bloomFilter{bits: make([]byte, (nbits+7)/8), k: bloomHashes}
}

func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	return h1, h2
}

func (b *bloomFilter) add(key []byte) {
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits) * 8)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % n
		b.bits[pos/8] |= 1 << (pos % 8)
	}
}

func (b *bloomFilter) mayContain(key []byte) bool {
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits) * 8)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % n
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// indexEntry locates one data block.
type indexEntry struct {
	firstKey []byte
	off, n   uint32
}

// writeTable writes sorted entries to path and returns its metadata.
func writeTable(path string, level int, seq uint64, entries []kv) (*tableMeta, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("lsm: empty table")
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	bloom := newBloom(len(entries))
	var (
		index    []indexEntry
		blockBuf bytes.Buffer
		off      uint32
		first    []byte
	)
	flush := func() {
		if blockBuf.Len() == 0 {
			return
		}
		index = append(index, indexEntry{firstKey: first, off: off, n: uint32(blockBuf.Len())})
		w.Write(blockBuf.Bytes())
		off += uint32(blockBuf.Len())
		blockBuf.Reset()
		first = nil
	}
	var scratch [4]byte
	for _, e := range entries {
		if first == nil {
			first = e.key
		}
		bloom.add(e.key)
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(e.key)))
		blockBuf.Write(scratch[:])
		blockBuf.Write(e.key)
		if e.value == nil {
			blockBuf.WriteByte(1)
			binary.LittleEndian.PutUint32(scratch[:], 0)
			blockBuf.Write(scratch[:])
		} else {
			blockBuf.WriteByte(0)
			binary.LittleEndian.PutUint32(scratch[:], uint32(len(e.value)))
			blockBuf.Write(scratch[:])
			blockBuf.Write(e.value)
		}
		if blockBuf.Len() >= blockTarget {
			flush()
		}
	}
	flush()

	indexOff := off
	var ibuf bytes.Buffer
	for _, ie := range index {
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(ie.firstKey)))
		ibuf.Write(scratch[:])
		ibuf.Write(ie.firstKey)
		binary.LittleEndian.PutUint32(scratch[:], ie.off)
		ibuf.Write(scratch[:])
		binary.LittleEndian.PutUint32(scratch[:], ie.n)
		ibuf.Write(scratch[:])
	}
	w.Write(ibuf.Bytes())
	bloomOff := indexOff + uint32(ibuf.Len())
	w.Write(bloom.bits)

	var footer [40]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(ibuf.Len()))
	binary.LittleEndian.PutUint64(footer[16:24], uint64(bloomOff))
	binary.LittleEndian.PutUint64(footer[24:32], uint64(len(bloom.bits)))
	binary.LittleEndian.PutUint64(footer[32:40], tableMagic)
	w.Write(footer[:])
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	return &tableMeta{
		path:     path,
		level:    level,
		seq:      seq,
		smallest: append([]byte(nil), entries[0].key...),
		largest:  append([]byte(nil), entries[len(entries)-1].key...),
		size:     st.Size(),
	}, nil
}

// tableReader serves point reads and scans from one SSTable. Index and
// bloom live in memory; data blocks are read on demand.
type tableReader struct {
	meta  *tableMeta
	f     *os.File
	index []indexEntry
	bloom *bloomFilter
}

func openTable(meta *tableMeta) (*tableReader, error) {
	f, err := os.Open(meta.path)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: %w", err)
	}
	var footer [40]byte
	if _, err := f.ReadAt(footer[:], st.Size()-40); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if binary.LittleEndian.Uint64(footer[32:40]) != tableMagic {
		f.Close()
		return nil, fmt.Errorf("lsm: %s: bad magic", meta.path)
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:8])
	indexLen := binary.LittleEndian.Uint64(footer[8:16])
	bloomOff := binary.LittleEndian.Uint64(footer[16:24])
	bloomLen := binary.LittleEndian.Uint64(footer[24:32])

	ibuf := make([]byte, indexLen)
	if _, err := f.ReadAt(ibuf, int64(indexOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: %w", err)
	}
	r := &tableReader{meta: meta, f: f}
	for len(ibuf) > 0 {
		kl := binary.LittleEndian.Uint32(ibuf)
		ie := indexEntry{firstKey: ibuf[4 : 4+kl]}
		ibuf = ibuf[4+kl:]
		ie.off = binary.LittleEndian.Uint32(ibuf)
		ie.n = binary.LittleEndian.Uint32(ibuf[4:])
		ibuf = ibuf[8:]
		r.index = append(r.index, ie)
	}
	bbits := make([]byte, bloomLen)
	if _, err := f.ReadAt(bbits, int64(bloomOff)); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: %w", err)
	}
	r.bloom = &bloomFilter{bits: bbits, k: bloomHashes}
	return r, nil
}

func (r *tableReader) close() error { return r.f.Close() }

// get returns (value, found). Tombstones return (nil, true).
func (r *tableReader) get(key []byte) ([]byte, bool, error) {
	if bytes.Compare(key, r.meta.smallest) < 0 || bytes.Compare(key, r.meta.largest) > 0 {
		return nil, false, nil
	}
	if !r.bloom.mayContain(key) {
		return nil, false, nil
	}
	// Last block whose firstKey <= key.
	lo, hi := 0, len(r.index)-1
	blk := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		if bytes.Compare(r.index[mid].firstKey, key) <= 0 {
			blk = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	entries, err := r.readBlock(blk)
	if err != nil {
		return nil, false, err
	}
	for _, e := range entries {
		switch bytes.Compare(e.key, key) {
		case 0:
			return e.value, true, nil
		case 1:
			return nil, false, nil
		}
	}
	return nil, false, nil
}

// readBlock decodes data block i.
func (r *tableReader) readBlock(i int) ([]kv, error) {
	ie := r.index[i]
	buf := make([]byte, ie.n)
	if _, err := r.f.ReadAt(buf, int64(ie.off)); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	var out []kv
	for len(buf) > 0 {
		kl := binary.LittleEndian.Uint32(buf)
		key := buf[4 : 4+kl]
		buf = buf[4+kl:]
		tomb := buf[0] == 1
		vl := binary.LittleEndian.Uint32(buf[1:5])
		buf = buf[5:]
		var val []byte
		if !tomb {
			val = buf[:vl]
			buf = buf[vl:]
		}
		out = append(out, kv{key: key, value: val})
	}
	return out, nil
}

// all returns every entry in the table in key order.
func (r *tableReader) all() ([]kv, error) {
	var out []kv
	for i := range r.index {
		entries, err := r.readBlock(i)
		if err != nil {
			return nil, err
		}
		out = append(out, entries...)
	}
	return out, nil
}
