package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func smallOpts() Options {
	// Tiny thresholds force flushes and compactions in tests.
	return Options{MemtableBytes: 16 << 10, L0Compaction: 3, LevelBase: 64 << 10}
}

func TestPutGetDelete(t *testing.T) {
	db, err := Open(t.TempDir(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("get: %q %v", v, err)
	}
	db.Put([]byte("k"), []byte("v2"))
	v, _ = db.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("overwrite: %q", v)
	}
	db.Delete([]byte("k"))
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete: %v", err)
	}
	if _, err := db.Get([]byte("never")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
}

func TestAgainstModelThroughCompactions(t *testing.T) {
	db, err := Open(t.TempDir(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("key-%05d", rng.Intn(3000))
		switch rng.Intn(10) {
		case 0:
			db.Delete([]byte(k))
			delete(model, k)
		default:
			v := fmt.Sprintf("val-%d-%d", i, rng.Int63())
			db.Put([]byte(k), []byte(v))
			model[k] = v
		}
	}
	if db.Stats().Compactions == 0 || db.Stats().Flushes == 0 {
		t.Fatalf("test did not exercise flush/compaction: %+v", db.Stats())
	}
	for k, want := range model {
		v, err := db.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("Get(%q) = %q %v, want %q", k, v, err, want)
		}
	}
	// Deleted and never-written keys stay absent.
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%05d", i)
		if _, ok := model[k]; ok {
			continue
		}
		if _, err := db.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%q) should be absent: %v", k, err)
		}
	}
}

func TestScan(t *testing.T) {
	db, err := Open(t.TempDir(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k0100"))
	var got []string
	err = db.Scan([]byte("k0099"), []byte("k0103"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"k0099", "k0101", "k0102"}
	if len(got) != len(want) {
		t.Fatalf("scan: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan: %v, want %v", got, want)
		}
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{MemtableBytes: 64 << 20}) // never flush
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k050"))
	// Simulate a crash: close the WAL file but skip Close's flush.
	db.log.close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.Get([]byte("k099"))
	if err != nil || string(v) != "v99" {
		t.Fatalf("after recovery: %q %v", v, err)
	}
	if _, err := db2.Get([]byte("k050")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone lost in recovery: %v", err)
	}
}

func TestTableRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), bytes.Repeat([]byte{byte(i)}, 50))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, i := range []int{0, 1234, 4999} {
		v, err := db2.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 50)) {
			t.Fatalf("k%05d after restart: %v", i, err)
		}
	}
}

func TestBloomFilter(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatal("bloom false negative")
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.mayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if fp > 300 { // ~1% expected at 10 bits/key; allow 3%
		t.Fatalf("bloom false positive rate too high: %d/10000", fp)
	}
}

func TestMemtableOrdering(t *testing.T) {
	m := newMemtable()
	rng := rand.New(rand.NewSource(2))
	keys := rng.Perm(1000)
	for _, k := range keys {
		m.put([]byte(fmt.Sprintf("k%04d", k)), []byte("v"))
	}
	entries := m.entries()
	if len(entries) != 1000 {
		t.Fatalf("entries: %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if bytes.Compare(entries[i-1].key, entries[i].key) >= 0 {
			t.Fatal("memtable not sorted")
		}
	}
}

func TestQuickLSMMatchesMap(t *testing.T) {
	db, err := Open(t.TempDir(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	model := make(map[string][]byte)
	f := func(key uint16, value []byte, del bool) bool {
		k := []byte(fmt.Sprintf("k%05d", key%512))
		if del {
			if err := db.Delete(k); err != nil {
				return false
			}
			delete(model, string(k))
		} else {
			if err := db.Put(k, value); err != nil {
				return false
			}
			model[string(k)] = append([]byte(nil), value...)
		}
		want, ok := model[string(k)]
		got, err := db.Get(k)
		if !ok {
			return errors.Is(err, ErrNotFound)
		}
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
