package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrNotFound is returned by Get when the key is absent or deleted.
var ErrNotFound = errors.New("lsm: key not found")

const numLevels = 7

// Options configures a DB.
type Options struct {
	// MemtableBytes flushes the memtable to an L0 table beyond this
	// size. Default 4 MiB.
	MemtableBytes int
	// L0Compaction triggers L0->L1 compaction at this many L0 tables.
	// Default 4.
	L0Compaction int
	// LevelBase is the target byte size of L1; each level down is 10x
	// larger. Default 16 MiB.
	LevelBase int64
	// SyncWAL fsyncs the write-ahead log on every write.
	SyncWAL bool
}

func (o *Options) fill() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.L0Compaction <= 0 {
		o.L0Compaction = 4
	}
	if o.LevelBase <= 0 {
		o.LevelBase = 16 << 20
	}
}

// DB is a leveled LSM-tree store.
type DB struct {
	mu     sync.RWMutex
	dir    string
	opts   Options
	mem    *memtable
	log    *wal
	levels [numLevels][]*tableReader // L0 newest first; L1+ sorted by smallest key
	seq    uint64
	stats  Stats
}

// Stats counts DB activity.
type Stats struct {
	Puts, Gets, Deletes int64
	Flushes             int64
	Compactions         int64
	TablesBuilt         int64
	LevelReads          int64 // tables probed across all Gets
}

// Open opens (creating if needed) a DB in dir, replaying the WAL and
// registering existing tables.
func Open(dir string, opts Options) (*DB, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	db := &DB{dir: dir, opts: opts, mem: newMemtable()}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	type located struct {
		level int
		seq   uint64
		name  string
	}
	var found []located
	for _, e := range entries {
		var level int
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "sst-L%d-%d.sst", &level, &seq); err == nil {
			found = append(found, located{level, seq, e.Name()})
			if seq >= db.seq {
				db.seq = seq + 1
			}
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].seq > found[j].seq }) // newest first
	for _, l := range found {
		r, err := openTable(&tableMeta{path: filepath.Join(dir, l.name), level: l.level, seq: l.seq})
		if err != nil {
			return nil, err
		}
		// Recover key range from the index.
		all, err := r.all()
		if err != nil {
			return nil, err
		}
		if len(all) > 0 {
			r.meta.smallest = append([]byte(nil), all[0].key...)
			r.meta.largest = append([]byte(nil), all[len(all)-1].key...)
		}
		st, _ := os.Stat(r.meta.path)
		if st != nil {
			r.meta.size = st.Size()
		}
		db.levels[l.level] = append(db.levels[l.level], r)
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		sortLevel(db.levels[lvl])
	}
	if err := replayWAL(db.walPath(), func(key, value []byte, tomb bool) {
		if tomb {
			db.mem.put(key, nil)
		} else {
			v := make([]byte, len(value))
			copy(v, value)
			db.mem.put(key, v)
		}
	}); err != nil {
		return nil, err
	}
	db.log, err = openWAL(db.walPath(), opts.SyncWAL)
	if err != nil {
		return nil, err
	}
	return db, nil
}

func sortLevel(tables []*tableReader) {
	sort.Slice(tables, func(i, j int) bool {
		return bytes.Compare(tables[i].meta.smallest, tables[j].meta.smallest) < 0
	})
}

func (db *DB) walPath() string { return filepath.Join(db.dir, "wal.log") }

// Put stores key = value.
func (db *DB) Put(key, value []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.stats.Puts++
	if err := db.log.append(key, value, false); err != nil {
		return err
	}
	// Copy via make so an empty value stays non-nil: nil is reserved
	// for tombstones throughout the engine.
	v := make([]byte, len(value))
	copy(v, value)
	db.mem.put(key, v)
	return db.maybeFlushLocked()
}

// Delete removes key.
func (db *DB) Delete(key []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.stats.Deletes++
	if err := db.log.append(key, nil, true); err != nil {
		return err
	}
	db.mem.put(key, nil)
	return db.maybeFlushLocked()
}

// Get returns the newest value for key, or ErrNotFound. It probes the
// memtable, then L0 tables newest-first, then one table per deeper
// level — the multi-level traversal the paper's read comparison
// observes.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.stats.Gets++
	if v, ok := db.mem.get(key); ok {
		if v == nil {
			return nil, ErrNotFound
		}
		return v, nil
	}
	for _, r := range db.levels[0] {
		db.stats.LevelReads++
		v, ok, err := r.get(key)
		if err != nil {
			return nil, err
		}
		if ok {
			if v == nil {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		tables := db.levels[lvl]
		if len(tables) == 0 {
			continue
		}
		i := sort.Search(len(tables), func(i int) bool {
			return bytes.Compare(tables[i].meta.largest, key) >= 0
		})
		if i == len(tables) || bytes.Compare(tables[i].meta.smallest, key) > 0 {
			continue
		}
		db.stats.LevelReads++
		v, ok, err := tables[i].get(key)
		if err != nil {
			return nil, err
		}
		if ok {
			if v == nil {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	return nil, ErrNotFound
}

// maybeFlushLocked flushes the memtable to L0 and compacts as needed.
func (db *DB) maybeFlushLocked() error {
	if db.mem.approximateSize() < db.opts.MemtableBytes {
		return nil
	}
	return db.flushLocked()
}

// Flush forces the memtable to disk.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	entries := db.mem.entries()
	if len(entries) == 0 {
		return nil
	}
	db.stats.Flushes++
	meta, err := db.newTable(0, entries)
	if err != nil {
		return err
	}
	r, err := openTable(meta)
	if err != nil {
		return err
	}
	db.levels[0] = append([]*tableReader{r}, db.levels[0]...)
	db.mem = newMemtable()
	// Reset the WAL: its contents are now durable in the table.
	if err := db.log.close(); err != nil {
		return err
	}
	if err := os.Remove(db.walPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("lsm: %w", err)
	}
	db.log, err = openWAL(db.walPath(), db.opts.SyncWAL)
	if err != nil {
		return err
	}
	return db.maybeCompactLocked()
}

func (db *DB) newTable(level int, entries []kv) (*tableMeta, error) {
	seq := db.seq
	db.seq++
	db.stats.TablesBuilt++
	path := filepath.Join(db.dir, fmt.Sprintf("sst-L%d-%d.sst", level, seq))
	return writeTable(path, level, seq, entries)
}

// maybeCompactLocked runs compactions until all level invariants hold.
func (db *DB) maybeCompactLocked() error {
	for {
		if len(db.levels[0]) >= db.opts.L0Compaction {
			if err := db.compactLocked(0); err != nil {
				return err
			}
			continue
		}
		compacted := false
		target := db.opts.LevelBase
		for lvl := 1; lvl < numLevels-1; lvl++ {
			if levelBytes(db.levels[lvl]) > target {
				if err := db.compactLocked(lvl); err != nil {
					return err
				}
				compacted = true
				break
			}
			target *= 10
		}
		if !compacted {
			return nil
		}
	}
}

func levelBytes(tables []*tableReader) int64 {
	var n int64
	for _, t := range tables {
		n += t.meta.size
	}
	return n
}

// compactLocked merges level lvl (all of L0, or the oldest table of a
// deeper level) with the overlapping tables of lvl+1.
func (db *DB) compactLocked(lvl int) error {
	db.stats.Compactions++
	var up []*tableReader
	if lvl == 0 {
		up = db.levels[0]
		db.levels[0] = nil
	} else {
		up = db.levels[lvl][:1]
		db.levels[lvl] = db.levels[lvl][1:]
	}
	lo, hi := keyRange(up)
	var down, keep []*tableReader
	for _, t := range db.levels[lvl+1] {
		if bytes.Compare(t.meta.largest, lo) < 0 || bytes.Compare(t.meta.smallest, hi) > 0 {
			keep = append(keep, t)
		} else {
			down = append(down, t)
		}
	}
	// Merge: upper level wins over lower; among L0 tables, newest
	// (listed first) wins.
	merged := make(map[string]kv)
	var order []string
	absorb := func(tables []*tableReader) error {
		for _, t := range tables {
			entries, err := t.all()
			if err != nil {
				return err
			}
			for _, e := range entries {
				k := string(e.key)
				if _, ok := merged[k]; !ok {
					merged[k] = e
					order = append(order, k)
				}
			}
		}
		return nil
	}
	if err := absorb(up); err != nil {
		return err
	}
	if err := absorb(down); err != nil {
		return err
	}
	sort.Strings(order)
	bottom := db.bottomLevelLocked(lvl + 1)
	out := make([]kv, 0, len(order))
	for _, k := range order {
		e := merged[k]
		if e.value == nil && bottom {
			continue // drop tombstones once nothing deeper can hold the key
		}
		out = append(out, kv{key: []byte(k), value: e.value})
	}
	var created []*tableReader
	for start := 0; start < len(out); {
		end, bytesSoFar := start, 0
		for end < len(out) && int64(bytesSoFar) < db.opts.LevelBase {
			bytesSoFar += len(out[end].key) + len(out[end].value) + 16
			end++
		}
		meta, err := db.newTable(lvl+1, out[start:end])
		if err != nil {
			return err
		}
		r, err := openTable(meta)
		if err != nil {
			return err
		}
		created = append(created, r)
		start = end
	}
	db.levels[lvl+1] = append(keep, created...)
	sortLevel(db.levels[lvl+1])
	// Close via a fresh slice: appending down onto up would write into
	// the backing array still referenced by db.levels[lvl].
	toClose := make([]*tableReader, 0, len(up)+len(down))
	toClose = append(toClose, up...)
	toClose = append(toClose, down...)
	for _, t := range toClose {
		t.close()
		os.Remove(t.meta.path)
	}
	return nil
}

// bottomLevelLocked reports whether no level below lvl holds data.
func (db *DB) bottomLevelLocked(lvl int) bool {
	for l := lvl + 1; l < numLevels; l++ {
		if len(db.levels[l]) > 0 {
			return false
		}
	}
	return true
}

func keyRange(tables []*tableReader) (lo, hi []byte) {
	for _, t := range tables {
		if lo == nil || bytes.Compare(t.meta.smallest, lo) < 0 {
			lo = t.meta.smallest
		}
		if hi == nil || bytes.Compare(t.meta.largest, hi) > 0 {
			hi = t.meta.largest
		}
	}
	return lo, hi
}

// Scan calls fn for every live key in [start, end) in order, merging
// all levels. A nil end scans to the end of the key space.
func (db *DB) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	merged := make(map[string][]byte)
	consider := func(e kv) {
		if start != nil && bytes.Compare(e.key, start) < 0 {
			return
		}
		if end != nil && bytes.Compare(e.key, end) >= 0 {
			return
		}
		if _, seen := merged[string(e.key)]; !seen {
			merged[string(e.key)] = e.value
		}
	}
	for _, e := range db.mem.entries() {
		consider(e)
	}
	for _, r := range db.levels[0] {
		entries, err := r.all()
		if err != nil {
			return err
		}
		for _, e := range entries {
			consider(e)
		}
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		for _, r := range db.levels[lvl] {
			entries, err := r.all()
			if err != nil {
				return err
			}
			for _, e := range entries {
				consider(e)
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for k, v := range merged {
		if v != nil {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), merged[k]) {
			return nil
		}
	}
	return nil
}

// Stats returns activity counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.stats
}

// TableCount returns the number of live tables per level.
func (db *DB) TableCount() [numLevels]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out [numLevels]int
	for i, l := range db.levels {
		out[i] = len(l)
	}
	return out
}

// Close flushes the memtable and releases all files.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.flushLocked(); err != nil {
		return err
	}
	for _, lvl := range db.levels {
		for _, t := range lvl {
			t.close()
		}
	}
	return db.log.close()
}
