package lsm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// wal is the write-ahead log protecting the memtable. Record layout:
//
//	crc32(body) | u32 len(body) | body
//	body = u32 klen | key | u8 flag | u32 vlen | value
//
// flag 1 marks a tombstone. A torn tail is tolerated on replay.
type wal struct {
	f    *os.File
	w    *bufio.Writer
	sync bool
}

func openWAL(path string, syncWrites bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 256<<10), sync: syncWrites}, nil
}

func (l *wal) append(key, value []byte, tombstone bool) error {
	body := make([]byte, 0, 9+len(key)+len(value))
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(key)))
	body = append(body, b[:]...)
	body = append(body, key...)
	if tombstone {
		body = append(body, 1)
	} else {
		body = append(body, 0)
	}
	binary.LittleEndian.PutUint32(b[:], uint32(len(value)))
	body = append(body, b[:]...)
	body = append(body, value...)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(body)))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	if _, err := l.w.Write(body); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	if l.sync {
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("lsm: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("lsm: %w", err)
		}
	}
	return nil
}

func (l *wal) close() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	return l.f.Close()
}

// replayWAL feeds every intact record into fn, stopping quietly at a
// torn tail. A missing file is not an error.
func replayWAL(path string, fn func(key, value []byte, tombstone bool)) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, 8)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return nil
		}
		crc := binary.LittleEndian.Uint32(hdr[0:4])
		n := binary.LittleEndian.Uint32(hdr[4:8])
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(body) != crc {
			return nil
		}
		kl := binary.LittleEndian.Uint32(body)
		key := body[4 : 4+kl]
		rest := body[4+kl:]
		tomb := rest[0] == 1
		vl := binary.LittleEndian.Uint32(rest[1:5])
		val := rest[5 : 5+vl]
		fn(key, val, tomb)
	}
}
