// Package lsm is a log-structured merge-tree key-value store built from
// scratch: write-ahead log, skiplist memtable, sorted-string tables with
// block indexes and bloom filters, and leveled compaction. It stands in
// for RocksDB/LevelDB as the baseline storage engine under Hyperledger
// in the paper's blockchain evaluation (§6.2): reads traverse multiple
// levels, writes are fast appends, and there is no version index — the
// properties the paper's comparison exercises.
package lsm

import (
	"bytes"
	"math/rand"
	"sync"
)

const maxSkipLevel = 16

// skipNode is one tower in the skiplist.
type skipNode struct {
	key   []byte
	value []byte // nil means tombstone
	next  [maxSkipLevel]*skipNode
	level int
}

// memtable is a concurrency-safe skiplist holding the newest writes.
type memtable struct {
	mu    sync.RWMutex
	head  *skipNode
	rng   *rand.Rand
	size  int // approximate bytes
	count int
}

func newMemtable() *memtable {
	return &memtable{
		head: &skipNode{level: maxSkipLevel},
		rng:  rand.New(rand.NewSource(0x6c736d)),
	}
}

func (m *memtable) randomLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && m.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// put inserts or overwrites key. value nil records a tombstone.
func (m *memtable) put(key, value []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var update [maxSkipLevel]*skipNode
	x := m.head
	for i := maxSkipLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		m.size += len(value) - len(n.value)
		n.value = value
		return
	}
	lvl := m.randomLevel()
	n := &skipNode{
		key:   append([]byte(nil), key...),
		value: value,
		level: lvl,
	}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	m.size += len(key) + len(value) + 48
	m.count++
}

// get returns (value, found). A found tombstone returns (nil, true).
func (m *memtable) get(key []byte) ([]byte, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x := m.head
	for i := maxSkipLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		return n.value, true
	}
	return nil, false
}

// approximateSize returns the memtable's rough memory footprint.
func (m *memtable) approximateSize() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}

// entries returns all entries in key order (tombstones included).
func (m *memtable) entries() []kv {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]kv, 0, m.count)
	for n := m.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, kv{key: n.key, value: n.value})
	}
	return out
}

// kv is one key-value pair; value nil is a tombstone.
type kv struct {
	key, value []byte
}
