package branch

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"forkbase/internal/types"
)

// juid builds a distinct test uid from an integer (the branch_test
// helper uid() only covers a byte's worth).
func juid(n int) types.UID {
	var u types.UID
	u[0] = byte(n)
	u[1] = byte(n >> 8)
	u[2] = byte(n >> 16)
	return u
}

// openTestJournal opens a journal over dir and restores its state.
func openTestJournal(t *testing.T, dir string, opts JournalOptions) (*Journal, *Space, []types.UID) {
	t.Helper()
	j, err := OpenJournal(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	sp, pins := j.Restore()
	return j, sp, pins
}

// stateOf flattens a Space into comparable maps.
func stateOf(sp *Space) map[string]map[string]types.UID {
	out := make(map[string]map[string]types.UID)
	for _, k := range sp.Keys() {
		tb, _ := sp.Lookup([]byte(k))
		m := make(map[string]types.UID)
		for _, b := range tb.Tagged() {
			m[b.Name] = b.Head
		}
		for i, u := range tb.Untagged() {
			m[fmt.Sprintf("~untagged%d", i)] = u
		}
		out[k] = m
	}
	return out
}

func requireSameState(t *testing.T, want, got *Space, wantPins, gotPins []types.UID) {
	t.Helper()
	if w, g := stateOf(want), stateOf(got); !reflect.DeepEqual(w, g) {
		t.Fatalf("recovered space diverged:\nwant %v\ngot  %v", w, g)
	}
	if len(wantPins) != 0 || len(gotPins) != 0 {
		if !reflect.DeepEqual(wantPins, gotPins) {
			t.Fatalf("recovered pins diverged: want %v got %v", wantPins, gotPins)
		}
	}
}

// TestJournalRoundTrip covers every op kind: mutations applied to a
// journaled Space must be identical after close + reopen + Restore.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, sp, _ := openTestJournal(t, dir, JournalOptions{})

	tb := sp.Table([]byte("doc"))
	if err := tb.UpdateTagged("master", juid(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.Fork("feature", juid(1)); err != nil {
		t.Fatal(err)
	}
	if err := tb.UpdateTagged("feature", juid(2), nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.Rename("feature", "release"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Fork("scratch", juid(2)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Remove("scratch"); err != nil {
		t.Fatal(err)
	}
	ub := sp.Table([]byte("conflicted"))
	if err := ub.AddUntagged(juid(10), nil); err != nil {
		t.Fatal(err)
	}
	if err := ub.AddUntagged(juid(11), []types.UID{juid(10)}); err != nil {
		t.Fatal(err)
	}
	if err := ub.AddUntagged(juid(12), []types.UID{juid(10)}); err != nil {
		t.Fatal(err)
	}
	if err := ub.ReplaceUntagged(juid(13), []types.UID{juid(11), juid(12)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(Op{Kind: OpPin, UID: juid(40)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(Op{Kind: OpPin, UID: juid(41)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(Op{Kind: OpUnpin, UID: juid(40)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, gotPins := openTestJournal(t, dir, JournalOptions{})
	requireSameState(t, sp, got, []types.UID{juid(41)}, gotPins)
	tb2, _ := got.Lookup([]byte("doc"))
	if h, _ := tb2.Head("release"); h != juid(2) {
		t.Fatalf("renamed branch head = %v, want %v", h, juid(2))
	}
	if _, ok := tb2.Head("feature"); ok {
		t.Fatal("rename left the old name behind")
	}
	if _, ok := tb2.Head("scratch"); ok {
		t.Fatal("removed branch recovered")
	}
	ub2, _ := got.Lookup([]byte("conflicted"))
	if heads := ub2.Untagged(); len(heads) != 1 || heads[0] != juid(13) {
		t.Fatalf("untagged heads after replace = %v, want [%v]", heads, juid(13))
	}
}

// TestJournalRenameRemoveReplaceRoundTrip reopens after EACH of the
// three table-shrinking ops, proving none of them depends on state the
// snapshot or WAL failed to carry.
func TestJournalRenameRemoveReplaceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, sp, _ := openTestJournal(t, dir, JournalOptions{})
	tb := sp.Table([]byte("k"))
	for _, step := range []func() error{
		func() error { return tb.UpdateTagged("a", juid(1), nil) },
		func() error { return tb.Fork("b", juid(1)) },
		func() error { return tb.Rename("a", "c") },
		func() error { return tb.Remove("b") },
		func() error { return tb.AddUntagged(juid(5), nil) },
		func() error { return tb.AddUntagged(juid(6), []types.UID{juid(5)}) },
		func() error { return tb.AddUntagged(juid(7), []types.UID{juid(5)}) },
		func() error { return tb.ReplaceUntagged(juid(8), []types.UID{juid(6), juid(7)}) },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
		j.Close()
		var got *Space
		var gotPins []types.UID
		j, got, gotPins = openTestJournal(t, dir, JournalOptions{})
		requireSameState(t, sp, got, nil, gotPins)
		// Continue mutating through the reopened journal's space so
		// each step also proves the WAL append point survived reopen.
		sp = got
		tb, _ = got.Lookup([]byte("k"))
	}
	j.Close()
}

// TestJournalSnapshotCompaction proves the WAL does not grow without
// bound: with a small cadence the journal folds itself into meta.snap
// and truncates, and recovery from snapshot+tail equals full replay.
func TestJournalSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	j, sp, _ := openTestJournal(t, dir, JournalOptions{SnapshotEvery: 16})
	tb := sp.Table([]byte("k"))
	for i := 0; i < 200; i++ {
		if err := tb.UpdateTagged("master", juid(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.SnapshotBytes == 0 {
		t.Fatal("no snapshot written despite cadence")
	}
	if st.OpsSinceSnapshot >= 16 {
		t.Fatalf("WAL not truncated: %d ops pending", st.OpsSinceSnapshot)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != st.WALBytes {
		t.Fatalf("wal size %v vs stats %d (%v)", fi, st.WALBytes, err)
	}
	j.Close()
	_, got, gotPins := openTestJournal(t, dir, JournalOptions{SnapshotEvery: 16})
	requireSameState(t, sp, got, nil, gotPins)
	if h, _ := mustLookup(t, got, "k").Head("master"); h != juid(199) {
		t.Fatalf("head after compacted recovery = %v", h)
	}
}

func mustLookup(t *testing.T, sp *Space, key string) *Table {
	t.Helper()
	tb, ok := sp.Lookup([]byte(key))
	if !ok {
		t.Fatalf("key %q lost", key)
	}
	return tb
}

// TestJournalTornTail truncates the WAL at every byte offset: recovery
// must never fail, and must land on exactly the state some prefix of
// the op sequence produced.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, sp, _ := openTestJournal(t, dir, JournalOptions{SnapshotEvery: -1})
	tb := sp.Table([]byte("k"))
	heads := map[types.UID]int{} // uid -> op index whose state it is
	const ops = 40
	for i := 0; i < ops; i++ {
		if err := tb.UpdateTagged("master", juid(i), nil); err != nil {
			t.Fatal(err)
		}
		heads[juid(i)] = i
	}
	j.Close()
	walPath := filepath.Join(dir, walName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(full)); cut += 7 {
		torn := t.TempDir()
		if err := os.WriteFile(filepath.Join(torn, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, got, _ := openTestJournal(t, torn, JournalOptions{SnapshotEvery: -1})
		if tb2, ok := got.Lookup([]byte("k")); ok {
			h, ok := tb2.Head("master")
			if !ok {
				t.Fatalf("cut@%d: branch vanished but key survived", cut)
			}
			if _, known := heads[h]; !known {
				t.Fatalf("cut@%d: head %v is no prefix state", cut, h)
			}
		} else if cut >= 16 { // at least one full frame present
			// A missing key is only legal while the first record is torn.
			frame := int64(8) + frameLen(t, full)
			if cut >= frame {
				t.Fatalf("cut@%d: key lost after first intact record", cut)
			}
		}
		// The truncated journal must keep accepting appends.
		tb2 := got.Table([]byte("k"))
		if err := tb2.UpdateTagged("post", juid(999), nil); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		_, again, _ := openTestJournal(t, torn, JournalOptions{SnapshotEvery: -1})
		if h, _ := mustLookup(t, again, "k").Head("post"); h != juid(999) {
			t.Fatalf("cut@%d: append after torn recovery lost", cut)
		}
	}
}

// frameLen returns the body length of the first WAL frame.
func frameLen(t *testing.T, wal []byte) int64 {
	t.Helper()
	if len(wal) < 8 {
		t.Fatal("wal shorter than a frame header")
	}
	return int64(uint32(wal[4]) | uint32(wal[5])<<8 | uint32(wal[6])<<16 | uint32(wal[7])<<24)
}

// TestJournalCompactionCrash kills the journal at every compaction
// hook — tmp snapshot fsynced, snapshot renamed, WAL truncated — and
// reopens the directory as left at that instant: the recovered state
// must equal the full pre-compaction state every time, whichever mix
// of old/new snapshot and full/empty WAL the crash left behind.
func TestJournalCompactionCrash(t *testing.T) {
	dir := t.TempDir()
	j, sp, _ := openTestJournal(t, dir, JournalOptions{SnapshotEvery: -1})
	tb := sp.Table([]byte("k"))
	for i := 0; i < 30; i++ {
		if err := tb.UpdateTagged("master", juid(i), nil); err != nil {
			t.Fatal(err)
		}
		if err := tb.UpdateTagged(fmt.Sprintf("b%d", i%5), juid(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Record(Op{Kind: OpPin, UID: juid(7)}); err != nil {
		t.Fatal(err)
	}

	var snaps []string
	var when []string
	j.crashHook = func(event string) {
		snaps = append(snaps, snapshotDir(t, dir))
		when = append(when, event)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	// Compact again with further ops in between: the second pass
	// crashes over an EXISTING snapshot, the rename-over case.
	if err := tb.UpdateTagged("master", juid(100), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.crashHook = nil
	if len(snaps) != 6 {
		t.Fatalf("expected 6 crash points, got %d (%v)", len(snaps), when)
	}
	for i, d := range snaps {
		_, got, gotPins := openTestJournal(t, d, JournalOptions{})
		wantHead := juid(29)
		if i >= 3 { // second compaction's crash points include the last op
			wantHead = juid(100)
		}
		if h, _ := mustLookup(t, got, "k").Head("master"); h != wantHead {
			t.Fatalf("%s[%d]: master = %v, want %v", when[i], i, h, wantHead)
		}
		if len(gotPins) != 1 || gotPins[0] != juid(7) {
			t.Fatalf("%s[%d]: pins = %v", when[i], i, gotPins)
		}
		for b := 0; b < 5; b++ {
			if _, ok := mustLookup(t, got, "k").Head(fmt.Sprintf("b%d", b)); !ok {
				t.Fatalf("%s[%d]: branch b%d lost", when[i], i, b)
			}
		}
	}
}

// TestJournalCompactionCrashUntagged covers the crash window between
// the snapshot rename and the WAL truncate for UB-table ops: replaying
// AddUntagged records already folded into the snapshot must not
// resurrect the bases they consumed.
func TestJournalCompactionCrashUntagged(t *testing.T) {
	dir := t.TempDir()
	j, sp, _ := openTestJournal(t, dir, JournalOptions{SnapshotEvery: -1})
	tb := sp.Table([]byte("k"))
	if err := tb.AddUntagged(juid(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddUntagged(juid(2), []types.UID{juid(1)}); err != nil {
		t.Fatal(err)
	}
	var renamed string
	j.crashHook = func(event string) {
		if event == "snap-renamed" {
			// New snapshot in place, WAL still holding both records.
			renamed = snapshotDir(t, dir)
		}
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if renamed == "" {
		t.Fatal("snap-renamed hook never fired")
	}
	_, got, _ := openTestJournal(t, renamed, JournalOptions{})
	heads := mustLookup(t, got, "k").Untagged()
	if len(heads) != 1 || heads[0] != juid(2) {
		t.Fatalf("replay over snapshot resurrected a consumed base: %v, want [%v]", heads, juid(2))
	}
}

// TestJournalBrokenSelfHeals: a journal poisoned by an unrollbackable
// append failure (partial frame stuck in the WAL) must recover on the
// next Record via snapshot+truncate — the shadow state kept tracking
// every mutation, so nothing is lost once the disk cooperates.
func TestJournalBrokenSelfHeals(t *testing.T) {
	dir := t.TempDir()
	j, sp, _ := openTestJournal(t, dir, JournalOptions{SnapshotEvery: -1})
	tb := sp.Table([]byte("k"))
	if err := tb.UpdateTagged("master", juid(1), nil); err != nil {
		t.Fatal(err)
	}
	// Simulate the poisoned state: a partial frame in the file past the
	// last intact record, with the rollback having failed.
	j.mu.Lock()
	if _, err := j.f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		j.mu.Unlock()
		t.Fatal(err)
	}
	j.broken = errors.New("simulated append failure")
	j.mu.Unlock()
	// The next mutation self-heals: its op (and the backlog) land in a
	// fresh snapshot, the damaged WAL is truncated.
	if err := tb.UpdateTagged("master", juid(2), nil); err != nil {
		t.Fatalf("record after self-heal: %v", err)
	}
	st := j.Stats()
	if st.SnapshotBytes == 0 || st.WALBytes != 0 {
		t.Fatalf("self-heal did not compact: %+v", st)
	}
	if err := tb.UpdateTagged("master", juid(3), nil); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, got, _ := openTestJournal(t, dir, JournalOptions{})
	if h, _ := mustLookup(t, got, "k").Head("master"); h != juid(3) {
		t.Fatalf("head after self-heal recovery = %v, want %v", h, juid(3))
	}
}

// TestJournalCorruptSnapshot proves a rotted snapshot surfaces as
// ErrJournalCorrupt instead of silently recovering a wrong state.
func TestJournalCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, sp, _ := openTestJournal(t, dir, JournalOptions{})
	if err := sp.Table([]byte("k")).UpdateTagged("master", juid(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := filepath.Join(dir, snapName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir, JournalOptions{}); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("corrupt snapshot opened: %v", err)
	}
}

// snapshotDir copies every file of dir into a fresh temp dir,
// mirroring what a kill at this instant leaves on disk.
func snapshotDir(t *testing.T, dir string) string {
	t.Helper()
	to := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return to
}
