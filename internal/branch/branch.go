// Package branch implements ForkBase's branch management (paper §4.5).
// For each data key a branch table holds the heads of all branches: the
// TB-table maps user-visible tags (branch names) to head uids, and the
// UB-table is the set of untagged heads created by fork-on-conflict
// Puts. The UB-table is exactly the set of leaves of the object
// derivation graph that no tagged branch has claimed.
package branch

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"forkbase/internal/types"
)

// DefaultBranch is the branch used when callers do not name one; it
// makes the data model degrade to a plain key-value store (§3.1).
const DefaultBranch = "master"

// Errors reported by branch-table operations.
var (
	ErrBranchNotFound = errors.New("branch: branch not found")
	ErrBranchExists   = errors.New("branch: branch already exists")
	// ErrGuardFailed means a guarded Put observed a different head
	// than the caller expected (§4.5.1): someone else updated the
	// branch in between.
	ErrGuardFailed = errors.New("branch: guard uid does not match branch head")
)

// Table is the branch table for a single key. It is safe for concurrent
// use; tagged-branch updates are serialized, mirroring the servlet's
// serialization of concurrent Puts (§4.5.1).
//
// When the table belongs to a Space with an attached journal Sink,
// every successful mutation is recorded (still under the table's
// mutex, so the journal order equals the apply order). The in-memory
// mutation stands even when recording fails; the returned error then
// reports lost durability, not a lost update.
type Table struct {
	mu       sync.RWMutex
	key      string // owning key, for journal records
	sink     Sink   // nil = no journaling
	tagged   map[string]types.UID
	untagged map[types.UID]bool
}

// NewTable returns an empty branch table.
func NewTable() *Table {
	return &Table{
		tagged:   make(map[string]types.UID),
		untagged: make(map[types.UID]bool),
	}
}

// record journals one applied mutation; callers hold t.mu.
func (t *Table) record(op Op) error {
	if t.sink == nil {
		return nil
	}
	op.Key = []byte(t.key)
	return t.sink.Record(op)
}

// Head returns the head uid of a tagged branch.
func (t *Table) Head(branch string) (types.UID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	uid, ok := t.tagged[branch]
	return uid, ok
}

// UpdateTagged moves a tagged branch's head to uid, creating the branch
// if absent. If guard is non-nil the update succeeds only while the
// current head equals *guard (guarded Put, §4.5.1): a guard against a
// branch that does not exist fails with ErrBranchNotFound — the branch
// is gone, not merely moved — while a head mismatch on an existing
// branch is the lost race, ErrGuardFailed.
func (t *Table) UpdateTagged(branch string, uid types.UID, guard *types.UID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if guard != nil {
		cur, ok := t.tagged[branch]
		if !ok {
			return fmt.Errorf("%w: %q", ErrBranchNotFound, branch)
		}
		if cur != *guard {
			return ErrGuardFailed
		}
	}
	t.tagged[branch] = uid
	return t.record(Op{Kind: OpUpdateTagged, Branch: branch, UID: uid})
}

// Fork creates newBranch pointing at uid. It fails if newBranch exists.
func (t *Table) Fork(newBranch string, uid types.UID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.tagged[newBranch]; ok {
		return fmt.Errorf("%w: %q", ErrBranchExists, newBranch)
	}
	t.tagged[newBranch] = uid
	return t.record(Op{Kind: OpFork, Branch: newBranch, UID: uid})
}

// Rename renames a tagged branch.
func (t *Table) Rename(branch, newName string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	uid, ok := t.tagged[branch]
	if !ok {
		return fmt.Errorf("%w: %q", ErrBranchNotFound, branch)
	}
	if _, ok := t.tagged[newName]; ok {
		return fmt.Errorf("%w: %q", ErrBranchExists, newName)
	}
	delete(t.tagged, branch)
	t.tagged[newName] = uid
	return t.record(Op{Kind: OpRename, Branch: branch, Name: newName, UID: uid})
}

// Remove deletes a tagged branch. The underlying versions remain in the
// store; only the name is dropped.
func (t *Table) Remove(branch string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.tagged[branch]; !ok {
		return fmt.Errorf("%w: %q", ErrBranchNotFound, branch)
	}
	delete(t.tagged, branch)
	return t.record(Op{Kind: OpRemove, Branch: branch})
}

// Tagged returns all tagged branch names and their heads, sorted by
// name (M9).
func (t *Table) Tagged() []TaggedBranch {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]TaggedBranch, 0, len(t.tagged))
	for name, uid := range t.tagged {
		out = append(out, TaggedBranch{Name: name, Head: uid})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TaggedBranch pairs a branch name with its head uid.
type TaggedBranch struct {
	Name string
	Head types.UID
}

// AddUntagged records a new untagged head deriving from bases: the new
// uid enters the UB-table and any base present leaves it (§4.5.1). When
// a base is not in the table it was already derived by someone else —
// that concurrent derivation is precisely what creates a conflict
// (Figure 3b). Re-adding an existing uid (an equivalent operation
// happened before) is ignored.
func (t *Table) AddUntagged(uid types.UID, bases []types.UID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.untagged[uid] {
		return nil
	}
	t.untagged[uid] = true
	for _, b := range bases {
		delete(t.untagged, b)
	}
	return t.record(Op{Kind: OpAddUntagged, UID: uid, Bases: bases})
}

// ReplaceUntagged atomically removes the merged heads and inserts the
// merge result (M7).
func (t *Table) ReplaceUntagged(result types.UID, merged []types.UID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, u := range merged {
		delete(t.untagged, u)
	}
	t.untagged[result] = true
	return t.record(Op{Kind: OpReplaceUntagged, UID: result, Bases: merged})
}

// Untagged returns all untagged heads in unspecified order (M10). A
// single element means the key has no conflicts.
func (t *Table) Untagged() []types.UID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]types.UID, 0, len(t.untagged))
	for uid := range t.untagged {
		out = append(out, uid)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].String() < out[j].String()
	})
	return out
}

// Space tracks the branch tables of all keys managed by one servlet.
// A Space restored from a Journal carries that journal as its sink;
// every table it hands out records its mutations there.
type Space struct {
	mu     sync.RWMutex
	sink   Sink // attached to every table this space creates
	tables map[string]*Table
}

// NewSpace returns an empty key space.
func NewSpace() *Space {
	return &Space{tables: make(map[string]*Table)}
}

// Table returns the branch table for key, creating it if needed.
func (s *Space) Table(key []byte) *Table {
	k := string(key)
	s.mu.RLock()
	t, ok := s.tables[k]
	s.mu.RUnlock()
	if ok {
		return t
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[k]; ok {
		return t
	}
	t = NewTable()
	t.key, t.sink = k, s.sink
	s.tables[k] = t
	return t
}

// Lookup returns the branch table for key without creating one.
func (s *Space) Lookup(key []byte) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[string(key)]
	return t, ok
}

// Keys returns all keys that have a branch table, sorted (M8).
func (s *Space) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for k := range s.tables {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
