// Metadata journal: the durability layer under the branch tables.
//
// The branch tables are the authoritative map from names to version
// heads (§4.5), yet they are pure in-memory structures — without a
// journal a reopened persistent store forgets every branch, untagged
// head and pin, and the first GC after reopen would see zero roots and
// reclaim all live data. The journal closes that hole: every mutation
// of a Table (and every pin/unpin the engine performs) is recorded as
// one crc32-framed record in an append-only WAL, and the state is
// periodically folded into a full snapshot so the WAL never grows
// unbounded.
//
// On-disk layout (inside the store directory, beside the chunk log):
//
//	meta.wal   frames of: u32 crc32(body) | u32 len(body) | body
//	meta.snap  "FBM1" | u32 len(body) | u32 crc32(body) | body
//
// Recovery loads the snapshot (if any) and replays the WAL over it,
// stopping quietly at a torn tail — exactly the chunk log's recovery
// contract. Compaction writes the full state to meta.snap.tmp, fsyncs,
// atomically renames it over meta.snap, and only then truncates the
// WAL; a crash between the rename and the truncate leaves a WAL whose
// records are already folded into the snapshot, which is harmless
// because every record is replay-idempotent: ops carry resulting uids,
// never conditions, so re-applying an ordered prefix over a state that
// already contains it converges to the same state.
package branch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"forkbase/internal/obs"
	"forkbase/internal/types"
)

// OpKind identifies a journaled branch-table or pin mutation.
type OpKind uint8

// The journaled operations. Each records the *result* of a mutation
// (the uid a branch ended up at), never its precondition, so replay
// needs no guard evaluation and is idempotent.
const (
	// OpUpdateTagged sets tagged[Branch] = UID (M3, M5, M6).
	OpUpdateTagged OpKind = iota + 1
	// OpFork creates tagged[Branch] = UID (M11, M12).
	OpFork
	// OpRename moves tagged[Branch] (head UID) to tagged[Name] (M13).
	OpRename
	// OpRemove deletes tagged[Branch] (M14).
	OpRemove
	// OpAddUntagged adds UID to the UB-table, consuming Bases (M4).
	OpAddUntagged
	// OpReplaceUntagged replaces Bases with UID in the UB-table (M7).
	OpReplaceUntagged
	// OpPin adds UID to the engine's pin set.
	OpPin
	// OpUnpin removes UID from the engine's pin set.
	OpUnpin
)

// Op is one journaled metadata mutation.
type Op struct {
	Kind   OpKind
	Key    []byte      // owning key; empty for pin ops
	Branch string      // branch operated on (rename source)
	Name   string      // rename target
	UID    types.UID   // resulting head / pinned uid
	Bases  []types.UID // consumed untagged heads
}

// Sink receives every branch-table and pin mutation, in the order the
// tables applied them. A nil Sink on a Table/Space disables journaling
// (the in-memory deployment). Implementations must be safe for
// concurrent use; the Journal is the production Sink.
type Sink interface {
	Record(op Op) error
}

// journal file names, living beside the chunk log's segments.
const (
	walName     = "meta.wal"
	snapName    = "meta.snap"
	snapTmpName = "meta.snap.tmp"
)

var snapMagic = [4]byte{'F', 'B', 'M', '1'}

// DefaultSnapshotEvery is the number of journaled ops between
// snapshot+truncate compactions when JournalOptions.SnapshotEvery is 0.
const DefaultSnapshotEvery = 4096

// ErrJournalCorrupt reports a snapshot that fails its integrity check.
// (A torn WAL tail is NOT corruption — it is the expected residue of a
// crash and is silently truncated at recovery.)
var ErrJournalCorrupt = errors.New("branch: metadata snapshot corrupt")

// JournalOptions configures OpenJournal.
type JournalOptions struct {
	// Sync fsyncs the WAL after every record, making each metadata
	// mutation power-loss durable. Default false: records are written
	// straight to the file (never buffered in-process), so an unclean
	// process stop loses nothing, only an OS crash can.
	Sync bool
	// SnapshotEvery is the number of records between snapshot+truncate
	// compactions. 0 means DefaultSnapshotEvery; negative disables
	// compaction (the WAL grows until Compact is called explicitly).
	SnapshotEvery int
	// Barrier, when set, runs before each record is appended. The
	// store layer points it at the chunk log's Flush so the journal
	// obeys write-ahead ordering relative to the data it names: a head
	// recorded in the WAL always resolves to chunks at least as
	// durable as the record itself.
	Barrier func() error
	// FsyncHist, when set, receives the duration of every per-record
	// fsync (Sync mode only) — the journal's contribution to write
	// latency, exported through the owning DB's metric registry.
	FsyncHist *obs.Histogram
}

// Journal is the file-backed Sink: an append-only WAL of branch/pin
// mutations with periodic snapshot compaction. It keeps a shadow copy
// of the full metadata state so compaction never has to lock the live
// branch tables (Record is called while a Table's mutex is held).
type Journal struct {
	mu    sync.Mutex
	dir   string
	f     *os.File
	opts  JournalOptions
	every int

	state     journalState
	walBytes  int64
	snapBytes int64
	sinceSnap int
	// broken is set when a failed append could not be rolled back: the
	// WAL then ends in a partial frame that would silently cut replay
	// short, so no further record may pretend to be durable.
	broken error

	// crashHook, when set (crash-consistency tests only), fires at
	// named points of a compaction — "snap-written" (tmp fsynced),
	// "snap-renamed" (swap done), "truncated" (WAL reset) — so the
	// harness can snapshot the directory exactly as a kill at that
	// moment would leave it. Called with j.mu held.
	crashHook func(event string)
}

// journalState is the journal's shadow of the metadata: what a replay
// of snapshot+WAL reconstructs.
type journalState struct {
	keys map[string]*tableState
	pins map[types.UID]struct{}
}

type tableState struct {
	tagged   map[string]types.UID
	untagged map[types.UID]bool
}

func newJournalState() journalState {
	return journalState{
		keys: make(map[string]*tableState),
		pins: make(map[types.UID]struct{}),
	}
}

func (st *journalState) table(key string) *tableState {
	ts, ok := st.keys[key]
	if !ok {
		ts = &tableState{
			tagged:   make(map[string]types.UID),
			untagged: make(map[types.UID]bool),
		}
		st.keys[key] = ts
	}
	return ts
}

// apply folds one op into the state. Replay-idempotent: applying an
// ordered op sequence over a state that already includes a prefix of
// it converges to the same final state.
func (st *journalState) apply(op Op) {
	switch op.Kind {
	case OpPin:
		st.pins[op.UID] = struct{}{}
		return
	case OpUnpin:
		delete(st.pins, op.UID)
		return
	}
	ts := st.table(string(op.Key))
	switch op.Kind {
	case OpUpdateTagged, OpFork:
		ts.tagged[op.Branch] = op.UID
	case OpRename:
		delete(ts.tagged, op.Branch)
		ts.tagged[op.Name] = op.UID
	case OpRemove:
		delete(ts.tagged, op.Branch)
	case OpAddUntagged:
		// Unconditional, unlike Table.AddUntagged's duplicate skip: the
		// table never journals a skipped duplicate, so during replay a
		// pre-existing op.UID means the op itself is already folded in
		// (snapshot written, WAL not yet truncated) — its bases must
		// still be deleted, or a crash in that window would resurrect
		// consumed heads.
		ts.untagged[op.UID] = true
		for _, b := range op.Bases {
			delete(ts.untagged, b)
		}
	case OpReplaceUntagged:
		for _, b := range op.Bases {
			delete(ts.untagged, b)
		}
		ts.untagged[op.UID] = true
	}
}

// OpenJournal opens (creating if necessary) the metadata journal in
// dir, recovering its state: snapshot first, then every intact WAL
// record over it. A torn WAL tail is truncated away; a stale
// compaction temp file is removed.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("branch: %w", err)
	}
	j := &Journal{
		dir:   dir,
		opts:  opts,
		every: opts.SnapshotEvery,
		state: newJournalState(),
	}
	if j.every == 0 {
		j.every = DefaultSnapshotEvery
	}
	// A crash mid-compaction can leave a half-written temp snapshot;
	// the rename never happened, so it holds nothing the WAL doesn't.
	os.Remove(filepath.Join(dir, snapTmpName))
	if err := j.loadSnapshot(); err != nil {
		return nil, err
	}
	valid, n, err := j.replayWAL()
	if err != nil {
		return nil, err
	}
	j.sinceSnap = n
	// Drop a torn tail so the append point is clean, mirroring the
	// chunk log's recovery.
	walPath := filepath.Join(dir, walName)
	if fi, err := os.Stat(walPath); err == nil && fi.Size() > valid {
		if err := os.Truncate(walPath, valid); err != nil {
			return nil, fmt.Errorf("branch: %w", err)
		}
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("branch: %w", err)
	}
	j.f = f
	j.walBytes = valid
	return j, nil
}

// Restore materializes the recovered state as a live Space (with this
// journal attached as its sink, so every further mutation is recorded)
// plus the recovered pin set, sorted.
func (j *Journal) Restore() (*Space, []types.UID) {
	j.mu.Lock()
	defer j.mu.Unlock()
	sp := NewSpace()
	sp.sink = j
	for k, ts := range j.state.keys {
		t := NewTable()
		t.key, t.sink = k, j
		for name, uid := range ts.tagged {
			t.tagged[name] = uid
		}
		for uid := range ts.untagged {
			t.untagged[uid] = true
		}
		sp.tables[k] = t
	}
	pins := make([]types.UID, 0, len(j.state.pins))
	for uid := range j.state.pins {
		pins = append(pins, uid)
	}
	sort.Slice(pins, func(a, b int) bool {
		return pins[a].String() < pins[b].String()
	})
	return sp, pins
}

// Record implements Sink: the op is folded into the shadow state and
// appended to the WAL (after the Barrier, preserving write-ahead
// ordering against the chunk log). Every SnapshotEvery records the
// journal compacts itself. The caller's in-memory mutation stands even
// when the append fails — the failure mode equals a crash just before
// the op, which recovery already tolerates — so the error is purely a
// durability report.
func (j *Journal) Record(op Op) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state.apply(op)
	if j.opts.Barrier != nil {
		if err := j.opts.Barrier(); err != nil {
			return fmt.Errorf("branch: journal barrier: %w", err)
		}
	}
	if j.broken != nil {
		// Self-heal: the shadow state has kept tracking every mutation
		// (including this one, applied above), so a successful snapshot
		// + truncate both captures the backlog and removes the partial
		// frame that poisoned the WAL. compactLocked clears broken.
		if cerr := j.compactLocked(); cerr != nil {
			return fmt.Errorf("branch: journal unusable after append failure: %w", j.broken)
		}
		return nil // this op is durable via the fresh snapshot
	}
	body := encodeOp(op)
	frame := make([]byte, 8, 8+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(body)))
	frame = append(frame, body...)
	if _, err := j.f.Write(frame); err != nil {
		// Roll the file back to the last intact frame: a partial frame
		// left in place would make replay stop there, silently cutting
		// off every record appended after the disk recovered. If even
		// the rollback fails, poison the journal — pretending later
		// appends are durable would be a lie.
		if terr := j.f.Truncate(j.walBytes); terr != nil {
			j.broken = fmt.Errorf("append: %v, rollback: %w", err, terr)
		}
		return fmt.Errorf("branch: journal append: %w", err)
	}
	// The frame is in the file whatever Sync says below; account for it
	// now, or a later rollback would truncate at a stale offset and
	// tear an already-written record.
	j.walBytes += int64(len(frame))
	j.sinceSnap++
	if j.opts.Sync {
		start := time.Now()
		//forkvet:allow lockhold — fsync under j.mu is the point: journal order is apply order, so the barrier must complete before the next Record (PR 4)
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("branch: journal sync: %w", err)
		}
		if j.opts.FsyncHist != nil {
			j.opts.FsyncHist.ObserveSince(start)
		}
	}
	if j.every > 0 && j.sinceSnap >= j.every {
		return j.compactLocked()
	}
	return nil
}

// Compact forces a snapshot+truncate compaction now, regardless of the
// SnapshotEvery cadence.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

// compactLocked writes the full state as a snapshot, atomically swaps
// it in, and truncates the WAL. Durability order: tmp written and
// fsynced BEFORE the rename, rename BEFORE the truncate — a crash at
// any point leaves either the old snapshot plus the full WAL, or the
// new snapshot plus a WAL whose records are replay-idempotent over it.
func (j *Journal) compactLocked() error {
	body := encodeSnapshot(&j.state)
	tmp := filepath.Join(j.dir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("branch: %w", err)
	}
	hdr := make([]byte, 12)
	copy(hdr[0:4], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(body))
	if _, err := f.Write(hdr); err == nil {
		_, err = f.Write(body)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("branch: snapshot: %w", err)
	}
	j.hook("snap-written")
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName)); err != nil {
		return fmt.Errorf("branch: snapshot swap: %w", err)
	}
	syncDir(j.dir)
	j.hook("snap-renamed")
	// The WAL's records are now folded into the snapshot; reset it.
	// The file is opened O_APPEND, so the next write lands at the new
	// end regardless of the handle's offset.
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("branch: wal truncate: %w", err)
	}
	j.walBytes = 0
	j.sinceSnap = 0
	j.snapBytes = int64(12 + len(body))
	// The snapshot holds the full shadow state and the WAL is empty:
	// whatever partial frame poisoned the log is gone.
	j.broken = nil
	j.hook("truncated")
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable; best
// effort, since not every platform supports it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

func (j *Journal) hook(event string) {
	if j.crashHook != nil {
		j.crashHook(event)
	}
}

// Close closes the WAL handle. The journal has no in-process buffering,
// so nothing is lost by closing without Compact.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("branch: %w", err)
	}
	return nil
}

// JournalStats reports the journal's footprint and recovered contents.
type JournalStats struct {
	WALBytes         int64 // bytes of WAL not yet folded into the snapshot
	SnapshotBytes    int64 // bytes of the current snapshot file
	OpsSinceSnapshot int   // records a reopen would replay
	Keys             int   // keys with a recovered branch table
	Tagged           int   // tagged branches across all keys
	Untagged         int   // untagged heads across all keys
	Pins             int   // pinned uids
}

func (s JournalStats) String() string {
	return fmt.Sprintf("journal: wal=%dB snapshot=%dB replay=%d ops, %d keys, %d tagged, %d untagged, %d pins",
		s.WALBytes, s.SnapshotBytes, s.OpsSinceSnapshot, s.Keys, s.Tagged, s.Untagged, s.Pins)
}

// Stats returns the journal's current footprint.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JournalStats{
		WALBytes:         j.walBytes,
		SnapshotBytes:    j.snapBytes,
		OpsSinceSnapshot: j.sinceSnap,
		Keys:             len(j.state.keys),
		Pins:             len(j.state.pins),
	}
	for _, ts := range j.state.keys {
		s.Tagged += len(ts.tagged)
		s.Untagged += len(ts.untagged)
	}
	return s
}

// --- codecs ----------------------------------------------------------

// encodeOp serializes one op:
//
//	u8 kind | u32 klen | key | u32 blen | branch | u32 nlen | name |
//	uid (32B) | u32 nbases | nbases × 32B
func encodeOp(op Op) []byte {
	n := 1 + 4 + len(op.Key) + 4 + len(op.Branch) + 4 + len(op.Name) +
		len(op.UID) + 4 + len(op.Bases)*len(op.UID)
	b := make([]byte, 0, n)
	b = append(b, byte(op.Kind))
	b = appendBytes(b, op.Key)
	b = appendBytes(b, []byte(op.Branch))
	b = appendBytes(b, []byte(op.Name))
	b = append(b, op.UID[:]...)
	b = appendU32(b, uint32(len(op.Bases)))
	for _, u := range op.Bases {
		b = append(b, u[:]...)
	}
	return b
}

// decodeOp parses an op body; an undecodable body reports false, which
// replay treats like a torn record.
func decodeOp(b []byte) (Op, bool) {
	var op Op
	if len(b) < 1 {
		return op, false
	}
	op.Kind = OpKind(b[0])
	if op.Kind < OpUpdateTagged || op.Kind > OpUnpin {
		return op, false
	}
	b = b[1:]
	key, b, ok := takeBytes(b)
	if !ok {
		return op, false
	}
	branchName, b, ok := takeBytes(b)
	if !ok {
		return op, false
	}
	name, b, ok := takeBytes(b)
	if !ok {
		return op, false
	}
	if len(b) < len(op.UID)+4 {
		return op, false
	}
	copy(op.UID[:], b)
	b = b[len(op.UID):]
	nbases := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if len(b) != int(nbases)*len(op.UID) {
		return op, false
	}
	op.Bases = make([]types.UID, nbases)
	for i := range op.Bases {
		copy(op.Bases[i][:], b[i*len(op.UID):])
	}
	if len(op.Bases) == 0 {
		op.Bases = nil
	}
	if len(key) > 0 {
		op.Key = key
	}
	op.Branch, op.Name = string(branchName), string(name)
	return op, true
}

// encodeSnapshot serializes the full state, keys and names sorted so
// identical states produce identical bytes:
//
//	u32 nkeys | per key: u32 klen | key
//	                     u32 ntagged   | per branch: u32 nlen | name | uid
//	                     u32 nuntagged | per head: uid
//	u32 npins | per pin: uid
func encodeSnapshot(st *journalState) []byte {
	var b []byte
	keys := make([]string, 0, len(st.keys))
	for k := range st.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = appendU32(b, uint32(len(keys)))
	for _, k := range keys {
		ts := st.keys[k]
		b = appendBytes(b, []byte(k))
		names := make([]string, 0, len(ts.tagged))
		for n := range ts.tagged {
			names = append(names, n)
		}
		sort.Strings(names)
		b = appendU32(b, uint32(len(names)))
		for _, n := range names {
			uid := ts.tagged[n]
			b = appendBytes(b, []byte(n))
			b = append(b, uid[:]...)
		}
		heads := make([]types.UID, 0, len(ts.untagged))
		for u := range ts.untagged {
			heads = append(heads, u)
		}
		sort.Slice(heads, func(i, j int) bool {
			return heads[i].String() < heads[j].String()
		})
		b = appendU32(b, uint32(len(heads)))
		for _, u := range heads {
			b = append(b, u[:]...)
		}
	}
	pins := make([]types.UID, 0, len(st.pins))
	for u := range st.pins {
		pins = append(pins, u)
	}
	sort.Slice(pins, func(i, j int) bool {
		return pins[i].String() < pins[j].String()
	})
	b = appendU32(b, uint32(len(pins)))
	for _, u := range pins {
		b = append(b, u[:]...)
	}
	return b
}

func decodeSnapshot(b []byte, st *journalState) error {
	bad := func() error { return fmt.Errorf("%w: truncated body", ErrJournalCorrupt) }
	nkeys, b, ok := takeU32(b)
	if !ok {
		return bad()
	}
	var uid types.UID
	for i := 0; i < int(nkeys); i++ {
		key, rest, ok := takeBytes(b)
		if !ok {
			return bad()
		}
		b = rest
		ts := st.table(string(key))
		ntagged, rest, ok := takeU32(b)
		if !ok {
			return bad()
		}
		b = rest
		for t := 0; t < int(ntagged); t++ {
			name, rest, ok := takeBytes(b)
			if !ok || len(rest) < len(uid) {
				return bad()
			}
			copy(uid[:], rest)
			ts.tagged[string(name)] = uid
			b = rest[len(uid):]
		}
		nuntagged, rest, ok := takeU32(b)
		if !ok {
			return bad()
		}
		b = rest
		for u := 0; u < int(nuntagged); u++ {
			if len(b) < len(uid) {
				return bad()
			}
			copy(uid[:], b)
			ts.untagged[uid] = true
			b = b[len(uid):]
		}
	}
	npins, b, ok := takeU32(b)
	if !ok {
		return bad()
	}
	for i := 0; i < int(npins); i++ {
		if len(b) < len(uid) {
			return bad()
		}
		copy(uid[:], b)
		st.pins[uid] = struct{}{}
		b = b[len(uid):]
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrJournalCorrupt, len(b))
	}
	return nil
}

// loadSnapshot reads meta.snap into the state, if present. A snapshot
// that fails its crc is reported as ErrJournalCorrupt — unlike a torn
// WAL tail it can only mean disk rot, since the swap is atomic.
func (j *Journal) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(j.dir, snapName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("branch: %w", err)
	}
	if len(data) < 12 || [4]byte(data[0:4]) != snapMagic {
		return fmt.Errorf("%w: bad header", ErrJournalCorrupt)
	}
	n := binary.LittleEndian.Uint32(data[4:8])
	crc := binary.LittleEndian.Uint32(data[8:12])
	body := data[12:]
	if uint32(len(body)) != n || crc32.ChecksumIEEE(body) != crc {
		return fmt.Errorf("%w: checksum mismatch", ErrJournalCorrupt)
	}
	if err := decodeSnapshot(body, &j.state); err != nil {
		return err
	}
	j.snapBytes = int64(len(data))
	return nil
}

// replayWAL folds every intact WAL record into the state, returning
// the offset just past the last intact record and the record count.
func (j *Journal) replayWAL() (valid int64, n int, err error) {
	f, err := os.Open(filepath.Join(j.dir, walName))
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("branch: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("branch: %w", err)
	}
	size := fi.Size()
	r := &countingReader{r: f}
	hdr := make([]byte, 8)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return valid, n, nil
		}
		crc := binary.LittleEndian.Uint32(hdr[0:4])
		bl := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(bl) > size-r.n {
			// The length field is not covered by the crc; a corrupted
			// one must not drive the body allocation past what the
			// file can even hold. Treat it like a torn tail.
			return valid, n, nil
		}
		body := make([]byte, bl)
		if _, err := io.ReadFull(r, body); err != nil {
			return valid, n, nil
		}
		if crc32.ChecksumIEEE(body) != crc {
			return valid, n, nil
		}
		op, ok := decodeOp(body)
		if !ok {
			return valid, n, nil
		}
		j.state.apply(op)
		valid = r.n
		n++
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// --- byte helpers ----------------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], v)
	return append(b, u[:]...)
}

func takeU32(b []byte) (uint32, []byte, bool) {
	if len(b) < 4 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint32(b), b[4:], true
}

func appendBytes(b, s []byte) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func takeBytes(b []byte) ([]byte, []byte, bool) {
	n, rest, ok := takeU32(b)
	if !ok || len(rest) < int(n) {
		return nil, nil, false
	}
	return rest[:n], rest[n:], true
}
