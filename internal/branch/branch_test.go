package branch

import (
	"errors"
	"sync"
	"testing"

	"forkbase/internal/types"
)

func uid(b byte) types.UID {
	var u types.UID
	u[0] = b
	return u
}

func TestTaggedLifecycle(t *testing.T) {
	tb := NewTable()
	if _, ok := tb.Head("master"); ok {
		t.Fatal("head on empty table")
	}
	if err := tb.UpdateTagged("master", uid(1), nil); err != nil {
		t.Fatal(err)
	}
	if h, ok := tb.Head("master"); !ok || h != uid(1) {
		t.Fatal("head mismatch")
	}
	if err := tb.Fork("dev", uid(1)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Fork("dev", uid(2)); !errors.Is(err, ErrBranchExists) {
		t.Fatalf("duplicate fork: %v", err)
	}
	if err := tb.Rename("dev", "feature"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Head("dev"); ok {
		t.Fatal("renamed branch still resolvable")
	}
	if err := tb.Rename("feature", "master"); !errors.Is(err, ErrBranchExists) {
		t.Fatalf("rename onto existing: %v", err)
	}
	if err := tb.Remove("feature"); err != nil {
		t.Fatal(err)
	}
	if err := tb.Remove("feature"); !errors.Is(err, ErrBranchNotFound) {
		t.Fatalf("double remove: %v", err)
	}
	got := tb.Tagged()
	if len(got) != 1 || got[0].Name != "master" {
		t.Fatalf("tagged list: %v", got)
	}
}

func TestGuardedUpdate(t *testing.T) {
	tb := NewTable()
	tb.UpdateTagged("master", uid(1), nil)
	g := uid(1)
	if err := tb.UpdateTagged("master", uid(2), &g); err != nil {
		t.Fatalf("matching guard rejected: %v", err)
	}
	if err := tb.UpdateTagged("master", uid(3), &g); !errors.Is(err, ErrGuardFailed) {
		t.Fatalf("stale guard accepted: %v", err)
	}
	if h, _ := tb.Head("master"); h != uid(2) {
		t.Fatal("failed guard modified the head")
	}
	// A guard against a branch that does not exist is not a lost race:
	// the caller must be able to tell "branch gone" from "head moved".
	if err := tb.UpdateTagged("ghost", uid(4), &g); !errors.Is(err, ErrBranchNotFound) {
		t.Fatalf("guard on missing branch: got %v, want ErrBranchNotFound", err)
	}
	if errors.Is(tb.UpdateTagged("ghost", uid(4), &g), ErrGuardFailed) {
		t.Fatal("missing branch misreported as guard failure")
	}
	if _, ok := tb.Head("ghost"); ok {
		t.Fatal("failed guard created the branch")
	}
}

func TestUntaggedConflictSemantics(t *testing.T) {
	tb := NewTable()
	// v1 is the initial head.
	tb.AddUntagged(uid(1), nil)
	if got := tb.Untagged(); len(got) != 1 {
		t.Fatalf("heads: %d", len(got))
	}
	// A linear derivation replaces its base.
	tb.AddUntagged(uid(2), []types.UID{uid(1)})
	if got := tb.Untagged(); len(got) != 1 || got[0] != uid(2) {
		t.Fatalf("linear derivation: %v", got)
	}
	// Concurrent derivation from the already-consumed base: conflict,
	// two heads (Figure 3b).
	tb.AddUntagged(uid(3), []types.UID{uid(1)})
	if got := tb.Untagged(); len(got) != 2 {
		t.Fatalf("conflict should leave 2 heads, got %d", len(got))
	}
	// Re-adding an existing uid is ignored.
	tb.AddUntagged(uid(3), []types.UID{uid(2)})
	if got := tb.Untagged(); len(got) != 2 {
		t.Fatalf("duplicate add changed heads: %d", len(got))
	}
	// Merge replaces both with the result.
	tb.ReplaceUntagged(uid(9), []types.UID{uid(2), uid(3)})
	if got := tb.Untagged(); len(got) != 1 || got[0] != uid(9) {
		t.Fatalf("merge result: %v", got)
	}
}

func TestSpace(t *testing.T) {
	s := NewSpace()
	if _, ok := s.Lookup([]byte("k")); ok {
		t.Fatal("lookup on empty space")
	}
	t1 := s.Table([]byte("k"))
	t2 := s.Table([]byte("k"))
	if t1 != t2 {
		t.Fatal("Table not idempotent")
	}
	s.Table([]byte("a"))
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "k" {
		t.Fatalf("keys: %v", keys)
	}
}

func TestSpaceConcurrent(t *testing.T) {
	s := NewSpace()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tb := s.Table([]byte{byte(i % 7)})
				tb.UpdateTagged("master", uid(byte(g)), nil)
				tb.Head("master")
			}
		}(g)
	}
	wg.Wait()
	if len(s.Keys()) != 7 {
		t.Fatalf("keys: %v", s.Keys())
	}
}
