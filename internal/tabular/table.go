// Package tabular implements the collaborative-analytics application of
// paper §5.3: relational datasets stored on ForkBase in a row-oriented
// layout (records as Tuples in a Map keyed by primary key) or a
// column-oriented layout (column values as Lists referenced from a Map
// keyed by column name), plus an OrpheusDB-style baseline that
// materializes checkouts from record-version vectors.
package tabular

import (
	"context"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"forkbase"
	"forkbase/internal/postree"
	"forkbase/internal/workload"
)

// Layout selects the physical layout of a ForkBase-backed table.
type Layout int

const (
	// RowLayout stores each record as a Tuple in a Map keyed by
	// primary key: efficient point updates.
	RowLayout Layout = iota
	// ColLayout stores each column as a List referenced from a Map
	// keyed by column name: efficient analytical scans (Figure 17b).
	ColLayout
)

func (l Layout) String() string {
	if l == ColLayout {
		return "ForkBase-COL"
	}
	return "ForkBase-ROW"
}

// Schema fixes the columns of the synthetic dataset of §6.4: a 12-byte
// primary key, two integer fields and two textual fields.
var Schema = []string{"pk", "int1", "int2", "text1", "text2"}

func encInt(v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func decInt(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// encodeRecord serializes a record as a Tuple payload.
func encodeRecord(r workload.Record) []byte {
	return forkbase.EncodeTuple(forkbase.Tuple{
		[]byte(r.PK), encInt(r.Int1), encInt(r.Int2), []byte(r.Text1), []byte(r.Text2),
	})
}

func decodeRecord(data []byte) (workload.Record, error) {
	t, err := forkbase.DecodeTuple(data)
	if err != nil {
		return workload.Record{}, err
	}
	if len(t) != len(Schema) {
		return workload.Record{}, fmt.Errorf("tabular: record has %d fields", len(t))
	}
	return workload.Record{
		PK:    string(t[0]),
		Int1:  decInt(t[1]),
		Int2:  decInt(t[2]),
		Text1: string(t[3]),
		Text2: string(t[4]),
	}, nil
}

// columnValue extracts field col from a record for the column layout.
func columnValue(r workload.Record, col string) []byte {
	switch col {
	case "pk":
		return []byte(r.PK)
	case "int1":
		return encInt(r.Int1)
	case "int2":
		return encInt(r.Int2)
	case "text1":
		return []byte(r.Text1)
	case "text2":
		return []byte(r.Text2)
	}
	panic("tabular: unknown column " + col)
}

// FBTable is a versioned relational table on ForkBase. Branches scope
// independent lines of analysis (fork semantics, §5.3).
type FBTable struct {
	db     *forkbase.DB
	name   string
	layout Layout
}

// NewFBTable returns a table handle.
func NewFBTable(db *forkbase.DB, name string, layout Layout) *FBTable {
	return &FBTable{db: db, name: name, layout: layout}
}

// Layout returns the physical layout.
func (t *FBTable) Layout() Layout { return t.layout }

func (t *FBTable) rowKey() string           { return "tbl/" + t.name + "/rows" }
func (t *FBTable) colKey(col string) string { return "tbl/" + t.name + "/col/" + col }

// Import loads records into the given branch, replacing prior contents.
// Records must be sorted by primary key for the column layout to align
// positions across columns.
func (t *FBTable) Import(branch string, records []workload.Record) error {
	switch t.layout {
	case RowLayout:
		m := forkbase.NewMap()
		for _, r := range records {
			if err := m.Set([]byte(r.PK), encodeRecord(r)); err != nil {
				return err
			}
		}
		_, err := t.db.PutBranch(t.rowKey(), branch, m)
		return err
	case ColLayout:
		dir := forkbase.NewMap()
		for _, col := range Schema {
			l := forkbase.NewList()
			for _, r := range records {
				if err := l.Append(columnValue(r, col)); err != nil {
					return err
				}
			}
			uid, err := t.db.PutBranch(t.colKey(col), branch, l)
			if err != nil {
				return err
			}
			if err := dir.Set([]byte(col), uid[:]); err != nil {
				return err
			}
		}
		_, err := t.db.PutBranch(t.rowKey(), branch, dir)
		return err
	}
	return fmt.Errorf("tabular: bad layout")
}

// Fork creates a new branch of the dataset (the checkout of §6.4): in
// ForkBase this is a constant-time branch-table operation, no data is
// copied.
func (t *FBTable) Fork(ctx context.Context, refBranch, newBranch string) error {
	if err := t.db.Fork(ctx, t.rowKey(), newBranch, forkbase.WithBranch(refBranch)); err != nil {
		return err
	}
	if t.layout == ColLayout {
		for _, col := range Schema {
			if err := t.db.Fork(ctx, t.colKey(col), newBranch, forkbase.WithBranch(refBranch)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Count returns the number of records on branch.
func (t *FBTable) Count(branch string) (uint64, error) {
	o, err := t.db.GetBranch(t.rowKey(), branch)
	if err != nil {
		return 0, err
	}
	m, err := t.db.MapOf(o)
	if err != nil {
		return 0, err
	}
	if t.layout == RowLayout {
		return m.Len(), nil
	}
	l, err := t.column(branch, "pk")
	if err != nil {
		return 0, err
	}
	return l.Len(), nil
}

// Get returns the record with the given primary key (row layout only).
func (t *FBTable) Get(branch, pk string) (workload.Record, bool, error) {
	if t.layout != RowLayout {
		return workload.Record{}, false, errors.New("tabular: Get requires the row layout")
	}
	o, err := t.db.GetBranch(t.rowKey(), branch)
	if err != nil {
		return workload.Record{}, false, err
	}
	m, err := t.db.MapOf(o)
	if err != nil {
		return workload.Record{}, false, err
	}
	raw, ok, err := m.Get([]byte(pk))
	if err != nil || !ok {
		return workload.Record{}, false, err
	}
	r, err := decodeRecord(raw)
	return r, err == nil && true, err
}

// column fetches one column's List on branch.
func (t *FBTable) column(branch, col string) (*forkbase.List, error) {
	o, err := t.db.GetBranch(t.colKey(col), branch)
	if err != nil {
		return nil, err
	}
	return t.db.ListOf(o)
}

// Update applies record modifications to branch. For the row layout the
// Map absorbs a batch of Tuple rewrites; for the column layout each
// touched column's List is spliced at the record positions.
//
// The positions slice gives each record's ordinal for the column layout
// (its index in the sorted primary-key order used at import).
func (t *FBTable) Update(branch string, records []workload.Record, positions []uint64) error {
	switch t.layout {
	case RowLayout:
		o, err := t.db.GetBranch(t.rowKey(), branch)
		if err != nil {
			return err
		}
		m, err := t.db.MapOf(o)
		if err != nil {
			return err
		}
		sets := make([]postree.KV, len(records))
		for i, r := range records {
			sets[i] = postree.KV{Key: []byte(r.PK), Value: encodeRecord(r)}
		}
		if err := m.Apply(sets, nil); err != nil {
			return err
		}
		_, err = t.db.PutBranch(t.rowKey(), branch, m)
		return err
	case ColLayout:
		if len(positions) != len(records) {
			return errors.New("tabular: column update needs positions")
		}
		dir := forkbase.NewMap()
		for _, col := range Schema {
			l, err := t.column(branch, col)
			if err != nil {
				return err
			}
			for i, r := range records {
				if err := l.Splice(positions[i], 1, columnValue(r, col)); err != nil {
					return err
				}
			}
			uid, err := t.db.PutBranch(t.colKey(col), branch, l)
			if err != nil {
				return err
			}
			if err := dir.Set([]byte(col), uid[:]); err != nil {
				return err
			}
		}
		_, err := t.db.PutBranch(t.rowKey(), branch, dir)
		return err
	}
	return fmt.Errorf("tabular: bad layout")
}

// Scan calls fn for every record on branch in primary-key order.
func (t *FBTable) Scan(branch string, fn func(workload.Record) bool) error {
	switch t.layout {
	case RowLayout:
		o, err := t.db.GetBranch(t.rowKey(), branch)
		if err != nil {
			return err
		}
		m, err := t.db.MapOf(o)
		if err != nil {
			return err
		}
		var decodeErr error
		err = m.Iter(func(k, v []byte) bool {
			r, err := decodeRecord(v)
			if err != nil {
				decodeErr = err
				return false
			}
			return fn(r)
		})
		if decodeErr != nil {
			return decodeErr
		}
		return err
	case ColLayout:
		cols := make(map[string][][]byte, len(Schema))
		var n uint64
		for _, col := range Schema {
			l, err := t.column(branch, col)
			if err != nil {
				return err
			}
			var vals [][]byte
			if err := l.Iter(func(_ uint64, e []byte) bool {
				vals = append(vals, e)
				return true
			}); err != nil {
				return err
			}
			cols[col] = vals
			n = uint64(len(vals))
		}
		for i := uint64(0); i < n; i++ {
			r := workload.Record{
				PK:    string(cols["pk"][i]),
				Int1:  decInt(cols["int1"][i]),
				Int2:  decInt(cols["int2"][i]),
				Text1: string(cols["text1"][i]),
				Text2: string(cols["text2"][i]),
			}
			if !fn(r) {
				return nil
			}
		}
		return nil
	}
	return fmt.Errorf("tabular: bad layout")
}

// Aggregate sums an integer column ("int1" or "int2") on branch. The
// column layout reads only that column's chunks; the row layout decodes
// every record (the Figure 17b gap).
func (t *FBTable) Aggregate(branch, col string) (int64, error) {
	if col != "int1" && col != "int2" {
		return 0, fmt.Errorf("tabular: cannot aggregate column %q", col)
	}
	if t.layout == ColLayout {
		l, err := t.column(branch, col)
		if err != nil {
			return 0, err
		}
		var sum int64
		if err := l.Iter(func(_ uint64, e []byte) bool {
			sum += decInt(e)
			return true
		}); err != nil {
			return 0, err
		}
		return sum, nil
	}
	var sum int64
	err := t.Scan(branch, func(r workload.Record) bool {
		if col == "int1" {
			sum += r.Int1
		} else {
			sum += r.Int2
		}
		return true
	})
	return sum, err
}

// DiffCount compares two branches and returns the number of added,
// removed and modified records, using the POS-Tree diff so that shared
// subtrees are skipped (Figure 17a). Row layout only.
func (t *FBTable) DiffCount(branchA, branchB string) (added, removed, modified int, err error) {
	if t.layout != RowLayout {
		return 0, 0, 0, errors.New("tabular: DiffCount requires the row layout")
	}
	a, err := t.db.GetBranch(t.rowKey(), branchA)
	if err != nil {
		return 0, 0, 0, err
	}
	b, err := t.db.GetBranch(t.rowKey(), branchB)
	if err != nil {
		return 0, 0, 0, err
	}
	d, err := t.db.DiffVersions(a.UID(), b.UID())
	if err != nil {
		return 0, 0, 0, err
	}
	return len(d.Sorted.Added), len(d.Sorted.Removed), len(d.Sorted.Modified), nil
}

// ImportCSV loads a CSV stream with the fixed schema (pk, int1, int2,
// text1, text2) into branch.
func (t *FBTable) ImportCSV(branch string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	var records []workload.Record
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("tabular: %w", err)
		}
		if len(row) != len(Schema) {
			return 0, fmt.Errorf("tabular: row has %d fields, want %d", len(row), len(Schema))
		}
		i1, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("tabular: %w", err)
		}
		i2, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("tabular: %w", err)
		}
		records = append(records, workload.Record{PK: row[0], Int1: i1, Int2: i2, Text1: row[3], Text2: row[4]})
	}
	if err := t.Import(branch, records); err != nil {
		return 0, err
	}
	return len(records), nil
}

// ExportCSV writes branch's records as CSV in primary-key order.
func (t *FBTable) ExportCSV(branch string, w io.Writer) error {
	cw := csv.NewWriter(w)
	var scanErr error
	err := t.Scan(branch, func(r workload.Record) bool {
		scanErr = cw.Write([]string{
			r.PK,
			strconv.FormatInt(r.Int1, 10),
			strconv.FormatInt(r.Int2, 10),
			r.Text1, r.Text2,
		})
		return scanErr == nil
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}
	cw.Flush()
	return cw.Error()
}

// StorageBytes reports the backing store's consumption.
func (t *FBTable) StorageBytes() int64 { return t.db.Stats().Bytes }
