package tabular

import (
	"fmt"
	"sort"

	"forkbase/internal/workload"
)

// Orpheus is an OrpheusDB-style versioned relational store (paper §6.4):
// an append-only record heap shared by all versions, plus one
// record-id vector per version (the CVD model). Its costs follow from
// the design, exactly as the paper observes:
//
//   - Checkout materializes a full working copy by resolving the whole
//     rid vector (slow for large tables, Figure 16a).
//   - Commit appends only changed records to the heap but must store a
//     complete new rid vector (the 3x space increment of Figure 16b).
//   - Diff compares full rid vectors (flat cost, Figure 17a).
//   - Aggregation scans the materialized copy (Figure 17b).
type Orpheus struct {
	heap     []workload.Record
	versions map[string][]int // version name -> rid per record position
}

// NewOrpheus returns an empty store.
func NewOrpheus() *Orpheus {
	return &Orpheus{versions: make(map[string][]int)}
}

// Import creates version v from records.
func (o *Orpheus) Import(v string, records []workload.Record) {
	rids := make([]int, len(records))
	for i, r := range records {
		rids[i] = len(o.heap)
		o.heap = append(o.heap, r)
	}
	o.versions[v] = rids
}

// Checkout materializes version v into a fresh working copy, resolving
// every rid — OrpheusDB's reconstruction of a working table from
// sub-tables.
func (o *Orpheus) Checkout(v string) ([]workload.Record, error) {
	rids, ok := o.versions[v]
	if !ok {
		return nil, fmt.Errorf("tabular: no version %q", v)
	}
	out := make([]workload.Record, len(rids))
	for i, rid := range rids {
		out[i] = o.heap[rid]
	}
	return out, nil
}

// Commit stores the working copy as a new version derived from base:
// records identical to the base version share rids; changed or new
// records append to the heap, and a full new rid vector is recorded.
func (o *Orpheus) Commit(base, v string, records []workload.Record) error {
	baseRids, ok := o.versions[base]
	if !ok {
		return fmt.Errorf("tabular: no version %q", base)
	}
	basePK := make(map[string]int, len(baseRids))
	for _, rid := range baseRids {
		basePK[o.heap[rid].PK] = rid
	}
	rids := make([]int, len(records))
	for i, r := range records {
		if rid, ok := basePK[r.PK]; ok && o.heap[rid] == r {
			rids[i] = rid
			continue
		}
		rids[i] = len(o.heap)
		o.heap = append(o.heap, r)
	}
	o.versions[v] = rids
	return nil
}

// Diff counts differing records between two versions by comparing their
// full rid vectors; the cost does not depend on how similar the
// versions are.
func (o *Orpheus) Diff(v1, v2 string) (differing int, err error) {
	r1, ok := o.versions[v1]
	if !ok {
		return 0, fmt.Errorf("tabular: no version %q", v1)
	}
	r2, ok := o.versions[v2]
	if !ok {
		return 0, fmt.Errorf("tabular: no version %q", v2)
	}
	// Align by primary key via full scans of both vectors.
	pk1 := make(map[string]int, len(r1))
	for _, rid := range r1 {
		pk1[o.heap[rid].PK] = rid
	}
	seen := 0
	for _, rid := range r2 {
		if orid, ok := pk1[o.heap[rid].PK]; !ok || orid != rid {
			differing++
		}
		seen++
	}
	for _, rid := range r1 {
		if _, ok := o.findPK(r2, o.heap[rid].PK); !ok {
			differing++
		}
	}
	_ = seen
	return differing, nil
}

func (o *Orpheus) findPK(rids []int, pk string) (int, bool) {
	// rid vectors are position-ordered by pk (imports are sorted), so
	// binary search applies.
	i := sort.Search(len(rids), func(i int) bool { return o.heap[rids[i]].PK >= pk })
	if i < len(rids) && o.heap[rids[i]].PK == pk {
		return rids[i], true
	}
	return 0, false
}

// Aggregate sums an integer column of version v by materializing and
// scanning it.
func (o *Orpheus) Aggregate(v, col string) (int64, error) {
	records, err := o.Checkout(v)
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, r := range records {
		switch col {
		case "int1":
			sum += r.Int1
		case "int2":
			sum += r.Int2
		default:
			return 0, fmt.Errorf("tabular: cannot aggregate column %q", col)
		}
	}
	return sum, nil
}

// StorageBytes estimates storage: heap record bytes plus 8 bytes per
// rid vector entry.
func (o *Orpheus) StorageBytes() int64 {
	var n int64
	for _, r := range o.heap {
		n += int64(len(r.PK) + 16 + len(r.Text1) + len(r.Text2))
	}
	for _, rids := range o.versions {
		n += int64(8 * len(rids))
	}
	return n
}

// Versions returns the number of stored versions.
func (o *Orpheus) Versions() int { return len(o.versions) }
