package tabular

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"forkbase"
	"forkbase/internal/workload"
)

func dataset(n int) []workload.Record { return workload.Dataset(42, n) }

func TestImportScanBothLayouts(t *testing.T) {
	records := dataset(500)
	for _, layout := range []Layout{RowLayout, ColLayout} {
		tbl := NewFBTable(forkbase.Open(), "t", layout)
		if err := tbl.Import("master", records); err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		n, err := tbl.Count("master")
		if err != nil || n != 500 {
			t.Fatalf("%v: count %d %v", layout, n, err)
		}
		var got []workload.Record
		if err := tbl.Scan("master", func(r workload.Record) bool {
			got = append(got, r)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(records) {
			t.Fatalf("%v: scanned %d", layout, len(got))
		}
		for i := range got {
			if got[i] != records[i] {
				t.Fatalf("%v: record %d mismatch: %+v vs %+v", layout, i, got[i], records[i])
			}
		}
	}
}

func TestAggregateMatchesAcrossLayoutsAndOrpheus(t *testing.T) {
	records := dataset(1000)
	var want int64
	for _, r := range records {
		want += r.Int1
	}
	for _, layout := range []Layout{RowLayout, ColLayout} {
		tbl := NewFBTable(forkbase.Open(), "t", layout)
		if err := tbl.Import("master", records); err != nil {
			t.Fatal(err)
		}
		got, err := tbl.Aggregate("master", "int1")
		if err != nil || got != want {
			t.Fatalf("%v: aggregate %d %v, want %d", layout, got, err, want)
		}
	}
	o := NewOrpheus()
	o.Import("v1", records)
	got, err := o.Aggregate("v1", "int1")
	if err != nil || got != want {
		t.Fatalf("orpheus: %d %v, want %d", got, err, want)
	}
}

func TestUpdateAndPointLookup(t *testing.T) {
	records := dataset(800)
	tbl := NewFBTable(forkbase.Open(), "t", RowLayout)
	if err := tbl.Import("master", records); err != nil {
		t.Fatal(err)
	}
	mod := records[100]
	mod.Int1 = 999999
	mod.Text1 = "updated-text"
	if err := tbl.Update("master", []workload.Record{mod}, nil); err != nil {
		t.Fatal(err)
	}
	r, ok, err := tbl.Get("master", mod.PK)
	if err != nil || !ok || r != mod {
		t.Fatalf("updated record: %+v %v %v", r, ok, err)
	}
	// Others untouched.
	r, ok, _ = tbl.Get("master", records[101].PK)
	if !ok || r != records[101] {
		t.Fatalf("neighbor disturbed: %+v", r)
	}
}

func TestColumnLayoutUpdate(t *testing.T) {
	records := dataset(300)
	tbl := NewFBTable(forkbase.Open(), "t", ColLayout)
	if err := tbl.Import("master", records); err != nil {
		t.Fatal(err)
	}
	mod := records[50]
	mod.Int2 = 123456
	if err := tbl.Update("master", []workload.Record{mod}, []uint64{50}); err != nil {
		t.Fatal(err)
	}
	var got workload.Record
	i := 0
	tbl.Scan("master", func(r workload.Record) bool {
		if i == 50 {
			got = r
			return false
		}
		i++
		return true
	})
	if got != mod {
		t.Fatalf("column update lost: %+v", got)
	}
}

func TestForkIsolatesDatasetBranches(t *testing.T) {
	records := dataset(400)
	tbl := NewFBTable(forkbase.Open(), "t", RowLayout)
	tbl.Import("master", records)
	if err := tbl.Fork(context.Background(), "master", "cleaning"); err != nil {
		t.Fatal(err)
	}
	mod := records[0]
	mod.Text1 = "cleaned"
	if err := tbl.Update("cleaning", []workload.Record{mod}, nil); err != nil {
		t.Fatal(err)
	}
	r, _, _ := tbl.Get("master", records[0].PK)
	if r.Text1 == "cleaned" {
		t.Fatal("fork isolation broken")
	}
	r, _, _ = tbl.Get("cleaning", records[0].PK)
	if r.Text1 != "cleaned" {
		t.Fatal("branch update lost")
	}
	// Diff between the branches is exactly one modified record.
	added, removed, modified, err := tbl.DiffCount("master", "cleaning")
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || removed != 0 || modified != 1 {
		t.Fatalf("diff: +%d -%d ~%d", added, removed, modified)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	records := dataset(100)
	tbl := NewFBTable(forkbase.Open(), "t", RowLayout)
	tbl.Import("master", records)
	var buf bytes.Buffer
	if err := tbl.ExportCSV("master", &buf); err != nil {
		t.Fatal(err)
	}
	tbl2 := NewFBTable(forkbase.Open(), "t2", RowLayout)
	n, err := tbl2.ImportCSV("master", strings.NewReader(buf.String()))
	if err != nil || n != 100 {
		t.Fatalf("import: %d %v", n, err)
	}
	var buf2 bytes.Buffer
	tbl2.ExportCSV("master", &buf2)
	if buf.String() != buf2.String() {
		t.Fatal("CSV round trip mismatch")
	}
}

func TestImportCSVRejectsBadRows(t *testing.T) {
	tbl := NewFBTable(forkbase.Open(), "t", RowLayout)
	if _, err := tbl.ImportCSV("master", strings.NewReader("a,b\n")); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := tbl.ImportCSV("master", strings.NewReader("pk,notint,2,x,y\n")); err == nil {
		t.Fatal("non-integer accepted")
	}
}

func TestOrpheusVersioning(t *testing.T) {
	records := dataset(500)
	o := NewOrpheus()
	o.Import("v1", records)

	work, err := o.Checkout("v1")
	if err != nil {
		t.Fatal(err)
	}
	work[10].Int1 = 777
	work[20].Text2 = "modified"
	if err := o.Commit("v1", "v2", work); err != nil {
		t.Fatal(err)
	}
	// v1 unchanged.
	v1, _ := o.Checkout("v1")
	if v1[10].Int1 == 777 {
		t.Fatal("commit mutated the base version")
	}
	v2, _ := o.Checkout("v2")
	if v2[10].Int1 != 777 || v2[20].Text2 != "modified" {
		t.Fatal("commit lost changes")
	}
	d, err := o.Diff("v1", "v2")
	if err != nil || d != 2 {
		t.Fatalf("diff: %d %v, want 2", d, err)
	}
	if _, err := o.Checkout("nope"); err == nil {
		t.Fatal("missing version checkout succeeded")
	}
}

// TestStorageGrowthComparison is the Figure 16b effect: for small
// update fractions, ForkBase's chunk dedup grows storage less than
// Orpheus's new rid vector plus appended records.
func TestStorageGrowthComparison(t *testing.T) {
	records := dataset(5000)
	tbl := NewFBTable(forkbase.Open(), "t", RowLayout)
	if err := tbl.Import("master", records); err != nil {
		t.Fatal(err)
	}
	o := NewOrpheus()
	o.Import("v1", records)

	fb0 := tbl.StorageBytes()
	or0 := o.StorageBytes()

	// Modify a contiguous 1% of the records (chunk-level dedup pays
	// off when updates cluster; a fully scattered one-record-per-leaf
	// pattern is the adversarial case for content-based chunking, as
	// the paper's footnote on delta- vs content-based dedup concedes).
	nMods := len(records) / 100
	var mods []workload.Record
	for i := 0; i < nMods; i++ {
		m := records[i]
		m.Int1++
		mods = append(mods, m)
	}
	if err := tbl.Update("master", mods, nil); err != nil {
		t.Fatal(err)
	}
	work, _ := o.Checkout("v1")
	for i := 0; i < nMods; i++ {
		work[i].Int1++
	}
	o.Commit("v1", "v2", work)

	fbGrow := tbl.StorageBytes() - fb0
	orGrow := o.StorageBytes() - or0
	if fbGrow <= 0 || orGrow <= 0 {
		t.Fatalf("growth accounting broken: fb=%d or=%d", fbGrow, orGrow)
	}
	if fbGrow >= orGrow {
		t.Fatalf("ForkBase grew %d, Orpheus %d; dedup advantage missing", fbGrow, orGrow)
	}
}
