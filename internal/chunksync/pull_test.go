package chunksync

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/postree"
	"forkbase/internal/store"
)

// The pipelined walk and the level-synchronous baseline must agree on
// exactly which chunks move: same fetched set, same local-hit count,
// same bytes — from a cold cache, a warm cache, and a partially
// pulled one.
func TestPullPipelinedMatchesLevelSync(t *testing.T) {
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(11))
	data := make([]byte, 3<<20)
	rnd.Read(data)
	server := &remoteEnd{s: store.NewMemStore()}
	tree := buildBlob(t, server.s, data)

	type scenario struct {
		name string
		prep func(t *testing.T, local store.Store)
	}
	scenarios := []scenario{
		{"cold", func(*testing.T, store.Store) {}},
		{"partial", func(t *testing.T, local store.Store) {
			// Seed every other tree chunk, index nodes included.
			ids := treeIDs(t, tree)
			for i := 0; i < len(ids); i += 2 {
				c, err := server.s.Get(ids[i])
				if err != nil {
					t.Fatal(err)
				}
				if _, err := local.Put(c); err != nil {
					t.Fatal(err)
				}
			}
		}},
	}
	for _, sc := range scenarios {
		for _, window := range []int{1, 2, 4} {
			localA, localB := store.NewMemStore(), store.NewMemStore()
			sc.prep(t, localA)
			sc.prep(t, localB)
			stPipe, err := Pull(ctx, localA, server.fetch, tree.Root(), tree.Height(), PullConfig{Batch: 32, Window: window})
			if err != nil {
				t.Fatalf("%s window=%d: %v", sc.name, window, err)
			}
			stSync, err := PullLevelSync(ctx, localB, server.fetch, tree.Root(), tree.Height(), 32)
			if err != nil {
				t.Fatalf("%s levelsync: %v", sc.name, err)
			}
			if stPipe.ChunksFetched != stSync.ChunksFetched ||
				stPipe.BytesFetched != stSync.BytesFetched ||
				stPipe.ChunksLocal != stSync.ChunksLocal {
				t.Fatalf("%s window=%d: pipelined %+v vs levelsync %+v", sc.name, window, stPipe, stSync)
			}
			for _, pulled := range []*store.MemStore{localA, localB} {
				at := postree.Attach(pulled, postree.DefaultConfig(), postree.KindBlob, tree.Root(), tree.Count(), tree.Height())
				got, err := at.Bytes()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("%s window=%d: pulled tree does not reproduce the content", sc.name, window)
				}
			}
		}
	}
}

// Cancelling a pull mid-prefetch must stop the workers promptly, leak
// no goroutines, and leave the partial tree re-pullable.
func TestPullCancelMidPrefetch(t *testing.T) {
	rnd := rand.New(rand.NewSource(12))
	data := make([]byte, 2<<20)
	rnd.Read(data)
	server := &remoteEnd{s: store.NewMemStore()}
	tree := buildBlob(t, server.s, data)
	local := store.NewMemStore()

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	blocking := func(fctx context.Context, ids []chunk.ID) ([][]byte, error) {
		if calls.Add(1) == 3 {
			cancel() // third batch: pull the rug out
		}
		select {
		case <-fctx.Done():
			return nil, fctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
		if err := fctx.Err(); err != nil {
			return nil, err
		}
		return server.fetch(fctx, ids)
	}
	_, err := Pull(ctx, local, blocking, tree.Root(), tree.Height(), PullConfig{Batch: 8, Window: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pull returned %v", err)
	}
	cancel()

	// Pull returns only after its workers exit; give the runtime a few
	// scheduling rounds to retire them before counting.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after cancelled pull", before, n)
	}

	// The interrupted pull left a partial tree; a fresh pull completes
	// it and the content reads back whole.
	st, err := Pull(context.Background(), local, server.fetch, tree.Root(), tree.Height(), PullConfig{})
	if err != nil {
		t.Fatal(err)
	}
	at := postree.Attach(local, postree.DefaultConfig(), postree.KindBlob, tree.Root(), tree.Count(), tree.Height())
	got, err := at.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("resumed pull does not reproduce the content")
	}
	_ = st
}

// A duplicate index node (identical content repeated in a large
// uniform object) must expand once, not once per occurrence: the old
// level walk re-expanded duplicates, inflating every level below
// geometrically. Uniform data makes every leaf — and therefore most
// index nodes — identical, so the local Get count during a warm
// re-pull bounds the expansion work directly.
func TestPullExpandsDuplicateIndexOnce(t *testing.T) {
	ctx := context.Background()
	server := &remoteEnd{s: store.NewMemStore()}
	tree := buildBlob(t, server.s, make([]byte, 8<<20)) // zeros: maximal duplication
	local := store.NewMemStore()
	if _, err := Pull(ctx, local, server.fetch, tree.Root(), tree.Height(), PullConfig{}); err != nil {
		t.Fatal(err)
	}
	unique := int64(local.Stats().Chunks)

	for _, cfg := range []PullConfig{{}, {Window: -1}} {
		gets0 := local.Stats().Gets
		if _, err := Pull(ctx, local, server.fetch, tree.Root(), tree.Height(), cfg); err != nil {
			t.Fatal(err)
		}
		gets := local.Stats().Gets - gets0
		if gets > unique {
			t.Fatalf("window=%d: warm re-pull read %d chunks for a tree of %d unique — duplicate index nodes re-expanded", cfg.Window, gets, unique)
		}
	}
}

// First fetch error aborts the remaining window and surfaces; the
// store keeps whatever was admitted before the failure.
func TestPullFirstErrorWins(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	data := make([]byte, 2<<20)
	rnd.Read(data)
	server := &remoteEnd{s: store.NewMemStore()}
	tree := buildBlob(t, server.s, data)

	boom := errors.New("transport torn down")
	var calls atomic.Int32
	flaky := func(fctx context.Context, ids []chunk.ID) ([][]byte, error) {
		if calls.Add(1) > 2 {
			return nil, boom
		}
		return server.fetch(fctx, ids)
	}
	local := store.NewMemStore()
	_, err := Pull(context.Background(), local, flaky, tree.Root(), tree.Height(), PullConfig{Batch: 8, Window: 3})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the transport error", err)
	}
}
