package chunksync

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/postree"
	"forkbase/internal/store"
)

// remoteEnd adapts a MemStore into the three transport closures,
// counting what crosses the boundary. Pull's pipelined fetches arrive
// from concurrent workers, so the counters live under a mutex.
type remoteEnd struct {
	s           *store.MemStore
	mu          sync.Mutex
	fetches     int
	sends       int
	fetchPrefix int // when >0, answer at most this many ids per fetch
}

func (r *remoteEnd) have(_ context.Context, ids []chunk.ID) ([]bool, error) {
	out := make([]bool, len(ids))
	for i, id := range ids {
		out[i] = r.s.Has(id)
	}
	return out, nil
}

func (r *remoteEnd) fetch(_ context.Context, ids []chunk.ID) ([][]byte, error) {
	r.mu.Lock()
	r.fetches++
	r.mu.Unlock()
	if r.fetchPrefix > 0 && len(ids) > r.fetchPrefix {
		ids = ids[:r.fetchPrefix]
	}
	out := make([][]byte, len(ids))
	for i, id := range ids {
		c, err := r.s.Get(id)
		if errors.Is(err, store.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[i] = c.Bytes()
	}
	return out, nil
}

func (r *remoteEnd) send(_ context.Context, chunks []*chunk.Chunk) error {
	r.sends++
	for _, c := range chunks {
		if _, err := r.s.Put(c); err != nil {
			return err
		}
	}
	return nil
}

// buildBlob persists data as a blob POS-Tree on s.
func buildBlob(t *testing.T, s store.Store, data []byte) *postree.Tree {
	t.Helper()
	b := postree.NewBuilder(s, postree.DefaultConfig(), postree.KindBlob)
	b.AppendBytes(data)
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func treeIDs(t *testing.T, tree *postree.Tree) []chunk.ID {
	t.Helper()
	var ids []chunk.ID
	if err := tree.WalkChunkIDs(func(id chunk.ID, _ bool) error {
		ids = append(ids, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestPullCompletesTree(t *testing.T) {
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(1))
	data := make([]byte, 1<<20)
	rnd.Read(data)

	server := &remoteEnd{s: store.NewMemStore(), fetchPrefix: 7}
	tree := buildBlob(t, server.s, data)
	local := store.NewMemStore()

	st, err := Pull(ctx, local, server.fetch, tree.Root(), tree.Height(), PullConfig{Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksFetched == 0 || st.BytesFetched == 0 {
		t.Fatalf("nothing fetched: %+v", st)
	}
	// Every tree chunk must now be local, and readable without the
	// remote end.
	attached := postree.Attach(local, postree.DefaultConfig(), postree.KindBlob, tree.Root(), tree.Count(), tree.Height())
	got, err := attached.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pulled tree does not reproduce the content")
	}

	// A second pull is free: everything is local.
	st2, err := Pull(ctx, local, server.fetch, tree.Root(), tree.Height(), PullConfig{Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st2.ChunksFetched != 0 {
		t.Fatalf("re-pull fetched %d chunks", st2.ChunksFetched)
	}
}

func TestPullAfterSmallEditFetchesOnlyDelta(t *testing.T) {
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(2))
	data := make([]byte, 4<<20)
	rnd.Read(data)

	server := &remoteEnd{s: store.NewMemStore()}
	tree := buildBlob(t, server.s, data)
	local := store.NewMemStore()
	if _, err := Pull(ctx, local, server.fetch, tree.Root(), tree.Height(), PullConfig{}); err != nil {
		t.Fatal(err)
	}

	// A 1% splice in the middle; the server-side edit shares all
	// untouched chunks with the original tree.
	edit := make([]byte, len(data)/100)
	rnd.Read(edit)
	edited, err := tree.SpliceBytes(uint64(len(data)/2), uint64(len(edit)), edit)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Pull(ctx, local, server.fetch, edited.Root(), edited.Height(), PullConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesFetched > int64(len(data))/10 {
		t.Fatalf("1%% edit re-pull moved %d of %d bytes (>10%%)", st.BytesFetched, len(data))
	}
	if st.ChunksFetched == 0 {
		t.Fatal("edit produced no new chunks to fetch")
	}
}

func TestPullVerifiesFetchedChunks(t *testing.T) {
	ctx := context.Background()
	server := &remoteEnd{s: store.NewMemStore()}
	tree := buildBlob(t, server.s, bytes.Repeat([]byte("forkbase"), 1<<12))

	// A transport that swaps in a valid chunk under the wrong id must
	// be caught by the id recomputation.
	evil := func(ctx context.Context, ids []chunk.ID) ([][]byte, error) {
		out, err := server.fetch(ctx, ids)
		if err != nil {
			return nil, err
		}
		for i := range out {
			if out[i] != nil {
				out[i] = chunk.New(chunk.TypeBlob, []byte("swapped")).Bytes()
			}
		}
		return out, nil
	}
	local := store.NewMemStore()
	if _, err := Pull(ctx, local, evil, tree.Root(), tree.Height(), PullConfig{}); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("poisoned fetch admitted: %v", err)
	}

	// Garbage bytes (not even a decodable chunk) also cost the pull.
	garbage := func(ctx context.Context, ids []chunk.ID) ([][]byte, error) {
		out := make([][]byte, len(ids))
		for i := range out {
			out[i] = []byte{0xff, 0xfe}
		}
		return out, nil
	}
	if _, err := Pull(ctx, store.NewMemStore(), garbage, tree.Root(), tree.Height(), PullConfig{}); err == nil {
		t.Fatal("garbage fetch admitted")
	}
}

func TestMissingAndPushDelta(t *testing.T) {
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(3))
	data := make([]byte, 2<<20)
	rnd.Read(data)

	// Client builds v1 locally, pushes everything; edits 1%, pushes
	// again — the second push must move only the delta.
	local := store.NewMemStore()
	server := &remoteEnd{s: store.NewMemStore()}
	tree := buildBlob(t, local, data)

	var st Stats
	ids := treeIDs(t, tree)
	missing, err := Missing(ctx, ids, server.have, 16, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) == 0 {
		t.Fatal("fresh server reported no missing chunks")
	}
	if err := Push(ctx, local, missing, server.send, 64<<10, &st); err != nil {
		t.Fatal(err)
	}
	firstBytes := st.BytesSent

	edit := make([]byte, len(data)/100)
	rnd.Read(edit)
	edited, err := tree.SpliceBytes(uint64(len(data)/3), uint64(len(edit)), edit)
	if err != nil {
		t.Fatal(err)
	}
	var st2 Stats
	missing2, err := Missing(ctx, treeIDs(t, edited), server.have, 0, &st2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Push(ctx, local, missing2, server.send, 0, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.ChunksSkipped == 0 {
		t.Fatal("negotiation found no shared chunks after a 1% edit")
	}
	if st2.BytesSent > firstBytes/10 {
		t.Fatalf("1%% edit re-push moved %d of %d bytes (>10%%)", st2.BytesSent, firstBytes)
	}
	// The pushed tree must be complete and readable on the server.
	attached := postree.Attach(server.s, postree.DefaultConfig(), postree.KindBlob, edited.Root(), edited.Count(), edited.Height())
	if err := attached.WalkChunkIDs(func(id chunk.ID, _ bool) error {
		if !server.s.Has(id) {
			t.Fatalf("chunk %s missing after push", id.Short())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPushBatchesBySize(t *testing.T) {
	ctx := context.Background()
	local := store.NewMemStore()
	tree := buildBlob(t, local, bytes.Repeat([]byte{7}, 1<<20))
	server := &remoteEnd{s: store.NewMemStore()}
	var st Stats
	if err := Push(ctx, local, treeIDs(t, tree), server.send, 8<<10, &st); err != nil {
		t.Fatal(err)
	}
	if server.sends < 2 {
		t.Fatalf("1 MiB push with 8 KiB batches used %d sends", server.sends)
	}
}
