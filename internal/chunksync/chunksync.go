// Package chunksync implements chunk-granular transfer of POS-Trees:
// the negotiation and traversal logic that lets two content-addressed
// stores exchange only the chunks one of them is missing, instead of
// materializing whole values. It is the paper's deduplication argument
// (§3.4) applied to the network — after a small edit to a large
// object, the two versions' trees share all but a handful of chunks,
// so syncing the new version should move only that handful.
//
// The package is transport-agnostic: callers supply the three wire
// primitives as closures (HaveFunc answers "which of these ids do you
// hold", FetchFunc returns raw chunk bytes by id, SendFunc uploads
// chunks), and this package contributes the tree walks, batching, and
// verification around them. Both ends re-verify every chunk that
// crosses the boundary: a fetched or received chunk is admitted only
// if its bytes hash to the id it was claimed under, so a hostile or
// corrupted peer can waste a request but never poison a store.
package chunksync

import (
	"context"
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/postree"
	"forkbase/internal/store"
)

// Default batching knobs. Have batches are bounded by id count (32
// bytes each); fetch batches by id count with the responder free to
// answer a prefix; send batches by cumulative payload bytes.
const (
	// DefaultHaveBatch is the largest id list per Have request.
	DefaultHaveBatch = 4096
	// DefaultFetchBatch is the largest id list per Fetch request.
	DefaultFetchBatch = 512
	// DefaultSendBytes is the target payload size per Send request.
	DefaultSendBytes = 4 << 20
)

// HaveFunc answers, for each id, whether the remote end already holds
// the chunk. The result is aligned with ids.
type HaveFunc func(ctx context.Context, ids []chunk.ID) ([]bool, error)

// FetchFunc returns raw serialized chunk bytes for a non-empty prefix
// of ids (a responder may stop early to bound its reply); entries are
// aligned with that prefix, nil where the remote holds nothing.
type FetchFunc func(ctx context.Context, ids []chunk.ID) ([][]byte, error)

// SendFunc uploads a batch of chunks to the remote end.
type SendFunc func(ctx context.Context, chunks []*chunk.Chunk) error

// Stats counts a transfer's work. Byte counts cover chunk payloads
// only (framing overhead is the transport's business).
type Stats struct {
	// ChunksFetched and BytesFetched cover chunks pulled from the
	// remote end; ChunksLocal counts the ones the local store already
	// held, i.e. the fetches deduplication saved.
	ChunksFetched int
	BytesFetched  int64
	ChunksLocal   int
	// ChunksSent and BytesSent cover chunks pushed to the remote end;
	// ChunksSkipped counts the ones negotiation proved already there.
	ChunksSent    int
	BytesSent     int64
	ChunksSkipped int
}

// Pull completes the POS-Tree rooted at root in local: it walks the
// tree top-down, resolves index nodes on demand (reading them locally
// when present, fetching them when not), and fetches exactly the
// chunks local is missing. Leaves are fetched but never decoded. Every
// fetched chunk is verified against the id it was requested under
// before it is admitted to local. height is the tree's level count as
// recorded in its chunk reference; batch caps ids per fetch (0 means
// DefaultFetchBatch).
//
// Partially-pulled trees (an earlier Pull cancelled mid-way) are
// handled by construction: presence of an index node never implies
// presence of its subtree, because the walk descends into every index
// node — local ones cost a memory read, not a fetch.
func Pull(ctx context.Context, local store.Store, fetch FetchFunc, root chunk.ID, height int, batch int) (Stats, error) {
	var st Stats
	if root.IsNil() {
		return st, nil
	}
	if batch <= 0 {
		batch = DefaultFetchBatch
	}
	level := []chunk.ID{root}
	for h := height; h >= 1 && len(level) > 0; h-- {
		// Fetch the level's missing chunks. Duplicate ids (identical
		// content repeated in the tree) collapse to one fetch.
		var missing []chunk.ID
		seen := make(map[chunk.ID]bool, len(level))
		for _, id := range level {
			if seen[id] {
				continue
			}
			seen[id] = true
			if local.Has(id) {
				st.ChunksLocal++
			} else {
				missing = append(missing, id)
			}
		}
		if err := fetchInto(ctx, local, fetch, missing, batch, &st); err != nil {
			return st, err
		}
		if h == 1 {
			break
		}
		var next []chunk.ID
		for _, id := range level {
			c, err := store.GetVerified(local, id)
			if err != nil {
				return st, err
			}
			kids, err := postree.IndexChildIDs(c.Data())
			if err != nil {
				return st, err
			}
			next = append(next, kids...)
		}
		level = next
	}
	return st, nil
}

// fetchInto pulls the given ids into local, verifying each chunk
// against the id it was requested under.
func fetchInto(ctx context.Context, local store.Store, fetch FetchFunc, ids []chunk.ID, batch int, st *Stats) error {
	for len(ids) > 0 {
		n := len(ids)
		if n > batch {
			n = batch
		}
		got, err := fetch(ctx, ids[:n])
		if err != nil {
			return err
		}
		if len(got) == 0 || len(got) > n {
			return fmt.Errorf("chunksync: fetch answered %d of %d ids", len(got), n)
		}
		for i, raw := range got {
			if raw == nil {
				return fmt.Errorf("chunksync: chunk %s: %w", ids[i].Short(), store.ErrNotFound)
			}
			c, err := chunk.Decode(raw)
			if err != nil {
				return fmt.Errorf("chunksync: chunk %s: %w", ids[i].Short(), err)
			}
			if c.ID() != ids[i] {
				return fmt.Errorf("chunksync: fetched chunk hashes to %s, requested %s: %w",
					c.ID().Short(), ids[i].Short(), store.ErrCorrupt)
			}
			if _, err := local.Put(c); err != nil {
				return err
			}
			st.ChunksFetched++
			st.BytesFetched += int64(len(raw))
		}
		ids = ids[len(got):]
	}
	return nil
}

// Missing negotiates which of ids the remote end lacks, preserving
// first-occurrence order and collapsing duplicates. batch caps ids per
// Have request (0 means DefaultHaveBatch).
func Missing(ctx context.Context, ids []chunk.ID, have HaveFunc, batch int, st *Stats) ([]chunk.ID, error) {
	if batch <= 0 {
		batch = DefaultHaveBatch
	}
	unique := make([]chunk.ID, 0, len(ids))
	seen := make(map[chunk.ID]bool, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			unique = append(unique, id)
		}
	}
	var missing []chunk.ID
	for len(unique) > 0 {
		n := len(unique)
		if n > batch {
			n = batch
		}
		got, err := have(ctx, unique[:n])
		if err != nil {
			return nil, err
		}
		if len(got) != n {
			return nil, fmt.Errorf("chunksync: have answered %d of %d ids", len(got), n)
		}
		for i, present := range got {
			if present {
				st.ChunksSkipped++
			} else {
				missing = append(missing, unique[i])
			}
		}
		unique = unique[n:]
	}
	return missing, nil
}

// Push uploads the given chunks from src, batched by cumulative
// payload size (maxBytes; 0 means DefaultSendBytes — a batch always
// carries at least one chunk, so a single chunk larger than the target
// still ships alone).
func Push(ctx context.Context, src store.Store, ids []chunk.ID, send SendFunc, maxBytes int, st *Stats) error {
	if maxBytes <= 0 {
		maxBytes = DefaultSendBytes
	}
	var batch []*chunk.Chunk
	var batchBytes int
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := send(ctx, batch); err != nil {
			return err
		}
		for _, c := range batch {
			st.ChunksSent++
			st.BytesSent += int64(len(c.Bytes()))
		}
		batch, batchBytes = batch[:0], 0
		return nil
	}
	for _, id := range ids {
		c, err := store.GetVerified(src, id)
		if err != nil {
			return err
		}
		if len(batch) > 0 && batchBytes+len(c.Bytes()) > maxBytes {
			if err := flush(); err != nil {
				return err
			}
		}
		batch = append(batch, c)
		batchBytes += len(c.Bytes())
	}
	return flush()
}
