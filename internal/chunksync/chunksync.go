// Package chunksync implements chunk-granular transfer of POS-Trees:
// the negotiation and traversal logic that lets two content-addressed
// stores exchange only the chunks one of them is missing, instead of
// materializing whole values. It is the paper's deduplication argument
// (§3.4) applied to the network — after a small edit to a large
// object, the two versions' trees share all but a handful of chunks,
// so syncing the new version should move only that handful.
//
// The package is transport-agnostic: callers supply the three wire
// primitives as closures (HaveFunc answers "which of these ids do you
// hold", FetchFunc returns raw chunk bytes by id, SendFunc uploads
// chunks), and this package contributes the tree walks, batching, and
// verification around them. Both ends re-verify every chunk that
// crosses the boundary: a fetched or received chunk is admitted only
// if its bytes hash to the id it was claimed under, so a hostile or
// corrupted peer can waste a request but never poison a store.
package chunksync

import (
	"context"
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/postree"
	"forkbase/internal/store"
)

// Default batching knobs. Have batches are bounded by id count (32
// bytes each); fetch batches by id count with the responder free to
// answer a prefix; send batches by cumulative payload bytes.
const (
	// DefaultHaveBatch is the largest id list per Have request.
	DefaultHaveBatch = 4096
	// DefaultFetchBatch is the largest id list per Fetch request.
	DefaultFetchBatch = 512
	// DefaultSendBytes is the target payload size per Send request.
	DefaultSendBytes = 4 << 20
)

// HaveFunc answers, for each id, whether the remote end already holds
// the chunk. The result is aligned with ids.
type HaveFunc func(ctx context.Context, ids []chunk.ID) ([]bool, error)

// FetchFunc returns raw serialized chunk bytes for a non-empty prefix
// of ids (a responder may stop early to bound its reply); entries are
// aligned with that prefix, nil where the remote holds nothing.
type FetchFunc func(ctx context.Context, ids []chunk.ID) ([][]byte, error)

// SendFunc uploads a batch of chunks to the remote end.
type SendFunc func(ctx context.Context, chunks []*chunk.Chunk) error

// Stats counts a transfer's work. Byte counts cover chunk payloads
// only (framing overhead is the transport's business).
type Stats struct {
	// ChunksFetched and BytesFetched cover chunks pulled from the
	// remote end; ChunksLocal counts the ones the local store already
	// held, i.e. the fetches deduplication saved.
	ChunksFetched int
	BytesFetched  int64
	ChunksLocal   int
	// ChunksSent and BytesSent cover chunks pushed to the remote end;
	// ChunksSkipped counts the ones negotiation proved already there.
	ChunksSent    int
	BytesSent     int64
	ChunksSkipped int
}

// DefaultPullWindow is the number of fetch batches Pull keeps in
// flight at once.
const DefaultPullWindow = 2

// PullConfig tunes Pull's prefetch pipeline.
type PullConfig struct {
	// Batch caps ids per Fetch request (0 means DefaultFetchBatch).
	Batch int
	// Window is the number of fetch batches kept in flight at once
	// (0 means DefaultPullWindow). A negative Window disables the
	// pipeline entirely and runs the level-synchronous walk — one
	// batch outstanding, a full barrier between tree levels — which
	// PullLevelSync also exposes directly as a baseline.
	Window int
}

func (c PullConfig) batch() int {
	if c.Batch <= 0 {
		return DefaultFetchBatch
	}
	return c.Batch
}

func (c PullConfig) window() int {
	if c.Window == 0 {
		return DefaultPullWindow
	}
	return c.Window
}

// Pull completes the POS-Tree rooted at root in local: it walks the
// tree top-down, resolves index nodes on demand (reading them locally
// when present, fetching them when not), and fetches exactly the
// chunks local is missing. Leaves are fetched but never decoded. Every
// fetched chunk is verified against the id it was requested under
// before it is admitted to local. height is the tree's level count as
// recorded in its chunk reference.
//
// Fetching is pipelined: up to cfg.Window batches are outstanding
// concurrently, and newly discovered ids (children of an index node
// that just arrived) are dispatched as soon as a window slot frees,
// without waiting for the rest of the node's level. On a high-latency
// link this overlaps the per-level round trips that dominate a cold
// read. Workers verify and admit chunks concurrently; discovery and
// dispatch stay on the caller's goroutine. The first error cancels the
// outstanding fetches, and Pull returns only after every worker has
// exited — no goroutines or fetches are leaked, even on
// context cancellation.
//
// Partially-pulled trees (an earlier Pull cancelled mid-way) are
// handled by construction: presence of an index node never implies
// presence of its subtree, because the walk descends into every index
// node — local ones cost a memory read, not a fetch.
func Pull(ctx context.Context, local store.Store, fetch FetchFunc, root chunk.ID, height int, cfg PullConfig) (Stats, error) {
	if cfg.Window < 0 {
		return PullLevelSync(ctx, local, fetch, root, height, cfg.batch())
	}
	var st Stats
	if root.IsNil() {
		return st, nil
	}
	p := &puller{
		local:   local,
		fetch:   fetch,
		batch:   cfg.batch(),
		window:  cfg.window(),
		seen:    map[chunk.ID]bool{root: true},
		results: make(chan pullResult),
		st:      &st,
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := p.admitOrQueue(pullItem{id: root, h: height}); err != nil {
		return st, err
	}
	var firstErr error
	for len(p.queue) > 0 || p.inflight > 0 {
		for firstErr == nil && p.inflight < p.window && len(p.queue) > 0 {
			p.dispatch(cctx)
		}
		if p.inflight == 0 {
			break // firstErr != nil and nothing left to drain
		}
		res := <-p.results
		p.inflight--
		p.st.ChunksFetched += res.fetched
		p.st.BytesFetched += res.bytes
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
				cancel() // abort the rest of the window
			}
			continue
		}
		if firstErr != nil {
			continue // draining; don't expand or dispatch further
		}
		for _, it := range res.items {
			if it.h <= 1 {
				continue
			}
			if err := p.expand(it); err != nil {
				firstErr = err
				cancel()
				break
			}
		}
	}
	return st, firstErr
}

// pullItem is one chunk the walk still owes: its id and its level in
// the tree (leaves are level 1).
type pullItem struct {
	id chunk.ID
	h  int
}

// pullResult is one fetch batch's outcome: the items whose chunks were
// verified and admitted, and the payload bytes that moved.
type pullResult struct {
	items   []pullItem
	fetched int
	bytes   int64
	err     error
}

// puller is Pull's dispatch state. Only fetchWorker goroutines run
// concurrently with the main loop; everything here is owned by the
// main loop, and workers communicate solely over results.
type puller struct {
	local    store.Store
	fetch    FetchFunc
	batch    int
	window   int
	seen     map[chunk.ID]bool
	queue    []pullItem
	inflight int
	results  chan pullResult
	st       *Stats
}

// admitOrQueue routes one newly discovered id: locally held index
// nodes are expanded immediately (a memory read), locally held leaves
// are counted, and missing chunks join the fetch queue. Callers must
// have marked the id seen.
func (p *puller) admitOrQueue(it pullItem) error {
	if !p.local.Has(it.id) {
		p.queue = append(p.queue, it)
		return nil
	}
	p.st.ChunksLocal++
	if it.h <= 1 {
		return nil
	}
	return p.expand(it)
}

// expand reads a locally present index node and routes its unseen
// children. Iterative with an explicit stack: a partially pulled tree
// can hold arbitrarily deep local index paths.
func (p *puller) expand(it pullItem) error {
	stack := []pullItem{it}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c, err := store.GetVerified(p.local, cur.id)
		if err != nil {
			return err
		}
		kids, err := postree.IndexChildIDs(c.Data())
		if err != nil {
			return err
		}
		for _, kid := range kids {
			if p.seen[kid] {
				continue
			}
			p.seen[kid] = true
			child := pullItem{id: kid, h: cur.h - 1}
			if !p.local.Has(kid) {
				p.queue = append(p.queue, child)
				continue
			}
			p.st.ChunksLocal++
			if child.h > 1 {
				stack = append(stack, child)
			}
		}
	}
	return nil
}

// dispatch launches one fetch batch off the front of the queue.
func (p *puller) dispatch(ctx context.Context) {
	n := len(p.queue)
	if n > p.batch {
		n = p.batch
	}
	items := make([]pullItem, n)
	copy(items, p.queue[:n])
	p.queue = p.queue[n:]
	p.inflight++
	go fetchWorker(ctx, p.local, p.fetch, items, p.results)
}

// fetchWorker fetches, verifies, and admits one batch of chunks, then
// reports. It always sends exactly one result.
func fetchWorker(ctx context.Context, local store.Store, fetch FetchFunc, items []pullItem, results chan<- pullResult) {
	res := pullResult{items: items}
	ids := make([]chunk.ID, len(items))
	for i, it := range items {
		ids[i] = it.id
	}
	var st Stats
	res.err = fetchInto(ctx, local, fetch, ids, len(ids), &st)
	res.fetched = st.ChunksFetched
	res.bytes = st.BytesFetched
	results <- res
}

// PullLevelSync is the level-synchronous baseline: one fetch batch
// outstanding at a time and a full barrier between tree levels, so a
// cold read pays at least one round trip per level per batch. Pull
// with a non-negative window supersedes it for real transfers; it
// remains exported as the reference the pipelined walk is benchmarked
// (and property-tested) against.
func PullLevelSync(ctx context.Context, local store.Store, fetch FetchFunc, root chunk.ID, height int, batch int) (Stats, error) {
	var st Stats
	if root.IsNil() {
		return st, nil
	}
	if batch <= 0 {
		batch = DefaultFetchBatch
	}
	level := []chunk.ID{root}
	for h := height; h >= 1 && len(level) > 0; h-- {
		// Fetch the level's missing chunks. Duplicate ids (identical
		// content repeated in the tree) collapse to one fetch.
		var unique, missing []chunk.ID
		seen := make(map[chunk.ID]bool, len(level))
		for _, id := range level {
			if seen[id] {
				continue
			}
			seen[id] = true
			unique = append(unique, id)
			if local.Has(id) {
				st.ChunksLocal++
			} else {
				missing = append(missing, id)
			}
		}
		if err := fetchInto(ctx, local, fetch, missing, batch, &st); err != nil {
			return st, err
		}
		if h == 1 {
			break
		}
		// Expand the deduped set only: a duplicate index node's subtree
		// is already covered by its first occurrence.
		var next []chunk.ID
		for _, id := range unique {
			c, err := store.GetVerified(local, id)
			if err != nil {
				return st, err
			}
			kids, err := postree.IndexChildIDs(c.Data())
			if err != nil {
				return st, err
			}
			next = append(next, kids...)
		}
		level = next
	}
	return st, nil
}

// fetchInto pulls the given ids into local, verifying each chunk
// against the id it was requested under.
func fetchInto(ctx context.Context, local store.Store, fetch FetchFunc, ids []chunk.ID, batch int, st *Stats) error {
	for len(ids) > 0 {
		n := len(ids)
		if n > batch {
			n = batch
		}
		got, err := fetch(ctx, ids[:n])
		if err != nil {
			return err
		}
		if len(got) == 0 || len(got) > n {
			return fmt.Errorf("chunksync: fetch answered %d of %d ids", len(got), n)
		}
		for i, raw := range got {
			if raw == nil {
				return fmt.Errorf("chunksync: chunk %s: %w", ids[i].Short(), store.ErrNotFound)
			}
			c, err := chunk.Decode(raw)
			if err != nil {
				return fmt.Errorf("chunksync: chunk %s: %w", ids[i].Short(), err)
			}
			if c.ID() != ids[i] {
				return fmt.Errorf("chunksync: fetched chunk hashes to %s, requested %s: %w",
					c.ID().Short(), ids[i].Short(), store.ErrCorrupt)
			}
			if _, err := local.Put(c); err != nil {
				return err
			}
			st.ChunksFetched++
			st.BytesFetched += int64(len(raw))
		}
		ids = ids[len(got):]
	}
	return nil
}

// Missing negotiates which of ids the remote end lacks, preserving
// first-occurrence order and collapsing duplicates. batch caps ids per
// Have request (0 means DefaultHaveBatch).
func Missing(ctx context.Context, ids []chunk.ID, have HaveFunc, batch int, st *Stats) ([]chunk.ID, error) {
	if batch <= 0 {
		batch = DefaultHaveBatch
	}
	unique := make([]chunk.ID, 0, len(ids))
	seen := make(map[chunk.ID]bool, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			unique = append(unique, id)
		}
	}
	var missing []chunk.ID
	for len(unique) > 0 {
		n := len(unique)
		if n > batch {
			n = batch
		}
		got, err := have(ctx, unique[:n])
		if err != nil {
			return nil, err
		}
		if len(got) != n {
			return nil, fmt.Errorf("chunksync: have answered %d of %d ids", len(got), n)
		}
		for i, present := range got {
			if present {
				st.ChunksSkipped++
			} else {
				missing = append(missing, unique[i])
			}
		}
		unique = unique[n:]
	}
	return missing, nil
}

// Push uploads the given chunks from src, batched by cumulative
// payload size (maxBytes; 0 means DefaultSendBytes — a batch always
// carries at least one chunk, so a single chunk larger than the target
// still ships alone).
func Push(ctx context.Context, src store.Store, ids []chunk.ID, send SendFunc, maxBytes int, st *Stats) error {
	if maxBytes <= 0 {
		maxBytes = DefaultSendBytes
	}
	var batch []*chunk.Chunk
	var batchBytes int
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := send(ctx, batch); err != nil {
			return err
		}
		for _, c := range batch {
			st.ChunksSent++
			st.BytesSent += int64(c.Size())
		}
		batch, batchBytes = batch[:0], 0
		return nil
	}
	for _, id := range ids {
		c, err := store.GetVerified(src, id)
		if err != nil {
			return err
		}
		if len(batch) > 0 && batchBytes+c.Size() > maxBytes {
			if err := flush(); err != nil {
				return err
			}
		}
		batch = append(batch, c)
		batchBytes += c.Size()
	}
	return flush()
}
