// Package servlet implements the request-execution node of a ForkBase
// deployment (paper §4.1): an access controller in front of the branch
// tables and object manager (the core engine). Each servlet owns a
// disjoint slice of the key space and serializes request execution the
// way the paper's single execution thread does.
package servlet

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"forkbase/internal/core"
	"forkbase/internal/postree"
	"forkbase/internal/store"
)

// Permission is an access level; higher levels include lower ones.
type Permission byte

const (
	// PermNone grants nothing.
	PermNone Permission = iota
	// PermRead grants Get/Track/List operations.
	PermRead
	// PermWrite grants Put/Fork/Merge operations.
	PermWrite
	// PermAdmin additionally grants branch Rename/Remove and ACL edits.
	PermAdmin
)

// ErrAccessDenied is returned when the access controller rejects a
// request before execution.
var ErrAccessDenied = errors.New("servlet: access denied")

// ACL is a branch-based access controller. Rules are granted per
// (user, key, branch); the empty string is a wildcard for key or
// branch. The zero-value ACL denies everything except when Open is set.
type ACL struct {
	mu sync.RWMutex
	// Open disables access control entirely (embedded single-user mode).
	open  bool
	rules map[string]Permission // "user\x00key\x00branch" -> permission
}

// NewACL returns an ACL. open=true grants everyone everything, the
// embedded default.
func NewACL(open bool) *ACL {
	return &ACL{open: open, rules: make(map[string]Permission)}
}

func aclKey(user, key, branch string) string {
	return user + "\x00" + key + "\x00" + branch
}

// IsOpen reports whether the controller admits everything.
func (a *ACL) IsOpen() bool { return a.open }

// Grant gives user permission p on key/branch. Empty key or branch acts
// as a wildcard.
func (a *ACL) Grant(user, key, branch string, p Permission) {
	a.mu.Lock()
	a.rules[aclKey(user, key, branch)] = p
	a.mu.Unlock()
}

// Check reports whether user holds at least permission need on
// key/branch.
func (a *ACL) Check(user, key, branch string, need Permission) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.open {
		return nil
	}
	for _, k := range []string{
		aclKey(user, key, branch),
		aclKey(user, key, ""),
		aclKey(user, "", branch),
		aclKey(user, "", ""),
	} {
		if p, ok := a.rules[k]; ok && p >= need {
			return nil
		}
	}
	return fmt.Errorf("%w: user %q needs %d on %q/%q", ErrAccessDenied, user, need, key, branch)
}

// Servlet executes data-access requests against its engine after
// checking permissions. Execution is serialized through a single worker
// goroutine, mirroring the one-request-execution-thread configuration
// used throughout the paper's evaluation (§6).
type Servlet struct {
	ID  int
	eng *core.Engine
	acl *ACL

	reqs chan func()
	wg   sync.WaitGroup
	once sync.Once
}

// New returns a running servlet over the given chunk store.
func New(id int, s store.Store, cfg postree.Config, acl *ACL) *Servlet {
	if acl == nil {
		acl = NewACL(true)
	}
	sv := &Servlet{
		ID:   id,
		eng:  core.NewEngine(s, cfg),
		acl:  acl,
		reqs: make(chan func(), 256),
	}
	sv.wg.Add(1)
	go sv.loop()
	return sv
}

func (sv *Servlet) loop() {
	defer sv.wg.Done()
	for fn := range sv.reqs {
		fn()
	}
}

// Engine exposes the underlying engine. Mutating calls made directly on
// it bypass the servlet's serialization; use Exec for those.
func (sv *Servlet) Engine() *core.Engine { return sv.eng }

// ACL returns the servlet's access controller.
func (sv *Servlet) ACL() *ACL { return sv.acl }

// Exec runs fn on the servlet's execution thread and waits for it.
func (sv *Servlet) Exec(fn func(eng *core.Engine) error) error {
	done := make(chan error, 1)
	sv.reqs <- func() { done <- fn(sv.eng) }
	return <-done
}

// ExecCtx runs fn on the servlet's execution thread, honouring ctx: a
// context cancelled before fn starts aborts the request (fn never
// runs); once fn is executing it runs to completion, but the caller
// stops waiting and gets ctx.Err().
func (sv *Servlet) ExecCtx(ctx context.Context, fn func(eng *core.Engine) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan error, 1)
	abandoned := make(chan struct{})
	req := func() {
		select {
		case <-abandoned:
			return
		default:
		}
		done <- fn(sv.eng)
	}
	// The enqueue itself honours ctx: a full queue must not strand a
	// cancelled caller.
	select {
	case sv.reqs <- req:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		close(abandoned)
		return ctx.Err()
	}
}

// ExecAsync runs fn on the servlet's execution thread without waiting.
func (sv *Servlet) ExecAsync(fn func(eng *core.Engine)) {
	sv.reqs <- func() { fn(sv.eng) }
}

// QueueDepth returns the number of requests waiting for execution; the
// cluster's re-balancer uses it to spot overloaded servlets (§4.6.1).
func (sv *Servlet) QueueDepth() int { return len(sv.reqs) }

// CheckAccess verifies a permission before a request is executed.
func (sv *Servlet) CheckAccess(user, key, branch string, need Permission) error {
	return sv.acl.Check(user, key, branch, need)
}

// Close stops the execution loop after draining queued requests.
func (sv *Servlet) Close() {
	sv.once.Do(func() { close(sv.reqs) })
	sv.wg.Wait()
}
