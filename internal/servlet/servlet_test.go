package servlet

import (
	"context"
	"errors"
	"sync"
	"testing"

	"forkbase/internal/core"
	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
)

func TestACLWildcardsAndLevels(t *testing.T) {
	acl := NewACL(false)
	acl.Grant("alice", "doc", "master", PermWrite)
	acl.Grant("bob", "doc", "", PermRead)
	acl.Grant("root", "", "", PermAdmin)

	cases := []struct {
		user, key, branch string
		need              Permission
		ok                bool
	}{
		{"alice", "doc", "master", PermWrite, true},
		{"alice", "doc", "master", PermRead, true}, // write implies read
		{"alice", "doc", "dev", PermRead, false},
		{"alice", "other", "master", PermRead, false},
		{"bob", "doc", "anything", PermRead, true},
		{"bob", "doc", "anything", PermWrite, false},
		{"root", "any", "any", PermAdmin, true},
		{"stranger", "doc", "master", PermRead, false},
	}
	for _, tc := range cases {
		err := acl.Check(tc.user, tc.key, tc.branch, tc.need)
		if (err == nil) != tc.ok {
			t.Errorf("Check(%q,%q,%q,%d) = %v, want ok=%v",
				tc.user, tc.key, tc.branch, tc.need, err, tc.ok)
		}
		if err != nil && !errors.Is(err, ErrAccessDenied) {
			t.Errorf("error not ErrAccessDenied: %v", err)
		}
	}
}

func TestOpenACLAllowsAll(t *testing.T) {
	acl := NewACL(true)
	if err := acl.Check("anyone", "k", "b", PermAdmin); err != nil {
		t.Fatal(err)
	}
}

func TestServletSerializesExecution(t *testing.T) {
	sv := New(0, store.NewMemStore(), postree.DefaultConfig(), nil)
	defer sv.Close()

	inFlight := 0
	max := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sv.Exec(func(eng *core.Engine) error {
				mu.Lock()
				inFlight++
				if inFlight > max {
					max = inFlight
				}
				mu.Unlock()
				_, err := eng.Put([]byte("k"), "master", types.String("v"), nil)
				mu.Lock()
				inFlight--
				mu.Unlock()
				return err
			})
		}()
	}
	wg.Wait()
	if max != 1 {
		t.Fatalf("execution not serialized: %d concurrent requests", max)
	}
	var n int
	sv.Exec(func(eng *core.Engine) error {
		hist, err := eng.Track(context.Background(), []byte("k"), "master", 0, 100)
		n = len(hist)
		return err
	})
	if n != 32 {
		t.Fatalf("history %d, want 32", n)
	}
}

func TestServletAccessCheck(t *testing.T) {
	acl := NewACL(false)
	acl.Grant("writer", "k", "master", PermWrite)
	sv := New(0, store.NewMemStore(), postree.DefaultConfig(), acl)
	defer sv.Close()
	if err := sv.CheckAccess("writer", "k", "master", PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := sv.CheckAccess("intruder", "k", "master", PermRead); err == nil {
		t.Fatal("intruder passed access check")
	}
}
