package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WriteProm renders samples in the Prometheus text exposition format
// (version 0.0.4). Samples must already be sorted (Snapshot and
// MergeSamples guarantee it) so that all series of one metric name are
// adjacent and the # TYPE line is emitted exactly once per name.
// Histograms expand into the conventional _bucket/_sum/_count series
// with cumulative bucket counts and an le label per bound.
func WriteProm(w io.Writer, samples []Sample) error {
	prevName := ""
	for _, s := range samples {
		if s.Name != prevName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, promType(s.Kind)); err != nil {
				return err
			}
			prevName = s.Name
		}
		var err error
		switch s.Kind {
		case KindHistogram:
			err = writePromHistogram(w, s)
		default:
			_, err = fmt.Fprintf(w, "%s%s %d\n", s.Name, promLabels(s.Tags, ""), s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func promType(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// promLabels splices a pre-rendered tag string and an extra label into
// one {...} block, or nothing when both are empty.
func promLabels(tags, extra string) string {
	switch {
	case tags == "" && extra == "":
		return ""
	case tags == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + tags + "}"
	default:
		return "{" + tags + "," + extra + "}"
	}
}

func writePromHistogram(w io.Writer, s Sample) error {
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		le := "+Inf"
		if i < NumBuckets-1 {
			le = strconv.FormatInt(BucketBound(i), 10)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, promLabels(s.Tags, `le="`+le+`"`), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", s.Name, promLabels(s.Tags, ""), s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Tags, ""), s.Value)
	return err
}

// Handler returns an http.Handler serving the snapshot produced by fn
// as Prometheus text — the /metrics endpoint behind forkserved's
// -debug-addr listener.
func Handler(fn func() []Sample) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, fn())
	})
}
