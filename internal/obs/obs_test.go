package obs

import (
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestObsCounterConcurrent hammers one counter from many goroutines
// and checks nothing is lost across the shards. Run under -race in CI.
func TestObsCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter lost updates: got %d want %d", got, workers*perWorker)
	}
}

// TestObsHistogramConcurrent runs parallel Observe/Add/Snapshot and
// verifies totals once the writers drain — the registry must tolerate
// snapshots mid-write without locking writers out.
func TestObsHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_ns", "")
	c := r.Counter("test_total", "")
	g := r.Gauge("test_inflight", "")
	const workers, perWorker = 8, 5000

	stop := make(chan struct{})
	var snaps sync.WaitGroup
	for i := 0; i < 4; i++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, s := range r.Snapshot() {
						if s.Value < 0 {
							t.Errorf("negative snapshot value for %s", s.Name)
							return
						}
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(i%1000 + 1))
				c.Add(2)
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	final := r.Snapshot()
	byName := map[string]Sample{}
	for _, s := range final {
		byName[s.Name] = s
	}
	if got := byName["test_total"].Value; got != workers*perWorker*2 {
		t.Errorf("counter: got %d want %d", got, workers*perWorker*2)
	}
	if got := byName["test_inflight"].Value; got != 0 {
		t.Errorf("gauge should settle to 0, got %d", got)
	}
	hs := byName["test_latency_ns"]
	if hs.Value != workers*perWorker {
		t.Errorf("histogram count: got %d want %d", hs.Value, workers*perWorker)
	}
	var bucketSum uint64
	for _, b := range hs.Buckets {
		bucketSum += b
	}
	if int64(bucketSum) != hs.Value {
		t.Errorf("bucket counts %d disagree with observation count %d", bucketSum, hs.Value)
	}
}

// TestObsHistogramBuckets pins the bucket boundary math: each value
// must land in the smallest bucket whose bound admits it.
func TestObsHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, // negative clamps to zero
		{0, 0},
		{1, 0}, // bound of bucket 0 is 2^0 = 1
		{2, 1},
		{3, 2},
		{4, 2}, // 2 < v <= 4
		{5, 3},
		{8, 3},
		{9, 4},
		{1024, 10},
		{1025, 11},
		{int64(time.Millisecond), 20},   // 1e6 ns: 2^19 < 1e6 <= 2^20
		{int64(time.Second), 30},        // 1e9 ns: 2^29 < 1e9 <= 2^30
		{1 << 38, 38},                   // largest finite bucket
		{1<<38 + 1, NumBuckets - 1},     // first overflow value
		{math.MaxInt64, NumBuckets - 1}, // deep overflow
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.v)
		for i := 0; i < NumBuckets; i++ {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if got := h.buckets[i].Load(); got != want {
				t.Errorf("Observe(%d): bucket %d = %d, want value in bucket %d", tc.v, i, got, tc.bucket)
				break
			}
		}
	}
	// Bounds themselves: increasing, last is +Inf sentinel.
	for i := 1; i < NumBuckets-1; i++ {
		if BucketBound(i) != 2*BucketBound(i-1) {
			t.Fatalf("bounds not power-of-two at %d", i)
		}
	}
	if BucketBound(NumBuckets-1) != math.MaxInt64 {
		t.Fatalf("last bound must be the overflow sentinel")
	}
}

// TestObsSnapshotStable checks registration order does not leak into
// snapshots: samples come back sorted by (name, tags) and repeated
// snapshots of a quiet registry are identical.
func TestObsSnapshotStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "").Add(3)
	r.Counter("aaa_total", `op="put"`).Add(1)
	r.Counter("aaa_total", `op="get"`).Add(2)
	r.Gauge("mmm", "").Set(7)
	r.Histogram("lat_ns", "").Observe(100)

	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1) != 5 || len(s2) != 5 {
		t.Fatalf("want 5 samples, got %d / %d", len(s1), len(s2))
	}
	wantOrder := []string{"aaa_total", "aaa_total", "lat_ns", "mmm", "zzz_total"}
	for i, s := range s1 {
		if s.Name != wantOrder[i] {
			t.Fatalf("order: got %v at %d, want %v", s.Name, i, wantOrder[i])
		}
	}
	if s1[0].Tags != `op="get"` || s1[1].Tags != `op="put"` {
		t.Fatalf("tags not sorted within a name: %q, %q", s1[0].Tags, s1[1].Tags)
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || s1[i].Tags != s2[i].Tags || s1[i].Value != s2[i].Value {
			t.Fatalf("snapshots of a quiet registry differ at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	// Same (name, tags, kind) resolves to the same instrument.
	if r.Counter("zzz_total", "").Value() != 3 {
		t.Fatal("re-registration did not return the existing counter")
	}
}

// TestObsQuantile checks rank estimation against known distributions.
func TestObsQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations (bucket bound 1024), 10 slow (bound 65536).
	for i := 0; i < 90; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(60000)
	}
	var m metric
	m.h = &h
	m.kind = KindHistogram
	s := m.sample()
	if q := s.Quantile(0.5); q != 1024 {
		t.Errorf("p50: got %d want 1024", q)
	}
	if q := s.Quantile(0.99); q != 65536 {
		t.Errorf("p99: got %d want 65536", q)
	}
	if q := s.Quantile(1.0); q != 65536 {
		t.Errorf("p100: got %d want 65536", q)
	}
	if got := s.Mean(); math.Abs(got-6900) > 1 {
		t.Errorf("mean: got %v want 6900", got)
	}
	if (Sample{}).Quantile(0.5) != 0 {
		t.Error("empty sample must report 0")
	}
}

// TestObsAllocFree pins the hot-path instruments at zero allocations —
// the contract that lets instrumentation stay on by default without
// moving the perf ratchet or the wire alloc pins.
func TestObsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_ns", "")
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1); g.Add(-1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
	start := time.Now()
	if n := testing.AllocsPerRun(1000, func() { h.ObserveSince(start) }); n != 0 {
		t.Errorf("Histogram.ObserveSince allocates %v/op, want 0", n)
	}
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+$`)

// TestObsPromText checks the exported text parses cleanly: every line
// is a TYPE comment or a well-formed sample, TYPE precedes its
// samples exactly once, histogram buckets are cumulative and end at
// +Inf with the series count.
func TestObsPromText(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", `op="get"`).Add(5)
	r.Counter("req_total", `op="put"`).Add(7)
	r.Gauge("inflight", "").Set(2)
	h := r.Histogram("lat_ns", `op="get"`)
	h.Observe(3)
	h.Observe(900)
	h.Observe(1 << 50)

	var b strings.Builder
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	typesSeen := map[string]int{}
	var lastName string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typesSeen[parts[2]]++
			lastName = parts[2]
			continue
		}
		cleaned := strings.Replace(line, `le="+Inf"`, `le="9"`, 1) // regexp keeps to integers
		if !promLine.MatchString(cleaned) {
			t.Fatalf("unparsable sample line: %q", line)
		}
		if !strings.HasPrefix(line, lastName) {
			t.Fatalf("sample %q not under its TYPE header %q", line, lastName)
		}
	}
	for name, n := range typesSeen {
		if n != 1 {
			t.Errorf("TYPE for %s emitted %d times", name, n)
		}
	}
	if len(typesSeen) != 3 {
		t.Errorf("want 3 TYPE lines, got %v", typesSeen)
	}
	// Cumulative buckets: the +Inf bucket must equal the count.
	if !strings.Contains(out, `lat_ns_bucket{op="get",le="+Inf"} 3`) {
		t.Errorf("missing cumulative +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `lat_ns_bucket{op="get",le="4"} 1`) {
		t.Errorf("missing le=4 bucket with cumulative count 1:\n%s", out)
	}
	if !strings.Contains(out, `lat_ns_count{op="get"} 3`) || !strings.Contains(out, "lat_ns_sum{") {
		t.Errorf("missing _count/_sum series:\n%s", out)
	}
}

// TestObsMergeSamples checks merged groups come back fully sorted.
func TestObsMergeSamples(t *testing.T) {
	a := []Sample{{Name: "z"}, {Name: "b", Tags: `x="2"`}}
	b := []Sample{{Name: "b", Tags: `x="1"`}, {Name: "a"}}
	SortSamples(a)
	SortSamples(b)
	got := MergeSamples(a, b)
	want := []string{"a|", `b|x="1"`, `b|x="2"`, "z|"}
	for i, s := range got {
		if s.Name+"|"+s.Tags != want[i] {
			t.Fatalf("merge order at %d: got %s|%s want %s", i, s.Name, s.Tags, want[i])
		}
	}
}
