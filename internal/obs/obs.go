// Package obs is ForkBase's observability spine: counters, gauges and
// latency histograms cheap enough to leave on in the request hot path,
// plus a Registry that snapshots everything into a stable, sorted
// sample list for export (wire op, Prometheus text, CLI rendering).
//
// The package is stdlib-only and allocation-free where it matters:
// Counter.Add, Gauge.Add/Set and Histogram.Observe perform only atomic
// operations — no locks, no allocations, no time formatting — which is
// what lets the server instrument every request without moving the
// perf-ratchet baselines. Snapshotting is the slow path and may
// allocate freely.
//
// Metrics are identified by a name plus an optional pre-rendered tag
// string (`op="get"` form, no braces). Name and tags are kept separate
// so the Prometheus writer can splice histogram suffixes (_bucket,
// _sum, _count) and the le label into the right positions.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// --- counter ----------------------------------------------------------

// counterShards is the number of stripes a Counter spreads its value
// across. Must be a power of two.
const counterShards = 16

// counterShard pads each stripe to its own cache line so concurrent
// writers on different shards never false-share.
type counterShard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing (by convention) sharded
// counter. Add is lock-free, allocation-free and safe for any number
// of concurrent writers; Value folds the shards and may be slightly
// stale relative to in-flight Adds, which is fine for telemetry.
type Counter struct {
	shards [counterShards]counterShard
}

// shardIndex picks a stripe from the address of a stack variable:
// goroutine stacks live at least 2 KiB apart, so shifting off the low
// bits spreads concurrent goroutines across shards. The runtime
// exports no goroutine or P identity, and this costs nothing — the
// uintptr conversion is one-way, so the pointer never escapes.
func shardIndex() int {
	var x byte
	return int(uintptr(unsafe.Pointer(&x))>>11) & (counterShards - 1)
}

// Add increments the counter by n. Zero allocations.
func (c *Counter) Add(n int64) { c.shards[shardIndex()].v.Add(n) }

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the folded total.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// --- gauge ------------------------------------------------------------

// Gauge is an instantaneous value (in-flight requests, queue depth).
// Unsharded: gauges move both directions, so a single atomic keeps
// Value exact, and gauge updates are rare enough not to contend.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative to decrement). Zero allocations.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value. Zero allocations.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// --- histogram --------------------------------------------------------

// NumBuckets is the fixed bucket count of every Histogram. Bucket i
// (except the last) holds observations v with BucketBound(i-1) < v <=
// BucketBound(i); the last bucket is the +Inf overflow. With
// power-of-two bounds that spans 1ns..2^38ns (~4.6 min) when observing
// durations in nanoseconds — wide enough for any request latency while
// keeping the whole histogram in five cache lines.
const NumBuckets = 40

// Histogram is a fixed-bucket histogram with power-of-two bounds.
// Observe is lock-free and allocation-free: one atomic add into the
// bucket plus one into the running sum.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64
}

// bucketIndex maps a value to its bucket: the smallest i with
// v <= BucketBound(i). bits.Len64(v-1) computes ceil(log2(v)) without
// a loop or float math.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Observe records one value (durations in nanoseconds by convention;
// any non-negative magnitude works — batch sizes, byte counts).
// Negative values clamp to zero. Zero allocations.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// BucketBound returns the inclusive upper bound of bucket i: 2^i for
// all but the last bucket, which is unbounded (math.MaxInt64).
func BucketBound(i int) int64 {
	if i >= NumBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// --- samples ----------------------------------------------------------

// Kind tags what a Sample's fields mean.
type Kind uint8

const (
	// KindCounter is a monotonically increasing total in Value.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value in Value.
	KindGauge
	// KindHistogram carries the observation count in Value, the value
	// sum in Sum and per-bucket (non-cumulative) counts in Buckets.
	KindHistogram
)

// Sample is one metric's state at snapshot time — a plain value
// struct that crosses the wire and feeds every renderer.
type Sample struct {
	Name    string
	Tags    string // `op="get"` form, no braces; "" when untagged
	Kind    Kind
	Value   int64    // counter/gauge value; histogram observation count
	Sum     int64    // histogram only: sum of observed values
	Buckets []uint64 // histogram only: NumBuckets per-bucket counts
}

// Quantile estimates the q-quantile (q in [0,1]) of a histogram
// sample as the upper bound of the bucket containing that rank —
// an overestimate by at most 2x, which is the honest resolution of
// power-of-two buckets. Returns 0 for empty or non-histogram samples;
// math.MaxInt64 means the rank fell in the overflow bucket.
func (s Sample) Quantile(q float64) int64 {
	if s.Kind != KindHistogram || s.Value <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Value)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// Mean returns the average observed value of a histogram sample.
func (s Sample) Mean() float64 {
	if s.Kind != KindHistogram || s.Value <= 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Value)
}

// SortSamples orders samples by name, then tags — the stable order
// every Snapshot returns and every renderer can rely on.
func SortSamples(s []Sample) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Name != s[j].Name {
			return s[i].Name < s[j].Name
		}
		return s[i].Tags < s[j].Tags
	})
}

// MergeSamples folds several snapshot groups (e.g. a server's registry
// plus its backend DB's) into one sorted list.
func MergeSamples(groups ...[]Sample) []Sample {
	var n int
	for _, g := range groups {
		n += len(g)
	}
	out := make([]Sample, 0, n)
	for _, g := range groups {
		out = append(out, g...)
	}
	SortSamples(out)
	return out
}

// --- registry ---------------------------------------------------------

// metric is one registered instrument. Exactly one of c/g/h/fn is set.
type metric struct {
	name, tags string
	kind       Kind
	c          *Counter
	g          *Gauge
	h          *Histogram
	fn         func() int64 // sampled counter/gauge (queue depth, store stats)
}

func (m *metric) sample() Sample {
	s := Sample{Name: m.name, Tags: m.tags, Kind: m.kind}
	switch {
	case m.c != nil:
		s.Value = m.c.Value()
	case m.g != nil:
		s.Value = m.g.Value()
	case m.h != nil:
		s.Buckets = make([]uint64, NumBuckets)
		var count uint64
		for i := range m.h.buckets {
			b := m.h.buckets[i].Load()
			s.Buckets[i] = b
			count += b
		}
		s.Value = int64(count)
		s.Sum = m.h.sum.Load()
	case m.fn != nil:
		s.Value = m.fn()
	}
	return s
}

// Registry owns a set of metrics and snapshots them. Registration
// takes a lock and may allocate — do it at construction time, never
// per request; instruments are meant to be resolved once and held.
// Registering the same (name, tags, kind) again returns the existing
// instrument, so independent components can share a metric safely.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
	list  []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// lookup finds or adds the metric for (name, tags). A kind collision
// on the same key is a programming error worth failing loudly on.
func (r *Registry) lookup(name, tags string, kind Kind) (*metric, bool) {
	key := name + "\x00" + tags
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic("obs: metric " + name + " re-registered with a different kind")
		}
		return m, true
	}
	m := &metric{name: name, tags: tags, kind: kind}
	r.byKey[key] = m
	r.list = append(r.list, m)
	return m, false
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, tags string) *Counter {
	m, existed := r.lookup(name, tags, KindCounter)
	if !existed {
		m.c = &Counter{}
	}
	if m.c == nil {
		panic("obs: metric " + name + " already registered as a sampled func")
	}
	return m.c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, tags string) *Gauge {
	m, existed := r.lookup(name, tags, KindGauge)
	if !existed {
		m.g = &Gauge{}
	}
	if m.g == nil {
		panic("obs: metric " + name + " already registered as a sampled func")
	}
	return m.g
}

// Histogram registers (or finds) a histogram.
func (r *Registry) Histogram(name, tags string) *Histogram {
	m, _ := r.lookup(name, tags, KindHistogram)
	if m.h == nil {
		m.h = &Histogram{}
	}
	return m.h
}

// CounterFunc registers a counter whose value is sampled from fn at
// snapshot time — for totals an existing subsystem already tracks
// (store cache hits), re-homed here instead of duplicated.
func (r *Registry) CounterFunc(name, tags string, fn func() int64) {
	m, _ := r.lookup(name, tags, KindCounter)
	m.fn = fn
}

// GaugeFunc registers a gauge sampled from fn at snapshot time (e.g.
// worker-pool queue depth from len(chan)).
func (r *Registry) GaugeFunc(name, tags string, fn func() int64) {
	m, _ := r.lookup(name, tags, KindGauge)
	m.fn = fn
}

// Snapshot reads every metric and returns samples sorted by name then
// tags. Counters and histograms are read with atomic loads while
// writers proceed: each individual value is consistent, the set as a
// whole is not a point-in-time cut — the usual monitoring contract.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	ms := make([]*metric, len(r.list))
	copy(ms, r.list)
	r.mu.Unlock()
	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.sample())
	}
	SortSamples(out)
	return out
}
