package store

import (
	"fmt"
	"sync"

	"forkbase/internal/chunk"
)

// MemStore is an in-memory chunk store, the default for embedded use and
// for tests. The zero value is not usable; call NewMemStore.
type MemStore struct {
	mu     sync.RWMutex
	chunks map[chunk.ID]*chunk.Chunk
	stats  Stats

	// GC window state; see Collectable.
	gcDepth   int
	protected map[chunk.ID]struct{}
}

// NewMemStore returns an empty in-memory chunk store.
func NewMemStore() *MemStore {
	return &MemStore{chunks: make(map[chunk.ID]*chunk.Chunk)}
}

// Put implements Store.
func (m *MemStore) Put(c *chunk.Chunk) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Puts++
	if m.gcDepth > 0 {
		// Shield the cid — fresh or deduplicated — from a concurrent
		// sweep: the marker cannot know about writes racing with it.
		m.protected[c.ID()] = struct{}{}
	}
	if _, ok := m.chunks[c.ID()]; ok {
		m.stats.Dups++
		m.stats.DupBytes += int64(c.Size())
		return true, nil
	}
	m.chunks[c.ID()] = c
	m.stats.Chunks++
	m.stats.Bytes += int64(c.Size())
	return false, nil
}

// Get implements Store.
func (m *MemStore) Get(id chunk.ID) (*chunk.Chunk, error) {
	m.mu.Lock()
	c, ok := m.chunks[id]
	m.stats.Gets++
	if ok {
		m.stats.ReadBytes += int64(c.Size())
	}
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return c, nil
}

// Has implements Store.
func (m *MemStore) Has(id chunk.ID) bool {
	m.mu.RLock()
	_, ok := m.chunks[id]
	m.mu.RUnlock()
	return ok
}

// Stats implements Store.
func (m *MemStore) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// BeginGC implements Collectable.
func (m *MemStore) BeginGC() {
	m.mu.Lock()
	if m.gcDepth == 0 {
		m.protected = make(map[chunk.ID]struct{})
	}
	m.gcDepth++
	m.mu.Unlock()
}

// EndGC implements Collectable.
func (m *MemStore) EndGC() {
	m.mu.Lock()
	if m.gcDepth--; m.gcDepth <= 0 {
		m.gcDepth = 0
		m.protected = nil
	}
	m.mu.Unlock()
}

// Sweep implements Collectable: chunks neither live nor written during
// the GC window are dropped. There is no physical layout to compact,
// so threshold is ignored and freed bytes return to the heap directly.
func (m *MemStore) Sweep(live func(chunk.ID) bool, threshold float64) (GCStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.gcDepth == 0 {
		return GCStats{}, fmt.Errorf("store: Sweep outside a BeginGC window")
	}
	var stats GCStats
	for id, c := range m.chunks {
		if live(id) {
			continue
		}
		if _, ok := m.protected[id]; ok {
			continue
		}
		delete(m.chunks, id)
		m.stats.Chunks--
		m.stats.Bytes -= int64(c.Size())
		stats.Reclaimed++
		stats.ReclaimedBytes += int64(c.Size())
	}
	return stats, nil
}
