package store

import (
	"sync"

	"forkbase/internal/chunk"
)

// MemStore is an in-memory chunk store, the default for embedded use and
// for tests. The zero value is not usable; call NewMemStore.
type MemStore struct {
	mu     sync.RWMutex
	chunks map[chunk.ID]*chunk.Chunk
	stats  Stats
}

// NewMemStore returns an empty in-memory chunk store.
func NewMemStore() *MemStore {
	return &MemStore{chunks: make(map[chunk.ID]*chunk.Chunk)}
}

// Put implements Store.
func (m *MemStore) Put(c *chunk.Chunk) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Puts++
	if _, ok := m.chunks[c.ID()]; ok {
		m.stats.Dups++
		m.stats.DupBytes += int64(c.Size())
		return true, nil
	}
	m.chunks[c.ID()] = c
	m.stats.Chunks++
	m.stats.Bytes += int64(c.Size())
	return false, nil
}

// Get implements Store.
func (m *MemStore) Get(id chunk.ID) (*chunk.Chunk, error) {
	m.mu.Lock()
	c, ok := m.chunks[id]
	m.stats.Gets++
	if ok {
		m.stats.ReadBytes += int64(c.Size())
	}
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return c, nil
}

// Has implements Store.
func (m *MemStore) Has(id chunk.ID) bool {
	m.mu.RLock()
	_, ok := m.chunks[id]
	m.mu.RUnlock()
	return ok
}

// Stats implements Store.
func (m *MemStore) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// Close implements Store.
func (m *MemStore) Close() error { return nil }
