package store

import (
	"errors"
	"fmt"

	"forkbase/internal/chunk"
)

// Pool federates several chunk-storage instances into one logical store,
// the "large pool of storage accessible by any remote servlet" of §4.1.
// Chunks are placed by cid (the second layer of the two-layer
// partitioning scheme of §4.6) and optionally replicated onto the next
// k-1 instances for durability (§4.4).
type Pool struct {
	members  []Store
	replicas int
}

// NewPool builds a pool over members with the given replication factor
// (clamped to [1, len(members)]).
func NewPool(members []Store, replicas int) *Pool {
	if len(members) == 0 {
		panic("store: empty pool")
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(members) {
		replicas = len(members)
	}
	return &Pool{members: members, replicas: replicas}
}

// home returns the index of the member responsible for id. Because cids
// are cryptographic hashes, placement is uniform even under severely
// skewed key workloads (§4.6).
func (p *Pool) home(id chunk.ID) int {
	v := uint64(id[24]) | uint64(id[25])<<8 | uint64(id[26])<<16 | uint64(id[27])<<24 |
		uint64(id[28])<<32 | uint64(id[29])<<40 | uint64(id[30])<<48 | uint64(id[31])<<56
	return int(v % uint64(len(p.members)))
}

// Home exposes the placement decision for instrumentation (Fig 15).
func (p *Pool) Home(id chunk.ID) int { return p.home(id) }

// Member returns the i-th underlying store.
func (p *Pool) Member(i int) Store { return p.members[i] }

// Members returns the number of underlying stores.
func (p *Pool) Members() int { return len(p.members) }

// Put implements Store, writing the chunk to its home member and its
// replicas. dup reports deduplication at the home member.
func (p *Pool) Put(c *chunk.Chunk) (bool, error) {
	h := p.home(c.ID())
	dup, err := p.members[h].Put(c)
	if err != nil {
		return false, err
	}
	for i := 1; i < p.replicas; i++ {
		if _, err := p.members[(h+i)%len(p.members)].Put(c); err != nil {
			return dup, fmt.Errorf("store: replica %d: %w", i, err)
		}
	}
	return dup, nil
}

// Get implements Store, preferring the home member and falling over to
// replicas. Any failure at the home member — not just a missing chunk —
// falls through to the replicas; that tolerance for a corrupt or
// erroring member is what the replication factor buys. Only when every
// replica fails is an error surfaced, preferring the first real fault
// over ErrNotFound.
func (p *Pool) Get(id chunk.ID) (*chunk.Chunk, error) {
	h := p.home(id)
	var firstErr error
	for i := 0; i < p.replicas; i++ {
		c, err := p.members[(h+i)%len(p.members)].Get(id)
		if err == nil {
			return c, nil
		}
		if !errors.Is(err, ErrNotFound) && firstErr == nil {
			firstErr = fmt.Errorf("store: pool member %d: %w", (h+i)%len(p.members), err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, ErrNotFound
}

// Has implements Store.
func (p *Pool) Has(id chunk.ID) bool {
	h := p.home(id)
	for i := 0; i < p.replicas; i++ {
		if p.members[(h+i)%len(p.members)].Has(id) {
			return true
		}
	}
	return false
}

// Stats implements Store by summing member stats.
func (p *Pool) Stats() Stats {
	var out Stats
	for _, m := range p.members {
		out.Add(m.Stats())
	}
	return out
}

// BeginGC implements Collectable by opening the protection window on
// every collectable member; a non-collectable member is skipped here
// and makes Sweep fail, so the window never half-opens silently.
func (p *Pool) BeginGC() {
	for _, m := range p.members {
		if col, _, ok := AsCollectable(m); ok {
			col.BeginGC()
		}
	}
}

// EndGC implements Collectable.
func (p *Pool) EndGC() {
	for _, m := range p.members {
		if col, _, ok := AsCollectable(m); ok {
			col.EndGC()
		}
	}
}

// Sweep implements Collectable by sweeping every member with the same
// live set. Replicas hold copies of the same cids, so sweeping each
// member against one shared mark keeps the replica set consistent: a
// chunk is either retained on all members that hold it or reclaimed
// from all of them.
func (p *Pool) Sweep(live func(chunk.ID) bool, threshold float64) (GCStats, error) {
	var total GCStats
	for i, m := range p.members {
		col, caches, ok := AsCollectable(m)
		if !ok {
			return total, fmt.Errorf("store: pool member %d: %w", i, ErrNotCollectable)
		}
		s, err := col.Sweep(live, threshold)
		total.Add(s)
		if err != nil {
			return total, fmt.Errorf("store: pool member %d: %w", i, err)
		}
		for _, ca := range caches {
			ca.DropDead(live)
		}
	}
	return total, nil
}

// Close implements Store.
func (p *Pool) Close() error {
	var first error
	for _, m := range p.members {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
