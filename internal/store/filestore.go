package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"forkbase/internal/chunk"
)

// FileStore is a log-structured persistent chunk store (§4.4). Chunks are
// appended to segment files; because chunks are immutable there is no
// update-in-place and no garbage to compact. Consecutively generated
// chunks of a POS-Tree land next to each other in the log, which makes
// their retrieval sequential.
//
// Record layout: crc32(body) | uint32 len(body) | body, where body is the
// serialized chunk (type byte + payload), all integers little-endian.
//
// Reads run concurrently: the index lookup takes only a read lock,
// record bytes are fetched with ReadAt on a per-segment read handle
// (records are immutable once written, so no lock covers the I/O), and
// the stored crc32 is re-verified on every Get so a corrupting disk or
// filesystem surfaces as ErrCorrupt instead of silently decoded bytes.
// Only a read that lands in the not-yet-flushed tail of the active
// segment takes the write lock, to flush the buffered writer first.
type FileStore struct {
	mu      sync.RWMutex
	dir     string
	index   map[chunk.ID]location
	active  *os.File
	w       *bufio.Writer
	seg     int   // active segment number
	off     int64 // next write offset in the active segment
	flushed int64 // bytes of the active segment visible to ReadAt
	maxSeg  int64
	sync    bool
	stats   Stats

	rmu     sync.RWMutex // guards readers; never held with mu
	readers map[int]*os.File

	gets      atomic.Int64 // stats.Gets, updated outside mu
	readBytes atomic.Int64 // stats.ReadBytes, updated outside mu
}

type location struct {
	seg int
	off int64
	n   int // body length
}

const recordHeader = 8 // crc32 + len

// FileStoreOptions configures a FileStore.
type FileStoreOptions struct {
	// SegmentSize rotates the log when the active segment exceeds this
	// many bytes. Default 64 MiB.
	SegmentSize int64
	// Sync forces an fsync after every Put. Default false (flush on
	// Close), mirroring the paper's throughput-oriented configuration.
	Sync bool
}

// OpenFileStore opens (creating if necessary) a log-structured store in
// dir, replaying existing segments to rebuild the cid index. A torn tail
// record in the newest segment is tolerated and truncated away.
func OpenFileStore(dir string, opts FileStoreOptions) (*FileStore, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fs := &FileStore{
		dir:     dir,
		index:   make(map[chunk.ID]location),
		maxSeg:  opts.SegmentSize,
		sync:    opts.Sync,
		readers: make(map[int]*os.File),
	}
	if err := fs.recover(); err != nil {
		return nil, err
	}
	return fs, nil
}

func segName(dir string, seg int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%06d.log", seg))
}

func (fs *FileStore) recover() error {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.log", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	for i, seg := range segs {
		valid, err := fs.replaySegment(seg)
		if err != nil {
			return err
		}
		last := i == len(segs)-1
		if last {
			fs.seg = seg
			fs.off = valid
			// Drop a torn tail so the append point is clean.
			if err := os.Truncate(segName(fs.dir, seg), valid); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
	}
	f, err := os.OpenFile(segName(fs.dir, fs.seg), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(fs.off, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	fs.active = f
	fs.w = bufio.NewWriterSize(f, 1<<20)
	fs.flushed = fs.off // everything replayed is on disk
	return nil
}

// replaySegment scans one segment, indexing every intact record, and
// returns the offset just past the last intact record.
func (fs *FileStore) replaySegment(seg int) (int64, error) {
	f, err := os.Open(segName(fs.dir, seg))
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	hdr := make([]byte, recordHeader)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		crc := binary.LittleEndian.Uint32(hdr[0:4])
		n := binary.LittleEndian.Uint32(hdr[4:8])
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return off, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != crc {
			return off, nil // corrupt tail
		}
		c, err := chunk.Decode(body)
		if err != nil {
			return off, nil
		}
		if _, ok := fs.index[c.ID()]; !ok {
			fs.index[c.ID()] = location{seg: seg, off: off + recordHeader, n: int(n)}
			fs.stats.Chunks++
			fs.stats.Bytes += int64(c.Size())
		}
		off += recordHeader + int64(n)
	}
}

// Put implements Store.
func (fs *FileStore) Put(c *chunk.Chunk) (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.Puts++
	if _, ok := fs.index[c.ID()]; ok {
		fs.stats.Dups++
		fs.stats.DupBytes += int64(c.Size())
		return true, nil
	}
	body := c.Bytes()
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(body)))
	if _, err := fs.w.Write(hdr[:]); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	if _, err := fs.w.Write(body); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	fs.index[c.ID()] = location{seg: fs.seg, off: fs.off + recordHeader, n: len(body)}
	fs.off += recordHeader + int64(len(body))
	fs.stats.Chunks++
	fs.stats.Bytes += int64(c.Size())
	if fs.sync {
		if err := fs.flushLocked(); err != nil {
			return false, err
		}
	}
	if fs.off >= fs.maxSeg {
		if err := fs.rotateLocked(); err != nil {
			return false, err
		}
	}
	return false, nil
}

func (fs *FileStore) flushLocked() error {
	if err := fs.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fs.flushed = fs.off
	if fs.sync {
		if err := fs.active.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

func (fs *FileStore) rotateLocked() error {
	if err := fs.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := fs.active.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fs.seg++
	fs.off = 0
	fs.flushed = 0
	f, err := os.OpenFile(segName(fs.dir, fs.seg), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fs.active = f
	fs.w = bufio.NewWriterSize(f, 1<<20)
	return nil
}

// Get implements Store. The stored crc32 is re-verified against the
// body, so a flipped bit on disk is reported as ErrCorrupt (with the
// segment and offset of the damaged record) instead of being decoded.
func (fs *FileStore) Get(id chunk.ID) (*chunk.Chunk, error) {
	fs.gets.Add(1)
	fs.mu.RLock()
	loc, ok := fs.index[id]
	seg, flushed := fs.seg, fs.flushed
	fs.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	// A read in the unflushed tail of the active segment must push the
	// buffered writes to the file first; everything else reads without
	// the write lock, since committed records are immutable.
	if loc.seg == seg && loc.off+int64(loc.n) > flushed {
		fs.mu.Lock()
		if loc.seg == fs.seg && loc.off+int64(loc.n) > fs.flushed {
			if err := fs.w.Flush(); err != nil {
				fs.mu.Unlock()
				return nil, fmt.Errorf("store: %w", err)
			}
			fs.flushed = fs.off
		}
		fs.mu.Unlock()
	}
	r, err := fs.reader(loc.seg)
	if err != nil {
		return nil, err
	}
	rec := make([]byte, recordHeader+loc.n)
	if _, err := r.ReadAt(rec, loc.off-recordHeader); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fs.readBytes.Add(int64(loc.n))
	body := rec[recordHeader:]
	if crc := binary.LittleEndian.Uint32(rec[0:4]); crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("%w: crc mismatch for %s at seg %d offset %d",
			ErrCorrupt, id.Short(), loc.seg, loc.off)
	}
	c, err := chunk.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %s at seg %d offset %d: %v",
			ErrCorrupt, id.Short(), loc.seg, loc.off, err)
	}
	return c, nil
}

// reader returns (opening on first use) the shared read handle for a
// segment. Handles are only ever ReadAt, so one per segment is enough.
func (fs *FileStore) reader(seg int) (*os.File, error) {
	fs.rmu.RLock()
	f, ok := fs.readers[seg]
	fs.rmu.RUnlock()
	if ok {
		return f, nil
	}
	fs.rmu.Lock()
	defer fs.rmu.Unlock()
	if f, ok := fs.readers[seg]; ok {
		return f, nil
	}
	f, err := os.Open(segName(fs.dir, seg))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fs.readers[seg] = f
	return f, nil
}

// Has implements Store.
func (fs *FileStore) Has(id chunk.ID) bool {
	fs.mu.RLock()
	_, ok := fs.index[id]
	fs.mu.RUnlock()
	return ok
}

// Stats implements Store.
func (fs *FileStore) Stats() Stats {
	fs.mu.RLock()
	s := fs.stats
	fs.mu.RUnlock()
	s.Gets = fs.gets.Load()
	s.ReadBytes = fs.readBytes.Load()
	return s
}

// Flush forces buffered records to the operating system.
func (fs *FileStore) Flush() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.w.Flush(); err != nil {
		return err
	}
	fs.flushed = fs.off
	return nil
}

// Close flushes and closes all segment files.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	err := fs.w.Flush()
	if err != nil {
		err = fmt.Errorf("store: %w", err)
	}
	if cerr := fs.active.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("store: %w", cerr)
	}
	fs.mu.Unlock()
	fs.rmu.Lock()
	for _, f := range fs.readers {
		f.Close()
	}
	fs.readers = make(map[int]*os.File)
	fs.rmu.Unlock()
	return err
}
