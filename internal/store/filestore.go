package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"forkbase/internal/chunk"
)

// FileStore is a log-structured persistent chunk store (§4.4). Chunks are
// appended to segment files; there is no update-in-place, and garbage
// appears only when a collection (Sweep) declares chunks unreachable.
// Consecutively generated chunks of a POS-Tree land next to each other
// in the log, which makes their retrieval sequential.
//
// Record layout: crc32(body) | uint32 len(body) | body, where body is the
// serialized chunk (type byte + payload), all integers little-endian.
//
// Reads run concurrently: the index lookup takes only a read lock,
// record bytes are fetched with ReadAt on a per-segment read handle
// (records are immutable once written, so no lock covers the I/O), and
// the stored crc32 is re-verified on every Get so a corrupting disk or
// filesystem surfaces as ErrCorrupt instead of silently decoded bytes.
// Only a read that lands in the not-yet-flushed tail of the active
// segment takes the write lock, to flush the buffered writer first.
type FileStore struct {
	mu      sync.RWMutex
	dir     string
	index   map[chunk.ID]location
	active  *os.File
	w       *bufio.Writer
	seg     int   // active segment number
	off     int64 // next write offset in the active segment
	flushed int64 // bytes of the active segment visible to ReadAt
	maxSeg  int64
	sync    bool
	stats   Stats

	// rmu guards readers. Lock order: mu may be held when taking rmu
	// (compaction's under-lock record fetch); never the reverse.
	rmu     sync.RWMutex
	readers map[int]*os.File

	gets      atomic.Int64 // stats.Gets, updated outside mu
	readBytes atomic.Int64 // stats.ReadBytes, updated outside mu

	// GC state, guarded by mu. While gcDepth > 0 every Put (fresh or
	// deduplicated) records its cid in protected, shielding it from a
	// concurrent Sweep; see Collectable.
	gcDepth   int
	protected map[chunk.ID]struct{}
	sweeping  bool

	// crashHook, when set (crash-consistency tests only), is invoked at
	// named points of a Sweep so the harness can snapshot the on-disk
	// state a crash at that moment would leave behind. Called without
	// fs.mu held.
	crashHook func(event string, seg int)
}

type location struct {
	seg int
	off int64
	n   int // body length
}

const recordHeader = 8 // crc32 + len

// FileStoreOptions configures a FileStore.
type FileStoreOptions struct {
	// SegmentSize rotates the log when the active segment exceeds this
	// many bytes. Default 64 MiB.
	SegmentSize int64
	// Sync forces an fsync after every Put. Default false (flush on
	// Close), mirroring the paper's throughput-oriented configuration.
	Sync bool
}

// OpenFileStore opens (creating if necessary) a log-structured store in
// dir, replaying existing segments to rebuild the cid index. A torn tail
// record in the newest segment is tolerated and truncated away.
func OpenFileStore(dir string, opts FileStoreOptions) (*FileStore, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fs := &FileStore{
		dir:     dir,
		index:   make(map[chunk.ID]location),
		maxSeg:  opts.SegmentSize,
		sync:    opts.Sync,
		readers: make(map[int]*os.File),
	}
	if err := fs.recover(); err != nil {
		return nil, err
	}
	return fs, nil
}

func segName(dir string, seg int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%06d.log", seg))
}

func (fs *FileStore) recover() error {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.log", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	for i, seg := range segs {
		valid, err := fs.replaySegment(seg)
		if err != nil {
			return err
		}
		last := i == len(segs)-1
		if last {
			fs.seg = seg
			fs.off = valid
			// Drop a torn tail so the append point is clean.
			if err := os.Truncate(segName(fs.dir, seg), valid); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
	}
	f, err := os.OpenFile(segName(fs.dir, fs.seg), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(fs.off, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	fs.active = f
	fs.w = bufio.NewWriterSize(f, 1<<20)
	fs.flushed = fs.off // everything replayed is on disk
	return nil
}

// replaySegment scans one segment, indexing every intact record, and
// returns the offset just past the last intact record.
func (fs *FileStore) replaySegment(seg int) (int64, error) {
	f, err := os.Open(segName(fs.dir, seg))
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	hdr := make([]byte, recordHeader)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		crc := binary.LittleEndian.Uint32(hdr[0:4])
		n := binary.LittleEndian.Uint32(hdr[4:8])
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return off, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != crc {
			return off, nil // corrupt tail
		}
		c, err := chunk.Decode(body)
		if err != nil {
			return off, nil
		}
		if _, ok := fs.index[c.ID()]; !ok {
			fs.index[c.ID()] = location{seg: seg, off: off + recordHeader, n: int(n)}
			fs.stats.Chunks++
			fs.stats.Bytes += int64(c.Size())
		}
		off += recordHeader + int64(n)
	}
}

// Put implements Store.
func (fs *FileStore) Put(c *chunk.Chunk) (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.Puts++
	if fs.gcDepth > 0 {
		// Shield the cid — fresh or deduplicated — from a concurrent
		// sweep: the marker cannot know about writes racing with it.
		fs.protected[c.ID()] = struct{}{}
	}
	if _, ok := fs.index[c.ID()]; ok {
		fs.stats.Dups++
		fs.stats.DupBytes += int64(c.Size())
		return true, nil
	}
	if err := fs.appendLocked(c.ID(), c.Bytes()); err != nil {
		return false, err
	}
	fs.stats.Chunks++
	fs.stats.Bytes += int64(c.Size())
	if fs.sync {
		if err := fs.flushLocked(); err != nil {
			return false, err
		}
	}
	if fs.off >= fs.maxSeg {
		if err := fs.rotateLocked(); err != nil {
			return false, err
		}
	}
	return false, nil
}

// appendLocked writes one record (body = serialized chunk) to the
// active segment and points the index at it.
func (fs *FileStore) appendLocked(id chunk.ID, body []byte) error {
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(body)))
	if _, err := fs.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := fs.w.Write(body); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fs.index[id] = location{seg: fs.seg, off: fs.off + recordHeader, n: len(body)}
	fs.off += recordHeader + int64(len(body))
	return nil
}

func (fs *FileStore) flushLocked() error {
	if err := fs.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fs.flushed = fs.off
	if fs.sync {
		if err := fs.active.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

func (fs *FileStore) rotateLocked() error {
	if err := fs.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// A sealed segment is immutable from here on — and compaction may
	// later delete the only other copy of a record relocated into it —
	// so pin its bytes down before letting go of the handle.
	if err := fs.active.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := fs.active.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fs.seg++
	fs.off = 0
	fs.flushed = 0
	f, err := os.OpenFile(segName(fs.dir, fs.seg), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fs.active = f
	fs.w = bufio.NewWriterSize(f, 1<<20)
	return nil
}

// Get implements Store. The stored crc32 is re-verified against the
// body, so a flipped bit on disk is reported as ErrCorrupt (with the
// segment and offset of the damaged record) instead of being decoded.
//
// A read can race with segment compaction: between the index lookup
// and the ReadAt, the sweep may relocate the record and delete its
// segment file, making the I/O fail on a vanished file or closed
// handle. Those failures re-run the lookup — the index then points at
// the relocated copy (or reports the chunk gone, if it was collected).
func (fs *FileStore) Get(id chunk.ID) (*chunk.Chunk, error) {
	fs.gets.Add(1)
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		c, retry, err := fs.getOnce(id)
		if err == nil {
			return c, nil
		}
		if !retry {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// getOnce performs one lookup + read. retry reports that the I/O hit a
// file compaction may have just removed, so the lookup is worth
// re-running.
func (fs *FileStore) getOnce(id chunk.ID) (c *chunk.Chunk, retry bool, err error) {
	fs.mu.RLock()
	loc, ok := fs.index[id]
	seg, flushed := fs.seg, fs.flushed
	fs.mu.RUnlock()
	if !ok {
		return nil, false, ErrNotFound
	}
	// A read in the unflushed tail of the active segment must push the
	// buffered writes to the file first; everything else reads without
	// the write lock, since committed records are immutable.
	if loc.seg == seg && loc.off+int64(loc.n) > flushed {
		fs.mu.Lock()
		if loc.seg == fs.seg && loc.off+int64(loc.n) > fs.flushed {
			if err := fs.w.Flush(); err != nil {
				fs.mu.Unlock()
				return nil, false, fmt.Errorf("store: %w", err)
			}
			fs.flushed = fs.off
		}
		fs.mu.Unlock()
	}
	r, err := fs.reader(loc.seg)
	if err != nil {
		return nil, true, err
	}
	rec := make([]byte, recordHeader+loc.n)
	if _, err := r.ReadAt(rec, loc.off-recordHeader); err != nil {
		return nil, true, fmt.Errorf("store: %w", err)
	}
	fs.readBytes.Add(int64(loc.n))
	body := rec[recordHeader:]
	if crc := binary.LittleEndian.Uint32(rec[0:4]); crc32.ChecksumIEEE(body) != crc {
		return nil, false, fmt.Errorf("%w: crc mismatch for %s at seg %d offset %d",
			ErrCorrupt, id.Short(), loc.seg, loc.off)
	}
	c, err = chunk.Decode(body)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %s at seg %d offset %d: %v",
			ErrCorrupt, id.Short(), loc.seg, loc.off, err)
	}
	return c, false, nil
}

// reader returns (opening on first use) the shared read handle for a
// segment. Handles are only ever ReadAt, so one per segment is enough.
func (fs *FileStore) reader(seg int) (*os.File, error) {
	fs.rmu.RLock()
	f, ok := fs.readers[seg]
	fs.rmu.RUnlock()
	if ok {
		return f, nil
	}
	fs.rmu.Lock()
	defer fs.rmu.Unlock()
	if f, ok := fs.readers[seg]; ok {
		return f, nil
	}
	f, err := os.Open(segName(fs.dir, seg))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fs.readers[seg] = f
	return f, nil
}

// Has implements Store.
func (fs *FileStore) Has(id chunk.ID) bool {
	fs.mu.RLock()
	_, ok := fs.index[id]
	fs.mu.RUnlock()
	return ok
}

// Stats implements Store.
func (fs *FileStore) Stats() Stats {
	fs.mu.RLock()
	s := fs.stats
	fs.mu.RUnlock()
	s.Gets = fs.gets.Load()
	s.ReadBytes = fs.readBytes.Load()
	return s
}

// Flush forces buffered records to the operating system. A store with
// nothing buffered returns without the write lock — the metadata
// journal calls Flush as a write-ahead barrier before every record, so
// the common already-flushed case must not contend with writers.
// (Writes racing past the read-locked check need no flushing: a
// barrier only covers records written before it was requested.)
func (fs *FileStore) Flush() error {
	fs.mu.RLock()
	clean := fs.flushed == fs.off
	fs.mu.RUnlock()
	if clean {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.w.Flush(); err != nil {
		return err
	}
	fs.flushed = fs.off
	return nil
}

// Close flushes and closes all segment files.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	err := fs.w.Flush()
	if err != nil {
		err = fmt.Errorf("store: %w", err)
	}
	if cerr := fs.active.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("store: %w", cerr)
	}
	fs.mu.Unlock()
	fs.rmu.Lock()
	for _, f := range fs.readers {
		f.Close()
	}
	fs.readers = make(map[int]*os.File)
	fs.rmu.Unlock()
	return err
}

// --- garbage collection ----------------------------------------------

// BeginGC implements Collectable: it opens the protection window in
// which every Put (fresh or deduplicated) shields its cid from Sweep.
func (fs *FileStore) BeginGC() {
	fs.mu.Lock()
	if fs.gcDepth == 0 {
		fs.protected = make(map[chunk.ID]struct{})
	}
	fs.gcDepth++
	fs.mu.Unlock()
}

// EndGC implements Collectable, closing the protection window.
func (fs *FileStore) EndGC() {
	fs.mu.Lock()
	if fs.gcDepth--; fs.gcDepth <= 0 {
		fs.gcDepth = 0
		fs.protected = nil
	}
	fs.mu.Unlock()
}

// protectedLocked reports whether id was written during the open GC
// window. Callers hold fs.mu (either mode).
func (fs *FileStore) protectedLocked(id chunk.ID) bool {
	if fs.protected == nil {
		return false
	}
	_, ok := fs.protected[id]
	return ok
}

// hook fires the crash-consistency test hook, if installed.
func (fs *FileStore) hook(event string, seg int) {
	if fs.crashHook != nil {
		fs.crashHook(event, seg)
	}
}

// idLoc pairs an indexed cid with its snapshotted location.
type idLoc struct {
	id  chunk.ID
	loc location
}

// Sweep implements Collectable. The active segment is sealed first, so
// every record under consideration lives in an immutable file; then
// each sealed segment is processed independently: dead entries leave
// the index, and a segment whose live bytes fall below threshold of
// its file size is compacted — its live records are re-appended to the
// log, fsynced, and only then is the old file unlinked, so a crash at
// any byte of the process leaves every live chunk with at least one
// intact on-disk copy (recovery deduplicates by cid). Reads and writes
// proceed concurrently throughout; only the index swap of each segment
// takes the write lock.
func (fs *FileStore) Sweep(live func(chunk.ID) bool, threshold float64) (GCStats, error) {
	if threshold <= 0 {
		threshold = DefaultGCThreshold
	}
	var stats GCStats
	fs.mu.Lock()
	if fs.gcDepth == 0 {
		fs.mu.Unlock()
		return stats, fmt.Errorf("store: Sweep outside a BeginGC window")
	}
	if fs.sweeping {
		fs.mu.Unlock()
		return stats, ErrSweepInProgress
	}
	fs.sweeping = true
	defer func() {
		fs.mu.Lock()
		fs.sweeping = false
		fs.mu.Unlock()
	}()
	if fs.off > 0 {
		if err := fs.rotateLocked(); err != nil {
			fs.mu.Unlock()
			return stats, err
		}
	}
	// Snapshot the sealed segments' entries. Writes racing with the
	// sweep land in the (new) active segment, which is never touched.
	bySeg := make(map[int][]idLoc)
	for id, loc := range fs.index {
		if loc.seg == fs.seg {
			continue
		}
		bySeg[loc.seg] = append(bySeg[loc.seg], idLoc{id, loc})
	}
	fs.mu.Unlock()

	segs := make([]int, 0, len(bySeg))
	for seg := range bySeg {
		segs = append(segs, seg)
	}
	sort.Ints(segs)
	for _, seg := range segs {
		if err := fs.sweepSegment(seg, bySeg[seg], live, threshold, &stats); err != nil {
			return stats, err
		}
	}
	// An empty sealed segment holds only unindexed bytes (records whose
	// cids were re-homed by an earlier crash-recovery); it was handled
	// above only if it had entries. Remove any segment file with no
	// index entries at all, active excluded.
	if err := fs.removeOrphanSegments(bySeg, &stats); err != nil {
		return stats, err
	}
	return stats, nil
}

// sweepSegment decides the fate of one sealed segment.
func (fs *FileStore) sweepSegment(seg int, entries []idLoc, live func(chunk.ID) bool, threshold float64, stats *GCStats) error {
	fs.hook("plan", seg)
	// Provisional liveness under the lock, so the protected set is
	// read consistently with concurrent Puts.
	fs.mu.RLock()
	keep := make(map[chunk.ID]bool, len(entries))
	var liveBytes int64
	dead := 0
	for _, e := range entries {
		k := live(e.id) || fs.protectedLocked(e.id)
		keep[e.id] = k
		if k {
			liveBytes += recordHeader + int64(e.loc.n)
		} else {
			dead++
		}
	}
	fs.mu.RUnlock()
	name := segName(fs.dir, seg)
	fi, err := os.Stat(name)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	compact := liveBytes == 0 || float64(liveBytes) < threshold*float64(size)
	if !compact {
		if dead == 0 && liveBytes == size {
			return nil // fully live, nothing to do
		}
		// Keep the file; just drop dead entries from the index. Their
		// bytes stay on disk until a later sweep tips the ratio. The
		// fate of each entry is re-decided under the write lock: a Put
		// may have protected it since the provisional pass.
		fs.mu.Lock()
		for _, e := range entries {
			if keep[e.id] || fs.protectedLocked(e.id) || live(e.id) {
				continue
			}
			if cur, ok := fs.index[e.id]; ok && cur.seg == seg {
				delete(fs.index, e.id)
				fs.stats.Chunks--
				fs.stats.Bytes -= int64(e.loc.n)
				stats.Reclaimed++
			}
		}
		fs.mu.Unlock()
		stats.SegmentsKept++
		return nil
	}
	// Compaction. Read the provisionally-live records outside any lock
	// (sealed segments are immutable), verifying each against its crc:
	// relocating a rotted record would silently propagate the damage.
	var bufs map[chunk.ID][]byte
	if liveBytes > 0 {
		r, err := fs.reader(seg)
		if err != nil {
			return err
		}
		bufs = make(map[chunk.ID][]byte, len(entries))
		for _, e := range entries {
			if !keep[e.id] {
				continue
			}
			rec, err := readRecordAt(r, e.loc)
			if err != nil {
				return fmt.Errorf("store: compacting seg %d: %s: %w", seg, e.id.Short(), err)
			}
			bufs[e.id] = rec
		}
	}
	// Swap: under the write lock, re-decide each entry (the protected
	// set may have grown), append live records to the log and drop dead
	// ones from the index.
	fs.mu.Lock()
	var relocated, relocatedBytes int64
	for _, e := range entries {
		cur, ok := fs.index[e.id]
		if !ok || cur.seg != seg {
			continue
		}
		if keep[e.id] || fs.protectedLocked(e.id) || live(e.id) {
			rec := bufs[e.id]
			if rec == nil {
				// Protected after the provisional pass: fetch its bytes
				// now, under the lock (rare — a dup-Put raced the sweep;
				// deadlock-free since the lock order is mu before rmu).
				r, err := fs.reader(seg)
				if err == nil {
					rec, err = readRecordAt(r, e.loc)
				}
				if err != nil {
					fs.mu.Unlock()
					return fmt.Errorf("store: compacting seg %d: %s: %w", seg, e.id.Short(), err)
				}
			}
			if err := fs.appendLocked(e.id, rec[recordHeader:]); err != nil {
				fs.mu.Unlock()
				return err
			}
			relocated++
			relocatedBytes += int64(len(rec))
			if fs.off >= fs.maxSeg {
				if err := fs.rotateLocked(); err != nil {
					fs.mu.Unlock()
					return err
				}
			}
		} else {
			delete(fs.index, e.id)
			fs.stats.Chunks--
			fs.stats.Bytes -= int64(e.loc.n)
			stats.Reclaimed++
		}
	}
	fs.mu.Unlock()
	// Relocations are appended but possibly still buffered: the crash
	// harness snapshots here to model a kill before the barrier (the
	// old segment is still intact, so nothing is lost).
	fs.hook("appended", seg)
	// Durability barrier: the relocated copies must be on disk before
	// the only other copy of them disappears.
	fs.mu.Lock()
	if err := fs.w.Flush(); err != nil {
		fs.mu.Unlock()
		return fmt.Errorf("store: %w", err)
	}
	fs.flushed = fs.off
	//forkvet:allow lockhold — durability barrier: the relocated copies must hit disk before the old segment (their only other copy) is unlinked, and fs.mu keeps writers off the active segment meanwhile
	if err := fs.active.Sync(); err != nil {
		fs.mu.Unlock()
		return fmt.Errorf("store: %w", err)
	}
	fs.mu.Unlock()
	fs.hook("relocated", seg)
	fs.dropReader(seg)
	if err := os.Remove(name); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// A Get racing the drop above can have re-opened the file before
	// the unlink; drop again now that re-opening is impossible, or the
	// straggler handle (and the unlinked file's blocks) would linger
	// until Close. The racing Get's read either completes on the open
	// fd or fails and retries through the updated index.
	fs.dropReader(seg)
	fs.hook("unlinked", seg)
	stats.SegmentsCompacted++
	stats.Relocated += int(relocated)
	stats.RelocatedBytes += relocatedBytes
	stats.ReclaimedBytes += size - relocatedBytes
	return nil
}

// removeOrphanSegments unlinks sealed segment files no index entry
// points into (every record in them is a duplicate or dead).
func (fs *FileStore) removeOrphanSegments(swept map[int][]idLoc, stats *GCStats) error {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fs.mu.RLock()
	active := fs.seg
	used := make(map[int]bool)
	for _, loc := range fs.index {
		used[loc.seg] = true
	}
	fs.mu.RUnlock()
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.log", &n); err != nil {
			continue
		}
		// Only segments strictly older than the active one at snapshot
		// time are candidates: a concurrent Put may rotate to a NEWER
		// segment (absent from the used snapshot) while this loop runs,
		// and crash-left orphans are always older than the append point.
		if n >= active || used[n] {
			continue
		}
		if _, hadEntries := swept[n]; hadEntries {
			continue // sweepSegment already decided this one
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		fs.dropReader(n)
		if err := os.Remove(segName(fs.dir, n)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		fs.dropReader(n) // close any handle a racing Get re-opened pre-unlink
		stats.SegmentsCompacted++
		stats.ReclaimedBytes += fi.Size()
	}
	return nil
}

// readRecordAt fetches one full record (header + body) and verifies
// its crc.
func readRecordAt(r *os.File, loc location) ([]byte, error) {
	rec := make([]byte, recordHeader+loc.n)
	if _, err := r.ReadAt(rec, loc.off-recordHeader); err != nil {
		return nil, err
	}
	if crc := binary.LittleEndian.Uint32(rec[0:4]); crc32.ChecksumIEEE(rec[recordHeader:]) != crc {
		return nil, fmt.Errorf("%w: crc mismatch at seg offset %d", ErrCorrupt, loc.off)
	}
	return rec, nil
}

// dropReader closes and forgets the shared read handle of a segment
// about to be unlinked.
func (fs *FileStore) dropReader(seg int) {
	fs.rmu.Lock()
	if f, ok := fs.readers[seg]; ok {
		f.Close()
		delete(fs.readers, seg)
	}
	fs.rmu.Unlock()
}
