package store

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"forkbase/internal/chunk"
)

// Garbage collection (the dedup-aware collector the paper's chunk store
// needs once branches can be removed). Chunks are content-addressed and
// shared across versions, objects and keys, so "delete version X" can
// never delete chunks directly: a chunk is garbage only when NO root on
// ANY key reaches it through the Merkle DAG. Collection is therefore
// mark-and-sweep over the whole store:
//
//	mark:  walk the DAG from every root (branch heads, untagged heads,
//	       pins), accumulating live cids in a LiveSet;
//	sweep: every Collectable store drops chunks absent from the set,
//	       compacting its physical layout where worthwhile.
//
// Concurrent writes are safe without stopping the world: BeginGC opens
// a protection window during which every Put — including a Put absorbed
// by deduplication — shields its cid from the sweep. A version written
// mid-collection consists of chunks that are either freshly Put (and so
// protected), or shared with its base version, whose chunks the marker
// reached through the root that base descends from. The one exception
// is deriving from a version that was already unreachable when the mark
// began (a dangling uid held only by the client); pin it first, exactly
// as git requires an object to be referenced before gc.
var (
	// ErrNotCollectable is returned when the bottom of a store stack
	// does not implement Collectable.
	ErrNotCollectable = errors.New("store: store does not support garbage collection")
	// ErrSweepInProgress is returned by Sweep when another collection
	// is already sweeping the same store. Callers for whom any
	// collection is as good as their own (auto-GC) treat it as benign.
	ErrSweepInProgress = errors.New("store: sweep already in progress")
)

// DefaultGCThreshold is the live ratio below which a sealed segment is
// compacted: segments more than half garbage are rewritten.
const DefaultGCThreshold = 0.5

// Collectable is implemented by stores that can reclaim dead chunks.
type Collectable interface {
	Store
	// BeginGC opens a protection window: every chunk written (or
	// deduplicated) until the matching EndGC is shielded from Sweep,
	// closing the mark/write race for chunks the marker cannot know
	// about. Windows nest; protection clears when the last one ends.
	BeginGC()
	// Sweep deletes every chunk that is neither reported live nor
	// protected by the open window, and compacts physical storage
	// whose live ratio falls below threshold (see DefaultGCThreshold;
	// <=0 applies the default). Callers must hold a BeginGC window
	// spanning the mark phase and the Sweep.
	Sweep(live func(chunk.ID) bool, threshold float64) (GCStats, error)
	// EndGC closes the protection window opened by BeginGC.
	EndGC()
}

// GCStats reports one collection's effect.
type GCStats struct {
	Marked            int   // live chunks in the mark set
	Reclaimed         int   // chunks deleted
	ReclaimedBytes    int64 // on-disk bytes those chunks occupied
	Relocated         int   // live chunks rewritten during compaction
	RelocatedBytes    int64 // on-disk bytes rewritten
	SegmentsCompacted int   // segment files rewritten and removed
	SegmentsKept      int   // segment files retained above the threshold
}

// Add accumulates o into s (per-member sweeps of a pool or cluster).
func (s *GCStats) Add(o GCStats) {
	s.Marked += o.Marked
	s.Reclaimed += o.Reclaimed
	s.ReclaimedBytes += o.ReclaimedBytes
	s.Relocated += o.Relocated
	s.RelocatedBytes += o.RelocatedBytes
	s.SegmentsCompacted += o.SegmentsCompacted
	s.SegmentsKept += o.SegmentsKept
}

func (s GCStats) String() string {
	return fmt.Sprintf("gc: marked=%d reclaimed=%d (%d bytes) relocated=%d segments compacted=%d kept=%d",
		s.Marked, s.Reclaimed, s.ReclaimedBytes, s.Relocated, s.SegmentsCompacted, s.SegmentsKept)
}

// RefsFunc returns the outbound Merkle-DAG edges of a chunk: the cids
// of every chunk it references. The engine layer supplies the concrete
// decoder (types.ChunkRefs); keeping it a parameter keeps this package
// free of chunk-format knowledge.
type RefsFunc func(c *chunk.Chunk) ([]chunk.ID, error)

// LiveSet is the concurrent mark set: the cids proven reachable.
type LiveSet struct {
	mu  sync.RWMutex
	ids map[chunk.ID]struct{}
}

// NewLiveSet returns an empty mark set.
func NewLiveSet() *LiveSet {
	return &LiveSet{ids: make(map[chunk.ID]struct{})}
}

// Add inserts id, reporting whether it was newly added.
func (l *LiveSet) Add(id chunk.ID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.ids[id]; ok {
		return false
	}
	l.ids[id] = struct{}{}
	return true
}

// Contains reports whether id has been marked live.
func (l *LiveSet) Contains(id chunk.ID) bool {
	l.mu.RLock()
	_, ok := l.ids[id]
	l.mu.RUnlock()
	return ok
}

// Len returns the number of marked cids.
func (l *LiveSet) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.ids)
}

// Mark walks the Merkle DAG from roots through s, adding every
// reachable cid to live. Already-marked subtrees are not re-walked, so
// marking from many roots that share history costs the shared part
// once. A missing or corrupt chunk aborts the mark — sweeping with an
// incomplete mark set would destroy live data.
func Mark(ctx context.Context, s Store, live *LiveSet, roots []chunk.ID, refs RefsFunc) error {
	stack := make([]chunk.ID, 0, len(roots))
	for _, r := range roots {
		if !r.IsNil() {
			stack = append(stack, r)
		}
	}
	for n := 0; len(stack) > 0; n++ {
		if n%256 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !live.Add(id) {
			continue
		}
		c, err := GetVerified(s, id)
		if err != nil {
			return fmt.Errorf("store: mark %s: %w", id.Short(), err)
		}
		out, err := refs(c)
		if err != nil {
			return fmt.Errorf("store: mark %s: %w", id.Short(), err)
		}
		for _, o := range out {
			if !o.IsNil() && !live.Contains(o) {
				stack = append(stack, o)
			}
		}
	}
	return nil
}

// unwrapper is implemented by store wrappers (Cache, Verified) so the
// collector can find the Collectable at the bottom of a stack.
type unwrapper interface {
	Unwrap() Store
}

// AsCollectable walks a store stack through its wrappers and returns
// the first Collectable layer, plus every Cache passed on the way
// (their dead entries must be dropped after a sweep).
func AsCollectable(s Store) (Collectable, []*Cache, bool) {
	var caches []*Cache
	for {
		if ca, ok := s.(*Cache); ok {
			caches = append(caches, ca)
			s = ca.Inner()
			continue
		}
		if col, ok := s.(Collectable); ok {
			return col, caches, true
		}
		u, ok := s.(unwrapper)
		if !ok {
			return nil, caches, false
		}
		s = u.Unwrap()
	}
}

// Collect runs one full collection against a (possibly wrapped) store:
// it opens the protection window, enumerates roots, marks, sweeps, and
// drops dead entries from any cache layer. roots is called after the
// window opens so heads moved by concurrent writers are covered either
// by the enumeration or by the window. The engine layer wraps this with
// its own root enumeration; see core.Engine.GC.
func Collect(ctx context.Context, s Store, roots func() ([]chunk.ID, error), refs RefsFunc, threshold float64) (GCStats, error) {
	col, caches, ok := AsCollectable(s)
	if !ok {
		return GCStats{}, ErrNotCollectable
	}
	col.BeginGC()
	defer col.EndGC()
	rs, err := roots()
	if err != nil {
		return GCStats{}, err
	}
	live := NewLiveSet()
	if err := Mark(ctx, s, live, rs, refs); err != nil {
		return GCStats{}, err
	}
	stats, err := col.Sweep(live.Contains, threshold)
	if err != nil {
		return stats, err
	}
	stats.Marked = live.Len()
	for _, ca := range caches {
		ca.DropDead(live.Contains)
	}
	return stats, nil
}
