package store

import (
	"container/list"
	"sync"
	"sync/atomic"

	"forkbase/internal/chunk"
)

// Cache is a concurrency-safe sharded LRU chunk cache in front of any
// Store. Chunks are immutable and content-addressed, so a cache never
// needs invalidation — an entry is either the chunk or absent — which
// makes it safe at every layer: over the log-structured FileStore it
// saves the decode + crc + disk round-trip, over the cluster's shared
// pool it saves the remote hop, and under the POS-Tree read paths it
// turns repeated traversals of shared subtrees into pointer lookups.
//
// The byte budget is divided evenly among the shards; each shard
// maintains its own LRU order under its own mutex, so concurrent
// readers of distinct chunks rarely contend.
type Cache struct {
	inner  Store
	shards []cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64
}

type cacheShard struct {
	mu    sync.Mutex
	limit int64 // byte budget for this shard
	bytes int64 // serialized bytes held
	ll    *list.List
	index map[chunk.ID]*list.Element
}

type cacheEntry struct {
	id chunk.ID
	c  *chunk.Chunk
}

// cacheShards is the shard count; a power of two so shard selection is
// a mask over the (uniformly distributed) cid bytes.
const cacheShards = 16

// NewCache wraps inner with an LRU chunk cache bounded by maxBytes of
// serialized chunk payload. The budget is split evenly among the 16
// shards, and a chunk larger than one shard's share (maxBytes/16) is
// never cached — so the budget should comfortably exceed 16x the
// configured chunk size (with the paper-default 4 KB chunks, anything
// upward of a few hundred KB works; typical budgets are MBs). A
// non-positive budget still returns a functioning store, just one
// that caches nothing.
func NewCache(inner Store, maxBytes int64) *Cache {
	c := &Cache{inner: inner, shards: make([]cacheShard, cacheShards)}
	per := maxBytes / cacheShards
	for i := range c.shards {
		c.shards[i].limit = per
		c.shards[i].ll = list.New()
		c.shards[i].index = make(map[chunk.ID]*list.Element)
	}
	return c
}

// Inner returns the backing store.
func (c *Cache) Inner() Store { return c.inner }

// Unwrap returns the backing store, letting the collector find the
// Collectable at the bottom of a wrapped stack.
func (c *Cache) Unwrap() Store { return c.inner }

// DropDead evicts every cached entry that is not reported live. After
// a sweep, entries for collected chunks would otherwise keep serving
// bytes the backing store no longer holds; live entries stay warm
// (content-addressing guarantees they are still bit-identical).
func (c *Cache) DropDead(live func(id chunk.ID) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var next *list.Element
		for el := s.ll.Front(); el != nil; el = next {
			next = el.Next()
			e := el.Value.(*cacheEntry)
			if live(e.id) {
				continue
			}
			s.ll.Remove(el)
			delete(s.index, e.id)
			s.bytes -= int64(e.c.Size())
			c.bytes.Add(-int64(e.c.Size()))
		}
		s.mu.Unlock()
	}
}

func (c *Cache) shard(id chunk.ID) *cacheShard {
	// The cid is a cryptographic hash; any byte selects uniformly. The
	// pool's placement uses the tail bytes, so take the head here to
	// keep shard choice independent of member choice.
	return &c.shards[id[0]&(cacheShards-1)]
}

// lookup returns the cached chunk and bumps its recency.
func (s *cacheShard) lookup(id chunk.ID) (*chunk.Chunk, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[id]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).c, true
}

// admit inserts ck, evicting from the cold end to respect the budget.
// It reports how many entries and bytes were evicted.
func (s *cacheShard) admit(ck *chunk.Chunk) (evicted int, freed int64, added bool) {
	size := int64(ck.Size())
	if size > s.limit {
		return 0, 0, false // larger than the whole shard: never cache
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[ck.ID()]; ok {
		return 0, 0, false
	}
	s.index[ck.ID()] = s.ll.PushFront(&cacheEntry{id: ck.ID(), c: ck})
	s.bytes += size
	for s.bytes > s.limit {
		cold := s.ll.Back()
		e := cold.Value.(*cacheEntry)
		s.ll.Remove(cold)
		delete(s.index, e.id)
		s.bytes -= int64(e.c.Size())
		freed += int64(e.c.Size())
		evicted++
	}
	return evicted, freed, true
}

// Get implements Store, serving from the cache when possible and
// filling it from the backing store on a miss.
func (c *Cache) Get(id chunk.ID) (*chunk.Chunk, error) {
	sh := c.shard(id)
	if ck, ok := sh.lookup(id); ok {
		c.hits.Add(1)
		return ck, nil
	}
	c.misses.Add(1)
	ck, err := c.inner.Get(id)
	if err != nil {
		return nil, err
	}
	c.account(sh, ck)
	return ck, nil
}

// Put implements Store, writing through to the backing store and
// admitting the chunk so an immediately following read hits.
func (c *Cache) Put(ck *chunk.Chunk) (bool, error) {
	dup, err := c.inner.Put(ck)
	if err != nil {
		return dup, err
	}
	c.account(c.shard(ck.ID()), ck)
	return dup, nil
}

func (c *Cache) account(sh *cacheShard, ck *chunk.Chunk) {
	evicted, freed, added := sh.admit(ck)
	if added {
		c.bytes.Add(int64(ck.Size()) - freed)
		c.evictions.Add(int64(evicted))
	}
}

// Has implements Store.
func (c *Cache) Has(id chunk.ID) bool {
	sh := c.shard(id)
	sh.mu.Lock()
	_, ok := sh.index[id]
	sh.mu.Unlock()
	return ok || c.inner.Has(id)
}

// Stats implements Store: the backing store's counters plus this
// cache's hit/miss/eviction/occupancy counters.
func (c *Cache) Stats() Stats {
	s := c.inner.Stats()
	// Hits never reach the backing store; fold them in so Gets keeps
	// meaning "total Get calls" at this layer.
	s.Gets += c.hits.Load()
	s.CacheHits += c.hits.Load()
	s.CacheMisses += c.misses.Load()
	s.CacheEvictions += c.evictions.Load()
	s.CacheBytes += c.bytes.Load()
	return s
}

// CacheCounters returns only this cache's own counters, with the
// backing store's traffic zeroed — for callers that share the backing
// store among several caches and must not double-count it.
func (c *Cache) CacheCounters() Stats {
	return Stats{
		CacheHits:      c.hits.Load(),
		CacheMisses:    c.misses.Load(),
		CacheEvictions: c.evictions.Load(),
		CacheBytes:     c.bytes.Load(),
	}
}

// Close implements Store, releasing the cache and the backing store.
func (c *Cache) Close() error {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.ll.Init()
		sh.index = make(map[chunk.ID]*list.Element)
		sh.bytes = 0
		sh.mu.Unlock()
	}
	return c.inner.Close()
}
