package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"forkbase/internal/chunk"
)

// testChunk builds a deterministic chunk of n bytes seeded by tag.
func testChunk(tag string, n int) *chunk.Chunk {
	rng := rand.New(rand.NewSource(int64(len(tag)) + int64(n)))
	data := make([]byte, n)
	rng.Read(data)
	copy(data, tag)
	return chunk.New(chunk.TypeBlob, data)
}

func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			out = append(out, e.Name())
		}
	}
	return out
}

func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestFileStoreGCSweep: dead chunks leave the index, mostly-dead
// segments are compacted off disk, live chunks survive with intact
// content, and the reclaimed bytes actually leave the directory.
func TestFileStoreGCSweep(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	var liveIDs, deadIDs []chunk.ID
	content := map[chunk.ID][]byte{}
	for i := 0; i < 200; i++ {
		c := testChunk(fmt.Sprintf("c%03d", i), 200+i)
		if _, err := fs.Put(c); err != nil {
			t.Fatal(err)
		}
		content[c.ID()] = append([]byte(nil), c.Data()...)
		if i%4 == 0 {
			liveIDs = append(liveIDs, c.ID())
		} else {
			deadIDs = append(deadIDs, c.ID())
		}
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	before := dirBytes(t, dir)
	live := make(map[chunk.ID]bool, len(liveIDs))
	for _, id := range liveIDs {
		live[id] = true
	}

	fs.BeginGC()
	stats, err := fs.Sweep(func(id chunk.ID) bool { return live[id] }, 0.5)
	fs.EndGC()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reclaimed != len(deadIDs) {
		t.Fatalf("reclaimed %d chunks, want %d", stats.Reclaimed, len(deadIDs))
	}
	if stats.SegmentsCompacted == 0 {
		t.Fatalf("expected segment compaction, got %+v", stats)
	}
	after := dirBytes(t, dir)
	if after >= before/2 {
		t.Fatalf("disk barely shrank: %d -> %d", before, after)
	}
	for _, id := range liveIDs {
		c, err := fs.Get(id)
		if err != nil {
			t.Fatalf("live chunk %s unreadable after sweep: %v", id.Short(), err)
		}
		if string(c.Data()) != string(content[id]) {
			t.Fatalf("live chunk %s corrupted after sweep", id.Short())
		}
	}
	for _, id := range deadIDs {
		if fs.Has(id) {
			t.Fatalf("dead chunk %s still present", id.Short())
		}
		if _, err := fs.Get(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("dead chunk %s: got %v, want ErrNotFound", id.Short(), err)
		}
	}
	// The store must stay fully usable: re-put a collected chunk and a
	// fresh one.
	re := chunk.New(chunk.TypeBlob, content[deadIDs[0]])
	if dup, err := fs.Put(re); err != nil || dup {
		t.Fatalf("re-put collected chunk: dup=%v err=%v", dup, err)
	}
	if _, err := fs.Get(re.ID()); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: the index rebuilt from the compacted segments
	// must serve every live chunk.
	fs.Close()
	fs2, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	for _, id := range liveIDs {
		if _, err := fs2.Get(id); err != nil {
			t.Fatalf("live chunk %s unreadable after reopen: %v", id.Short(), err)
		}
	}
}

// TestFileStoreGCThreshold: a segment above the live-ratio threshold
// keeps its file (dead entries still leave the index), and a later
// sweep with a higher threshold compacts it.
func TestFileStoreGCThreshold(t *testing.T) {
	dir := t.TempDir()
	// One big segment so everything sits together.
	fs, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	var ids []chunk.ID
	for i := 0; i < 40; i++ {
		c := testChunk(fmt.Sprintf("t%02d", i), 512)
		if _, err := fs.Put(c); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID())
	}
	// 90% live: under the 0.5 threshold the segment must be kept.
	live := make(map[chunk.ID]bool)
	for i, id := range ids {
		live[id] = i%10 != 0
	}
	fs.BeginGC()
	stats, err := fs.Sweep(func(id chunk.ID) bool { return live[id] }, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsCompacted != 0 || stats.SegmentsKept != 1 {
		t.Fatalf("want kept segment, got %+v", stats)
	}
	if stats.Reclaimed != 4 {
		t.Fatalf("want 4 dead entries dropped, got %+v", stats)
	}
	// Threshold 1.0 compacts anything with garbage: now the dup bytes
	// of the kept file must be rewritten away.
	stats, err = fs.Sweep(func(id chunk.ID) bool { return live[id] }, 1.0)
	fs.EndGC()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsCompacted == 0 {
		t.Fatalf("want compaction at threshold 1.0, got %+v", stats)
	}
	for i, id := range ids {
		_, err := fs.Get(id)
		if live[id] && err != nil {
			t.Fatalf("live %d unreadable: %v", i, err)
		}
		if !live[id] && !errors.Is(err, ErrNotFound) {
			t.Fatalf("dead %d: %v", i, err)
		}
	}
}

// TestGCPutProtectsDuringWindow: chunks written — or deduplicated —
// while the GC window is open must survive a sweep that does not know
// them, closing the mark/write race.
func TestGCPutProtectsDuringWindow(t *testing.T) {
	for _, backend := range []string{"file", "mem"} {
		t.Run(backend, func(t *testing.T) {
			var col Collectable
			if backend == "file" {
				fs, err := OpenFileStore(t.TempDir(), FileStoreOptions{})
				if err != nil {
					t.Fatal(err)
				}
				defer fs.Close()
				col = fs
			} else {
				col = NewMemStore()
			}
			old := testChunk("old", 300)
			if _, err := col.Put(old); err != nil {
				t.Fatal(err)
			}
			col.BeginGC()
			fresh := testChunk("fresh", 300)
			if _, err := col.Put(fresh); err != nil {
				t.Fatal(err)
			}
			// Deduplicated re-put of a chunk the marker considers dead.
			if dup, err := col.Put(testChunk("old", 300)); err != nil || !dup {
				t.Fatalf("dup=%v err=%v", dup, err)
			}
			stats, err := col.Sweep(func(chunk.ID) bool { return false }, 0)
			col.EndGC()
			if err != nil {
				t.Fatal(err)
			}
			if stats.Reclaimed != 0 {
				t.Fatalf("protected chunks were reclaimed: %+v", stats)
			}
			for _, c := range []*chunk.Chunk{old, fresh} {
				if _, err := col.Get(c.ID()); err != nil {
					t.Fatalf("protected chunk %s: %v", c.ID().Short(), err)
				}
			}
			// Window closed: the same sweep now reclaims both.
			col.BeginGC()
			stats, err = col.Sweep(func(chunk.ID) bool { return false }, 0)
			col.EndGC()
			if err != nil {
				t.Fatal(err)
			}
			if stats.Reclaimed != 2 {
				t.Fatalf("want 2 reclaimed after window closed, got %+v", stats)
			}
		})
	}
}

// TestGCSweepRequiresWindow: sweeping without BeginGC is refused — it
// would race every concurrent writer.
func TestGCSweepRequiresWindow(t *testing.T) {
	m := NewMemStore()
	if _, err := m.Sweep(func(chunk.ID) bool { return true }, 0); err == nil {
		t.Fatal("Sweep outside BeginGC window succeeded")
	}
	fs, err := OpenFileStore(t.TempDir(), FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Sweep(func(chunk.ID) bool { return true }, 0); err == nil {
		t.Fatal("Sweep outside BeginGC window succeeded")
	}
}

// TestGCConcurrentReadsDuringSweep: readers racing a compaction never
// observe a missing or corrupt live chunk, even as their segments are
// rewritten and unlinked under them.
func TestGCConcurrentReadsDuringSweep(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	var liveIDs []chunk.ID
	live := map[chunk.ID]bool{}
	for i := 0; i < 400; i++ {
		c := testChunk(fmt.Sprintf("r%03d", i), 150+i%700)
		if _, err := fs.Put(c); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			liveIDs = append(liveIDs, c.ID())
			live[c.ID()] = true
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := liveIDs[rng.Intn(len(liveIDs))]
				if _, err := fs.Get(id); err != nil {
					select {
					case errCh <- fmt.Errorf("read of live %s during sweep: %w", id.Short(), err):
					default:
					}
					return
				}
			}
		}(int64(g))
	}
	// Writers keep appending during the sweep too.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := testChunk(fmt.Sprintf("w%d-%04d", seed, i), 300)
				i++
				if _, err := fs.Put(c); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(int64(g))
	}
	fs.BeginGC()
	_, err = fs.Sweep(func(id chunk.ID) bool { return live[id] }, 0.9)
	fs.EndGC()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	for _, id := range liveIDs {
		if _, err := fs.Get(id); err != nil {
			t.Fatalf("live chunk lost: %v", err)
		}
	}
}

// TestGCCacheDropDead: after a sweep, the cache serves live entries
// and drops dead ones instead of resurrecting collected chunks.
func TestGCCacheDropDead(t *testing.T) {
	mem := NewMemStore()
	ca := NewCache(mem, 1<<20)
	liveC := testChunk("live", 400)
	deadC := testChunk("dead", 400)
	for _, c := range []*chunk.Chunk{liveC, deadC} {
		if _, err := ca.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	col, caches, ok := AsCollectable(ca)
	if !ok || len(caches) != 1 {
		t.Fatalf("AsCollectable through cache: ok=%v caches=%d", ok, len(caches))
	}
	isLive := func(id chunk.ID) bool { return id == liveC.ID() }
	col.BeginGC()
	if _, err := col.Sweep(isLive, 0); err != nil {
		t.Fatal(err)
	}
	col.EndGC()
	caches[0].DropDead(isLive)
	if _, err := ca.Get(deadC.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dead chunk served after DropDead: %v", err)
	}
	if _, err := ca.Get(liveC.ID()); err != nil {
		t.Fatal(err)
	}
	if st := ca.Stats(); st.CacheHits == 0 {
		t.Fatal("live entry should have stayed cached")
	}
}

// TestGCPoolSweepReplicas: a pool sweep applies one live set to every
// member, so replicas agree on what survives.
func TestGCPoolSweepReplicas(t *testing.T) {
	members := []Store{NewMemStore(), NewMemStore(), NewMemStore()}
	p := NewPool(members, 2)
	liveC := testChunk("pool-live", 300)
	deadC := testChunk("pool-dead", 300)
	for _, c := range []*chunk.Chunk{liveC, deadC} {
		if _, err := p.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	p.BeginGC()
	stats, err := p.Sweep(func(id chunk.ID) bool { return id == liveC.ID() }, 0)
	p.EndGC()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reclaimed != 2 { // dead chunk had 2 replicas
		t.Fatalf("want 2 replica copies reclaimed, got %+v", stats)
	}
	for i, m := range members {
		if m.Has(deadC.ID()) {
			t.Fatalf("member %d still holds dead chunk", i)
		}
	}
	if !p.Has(liveC.ID()) {
		t.Fatal("live chunk lost from pool")
	}
}

// TestGCReclaimsOrphanSegments: a crash that leaves a fully-duplicated
// segment behind (all its records re-homed to a later segment during
// recovery) is cleaned up by the next sweep.
func TestGCReclaimsOrphanSegments(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var ids []chunk.ID
	for i := 0; i < 30; i++ {
		c := testChunk(fmt.Sprintf("o%02d", i), 300)
		if _, err := fs.Put(c); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID())
	}
	fs.Close()
	// Simulate the duplicate-leaving crash: copy segment 0's bytes to
	// a fresh trailing segment, as an interrupted compaction would.
	seg0, err := os.ReadFile(filepath.Join(dir, segmentFiles(t, dir)[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segName(dir, 999999), seg0, 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err = OpenFileStore(dir, FileStoreOptions{SegmentSize: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	all := map[chunk.ID]bool{}
	for _, id := range ids {
		all[id] = true
	}
	fs.BeginGC()
	_, err = fs.Sweep(func(id chunk.ID) bool { return all[id] }, 0.5)
	fs.EndGC()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := fs.Get(id); err != nil {
			t.Fatalf("chunk lost cleaning orphan segment: %v", err)
		}
	}
}
