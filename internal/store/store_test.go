package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"forkbase/internal/chunk"
)

// storeFactories lets every conformance test run against each
// implementation.
func storeFactories(t *testing.T) map[string]func() Store {
	return map[string]func() Store{
		"mem": func() Store { return NewMemStore() },
		"file": func() Store {
			fs, err := OpenFileStore(t.TempDir(), FileStoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
		"pool": func() Store {
			return NewPool([]Store{NewMemStore(), NewMemStore(), NewMemStore()}, 2)
		},
		"cache": func() Store {
			return NewCache(NewMemStore(), 1<<20)
		},
		"cache-file": func() Store {
			fs, err := OpenFileStore(t.TempDir(), FileStoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return NewCache(Verified(fs), 1<<20)
		},
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()

			c := chunk.New(chunk.TypeBlob, []byte("payload"))
			if s.Has(c.ID()) {
				t.Fatal("Has before Put")
			}
			if _, err := s.Get(c.ID()); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get before Put: %v, want ErrNotFound", err)
			}
			dup, err := s.Put(c)
			if err != nil || dup {
				t.Fatalf("first Put: dup=%v err=%v", dup, err)
			}
			dup, err = s.Put(c)
			if err != nil || !dup {
				t.Fatalf("second Put: dup=%v err=%v, want dedup", dup, err)
			}
			got, err := s.Get(c.ID())
			if err != nil {
				t.Fatal(err)
			}
			if got.ID() != c.ID() || got.Type() != chunk.TypeBlob {
				t.Fatal("Get returned wrong chunk")
			}
			if !s.Has(c.ID()) {
				t.Fatal("Has after Put")
			}
			st := s.Stats()
			if st.Puts < 2 || st.Dups < 1 {
				t.Fatalf("stats not tracking: %+v", st)
			}
		})
	}
}

func TestStoreConcurrent(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < 200; i++ {
						data := make([]byte, 64)
						rng.Read(data)
						c := chunk.New(chunk.TypeBlob, data)
						if _, err := s.Put(c); err != nil {
							t.Error(err)
							return
						}
						if _, err := s.Get(c.ID()); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func TestFileStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var ids []chunk.ID
	for i := 0; i < 100; i++ {
		c := chunk.New(chunk.TypeBlob, []byte(fmt.Sprintf("chunk-%04d-%s", i, string(make([]byte, 100)))))
		if _, err := fs.Put(c); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID())
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	for i, id := range ids {
		c, err := fs2.Get(id)
		if err != nil {
			t.Fatalf("chunk %d lost after recovery: %v", i, err)
		}
		if c.ID() != id {
			t.Fatalf("chunk %d corrupt after recovery", i)
		}
	}
	if got := fs2.Stats().Chunks; got != 100 {
		t.Fatalf("recovered %d chunks, want 100", got)
	}
	// Dedup survives recovery.
	dup, err := fs2.Put(chunk.New(chunk.TypeBlob, []byte(fmt.Sprintf("chunk-%04d-%s", 0, string(make([]byte, 100))))))
	if err != nil || !dup {
		t.Fatalf("dedup after recovery: dup=%v err=%v", dup, err)
	}
}

func TestFileStoreTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good := chunk.New(chunk.TypeBlob, []byte("good"))
	if _, err := fs.Put(good); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage simulating a torn write.
	seg := filepath.Join(dir, "seg-000000.log")
	if err := appendFile(seg, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFileStore(dir, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if _, err := fs2.Get(good.ID()); err != nil {
		t.Fatalf("intact record lost: %v", err)
	}
	// The store stays writable after truncating the torn tail.
	c2 := chunk.New(chunk.TypeBlob, []byte("after-recovery"))
	if _, err := fs2.Put(c2); err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Get(c2.ID()); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	victim := chunk.New(chunk.TypeBlob, []byte("soon to be damaged on disk"))
	intact := chunk.New(chunk.TypeBlob, []byte("left alone"))
	for _, c := range []*chunk.Chunk{victim, intact} {
		if _, err := fs.Put(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the first record's body (offset 8 is the
	// type byte, +4 lands mid-payload), simulating disk corruption.
	seg := filepath.Join(dir, "seg-000000.log")
	f, err := os.OpenFile(seg, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'X'}, recordHeader+4); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = fs.Get(victim.ID())
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of damaged chunk: %v, want ErrCorrupt", err)
	}
	if got := fmt.Sprint(err); !strings.Contains(got, "seg 0") {
		t.Fatalf("corruption error lacks location: %q", got)
	}
	// Undamaged records on the same segment still read fine.
	if _, err := fs.Get(intact.ID()); err != nil {
		t.Fatalf("intact chunk unreadable: %v", err)
	}
}

func TestFileStoreTornTailAfterRotate(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var ids []chunk.ID
	for i := 0; i < 20; i++ {
		c := chunk.New(chunk.TypeBlob, []byte(fmt.Sprintf("record-%04d-%s", i, string(make([]byte, 200)))))
		if _, err := fs.Put(c); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID())
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("expected rotation to have produced several segments, got %v (%v)", segs, err)
	}
	// Tear the newest segment's tail.
	sort.Strings(segs)
	if err := appendFile(segs[len(segs)-1], []byte{9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	for i, id := range ids {
		if _, err := fs2.Get(id); err != nil {
			t.Fatalf("chunk %d lost after torn-tail recovery: %v", i, err)
		}
	}
	// The append point is clean: new writes land and read back.
	c := chunk.New(chunk.TypeBlob, []byte("written after recovery"))
	if _, err := fs2.Put(c); err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Get(c.ID()); err != nil {
		t.Fatal(err)
	}
}

// flakyStore serves Get with an injected error once enabled; Put and
// the rest pass through.
type flakyStore struct {
	Store
	fail  bool
	errIn error
}

func (f *flakyStore) Get(id chunk.ID) (*chunk.Chunk, error) {
	if f.fail {
		return nil, f.errIn
	}
	return f.Store.Get(id)
}

func TestPoolGetFailsOverOnMemberError(t *testing.T) {
	boom := errors.New("member i/o error")
	members := make([]Store, 3)
	flaky := make([]*flakyStore, 3)
	for i := range members {
		flaky[i] = &flakyStore{Store: NewMemStore(), errIn: boom}
		members[i] = flaky[i]
	}
	p := NewPool(members, 2)
	c := chunk.New(chunk.TypeBlob, []byte("replicated"))
	if _, err := p.Put(c); err != nil {
		t.Fatal(err)
	}
	// The home member erroring (not just missing the chunk) must not
	// abort the read — the replica has it.
	h := p.Home(c.ID())
	flaky[h].fail = true
	got, err := p.Get(c.ID())
	if err != nil {
		t.Fatalf("Get with failing home member: %v, want replica failover", err)
	}
	if got.ID() != c.ID() {
		t.Fatal("failover returned wrong chunk")
	}
	// When every replica fails, the real fault surfaces, not ErrNotFound.
	flaky[(h+1)%3].fail = true
	if _, err := p.Get(c.ID()); !errors.Is(err, boom) {
		t.Fatalf("Get with all replicas failing: %v, want wrapped member error", err)
	}
}

func TestPoolPlacementAndReplication(t *testing.T) {
	members := []Store{NewMemStore(), NewMemStore(), NewMemStore(), NewMemStore()}
	p := NewPool(members, 2)
	var ids []chunk.ID
	for i := 0; i < 400; i++ {
		c := chunk.New(chunk.TypeBlob, []byte(fmt.Sprintf("item-%d", i)))
		if _, err := p.Put(c); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID())
	}
	// Every chunk must live on exactly 2 members.
	for _, id := range ids {
		n := 0
		for _, m := range members {
			if m.Has(id) {
				n++
			}
		}
		if n != 2 {
			t.Fatalf("chunk replicated on %d members, want 2", n)
		}
	}
	// cid-based placement should be roughly uniform.
	for i, m := range members {
		got := m.Stats().Chunks
		if got < 100 || got > 300 {
			t.Fatalf("member %d holds %d chunks, want around 200", i, got)
		}
	}
	// Reads survive the loss of the home member.
	for _, id := range ids {
		h := p.Home(id)
		members[h].(*MemStore).drop(id)
		if _, err := p.Get(id); err != nil {
			t.Fatalf("read after home loss: %v", err)
		}
	}
}

// drop removes a chunk, simulating member data loss (test helper).
func (m *MemStore) drop(id chunk.ID) {
	m.mu.Lock()
	delete(m.chunks, id)
	m.mu.Unlock()
}

func TestGetVerified(t *testing.T) {
	s := NewMemStore()
	c := chunk.New(chunk.TypeBlob, []byte("data"))
	s.Put(c)
	if _, err := GetVerified(s, c.ID()); err != nil {
		t.Fatal(err)
	}
	// A store that serves the wrong chunk for a cid must be caught.
	evil := &misdirectingStore{Store: s, wrong: c}
	other := chunk.New(chunk.TypeBlob, []byte("other"))
	if _, err := GetVerified(evil, other.ID()); err == nil {
		t.Fatal("GetVerified accepted substituted content")
	}
}

type misdirectingStore struct {
	Store
	wrong *chunk.Chunk
}

func (m *misdirectingStore) Get(id chunk.ID) (*chunk.Chunk, error) { return m.wrong, nil }

func appendFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}
