package store

// Crash-consistency harness for segment compaction. A Sweep rewrites
// live records and deletes their old segments; a crash (process kill,
// torn write) at any byte of that process must leave every live chunk
// with at least one intact on-disk copy. The harness drives a real
// compaction and, at every instrumented point (via FileStore.crashHook),
// snapshots the directory exactly as the filesystem holds it at that
// moment — unflushed bufio bytes are absent from the snapshot,
// precisely what a kill would lose. Each snapshot is then reopened
// like a restarted process, and every live chunk must read back intact
// with no ErrCorrupt.
//
// Torn writes are modelled on top with byte-offset truncation, applied
// only to bytes past the store's last durability barrier: the sweep
// fsyncs relocated records before unlinking their old segment, so
// bytes below the barrier are beyond a crash's reach, while anything
// appended since — captured at the "appended" hook, before the flush —
// is fair game at any offset. The harness tracks the barrier per
// segment file (its size at the last post-barrier hook) and truncates
// at pseudo-random offsets in the tearable range.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"forkbase/internal/chunk"
)

// snapshot copies the on-disk state of a store directory.
func snapshot(t *testing.T, from string) string {
	t.Helper()
	to := t.TempDir()
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return to
}

// newestSegment returns the highest-numbered segment file name in dir,
// or "".
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	names := segmentFiles(t, dir)
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	return names[len(names)-1]
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// verifyLive opens dir as a fresh store and asserts every live chunk
// reads back intact.
func verifyLive(t *testing.T, dir, when string, content map[chunk.ID][]byte, live map[chunk.ID]bool) {
	t.Helper()
	fs, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: 4 << 10})
	if err != nil {
		t.Fatalf("%s: reopen: %v", when, err)
	}
	defer fs.Close()
	for id, ok := range live {
		if !ok {
			continue
		}
		c, err := fs.Get(id)
		if errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: live chunk %s corrupt after crash: %v", when, id.Short(), err)
		}
		if err != nil {
			t.Fatalf("%s: live chunk %s lost after crash: %v", when, id.Short(), err)
		}
		if string(c.Data()) != string(content[id]) {
			t.Fatalf("%s: live chunk %s content mismatch after crash", when, id.Short())
		}
	}
}

// crashSnap is one simulated crash point.
type crashSnap struct {
	dir      string
	when     string
	tearFrom int64 // truncation offsets >= tearFrom are fair; -1 = none
}

// harnessSweep populates a store, runs a compacting sweep with the
// crash hook installed, and returns the captured crash points plus the
// expected content and live set.
func harnessSweep(t *testing.T, chunks, minSize, maxSize int, segSize int64) ([]crashSnap, map[chunk.ID][]byte, map[chunk.ID]bool) {
	t.Helper()
	dir := t.TempDir()
	fs, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	content := map[chunk.ID][]byte{}
	live := map[chunk.ID]bool{}
	for i := 0; i < chunks; i++ {
		c := testChunk(fmt.Sprintf("cc%04d", i), minSize+i%(maxSize-minSize))
		if _, err := fs.Put(c); err != nil {
			t.Fatal(err)
		}
		content[c.ID()] = append([]byte(nil), c.Data()...)
		live[c.ID()] = i%3 == 0
	}

	var snaps []crashSnap
	// barriers[file] = the file's size at the last hook known to be
	// past a durability barrier (plan/relocated/unlinked). Bytes below
	// it are fsynced and cannot be torn by a crash.
	barriers := map[string]int64{}
	fs.crashHook = func(event string, seg int) {
		s := crashSnap{
			dir:      snapshot(t, dir),
			when:     fmt.Sprintf("%s(seg=%d)", event, seg),
			tearFrom: -1,
		}
		newest := newestSegment(t, dir)
		if event == "appended" && newest != "" {
			s.tearFrom = barriers[newest]
		} else {
			for _, name := range segmentFiles(t, dir) {
				barriers[name] = fileSize(t, filepath.Join(dir, name))
			}
		}
		snaps = append(snaps, s)
	}
	fs.BeginGC()
	stats, err := fs.Sweep(func(id chunk.ID) bool { return live[id] }, 0.95)
	fs.EndGC()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsCompacted == 0 {
		t.Fatalf("harness needs compactions to crash, got %+v", stats)
	}
	fs.Close()
	if len(snaps) < 4 {
		t.Fatalf("only %d crash points captured", len(snaps))
	}
	return snaps, content, live
}

// TestGCCrashConsistency simulates a kill at every hook point of a
// multi-segment compaction and reopens each snapshot: every live chunk
// must survive, whichever copy (original or relocation) the recovery
// finds first.
func TestGCCrashConsistency(t *testing.T) {
	snaps, content, live := harnessSweep(t, 300, 120, 1020, 4<<10)
	for _, s := range snaps {
		verifyLive(t, s.dir, s.when, content, live)
	}
}

// TestGCCrashTornWrites layers torn tails over the kill points: the
// newest segment is truncated at arbitrary byte offsets within the
// tearable range (past the last fsync barrier) before reopening. Live
// chunks must still read back intact — their old segments are only
// unlinked after the barrier.
func TestGCCrashTornWrites(t *testing.T) {
	// Enough live bytes per segment (> the 1 MiB write buffer) that
	// relocations spill to disk before the barrier, leaving a real
	// tearable tail at the "appended" crash points.
	snaps, content, live := harnessSweep(t, 500, 6<<10, 10<<10, 8<<20)
	rng := rand.New(rand.NewSource(11))
	tore := 0
	for _, s := range snaps {
		if s.tearFrom < 0 {
			continue
		}
		for i := 0; i < 4; i++ {
			torn := snapshot(t, s.dir)
			newest := newestSegment(t, torn)
			if newest == "" {
				continue
			}
			path := filepath.Join(torn, newest)
			size := fileSize(t, path)
			if size <= s.tearFrom {
				continue // nothing past the barrier to tear
			}
			cut := s.tearFrom + rng.Int63n(size-s.tearFrom+1)
			if err := os.Truncate(path, cut); err != nil {
				t.Fatal(err)
			}
			tore++
			verifyLive(t, torn, fmt.Sprintf("%s+torn@%d", s.when, cut), content, live)
		}
	}
	if tore == 0 {
		t.Skip("no tearable bytes captured (all relocations auto-flushed)")
	}
}

// TestGCCrashKillsUnflushedRelocations proves the durability barrier
// matters: snapshots taken right after an unlink — when the old
// segment is gone and only the fsynced relocations remain — must still
// serve every live chunk. This is the moment that silently loses data
// in designs that unlink before syncing.
func TestGCCrashKillsUnflushedRelocations(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir, FileStoreOptions{SegmentSize: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	content := map[chunk.ID][]byte{}
	live := map[chunk.ID]bool{}
	for i := 0; i < 120; i++ {
		c := testChunk(fmt.Sprintf("kb%03d", i), 200)
		if _, err := fs.Put(c); err != nil {
			t.Fatal(err)
		}
		content[c.ID()] = append([]byte(nil), c.Data()...)
		live[c.ID()] = i%2 == 0
	}
	var postUnlink []string
	fs.crashHook = func(event string, seg int) {
		if event == "unlinked" {
			postUnlink = append(postUnlink, snapshot(t, dir))
		}
	}
	fs.BeginGC()
	if _, err := fs.Sweep(func(id chunk.ID) bool { return live[id] }, 0.95); err != nil {
		t.Fatal(err)
	}
	fs.EndGC()
	fs.Close()
	if len(postUnlink) == 0 {
		t.Fatal("no post-unlink crash points captured")
	}
	for i, d := range postUnlink {
		verifyLive(t, d, fmt.Sprintf("post-unlink[%d]", i), content, live)
	}
}
