// Package store provides chunk storage (paper §4.4): a content-addressed
// key-value store whose key is a cid and whose value is the chunk bytes.
// Chunks are immutable, so every implementation deduplicates by cid and
// a log-structured layout suits persistence.
package store

import (
	"errors"
	"fmt"

	"forkbase/internal/chunk"
)

// ErrNotFound is returned when no chunk with the requested cid exists.
var ErrNotFound = errors.New("store: chunk not found")

// ErrCorrupt is returned when a chunk fails an integrity check on read:
// a crc32 mismatch against the record header, an undecodable body, or
// content that does not hash to the requested cid. Match with
// errors.Is; the wrapped message carries the location of the damage.
var ErrCorrupt = errors.New("store: chunk corrupt")

// Store is the chunk-storage interface. Implementations must be safe for
// concurrent use.
type Store interface {
	// Put persists a chunk. If a chunk with the same cid already
	// exists the call is a no-op and dup is true — this is the
	// deduplication short-circuit of §4.4.
	Put(c *chunk.Chunk) (dup bool, err error)
	// Get retrieves the chunk with the given cid, or ErrNotFound.
	Get(id chunk.ID) (*chunk.Chunk, error)
	// Has reports whether a chunk with the given cid exists.
	Has(id chunk.ID) bool
	// Stats returns storage counters.
	Stats() Stats
	// Close releases resources. The store must not be used after Close.
	Close() error
}

// Stats summarizes a store's contents and traffic.
type Stats struct {
	Chunks    int   // number of distinct chunks held
	Bytes     int64 // serialized bytes of distinct chunks held
	Puts      int64 // total Put calls
	Dups      int64 // Put calls absorbed by deduplication
	Gets      int64 // total Get calls
	DupBytes  int64 // serialized bytes absorbed by deduplication
	ReadBytes int64 // serialized bytes served by Get

	// Chunk-cache counters; zero unless a Cache wraps the store.
	CacheHits      int64 // Gets served from the cache
	CacheMisses    int64 // Gets that fell through to the backing store
	CacheEvictions int64 // entries evicted to respect the byte budget
	CacheBytes     int64 // serialized bytes currently cached
}

// Add accumulates o into s (used by federating stores and wrappers).
func (s *Stats) Add(o Stats) {
	s.Chunks += o.Chunks
	s.Bytes += o.Bytes
	s.Puts += o.Puts
	s.Dups += o.Dups
	s.Gets += o.Gets
	s.DupBytes += o.DupBytes
	s.ReadBytes += o.ReadBytes
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheEvictions += o.CacheEvictions
	s.CacheBytes += o.CacheBytes
}

// HitRatio returns the fraction of cached-store Gets served from the
// cache, in [0, 1].
func (s Stats) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// DedupRatio returns the fraction of put traffic absorbed by
// deduplication, in [0, 1].
func (s Stats) DedupRatio() float64 {
	if s.Puts == 0 {
		return 0
	}
	return float64(s.Dups) / float64(s.Puts)
}

func (s Stats) String() string {
	return fmt.Sprintf("chunks=%d bytes=%d puts=%d dups=%d (%.1f%%)",
		s.Chunks, s.Bytes, s.Puts, s.Dups, 100*s.DedupRatio())
}

// GetVerified fetches a chunk and verifies its content against the
// requested cid, detecting a tampering storage provider (§2.3). A
// mismatch is reported as ErrCorrupt.
func GetVerified(s Store, id chunk.ID) (*chunk.Chunk, error) {
	c, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	if err := c.Verify(id); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return c, nil
}

// verifiedStore enforces GetVerified on every read; see Verified.
type verifiedStore struct {
	Store
}

func (v verifiedStore) Get(id chunk.ID) (*chunk.Chunk, error) {
	return GetVerified(v.Store, id)
}

// Unwrap returns the backing store, letting the collector find the
// Collectable at the bottom of a wrapped stack.
func (v verifiedStore) Unwrap() Store { return v.Store }

// Verified wraps a store so that every Get re-verifies the returned
// chunk's content against the requested cid, turning any substitution
// or bit-rot the backing layer missed into ErrCorrupt. Stack it below a
// Cache so each chunk is verified once, when it enters the cache.
func Verified(s Store) Store { return verifiedStore{s} }
