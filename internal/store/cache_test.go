package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"forkbase/internal/chunk"
)

func TestCacheHitMissCounters(t *testing.T) {
	inner := NewMemStore()
	c := chunk.New(chunk.TypeBlob, []byte("cached payload"))
	if _, err := inner.Put(c); err != nil {
		t.Fatal(err)
	}
	cache := NewCache(inner, 1<<20)
	defer cache.Close()

	for i := 0; i < 3; i++ {
		got, err := cache.Get(c.ID())
		if err != nil {
			t.Fatal(err)
		}
		if got.ID() != c.ID() {
			t.Fatal("cache returned wrong chunk")
		}
	}
	s := cache.Stats()
	if s.CacheMisses != 1 || s.CacheHits != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1", s.CacheHits, s.CacheMisses)
	}
	if r := s.HitRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("HitRatio = %v, want 2/3", r)
	}
	// The backing store saw exactly one Get; the total at the cache
	// layer still counts every call.
	if inner.Stats().Gets != 1 {
		t.Fatalf("inner Gets = %d, want 1", inner.Stats().Gets)
	}
	if s.Gets != 3 {
		t.Fatalf("cache-layer Gets = %d, want 3", s.Gets)
	}
}

func TestCacheWriteThrough(t *testing.T) {
	inner := NewMemStore()
	cache := NewCache(inner, 1<<20)
	defer cache.Close()
	c := chunk.New(chunk.TypeBlob, []byte("write through"))
	if dup, err := cache.Put(c); err != nil || dup {
		t.Fatalf("Put: dup=%v err=%v", dup, err)
	}
	if !inner.Has(c.ID()) {
		t.Fatal("Put did not reach the backing store")
	}
	// The write warmed the cache: the first read is already a hit.
	if _, err := cache.Get(c.ID()); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.CacheHits != 1 || s.CacheMisses != 0 {
		t.Fatalf("hits=%d misses=%d after write-then-read, want 1/0", s.CacheHits, s.CacheMisses)
	}
}

func TestCacheEvictionRespectsBudget(t *testing.T) {
	inner := NewMemStore()
	const budget = cacheShards * 256
	cache := NewCache(inner, budget)
	defer cache.Close()
	var ids []chunk.ID
	for i := 0; i < 200; i++ {
		c := chunk.New(chunk.TypeBlob, []byte(fmt.Sprintf("entry-%04d-%s", i, string(make([]byte, 100)))))
		if _, err := cache.Put(c); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID())
	}
	s := cache.Stats()
	if s.CacheBytes > budget {
		t.Fatalf("cache holds %d bytes, budget %d", s.CacheBytes, budget)
	}
	if s.CacheEvictions == 0 {
		t.Fatal("expected evictions under a tight budget")
	}
	// Evicted entries are still served — from the backing store.
	for _, id := range ids {
		if _, err := cache.Get(id); err != nil {
			t.Fatalf("chunk lost after eviction: %v", err)
		}
	}
}

func TestCacheOversizedChunkNotCached(t *testing.T) {
	inner := NewMemStore()
	cache := NewCache(inner, cacheShards*64) // 64-byte shard budget
	defer cache.Close()
	big := chunk.New(chunk.TypeBlob, make([]byte, 1024))
	if _, err := cache.Put(big); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.CacheBytes != 0 {
		t.Fatalf("oversized chunk was cached (%d bytes)", s.CacheBytes)
	}
	if _, err := cache.Get(big.ID()); err != nil {
		t.Fatalf("oversized chunk unreadable: %v", err)
	}
}

func TestCacheZeroBudget(t *testing.T) {
	cache := NewCache(NewMemStore(), 0)
	defer cache.Close()
	c := chunk.New(chunk.TypeBlob, []byte("uncacheable"))
	if _, err := cache.Put(c); err != nil {
		t.Fatal(err)
	}
	got, err := cache.Get(c.ID())
	if err != nil || got.ID() != c.ID() {
		t.Fatalf("zero-budget cache must still serve reads: %v", err)
	}
	if s := cache.Stats(); s.CacheBytes != 0 || s.CacheHits != 0 {
		t.Fatalf("zero-budget cache held data: %+v", s)
	}
}

// TestCacheConcurrent hammers one cache with mixed Put/Get from many
// goroutines over a shared key set; run under -race this checks the
// sharded LRU's locking.
func TestCacheConcurrent(t *testing.T) {
	for _, inner := range map[string]Store{"mem": NewMemStore()} {
		cache := NewCache(inner, cacheShards*2048) // small: force eviction churn
		shared := make([]*chunk.Chunk, 64)
		for i := range shared {
			shared[i] = chunk.New(chunk.TypeBlob, []byte(fmt.Sprintf("shared-%04d", i)))
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)))
				for i := 0; i < 500; i++ {
					c := shared[rng.Intn(len(shared))]
					if rng.Intn(4) == 0 {
						if _, err := cache.Put(c); err != nil {
							t.Error(err)
							return
						}
						continue
					}
					got, err := cache.Get(c.ID())
					if err == ErrNotFound {
						continue // not yet written by anyone
					}
					if err != nil {
						t.Error(err)
						return
					}
					if got.ID() != c.ID() {
						t.Errorf("goroutine %d read wrong chunk", g)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if err := cache.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheOverVerifiedCatchesTampering checks the recommended stack:
// verification below the cache turns substituted content into
// ErrCorrupt before it can be cached.
func TestCacheOverVerifiedCatchesTampering(t *testing.T) {
	honest := NewMemStore()
	right := chunk.New(chunk.TypeBlob, []byte("right"))
	wrong := chunk.New(chunk.TypeBlob, []byte("wrong"))
	honest.Put(right)
	evil := &misdirectingStore{Store: honest, wrong: wrong}
	cache := NewCache(Verified(evil), 1<<20)
	defer cache.Close()
	if _, err := cache.Get(right.ID()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("substituted chunk passed the cache fill: %v", err)
	}
	if s := cache.Stats(); s.CacheBytes != 0 {
		t.Fatal("tampered chunk entered the cache")
	}
}
