package wiki

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"forkbase"
	"forkbase/internal/workload"
)

// ctx is the shared root for tests: nothing here exercises cancellation.
var ctx = context.Background()

func engines(t *testing.T) map[string]Engine {
	t.Helper()
	return map[string]Engine{
		"forkbase": NewForkBase(forkbase.Open(), FetchModel{}),
		"redis":    NewRedis(FetchModel{}),
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for name, e := range engines(t) {
		c := NewClient()
		content := workload.RandText(newRng(1), 15<<10)
		if err := e.Save(ctx, c, "home", content); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := e.Load(ctx, c, "home")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("%s: content mismatch", name)
		}
		if _, err := e.Load(ctx, c, "missing"); !errors.Is(err, ErrPageNotFound) {
			t.Fatalf("%s: missing page: %v", name, err)
		}
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestVersionHistory(t *testing.T) {
	for name, e := range engines(t) {
		c := NewClient()
		for i := 0; i < 5; i++ {
			content := []byte{byte('a' + i)}
			if err := e.Save(ctx, c, "p", bytes.Repeat(content, 100)); err != nil {
				t.Fatal(err)
			}
		}
		for back := 0; back < 5; back++ {
			got, err := e.LoadVersion(ctx, c, "p", back)
			if err != nil {
				t.Fatalf("%s back %d: %v", name, back, err)
			}
			want := byte('a' + 4 - back)
			if got[0] != want {
				t.Fatalf("%s back %d: got %c want %c", name, back, got[0], want)
			}
		}
		if _, err := e.LoadVersion(ctx, c, "p", 10); err == nil {
			t.Fatalf("%s: version beyond history succeeded", name)
		}
	}
}

func TestEditSemanticsMatchAcrossEngines(t *testing.T) {
	fb := NewForkBase(forkbase.Open(), FetchModel{})
	rd := NewRedis(FetchModel{})
	c := NewClient()
	initial := workload.RandText(newRng(2), 8<<10)
	fb.Save(ctx, c, "p", initial)
	rd.Save(ctx, c, "p", initial)

	trace := workload.NewWikiTrace(3, 1, 200, 0.5, 0)
	for i := 0; i < 20; i++ {
		cur, _ := fb.Load(ctx, NewClient(), "p")
		e := trace.Next(len(cur))
		e.Page = "p"
		if err := fb.Edit(ctx, c, e); err != nil {
			t.Fatal(err)
		}
		if err := rd.Edit(ctx, c, e); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := fb.Load(ctx, NewClient(), "p")
	b, _ := rd.Load(ctx, NewClient(), "p")
	if !bytes.Equal(a, b) {
		t.Fatalf("engines diverged after identical edits: %d vs %d bytes", len(a), len(b))
	}
}

// TestStorageDedup is the Figure 13b effect: after many versions of
// lightly edited pages, ForkBase consumes less storage than Redis even
// though Redis compresses each copy.
func TestStorageDedup(t *testing.T) {
	fb := NewForkBase(forkbase.Open(), FetchModel{})
	rd := NewRedis(FetchModel{})
	c := NewClient()
	rng := newRng(4)
	pages := 10
	for p := 0; p < pages; p++ {
		content := workload.RandText(rng, 15<<10)
		page := string(rune('a' + p))
		fb.Save(ctx, c, page, content)
		rd.Save(ctx, c, page, content)
	}
	trace := workload.NewWikiTrace(5, pages, 200, 1.0, 0)
	for i := 0; i < 100; i++ {
		cur, err := fb.Load(ctx, NewClient(), string(rune('a'+i%pages)))
		if err != nil {
			t.Fatal(err)
		}
		e := trace.Next(len(cur))
		e.Page = string(rune('a' + i%pages))
		fb.Edit(ctx, c, e)
		rd.Edit(ctx, c, e)
	}
	if fb.StorageBytes() >= rd.StorageBytes() {
		t.Fatalf("ForkBase (%d) should use less storage than Redis (%d) after 100 versions",
			fb.StorageBytes(), rd.StorageBytes())
	}
}

// TestClientCacheReducesTransfer is the Figure 14 effect: reading
// consecutive versions of a page transfers fewer new bytes in ForkBase
// because shared chunks sit in the client cache; Redis re-ships the
// full page each time.
func TestClientCacheReducesTransfer(t *testing.T) {
	fb := NewForkBase(forkbase.Open(), FetchModel{})
	rd := NewRedis(FetchModel{})
	seed := NewClient()
	// Large enough that the page always spans several chunks; a 15 KB
	// page has a small chance of fitting one content-defined chunk.
	content := workload.RandText(newRng(6), 48<<10)
	fb.Save(ctx, seed, "p", content)
	rd.Save(ctx, seed, "p", content)
	trace := workload.NewWikiTrace(7, 1, 100, 1.0, 0)
	for i := 0; i < 5; i++ {
		e := trace.Next(len(content))
		e.Page = "p"
		fb.Edit(ctx, seed, e)
		rd.Edit(ctx, seed, e)
	}
	// A fresh client tracks all 6 versions of the page.
	cf, cr := NewClient(), NewClient()
	fb0, rd0 := fb.BytesFetched(), rd.BytesFetched()
	for back := 0; back < 6; back++ {
		if _, err := fb.LoadVersion(ctx, cf, "p", back); err != nil {
			t.Fatal(err)
		}
		if _, err := rd.LoadVersion(ctx, cr, "p", back); err != nil {
			t.Fatal(err)
		}
	}
	fbBytes := fb.BytesFetched() - fb0
	rdBytes := rd.BytesFetched() - rd0
	if fbBytes >= rdBytes {
		t.Fatalf("ForkBase fetched %d bytes for 6 versions, Redis %d; chunk caching had no effect",
			fbBytes, rdBytes)
	}
}

func TestDiffConsecutiveVersions(t *testing.T) {
	fb := NewForkBase(forkbase.Open(), FetchModel{})
	c := NewClient()
	content := workload.RandText(newRng(8), 30<<10)
	fb.Save(ctx, c, "p", content)
	fb.Edit(ctx, c, workload.WikiEdit{Page: "p", Offset: 15 << 10, Content: []byte("tiny edit"), InPlace: true})
	shared, distinct, err := fb.Diff(ctx, "p")
	if err != nil {
		t.Fatal(err)
	}
	if shared == 0 {
		t.Fatal("no chunks shared between consecutive versions")
	}
	if distinct == 0 {
		t.Fatal("edit produced no distinct chunks")
	}
	if distinct > shared {
		t.Fatalf("tiny edit invalidated most chunks: shared=%d distinct=%d", shared, distinct)
	}
}
