// Package wiki implements the wiki engine of paper §5.2 on ForkBase,
// and a Redis-style multi-versioned baseline (a list of full page
// copies per key) for the Figure 13/14 comparisons.
//
// The paper's numbers come from clients talking to servers over 1 GbE;
// here both engines run in-process. To preserve the effects that stem
// from data transfer — Redis ships the whole page per read while
// ForkBase ships only the chunks the client has not cached — both
// engines report BytesFetched, and an optional FetchModel converts
// fetched bytes into simulated wire time.
package wiki

import (
	"bytes"
	"compress/flate"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"forkbase"
	"forkbase/internal/workload"
)

// FetchModel converts fetched bytes into simulated network time. The
// zero value adds no delay.
type FetchModel struct {
	// PerKB is the wire time per KiB transferred.
	PerKB time.Duration
}

// Delay sleeps for the simulated transfer time of n bytes.
func (m FetchModel) Delay(n int) {
	if m.PerKB > 0 && n > 0 {
		time.Sleep(time.Duration(int64(m.PerKB) * int64(n) / 1024))
	}
}

// Engine is a multi-versioned wiki page store.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// Save stores a new version of page.
	Save(ctx context.Context, c *Client, page string, content []byte) error
	// Load returns the latest version of page.
	Load(ctx context.Context, c *Client, page string) ([]byte, error)
	// LoadVersion returns the version `back` steps behind the latest.
	LoadVersion(ctx context.Context, c *Client, page string, back int) ([]byte, error)
	// Edit applies one edit to the latest version and saves it.
	Edit(ctx context.Context, c *Client, e workload.WikiEdit) error
	// StorageBytes reports the engine's storage consumption
	// (Figure 13b).
	StorageBytes() int64
	// BytesFetched reports the total bytes shipped to clients.
	BytesFetched() int64
}

// Client carries per-client state: the chunk cache that lets ForkBase
// serve consecutive-version reads mostly from already-fetched chunks
// (§5.2, Figure 14). The Redis engine has nothing to cache (every read
// ships the full value).
type Client struct {
	chunks map[string]bool // cids already fetched
}

// NewClient returns a client with an empty cache.
func NewClient() *Client {
	return &Client{chunks: make(map[string]bool)}
}

// ErrPageNotFound reports a missing page.
var ErrPageNotFound = errors.New("wiki: page not found")

// ForkBaseWiki stores each page as a Blob on the default branch; the
// version history is the Blob's derivation chain.
type ForkBaseWiki struct {
	db      *forkbase.DB
	model   FetchModel
	mu      sync.Mutex
	fetched int64
}

// NewForkBase returns a wiki engine over db.
func NewForkBase(db *forkbase.DB, model FetchModel) *ForkBaseWiki {
	return &ForkBaseWiki{db: db, model: model}
}

// Name implements Engine.
func (w *ForkBaseWiki) Name() string { return "ForkBase" }

// Save implements Engine.
func (w *ForkBaseWiki) Save(ctx context.Context, c *Client, page string, content []byte) error {
	ts := fmt.Sprintf("ts=%d", time.Now().UnixNano())
	_, err := w.db.Put(ctx, page, forkbase.NewBlob(content), forkbase.WithMeta(ts))
	return err
}

// load fetches one version's content, charging the client only for
// chunks missing from its cache.
func (w *ForkBaseWiki) load(c *Client, o *forkbase.FObject) ([]byte, error) {
	b, err := w.db.BlobOf(o)
	if err != nil {
		return nil, err
	}
	content, err := b.Bytes()
	if err != nil {
		return nil, err
	}
	// Charge transfer for uncached leaf chunks.
	miss := 0
	it := b.Tree().Leaves()
	for it.Next() {
		cid := it.Chunk().ID().String()
		if !c.chunks[cid] {
			c.chunks[cid] = true
			miss += it.Chunk().Size()
		}
	}
	if it.Err() != nil {
		return nil, it.Err()
	}
	w.mu.Lock()
	w.fetched += int64(miss)
	w.mu.Unlock()
	w.model.Delay(miss)
	return content, nil
}

// Load implements Engine.
func (w *ForkBaseWiki) Load(ctx context.Context, c *Client, page string) ([]byte, error) {
	o, err := w.db.Get(ctx, page)
	if errors.Is(err, forkbase.ErrKeyNotFound) {
		return nil, ErrPageNotFound
	}
	if err != nil {
		return nil, err
	}
	return w.load(c, o)
}

// LoadVersion implements Engine via the base-version chain (M15).
func (w *ForkBaseWiki) LoadVersion(ctx context.Context, c *Client, page string, back int) ([]byte, error) {
	hist, err := w.db.Track(ctx, page, back, back)
	if errors.Is(err, forkbase.ErrKeyNotFound) {
		return nil, ErrPageNotFound
	}
	if err != nil {
		return nil, err
	}
	if len(hist) == 0 {
		return nil, fmt.Errorf("wiki: page %q has no version %d back", page, back)
	}
	return w.load(c, hist[0])
}

// Edit implements Engine: the edit splices the attached Blob, so only
// the chunks covering the edited region are rewritten.
func (w *ForkBaseWiki) Edit(ctx context.Context, c *Client, e workload.WikiEdit) error {
	o, err := w.db.Get(ctx, e.Page)
	if errors.Is(err, forkbase.ErrKeyNotFound) {
		return w.Save(ctx, c, e.Page, e.Content)
	}
	if err != nil {
		return err
	}
	b, err := w.db.BlobOf(o)
	if err != nil {
		return err
	}
	del := uint64(0)
	if e.InPlace {
		del = uint64(len(e.Content))
	}
	off := uint64(e.Offset)
	if off > b.Len() {
		off = b.Len()
	}
	if off+del > b.Len() {
		del = b.Len() - off
	}
	if err := b.Splice(off, del, e.Content); err != nil {
		return err
	}
	ts := fmt.Sprintf("ts=%d", time.Now().UnixNano())
	_, err = w.db.Put(ctx, e.Page, b, forkbase.WithMeta(ts))
	return err
}

// Diff compares the latest two versions of a page by chunk, using the
// POS-Tree diff (§5.2).
func (w *ForkBaseWiki) Diff(ctx context.Context, page string) (shared, distinct int, err error) {
	hist, err := w.db.Track(ctx, page, 0, 1)
	if err != nil {
		return 0, 0, err
	}
	if len(hist) < 2 {
		return 0, 0, nil
	}
	d, err := w.db.DiffVersions(hist[1].UID(), hist[0].UID())
	if err != nil {
		return 0, 0, err
	}
	return d.Unsorted.SharedLeaves, d.Unsorted.OnlyA + d.Unsorted.OnlyB, nil
}

// StorageBytes implements Engine.
func (w *ForkBaseWiki) StorageBytes() int64 { return w.db.Stats().Bytes }

// BytesFetched implements Engine.
func (w *ForkBaseWiki) BytesFetched() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fetched
}

// RedisWiki is the baseline of §5.2: each page is a list of versions,
// every version a full in-memory copy appended to the page's list.
// Commands run against raw memory — compression happens only for the
// persistence footprint (as Redis compresses its dump), so it is
// accounted lazily in StorageBytes, never on the command path.
type RedisWiki struct {
	model   FetchModel
	mu      sync.Mutex
	pages   map[string][][]byte // raw versions, oldest first
	stored  int64               // compressed bytes of versions accounted so far
	pending [][]byte            // versions not yet compressed for accounting
	fetched int64
}

// NewRedis returns the Redis-like baseline engine.
func NewRedis(model FetchModel) *RedisWiki {
	return &RedisWiki{model: model, pages: make(map[string][][]byte)}
}

// Name implements Engine.
func (r *RedisWiki) Name() string { return "Redis" }

func compress(p []byte) []byte {
	var buf bytes.Buffer
	w, _ := flate.NewWriter(&buf, flate.BestSpeed)
	w.Write(p)
	w.Close()
	return buf.Bytes()
}

// Save implements Engine: append a full copy.
func (r *RedisWiki) Save(ctx context.Context, c *Client, page string, content []byte) error {
	cp := make([]byte, len(content))
	copy(cp, content)
	r.mu.Lock()
	r.pages[page] = append(r.pages[page], cp)
	r.pending = append(r.pending, cp)
	r.mu.Unlock()
	return nil
}

// raw returns a version without any wire accounting (server-side read).
func (r *RedisWiki) raw(page string, back int) ([]byte, error) {
	r.mu.Lock()
	versions := r.pages[page]
	r.mu.Unlock()
	if len(versions) == 0 {
		return nil, ErrPageNotFound
	}
	i := len(versions) - 1 - back
	if i < 0 {
		return nil, fmt.Errorf("wiki: page %q has no version %d back", page, back)
	}
	return versions[i], nil
}

func (r *RedisWiki) version(page string, back int) ([]byte, error) {
	content, err := r.raw(page, back)
	if err != nil {
		return nil, err
	}
	// The full value crosses the wire on every client read.
	r.mu.Lock()
	r.fetched += int64(len(content))
	r.mu.Unlock()
	r.model.Delay(len(content))
	return content, nil
}

// Load implements Engine.
func (r *RedisWiki) Load(ctx context.Context, c *Client, page string) ([]byte, error) {
	return r.version(page, 0)
}

// LoadVersion implements Engine.
func (r *RedisWiki) LoadVersion(ctx context.Context, c *Client, page string, back int) ([]byte, error) {
	return r.version(page, back)
}

// Edit implements Engine: server-side read-modify-write of the whole
// page (a Lua-script-style update; no wire transfer).
func (r *RedisWiki) Edit(ctx context.Context, c *Client, e workload.WikiEdit) error {
	cur, err := r.raw(e.Page, 0)
	if errors.Is(err, ErrPageNotFound) {
		return r.Save(ctx, c, e.Page, e.Content)
	}
	if err != nil {
		return err
	}
	off := e.Offset
	if off > len(cur) {
		off = len(cur)
	}
	var next []byte
	if e.InPlace {
		end := off + len(e.Content)
		if end > len(cur) {
			end = len(cur)
		}
		next = append(append(append([]byte(nil), cur[:off]...), e.Content...), cur[end:]...)
	} else {
		next = append(append(append([]byte(nil), cur[:off]...), e.Content...), cur[off:]...)
	}
	return r.Save(ctx, c, e.Page, next)
}

// StorageBytes implements Engine: the persisted (compressed) footprint
// of all retained versions, computed lazily off the command path.
func (r *RedisWiki) StorageBytes() int64 {
	r.mu.Lock()
	pending := r.pending
	r.pending = nil
	r.mu.Unlock()
	var add int64
	for _, v := range pending {
		add += int64(len(compress(v)))
	}
	r.mu.Lock()
	r.stored += add
	out := r.stored
	r.mu.Unlock()
	return out
}

// BytesFetched implements Engine.
func (r *RedisWiki) BytesFetched() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fetched
}
