package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"forkbase/internal/core"
	"forkbase/internal/types"
)

// ctx is the shared root for tests: nothing here exercises cancellation.
var ctx = context.Background()

func TestRoutingIsStable(t *testing.T) {
	c, err := New(Options{Nodes: 4, Placement: TwoLayer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.Master().Route(k) != c.Master().Route(k) {
			t.Fatal("routing not deterministic")
		}
	}
}

func TestClusterPutGet(t *testing.T) {
	for _, placement := range []Placement{OneLayer, TwoLayer} {
		c, err := New(Options{Nodes: 4, Placement: placement})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("key-%d", i)
			if _, err := c.Put(ctx, k, "master", types.String(fmt.Sprintf("v-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("key-%d", i)
			o, err := c.Get(ctx, k, "master")
			if err != nil {
				t.Fatalf("placement %v: %v", placement, err)
			}
			if string(o.Data) != fmt.Sprintf("v-%d", i) {
				t.Fatalf("placement %v: got %q", placement, o.Data)
			}
		}
		c.Close()
	}
}

func TestClusterChunkableValues(t *testing.T) {
	c, err := New(Options{Nodes: 4, Placement: TwoLayer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := c.Put(ctx, "blob", "master", types.NewBlob(data)); err != nil {
		t.Fatal(err)
	}
	o, err := c.Get(ctx, "blob", "master")
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Value("blob", o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.(*types.Blob).Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("len %d, want %d", len(got), len(data))
	}
	// Under 2LP the blob's chunks must be spread across nodes, not
	// concentrated on the key's owner.
	nodesWithData := 0
	for _, b := range c.NodeStorageBytes() {
		if b > 0 {
			nodesWithData++
		}
	}
	if nodesWithData < 3 {
		t.Fatalf("2LP left chunks on only %d nodes", nodesWithData)
	}
}

// TestSkewBalance is the Figure 15 property: under a Zipf-skewed key
// workload, 1LP storage is skewed and 2LP storage stays balanced.
func TestSkewBalance(t *testing.T) {
	imbalance := func(placement Placement) float64 {
		c, err := New(Options{Nodes: 8, Placement: placement})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(7))
		zipf := rand.NewZipf(rng, 1.5, 1, 63)
		payload := make([]byte, 8<<10)
		for i := 0; i < 300; i++ {
			rng.Read(payload)
			k := fmt.Sprintf("page-%d", zipf.Uint64())
			if _, err := c.Put(ctx, k, "master", types.NewBlob(payload)); err != nil {
				t.Fatal(err)
			}
		}
		bytes := c.NodeStorageBytes()
		var max, sum float64
		for _, b := range bytes {
			sum += float64(b)
			max = math.Max(max, float64(b))
		}
		return max / (sum / float64(len(bytes)))
	}
	skew1 := imbalance(OneLayer)
	skew2 := imbalance(TwoLayer)
	if skew2 > 2 {
		t.Fatalf("2LP imbalance %.2f, want near 1", skew2)
	}
	if skew1 < skew2 {
		t.Fatalf("1LP (%.2f) should be more skewed than 2LP (%.2f)", skew1, skew2)
	}
}

func TestClusterConcurrentClients(t *testing.T) {
	c, err := New(Options{Nodes: 4, Placement: TwoLayer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("key-%d", (g*50+i)%64)
				if _, err := c.Put(ctx, k, "master", types.String("v")); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Get(ctx, k, "master"); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestClusterPoolCache checks the per-servlet cache in front of the
// 2LP shared pool: repeated reads of the same chunkable value are
// served from the cache (hits accrue) and stay correct, with
// verification stacked below.
func TestClusterPoolCache(t *testing.T) {
	c, err := New(Options{Nodes: 4, Placement: TwoLayer, CacheBytes: 8 << 20, VerifyReads: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(3)).Read(data)
	if _, err := c.Put(ctx, "blob", "master", types.NewBlob(data)); err != nil {
		t.Fatal(err)
	}
	read := func() {
		o, err := c.Get(ctx, "blob", "master")
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.Value("blob", o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := v.(*types.Blob).Bytes()
		if err != nil || len(got) != len(data) {
			t.Fatalf("cached read broken: %v len=%d", err, len(got))
		}
	}
	read()
	owner := c.Master().Route("blob")
	first := c.Servlet(owner).Engine().Store().Stats()
	for i := 0; i < 4; i++ {
		read()
	}
	after := c.Servlet(owner).Engine().Store().Stats()
	if after.CacheHits <= first.CacheHits {
		t.Fatalf("repeated reads accrued no cache hits: first=%+v after=%+v", first, after)
	}
}

func TestRebalancedPut(t *testing.T) {
	c, err := New(Options{Nodes: 4, Placement: TwoLayer, Rebalance: true, RebalanceThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, 32<<10)
	rand.New(rand.NewSource(2)).Read(data)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Put(ctx, "hot-key", "master", types.NewBlob(data)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	o, err := c.Get(ctx, "hot-key", "master")
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Value("hot-key", o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.(*types.Blob).Bytes()
	if err != nil || len(got) != len(data) {
		t.Fatalf("rebalanced value broken: %v len=%d", err, len(got))
	}
}

func TestForkAcrossCluster(t *testing.T) {
	c, err := New(Options{Nodes: 3, Placement: TwoLayer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Put(ctx, "doc", "master", types.String("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Fork(ctx, "doc", "master", "dev"); err != nil {
		t.Fatal(err)
	}
	branches, err := c.ListTaggedBranches(ctx, "doc")
	if err != nil || len(branches) != 2 {
		t.Fatalf("branches: %v %v", branches, err)
	}
	if _, err := c.Put(ctx, "doc", "dev", types.String("v2")); err != nil {
		t.Fatal(err)
	}
	o, _ := c.Get(ctx, "doc", "master")
	if string(o.Data) != "v1" {
		t.Fatal("fork isolation broken across cluster")
	}
}

// TestClusterReopenRecoversSpaces proves a durable cluster (Root set)
// restarts whole: every servlet's branch tables, untagged heads and
// pins come back from its per-node metadata journal, chunk data comes
// back from its per-node log, and a GC run right after the restart
// reclaims nothing live — under both placements.
func TestClusterReopenRecoversSpaces(t *testing.T) {
	for _, placement := range []Placement{OneLayer, TwoLayer} {
		root := t.TempDir()
		opts := Options{Nodes: 3, Placement: placement, Root: root}
		c, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		heads := map[string]types.UID{}
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("key-%d", i)
			uid, err := c.Put(ctx, k, "master", types.String(fmt.Sprintf("v-%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			heads[k] = uid
		}
		if err := c.Fork(ctx, "key-3", "master", "dev"); err != nil {
			t.Fatal(err)
		}
		// Pin on the servlet owning key-5, and an untagged head on key-7.
		var pinned types.UID = heads["key-5"]
		sv := c.servlets[c.master.Route("key-5")]
		if err := sv.Exec(func(eng *core.Engine) error {
			return eng.PinUID(pinned)
		}); err != nil {
			t.Fatal(err)
		}
		var untagged types.UID
		if err := c.servlets[c.master.Route("key-7")].Exec(func(eng *core.Engine) error {
			var err error
			untagged, err = eng.PutBase([]byte("key-7"), heads["key-7"], types.String("fork-on-conflict"), nil)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		// Garbage: drop key-9's only branch before the restart.
		if err := c.servlets[c.master.Route("key-9")].Exec(func(eng *core.Engine) error {
			return eng.RemoveBranch([]byte("key-9"), "master")
		}); err != nil {
			t.Fatal(err)
		}
		c.Close()

		re, err := New(opts)
		if err != nil {
			t.Fatalf("placement %v: reopen: %v", placement, err)
		}
		for i := 0; i < 40; i++ {
			if i == 9 {
				continue
			}
			k := fmt.Sprintf("key-%d", i)
			o, err := re.Get(ctx, k, "master")
			if err != nil {
				t.Fatalf("placement %v: %s lost after restart: %v", placement, k, err)
			}
			if o.UID() != heads[k] || string(o.Data) != fmt.Sprintf("v-%d", i) {
				t.Fatalf("placement %v: %s head diverged after restart", placement, k)
			}
		}
		if _, err := re.Get(ctx, "key-9", "master"); err == nil {
			t.Fatalf("placement %v: removed branch resurrected", placement)
		}
		branches, err := re.ListTaggedBranches(ctx, "key-3")
		if err != nil || len(branches) != 2 {
			t.Fatalf("placement %v: forked branches after restart: %v %v", placement, branches, err)
		}
		// GC on the freshly restarted cluster: the recovered roots must
		// protect everything live; key-9's exclusive chunks may go.
		if _, err := re.GC(context.Background(), 0); err != nil {
			t.Fatalf("placement %v: GC after restart: %v", placement, err)
		}
		for i := 0; i < 40; i++ {
			if i == 9 {
				continue
			}
			k := fmt.Sprintf("key-%d", i)
			if o, err := re.Get(ctx, k, "master"); err != nil || string(o.Data) != fmt.Sprintf("v-%d", i) {
				t.Fatalf("placement %v: %s lost by GC after restart: %v", placement, k, err)
			}
		}
		var gotPins, gotUB []types.UID
		if err := re.servlets[re.master.Route("key-5")].Exec(func(eng *core.Engine) error {
			gotPins = eng.Pins()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(gotPins) != 1 || gotPins[0] != pinned {
			t.Fatalf("placement %v: pins after restart: %v", placement, gotPins)
		}
		if err := re.servlets[re.master.Route("key-7")].Exec(func(eng *core.Engine) error {
			gotUB = eng.ListUntaggedBranches([]byte("key-7"))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(gotUB) != 1 || gotUB[0] != untagged {
			t.Fatalf("placement %v: untagged heads after restart: %v", placement, gotUB)
		}
		re.Close()
	}
}
