// Package cluster implements the distributed deployment of ForkBase
// (paper §4.1, §4.6): a master holding cluster runtime information, a
// request dispatcher, N servlets each owning a hash slice of the key
// space, and the two-layer partitioning scheme that spreads chunks
// across all chunk-storage instances by cid.
//
// The paper evaluates on a 64-node cluster over 1 GbE. This package
// simulates that cluster in one process: servlets run as independent
// single-threaded workers connected by channels, and an optional
// per-request latency models the network hop. Partitioning, routing,
// re-balancing and the 1LP/2LP placement policies are implemented for
// real; only the transport is simulated (see DESIGN.md §4).
package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"forkbase/internal/branch"
	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/postree"
	"forkbase/internal/servlet"
	"forkbase/internal/store"
	"forkbase/internal/types"
)

// Placement selects how a servlet's chunks are placed on chunk storage.
type Placement int

const (
	// OneLayer (1LP) stores all of a key's chunks on the servlet that
	// owns the key. Skewed key workloads skew storage (Figure 15).
	OneLayer Placement = iota
	// TwoLayer (2LP) partitions ordinary chunks across all storage
	// instances by cid; only meta chunks stay local (§4.6). Storage
	// stays balanced even under skew.
	TwoLayer
)

// Options configures a cluster.
type Options struct {
	// Nodes is the number of servlet/chunk-storage pairs.
	Nodes int
	// Placement selects 1LP or 2LP chunk placement.
	Placement Placement
	// Replicas is the chunk replication factor under 2LP.
	Replicas int
	// NetLatency, when non-zero, is slept once per dispatched request
	// to model the client-servlet network hop.
	NetLatency time.Duration
	// Tree is the POS-Tree configuration for all servlets.
	Tree postree.Config
	// Rebalance enables forwarding POS-Tree construction away from
	// overloaded servlets (§4.6.1).
	Rebalance bool
	// RebalanceThreshold is the queue depth beyond which construction
	// is forwarded; 0 means 8.
	RebalanceThreshold int
	// CacheBytes bounds a per-servlet chunk cache in front of the 2LP
	// shared pool, where a miss costs a (simulated) remote hop; 0
	// disables caching. Meta chunks are already local and bypass it.
	CacheBytes int64
	// VerifyReads re-verifies every chunk read — from a servlet's own
	// node storage (either placement) and from the shared 2LP pool —
	// against its cid before it is used or cached. Pool members are
	// verified individually, so a corrupt chunk on one member falls
	// through the pool's replica failover instead of failing the read.
	VerifyReads bool
	// ACL is the access controller shared by every servlet's
	// dispatcher path (§4.1). Nil means open mode: every request is
	// admitted, matching the embedded single-user default.
	ACL *servlet.ACL
	// DefaultUser is the identity attributed to requests made through
	// the user-less convenience methods (Put/Get/Fork/…).
	DefaultUser string
	// Root, when non-empty, makes the simulated cluster durable: node
	// i keeps its chunk storage (a log-structured file store) and its
	// servlet's metadata journal under Root/node-<i>, and a cluster
	// reopened on the same root with the same node count recovers
	// every servlet's branch tables, untagged heads and pins. Empty
	// (the default) keeps storage in memory, vanishing on Close.
	Root string
	// SyncWrites fsyncs each node's chunk log after every write
	// (Root only).
	SyncWrites bool
	// MetaSync fsyncs each servlet's metadata journal after every
	// branch/pin mutation (Root only).
	MetaSync bool
	// SnapshotEvery is the per-servlet metadata-journal compaction
	// cadence (Root only); 0 means the branch-package default,
	// negative disables compaction.
	SnapshotEvery int
}

// Master maintains cluster runtime information: the member list and the
// key-space routing table (§4.1).
type Master struct {
	members []int // servlet ids, index = hash slot
}

// Route returns the servlet id owning the key.
func (m *Master) Route(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return m.members[int(h.Sum32())%len(m.members)]
}

// Members returns the servlet ids.
func (m *Master) Members() []int { return append([]int(nil), m.members...) }

// Cluster is a simulated multi-servlet ForkBase deployment.
type Cluster struct {
	opts     Options
	master   *Master
	servlets []*servlet.Servlet
	locals   []store.Collectable // per-node local storage (mem or file)
	journals []*branch.Journal   // per-servlet metadata journals (Root only)
	pool     *store.Pool         // 2LP shared pool (nil under 1LP)
	caches   []*store.Cache      // per-servlet pool caches (GC invalidation)
}

// metaLocalStore routes Meta chunks to the servlet's local storage and
// everything else through the shared pool — "meta chunks are always
// stored locally" (§4.6). pool is the servlet's view of the shared
// pool, optionally stacked with verification and a chunk cache so the
// simulated remote hop is paid once per chunk, not once per read.
type metaLocalStore struct {
	local store.Store
	pool  store.Store
}

func (m *metaLocalStore) Put(c *chunk.Chunk) (bool, error) {
	if c.Type() == chunk.TypeMeta {
		return m.local.Put(c)
	}
	return m.pool.Put(c)
}

func (m *metaLocalStore) Get(id chunk.ID) (*chunk.Chunk, error) {
	if c, err := m.local.Get(id); err == nil {
		return c, nil
	}
	return m.pool.Get(id)
}

func (m *metaLocalStore) Has(id chunk.ID) bool {
	return m.local.Has(id) || m.pool.Has(id)
}

// Stats reports the node's local storage plus its own pool-cache
// counters; the shared pool's traffic is deliberately excluded, since
// summing it once per node would multi-count it.
func (m *metaLocalStore) Stats() store.Stats {
	s := m.local.Stats()
	if c, ok := m.pool.(*store.Cache); ok {
		s.Add(c.CacheCounters())
	}
	return s
}
func (m *metaLocalStore) Close() error { return nil }

// New starts a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 node")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	if opts.RebalanceThreshold <= 0 {
		opts.RebalanceThreshold = 8
	}
	if opts.Tree.LeafQ == 0 {
		opts.Tree = postree.DefaultConfig()
	}
	if opts.ACL == nil {
		opts.ACL = servlet.NewACL(true)
	}
	c := &Cluster{opts: opts, master: &Master{}}
	var files []*store.FileStore
	for i := 0; i < opts.Nodes; i++ {
		if opts.Root != "" {
			fs, err := store.OpenFileStore(nodeDir(opts.Root, i), store.FileStoreOptions{
				Sync: opts.SyncWrites,
			})
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: node %d storage: %w", i, err)
			}
			c.locals = append(c.locals, fs)
			files = append(files, fs)
		} else {
			c.locals = append(c.locals, store.NewMemStore())
		}
		c.master.members = append(c.master.members, i)
	}
	// barrierFor orders servlet i's metadata journal behind the chunk
	// logs holding its data: a recorded head must never be more durable
	// than the chunks it names. Under one-layer placement a servlet's
	// chunks live only in its own node's log; under two-layer they may
	// land on any node, so every log is flushed.
	barrierFor := func(i int) func() error {
		if opts.Placement == OneLayer && len(files) > 0 {
			fs := files[i]
			return fs.Flush
		}
		return func() error {
			for _, fs := range files {
				if err := fs.Flush(); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if opts.Placement == TwoLayer {
		members := make([]store.Store, opts.Nodes)
		for i, l := range c.locals {
			members[i] = l
			if opts.VerifyReads {
				// Verify below the pool, per member, so a chunk that
				// fails its cid check falls through the pool's replica
				// failover instead of aborting the read.
				members[i] = store.Verified(l)
			}
		}
		c.pool = store.NewPool(members, opts.Replicas)
	}
	for i := 0; i < opts.Nodes; i++ {
		// The servlet's view of its own node's storage is verified too:
		// under 2LP the locals double as pool members, and without this
		// a chunk homed on the reading servlet's node would be served
		// straight from m.local, skipping the member wrappers; under
		// 1LP it is the only integrity point there is.
		local := store.Store(c.locals[i])
		if opts.VerifyReads {
			local = store.Verified(local)
		}
		s := local
		if opts.Placement == TwoLayer {
			// Each servlet gets its own cache over the shared pool (the
			// simulated network hop is the dominant read cost); chunks
			// arrive already verified by the member wrappers above.
			var pool store.Store = c.pool
			if opts.CacheBytes > 0 {
				ca := store.NewCache(pool, opts.CacheBytes)
				c.caches = append(c.caches, ca)
				pool = ca
			}
			s = &metaLocalStore{local: local, pool: pool}
		}
		sv := servlet.New(i, s, opts.Tree, opts.ACL)
		if opts.Root != "" {
			// Each servlet keeps its own metadata journal beside its
			// node's chunk log: branch tables are per-servlet state, so
			// cluster restart recovers each servlet's space (tagged
			// heads, UB-tables, pins) independently. The servlet is not
			// serving yet — New returns before any request dispatches —
			// so swapping its engine's space here is race-free.
			j, err := branch.OpenJournal(nodeDir(opts.Root, i), branch.JournalOptions{
				Sync:          opts.MetaSync,
				SnapshotEvery: opts.SnapshotEvery,
				Barrier:       barrierFor(i),
			})
			if err != nil {
				sv.Close()
				c.Close()
				return nil, fmt.Errorf("cluster: servlet %d journal: %w", i, err)
			}
			sv.Engine().Recover(j)
			c.journals = append(c.journals, j)
		}
		c.servlets = append(c.servlets, sv)
	}
	return c, nil
}

// nodeDir is node i's directory under a durable cluster root.
func nodeDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("node-%02d", i))
}

// Close stops all servlets, then releases the per-node storage and
// metadata journals (durable clusters flush their chunk logs here).
func (c *Cluster) Close() {
	for _, sv := range c.servlets {
		sv.Close()
	}
	for _, j := range c.journals {
		j.Close()
	}
	for _, l := range c.locals {
		l.Close()
	}
}

// Master returns the cluster master.
func (c *Cluster) Master() *Master { return c.master }

// Servlet returns servlet i (for instrumentation).
func (c *Cluster) Servlet(i int) *servlet.Servlet { return c.servlets[i] }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.servlets) }

// NodeStorageBytes returns the bytes held by each node's local chunk
// storage; Figure 15 plots its distribution under skew.
func (c *Cluster) NodeStorageBytes() []int64 {
	out := make([]int64, len(c.locals))
	for i, l := range c.locals {
		out[i] = l.Stats().Bytes
	}
	return out
}

// ACL returns the cluster's shared access controller.
func (c *Cluster) ACL() *servlet.ACL { return c.opts.ACL }

// ExecAs is the dispatcher's request path (§4.1): it routes key to the
// owning servlet, runs the access controller for user on key/branch at
// level need, models the client-servlet network hop, and executes fn
// on the servlet's execution thread. Denied requests never reach the
// execution thread.
func (c *Cluster) ExecAs(ctx context.Context, user, key, branchName string, need servlet.Permission, fn func(eng *core.Engine) error) error {
	sv := c.servlets[c.master.Route(key)]
	if err := sv.CheckAccess(user, key, branchName, need); err != nil {
		return err
	}
	if c.opts.NetLatency > 0 {
		time.Sleep(c.opts.NetLatency)
	}
	return sv.ExecCtx(ctx, fn)
}

// dispatch routes a request to the owning servlet and executes it
// there as the cluster's default user.
func (c *Cluster) dispatch(ctx context.Context, key, branchName string, need servlet.Permission, fn func(eng *core.Engine) error) error {
	return c.ExecAs(ctx, c.opts.DefaultUser, key, branchName, need, fn)
}

// PutBatch applies a group of writes on behalf of user, dispatching
// once per owning servlet instead of once per write: entries are
// grouped by route, every entry passes the access controller up front,
// and each servlet executes its group as one engine PutBatch (one
// network hop and one queue slot per servlet). Returns uids in entry
// order. Atomicity is per key, as in Engine.PutBatch; entries for
// different servlets may commit even when another servlet's group
// fails.
func (c *Cluster) PutBatch(ctx context.Context, user string, puts []core.BatchPut) ([]types.UID, error) {
	groups := make(map[int][]int)
	var order []int
	for i, p := range puts {
		owner := c.master.Route(string(p.Key))
		if err := c.servlets[owner].CheckAccess(user, string(p.Key), p.Branch, servlet.PermWrite); err != nil {
			return nil, err
		}
		if _, ok := groups[owner]; !ok {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], i)
	}
	// The per-servlet groups are independent (atomicity is per key),
	// so dispatch them concurrently: batch latency is the slowest
	// group's, not the sum of all hops.
	uids := make([]types.UID, len(puts))
	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for gi, owner := range order {
		idxs := groups[owner]
		group := make([]core.BatchPut, len(idxs))
		for j, i := range idxs {
			group[j] = puts[i]
		}
		wg.Add(1)
		go func(gi, owner int, idxs []int, group []core.BatchPut) {
			defer wg.Done()
			if c.opts.NetLatency > 0 {
				time.Sleep(c.opts.NetLatency)
			}
			errs[gi] = c.servlets[owner].ExecCtx(ctx, func(eng *core.Engine) error {
				got, err := eng.PutBatch(ctx, group)
				if err != nil {
					return err
				}
				for j, i := range idxs {
					uids[i] = got[j]
				}
				return nil
			})
		}(gi, owner, idxs, group)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return uids, nil
}

// Put writes a value to a branch of key via the owning servlet. When
// re-balancing is enabled and the owner is overloaded, POS-Tree
// construction runs on the least-loaded servlet first and only the
// branch-table update runs on the owner (§4.6.1).
func (c *Cluster) Put(ctx context.Context, key, branchName string, v types.Value) (types.UID, error) {
	return c.PutAs(ctx, c.opts.DefaultUser, key, branchName, v, nil, nil)
}

// PutAs is Put on behalf of user, with optional version metadata and
// an optional guard uid (conditional write, §4.5.1). The access
// controller runs before dispatch; denied writes never reach the
// execution thread.
func (c *Cluster) PutAs(ctx context.Context, user, key, branchName string, v types.Value, meta []byte, guard *types.UID) (types.UID, error) {
	owner := c.master.Route(key)
	if err := c.servlets[owner].CheckAccess(user, key, branchName, servlet.PermWrite); err != nil {
		return types.UID{}, err
	}
	if c.opts.Rebalance && c.opts.Placement == TwoLayer &&
		c.servlets[owner].QueueDepth() >= c.opts.RebalanceThreshold {
		if helper := c.leastLoaded(owner); helper != owner {
			if err := c.servlets[helper].ExecCtx(ctx, func(eng *core.Engine) error {
				return types.Persist(eng.Store(), c.opts.Tree, v)
			}); err != nil {
				return types.UID{}, err
			}
		}
	}
	if c.opts.NetLatency > 0 {
		time.Sleep(c.opts.NetLatency)
	}
	var uid types.UID
	err := c.servlets[owner].ExecCtx(ctx, func(eng *core.Engine) error {
		var err error
		if guard != nil {
			uid, err = eng.PutGuarded([]byte(key), branchName, v, meta, *guard)
		} else {
			uid, err = eng.Put([]byte(key), branchName, v, meta)
		}
		return err
	})
	if err != nil {
		// Don't read uid: on a cancelled context the execution thread
		// may still be writing it.
		return types.UID{}, err
	}
	return uid, nil
}

// leastLoaded returns the servlet with the shortest queue, excluding
// owner only if another candidate is strictly shorter.
func (c *Cluster) leastLoaded(owner int) int {
	best, depth := owner, c.servlets[owner].QueueDepth()
	for i, sv := range c.servlets {
		if d := sv.QueueDepth(); d < depth {
			best, depth = i, d
		}
	}
	return best
}

// Get reads the head of a branch of key via the owning servlet.
func (c *Cluster) Get(ctx context.Context, key, branchName string) (*types.FObject, error) {
	var o *types.FObject
	err := c.dispatch(ctx, key, branchName, servlet.PermRead, func(eng *core.Engine) error {
		var err error
		o, err = eng.Get([]byte(key), branchName)
		return err
	})
	if err != nil {
		return nil, err
	}
	return o, nil
}

// GetChunk serves a chunk read directly from storage, bypassing the
// servlet execution thread the way dispatchers forward Get-Chunk
// requests straight to chunk storage (§4.6).
func (c *Cluster) GetChunk(owner int, id chunk.ID) (*chunk.Chunk, error) {
	if c.pool != nil {
		return c.pool.Get(id)
	}
	return c.locals[owner].Get(id)
}

// Value decodes an FObject fetched from the cluster against the store
// visible to its owning servlet.
func (c *Cluster) Value(key string, o *types.FObject) (types.Value, error) {
	return o.Value(c.servlets[c.master.Route(key)].Engine().Store(), c.opts.Tree)
}

// Fork forwards a Fork request to the owning servlet.
func (c *Cluster) Fork(ctx context.Context, key, refBranch, newBranch string) error {
	return c.dispatch(ctx, key, newBranch, servlet.PermWrite, func(eng *core.Engine) error {
		return eng.Fork([]byte(key), refBranch, newBranch)
	})
}

// ListKeys returns the union of keys across all servlets (M8), sorted.
// Listing the whole key space requires user to hold global read
// permission (the key/branch wildcard).
func (c *Cluster) ListKeys(ctx context.Context, user string) ([]string, error) {
	if err := c.opts.ACL.Check(user, "", "", servlet.PermRead); err != nil {
		return nil, err
	}
	var all []string
	for _, sv := range c.servlets {
		if c.opts.NetLatency > 0 {
			time.Sleep(c.opts.NetLatency)
		}
		err := sv.ExecCtx(ctx, func(eng *core.Engine) error {
			all = append(all, eng.ListKeys()...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(all)
	return all, nil
}

// GC runs one dedup-aware collection across the whole cluster. The
// mark must be global before any node sweeps: under two-layer
// placement a chunk on node i may be reachable only through a key
// owned by servlet j, so per-node collection with a local mark would
// destroy live data. The protocol:
//
//  1. open the write-protection window on every node's storage, so
//     chunks written by requests racing the collection are shielded;
//  2. enumerate each servlet's roots on its execution thread (branch
//     heads, untagged heads, pins) and mark through that servlet's own
//     store view — meta chunks resolve locally, tree chunks through
//     the shared pool;
//  3. sweep every node with the one global live set (replicas of a
//     chunk are thereby retained or reclaimed consistently), then drop
//     dead entries from the per-servlet pool caches.
func (c *Cluster) GC(ctx context.Context, threshold float64) (store.GCStats, error) {
	for _, l := range c.locals {
		l.BeginGC()
	}
	defer func() {
		for _, l := range c.locals {
			l.EndGC()
		}
	}()
	live := store.NewLiveSet()
	for _, sv := range c.servlets {
		var roots []types.UID
		if err := sv.ExecCtx(ctx, func(eng *core.Engine) error {
			roots = eng.Roots()
			return nil
		}); err != nil {
			return store.GCStats{}, err
		}
		if err := store.Mark(ctx, sv.Engine().Store(), live, roots, types.ChunkRefs); err != nil {
			return store.GCStats{}, err
		}
	}
	var total store.GCStats
	for i, l := range c.locals {
		s, err := l.Sweep(live.Contains, threshold)
		total.Add(s)
		if err != nil {
			return total, fmt.Errorf("cluster: node %d sweep: %w", i, err)
		}
	}
	total.Marked = live.Len()
	for _, ca := range c.caches {
		ca.DropDead(live.Contains)
	}
	return total, nil
}

// ListTaggedBranches lists the branches of key.
func (c *Cluster) ListTaggedBranches(ctx context.Context, key string) ([]branch.TaggedBranch, error) {
	var out []branch.TaggedBranch
	err := c.dispatch(ctx, key, "", servlet.PermRead, func(eng *core.Engine) error {
		out = eng.ListTaggedBranches([]byte(key))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
