// Package cluster implements the distributed deployment of ForkBase
// (paper §4.1, §4.6): a master holding cluster runtime information, a
// request dispatcher, N servlets each owning a hash slice of the key
// space, and the two-layer partitioning scheme that spreads chunks
// across all chunk-storage instances by cid.
//
// The paper evaluates on a 64-node cluster over 1 GbE. This package
// simulates that cluster in one process: servlets run as independent
// single-threaded workers connected by channels, and an optional
// per-request latency models the network hop. Partitioning, routing,
// re-balancing and the 1LP/2LP placement policies are implemented for
// real; only the transport is simulated (see DESIGN.md §4).
package cluster

import (
	"fmt"
	"hash/fnv"
	"time"

	"forkbase/internal/branch"
	"forkbase/internal/chunk"
	"forkbase/internal/core"
	"forkbase/internal/postree"
	"forkbase/internal/servlet"
	"forkbase/internal/store"
	"forkbase/internal/types"
)

// Placement selects how a servlet's chunks are placed on chunk storage.
type Placement int

const (
	// OneLayer (1LP) stores all of a key's chunks on the servlet that
	// owns the key. Skewed key workloads skew storage (Figure 15).
	OneLayer Placement = iota
	// TwoLayer (2LP) partitions ordinary chunks across all storage
	// instances by cid; only meta chunks stay local (§4.6). Storage
	// stays balanced even under skew.
	TwoLayer
)

// Options configures a cluster.
type Options struct {
	// Nodes is the number of servlet/chunk-storage pairs.
	Nodes int
	// Placement selects 1LP or 2LP chunk placement.
	Placement Placement
	// Replicas is the chunk replication factor under 2LP.
	Replicas int
	// NetLatency, when non-zero, is slept once per dispatched request
	// to model the client-servlet network hop.
	NetLatency time.Duration
	// Tree is the POS-Tree configuration for all servlets.
	Tree postree.Config
	// Rebalance enables forwarding POS-Tree construction away from
	// overloaded servlets (§4.6.1).
	Rebalance bool
	// RebalanceThreshold is the queue depth beyond which construction
	// is forwarded; 0 means 8.
	RebalanceThreshold int
}

// Master maintains cluster runtime information: the member list and the
// key-space routing table (§4.1).
type Master struct {
	members []int // servlet ids, index = hash slot
}

// Route returns the servlet id owning the key.
func (m *Master) Route(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return m.members[int(h.Sum32())%len(m.members)]
}

// Members returns the servlet ids.
func (m *Master) Members() []int { return append([]int(nil), m.members...) }

// Cluster is a simulated multi-servlet ForkBase deployment.
type Cluster struct {
	opts     Options
	master   *Master
	servlets []*servlet.Servlet
	locals   []*store.MemStore // per-node local storage
	pool     *store.Pool       // 2LP shared pool (nil under 1LP)
}

// metaLocalStore routes Meta chunks to the servlet's local storage and
// everything else through the shared pool — "meta chunks are always
// stored locally" (§4.6).
type metaLocalStore struct {
	local store.Store
	pool  *store.Pool
}

func (m *metaLocalStore) Put(c *chunk.Chunk) (bool, error) {
	if c.Type() == chunk.TypeMeta {
		return m.local.Put(c)
	}
	return m.pool.Put(c)
}

func (m *metaLocalStore) Get(id chunk.ID) (*chunk.Chunk, error) {
	if c, err := m.local.Get(id); err == nil {
		return c, nil
	}
	return m.pool.Get(id)
}

func (m *metaLocalStore) Has(id chunk.ID) bool {
	return m.local.Has(id) || m.pool.Has(id)
}

func (m *metaLocalStore) Stats() store.Stats { return m.local.Stats() }
func (m *metaLocalStore) Close() error       { return nil }

// New starts a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 node")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	if opts.RebalanceThreshold <= 0 {
		opts.RebalanceThreshold = 8
	}
	if opts.Tree.LeafQ == 0 {
		opts.Tree = postree.DefaultConfig()
	}
	c := &Cluster{opts: opts, master: &Master{}}
	for i := 0; i < opts.Nodes; i++ {
		c.locals = append(c.locals, store.NewMemStore())
		c.master.members = append(c.master.members, i)
	}
	if opts.Placement == TwoLayer {
		members := make([]store.Store, opts.Nodes)
		for i, l := range c.locals {
			members[i] = l
		}
		c.pool = store.NewPool(members, opts.Replicas)
	}
	for i := 0; i < opts.Nodes; i++ {
		var s store.Store = c.locals[i]
		if opts.Placement == TwoLayer {
			s = &metaLocalStore{local: c.locals[i], pool: c.pool}
		}
		c.servlets = append(c.servlets, servlet.New(i, s, opts.Tree, nil))
	}
	return c, nil
}

// Close stops all servlets.
func (c *Cluster) Close() {
	for _, sv := range c.servlets {
		sv.Close()
	}
}

// Master returns the cluster master.
func (c *Cluster) Master() *Master { return c.master }

// Servlet returns servlet i (for instrumentation).
func (c *Cluster) Servlet(i int) *servlet.Servlet { return c.servlets[i] }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.servlets) }

// NodeStorageBytes returns the bytes held by each node's local chunk
// storage; Figure 15 plots its distribution under skew.
func (c *Cluster) NodeStorageBytes() []int64 {
	out := make([]int64, len(c.locals))
	for i, l := range c.locals {
		out[i] = l.Stats().Bytes
	}
	return out
}

// dispatch routes a request to the owning servlet and executes it there.
func (c *Cluster) dispatch(key string, fn func(eng *core.Engine) error) error {
	if c.opts.NetLatency > 0 {
		time.Sleep(c.opts.NetLatency)
	}
	return c.servlets[c.master.Route(key)].Exec(fn)
}

// Put writes a value to a branch of key via the owning servlet. When
// re-balancing is enabled and the owner is overloaded, POS-Tree
// construction runs on the least-loaded servlet first and only the
// branch-table update runs on the owner (§4.6.1).
func (c *Cluster) Put(key, branchName string, v types.Value) (types.UID, error) {
	owner := c.master.Route(key)
	if c.opts.Rebalance && c.opts.Placement == TwoLayer &&
		c.servlets[owner].QueueDepth() >= c.opts.RebalanceThreshold {
		if helper := c.leastLoaded(owner); helper != owner {
			if err := c.servlets[helper].Exec(func(eng *core.Engine) error {
				return types.Persist(eng.Store(), c.opts.Tree, v)
			}); err != nil {
				return types.UID{}, err
			}
		}
	}
	var uid types.UID
	err := c.dispatch(key, func(eng *core.Engine) error {
		var err error
		uid, err = eng.Put([]byte(key), branchName, v, nil)
		return err
	})
	return uid, err
}

// leastLoaded returns the servlet with the shortest queue, excluding
// owner only if another candidate is strictly shorter.
func (c *Cluster) leastLoaded(owner int) int {
	best, depth := owner, c.servlets[owner].QueueDepth()
	for i, sv := range c.servlets {
		if d := sv.QueueDepth(); d < depth {
			best, depth = i, d
		}
	}
	return best
}

// Get reads the head of a branch of key via the owning servlet.
func (c *Cluster) Get(key, branchName string) (*types.FObject, error) {
	var o *types.FObject
	err := c.dispatch(key, func(eng *core.Engine) error {
		var err error
		o, err = eng.Get([]byte(key), branchName)
		return err
	})
	return o, err
}

// GetChunk serves a chunk read directly from storage, bypassing the
// servlet execution thread the way dispatchers forward Get-Chunk
// requests straight to chunk storage (§4.6).
func (c *Cluster) GetChunk(owner int, id chunk.ID) (*chunk.Chunk, error) {
	if c.pool != nil {
		return c.pool.Get(id)
	}
	return c.locals[owner].Get(id)
}

// Value decodes an FObject fetched from the cluster against the store
// visible to its owning servlet.
func (c *Cluster) Value(key string, o *types.FObject) (types.Value, error) {
	return o.Value(c.servlets[c.master.Route(key)].Engine().Store(), c.opts.Tree)
}

// Fork forwards a Fork request to the owning servlet.
func (c *Cluster) Fork(key, refBranch, newBranch string) error {
	return c.dispatch(key, func(eng *core.Engine) error {
		return eng.Fork([]byte(key), refBranch, newBranch)
	})
}

// ListTaggedBranches lists the branches of key.
func (c *Cluster) ListTaggedBranches(key string) ([]branch.TaggedBranch, error) {
	var out []branch.TaggedBranch
	err := c.dispatch(key, func(eng *core.Engine) error {
		out = eng.ListTaggedBranches([]byte(key))
		return nil
	})
	return out, err
}
