package postree

import (
	"context"
	"fmt"
	"testing"

	"forkbase/internal/store"
)

func TestDiffSortedExact(t *testing.T) {
	s := store.NewMemStore()
	base := randomKVs(2000, 10)
	a := buildMap(t, s, base)

	mod := make(map[string]string, len(base))
	for k, v := range base {
		mod[k] = v
	}
	keys := sortedKeys(base)
	delete(mod, keys[100])
	delete(mod, keys[1500])
	mod[keys[200]] = "changed-value"
	mod["aaa-brand-new"] = "v1"
	mod["zzz-brand-new"] = "v2"
	b := buildMap(t, s, mod)

	d, err := DiffSorted(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Removed) != 2 || len(d.Added) != 2 || len(d.Modified) != 1 {
		t.Fatalf("diff = +%d -%d ~%d, want +2 -2 ~1", len(d.Added), len(d.Removed), len(d.Modified))
	}
	if string(d.Modified[0].Key) != keys[200] || string(d.Modified[0].Value) != "changed-value" {
		t.Fatalf("modified = %q=%q", d.Modified[0].Key, d.Modified[0].Value)
	}
	// The comparison must have skipped most leaves via cid sharing.
	if d.SharedLeaves == 0 {
		t.Fatal("no leaves shared between near-identical trees")
	}
	if unshared := d.TotalLeaves - 2*d.SharedLeaves + d.SharedLeaves; unshared > d.SharedLeaves {
		t.Fatalf("too few shared leaves: shared=%d total=%d", d.SharedLeaves, d.TotalLeaves)
	}
}

func TestDiffIdenticalTrees(t *testing.T) {
	s := store.NewMemStore()
	kvs := randomKVs(500, 11)
	a := buildMap(t, s, kvs)
	b := buildMap(t, s, kvs)
	d, err := DiffSorted(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added)+len(d.Removed)+len(d.Modified) != 0 {
		t.Fatal("identical trees reported differences")
	}
}

func TestDiffEmptyVsFull(t *testing.T) {
	s := store.NewMemStore()
	kvs := randomKVs(300, 12)
	a := Empty(s, testConfig(), KindMap)
	b := buildMap(t, s, kvs)
	d, err := DiffSorted(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != len(kvs) || len(d.Removed) != 0 {
		t.Fatalf("diff empty vs full: +%d -%d", len(d.Added), len(d.Removed))
	}
}

func TestDiffUnsortedBlobs(t *testing.T) {
	s := store.NewMemStore()
	data := randBytes(128<<10, 13)
	a := buildBlob(t, s, data)
	edited := append([]byte(nil), data...)
	copy(edited[64<<10:], []byte("XXXX-EDIT-XXXX"))
	b := buildBlob(t, s, edited)
	d, err := DiffUnsorted(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.SharedLeaves == 0 {
		t.Fatal("no shared leaves after a 14-byte edit")
	}
	if d.OnlyA == 0 || d.OnlyB == 0 {
		t.Fatal("edit produced no unshared leaves")
	}
	if d.OnlyA > d.SharedLeaves || d.OnlyB > d.SharedLeaves {
		t.Fatalf("localized edit invalidated most leaves: onlyA=%d onlyB=%d shared=%d",
			d.OnlyA, d.OnlyB, d.SharedLeaves)
	}
}

func TestVerifyDetectsMissingChunk(t *testing.T) {
	s := store.NewMemStore()
	kvs := randomKVs(500, 14)
	tr := buildMap(t, s, kvs)
	if err := tr.Verify(); err != nil {
		t.Fatalf("Verify on intact tree: %v", err)
	}
	// Rebuild the tree against an empty store: every fetch fails.
	broken, err := Load(s, testConfig(), KindMap, tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	broken.s = store.NewMemStore()
	if err := broken.Verify(); err == nil {
		t.Fatal("Verify passed with all chunks missing")
	}
}

func TestDedupAcrossObjects(t *testing.T) {
	// Two different objects sharing 90% of content share most chunks
	// (cross-object dedup, §2.1).
	s := store.NewMemStore()
	common := randomKVs(1000, 15)
	a := buildMap(t, s, common)

	other := make(map[string]string, len(common))
	for k, v := range common {
		other[k] = v
	}
	for i := 0; i < 50; i++ {
		other[fmt.Sprintf("extra-%03d", i)] = "x"
	}
	before := s.Stats()
	b := buildMap(t, s, other)
	after := s.Stats()
	if after.Dups-before.Dups == 0 {
		t.Fatal("no chunks deduplicated across objects")
	}
	sa, _ := a.TreeStats()
	sb, _ := b.TreeStats()
	if grown := after.Bytes - before.Bytes; grown > (sa.Bytes+sb.Bytes)/3 {
		t.Fatalf("store grew %d for a mostly-shared object (tree sizes %d, %d)",
			grown, sa.Bytes, sb.Bytes)
	}
}
