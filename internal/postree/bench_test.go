package postree

import (
	"math/rand"
	"runtime"
	"testing"

	"forkbase/internal/store"
)

func benchBuildBlob(b *testing.B, chunkers int) {
	data := make([]byte, 8<<20)
	rand.New(rand.NewSource(42)).Read(data)
	cfg := DefaultConfig()
	cfg.Chunkers = chunkers
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := store.NewMemStore()
		bu := NewBuilder(s, cfg, KindBlob)
		bu.AppendBytes(data)
		if _, err := bu.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildBlobSequential(b *testing.B) { benchBuildBlob(b, 1) }
func BenchmarkBuildBlobParallel(b *testing.B)   { benchBuildBlob(b, 0) }
func BenchmarkBuildBlobParallel4(b *testing.B) {
	if runtime.GOMAXPROCS(0) < 4 {
		b.Skip("needs 4 procs for a meaningful number")
	}
	benchBuildBlob(b, 4)
}
