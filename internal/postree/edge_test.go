package postree

import (
	"context"
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/store"
)

func TestLoadMissingRoot(t *testing.T) {
	s := store.NewMemStore()
	var fake chunk.ID
	fake[0] = 0xab
	if _, err := Load(s, testConfig(), KindMap, fake); err == nil {
		t.Fatal("Load of a missing root succeeded")
	}
}

func TestAttachMatchesLoad(t *testing.T) {
	s := store.NewMemStore()
	tr := buildMap(t, s, randomKVs(800, 20))
	att := Attach(s, testConfig(), KindMap, tr.Root(), tr.Count(), tr.Height())
	if att.Count() != tr.Count() || att.Height() != tr.Height() {
		t.Fatal("Attach shape mismatch")
	}
	v1, ok1, err1 := tr.Get([]byte("key-00000001"))
	v2, ok2, err2 := att.Get([]byte("key-00000001"))
	if ok1 != ok2 || string(v1) != string(v2) || (err1 == nil) != (err2 == nil) {
		t.Fatal("Attach handle behaves differently from Load")
	}
}

func TestKindChecksOnWrongOperations(t *testing.T) {
	s := store.NewMemStore()
	m := buildMap(t, s, randomKVs(50, 21))
	if _, err := m.SpliceBytes(0, 0, []byte("x")); err == nil {
		t.Fatal("SpliceBytes on a Map succeeded")
	}
	if _, err := m.ListSplice(0, 0, nil); err == nil {
		t.Fatal("ListSplice on a Map succeeded")
	}
	if _, err := m.ReadAt(make([]byte, 4), 0); err == nil {
		t.Fatal("ReadAt on a Map succeeded")
	}
	if _, err := m.Bytes(); err == nil {
		t.Fatal("Bytes on a Map succeeded")
	}
	if _, err := m.SetAdd([]byte("e")); err == nil {
		t.Fatal("SetAdd on a Map succeeded")
	}
	b := buildBlob(t, s, randBytes(1024, 22))
	if _, _, err := b.Get([]byte("k")); err == nil {
		t.Fatal("Get on a Blob succeeded")
	}
	if _, err := b.GetAt(0); err == nil {
		t.Fatal("GetAt on a Blob succeeded")
	}
	if _, err := DiffSorted(context.Background(), b, b); err == nil {
		t.Fatal("DiffSorted on Blobs succeeded")
	}
	if _, err := DiffUnsorted(context.Background(), m, m); err == nil {
		t.Fatal("DiffUnsorted on Maps succeeded")
	}
}

func TestSpliceOutOfRange(t *testing.T) {
	s := store.NewMemStore()
	b := buildBlob(t, s, randBytes(1000, 23))
	if _, err := b.SpliceBytes(900, 200, nil); err == nil {
		t.Fatal("overlong delete succeeded")
	}
	if _, err := b.SpliceBytes(1001, 0, []byte("x")); err == nil {
		t.Fatal("append past end succeeded")
	}
	// Exactly at the end is an append and must work.
	b2, err := b.SpliceBytes(1000, 0, []byte("tail"))
	if err != nil || b2.Count() != 1004 {
		t.Fatalf("append at end: %v", err)
	}
}

func TestDeleteToEmptyAndRebuild(t *testing.T) {
	s := store.NewMemStore()
	kvs := randomKVs(200, 24)
	tr := buildMap(t, s, kvs)
	var dels [][]byte
	for k := range kvs {
		dels = append(dels, []byte(k))
	}
	empty, err := tr.MapApply(nil, dels)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Count() != 0 || !empty.Root().IsNil() {
		t.Fatalf("delete-all left count=%d root=%v", empty.Count(), empty.Root())
	}
	// The empty tree accepts new content again.
	again, err := empty.MapSet([]byte("fresh"), []byte("start"))
	if err != nil || again.Count() != 1 {
		t.Fatalf("rebuild from empty: %v", err)
	}
}

func TestElemIterEmptyTree(t *testing.T) {
	s := store.NewMemStore()
	tr := Empty(s, testConfig(), KindMap)
	it := tr.Elems()
	if it.Next() {
		t.Fatal("empty tree yielded an element")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	leaves := tr.Leaves()
	if leaves.Next() {
		t.Fatal("empty tree yielded a leaf")
	}
}

func TestSingleElementTree(t *testing.T) {
	s := store.NewMemStore()
	tr := Empty(s, testConfig(), KindMap)
	tr, err := tr.MapSet([]byte("only"), []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 || tr.Count() != 1 {
		t.Fatalf("shape: h=%d n=%d", tr.Height(), tr.Count())
	}
	v, ok, err := tr.Get([]byte("only"))
	if err != nil || !ok || string(v) != "one" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	loaded, err := Load(s, testConfig(), KindMap, tr.Root())
	if err != nil || loaded.Count() != 1 || loaded.Height() != 1 {
		t.Fatalf("load single-leaf: %v", err)
	}
}
