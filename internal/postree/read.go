package postree

import (
	"bytes"
	"fmt"
	"sort"

	"forkbase/internal/chunk"
)

// Get looks up the element with the given key in a sorted tree. For Map
// it returns the value; for Set it returns the element body. ok is false
// when the key is absent.
func (t *Tree) Get(key []byte) (val []byte, ok bool, err error) {
	if !t.kind.Sorted() {
		return nil, false, fmt.Errorf("postree: Get on unsorted %v tree", t.kind)
	}
	if t.root.IsNil() {
		return nil, false, nil
	}
	id := t.root
	for lvl := t.height; lvl > 1; lvl-- {
		c, err := t.getChunk(id)
		if err != nil {
			return nil, false, err
		}
		entries, err := decodeEntries(c.Data())
		if err != nil {
			return nil, false, err
		}
		// First subtree whose max key is >= target.
		i := sort.Search(len(entries), func(i int) bool {
			return bytes.Compare(entries[i].key, key) >= 0
		})
		if i == len(entries) {
			return nil, false, nil
		}
		id = entries[i].id
	}
	c, err := t.getChunk(id)
	if err != nil {
		return nil, false, err
	}
	payload := c.Data()
	for len(payload) > 0 {
		enc, adv, err := elementAt(t.kind, payload)
		if err != nil {
			return nil, false, err
		}
		switch bytes.Compare(elemKey(t.kind, enc), key) {
		case 0:
			if t.kind == KindMap {
				return MapElemValue(enc), true, nil
			}
			return SetElemBody(enc), true, nil
		case 1:
			return nil, false, nil
		}
		payload = payload[adv:]
	}
	return nil, false, nil
}

// Has reports whether key is present in a sorted tree.
func (t *Tree) Has(key []byte) (bool, error) {
	_, ok, err := t.Get(key)
	return ok, err
}

// GetAt returns the encoded element at position i (0-based). For Blob
// trees use ReadAt.
func (t *Tree) GetAt(i uint64) ([]byte, error) {
	if t.kind == KindBlob {
		return nil, fmt.Errorf("postree: GetAt on Blob tree; use ReadAt")
	}
	if i >= t.count {
		return nil, fmt.Errorf("postree: index %d out of range (count %d)", i, t.count)
	}
	id := t.root
	for lvl := t.height; lvl > 1; lvl-- {
		c, err := t.getChunk(id)
		if err != nil {
			return nil, err
		}
		entries, err := decodeEntries(c.Data())
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if i < e.count {
				id = e.id
				break
			}
			i -= e.count
		}
	}
	c, err := t.getChunk(id)
	if err != nil {
		return nil, err
	}
	payload := c.Data()
	for ; ; i-- {
		enc, adv, err := elementAt(t.kind, payload)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			return enc, nil
		}
		payload = payload[adv:]
	}
}

// ReadAt reads len(p) bytes of a Blob tree starting at offset off,
// fetching only the leaves that cover the range. It returns the number
// of bytes read, which is short only when the range passes the end.
func (t *Tree) ReadAt(p []byte, off uint64) (int, error) {
	if t.kind != KindBlob {
		return 0, fmt.Errorf("postree: ReadAt on %v tree", t.kind)
	}
	read := 0
	for read < len(p) && off+uint64(read) < t.count {
		pos := off + uint64(read)
		payload, start, err := t.blobLeafAt(pos)
		if err != nil {
			return read, err
		}
		read += copy(p[read:], payload[pos-start:])
	}
	return read, nil
}

// blobLeafAt returns the payload of the leaf covering byte position pos
// and the global offset of the leaf's first byte.
func (t *Tree) blobLeafAt(pos uint64) ([]byte, uint64, error) {
	id := t.root
	var start uint64
	i := pos
	for lvl := t.height; lvl > 1; lvl-- {
		c, err := t.getChunk(id)
		if err != nil {
			return nil, 0, err
		}
		entries, err := decodeEntries(c.Data())
		if err != nil {
			return nil, 0, err
		}
		for _, e := range entries {
			if i < e.count {
				id = e.id
				break
			}
			i -= e.count
			start += e.count
		}
	}
	c, err := t.getChunk(id)
	if err != nil {
		return nil, 0, err
	}
	return c.Data(), start, nil
}

// Bytes materializes the full content of a Blob tree.
func (t *Tree) Bytes() ([]byte, error) {
	if t.kind != KindBlob {
		return nil, fmt.Errorf("postree: Bytes on %v tree", t.kind)
	}
	out := make([]byte, 0, t.count)
	it := t.Leaves()
	for it.Next() {
		out = append(out, it.Payload()...)
	}
	return out, it.Err()
}

// LeafIter walks the leaf chunks of a tree left to right. The walk is
// type-driven: index chunks are expanded onto a stack, leaf chunks are
// yielded, so no depth bookkeeping is needed.
type LeafIter struct {
	t     *Tree
	stack [][]entry
	cur   *chunk.Chunk
	err   error
}

// Leaves returns an iterator over the tree's leaf chunks.
func (t *Tree) Leaves() *LeafIter {
	it := &LeafIter{t: t}
	if !t.root.IsNil() {
		it.stack = [][]entry{{{count: t.count, id: t.root}}}
	}
	return it
}

// Next advances to the next leaf chunk.
func (it *LeafIter) Next() bool {
	if it.err != nil {
		return false
	}
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		if len(*top) == 0 {
			it.stack = it.stack[:len(it.stack)-1]
			continue
		}
		e := (*top)[0]
		*top = (*top)[1:]
		c, err := it.t.getChunk(e.id)
		if err != nil {
			it.err = err
			return false
		}
		if isIndex(c.Type()) {
			entries, err := decodeEntries(c.Data())
			if err != nil {
				it.err = err
				return false
			}
			it.stack = append(it.stack, entries)
			continue
		}
		it.cur = c
		return true
	}
	return false
}

// Payload returns the current leaf chunk's payload.
func (it *LeafIter) Payload() []byte { return it.cur.Data() }

// Chunk returns the current leaf chunk.
func (it *LeafIter) Chunk() *chunk.Chunk { return it.cur }

// Err returns the first error encountered while iterating.
func (it *LeafIter) Err() error { return it.err }

// ElemIter yields the encoded elements of a non-Blob tree in order.
type ElemIter struct {
	t       *Tree
	leaves  *LeafIter
	payload []byte
	cur     []byte
	err     error
}

// Elems returns an iterator over encoded elements.
func (t *Tree) Elems() *ElemIter {
	return &ElemIter{t: t, leaves: t.Leaves()}
}

// Next advances to the next element.
func (it *ElemIter) Next() bool {
	if it.err != nil {
		return false
	}
	for len(it.payload) == 0 {
		if !it.leaves.Next() {
			it.err = it.leaves.Err()
			return false
		}
		it.payload = it.leaves.Payload()
	}
	enc, adv, err := elementAt(it.t.kind, it.payload)
	if err != nil {
		it.err = err
		return false
	}
	it.cur = enc
	it.payload = it.payload[adv:]
	return true
}

// Elem returns the current encoded element.
func (it *ElemIter) Elem() []byte { return it.cur }

// Err returns the first error encountered while iterating.
func (it *ElemIter) Err() error { return it.err }

// leafEntries collects the index entries of the leaf level (reading only
// index chunks, not leaves) together with a synthesized entry for a
// single-leaf tree.
func (t *Tree) leafEntries() ([]entry, error) {
	if t.root.IsNil() {
		return nil, nil
	}
	if t.height == 1 {
		e := entry{count: t.count, id: t.root}
		if t.kind.Sorted() {
			c, err := t.getChunk(t.root)
			if err != nil {
				return nil, err
			}
			k, err := lastElemKey(t.kind, c.Data())
			if err != nil {
				return nil, err
			}
			e.key = k
		}
		return []entry{e}, nil
	}
	var out []entry
	var walk func(id chunk.ID, lvl int) error
	walk = func(id chunk.ID, lvl int) error {
		c, err := t.getChunk(id)
		if err != nil {
			return err
		}
		entries, err := decodeEntries(c.Data())
		if err != nil {
			return err
		}
		if lvl == 2 {
			out = append(out, entries...)
			return nil
		}
		for _, e := range entries {
			if err := walk(e.id, lvl-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height); err != nil {
		return nil, err
	}
	return out, nil
}

// lastElemKey returns the key of the last element in a sorted leaf
// payload.
func lastElemKey(k Kind, payload []byte) ([]byte, error) {
	var last []byte
	for len(payload) > 0 {
		enc, adv, err := elementAt(k, payload)
		if err != nil {
			return nil, err
		}
		last = elemKey(k, enc)
		payload = payload[adv:]
	}
	return append([]byte(nil), last...), nil
}
