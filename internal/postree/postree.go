// Package postree implements the Pattern-Oriented-Split Tree (paper §4.3),
// the index structure at the heart of ForkBase. A POS-Tree resembles a
// B+-tree whose node boundaries are not capacity-based but derived from
// the content itself: leaf chunks end where a rolling hash over the data
// matches a pattern, and index chunks end where a child cid matches a
// pattern. Node pointers are cids (cryptographic hashes of child
// content), so the tree is simultaneously a Merkle tree.
//
// Consequences, exactly as the paper claims:
//
//   - Two objects with identical content have bit-identical trees, no
//     matter through which edit sequence they were produced, so chunks
//     are shared (deduplicated) across versions and across objects.
//   - Comparing two trees descends only into subtrees whose cids differ.
//   - Any node can be verified against the cid that referenced it, which
//     makes the whole object tamper-evident.
//
// One Tree value is an immutable snapshot; all mutating operations return
// a new Tree that shares unchanged chunks with the receiver (copy on
// write).
package postree

import (
	"encoding/binary"
	"fmt"
	"runtime"

	"forkbase/internal/chunk"
	"forkbase/internal/rollsum"
	"forkbase/internal/store"
)

// Config sets the expected and maximum chunk sizes (§4.3.3). The paper's
// default is 4 KB chunks with a forced split at alpha (=8) times the
// average size.
type Config struct {
	// LeafQ is q: expected leaf chunk size is 2^q bytes.
	LeafQ uint
	// IndexR is r: expected index fan-out is 2^r entries.
	IndexR uint
	// MaxLeafBytes forces a leaf boundary; 0 means 8 * 2^LeafQ.
	MaxLeafBytes int
	// MaxIndexEntries forces an index boundary; 0 means 8 * 2^IndexR.
	MaxIndexEntries int
	// Chunkers bounds the worker pool a Builder may fan chunk hashing
	// and store writes across. 0 means GOMAXPROCS; 1 pins the builder
	// to the sequential path. Trees built at any setting are
	// byte-identical — parallelism changes the schedule, never the
	// boundaries (see parbuilder.go) — so the knob is purely about CPU.
	Chunkers int
}

// DefaultConfig matches the paper's evaluation setup: 4 KB expected
// chunks for both leaf and index nodes (index entries are ~44 bytes, so
// r=6 gives 64-entry ≈ 3 KB index chunks) and alpha = 8.
func DefaultConfig() Config {
	return Config{LeafQ: 12, IndexR: 6}
}

func (c Config) maxLeaf() int {
	if c.MaxLeafBytes > 0 {
		return c.MaxLeafBytes
	}
	return 8 << c.LeafQ
}

func (c Config) maxIndex() int {
	if c.MaxIndexEntries > 0 {
		return c.MaxIndexEntries
	}
	return 8 << c.IndexR
}

func (c Config) chunkers() int {
	if c.Chunkers > 0 {
		return c.Chunkers
	}
	return runtime.GOMAXPROCS(0)
}

// Kind discriminates the leaf payload layout. Sorted kinds (Set, Map)
// use SIndex nodes with split keys; unsorted kinds (Blob, List) use
// UIndex nodes with element counts.
type Kind byte

const (
	// KindBlob is an unsorted raw byte sequence; elements are bytes.
	KindBlob Kind = iota
	// KindList is an unsorted sequence of variable-length elements.
	KindList
	// KindSet is a sorted sequence of unique elements.
	KindSet
	// KindMap is a sorted sequence of unique key-value pairs.
	KindMap
)

// Sorted reports whether the kind maintains key order.
func (k Kind) Sorted() bool { return k == KindSet || k == KindMap }

// leafType returns the chunk type used for leaf nodes of this kind.
func (k Kind) leafType() chunk.Type {
	switch k {
	case KindBlob:
		return chunk.TypeBlob
	case KindList:
		return chunk.TypeList
	case KindSet:
		return chunk.TypeSet
	case KindMap:
		return chunk.TypeMap
	}
	panic("postree: bad kind")
}

// indexType returns the chunk type used for index nodes of this kind.
func (k Kind) indexType() chunk.Type {
	if k.Sorted() {
		return chunk.TypeSIndex
	}
	return chunk.TypeUIndex
}

func (k Kind) String() string {
	switch k {
	case KindBlob:
		return "Blob"
	case KindList:
		return "List"
	case KindSet:
		return "Set"
	case KindMap:
		return "Map"
	}
	return fmt.Sprintf("Kind(%d)", byte(k))
}

// Tree is an immutable POS-Tree snapshot rooted at a chunk. The zero
// Tree is not usable; obtain one from a Builder, Load, or an edit method.
type Tree struct {
	s      store.Store
	cfg    Config
	kind   Kind
	root   chunk.ID // NilID when the tree is empty
	count  uint64   // elements (bytes for Blob)
	height int      // 0 when empty, 1 when the root is a leaf
}

// Empty returns the empty tree of the given kind.
func Empty(s store.Store, cfg Config, kind Kind) *Tree {
	return &Tree{s: s, cfg: cfg, kind: kind}
}

// Attach builds a Tree handle from known shape parameters without
// touching the store. Callers (e.g. FObject decoding) persist count and
// height alongside the root cid precisely to avoid the walk Load does.
func Attach(s store.Store, cfg Config, kind Kind, root chunk.ID, count uint64, height int) *Tree {
	return &Tree{s: s, cfg: cfg, kind: kind, root: root, count: count, height: height}
}

// Load reconstructs a Tree handle from a root cid, deriving height and
// element count from the root node. Loading the zero cid yields the
// empty tree.
func Load(s store.Store, cfg Config, kind Kind, root chunk.ID) (*Tree, error) {
	t := &Tree{s: s, cfg: cfg, kind: kind, root: root}
	if root.IsNil() {
		return t, nil
	}
	c, err := store.GetVerified(s, root)
	if err != nil {
		return nil, err
	}
	t.height = 1
	cur := c
	for isIndex(cur.Type()) {
		entries, err := decodeEntries(cur.Data())
		if err != nil {
			return nil, err
		}
		if t.height == 1 { // root: counts sum to the total
			for _, e := range entries {
				t.count += e.count
			}
		}
		t.height++
		cur, err = store.GetVerified(s, entries[0].id)
		if err != nil {
			return nil, err
		}
	}
	if t.height == 1 {
		n, err := leafCount(t.kind, c.Data())
		if err != nil {
			return nil, err
		}
		t.count = n
	}
	return t, nil
}

// Root returns the root cid (NilID for the empty tree).
func (t *Tree) Root() chunk.ID { return t.root }

// Count returns the number of elements (bytes for Blob).
func (t *Tree) Count() uint64 { return t.count }

// Height returns the number of levels (0 when empty).
func (t *Tree) Height() int { return t.height }

// Kind returns the tree's kind.
func (t *Tree) Kind() Kind { return t.kind }

// Store returns the backing chunk store.
func (t *Tree) Store() store.Store { return t.s }

func isIndex(t chunk.Type) bool {
	return t == chunk.TypeUIndex || t == chunk.TypeSIndex
}

// entry is one index-node slot: the split key (empty for unsorted
// kinds), the number of elements in the subtree, and the child cid.
type entry struct {
	key   []byte
	count uint64
	id    chunk.ID
}

// encodedSize returns the serialized entry size.
func (e entry) encodedSize() int { return 4 + len(e.key) + 8 + chunk.IDSize }

func appendEntry(dst []byte, e entry) []byte {
	var b [12]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(e.key)))
	dst = append(dst, b[0:4]...)
	dst = append(dst, e.key...)
	binary.LittleEndian.PutUint64(b[0:8], e.count)
	dst = append(dst, b[0:8]...)
	dst = append(dst, e.id[:]...)
	return dst
}

func decodeEntries(payload []byte) ([]entry, error) {
	var out []entry
	for len(payload) > 0 {
		if len(payload) < 4 {
			return nil, fmt.Errorf("postree: truncated index entry")
		}
		kl := int(binary.LittleEndian.Uint32(payload))
		payload = payload[4:]
		if len(payload) < kl+8+chunk.IDSize {
			return nil, fmt.Errorf("postree: truncated index entry")
		}
		var e entry
		if kl > 0 {
			e.key = payload[:kl:kl]
		}
		payload = payload[kl:]
		e.count = binary.LittleEndian.Uint64(payload)
		payload = payload[8:]
		copy(e.id[:], payload[:chunk.IDSize])
		payload = payload[chunk.IDSize:]
		out = append(out, e)
	}
	return out, nil
}

// IndexChildIDs returns the child cids referenced by an index-node
// payload (TypeUIndex or TypeSIndex). The garbage collector's marker
// uses it to follow POS-Tree edges without decoding full entries.
func IndexChildIDs(payload []byte) ([]chunk.ID, error) {
	entries, err := decodeEntries(payload)
	if err != nil {
		return nil, err
	}
	out := make([]chunk.ID, len(entries))
	for i, e := range entries {
		out[i] = e.id
	}
	return out, nil
}

// leafCount returns the number of elements in a leaf payload.
func leafCount(k Kind, payload []byte) (uint64, error) {
	if k == KindBlob {
		return uint64(len(payload)), nil
	}
	var n uint64
	for len(payload) > 0 {
		sz, adv, err := elementAt(k, payload)
		if err != nil {
			return 0, err
		}
		_ = sz
		payload = payload[adv:]
		n++
	}
	return n, nil
}

// elementAt parses the first element of a non-Blob leaf payload and
// returns its body and total advance.
func elementAt(k Kind, payload []byte) (body []byte, adv int, err error) {
	switch k {
	case KindList, KindSet:
		if len(payload) < 4 {
			return nil, 0, fmt.Errorf("postree: truncated element")
		}
		n := int(binary.LittleEndian.Uint32(payload))
		if len(payload) < 4+n {
			return nil, 0, fmt.Errorf("postree: truncated element")
		}
		return payload[: 4+n : 4+n], 4 + n, nil
	case KindMap:
		if len(payload) < 8 {
			return nil, 0, fmt.Errorf("postree: truncated map element")
		}
		kl := int(binary.LittleEndian.Uint32(payload))
		if len(payload) < 8+kl {
			return nil, 0, fmt.Errorf("postree: truncated map element")
		}
		vl := int(binary.LittleEndian.Uint32(payload[4+kl:]))
		tot := 8 + kl + vl
		if len(payload) < tot {
			return nil, 0, fmt.Errorf("postree: truncated map element")
		}
		return payload[:tot:tot], tot, nil
	}
	return nil, 0, fmt.Errorf("postree: elementAt on kind %v", k)
}

// EncodeListElem encodes a List/Set element body.
func EncodeListElem(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	return out
}

// EncodeMapElem encodes a Map key-value pair.
func EncodeMapElem(key, value []byte) []byte {
	out := make([]byte, 8+len(key)+len(value))
	binary.LittleEndian.PutUint32(out, uint32(len(key)))
	copy(out[4:], key)
	binary.LittleEndian.PutUint32(out[4+len(key):], uint32(len(value)))
	copy(out[8+len(key):], value)
	return out
}

// elemKey extracts the sort key of an encoded element: the element body
// for Set, the key part for Map.
func elemKey(k Kind, encoded []byte) []byte {
	switch k {
	case KindSet:
		return encoded[4:]
	case KindMap:
		kl := int(binary.LittleEndian.Uint32(encoded))
		return encoded[4 : 4+kl : 4+kl]
	}
	return nil
}

// MapElemValue extracts the value part of an encoded Map element.
func MapElemValue(encoded []byte) []byte {
	kl := int(binary.LittleEndian.Uint32(encoded))
	return encoded[8+kl:]
}

// MapElemKey extracts the key part of an encoded Map element.
func MapElemKey(encoded []byte) []byte { return elemKey(KindMap, encoded) }

// SetElemBody extracts the body of an encoded Set/List element.
func SetElemBody(encoded []byte) []byte { return encoded[4:] }

// getChunk fetches one tree node through the store stack the tree was
// attached to — a store.Cache turns the repeated root/index reads of
// Get/GetAt/ReadAt and the shared-subtree reads of iterators into
// memory lookups — and verifies it against the cid that referenced it,
// which is the Merkle property making every traversal tamper-evident.
// (The check compares the digest computed when the chunk was decoded;
// it does not re-hash on every read.)
func (t *Tree) getChunk(id chunk.ID) (*chunk.Chunk, error) {
	return store.GetVerified(t.s, id)
}

// leafChunker returns a chunker configured for this tree's leaves.
func (t *Tree) leafChunker() *rollsum.Chunker {
	return rollsum.NewChunker(t.cfg.LeafQ, t.cfg.maxLeaf())
}
