package postree

import (
	"fmt"
	"math/rand"
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/store"
)

// buildBlobWith builds one blob with the given chunker count, feeding
// the data in caller-chosen slice sizes to exercise streaming.
func buildBlobWith(t *testing.T, chunkers int, data []byte, step int) (*Tree, *store.MemStore) {
	t.Helper()
	s := store.NewMemStore()
	cfg := DefaultConfig()
	cfg.Chunkers = chunkers
	b := NewBuilder(s, cfg, KindBlob)
	for off := 0; off < len(data); off += step {
		end := off + step
		if end > len(data) {
			end = len(data)
		}
		b.AppendBytes(data[off:end])
	}
	tree, err := b.Finish()
	if err != nil {
		t.Fatalf("chunkers=%d: %v", chunkers, err)
	}
	return tree, s
}

// treeChunkIDs returns every chunk id reachable from the tree, in walk
// order.
func treeChunkIDs(t *testing.T, tree *Tree) []chunk.ID {
	t.Helper()
	var ids []chunk.ID
	if err := tree.WalkChunkIDs(func(id chunk.ID, _ bool) error {
		ids = append(ids, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

func assertSameTree(t *testing.T, a, b *Tree, sa, sb *store.MemStore, label string) {
	t.Helper()
	if a.Root() != b.Root() {
		t.Fatalf("%s: roots differ: %s vs %s", label, a.Root().Short(), b.Root().Short())
	}
	if a.Count() != b.Count() || a.Height() != b.Height() {
		t.Fatalf("%s: shape differs: count %d/%d height %d/%d", label, a.Count(), b.Count(), a.Height(), b.Height())
	}
	if sa.Stats().Chunks != sb.Stats().Chunks {
		t.Fatalf("%s: stored chunk count differs: %d vs %d", label, sa.Stats().Chunks, sb.Stats().Chunks)
	}
	ia, ib := treeChunkIDs(t, a), treeChunkIDs(t, b)
	if len(ia) != len(ib) {
		t.Fatalf("%s: reachable chunk count differs: %d vs %d", label, len(ia), len(ib))
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("%s: chunk %d differs: %s vs %s", label, i, ia[i].Short(), ib[i].Short())
		}
	}
}

// The hard requirement of parallel construction: byte-identical trees.
// Random, compressible, and pattern-free content, fed in varying slice
// sizes, across several worker counts — every build must produce the
// sequential root and chunk set.
func TestParallelBuilderDeterminismBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"tiny", []byte("hello")},
		{"one-chunk", make([]byte, 1000)},
		{"random-3MB", make([]byte, 3<<20)},
		{"random-odd", make([]byte, 2<<20+12345)},
		{"zeros-1MB", make([]byte, 1<<20)}, // pattern-free: stitch fallback path
		{"repeat-1MB", make([]byte, 1<<20)},
	}
	rng.Read(cases[3].data)
	rng.Read(cases[4].data)
	for i := range cases[6].data {
		cases[6].data[i] = byte("abcd"[i%4]) // low-entropy, still patternable
	}
	for _, tc := range cases {
		seqTree, seqStore := buildBlobWith(t, 1, tc.data, 64<<10)
		for _, workers := range []int{2, 3, 8} {
			for _, step := range []int{1 << 20, 7777} {
				parTree, parStore := buildBlobWith(t, workers, tc.data, step)
				assertSameTree(t, seqTree, parTree, seqStore, parStore,
					fmt.Sprintf("%s workers=%d step=%d", tc.name, workers, step))
			}
		}
	}
}

// Random edit scripts: splice random spans in and out of a large blob
// and rebuild with both builders after every edit.
func TestParallelBuilderDeterminismEditScripts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := make([]byte, 2<<20)
	rng.Read(data)
	for edit := 0; edit < 6; edit++ {
		at := rng.Intn(len(data))
		span := rng.Intn(32 << 10)
		switch edit % 3 {
		case 0: // overwrite
			end := at + span
			if end > len(data) {
				end = len(data)
			}
			rng.Read(data[at:end])
		case 1: // insert
			ins := make([]byte, span)
			rng.Read(ins)
			data = append(data[:at], append(ins, data[at:]...)...)
		case 2: // delete
			end := at + span
			if end > len(data) {
				end = len(data)
			}
			data = append(data[:at], data[end:]...)
		}
		seqTree, seqStore := buildBlobWith(t, 1, data, 1<<20)
		parTree, parStore := buildBlobWith(t, 4, data, 1<<20)
		assertSameTree(t, seqTree, parTree, seqStore, parStore, fmt.Sprintf("edit %d", edit))
	}
}

// Element kinds cross the activation threshold too: the pool takes over
// leaf hashing while the caller keeps scanning — entries must come back
// in submission order.
func TestParallelBuilderDeterminismMap(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	build := func(chunkers int) (*Tree, *store.MemStore) {
		s := store.NewMemStore()
		cfg := DefaultConfig()
		cfg.Chunkers = chunkers
		b := NewBuilder(s, cfg, KindMap)
		val := make([]byte, 64)
		for i := 0; i < 20000; i++ {
			rng2 := rand.New(rand.NewSource(int64(i)))
			rng2.Read(val)
			b.Append(EncodeMapElem([]byte(fmt.Sprintf("key-%08d", i)), val))
		}
		tree, err := b.Finish()
		if err != nil {
			t.Fatalf("chunkers=%d: %v", chunkers, err)
		}
		return tree, s
	}
	_ = rng
	seqTree, seqStore := build(1)
	parTree, parStore := build(4)
	assertSameTree(t, seqTree, parTree, seqStore, parStore, "map-20k")
}

// errAfterStore fails every Put after the first n.
type errAfterStore struct {
	*store.MemStore
	n    int
	seen int
}

func (s *errAfterStore) Put(c *chunk.Chunk) (bool, error) {
	s.seen++
	if s.seen > s.n {
		return false, fmt.Errorf("synthetic put failure")
	}
	return s.MemStore.Put(c)
}

// A store failure inside a worker must surface from Finish and must not
// wedge the pipeline (submitters keep draining).
func TestParallelBuilderPutError(t *testing.T) {
	data := make([]byte, 2<<20)
	rand.New(rand.NewSource(23)).Read(data)
	s := &errAfterStore{MemStore: store.NewMemStore(), n: 80}
	cfg := DefaultConfig()
	cfg.Chunkers = 4
	b := NewBuilder(s, cfg, KindBlob)
	b.AppendBytes(data)
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish succeeded despite store failures")
	}
}

// Chunkers=1 must stay on the sequential path: per built leaf it pays
// the payload copy, the chunk header, and the entries slot — nothing
// from the parallel machinery. The ceiling is loose enough to absorb
// slice-growth amortization, tight enough that an accidental pool
// activation (goroutines, channels, blocks) blows straight through it.
func TestSequentialBuilderAllocsPinned(t *testing.T) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(24)).Read(data)
	cfg := DefaultConfig()
	cfg.Chunkers = 1
	var leaves int
	allocs := testing.AllocsPerRun(5, func() {
		s := store.NewMemStore()
		b := NewBuilder(s, cfg, KindBlob)
		b.AppendBytes(data)
		tree, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		leaves = int(tree.Count()) // keep the build from being elided
	})
	_ = leaves
	nchunks := 1 << 20 / 4096 // ~256 leaves plus a few index nodes
	if perChunk := allocs / float64(nchunks); perChunk > 6 {
		t.Fatalf("sequential build allocates %.1f allocs per chunk (%.0f total); the Chunkers=1 path must stay allocation-lean", perChunk, allocs)
	}
}
