package postree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"forkbase/internal/store"
)

func buildBlob(t *testing.T, s store.Store, data []byte) *Tree {
	t.Helper()
	b := NewBuilder(s, testConfig(), KindBlob)
	b.AppendBytes(data)
	tr, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randBytes(n int, seed int64) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestBlobRoundTrip(t *testing.T) {
	s := store.NewMemStore()
	data := randBytes(64<<10, 1)
	tr := buildBlob(t, s, data)
	if tr.Count() != uint64(len(data)) {
		t.Fatalf("count %d, want %d", tr.Count(), len(data))
	}
	got, err := tr.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("blob content mismatch")
	}
}

func TestBlobReadAt(t *testing.T) {
	s := store.NewMemStore()
	data := randBytes(32<<10, 2)
	tr := buildBlob(t, s, data)
	for _, tc := range []struct{ off, n int }{
		{0, 100}, {1000, 5000}, {len(data) - 10, 10}, {len(data) - 5, 100},
	} {
		p := make([]byte, tc.n)
		n, err := tr.ReadAt(p, uint64(tc.off))
		if err != nil {
			t.Fatal(err)
		}
		want := tc.n
		if tc.off+tc.n > len(data) {
			want = len(data) - tc.off
		}
		if n != want || !bytes.Equal(p[:n], data[tc.off:tc.off+n]) {
			t.Fatalf("ReadAt(%d,%d): n=%d want %d", tc.off, tc.n, n, want)
		}
	}
}

func TestBlobSpliceAgainstModel(t *testing.T) {
	s := store.NewMemStore()
	model := randBytes(40<<10, 3)
	tr := buildBlob(t, s, model)
	rng := rand.New(rand.NewSource(4))

	for round := 0; round < 25; round++ {
		off := rng.Intn(len(model) + 1)
		del := rng.Intn(200)
		if off+del > len(model) {
			del = len(model) - off
		}
		ins := randBytes(rng.Intn(300), int64(round+100))
		var err error
		tr, err = tr.SpliceBytes(uint64(off), uint64(del), ins)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		next := make([]byte, 0, len(model)-del+len(ins))
		next = append(next, model[:off]...)
		next = append(next, ins...)
		next = append(next, model[off+del:]...)
		model = next
		if tr.Count() != uint64(len(model)) {
			t.Fatalf("round %d: count %d, want %d", round, tr.Count(), len(model))
		}
	}
	got, err := tr.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("blob diverged from model after splices")
	}
	// History independence for blobs too.
	fresh := buildBlob(t, s, model)
	if fresh.Root() != tr.Root() {
		t.Fatal("spliced blob differs from fresh build of same content")
	}
}

func TestBlobSpliceLocalizesWrites(t *testing.T) {
	s := store.NewMemStore()
	data := randBytes(256<<10, 5)
	tr := buildBlob(t, s, data)
	st, _ := tr.TreeStats()
	before := s.Stats()
	// A small in-place edit in the middle.
	tr2, err := tr.SpliceBytes(128<<10, 16, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if newBytes := after.Bytes - before.Bytes; newBytes > st.Bytes/8 {
		t.Fatalf("middle edit wrote %d of %d tree bytes; boundary resync failed", newBytes, st.Bytes)
	}
	if tr2.Count() != tr.Count() {
		t.Fatalf("count changed: %d vs %d", tr2.Count(), tr.Count())
	}
}

func TestBlobAppendGrows(t *testing.T) {
	s := store.NewMemStore()
	tr := Empty(s, testConfig(), KindBlob)
	var model []byte
	for i := 0; i < 20; i++ {
		piece := randBytes(1000, int64(i))
		var err error
		tr, err = tr.SpliceBytes(tr.Count(), 0, piece)
		if err != nil {
			t.Fatal(err)
		}
		model = append(model, piece...)
	}
	got, err := tr.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("append sequence mismatch")
	}
}

// Repeated content: no patterns fire, chunks are forced at max size, but
// dedup still collapses them (§4.3.3).
func TestRepeatedContent(t *testing.T) {
	s := store.NewMemStore()
	data := make([]byte, 512<<10) // all zeros
	tr := buildBlob(t, s, data)
	st, err := tr.TreeStats()
	if err != nil {
		t.Fatal(err)
	}
	// All leaves are identical so the store holds very few of them.
	if got := s.Stats().Chunks; got > 5 {
		t.Fatalf("repeated content produced %d distinct chunks", got)
	}
	if st.Leaves < 100 {
		t.Fatalf("logical leaves %d suspiciously few", st.Leaves)
	}
	got, err := tr.Bytes()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("repeated content round trip failed: %v", err)
	}
}

func TestListSpliceAgainstModel(t *testing.T) {
	s := store.NewMemStore()
	var model [][]byte
	b := NewBuilder(s, testConfig(), KindList)
	for i := 0; i < 1000; i++ {
		e := []byte(fmt.Sprintf("element-%04d-%d", i, i*7))
		model = append(model, e)
		b.Append(EncodeListElem(e))
	}
	tr, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for round := 0; round < 20; round++ {
		at := rng.Intn(len(model) + 1)
		del := rng.Intn(20)
		if at+del > len(model) {
			del = len(model) - at
		}
		var ins [][]byte
		for i := 0; i < rng.Intn(20); i++ {
			ins = append(ins, []byte(fmt.Sprintf("ins-%d-%d", round, i)))
		}
		tr, err = tr.ListSplice(uint64(at), uint64(del), ins)
		if err != nil {
			t.Fatal(err)
		}
		next := make([][]byte, 0, len(model)-del+len(ins))
		next = append(next, model[:at]...)
		next = append(next, ins...)
		next = append(next, model[at+del:]...)
		model = next
	}
	if tr.Count() != uint64(len(model)) {
		t.Fatalf("count %d, want %d", tr.Count(), len(model))
	}
	it := tr.Elems()
	for i := 0; it.Next(); i++ {
		if !bytes.Equal(SetElemBody(it.Elem()), model[i]) {
			t.Fatalf("element %d mismatch", i)
		}
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	for _, i := range []int{0, len(model) / 2, len(model) - 1} {
		enc, err := tr.GetAt(uint64(i))
		if err != nil || !bytes.Equal(SetElemBody(enc), model[i]) {
			t.Fatalf("GetAt(%d) mismatch: %v", i, err)
		}
	}
}

// Property: for any two byte strings, building a blob and reading it
// back is the identity, and equal content means equal roots.
func TestQuickBlobIdentity(t *testing.T) {
	s := store.NewMemStore()
	f := func(data []byte) bool {
		b := NewBuilder(s, testConfig(), KindBlob)
		b.AppendBytes(data)
		tr, err := b.Finish()
		if err != nil {
			return false
		}
		got, err := tr.Bytes()
		if err != nil || !bytes.Equal(got, data) {
			return false
		}
		b2 := NewBuilder(s, testConfig(), KindBlob)
		b2.AppendBytes(data)
		tr2, err := b2.Finish()
		return err == nil && tr2.Root() == tr.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a random splice equals rebuild-from-scratch of the spliced
// content (history independence under arbitrary edits).
func TestQuickSpliceEqualsRebuild(t *testing.T) {
	s := store.NewMemStore()
	f := func(seed int64, off16, del16, insLen16 uint16) bool {
		base := randBytes(8<<10, seed)
		off := int(off16) % (len(base) + 1)
		del := int(del16) % 512
		if off+del > len(base) {
			del = len(base) - off
		}
		ins := randBytes(int(insLen16)%512, seed+1)
		tr := func() *Tree {
			b := NewBuilder(s, testConfig(), KindBlob)
			b.AppendBytes(base)
			tr, err := b.Finish()
			if err != nil {
				return nil
			}
			tr2, err := tr.SpliceBytes(uint64(off), uint64(del), ins)
			if err != nil {
				return nil
			}
			return tr2
		}()
		if tr == nil {
			return false
		}
		want := append(append(append([]byte(nil), base[:off]...), ins...), base[off+del:]...)
		b := NewBuilder(s, testConfig(), KindBlob)
		b.AppendBytes(want)
		fresh, err := b.Finish()
		return err == nil && fresh.Root() == tr.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
