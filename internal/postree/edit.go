package postree

import (
	"bytes"
	"fmt"
	"sort"

	"forkbase/internal/chunk"
	"forkbase/internal/rollsum"
	"forkbase/internal/store"
)

// Edits are copy-on-write (§4.3.3): only the leaves covering the edited
// region are re-chunked. Because the chunker's window is reset at every
// boundary, the new chunk sequence re-aligns with the old one at the
// first old leaf boundary sufficiently past the edit; from that point on
// all chunks are bit-identical and are reused verbatim. Index levels are
// then rebuilt from the leaf entry list, and unchanged index chunks
// deduplicate in the store.

// leafWriter accumulates elements (or bytes) into leaf chunks, committing
// at pattern boundaries.
type leafWriter struct {
	s             store.Store
	kind          Kind
	chunker       *rollsum.Chunker
	buf           []byte
	n             uint64
	lastKey       []byte
	entries       []entry
	justCommitted bool
}

func newLeafWriter(t *Tree) *leafWriter {
	return &leafWriter{s: t.s, kind: t.kind, chunker: t.leafChunker()}
}

func (w *leafWriter) writeElem(enc []byte) error {
	w.buf = append(w.buf, enc...)
	w.n++
	if w.kind.Sorted() {
		w.lastKey = append(w.lastKey[:0], elemKey(w.kind, enc)...)
	}
	w.chunker.Feed(enc)
	w.justCommitted = false
	if w.chunker.Boundary() {
		return w.commit()
	}
	return nil
}

func (w *leafWriter) commit() error {
	if w.n == 0 {
		return nil
	}
	payload := make([]byte, len(w.buf))
	copy(payload, w.buf)
	c := chunk.New(w.kind.leafType(), payload)
	if _, err := w.s.Put(c); err != nil {
		return err
	}
	e := entry{count: w.n, id: c.ID()}
	if w.kind.Sorted() {
		e.key = append([]byte(nil), w.lastKey...)
	}
	w.entries = append(w.entries, e)
	w.buf = w.buf[:0]
	w.n = 0
	w.chunker.Next()
	w.justCommitted = true
	return nil
}

// leafElems decodes the encoded elements of one leaf chunk.
func (t *Tree) leafElems(id chunk.ID) ([][]byte, error) {
	c, err := t.getChunk(id)
	if err != nil {
		return nil, err
	}
	payload := c.Data()
	var out [][]byte
	for len(payload) > 0 {
		enc, adv, err := elementAt(t.kind, payload)
		if err != nil {
			return nil, err
		}
		out = append(out, enc)
		payload = payload[adv:]
	}
	return out, nil
}

// replaceElemRegion rebuilds a non-Blob tree with leaves [lo, hi)
// replaced by the given element sequence, re-synchronizing with the old
// leaf boundaries past the region.
func (t *Tree) replaceElemRegion(leaves []entry, lo, hi int, region [][]byte) (*Tree, error) {
	w := newLeafWriter(t)
	w.entries = append(w.entries, leaves[:lo]...)
	for _, enc := range region {
		if err := w.writeElem(enc); err != nil {
			return nil, err
		}
	}
	resynced := false
resync:
	for j := hi; j < len(leaves); j++ {
		elems, err := t.leafElems(leaves[j].id)
		if err != nil {
			return nil, err
		}
		for k, enc := range elems {
			if err := w.writeElem(enc); err != nil {
				return nil, err
			}
			if w.justCommitted && k == len(elems)-1 {
				// The new boundary coincides with the end of old
				// leaf j; everything after is unchanged.
				w.entries = append(w.entries, leaves[j+1:]...)
				resynced = true
				break resync
			}
		}
	}
	if !resynced {
		if err := w.commit(); err != nil {
			return nil, err
		}
	}
	return finishTree(t.s, t.cfg, t.kind, w.entries)
}

// KV is a key-value pair for Map batch operations.
type KV struct {
	Key, Value []byte
}

// mapOp is a normalized mutation: delete when Value is nil.
type mapOp struct {
	key, value []byte
	del        bool
}

// MapSet returns a tree with key set to value.
func (t *Tree) MapSet(key, value []byte) (*Tree, error) {
	return t.MapApply([]KV{{Key: key, Value: value}}, nil)
}

// MapDelete returns a tree with key removed (a no-op if absent).
func (t *Tree) MapDelete(key []byte) (*Tree, error) {
	return t.MapApply(nil, [][]byte{key})
}

// MapApply returns a tree with all sets and deletes applied in one pass.
// Later entries win when a key appears twice.
func (t *Tree) MapApply(sets []KV, deletes [][]byte) (*Tree, error) {
	if t.kind != KindMap {
		return nil, fmt.Errorf("postree: MapApply on %v tree", t.kind)
	}
	ops := make([]mapOp, 0, len(sets)+len(deletes))
	for _, kv := range sets {
		ops = append(ops, mapOp{key: kv.Key, value: kv.Value})
	}
	for _, k := range deletes {
		ops = append(ops, mapOp{key: k, del: true})
	}
	return t.applySortedOps(ops)
}

// SetAdd returns a tree with the elements added.
func (t *Tree) SetAdd(elems ...[]byte) (*Tree, error) {
	if t.kind != KindSet {
		return nil, fmt.Errorf("postree: SetAdd on %v tree", t.kind)
	}
	ops := make([]mapOp, len(elems))
	for i, e := range elems {
		ops[i] = mapOp{key: e}
	}
	return t.applySortedOps(ops)
}

// SetRemove returns a tree with the elements removed.
func (t *Tree) SetRemove(elems ...[]byte) (*Tree, error) {
	if t.kind != KindSet {
		return nil, fmt.Errorf("postree: SetRemove on %v tree", t.kind)
	}
	ops := make([]mapOp, len(elems))
	for i, e := range elems {
		ops[i] = mapOp{key: e, del: true}
	}
	return t.applySortedOps(ops)
}

// encodeOp encodes a surviving op as a leaf element.
func (t *Tree) encodeOp(op mapOp) []byte {
	if t.kind == KindMap {
		return EncodeMapElem(op.key, op.value)
	}
	return EncodeListElem(op.key)
}

// applySortedOps merges mutations into a sorted tree.
func (t *Tree) applySortedOps(ops []mapOp) (*Tree, error) {
	if len(ops) == 0 {
		return t, nil
	}
	// Sort stably and keep only the last op per key.
	sort.SliceStable(ops, func(i, j int) bool {
		return bytes.Compare(ops[i].key, ops[j].key) < 0
	})
	dedup := ops[:0]
	for i, op := range ops {
		if i+1 < len(ops) && bytes.Equal(ops[i+1].key, op.key) {
			continue
		}
		dedup = append(dedup, op)
	}
	ops = dedup

	leaves, err := t.leafEntries()
	if err != nil {
		return nil, err
	}
	if len(leaves) == 0 {
		// Fresh build from the surviving inserts.
		b := NewBuilder(t.s, t.cfg, t.kind)
		for _, op := range ops {
			if !op.del {
				b.Append(t.encodeOp(op))
			}
		}
		return b.Finish()
	}

	// Stream leaf by leaf: a leaf with no ops whose start coincides
	// with a chunk boundary of the new stream is reused verbatim (its
	// chunking decisions are reproducible because the chunker resets
	// at every boundary); all other leaves are decoded, merged with
	// their ops, and re-chunked. This keeps a scattered batch's cost
	// proportional to the touched leaves, not to the key span.
	w := newLeafWriter(t)
	opIdx := 0
	for li, leaf := range leaves {
		last := li == len(leaves)-1
		lo := opIdx
		for opIdx < len(ops) && (last || bytes.Compare(ops[opIdx].key, leaf.key) <= 0) {
			opIdx++
		}
		myOps := ops[lo:opIdx]
		if len(myOps) == 0 && w.n == 0 {
			w.entries = append(w.entries, leaf)
			continue
		}
		elems, err := t.leafElems(leaf.id)
		if err != nil {
			return nil, err
		}
		i, j := 0, 0
		for i < len(elems) && j < len(myOps) {
			cmp := bytes.Compare(elemKey(t.kind, elems[i]), myOps[j].key)
			switch {
			case cmp < 0:
				err = w.writeElem(elems[i])
				i++
			case cmp > 0:
				if !myOps[j].del {
					err = w.writeElem(t.encodeOp(myOps[j]))
				}
				j++
			default:
				if !myOps[j].del {
					err = w.writeElem(t.encodeOp(myOps[j]))
				}
				i++
				j++
			}
			if err != nil {
				return nil, err
			}
		}
		for ; i < len(elems); i++ {
			if err := w.writeElem(elems[i]); err != nil {
				return nil, err
			}
		}
		for ; j < len(myOps); j++ {
			if !myOps[j].del {
				if err := w.writeElem(t.encodeOp(myOps[j])); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := w.commit(); err != nil {
		return nil, err
	}
	return finishTree(t.s, t.cfg, t.kind, w.entries)
}

// ListSplice returns a List tree with del elements at position at
// replaced by ins.
func (t *Tree) ListSplice(at, del uint64, ins [][]byte) (*Tree, error) {
	if t.kind != KindList {
		return nil, fmt.Errorf("postree: ListSplice on %v tree", t.kind)
	}
	if at+del > t.count {
		return nil, fmt.Errorf("postree: splice [%d,%d) out of range (count %d)", at, at+del, t.count)
	}
	encIns := make([][]byte, len(ins))
	for i, e := range ins {
		encIns[i] = EncodeListElem(e)
	}
	leaves, err := t.leafEntries()
	if err != nil {
		return nil, err
	}
	if len(leaves) == 0 {
		b := NewBuilder(t.s, t.cfg, t.kind)
		for _, e := range encIns {
			b.Append(e)
		}
		return b.Finish()
	}
	lo, loStart := leafForPos(leaves, at)
	hi, _ := leafForPos(leaves, at+del)
	hi++
	var old [][]byte
	for j := lo; j < hi; j++ {
		elems, err := t.leafElems(leaves[j].id)
		if err != nil {
			return nil, err
		}
		old = append(old, elems...)
	}
	cut := at - loStart
	region := make([][]byte, 0, uint64(len(old))+uint64(len(encIns))-del)
	region = append(region, old[:cut]...)
	region = append(region, encIns...)
	region = append(region, old[cut+del:]...)
	return t.replaceElemRegion(leaves, lo, hi, region)
}

// ListAppend returns a List tree with the elements appended.
func (t *Tree) ListAppend(elems ...[]byte) (*Tree, error) {
	return t.ListSplice(t.count, 0, elems)
}

// leafForPos returns the index of the leaf containing element position
// pos (clamped to the last leaf for pos == count) and the global position
// of that leaf's first element.
func leafForPos(leaves []entry, pos uint64) (int, uint64) {
	var start uint64
	for i, e := range leaves {
		if pos < start+e.count || i == len(leaves)-1 {
			return i, start
		}
		start += e.count
	}
	return 0, 0
}

// SpliceBytes returns a Blob tree with del bytes at offset off replaced
// by ins.
func (t *Tree) SpliceBytes(off, del uint64, ins []byte) (*Tree, error) {
	if t.kind != KindBlob {
		return nil, fmt.Errorf("postree: SpliceBytes on %v tree", t.kind)
	}
	if off+del > t.count {
		return nil, fmt.Errorf("postree: splice [%d,%d) out of range (count %d)", off, off+del, t.count)
	}
	leaves, err := t.leafEntries()
	if err != nil {
		return nil, err
	}
	if len(leaves) == 0 {
		b := NewBuilder(t.s, t.cfg, t.kind)
		b.AppendBytes(ins)
		return b.Finish()
	}
	lo, loStart := leafForPos(leaves, off)
	hi, _ := leafForPos(leaves, off+del)
	hi++
	var old []byte
	for j := lo; j < hi; j++ {
		c, err := t.getChunk(leaves[j].id)
		if err != nil {
			return nil, err
		}
		old = append(old, c.Data()...)
	}
	cut := off - loStart
	region := make([]byte, 0, uint64(len(old))+uint64(len(ins))-del)
	region = append(region, old[:cut]...)
	region = append(region, ins...)
	region = append(region, old[cut+del:]...)

	w := newLeafWriter(t)
	w.entries = append(w.entries, leaves[:lo]...)
	if err := w.writeBytesChunked(region); err != nil {
		return nil, err
	}
	resynced := false
resync:
	for j := hi; j < len(leaves); j++ {
		c, err := t.getChunk(leaves[j].id)
		if err != nil {
			return nil, err
		}
		rem := c.Data()
		for len(rem) > 0 {
			n, boundary := w.chunker.FindBoundary(rem)
			w.buf = append(w.buf, rem[:n]...)
			w.n += uint64(n)
			rem = rem[n:]
			if boundary {
				if err := w.commit(); err != nil {
					return nil, err
				}
				if len(rem) == 0 {
					w.entries = append(w.entries, leaves[j+1:]...)
					resynced = true
					break resync
				}
			}
		}
	}
	if !resynced {
		if err := w.commit(); err != nil {
			return nil, err
		}
	}
	return finishTree(t.s, t.cfg, t.kind, w.entries)
}

// writeBytesChunked feeds raw bytes through the chunker, committing
// leaves at boundaries.
func (w *leafWriter) writeBytesChunked(p []byte) error {
	for len(p) > 0 {
		n, boundary := w.chunker.FindBoundary(p)
		w.buf = append(w.buf, p[:n]...)
		w.n += uint64(n)
		p = p[n:]
		w.justCommitted = false
		if boundary {
			if err := w.commit(); err != nil {
				return err
			}
		}
	}
	return nil
}
