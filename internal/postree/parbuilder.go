package postree

import (
	"sync"

	"forkbase/internal/chunk"
	"forkbase/internal/rollsum"
	"forkbase/internal/store"
)

// Parallel POS-Tree construction. The hard requirement is determinism:
// a tree built with Config.Chunkers = N must be byte-identical to the
// sequential build, or deduplication across writers dies. Two
// independent tricks preserve it:
//
//  1. Leaf hashing and store writes are embarrassingly parallel once
//     the boundaries are fixed: leaves are handed to a worker pool
//     tagged with their sequence number and the resulting index entries
//     are reassembled in submission order.
//
//  2. For Blob streams — where the rollsum scan itself is the
//     bottleneck — the scan is parallelized speculatively. The input is
//     cut into fixed blocks; a worker scans each block under the guess
//     that a chunk boundary sits immediately before it. The guess is
//     usually wrong, but boundary decisions only depend on content
//     since the previous boundary (the roller resets at every cut), so
//     the speculative boundary sequence converges with the true one: as
//     soon as the authoritative scan — carried sequentially across
//     blocks by the stitcher — places a boundary at an offset the
//     speculative scan also chose, both scans are in identical states
//     and every remaining speculative boundary in the block is adopted
//     wholesale. The stitcher therefore re-scans only the first chunk
//     or two of each block (the fallback, pattern-free content whose
//     boundaries are all max-size-forced and misaligned, degrades to a
//     full sequential scan of that block — slower, never wrong).
//
// The pool spins up lazily, once parMinBytes of leaves have been
// committed: small values stay on the exact sequential path, keeping
// its zero-extra-allocation property and its small-object throughput.
const (
	// parBlockSize is the speculative scan unit. It must comfortably
	// exceed the expected chunk size so convergence costs a small
	// fraction of the block (64 expected chunks at the default config).
	parBlockSize = 256 << 10
	// parMinBytes is how many committed leaf bytes it takes before a
	// builder activates its worker pool.
	parMinBytes = 256 << 10
)

// parJob is one leaf to hash and store. payload is owned by the job.
type parJob struct {
	seq     int
	payload []byte
	count   uint64
	key     []byte
}

// parBlock is one speculative scan unit: raw bytes, the boundary
// offsets a worker found under the boundary-at-start guess, and the
// worker's scanner state after the last such boundary (adopted by the
// stitcher when the guess is validated).
type parBlock struct {
	data   []byte
	done   chan struct{}
	bounds []int
	tail   *rollsum.Chunker
}

// parBuilder is the concurrent half of a Builder: a bounded worker
// pool hashing and storing leaves out of order, plus — in block mode
// (Blob streams) — the speculative scan pipeline described above.
type parBuilder struct {
	s    store.Store
	cfg  Config
	kind Kind

	jobs chan parJob
	wg   sync.WaitGroup

	mu     sync.Mutex
	err    error
	leaves []entry // slot per submitted leaf, indexed by parJob.seq

	// Block mode (Blob only).
	blockMode bool
	blocks    []*parBlock // dispatched, not yet stitched
	maxAhead  int         // dispatch-ahead bound (memory cap)
	cur       []byte      // block being filled
	auth      *rollsum.Chunker
	carry     []byte // bytes of the current partial leaf, post-stitch
}

// newParBuilder starts the pool. auth is the (just-reset) scanner state
// the sequential prefix ended in; block mode engages only for Blob.
func newParBuilder(s store.Store, cfg Config, kind Kind, auth *rollsum.Chunker) *parBuilder {
	workers := cfg.chunkers()
	pb := &parBuilder{
		s:         s,
		cfg:       cfg,
		kind:      kind,
		jobs:      make(chan parJob, workers*2),
		blockMode: kind == KindBlob,
		maxAhead:  workers + 1,
		auth:      auth,
	}
	pb.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go pb.worker()
	}
	return pb
}

// worker hashes and stores leaves, and runs speculative block scans.
// Store implementations in this repository are safe for concurrent Put;
// after a failure the pool keeps draining jobs (skipping the work) so
// submitters never block on a dead pipeline.
func (pb *parBuilder) worker() {
	defer pb.wg.Done()
	for j := range pb.jobs {
		if pb.failed() {
			continue
		}
		c := chunk.New(pb.kind.leafType(), j.payload)
		_, err := pb.s.Put(c)
		e := entry{count: j.count, id: c.ID(), key: j.key}
		pb.mu.Lock()
		if err != nil && pb.err == nil {
			pb.err = err
		}
		pb.leaves[j.seq] = e
		pb.mu.Unlock()
	}
}

func (pb *parBuilder) failed() bool {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	return pb.err != nil
}

// scanBlock is the speculative scan: boundaries under the guess that a
// chunk boundary immediately precedes the block.
func scanBlock(cfg Config, b *parBlock) {
	c := rollsum.NewChunker(cfg.LeafQ, cfg.maxLeaf())
	off := 0
	for off < len(b.data) {
		n, boundary := c.FindBoundary(b.data[off:])
		off += n
		if boundary {
			b.bounds = append(b.bounds, off)
			c.Next()
		}
	}
	b.tail = c
	close(b.done)
}

// submitLeaf reserves the next ordered entry slot and queues the leaf
// for a worker. payload ownership transfers.
func (pb *parBuilder) submitLeaf(payload []byte, count uint64, key []byte) {
	pb.mu.Lock()
	seq := len(pb.leaves)
	pb.leaves = append(pb.leaves, entry{})
	pb.mu.Unlock()
	pb.jobs <- parJob{seq: seq, payload: payload, count: count, key: key}
}

// emitLeaf builds one Blob leaf payload from the stitched carry plus a
// block slice and submits it.
func (pb *parBuilder) emitLeaf(extra []byte) {
	payload := make([]byte, len(pb.carry)+len(extra))
	n := copy(payload, pb.carry)
	copy(payload[n:], extra)
	pb.carry = pb.carry[:0]
	pb.submitLeaf(payload, uint64(len(payload)), nil)
}

// feed accepts Blob bytes in block mode: they accumulate into fixed
// blocks which are speculatively scanned by workers while the stitcher
// (the caller, lagging maxAhead blocks behind) validates their
// boundaries in order.
func (pb *parBuilder) feed(p []byte) {
	for len(p) > 0 {
		if pb.cur == nil {
			pb.cur = make([]byte, 0, parBlockSize)
		}
		n := parBlockSize - len(pb.cur)
		if n > len(p) {
			n = len(p)
		}
		pb.cur = append(pb.cur, p[:n]...)
		p = p[n:]
		if len(pb.cur) == parBlockSize {
			pb.dispatchBlock()
			for len(pb.blocks) > pb.maxAhead {
				pb.stitch(pb.blocks[0])
				pb.blocks = pb.blocks[1:]
			}
		}
	}
}

// dispatchBlock launches the current block's speculative scan. The
// goroutine count is bounded by the stitch-behind loop in feed: at most
// maxAhead+1 blocks are ever outstanding.
func (pb *parBuilder) dispatchBlock() {
	b := &parBlock{data: pb.cur, done: make(chan struct{})}
	pb.cur = nil
	pb.blocks = append(pb.blocks, b)
	go scanBlock(pb.cfg, b)
}

// stitch validates one block's speculative boundaries against the
// authoritative scan and emits its leaves. On entry pb.auth is the
// exact sequential scanner state at the block's first byte; on exit, at
// the byte after it.
func (pb *parBuilder) stitch(b *parBlock) {
	<-b.done
	data := b.data
	si, off := 0, 0
	converged := false
	for off < len(data) {
		n, boundary := pb.auth.FindBoundary(data[off:])
		end := off + n
		if boundary {
			pb.emitLeaf(data[off:end])
			pb.auth.Next()
			off = end
			for si < len(b.bounds) && b.bounds[si] < off {
				si++
			}
			if si < len(b.bounds) && b.bounds[si] == off {
				// The authoritative and speculative scans just placed
				// the same boundary; both resets leave them in
				// identical states, so the rest of the block's
				// speculative boundaries are authoritative too.
				si++
				converged = true
				break
			}
			continue
		}
		pb.carry = append(pb.carry, data[off:end]...)
		off = end
	}
	if !converged {
		return // the whole block was scanned authoritatively
	}
	for ; si < len(b.bounds); si++ {
		end := b.bounds[si]
		pb.emitLeaf(data[off:end])
		off = end
	}
	pb.carry = append(pb.carry, data[off:]...)
	// The worker's post-boundary scanner state doubles as the
	// authoritative state: both scans reset at the block's last adopted
	// boundary and consumed the same tail.
	pb.auth = b.tail
}

// finish drains the pipeline: stitches the remaining blocks (including
// the final partial one), flushes the final partial leaf, joins the
// workers, and returns the ordered leaf entries.
func (pb *parBuilder) finish() ([]entry, error) {
	if pb.blockMode {
		if len(pb.cur) > 0 {
			pb.dispatchBlock()
		}
		for _, b := range pb.blocks {
			pb.stitch(b)
		}
		pb.blocks = nil
		if len(pb.carry) > 0 {
			pb.emitLeaf(nil)
		}
	}
	close(pb.jobs)
	pb.wg.Wait()
	if pb.err != nil {
		return nil, pb.err
	}
	return pb.leaves, nil
}
