package postree

import (
	"fmt"
	"math/rand"
	"testing"

	"forkbase/internal/store"
)

// testConfig uses small chunks so trees get several levels even on
// modest data.
func testConfig() Config {
	return Config{LeafQ: 8, IndexR: 3}
}

func buildMap(t *testing.T, s store.Store, kvs map[string]string) *Tree {
	t.Helper()
	b := NewBuilder(s, testConfig(), KindMap)
	for _, k := range sortedKeys(kvs) {
		b.Append(EncodeMapElem([]byte(k), []byte(kvs[k])))
	}
	tree, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func randomKVs(n int, seed int64) map[string]string {
	rng := rand.New(rand.NewSource(seed))
	m := make(map[string]string, n)
	for len(m) < n {
		k := fmt.Sprintf("key-%08d", rng.Intn(n*10))
		v := fmt.Sprintf("value-%d-%d", rng.Int63(), rng.Int63())
		m[k] = v
	}
	return m
}

func TestEmptyTree(t *testing.T) {
	s := store.NewMemStore()
	tr := Empty(s, testConfig(), KindMap)
	if tr.Count() != 0 || tr.Height() != 0 || !tr.Root().IsNil() {
		t.Fatal("empty tree not empty")
	}
	_, ok, err := tr.Get([]byte("k"))
	if err != nil || ok {
		t.Fatalf("Get on empty: ok=%v err=%v", ok, err)
	}
	loaded, err := Load(s, testConfig(), KindMap, tr.Root())
	if err != nil || loaded.Count() != 0 {
		t.Fatalf("Load empty: %v", err)
	}
}

func TestMapBuildAndGet(t *testing.T) {
	s := store.NewMemStore()
	kvs := randomKVs(2000, 1)
	tr := buildMap(t, s, kvs)
	if tr.Count() != uint64(len(kvs)) {
		t.Fatalf("count %d, want %d", tr.Count(), len(kvs))
	}
	if tr.Height() < 2 {
		t.Fatalf("height %d: test data too small to be meaningful", tr.Height())
	}
	for k, v := range kvs {
		got, ok, err := tr.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q ok=%v, want %q", k, got, ok, v)
		}
	}
	if _, ok, _ := tr.Get([]byte("missing-key")); ok {
		t.Fatal("found a missing key")
	}
	if _, ok, _ := tr.Get([]byte("zzzzzz-beyond-max")); ok {
		t.Fatal("found a key beyond the max")
	}
}

func TestLoadRecomputesShape(t *testing.T) {
	s := store.NewMemStore()
	kvs := randomKVs(1500, 2)
	tr := buildMap(t, s, kvs)
	loaded, err := Load(s, testConfig(), KindMap, tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Count() != tr.Count() || loaded.Height() != tr.Height() {
		t.Fatalf("Load: count %d/%d height %d/%d",
			loaded.Count(), tr.Count(), loaded.Height(), tr.Height())
	}
}

// Structural determinism: the same content yields the same root no
// matter how it was produced (fresh build vs edits). This is what makes
// POS-Tree deduplication effective (§4.3).
func TestHistoryIndependence(t *testing.T) {
	s := store.NewMemStore()
	kvs := randomKVs(1000, 3)

	fresh := buildMap(t, s, kvs)

	// Build from a subset, then add the remainder in random batches.
	keys := sortedKeys(kvs)
	partial := make(map[string]string)
	for _, k := range keys[:500] {
		partial[k] = kvs[k]
	}
	tr := buildMap(t, s, partial)
	rng := rand.New(rand.NewSource(4))
	rest := append([]string(nil), keys[500:]...)
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	for len(rest) > 0 {
		n := 1 + rng.Intn(50)
		if n > len(rest) {
			n = len(rest)
		}
		var batch []KV
		for _, k := range rest[:n] {
			batch = append(batch, KV{Key: []byte(k), Value: []byte(kvs[k])})
		}
		rest = rest[n:]
		var err error
		tr, err = tr.MapApply(batch, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.Root() != fresh.Root() {
		t.Fatalf("insertion order changed the tree: %s vs %s",
			tr.Root().Short(), fresh.Root().Short())
	}
	if tr.Count() != fresh.Count() {
		t.Fatalf("count %d vs %d", tr.Count(), fresh.Count())
	}
}

func TestMapApplyAgainstModel(t *testing.T) {
	s := store.NewMemStore()
	model := randomKVs(800, 5)
	tr := buildMap(t, s, model)
	rng := rand.New(rand.NewSource(6))
	keys := sortedKeys(model)

	for round := 0; round < 30; round++ {
		var sets []KV
		var dels [][]byte
		for i := 0; i < 20; i++ {
			switch rng.Intn(3) {
			case 0: // overwrite existing
				k := keys[rng.Intn(len(keys))]
				v := fmt.Sprintf("v%d", rng.Int63())
				if _, exists := model[k]; exists {
					sets = append(sets, KV{Key: []byte(k), Value: []byte(v)})
					model[k] = v
				}
			case 1: // insert new
				k := fmt.Sprintf("new-%d-%d", round, i)
				v := fmt.Sprintf("v%d", rng.Int63())
				sets = append(sets, KV{Key: []byte(k), Value: []byte(v)})
				model[k] = v
			case 2: // delete
				k := keys[rng.Intn(len(keys))]
				if _, exists := model[k]; exists {
					dels = append(dels, []byte(k))
					delete(model, k)
				}
			}
		}
		var err error
		tr, err = tr.MapApply(sets, dels)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Count() != uint64(len(model)) {
			t.Fatalf("round %d: count %d, want %d", round, tr.Count(), len(model))
		}
	}
	// Full verification against the model, in both directions.
	for k, v := range model {
		got, ok, err := tr.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q ok=%v err=%v, want %q", k, got, ok, err, v)
		}
	}
	it := tr.Elems()
	n := 0
	for it.Next() {
		k := string(MapElemKey(it.Elem()))
		if model[k] != string(MapElemValue(it.Elem())) {
			t.Fatalf("iterated element %q not in model", k)
		}
		n++
	}
	if it.Err() != nil || n != len(model) {
		t.Fatalf("iterated %d elements, want %d (err %v)", n, len(model), it.Err())
	}
	// The final tree must equal a fresh build of the model.
	fresh := buildMap(t, s, model)
	if fresh.Root() != tr.Root() {
		t.Fatal("edited tree differs from fresh build of same content")
	}
}

func TestMapApplyLastWriteWins(t *testing.T) {
	s := store.NewMemStore()
	tr := Empty(s, testConfig(), KindMap)
	tr, err := tr.MapApply([]KV{
		{Key: []byte("k"), Value: []byte("first")},
		{Key: []byte("k"), Value: []byte("second")},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tr.Get([]byte("k"))
	if !ok || string(v) != "second" {
		t.Fatalf("got %q, want second", v)
	}
	// Set then delete in one batch: delete wins (it is last).
	tr2, err := tr.MapApply(nil, [][]byte{[]byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := tr2.Get([]byte("k")); got != nil {
		t.Fatal("delete did not win")
	}
}

func TestCopyOnWriteSharing(t *testing.T) {
	s := store.NewMemStore()
	kvs := randomKVs(3000, 7)
	tr := buildMap(t, s, kvs)
	before := s.Stats()

	tr2, err := tr.MapSet([]byte("key-00000001"), []byte("updated"))
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	newBytes := after.Bytes - before.Bytes
	st, err := tr.TreeStats()
	if err != nil {
		t.Fatal(err)
	}
	// A single-key update must write far less than the tree size.
	if newBytes > st.Bytes/4 {
		t.Fatalf("single-key update wrote %d bytes of a %d byte tree", newBytes, st.Bytes)
	}
	// Old tree still intact (copy-on-write, not in-place).
	if v, ok, _ := tr.Get([]byte("key-00000001")); ok && string(v) == "updated" {
		t.Fatal("old snapshot sees the update")
	}
	if v, ok, _ := tr2.Get([]byte("key-00000001")); !ok || string(v) != "updated" {
		t.Fatalf("new snapshot missing the update: %q %v", v, ok)
	}
}

func TestGetAt(t *testing.T) {
	s := store.NewMemStore()
	kvs := randomKVs(500, 8)
	tr := buildMap(t, s, kvs)
	keys := sortedKeys(kvs)
	for _, i := range []uint64{0, 1, 42, 250, uint64(len(keys) - 1)} {
		enc, err := tr.GetAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if string(MapElemKey(enc)) != keys[i] {
			t.Fatalf("GetAt(%d) = %q, want %q", i, MapElemKey(enc), keys[i])
		}
	}
	if _, err := tr.GetAt(uint64(len(keys))); err == nil {
		t.Fatal("GetAt out of range succeeded")
	}
}

func TestSetOperations(t *testing.T) {
	s := store.NewMemStore()
	b := NewBuilder(s, testConfig(), KindSet)
	for i := 0; i < 100; i++ {
		b.Append(EncodeListElem([]byte(fmt.Sprintf("elem-%03d", i))))
	}
	tr, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := tr.Has([]byte("elem-050"))
	if err != nil || !ok {
		t.Fatalf("Has existing: %v %v", ok, err)
	}
	tr, err = tr.SetAdd([]byte("elem-050"), []byte("zzz-new"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 101 { // re-adding an element is a no-op
		t.Fatalf("count %d, want 101", tr.Count())
	}
	tr, err = tr.SetRemove([]byte("elem-000"), []byte("not-there"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 100 {
		t.Fatalf("count %d, want 100", tr.Count())
	}
	if ok, _ := tr.Has([]byte("elem-000")); ok {
		t.Fatal("removed element still present")
	}
}

func TestBuilderRejectsOutOfOrder(t *testing.T) {
	s := store.NewMemStore()
	b := NewBuilder(s, testConfig(), KindMap)
	b.Append(EncodeMapElem([]byte("b"), []byte("1")))
	b.Append(EncodeMapElem([]byte("a"), []byte("2")))
	if _, err := b.Finish(); err == nil {
		t.Fatal("out-of-order build succeeded")
	}
	b2 := NewBuilder(s, testConfig(), KindMap)
	b2.Append(EncodeMapElem([]byte("a"), []byte("1")))
	b2.Append(EncodeMapElem([]byte("a"), []byte("2")))
	if _, err := b2.Finish(); err == nil {
		t.Fatal("duplicate-key build succeeded")
	}
}
