package postree

import (
	"forkbase/internal/chunk"
	"forkbase/internal/store"
)

// WalkChunkIDs visits every chunk id reachable from the tree's root,
// top-down. Index nodes are read (and verified) from the tree's store
// to discover their children; leaf ids are reported without reading
// the leaves — which is what lets chunk-sync enumerate a tree's full
// id set touching only the small index fringe. isLeaf tells the
// callback whether the id names a leaf (depth 1) node. Walking the
// empty tree visits nothing.
func (t *Tree) WalkChunkIDs(fn func(id chunk.ID, isLeaf bool) error) error {
	if t.root.IsNil() {
		return nil
	}
	level := []chunk.ID{t.root}
	for h := t.height; h >= 1 && len(level) > 0; h-- {
		var next []chunk.ID
		for _, id := range level {
			if err := fn(id, h == 1); err != nil {
				return err
			}
			if h == 1 {
				continue
			}
			c, err := store.GetVerified(t.s, id)
			if err != nil {
				return err
			}
			kids, err := IndexChildIDs(c.Data())
			if err != nil {
				return err
			}
			next = append(next, kids...)
		}
		level = next
	}
	return nil
}
