package postree

import (
	"bytes"
	"fmt"

	"forkbase/internal/chunk"
	"forkbase/internal/rollsum"
	"forkbase/internal/store"
)

// Builder constructs a POS-Tree bottom-up from a stream of elements
// (Algorithm 1 in the paper). Elements must arrive pre-encoded and, for
// sorted kinds, in strictly increasing key order. The builder commits a
// leaf chunk whenever the rolling-hash pattern fires (extended to the
// element boundary) or the max chunk size is reached, then assembles
// index levels using the cid pattern until a single root remains.
type Builder struct {
	s       store.Store
	cfg     Config
	kind    Kind
	chunker *rollsum.Chunker
	buf     []byte
	n       uint64 // elements in the current leaf
	lastKey []byte // last key seen (sorted kinds)
	entries []entry
	err     error

	// Parallel construction (see parbuilder.go). The pool spins up only
	// once doneBytes crosses parMinBytes AND the config allows more than
	// one chunker — small values never leave the sequential path.
	nworkers  int
	doneBytes int
	par       *parBuilder
}

// NewBuilder returns a builder for a tree of the given kind.
func NewBuilder(s store.Store, cfg Config, kind Kind) *Builder {
	return &Builder{
		s:        s,
		cfg:      cfg,
		kind:     kind,
		chunker:  rollsum.NewChunker(cfg.LeafQ, cfg.maxLeaf()),
		nworkers: cfg.chunkers(),
	}
}

// Append adds one encoded element to the stream. For Blob trees use
// AppendBytes instead.
func (b *Builder) Append(encoded []byte) {
	if b.err != nil {
		return
	}
	if b.kind == KindBlob {
		b.err = fmt.Errorf("postree: Append on Blob tree; use AppendBytes")
		return
	}
	if b.kind.Sorted() {
		k := elemKey(b.kind, encoded)
		if b.lastKey != nil && bytes.Compare(k, b.lastKey) <= 0 {
			b.err = fmt.Errorf("postree: elements out of order: %q after %q", k, b.lastKey)
			return
		}
		b.lastKey = append(b.lastKey[:0], k...)
	}
	b.buf = append(b.buf, encoded...)
	b.n++
	b.chunker.Feed(encoded)
	if b.chunker.Boundary() {
		b.commitLeaf()
	}
}

// AppendBytes adds raw bytes to a Blob tree, splitting at pattern
// boundaries as it goes.
func (b *Builder) AppendBytes(p []byte) {
	if b.err != nil {
		return
	}
	if b.kind != KindBlob {
		b.err = fmt.Errorf("postree: AppendBytes on %v tree", b.kind)
		return
	}
	for len(p) > 0 {
		if b.par != nil {
			b.par.feed(p)
			return
		}
		n, boundary := b.chunker.FindBoundary(p)
		b.buf = append(b.buf, p[:n]...)
		b.n += uint64(n)
		p = p[n:]
		if boundary {
			b.commitLeaf()
			// A boundary is the one clean activation point: the scanner
			// was just reset, so the pool's stitcher can adopt it as the
			// authoritative state mid-stream.
			if b.par == nil && b.nworkers > 1 && b.doneBytes >= parMinBytes {
				b.par = newParBuilder(b.s, b.cfg, b.kind, b.chunker)
			}
		}
	}
}

// commitLeaf seals the current buffer into a leaf chunk and records its
// index entry. With an active worker pool (element kinds past the
// activation threshold) the hash and store write move to a worker; the
// entry's slot in the final order is reserved at submission.
func (b *Builder) commitLeaf() {
	if b.n == 0 {
		return
	}
	if b.par == nil && b.nworkers > 1 && b.kind != KindBlob && b.doneBytes >= parMinBytes {
		b.par = newParBuilder(b.s, b.cfg, b.kind, b.chunker)
	}
	b.doneBytes += len(b.buf)
	payload := make([]byte, len(b.buf))
	copy(payload, b.buf)
	if b.par != nil {
		var key []byte
		if b.kind.Sorted() {
			key = append([]byte(nil), b.lastKey...)
		}
		b.par.submitLeaf(payload, b.n, key)
		b.buf = b.buf[:0]
		b.n = 0
		b.chunker.Next()
		return
	}
	c := chunk.New(b.kind.leafType(), payload)
	if _, err := b.s.Put(c); err != nil {
		b.err = err
		return
	}
	e := entry{count: b.n, id: c.ID()}
	if b.kind.Sorted() {
		e.key = append([]byte(nil), b.lastKey...)
	}
	b.entries = append(b.entries, e)
	b.buf = b.buf[:0]
	b.n = 0
	b.chunker.Next()
}

// Finish seals the final leaf (which, as the paper notes, may not end
// with a pattern), builds the index levels, and returns the completed
// tree.
func (b *Builder) Finish() (*Tree, error) {
	if b.par != nil {
		// Element kinds route their final partial leaf through the pool;
		// Blob block mode carries it inside the pipeline itself.
		if b.kind != KindBlob {
			b.commitLeaf()
		}
		tail, err := b.par.finish()
		b.par = nil
		if err != nil && b.err == nil {
			b.err = err
		}
		b.entries = append(b.entries, tail...)
	} else if b.err == nil {
		b.commitLeaf()
	}
	if b.err != nil {
		return nil, b.err
	}
	return finishTree(b.s, b.cfg, b.kind, b.entries)
}

// finishTree assembles index levels over leaf entries and returns the
// Tree handle.
func finishTree(s store.Store, cfg Config, kind Kind, leaves []entry) (*Tree, error) {
	t := &Tree{s: s, cfg: cfg, kind: kind}
	if len(leaves) == 0 {
		return t, nil
	}
	var total uint64
	for _, e := range leaves {
		total += e.count
	}
	level := leaves
	height := 1
	for len(level) > 1 {
		next, err := buildIndexLevel(s, cfg, kind, level)
		if err != nil {
			return nil, err
		}
		level = next
		height++
	}
	t.root = level[0].id
	t.count = total
	t.height = height
	return t, nil
}

// buildIndexLevel packs child entries into index chunks, splitting where
// a child cid matches the index pattern (§4.3.3) or the node is full.
func buildIndexLevel(s store.Store, cfg Config, kind Kind, children []entry) ([]entry, error) {
	pattern := rollsum.NewIndexPattern(cfg.IndexR)
	maxEntries := cfg.maxIndex()
	var (
		out     []entry
		payload []byte
		n       int
		count   uint64
		lastKey []byte
	)
	commit := func() error {
		if n == 0 {
			return nil
		}
		p := make([]byte, len(payload))
		copy(p, payload)
		c := chunk.New(kind.indexType(), p)
		if _, err := s.Put(c); err != nil {
			return err
		}
		e := entry{count: count, id: c.ID()}
		if kind.Sorted() {
			e.key = append([]byte(nil), lastKey...)
		}
		out = append(out, e)
		payload = payload[:0]
		n = 0
		count = 0
		return nil
	}
	for _, ch := range children {
		payload = appendEntry(payload, ch)
		n++
		count += ch.count
		lastKey = ch.key
		if pattern.Match(ch.id) || n >= maxEntries {
			if err := commit(); err != nil {
				return nil, err
			}
		}
	}
	if err := commit(); err != nil {
		return nil, err
	}
	return out, nil
}
