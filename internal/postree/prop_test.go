package postree

// Property-based tests for the POS-Tree: random edit scripts run
// against a plain map oracle, and after every script three invariants
// must hold —
//
//	(a) the tree's contents equal the oracle's;
//	(b) trees holding identical content have identical root cids, no
//	    matter which edit sequence produced them (the paper's
//	    pattern-aware split determinism, and the property the store's
//	    deduplication rests on);
//	(c) every chunk reachable from the root exists in the store — the
//	    exact reachability walk the GC marker performs, so an edit
//	    path that forgot to persist a node is caught here before a
//	    collection would turn it into data loss.
//
// FuzzPosTreeEdits drives the same invariants from fuzzer-generated
// scripts.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"forkbase/internal/chunk"
	"forkbase/internal/store"
)

// propConfig uses tiny chunks so even small scripts build multi-level
// trees (deep index paths are where edit bugs live).
var propConfig = Config{LeafQ: 5, IndexR: 2}

// reachableChunks walks the tree DAG from root — the GC marker's walk —
// failing the test if any reachable chunk is missing from the store.
func reachableChunks(tb testing.TB, s store.Store, root chunk.ID) map[chunk.ID]bool {
	tb.Helper()
	seen := map[chunk.ID]bool{}
	if root.IsNil() {
		return seen
	}
	stack := []chunk.ID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		c, err := s.Get(id)
		if err != nil {
			tb.Fatalf("reachable chunk %s missing from store: %v", id.Short(), err)
		}
		if isIndex(c.Type()) {
			ids, err := IndexChildIDs(c.Data())
			if err != nil {
				tb.Fatal(err)
			}
			stack = append(stack, ids...)
		}
	}
	return seen
}

// buildMap constructs a Map tree from scratch out of sorted oracle
// contents.
func propBuildMap(tb testing.TB, s store.Store, oracle map[string][]byte) *Tree {
	tb.Helper()
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := NewBuilder(s, propConfig, KindMap)
	for _, k := range keys {
		b.Append(EncodeMapElem([]byte(k), oracle[k]))
	}
	tr, err := b.Finish()
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

// checkMapInvariants asserts (a), (b) and (c) for one tree + oracle.
func checkMapInvariants(tb testing.TB, s store.Store, tr *Tree, oracle map[string][]byte) {
	tb.Helper()
	// (a) contents match the oracle, in key order.
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if tr.Count() != uint64(len(oracle)) {
		tb.Fatalf("tree count %d, oracle %d", tr.Count(), len(oracle))
	}
	it := tr.Elems()
	i := 0
	for it.Next() {
		if i >= len(keys) {
			tb.Fatalf("tree has more elements than oracle")
		}
		k, v := MapElemKey(it.Elem()), MapElemValue(it.Elem())
		if string(k) != keys[i] || !bytes.Equal(v, oracle[keys[i]]) {
			tb.Fatalf("element %d: tree %q=%q, oracle %q=%q", i, k, v, keys[i], oracle[keys[i]])
		}
		i++
	}
	if err := it.Err(); err != nil {
		tb.Fatal(err)
	}
	if i != len(keys) {
		tb.Fatalf("tree iterated %d elements, oracle has %d", i, len(keys))
	}
	// (b) content determines the root: a from-scratch build of the
	// same contents lands on a bit-identical root cid.
	if rebuilt := propBuildMap(tb, s, oracle); rebuilt.Root() != tr.Root() {
		tb.Fatalf("edit-order dependence: edited root %s, rebuilt root %s",
			tr.Root().Short(), rebuilt.Root().Short())
	}
	// (c) every reachable chunk exists.
	reachableChunks(tb, s, tr.Root())
}

// propKey returns the i-th key of the bounded key universe (collisions
// between script steps are the interesting cases).
func propKey(i int) []byte { return []byte(fmt.Sprintf("key-%03d", i)) }

// applyScript runs one oracle-mirrored edit batch against the tree.
func applyScript(tb testing.TB, tr *Tree, oracle map[string][]byte, sets []KV, deletes [][]byte) *Tree {
	tb.Helper()
	next, err := tr.MapApply(sets, deletes)
	if err != nil {
		tb.Fatal(err)
	}
	for _, kv := range sets {
		oracle[string(kv.Key)] = append([]byte(nil), kv.Value...)
	}
	for _, k := range deletes {
		delete(oracle, string(k))
	}
	return next
}

func TestPosTreePropertyMapEdits(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		t.Run(fmt.Sprintf("seed%d", iter), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(iter)))
			s := store.NewMemStore()
			tr := Empty(s, propConfig, KindMap)
			oracle := map[string][]byte{}
			steps := 8 + rng.Intn(10)
			for step := 0; step < steps; step++ {
				var sets []KV
				var deletes [][]byte
				for n := rng.Intn(24); n >= 0; n-- {
					k := propKey(rng.Intn(120))
					if rng.Intn(4) == 0 {
						deletes = append(deletes, k)
					} else {
						sets = append(sets, KV{Key: k, Value: []byte(fmt.Sprintf("v%d-%d", step, rng.Intn(1000)))})
					}
				}
				tr = applyScript(t, tr, oracle, sets, deletes)
			}
			checkMapInvariants(t, s, tr, oracle)
		})
	}
}

// TestPosTreeEditOrderIndependence drives two different edit orders to
// the same final content and demands bit-identical roots: version A
// applies assignments in one shuffle, version B in another — with
// extra inserts that are deleted again before the end.
func TestPosTreeEditOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	final := map[string][]byte{}
	for i := 0; i < 150; i++ {
		final[string(propKey(i))] = []byte(fmt.Sprintf("final-%d", i))
	}
	build := func(shuffleSeed int64, detour bool) *Tree {
		s := store.NewMemStore()
		tr := Empty(s, propConfig, KindMap)
		keys := make([]string, 0, len(final))
		for k := range final {
			keys = append(keys, k)
		}
		sr := rand.New(rand.NewSource(shuffleSeed))
		sr.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		var err error
		for _, k := range keys {
			if detour && sr.Intn(3) == 0 {
				// Insert garbage that is removed again: the final tree
				// must not remember the detour.
				g := []byte("detour-" + k)
				if tr, err = tr.MapSet(g, []byte("x")); err != nil {
					t.Fatal(err)
				}
				if tr, err = tr.MapSet(g, []byte("y")); err != nil {
					t.Fatal(err)
				}
				if tr, err = tr.MapDelete(g); err != nil {
					t.Fatal(err)
				}
			}
			if tr, err = tr.MapSet([]byte(k), final[k]); err != nil {
				t.Fatal(err)
			}
		}
		checkMapInvariants(t, s, tr, final)
		return tr
	}
	a := build(rng.Int63(), false)
	b := build(rng.Int63(), true)
	if a.Root() != b.Root() {
		t.Fatalf("same content, different roots: %s vs %s", a.Root().Short(), b.Root().Short())
	}
}

// FuzzPosTreeEdits interprets fuzzer bytes as a map edit script and
// checks the three invariants after every batch. Script format: each
// op consumes 3 bytes (op selector, key, value); every 16th op closes
// a batch.
func FuzzPosTreeEdits(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{7, 42, 99, 3, 0, 250}, 40))
	seed := make([]byte, 0, 300)
	for i := 0; i < 100; i++ {
		seed = append(seed, byte(i), byte(i*7), byte(i*13))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, script []byte) {
		s := store.NewMemStore()
		tr := Empty(s, propConfig, KindMap)
		oracle := map[string][]byte{}
		var sets []KV
		var deletes [][]byte
		ops := 0
		for i := 0; i+2 < len(script); i += 3 {
			op, kb, vb := script[i], script[i+1], script[i+2]
			k := propKey(int(kb))
			if op%4 == 0 {
				deletes = append(deletes, k)
			} else {
				sets = append(sets, KV{Key: k, Value: []byte{vb, op, kb}})
			}
			ops++
			if ops%16 == 0 {
				tr = applyScript(t, tr, oracle, sets, deletes)
				sets, deletes = nil, nil
			}
		}
		tr = applyScript(t, tr, oracle, sets, deletes)
		checkMapInvariants(t, s, tr, oracle)
	})
}
