package postree

import (
	"bytes"
	"context"
	"fmt"

	"forkbase/internal/chunk"
)

// Diff exploits the Merkle property (§4.3.1): identical subtrees have
// identical cids, so comparison only decodes leaves that are not shared
// between the two trees.
//
// For sorted trees this is exact at element granularity: an element held
// in a shared leaf is, by definition of content addressing, present in
// both trees, and unique keys guarantee it cannot also appear in an
// unshared leaf. Merging the sorted element streams of the unshared
// leaves therefore yields the precise set of added, removed and modified
// keys.

// SortedDiff is the result of comparing two sorted trees.
type SortedDiff struct {
	Added    []KV // keys only in b (Value nil for Set)
	Removed  []KV // keys only in a
	Modified []KV // keys in both with different values (Map only); Value is b's
	// SharedLeaves and TotalLeaves report how much of the comparison
	// was skipped thanks to chunk sharing.
	SharedLeaves, TotalLeaves int
}

// DiffSorted compares two sorted trees of the same kind. ctx is
// observed per unshared-leaf fetch — the loop that dominates large
// diffs — so a cancelled caller (or a disconnected remote client)
// stops paying for the comparison promptly.
func DiffSorted(ctx context.Context, a, b *Tree) (*SortedDiff, error) {
	if !a.kind.Sorted() || a.kind != b.kind {
		return nil, fmt.Errorf("postree: DiffSorted on %v vs %v", a.kind, b.kind)
	}
	la, err := a.leafEntries()
	if err != nil {
		return nil, err
	}
	lb, err := b.leafEntries()
	if err != nil {
		return nil, err
	}
	inA := make(map[chunk.ID]bool, len(la))
	for _, e := range la {
		inA[e.id] = true
	}
	inB := make(map[chunk.ID]bool, len(lb))
	for _, e := range lb {
		inB[e.id] = true
	}
	var ea, eb [][]byte
	shared := 0
	for _, e := range la {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if inB[e.id] {
			shared++
			continue
		}
		elems, err := a.leafElems(e.id)
		if err != nil {
			return nil, err
		}
		ea = append(ea, elems...)
	}
	for _, e := range lb {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if inA[e.id] {
			continue
		}
		elems, err := b.leafElems(e.id)
		if err != nil {
			return nil, err
		}
		eb = append(eb, elems...)
	}
	d := &SortedDiff{SharedLeaves: shared, TotalLeaves: len(la) + len(lb) - shared}
	i, j := 0, 0
	for i < len(ea) && j < len(eb) {
		ka, kb := elemKey(a.kind, ea[i]), elemKey(b.kind, eb[j])
		switch bytes.Compare(ka, kb) {
		case -1:
			d.Removed = append(d.Removed, kvOf(a.kind, ea[i]))
			i++
		case 1:
			d.Added = append(d.Added, kvOf(b.kind, eb[j]))
			j++
		default:
			if a.kind == KindMap && !bytes.Equal(MapElemValue(ea[i]), MapElemValue(eb[j])) {
				d.Modified = append(d.Modified, kvOf(b.kind, eb[j]))
			}
			i++
			j++
		}
	}
	for ; i < len(ea); i++ {
		d.Removed = append(d.Removed, kvOf(a.kind, ea[i]))
	}
	for ; j < len(eb); j++ {
		d.Added = append(d.Added, kvOf(b.kind, eb[j]))
	}
	return d, nil
}

func kvOf(k Kind, enc []byte) KV {
	if k == KindMap {
		return KV{Key: MapElemKey(enc), Value: MapElemValue(enc)}
	}
	return KV{Key: SetElemBody(enc)}
}

// UnsortedDiff summarizes how two unsorted trees (Blob, List) differ in
// terms of chunk sharing; exact byte/element diffing of unshared regions
// is left to the application.
type UnsortedDiff struct {
	SharedLeaves   int
	OnlyA, OnlyB   int    // unshared leaf counts
	BytesA, BytesB uint64 // unshared payload bytes on each side
}

// DiffUnsorted compares two Blob or List trees chunk-wise, honouring
// ctx between the two index walks.
func DiffUnsorted(ctx context.Context, a, b *Tree) (*UnsortedDiff, error) {
	if a.kind.Sorted() || a.kind != b.kind {
		return nil, fmt.Errorf("postree: DiffUnsorted on %v vs %v", a.kind, b.kind)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	la, err := a.leafEntries()
	if err != nil {
		return nil, err
	}
	lb, err := b.leafEntries()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sizes := func(t *Tree, e entry) uint64 {
		if t.kind == KindBlob {
			return e.count
		}
		return e.count // element count; callers interpret per kind
	}
	inA := make(map[chunk.ID]bool, len(la))
	for _, e := range la {
		inA[e.id] = true
	}
	inB := make(map[chunk.ID]bool, len(lb))
	for _, e := range lb {
		inB[e.id] = true
	}
	d := &UnsortedDiff{}
	for _, e := range la {
		if inB[e.id] {
			d.SharedLeaves++
		} else {
			d.OnlyA++
			d.BytesA += sizes(a, e)
		}
	}
	for _, e := range lb {
		if !inA[e.id] {
			d.OnlyB++
			d.BytesB += sizes(b, e)
		}
	}
	return d, nil
}

// Stats describes the physical shape of a tree.
type Stats struct {
	Leaves     int
	IndexNodes int
	Bytes      int64 // serialized bytes across all nodes
	Height     int
}

// TreeStats walks the tree and returns its physical statistics,
// verifying every node against its cid on the way (tamper evidence).
func (t *Tree) TreeStats() (Stats, error) {
	st := Stats{Height: t.height}
	if t.root.IsNil() {
		return st, nil
	}
	var walk func(id chunk.ID) error
	walk = func(id chunk.ID) error {
		c, err := t.getChunk(id)
		if err != nil {
			return err
		}
		st.Bytes += int64(c.Size())
		if !isIndex(c.Type()) {
			st.Leaves++
			return nil
		}
		st.IndexNodes++
		entries, err := decodeEntries(c.Data())
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := walk(e.id); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return st, err
	}
	return st, nil
}

// Verify re-fetches and re-hashes every node of the tree, returning an
// error if any node's content does not match the cid that references it.
func (t *Tree) Verify() error {
	_, err := t.TreeStats()
	return err
}
