// Package core wires the substrates together into the ForkBase engine:
// chunk storage underneath, branch tables per key, the object manager
// (types), and merge semantics on top. It implements the operations of
// paper Table 1 (M1–M17) for a single servlet; the public forkbase
// package and the cluster layer both delegate here.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"forkbase/internal/branch"
	"forkbase/internal/merge"
	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
)

// Errors reported by engine operations.
var (
	ErrKeyNotFound  = errors.New("core: key not found")
	ErrTypeMismatch = errors.New("core: value type does not match")
	// ErrBadOptions reports an option combination a client call cannot
	// satisfy. It lives here (rather than the public package) so the
	// wire protocol can round-trip it without an import cycle.
	ErrBadOptions = errors.New("forkbase: conflicting or missing call options")
)

// keyLockStripes is the size of the fixed update-lock table. A power
// of two so the stripe index is a mask over the key hash.
const keyLockStripes = 1024

// Engine is a single-servlet ForkBase instance. It is safe for
// concurrent use; updates to any one key are serialized (§4.5.1).
type Engine struct {
	s     store.Store
	cfg   postree.Config
	space *branch.Space

	// locks stripes the per-key update mutexes: a key maps to a stripe
	// by hash, so memory stays fixed no matter how many distinct keys
	// the engine ever sees (a per-key map grew without bound). Two keys
	// sharing a stripe merely serialize their updates, which is
	// harmless for correctness and rare at 1024 stripes.
	locks [keyLockStripes]sync.Mutex

	// pins are uids explicitly protected from garbage collection: GC
	// roots beyond the branch tables. A client holding a version only
	// by uid (e.g. after RemoveBranch) pins it to keep it collectable-
	// proof, the way git requires a ref before gc.
	pinMu sync.RWMutex
	pins  map[types.UID]struct{}

	// meta, when set (Recover), journals every pin mutation; branch
	// mutations are journaled by the tables themselves, which carry
	// the journal as their sink.
	meta branch.Sink

	// shields are transient, refcounted GC roots protecting chunks that
	// exist in the store but are not yet reachable from any version —
	// the window between a chunk-sync upload (or a Have answer that
	// told a client not to re-send) and the OpPutChunked commit that
	// references them. Unlike pins they are never journaled: a crash
	// drops them, exactly as it drops the half-finished upload they
	// were protecting. The store's own GC protection window cannot
	// cover this case — it shields only chunks Put while a collection
	// is running, not chunks uploaded before BeginGC and referenced
	// after Sweep.
	shieldMu sync.Mutex
	shields  map[types.UID]int
}

// NewEngine returns an engine over the given chunk store.
func NewEngine(s store.Store, cfg postree.Config) *Engine {
	return &Engine{
		s:       s,
		cfg:     cfg,
		space:   branch.NewSpace(),
		pins:    make(map[types.UID]struct{}),
		shields: make(map[types.UID]int),
	}
}

// Store exposes the underlying chunk store (for stats and the chunk
// partitioning layer).
func (e *Engine) Store() store.Store { return e.s }

// Recover attaches a metadata journal: the engine's branch tables and
// pin set are replaced by the state the journal recovered from disk,
// and every subsequent head or pin mutation is recorded for the next
// open to replay. Call it immediately after NewEngine, before the
// engine serves requests — it swaps the branch space wholesale.
func (e *Engine) Recover(j *branch.Journal) {
	space, pins := j.Restore()
	e.space = space
	e.pinMu.Lock()
	e.pins = make(map[types.UID]struct{}, len(pins))
	for _, uid := range pins {
		e.pins[uid] = struct{}{}
	}
	e.pinMu.Unlock()
	e.meta = j
}

// Config returns the POS-Tree configuration.
func (e *Engine) Config() postree.Config { return e.cfg }

// keyLock returns the update mutex striping this key.
func (e *Engine) keyLock(key []byte) *sync.Mutex {
	// Inline FNV-1a; hash/fnv would force a []byte->Hash allocation.
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return &e.locks[h&(keyLockStripes-1)]
}

// Get returns the head version of a tagged branch (M1).
func (e *Engine) Get(key []byte, branchName string) (*types.FObject, error) {
	t, ok := e.space.Lookup(key)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	uid, ok := t.Head(branchName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", branch.ErrBranchNotFound, branchName)
	}
	return types.LoadFObject(e.s, uid)
}

// GetUID returns a specific version by uid (M2), verifying its
// integrity against the requested identifier.
func (e *Engine) GetUID(uid types.UID) (*types.FObject, error) {
	return types.LoadFObject(e.s, uid)
}

// Value decodes an FObject's value against this engine's store.
func (e *Engine) Value(o *types.FObject) (types.Value, error) {
	return o.Value(e.s, e.cfg)
}

// Put writes a new version to a tagged branch (M3), deriving from the
// current head. The branch is created on first write. Returns the new
// uid.
func (e *Engine) Put(key []byte, branchName string, v types.Value, context []byte) (types.UID, error) {
	return e.putTagged(key, branchName, v, context, nil)
}

// PutGuarded is Put that succeeds only if the branch head still equals
// guard, protecting against lost updates (§4.5.1).
func (e *Engine) PutGuarded(key []byte, branchName string, v types.Value, context []byte, guard types.UID) (types.UID, error) {
	return e.putTagged(key, branchName, v, context, &guard)
}

func (e *Engine) putTagged(key []byte, branchName string, v types.Value, context []byte, guard *types.UID) (types.UID, error) {
	l := e.keyLock(key)
	l.Lock()
	defer l.Unlock()
	t := e.space.Table(key)
	var bases []*types.FObject
	if head, ok := t.Head(branchName); ok {
		if guard != nil && head != *guard {
			return types.UID{}, branch.ErrGuardFailed
		}
		base, err := types.LoadFObject(e.s, head)
		if err != nil {
			return types.UID{}, err
		}
		bases = append(bases, base)
	} else if guard != nil {
		// No head to compare against: the branch is missing, which is
		// a different failure than losing a guard race.
		return types.UID{}, fmt.Errorf("%w: %q", branch.ErrBranchNotFound, branchName)
	}
	o, err := types.Save(e.s, e.cfg, key, v, bases, context)
	if err != nil {
		return types.UID{}, err
	}
	if err := t.UpdateTagged(branchName, o.UID(), nil); err != nil {
		// A guard of nil cannot fail; the error reports lost journal
		// durability for a head that DID move. Hand the caller the uid
		// it now owns along with the error, so a retry can observe the
		// applied update instead of fighting its own write.
		return o.UID(), err
	}
	return o.UID(), nil
}

// BatchPut is one write of a batched put group (the client Batch API).
type BatchPut struct {
	Key    []byte
	Branch string
	Value  types.Value
	Meta   []byte
	// Guard, when non-nil, makes the write conditional on the branch
	// head (as the writer would observe it inside the batch).
	Guard *types.UID
}

// PutBatch applies a group of tagged-branch writes, amortizing the
// per-put costs that dominate small writes: puts are grouped by key,
// each key's update lock is taken once per group, each branch head is
// loaded once and then chained in memory, and the branch table is
// updated once per branch at the end of the group.
//
// Within a key the group is atomic: head updates become visible only
// after every write in the group succeeds. Across keys the batch is
// not atomic — groups for earlier keys may have committed when a later
// group fails. Returns the new uids in put order. ctx is checked
// between key groups; a cancelled context aborts the remaining groups.
func (e *Engine) PutBatch(ctx context.Context, puts []BatchPut) ([]types.UID, error) {
	uids := make([]types.UID, len(puts))
	// Group put indexes by key, preserving first-seen key order.
	var order []string
	groups := make(map[string][]int)
	for i, p := range puts {
		k := string(p.Key)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := e.putGroup([]byte(k), groups[k], puts, uids); err != nil {
			return nil, err
		}
	}
	return uids, nil
}

// PutBatchIndependent is PutBatch with per-put error isolation: each
// key group commits or fails on its own and the batch always runs to
// the end. errs[i] is nil exactly when puts[i] committed; a failed
// group reports its error on every one of its puts (within a key the
// group is still atomic, so they failed together). The network
// server's put coalescer depends on this shape — adjacent pipelined
// puts from independent requests must not abort each other the way
// one Apply batch would.
func (e *Engine) PutBatchIndependent(ctx context.Context, puts []BatchPut) ([]types.UID, []error) {
	uids := make([]types.UID, len(puts))
	errs := make([]error, len(puts))
	var order []string
	groups := make(map[string][]int)
	for i, p := range puts {
		k := string(p.Key)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		idxs := groups[k]
		err := ctx.Err()
		if err == nil {
			err = e.putGroup([]byte(k), idxs, puts, uids)
		}
		if err != nil {
			for _, i := range idxs {
				uids[i] = types.UID{}
				errs[i] = err
			}
		}
	}
	return uids, errs
}

// putGroup applies one key's batched writes under a single lock hold.
func (e *Engine) putGroup(key []byte, idxs []int, puts []BatchPut, uids []types.UID) error {
	l := e.keyLock(key)
	l.Lock()
	defer l.Unlock()
	t := e.space.Table(key)
	// heads holds each written branch's pending head; loaded tracks
	// branches whose pre-batch head has been read (nil = new branch).
	heads := make(map[string]*types.FObject)
	loaded := make(map[string]bool)
	for _, i := range idxs {
		p := puts[i]
		if !loaded[p.Branch] {
			if uid, ok := t.Head(p.Branch); ok {
				o, err := types.LoadFObject(e.s, uid)
				if err != nil {
					return err
				}
				heads[p.Branch] = o
			}
			loaded[p.Branch] = true
		}
		base := heads[p.Branch]
		if p.Guard != nil {
			if base == nil {
				return fmt.Errorf("%w: %q", branch.ErrBranchNotFound, p.Branch)
			}
			if base.UID() != *p.Guard {
				return branch.ErrGuardFailed
			}
		}
		var bases []*types.FObject
		if base != nil {
			bases = []*types.FObject{base}
		}
		o, err := types.Save(e.s, e.cfg, key, p.Value, bases, p.Meta)
		if err != nil {
			return err
		}
		uids[i] = o.UID()
		heads[p.Branch] = o
	}
	for br, o := range heads {
		if err := t.UpdateTagged(br, o.UID(), nil); err != nil {
			return err
		}
	}
	return nil
}

// PutBase writes a new version deriving from an explicit base version
// (M4) — the fork-on-conflict path. Concurrent PutBase calls against
// the same base create sibling untagged heads (Figure 3b).
func (e *Engine) PutBase(key []byte, baseUID types.UID, v types.Value, context []byte) (types.UID, error) {
	l := e.keyLock(key)
	l.Lock()
	defer l.Unlock()
	var bases []*types.FObject
	if !baseUID.IsNil() {
		base, err := types.LoadFObject(e.s, baseUID)
		if err != nil {
			return types.UID{}, err
		}
		bases = append(bases, base)
	}
	o, err := types.Save(e.s, e.cfg, key, v, bases, context)
	if err != nil {
		return types.UID{}, err
	}
	t := e.space.Table(key)
	var baseList []types.UID
	if !baseUID.IsNil() {
		baseList = []types.UID{baseUID}
	}
	if err := t.AddUntagged(o.UID(), baseList); err != nil {
		// The head is in the UB-table; the error is a durability report.
		return o.UID(), err
	}
	return o.UID(), nil
}

// Fork creates a new tagged branch at an existing branch head (M11).
func (e *Engine) Fork(key []byte, refBranch, newBranch string) error {
	t, ok := e.space.Lookup(key)
	if !ok {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	uid, ok := t.Head(refBranch)
	if !ok {
		return fmt.Errorf("%w: %q", branch.ErrBranchNotFound, refBranch)
	}
	return t.Fork(newBranch, uid)
}

// ForkUID creates a new tagged branch at an arbitrary version (M12) —
// the way a historical version becomes modifiable again (§3.3).
func (e *Engine) ForkUID(key []byte, uid types.UID, newBranch string) error {
	if _, err := types.LoadFObject(e.s, uid); err != nil {
		return err
	}
	return e.space.Table(key).Fork(newBranch, uid)
}

// Rename renames a tagged branch (M13).
func (e *Engine) Rename(key []byte, branchName, newName string) error {
	t, ok := e.space.Lookup(key)
	if !ok {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	return t.Rename(branchName, newName)
}

// RemoveBranch deletes a tagged branch name (M14).
func (e *Engine) RemoveBranch(key []byte, branchName string) error {
	t, ok := e.space.Lookup(key)
	if !ok {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	return t.Remove(branchName)
}

// ListKeys returns all keys (M8).
func (e *Engine) ListKeys() []string { return e.space.Keys() }

// ListTaggedBranches returns all tagged branches of a key (M9).
func (e *Engine) ListTaggedBranches(key []byte) []branch.TaggedBranch {
	t, ok := e.space.Lookup(key)
	if !ok {
		return nil
	}
	return t.Tagged()
}

// ListUntaggedBranches returns all untagged heads of a key (M10). A
// single head means no conflict.
func (e *Engine) ListUntaggedBranches(key []byte) []types.UID {
	t, ok := e.space.Lookup(key)
	if !ok {
		return nil
	}
	return t.Untagged()
}

// Track returns historical versions of a branch head at derivation
// distances [from, to] (M15): Track(key, b, 0, 0) is the head itself,
// distances follow first bases. ctx is honoured per walked version:
// a cancelled caller (locally, or a remote client that hung up) stops
// paying for the rest of a deep history promptly.
func (e *Engine) Track(ctx context.Context, key []byte, branchName string, from, to int) ([]*types.FObject, error) {
	o, err := e.Get(key, branchName)
	if err != nil {
		return nil, err
	}
	return e.TrackUID(ctx, o.UID(), from, to)
}

// TrackUID returns historical versions at derivation distances
// [from, to] behind the given version (M16), checking ctx at every
// step of the walk.
func (e *Engine) TrackUID(ctx context.Context, uid types.UID, from, to int) ([]*types.FObject, error) {
	if from < 0 || to < from {
		return nil, fmt.Errorf("core: bad distance range [%d, %d]", from, to)
	}
	var out []*types.FObject
	cur, err := types.LoadFObject(e.s, uid)
	if err != nil {
		return nil, err
	}
	for d := 0; d <= to; d++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if d >= from {
			out = append(out, cur)
		}
		if len(cur.Bases) == 0 {
			break
		}
		cur, err = types.LoadFObject(e.s, cur.Bases[0])
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LCA returns the least common ancestor of two versions (M17).
func (e *Engine) LCA(ctx context.Context, uid1, uid2 types.UID) (*types.FObject, error) {
	return merge.LCA(ctx, e.s, uid1, uid2)
}

// MergeBranches merges refBranch into tgtBranch (M5): the target's head
// is replaced by a version containing data from both branches and
// deriving from both heads.
func (e *Engine) MergeBranches(ctx context.Context, key []byte, tgtBranch, refBranch string, res merge.Resolver, meta []byte) (types.UID, []merge.Conflict, error) {
	t, ok := e.space.Lookup(key)
	if !ok {
		return types.UID{}, nil, fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	refHead, ok := t.Head(refBranch)
	if !ok {
		return types.UID{}, nil, fmt.Errorf("%w: %q", branch.ErrBranchNotFound, refBranch)
	}
	return e.MergeUID(ctx, key, tgtBranch, refHead, res, meta)
}

// MergeUID merges a specific version into tgtBranch (M6).
func (e *Engine) MergeUID(ctx context.Context, key []byte, tgtBranch string, ref types.UID, res merge.Resolver, meta []byte) (types.UID, []merge.Conflict, error) {
	l := e.keyLock(key)
	l.Lock()
	defer l.Unlock()
	t := e.space.Table(key)
	tgtHead, ok := t.Head(tgtBranch)
	if !ok {
		return types.UID{}, nil, fmt.Errorf("%w: %q", branch.ErrBranchNotFound, tgtBranch)
	}
	merged, conflicts, err := e.merge(ctx, tgtHead, ref, res)
	if err != nil {
		return types.UID{}, conflicts, err
	}
	a, err := types.LoadFObject(e.s, tgtHead)
	if err != nil {
		return types.UID{}, nil, err
	}
	b, err := types.LoadFObject(e.s, ref)
	if err != nil {
		return types.UID{}, nil, err
	}
	o, err := types.Save(e.s, e.cfg, key, merged, []*types.FObject{a, b}, meta)
	if err != nil {
		return types.UID{}, nil, err
	}
	if err := t.UpdateTagged(tgtBranch, o.UID(), nil); err != nil {
		// Merge applied, journal append failed: durability report only.
		return o.UID(), nil, err
	}
	return o.UID(), nil, nil
}

// MergeUntagged merges a collection of untagged heads (M7); the inputs
// are logically replaced by the merge result in the UB-table.
func (e *Engine) MergeUntagged(ctx context.Context, key []byte, res merge.Resolver, meta []byte, uids ...types.UID) (types.UID, []merge.Conflict, error) {
	if len(uids) < 2 {
		return types.UID{}, nil, fmt.Errorf("core: MergeUntagged needs at least 2 versions")
	}
	l := e.keyLock(key)
	l.Lock()
	defer l.Unlock()
	// Fold the heads pairwise; bases of the final object are all inputs.
	cur := uids[0]
	var mergedVal types.Value
	for _, next := range uids[1:] {
		v, conflicts, err := e.merge(ctx, cur, next, res)
		if err != nil {
			return types.UID{}, conflicts, err
		}
		mergedVal = v
		// Persist each fold step so the next iteration has a uid to
		// merge against; only the final result enters the UB-table.
		a, err := types.LoadFObject(e.s, cur)
		if err != nil {
			return types.UID{}, nil, err
		}
		b, err := types.LoadFObject(e.s, next)
		if err != nil {
			return types.UID{}, nil, err
		}
		o, err := types.Save(e.s, e.cfg, key, mergedVal, []*types.FObject{a, b}, meta)
		if err != nil {
			return types.UID{}, nil, err
		}
		cur = o.UID()
	}
	t := e.space.Table(key)
	if err := t.ReplaceUntagged(cur, uids); err != nil {
		// Replacement applied in memory; the error reports durability.
		return cur, nil, err
	}
	return cur, nil, nil
}

// PinUID protects a version (and everything it reaches — its value
// chunks and full derivation history) from garbage collection, beyond
// what the branch tables already keep live. Pinning does not verify
// the uid exists; pinning ahead of a future write is allowed, and a
// still-unwritten pin is simply ignored by collections until the
// version lands. With a metadata journal attached, the pin is recorded
// durably; a returned error reports lost durability, not a lost pin.
func (e *Engine) PinUID(uid types.UID) error {
	e.pinMu.Lock()
	defer e.pinMu.Unlock()
	e.pins[uid] = struct{}{}
	if e.meta == nil {
		return nil
	}
	return e.meta.Record(branch.Op{Kind: branch.OpPin, UID: uid})
}

// UnpinUID removes a pin. The version stays reachable only if a branch
// (or another pin) still reaches it.
func (e *Engine) UnpinUID(uid types.UID) error {
	e.pinMu.Lock()
	defer e.pinMu.Unlock()
	delete(e.pins, uid)
	if e.meta == nil {
		return nil
	}
	return e.meta.Record(branch.Op{Kind: branch.OpUnpin, UID: uid})
}

// Pins returns the pinned uids, sorted (stats and tooling).
func (e *Engine) Pins() []types.UID {
	e.pinMu.RLock()
	out := make([]types.UID, 0, len(e.pins))
	for uid := range e.pins {
		out = append(out, uid)
	}
	e.pinMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Roots enumerates every GC root this engine knows: all tagged branch
// heads and untagged fork-on-conflict heads of every key, plus the
// pinned uids. A chunk is live iff it is reachable from one of these
// through the Merkle DAG (meta → bases, meta → tree root, index →
// children).
//
// Enumeration must not race an in-flight Put: every write path
// persists its chunks and then publishes the new head under its key's
// stripe lock, so a GC that opened its protection window mid-put could
// see neither the chunks (written before the window) nor the head
// (published after enumeration). Cycling every stripe first closes the
// gap: a put that persisted anything before the caller's window has
// published by the time its stripe is released, and a put acquiring
// its stripe after the cycle does all its persisting inside the window
// and is protected chunk by chunk.
func (e *Engine) Roots() []types.UID {
	for i := range e.locks {
		e.locks[i].Lock()
		e.locks[i].Unlock() // barrier only: wait out in-flight publishes
	}
	var roots []types.UID
	for _, k := range e.space.Keys() {
		t, ok := e.space.Lookup([]byte(k))
		if !ok {
			continue
		}
		for _, tb := range t.Tagged() {
			roots = append(roots, tb.Head)
		}
		roots = append(roots, t.Untagged()...)
	}
	e.pinMu.RLock()
	for uid := range e.pins {
		// A pin may point at a version not written yet (pin-ahead is
		// allowed); it becomes a root once the chunk exists. Skipping
		// it here is safe: if the write lands during the collection,
		// the put itself protects the chunks.
		if e.s.Has(uid) {
			roots = append(roots, uid)
		}
	}
	e.pinMu.RUnlock()
	e.shieldMu.Lock()
	for uid := range e.shields {
		// Same reasoning as pins: a shield taken before its chunk was
		// stored is covered by the store's own protection window once
		// the Put lands mid-collection.
		if e.s.Has(uid) {
			roots = append(roots, uid)
		}
	}
	e.shieldMu.Unlock()
	return roots
}

// ShieldUIDs takes transient GC shields on the given chunk ids: each
// id counts as a collection root until a matching UnshieldUIDs drops
// it. Shields are refcounted (two uploads of the same chunk need two
// releases) and never journaled — they exist to keep negotiated or
// freshly uploaded chunks alive until the version that references them
// commits, and they die with the process.
func (e *Engine) ShieldUIDs(ids []types.UID) {
	e.shieldMu.Lock()
	for _, id := range ids {
		e.shields[id]++
	}
	e.shieldMu.Unlock()
}

// UnshieldUIDs drops one shield reference per given id. Ids that were
// never shielded are ignored.
func (e *Engine) UnshieldUIDs(ids []types.UID) {
	e.shieldMu.Lock()
	for _, id := range ids {
		if n, ok := e.shields[id]; ok {
			if n <= 1 {
				delete(e.shields, id)
			} else {
				e.shields[id] = n - 1
			}
		}
	}
	e.shieldMu.Unlock()
}

// GC runs one dedup-aware collection against the engine's store: it
// opens the write-protection window, marks everything reachable from
// Roots, and sweeps the store, compacting segments whose live ratio
// falls below threshold (<=0 uses store.DefaultGCThreshold). Reads and
// writes proceed concurrently; versions written during the collection
// are protected by the window. Returns store.ErrNotCollectable when
// the underlying store cannot reclaim space.
func (e *Engine) GC(ctx context.Context, threshold float64) (store.GCStats, error) {
	return store.Collect(ctx, e.s, func() ([]types.UID, error) {
		return e.Roots(), nil
	}, types.ChunkRefs, threshold)
}

// merge three-way merges two versions using their LCA as base; the
// ancestor search honours ctx.
func (e *Engine) merge(ctx context.Context, u1, u2 types.UID, res merge.Resolver) (types.Value, []merge.Conflict, error) {
	a, err := types.LoadFObject(e.s, u1)
	if err != nil {
		return nil, nil, err
	}
	b, err := types.LoadFObject(e.s, u2)
	if err != nil {
		return nil, nil, err
	}
	base, err := merge.LCA(ctx, e.s, u1, u2)
	if err != nil {
		return nil, nil, err
	}
	return merge.ThreeWay(ctx, e.s, e.cfg, base, a, b, res)
}

// Diff compares two versions of the same type (the Diff operation of
// §3.2). The result depends on the value type: element-wise for sorted
// chunkables, chunk-level summary for unsorted ones, byte equality for
// primitives.
func (e *Engine) Diff(ctx context.Context, u1, u2 types.UID) (*Diff, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a, err := types.LoadFObject(e.s, u1)
	if err != nil {
		return nil, err
	}
	b, err := types.LoadFObject(e.s, u2)
	if err != nil {
		return nil, err
	}
	if a.VType != b.VType {
		return nil, fmt.Errorf("%w: %v vs %v", ErrTypeMismatch, a.VType, b.VType)
	}
	d := &Diff{Type: a.VType}
	switch a.VType {
	case types.TypeMap, types.TypeSet:
		av, err := a.Value(e.s, e.cfg)
		if err != nil {
			return nil, err
		}
		bv, err := b.Value(e.s, e.cfg)
		if err != nil {
			return nil, err
		}
		var ta, tb *postree.Tree
		if a.VType == types.TypeMap {
			ta, tb = av.(*types.Map).Tree(), bv.(*types.Map).Tree()
		} else {
			ta, tb = av.(*types.Set).Tree(), bv.(*types.Set).Tree()
		}
		sd, err := postree.DiffSorted(ctx, ta, tb)
		if err != nil {
			return nil, err
		}
		d.Sorted = sd
	case types.TypeBlob, types.TypeList:
		av, err := a.Value(e.s, e.cfg)
		if err != nil {
			return nil, err
		}
		bv, err := b.Value(e.s, e.cfg)
		if err != nil {
			return nil, err
		}
		var ta, tb *postree.Tree
		if a.VType == types.TypeBlob {
			ta, tb = av.(*types.Blob).Tree(), bv.(*types.Blob).Tree()
		} else {
			ta, tb = av.(*types.List).Tree(), bv.(*types.List).Tree()
		}
		ud, err := postree.DiffUnsorted(ctx, ta, tb)
		if err != nil {
			return nil, err
		}
		d.Unsorted = ud
	default:
		d.PrimitiveEqual = string(a.Data) == string(b.Data)
	}
	return d, nil
}

// Diff is the result of comparing two versions.
type Diff struct {
	Type types.Type
	// Sorted is set for Map/Set comparisons.
	Sorted *postree.SortedDiff
	// Unsorted is set for Blob/List comparisons.
	Unsorted *postree.UnsortedDiff
	// PrimitiveEqual is set for primitive comparisons.
	PrimitiveEqual bool
}
