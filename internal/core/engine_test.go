package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"forkbase/internal/branch"
	"forkbase/internal/merge"
	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
)

func newEngine() *Engine {
	return NewEngine(store.NewMemStore(), postree.Config{LeafQ: 8, IndexR: 3})
}

func TestGetOnUnknownKeyAndBranch(t *testing.T) {
	e := newEngine()
	if _, err := e.Get([]byte("nope"), "master"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("unknown key: %v", err)
	}
	if _, err := e.Put([]byte("k"), "master", types.String("v"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get([]byte("k"), "nope"); !errors.Is(err, branch.ErrBranchNotFound) {
		t.Fatalf("unknown branch: %v", err)
	}
}

func TestTrackRangeValidation(t *testing.T) {
	e := newEngine()
	uid, err := e.Put([]byte("k"), "master", types.String("v"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.TrackUID(context.Background(), uid, -1, 2); err == nil {
		t.Fatal("negative from accepted")
	}
	if _, err := e.TrackUID(context.Background(), uid, 3, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
	// Range beyond history is truncated, not an error.
	hist, err := e.TrackUID(context.Background(), uid, 0, 100)
	if err != nil || len(hist) != 1 {
		t.Fatalf("beyond history: %d %v", len(hist), err)
	}
	// Range entirely before the first version yields nothing.
	hist, err = e.TrackUID(context.Background(), uid, 5, 7)
	if err != nil || len(hist) != 0 {
		t.Fatalf("past the root: %d %v", len(hist), err)
	}
}

func TestPutBaseMissingBase(t *testing.T) {
	e := newEngine()
	var missing types.UID
	missing[0] = 0xff
	if _, err := e.PutBase([]byte("k"), missing, types.String("v"), nil); err == nil {
		t.Fatal("put against a missing base accepted")
	}
}

func TestForkUIDUnknownVersion(t *testing.T) {
	e := newEngine()
	var missing types.UID
	missing[5] = 1
	if err := e.ForkUID([]byte("k"), missing, "b"); err == nil {
		t.Fatal("fork at a missing version accepted")
	}
}

func TestMergeUntaggedNeedsTwo(t *testing.T) {
	e := newEngine()
	uid, _ := e.PutBase([]byte("k"), types.UID{}, types.String("v"), nil)
	if _, _, err := e.MergeUntagged(context.Background(), []byte("k"), nil, nil, uid); err == nil {
		t.Fatal("single-input untagged merge accepted")
	}
}

func TestMergeUntaggedThreeWayFold(t *testing.T) {
	e := newEngine()
	mk := func(vals map[string]string, base types.UID) types.UID {
		m := types.NewMap()
		for k, v := range vals {
			m.Set([]byte(k), []byte(v))
		}
		uid, err := e.PutBase([]byte("k"), base, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		return uid
	}
	base := mk(map[string]string{"shared": "x"}, types.UID{})
	u1 := mk(map[string]string{"shared": "x", "a": "1"}, base)
	u2 := mk(map[string]string{"shared": "x", "b": "2"}, base)
	u3 := mk(map[string]string{"shared": "x", "c": "3"}, base)
	merged, _, err := e.MergeUntagged(context.Background(), []byte("k"), nil, nil, u1, u2, u3)
	if err != nil {
		t.Fatal(err)
	}
	o, err := e.GetUID(merged)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Value(o)
	if err != nil {
		t.Fatal(err)
	}
	m := v.(*types.Map)
	for _, k := range []string{"shared", "a", "b", "c"} {
		if _, ok, _ := m.Get([]byte(k)); !ok {
			t.Fatalf("three-way fold lost %q", k)
		}
	}
	heads := e.ListUntaggedBranches([]byte("k"))
	if len(heads) != 1 || heads[0] != merged {
		t.Fatalf("UB-table after fold: %v", heads)
	}
}

func TestDiffTypeMismatch(t *testing.T) {
	e := newEngine()
	u1, _ := e.Put([]byte("a"), "master", types.String("s"), nil)
	u2, _ := e.Put([]byte("b"), "master", types.Int(1), nil)
	if _, err := e.Diff(context.Background(), u1, u2); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("type mismatch diff: %v", err)
	}
}

func TestDiffAllValueClasses(t *testing.T) {
	e := newEngine()
	// Primitive diff.
	p1, _ := e.Put([]byte("p"), "master", types.String("a"), nil)
	p2, _ := e.Put([]byte("p"), "master", types.String("a"), nil)
	d, err := e.Diff(context.Background(), p1, p2)
	if err != nil || !d.PrimitiveEqual {
		t.Fatalf("primitive diff: %+v %v", d, err)
	}
	// Unsorted (blob) diff.
	b1, _ := e.Put([]byte("b"), "master", types.NewBlob(make([]byte, 4096)), nil)
	b2, _ := e.Put([]byte("b"), "master", types.NewBlob(make([]byte, 8192)), nil)
	d, err = e.Diff(context.Background(), b1, b2)
	if err != nil || d.Unsorted == nil {
		t.Fatalf("blob diff: %+v %v", d, err)
	}
	// Sorted (set) diff.
	s1 := types.NewSet([]byte("x"))
	s2 := types.NewSet([]byte("x"), []byte("y"))
	u1, _ := e.Put([]byte("s"), "master", s1, nil)
	u2, _ := e.Put([]byte("s"), "master", s2, nil)
	d, err = e.Diff(context.Background(), u1, u2)
	if err != nil || d.Sorted == nil || len(d.Sorted.Added) != 1 {
		t.Fatalf("set diff: %+v %v", d, err)
	}
}

func TestListKeysOrdering(t *testing.T) {
	e := newEngine()
	for _, k := range []string{"zebra", "apple", "mango"} {
		e.Put([]byte(k), "master", types.String("v"), nil)
	}
	keys := e.ListKeys()
	if len(keys) != 3 || keys[0] != "apple" || keys[2] != "zebra" {
		t.Fatalf("keys: %v", keys)
	}
}

func TestMergeConflictDoesNotMoveHead(t *testing.T) {
	e := newEngine()
	e.Put([]byte("k"), "master", types.String("base"), nil)
	if err := e.Fork([]byte("k"), "master", "other"); err != nil {
		t.Fatal(err)
	}
	e.Put([]byte("k"), "master", types.String("left"), nil)
	e.Put([]byte("k"), "other", types.String("right"), nil)
	before, _ := e.Get([]byte("k"), "master")
	_, _, err := e.MergeBranches(context.Background(), []byte("k"), "master", "other", nil, nil)
	if !errors.Is(err, merge.ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
	after, _ := e.Get([]byte("k"), "master")
	if before.UID() != after.UID() {
		t.Fatal("failed merge moved the branch head")
	}
}

func TestEngineManyKeysIndependentHistories(t *testing.T) {
	e := newEngine()
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		for v := 0; v <= i%5; v++ {
			if _, err := e.Put(key, "master", types.String(fmt.Sprintf("v%d", v)), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		hist, err := e.Track(context.Background(), key, "master", 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(hist) != i%5+1 {
			t.Fatalf("key-%d history %d, want %d", i, len(hist), i%5+1)
		}
	}
}

// countdownCtx is a context whose Err starts failing after n calls:
// it deterministically cancels "mid-walk", which a real cancel racing
// a history traversal cannot do reliably.
type countdownCtx struct {
	context.Context
	n int
}

func (c *countdownCtx) Err() error {
	if c.n--; c.n < 0 {
		return context.Canceled
	}
	return nil
}

// TestHistoryWalksHonourCtx proves the long walks — Track and the LCA
// search behind Merge — observe ctx between steps, not just at entry.
// The remote client's cancel-on-disconnect depends on this: a server
// goroutine stuck in a deep walk would otherwise run to completion
// long after the caller hung up.
func TestHistoryWalksHonourCtx(t *testing.T) {
	e := newEngine()
	const depth = 64
	var root types.UID
	for i := 0; i < depth; i++ {
		uid, err := e.Put([]byte("k"), "master", types.String(fmt.Sprintf("v%d", i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			root = uid
		}
	}
	head, err := e.Get([]byte("k"), "master")
	if err != nil {
		t.Fatal(err)
	}
	// Track: cancel after a handful of loaded versions.
	ctx := &countdownCtx{Context: context.Background(), n: 5}
	if _, err := e.TrackUID(ctx, head.UID(), 0, depth); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-walk Track: %v", err)
	}
	// LCA: a branch forked at the root forces the ancestor search to
	// expand master's whole chain before the two frontiers meet.
	if err := e.ForkUID([]byte("k"), root, "side"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Put([]byte("k"), "side", types.String("s"), nil); err != nil {
		t.Fatal(err)
	}
	side, err := e.Get([]byte("k"), "side")
	if err != nil {
		t.Fatal(err)
	}
	ctx = &countdownCtx{Context: context.Background(), n: 5}
	if _, err := e.LCA(ctx, head.UID(), side.UID()); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-walk LCA: %v", err)
	}
	// The merge entry points abort through the same search.
	ctx = &countdownCtx{Context: context.Background(), n: 5}
	if _, _, err := e.MergeBranches(ctx, []byte("k"), "master", "side", merge.ChooseB, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-walk Merge: %v", err)
	}
}

// TestDiffHonoursCtxMidWalk: the structural diff's unshared-leaf
// comparison observes ctx, not just the entry check — a large diff
// must abort when its remote caller disconnects.
func TestDiffHonoursCtxMidWalk(t *testing.T) {
	e := newEngine()
	m := types.NewMap()
	for i := 0; i < 2000; i++ {
		m.Set([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("a-%d", i)))
	}
	u1, err := e.Put([]byte("d"), "master", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2 := types.NewMap()
	for i := 0; i < 2000; i++ {
		// Every value differs: no leaf is shared, so the diff must
		// fetch leaves from both sides — the loop under test.
		m2.Set([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("b-%d", i)))
	}
	u2, err := e.Put([]byte("d"), "master", m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Diff(context.Background(), u1, u2); err != nil {
		t.Fatalf("uncancelled diff: %v", err)
	}
	ctx := &countdownCtx{Context: context.Background(), n: 5}
	if _, err := e.Diff(ctx, u1, u2); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-walk diff: %v", err)
	}
}

// TestPutBatchIndependentIsolation: a failing key group zeroes its own
// uids and reports its error on exactly its own puts; every other
// group still commits. The network server's put coalescer folds
// adjacent independent requests into one of these batches, so the
// isolation IS the per-request semantics.
func TestPutBatchIndependentIsolation(t *testing.T) {
	e := newEngine()
	head, err := e.Put([]byte("a"), "master", types.String("a0"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var stale types.UID
	stale[0] = 0xee // guaranteed not the head of anything
	puts := []BatchPut{
		{Key: []byte("a"), Branch: "master", Value: types.String("a1")},
		{Key: []byte("b"), Branch: "master", Value: types.String("b1"), Guard: &stale}, // fails: no head to guard
		{Key: []byte("c"), Branch: "master", Value: types.String("c1")},
		{Key: []byte("b"), Branch: "master", Value: types.String("b2"), Guard: &stale}, // same group, fails with it
	}
	uids, errs := e.PutBatchIndependent(context.Background(), puts)
	if len(uids) != 4 || len(errs) != 4 {
		t.Fatalf("result lengths %d/%d", len(uids), len(errs))
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy puts failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil || errs[3] == nil {
		t.Fatal("guarded puts against a missing branch succeeded")
	}
	if uids[1] != (types.UID{}) || uids[3] != (types.UID{}) {
		t.Fatal("failed puts returned non-zero uids")
	}
	// The committed groups are live: a advanced past its old head, c
	// exists, b never appeared.
	o, err := e.Get([]byte("a"), "master")
	if err != nil || o.UID() != uids[0] || o.UID() == head {
		t.Fatalf("a did not advance: %v", err)
	}
	if _, err := e.Get([]byte("c"), "master"); err != nil {
		t.Fatalf("c missing: %v", err)
	}
	// The failed group committed nothing: no version of b is
	// reachable (its table may exist as a lock-side effect, so either
	// not-found flavour is fine).
	if _, err := e.Get([]byte("b"), "master"); !errors.Is(err, ErrKeyNotFound) && !errors.Is(err, branch.ErrBranchNotFound) {
		t.Fatalf("failed group left state: %v", err)
	}
}
