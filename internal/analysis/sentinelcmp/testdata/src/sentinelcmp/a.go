package fixture

import (
	"errors"
	"io"
)

var ErrNotFound = errors.New("not found")
var errInternal = errors.New("internal") // unexported sentinels count too

func check(err error) bool {
	if err == ErrNotFound { // want `use errors\.Is`
		return true
	}
	if ErrNotFound != err { // want `use errors\.Is`
		return true
	}
	if err == errInternal { // want `use errors\.Is`
		return true
	}
	if err == nil { // nil checks are fine
		return false
	}
	if err == io.EOF { // io.EOF is exempt (io.Reader contract)
		return false
	}
	return errors.Is(err, ErrNotFound) // the required form
}

func localsAreFine() bool {
	a := errors.New("a")
	b := errors.New("b")
	return a == b // locals are not sentinels
}

func allowed(err error) bool {
	//forkvet:allow sentinelcmp — fixture: negative case
	return err == ErrNotFound
}
