package sentinelcmp

import (
	"testing"

	"forkbase/internal/analysis/analysistest"
)

func TestSentinelcmp(t *testing.T) {
	analysistest.Run(t, Analyzer, "sentinelcmp")
}
