// Package sentinelcmp flags ==/!= comparisons against sentinel error
// variables.
//
// Invariant (PR 5): errors cross the wire as codes and come back
// wrapped (a *remoteError unwrapping to the local sentinel), so the
// same logical failure compares == true against an embedded store and
// == false against a RemoteStore. errors.Is sees through the wrapper;
// == does not. Any comparison of an error expression against a
// package-level error variable must use errors.Is.
//
// io.EOF is exempt: the io.Reader contract guarantees it is returned
// unwrapped, and == against it is stdlib idiom.
package sentinelcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"forkbase/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "sentinelcmp",
	Doc:  "flags ==/!= against sentinel errors where errors.Is is required",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			var sentinel *types.Var
			var other ast.Expr
			if v := sentinelVar(pass, be.X); v != nil {
				sentinel, other = v, be.Y
			} else if v := sentinelVar(pass, be.Y); v != nil {
				sentinel, other = v, be.X
			}
			if sentinel == nil {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[other]; !ok || !isErrorType(tv.Type) {
				return true
			}
			pass.Reportf(be.Pos(), "%s compared with %s; use errors.Is — wire-decoded errors wrap the sentinel, so == is silently wrong against a RemoteStore (PR 5)", sentinel.Name(), be.Op)
			return true
		})
	}
	return nil
}

// sentinelVar resolves expr to a package-level error variable, or nil.
func sentinelVar(pass *analysis.Pass, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	if v.Pkg().Path() == "io" && v.Name() == "EOF" {
		return nil
	}
	return v
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
