package fixture

import (
	"net"
	"os"
	"sync"
	"time"
)

type engine struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	conn  net.Conn
	f     *os.File
	ch    chan int
	wg    sync.WaitGroup
	locks [16]sync.Mutex
}

func Barrier() error        { return nil }
func Pull(n int) error      { _ = n; return nil }
func WriteFrame(c net.Conn) {} //nolint

func (e *engine) badSocketWrite(b []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.conn.Write(b) // want `net socket Write while "e\.mu" is locked`
}

func (e *engine) badFsync() {
	e.rw.Lock()
	e.f.Sync() // want `os\.File\.Sync \(fsync\) while "e\.rw" is locked`
	e.rw.Unlock()
}

func (e *engine) badChannelOps() {
	e.mu.Lock()
	e.ch <- 1 // want `channel send while "e\.mu" is locked`
	<-e.ch    // want `channel receive while "e\.mu" is locked`
	e.mu.Unlock()
}

func (e *engine) badSelect() {
	e.mu.Lock()
	defer e.mu.Unlock()
	select { // want `select while "e\.mu" is locked`
	case <-e.ch:
	}
}

func (e *engine) okSelectWithDefault() {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case v := <-e.ch:
		_ = v
	default:
	}
}

func (e *engine) badNamedBlocking() {
	e.locks[3].Lock()
	defer e.locks[3].Unlock()
	Barrier()                    // want `Barrier while "e\.locks\[3\]" is locked`
	Pull(1)                      // want `Pull while "e\.locks\[3\]" is locked`
	time.Sleep(time.Millisecond) // want `time\.Sleep while "e\.locks\[3\]" is locked`
}

func (e *engine) badWait() {
	e.mu.Lock()
	e.wg.Wait() // want `sync\.WaitGroup\.Wait while "e\.mu" is locked`
	e.mu.Unlock()
}

func (e *engine) okAfterUnlock(b []byte) {
	e.mu.Lock()
	v := len(b)
	e.mu.Unlock()
	e.conn.Write(b)
	_ = v
}

// okBranchUnlock: the early-return branch unlocks its own copy of the
// held set; the fall-through path is still held and still flagged.
func (e *engine) branchUnlock(b []byte, fail bool) {
	e.mu.Lock()
	if fail {
		e.mu.Unlock()
		e.conn.Write(b) // branch released the lock: fine
		return
	}
	e.conn.Write(b) // want `net socket Write while "e\.mu" is locked`
	e.mu.Unlock()
}

// okBranchLock: a lock taken and released inside a branch does not
// leak into the fall-through path.
func (e *engine) branchLock(b []byte, lockIt bool) {
	if lockIt {
		e.mu.Lock()
		e.mu.Unlock()
	}
	e.conn.Write(b)
}

// okGoroutine: the spawned body runs outside the critical section (it
// is analyzed as its own root with no lock held).
func (e *engine) okGoroutine(b []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		e.conn.Write(b)
	}()
}

func (e *engine) badRangeChan() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for v := range e.ch { // want `range over channel while "e\.mu" is locked`
		_ = v
	}
}

// allowWrite serializes frames on a shared socket on purpose.
func (e *engine) allowWrite(b []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//forkvet:allow lockhold — fixture: deliberate write serialization
	e.conn.Write(b)
}
