package lockhold

import (
	"testing"

	"forkbase/internal/analysis/analysistest"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, Analyzer, "lockhold")
}
