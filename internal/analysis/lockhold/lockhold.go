// Package lockhold flags blocking calls made while a sync mutex is
// held.
//
// Invariant (PR 2): the Engine's stripe locks, the branch Table mutex
// and the FileStore index lock serialize hot paths; anything that can
// park the goroutine for unbounded time while one is held — wire or
// socket I/O, fsync barriers, channel operations, WaitGroup waits,
// chunk-sync Pull/Push — turns a short critical section into a
// cluster-wide stall. The handful of places that hold a lock across
// I/O on purpose (a connection's write mutex serializing frames, the
// metadata journal's write-ahead barrier) carry //forkvet:allow
// lockhold with the reason.
//
// The analysis is intra-procedural: it sees a Lock() and a blocking
// call in the same function body. Branches are scanned with a copy of
// the held set, so a conditional unlock-and-return does not leak into
// the fall-through path. Calls that acquire a lock internally (the
// "xxxLocked" helper convention) are by construction out of scope.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"forkbase/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "flags blocking calls (socket I/O, fsync, channel ops, Pull/Push) under a held mutex",
	Run:  run,
}

// blockingFuncs are package-qualified functions that park the caller.
var blockingFuncs = map[[2]string]bool{
	{"time", "Sleep"}:   true,
	{"io", "ReadFull"}:  true,
	{"io", "Copy"}:      true,
	{"io", "ReadAll"}:   true,
	{"net", "Dial"}:     true,
	{"os/exec", "Run"}:  true,
	{"os/exec", "Wait"}: true,
}

// blockingNames are bare function or method names treated as blocking
// wherever they resolve — repository conventions: Barrier is the
// journal's write-ahead flush, Pull/Push are chunk-sync transfers,
// ReadFrame/WriteFrame are the wire codec's socket I/O.
var blockingNames = map[string]bool{
	"Barrier":    true,
	"Pull":       true,
	"Push":       true,
	"Fsync":      true,
	"ReadFrame":  true,
	"WriteFrame": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		var roots []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					roots = append(roots, n.Body)
				}
			case *ast.FuncLit:
				roots = append(roots, n.Body)
			}
			return true
		})
		for _, body := range roots {
			s := &scan{pass: pass}
			s.stmts(body.List, map[string]token.Pos{})
		}
	}
	return nil
}

type scan struct {
	pass *analysis.Pass
}

// stmts walks one statement list in source order. held maps a lock's
// source expression (e.g. "fs.mu") to the position that acquired it.
// Nested control-flow bodies get a copy, so branch-local lock activity
// stays branch-local.
func (s *scan) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

func (s *scan) stmt(st ast.Stmt, held map[string]token.Pos) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		s.expr(st.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			s.reportHeld(st.Arrow, "channel send", held)
		}
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e, held)
		}
		for _, e := range st.Lhs {
			s.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the remainder of
		// the function — exactly the case the scan must keep tracking —
		// so a deferred release does not clear the held set. Any other
		// deferred call runs at return; its arguments are evaluated now.
		for _, arg := range st.Call.Args {
			s.expr(arg, held)
		}
	case *ast.GoStmt:
		// The goroutine runs elsewhere; its body is analyzed as its own
		// root. Argument evaluation happens here, though.
		for _, arg := range st.Call.Args {
			s.expr(arg, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held)
		s.stmts(st.Body.List, clone(held))
		if st.Else != nil {
			s.stmt(st.Else, clone(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		s.stmts(st.Body.List, clone(held))
	case *ast.RangeStmt:
		if len(held) > 0 {
			if tv, ok := s.pass.TypesInfo.Types[st.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.reportHeld(st.For, "range over channel", held)
				}
			}
		}
		s.expr(st.X, held)
		s.stmts(st.Body.List, clone(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					s.expr(e, held)
				}
				s.stmts(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !hasDefault(st) {
			s.reportHeld(st.Select, "select", held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.stmts(cc.Body, clone(held))
			}
		}
	case *ast.BlockStmt:
		s.stmts(st.List, held)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	}
}

// expr scans an expression tree for lock transitions, blocking calls
// and channel receives. FuncLit bodies are skipped: they are analyzed
// as separate roots with an empty held set.
func (s *scan) expr(e ast.Expr, held map[string]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				s.reportHeld(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			s.call(n, held)
		}
		return true
	})
}

// call classifies one call: lock transition, or blocking operation.
func (s *scan) call(call *ast.CallExpr, held map[string]token.Pos) {
	sel, _ := call.Fun.(*ast.SelectorExpr)
	fn := calleeFunc(s.pass, call)
	if fn == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	// Lock/Unlock on sync types track the held set, keyed by the
	// receiver's source expression.
	if sel != nil && sig != nil && sig.Recv() != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		key := types.ExprString(sel.X)
		switch fn.Name() {
		case "Lock", "RLock":
			held[key] = call.Pos()
			return
		case "Unlock", "RUnlock":
			delete(held, key)
			return
		}
	}
	if len(held) == 0 {
		return
	}
	if op := blockingOp(fn, sig); op != "" {
		s.reportHeld(call.Pos(), op, held)
	}
}

// blockingOp classifies a callee as blocking, returning a description
// or "".
func blockingOp(fn *types.Func, sig *types.Signature) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
			rp := named.Obj().Pkg().Path()
			rn := named.Obj().Name()
			switch {
			case rp == "sync" && fn.Name() == "Wait":
				return "sync." + rn + ".Wait"
			case rp == "os" && rn == "File" && fn.Name() == "Sync":
				return "os.File.Sync (fsync)"
			case rp == "net" && (fn.Name() == "Read" || fn.Name() == "Write" || fn.Name() == "Accept"):
				return "net socket " + fn.Name()
			}
		}
	}
	if blockingFuncs[[2]string{pkg, fn.Name()}] {
		return pkg + "." + fn.Name()
	}
	if blockingNames[fn.Name()] {
		return fn.Name()
	}
	return ""
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func hasDefault(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func (s *scan) reportHeld(pos token.Pos, op string, held map[string]token.Pos) {
	// Report against the lock acquired first (lowest position) for a
	// stable message when several are held.
	var key string
	var lockPos token.Pos
	for k, p := range held {
		if key == "" || p < lockPos {
			key, lockPos = k, p
		}
	}
	line := s.pass.Fset.Position(lockPos).Line
	s.pass.Reportf(pos, "%s while %q is locked (line %d): blocking I/O, channel ops and Pull/Push must not run under Engine/Table/FileStore locks (PR 2); unlock first or annotate //forkvet:allow lockhold", op, key, line)
}

func clone(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
