// Package analysis is a dependency-free reimplementation of the
// golang.org/x/tools/go/analysis contract, sized for this repository's
// own invariant checkers (cmd/forkvet). The x/tools module is not part
// of the build, so the three pieces a multichecker needs are provided
// here: the Analyzer/Pass/Diagnostic shape (analysis.go), a package
// loader that type-checks the module offline from `go list -export`
// data (load.go), and suppression directives (allow.go).
//
// Analyzers written against this package keep the exact Run(*Pass)
// shape of x/tools analyzers, so they can migrate to the real
// framework wholesale if the dependency ever lands.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //forkvet:allow directives. Lower-case, no spaces.
	Name string
	// Doc states the enforced invariant: first line is the summary,
	// the rest explains why the invariant exists.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(*Pass) error
}

// Pass carries one analyzed package into an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	report    func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a finding with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a diagnostic resolved to a file position and tagged with
// the analyzer that produced it — the driver-facing form.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package and returns the
// surviving findings, sorted by position. Diagnostics at positions
// covered by a //forkvet:allow directive for the reporting analyzer
// are dropped here, so individual analyzers never deal with
// suppression.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if allows.allowed(a.Name, pos) {
					return
				}
				out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
