package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding can be acknowledged in source with
//
//	//forkvet:allow <name>[,<name>...] — reason
//
// where <name> is an analyzer name (or "all"). The reason is free
// text; CONTRIBUTING.md asks for one, but the parser only needs the
// names. A directive suppresses matching diagnostics
//
//   - on its own line (trailing comment),
//   - on the line immediately below it (a comment line above the
//     flagged statement), and
//   - anywhere inside the declaration it documents, when it appears in
//     the doc comment of a top-level func/var/const/type declaration.
const allowPrefix = "//forkvet:allow"

// allowSet indexes every directive of one package's files.
type allowSet struct {
	// lines maps file -> line -> analyzer names allowed on that line.
	lines map[string]map[int][]string
	// spans are declaration-scoped directives.
	spans []allowSpan
	fset  *token.FileSet
}

type allowSpan struct {
	file       string
	start, end int // line range, inclusive
	names      []string
}

// parseAllow extracts analyzer names from one comment line, or nil if
// the comment is not a directive.
func parseAllow(text string) []string {
	if !strings.HasPrefix(text, allowPrefix) {
		return nil
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //forkvet:allowance
	}
	// Names end at the first token that is not a comma-separated list
	// of identifiers; everything after is the human reason.
	fields := strings.Fields(rest)
	var names []string
	for _, f := range fields {
		ok := true
		for _, part := range strings.Split(f, ",") {
			if part == "" {
				continue
			}
			for _, r := range part {
				if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			break
		}
		for _, part := range strings.Split(f, ",") {
			if part != "" {
				names = append(names, part)
			}
		}
	}
	return names
}

// collectAllows scans a package's comments for directives.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	s := &allowSet{lines: make(map[string]map[int][]string), fset: fset}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if names == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				m := s.lines[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					s.lines[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], names...)
			}
		}
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			var names []string
			for _, c := range doc.List {
				names = append(names, parseAllow(c.Text)...)
			}
			if len(names) == 0 {
				continue
			}
			start := fset.Position(decl.Pos())
			end := fset.Position(decl.End())
			s.spans = append(s.spans, allowSpan{
				file: start.Filename, start: start.Line, end: end.Line, names: names,
			})
		}
	}
	return s
}

// allowed reports whether a diagnostic from the named analyzer at pos
// is suppressed.
func (s *allowSet) allowed(analyzer string, pos token.Position) bool {
	match := func(names []string) bool {
		for _, n := range names {
			if n == analyzer || n == "all" {
				return true
			}
		}
		return false
	}
	if m := s.lines[pos.Filename]; m != nil {
		if match(m[pos.Line]) || match(m[pos.Line-1]) {
			return true
		}
	}
	for _, sp := range s.spans {
		if sp.file == pos.Filename && pos.Line >= sp.start && pos.Line <= sp.end && match(sp.names) {
			return true
		}
	}
	return false
}
