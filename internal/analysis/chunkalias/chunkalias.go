// Package chunkalias flags reuse of a []byte buffer after it has been
// handed to chunk.New.
//
// Invariant (PR 6): chunk.New takes ownership of its payload slice —
// the cid is the SHA-256 of exactly those bytes, and both ends of the
// chunk-sync protocol re-verify payloads against their cid on
// admission. A caller that writes into the buffer afterwards (element
// assignment, copy-into, append-into) silently corrupts a chunk that
// may already sit in the store, the cache, or a wire frame. The safe
// pattern — used by the POS-tree builders — is to hand over a fresh
// copy and keep recycling the scratch buffer.
//
// The analysis is intra-procedural and tracks the variable passed as
// the payload argument: a plain reassignment to a fresh value releases
// it; re-slicing (buf = buf[:0]) keeps it tracked, since the backing
// array is still the chunk's.
package chunkalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"forkbase/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "chunkalias",
	Doc:  "flags mutation of a []byte payload after it was handed to chunk.New",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		var roots []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					roots = append(roots, n.Body)
				}
			case *ast.FuncLit:
				roots = append(roots, n.Body)
			}
			return true
		})
		for _, body := range roots {
			s := &scan{pass: pass, handed: make(map[types.Object]int)}
			s.walk(body)
		}
	}
	return nil
}

type scan struct {
	pass *analysis.Pass
	// handed maps a buffer variable to the line where chunk.New took
	// ownership of it.
	handed map[types.Object]int
}

// walk visits n's statements in source order (pre-order DFS), skipping
// nested function literals — they are separate roots.
func (s *scan) walk(n ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false // nested literals are their own roots
		case *ast.AssignStmt:
			s.assign(c)
		case *ast.CallExpr:
			s.call(c)
		}
		return true
	})
}

func (s *scan) assign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			if obj := s.trackedObj(l.X); obj != nil {
				s.report(l.Pos(), obj, "element write")
			}
		case *ast.Ident:
			obj := s.pass.TypesInfo.ObjectOf(l)
			if obj == nil {
				continue
			}
			if _, ok := s.handed[obj]; !ok {
				continue
			}
			// Reassignment: a fresh value releases the buffer; a
			// re-slice of itself still aliases the chunk's bytes.
			if i < len(as.Rhs) && aliasesSelf(as.Rhs[i], obj, s.pass) {
				continue
			}
			if len(as.Lhs) == len(as.Rhs) {
				delete(s.handed, obj)
			}
		}
	}
}

func (s *scan) call(call *ast.CallExpr) {
	// Builtin mutators.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "copy":
			if len(call.Args) == 2 {
				if obj := s.trackedObj(call.Args[0]); obj != nil {
					s.report(call.Pos(), obj, "copy into")
				}
			}
			return
		case "append":
			if len(call.Args) > 0 {
				arg := call.Args[0]
				if se, ok := arg.(*ast.SliceExpr); ok {
					arg = se.X
				}
				if obj := s.trackedObj(arg); obj != nil {
					s.report(call.Pos(), obj, "append into")
				}
			}
			return
		}
	}
	// Handoff: chunk.New(type, payload).
	fn := calleeFunc(s.pass, call)
	if fn == nil || fn.Name() != "New" || fn.Pkg() == nil || fn.Pkg().Name() != "chunk" {
		return
	}
	if len(call.Args) != 2 {
		return
	}
	if id, ok := call.Args[1].(*ast.Ident); ok {
		if obj := s.pass.TypesInfo.ObjectOf(id); obj != nil && isByteSlice(obj.Type()) {
			s.handed[obj] = s.pass.Fset.Position(call.Pos()).Line
		}
	}
}

// trackedObj resolves e to a handed-off buffer variable, or nil.
func (s *scan) trackedObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := s.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if _, ok := s.handed[obj]; !ok {
		return nil
	}
	return obj
}

// aliasesSelf reports whether rhs still aliases obj's backing array
// (a slice expression over obj, possibly through append(obj[:k],...)).
func aliasesSelf(rhs ast.Expr, obj types.Object, pass *analysis.Pass) bool {
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func (s *scan) report(pos token.Pos, obj types.Object, what string) {
	line := s.handed[obj]
	s.pass.Reportf(pos, "%s %q after chunk.New took ownership of it (line %d): the cid is computed from these bytes, so later writes corrupt an admitted chunk (PR 6); hand over a fresh copy instead", what, obj.Name(), line)
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
