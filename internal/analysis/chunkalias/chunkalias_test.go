package chunkalias

import (
	"testing"

	"forkbase/internal/analysis/analysistest"
)

func TestChunkalias(t *testing.T) {
	analysistest.Run(t, Analyzer, "chunkalias/use")
}
