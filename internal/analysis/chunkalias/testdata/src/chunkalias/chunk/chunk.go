// Package chunk mirrors the shape of forkbase/internal/chunk: New
// takes ownership of its payload slice.
package chunk

type Chunk struct {
	t    byte
	data []byte
}

func New(t byte, data []byte) *Chunk { return &Chunk{t: t, data: data} }

func (c *Chunk) Data() []byte { return c.data }
