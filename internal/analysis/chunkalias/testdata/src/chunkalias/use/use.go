package use

import "chunkalias/chunk"

func badElementWrite() *chunk.Chunk {
	buf := make([]byte, 8)
	c := chunk.New(1, buf)
	buf[0] = 0xff // want `element write "buf" after chunk\.New took ownership`
	return c
}

func badCopyInto(other []byte) *chunk.Chunk {
	buf := make([]byte, 8)
	c := chunk.New(1, buf)
	copy(buf, other) // want `copy into "buf" after chunk\.New took ownership`
	return c
}

func badAppendInto() *chunk.Chunk {
	buf := make([]byte, 0, 64)
	buf = append(buf, 1, 2, 3)
	c := chunk.New(1, buf)
	buf = append(buf, 4) // want `append into "buf" after chunk\.New took ownership`
	return c
}

func badResliceReuse() []*chunk.Chunk {
	buf := make([]byte, 0, 64)
	var out []*chunk.Chunk
	for i := 0; i < 4; i++ {
		buf = append(buf, byte(i))
		out = append(out, chunk.New(1, buf))
		buf = buf[:0]        // still aliases the chunk's bytes
		buf = append(buf, 9) // want `append into "buf" after chunk\.New took ownership`
	}
	return out
}

// okFreshCopy is the POS-tree builder pattern: hand over a copy, keep
// recycling the scratch buffer.
func okFreshCopy(scratch []byte) []*chunk.Chunk {
	var out []*chunk.Chunk
	for i := 0; i < 4; i++ {
		payload := make([]byte, len(scratch))
		copy(payload, scratch)
		out = append(out, chunk.New(1, payload))
		scratch = scratch[:0]
		scratch = append(scratch, byte(i))
	}
	return out
}

// okReassigned: a fresh make releases the old buffer.
func okReassigned() *chunk.Chunk {
	buf := make([]byte, 8)
	c := chunk.New(1, buf)
	buf = make([]byte, 8)
	buf[0] = 1
	_ = buf
	return c
}

// okTempExpression: an anonymous temporary cannot be reused.
func okTempExpression(prefix func() []byte, data []byte) *chunk.Chunk {
	return chunk.New(1, append(prefix(), data...))
}

func allowed() *chunk.Chunk {
	buf := make([]byte, 8)
	c := chunk.New(1, buf)
	//forkvet:allow chunkalias — fixture: negative case
	buf[0] = 0xff
	return c
}
