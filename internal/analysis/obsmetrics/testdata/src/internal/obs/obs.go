// Package obs (fixture) stands in for the real internal/obs: the one
// package where raw atomics ARE the metric implementation, exempt from
// the analyzer by import-path suffix.
package obs

import "sync/atomic"

// No diagnostics anywhere in this package.
var totalObservations atomic.Int64

type shardCounters struct {
	shards [16]atomic.Int64
}

func bump(c *shardCounters) {
	c.shards[0].Add(1)
	totalObservations.Add(1)
}
