package fixture

import "sync/atomic"

// Package-level atomic counters are invisible metrics.
var requestCount atomic.Int64 // want `register an obs\.Counter/Gauge`

var (
	hits   atomic.Uint64 // want `register an obs\.Counter/Gauge`
	misses atomic.Uint64 // want `register an obs\.Counter/Gauge`
)

var perOp [8]atomic.Int64 // want `register an obs\.Counter/Gauge`

// Ad-hoc instrument tables shadow the registry.
type serverStats struct { // want `build it from obs\.Counter/Gauge/Histogram`
	reqs atomic.Int64
	errs atomic.Int64
}

type PoolMetrics struct { // want `build it from obs\.Counter/Gauge/Histogram`
	busy atomic.Int32
	name string
}

type hitCounters struct { // want `build it from obs\.Counter/Gauge/Histogram`
	byShard [16]atomic.Uint64
}

// Plain-integer snapshot structs are return values, not live state.
type StoreStats struct {
	Puts int64
	Gets int64
}

// A name without the metric suffix is not an instrument table — the
// atomics may be concurrency machinery, not metrics.
type connState struct {
	inFlight atomic.Int32
}

// atomic.Value/Pointer/Bool are not counter-shaped.
var config atomic.Value

// Locals are workers' scratch state, not scrape targets.
func count() int64 {
	var n atomic.Int64
	n.Add(1)
	return n.Load()
}

// Deliberate exceptions carry an allow with a reason.
//
//forkvet:allow obsmetrics — fixture: negative case
var legacyGauge atomic.Int64

type exemptStats struct { //forkvet:allow obsmetrics — fixture: negative case
	n atomic.Int64
}

func use() {
	requestCount.Add(1)
	hits.Add(1)
	misses.Add(1)
	perOp[0].Add(1)
	legacyGauge.Add(1)
	_ = serverStats{}
	_ = PoolMetrics{}
	_ = hitCounters{}
	_ = StoreStats{}
	_ = connState{}
	_ = exemptStats{}
	_ = config.Load()
}
