// Package obsmetrics flags ad-hoc metric state declared outside
// internal/obs.
//
// Invariant (PR 10): every metric lives in an obs.Registry, registered
// as an obs.Counter, Gauge or Histogram (or a *Func sampling an
// existing stat), so one snapshot covers the whole process and every
// export surface — OpServerStats, /metrics, forkcli stats -server —
// sees the same numbers. A bespoke package-level atomic counter, or a
// Stats/Metrics/Counters struct built from raw atomics, is invisible
// to all of them: it works in the one place that reads it and is dark
// everywhere else. Two patterns are flagged:
//
//   - a package-level var of a sync/atomic numeric type (atomic.Int64
//     and friends, or an array of them): a global counter nothing can
//     scrape;
//   - a struct type whose name ends in Stats, Metrics or Counters with
//     sync/atomic fields: an ad-hoc instrument table shadowing the
//     registry.
//
// Plain-integer snapshot structs (StoreStats, GCStats, JournalStats)
// are untouched — they are return values, not live state — and
// internal/obs itself is exempt: it is the one place atomics are the
// point. Deliberate exceptions carry //forkvet:allow obsmetrics with a
// reason.
package obsmetrics

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"forkbase/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "obsmetrics",
	Doc:  "flags ad-hoc atomic metric state that should be an obs instrument",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if p := pass.Pkg.Path(); p == "internal/obs" || strings.HasSuffix(p, "/internal/obs") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.VAR:
				checkVars(pass, gd)
			case token.TYPE:
				checkTypes(pass, gd)
			}
		}
	}
	return nil
}

// checkVars flags package-level vars of atomic numeric types.
func checkVars(pass *analysis.Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || obj.Parent() != pass.Pkg.Scope() {
				continue
			}
			if isAtomicNumeric(obj.Type()) {
				pass.Reportf(name.Pos(), "package-level atomic %s is an ad-hoc metric no export surface can see; register an obs.Counter/Gauge in a registry instead (PR 10)", name.Name)
			}
		}
	}
}

// checkTypes flags Stats/Metrics/Counters structs built from raw
// atomics.
func checkTypes(pass *analysis.Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok || !metricishName(ts.Name.Name) {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok || !isAtomicNumeric(tv.Type) {
				continue
			}
			pass.Reportf(ts.Name.Pos(), "%s aggregates raw atomic fields into an ad-hoc instrument table; build it from obs.Counter/Gauge/Histogram so snapshots and export surfaces see it (PR 10)", ts.Name.Name)
			break
		}
	}
}

func metricishName(name string) bool {
	return strings.HasSuffix(name, "Stats") ||
		strings.HasSuffix(name, "Metrics") ||
		strings.HasSuffix(name, "Counters")
}

// isAtomicNumeric reports whether t is one of sync/atomic's numeric
// types (or an array of them) — counter-shaped state. atomic.Value and
// atomic.Pointer are not metrics and stay legal.
func isAtomicNumeric(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		return isAtomicNumeric(arr.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Int32", "Int64", "Uint32", "Uint64", "Uintptr":
		return true
	}
	return false
}
