package obsmetrics

import (
	"testing"

	"forkbase/internal/analysis/analysistest"
)

func TestObsmetrics(t *testing.T) {
	analysistest.Run(t, Analyzer, "obsmetrics", "internal/obs")
}
