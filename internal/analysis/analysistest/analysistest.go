// Package analysistest runs an analyzer over golden fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// sources live under <analyzer pkg>/testdata/src/<pkgpath>/, and every
// line expected to produce a diagnostic carries a trailing
//
//	// want "regexp"
//
// comment (several quoted regexps mean several diagnostics on that
// line). The test fails on any unmatched diagnostic or unmet
// expectation. Because diagnostics pass through the same
// //forkvet:allow suppression as the real driver, a fixture line with
// an allow directive and no want comment is the negative test proving
// suppression works.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"forkbase/internal/analysis"
)

// Run loads each fixture package and checks the analyzer's diagnostics
// against its want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		src:     src,
		fixture: make(map[string]*analysis.Package),
		exports: make(map[string]string),
	}
	ld.std = &stdImporter{ld: ld, under: importer.ForCompiler(ld.fset, "gc", ld.lookup)}
	for _, path := range pkgpaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkExpectations(t, ld.fset, pkg, findings)
	}
}

// expectation is one want regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, pat := range parseWant(t, pos, c.Text) {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: pat})
				}
			}
		}
	}
	for _, d := range findings {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWant extracts the quoted regexps of a `// want "..." "..."`
// comment, or nil if the comment is not a want.
func parseWant(t *testing.T, pos token.Position, text string) []*regexp.Regexp {
	t.Helper()
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ")
	if !ok {
		return nil
	}
	var pats []*regexp.Regexp
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		lit, remainder, err := cutQuoted(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment: %v", pos, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp: %v", pos, err)
		}
		pats = append(pats, re)
		rest = remainder
	}
	return pats
}

// cutQuoted splits a leading Go-quoted string off s.
func cutQuoted(s string) (lit, rest string, err error) {
	if s == "" || (s[0] != '"' && s[0] != '`') {
		return "", "", fmt.Errorf("expected quoted regexp, have %q", s)
	}
	q := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && q == '"' {
			i++
			continue
		}
		if s[i] == q {
			lit, err := strconv.Unquote(s[:i+1])
			return lit, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quoted regexp in %q", s)
}

// loader resolves fixture packages (GOPATH-style, from testdata/src)
// and standard-library packages (from compiled export data fetched
// lazily via `go list -export`).
type loader struct {
	fset    *token.FileSet
	src     string
	fixture map[string]*analysis.Package
	exports map[string]string
	std     types.Importer
}

func (ld *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := ld.fixture[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	var terrs []string
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { terrs = append(terrs, err.Error()) },
	}
	tpkg, _ := conf.Check(path, ld.fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("type errors:\n  %s", strings.Join(terrs, "\n  "))
	}
	pkg := &analysis.Package{
		PkgPath: path,
		Name:    files[0].Name.Name,
		Dir:     dir,
		Fset:    ld.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	ld.fixture[path] = pkg
	return pkg, nil
}

// Import implements types.Importer over both source trees.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, err := os.Stat(filepath.Join(ld.src, filepath.FromSlash(path))); err == nil {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// lookup feeds export data to the gc importer, shelling out to
// `go list` once per missing root and caching the whole dependency
// closure it reports.
func (ld *loader) lookup(path string) (io.ReadCloser, error) {
	if e, ok := ld.exports[path]; ok {
		return os.Open(e)
	}
	cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", path)
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v", path, err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			ld.exports[p.ImportPath] = p.Export
		}
	}
	e, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(e)
}

// stdImporter guards "unsafe" in front of the export-data importer.
type stdImporter struct {
	ld    *loader
	under types.Importer
}

func (s *stdImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return s.under.Import(path)
}
