package wireexhaustive

import (
	"testing"

	"forkbase/internal/analysis/analysistest"
)

func TestWireexhaustive(t *testing.T) {
	analysistest.Run(t, Analyzer,
		"wireexhaustive/codes",
		"wireexhaustive/codesallow",
		"wireexhaustive/srv",
		"wireexhaustive/srvallow",
	)
}
