//forkvet:allow wireexhaustive — fixture: negative case
package srvallow

import "wireexhaustive/wire"

func dispatch(op uint8) string {
	if op == wire.OpHello {
		return "hello"
	}
	return "?"
}
