// server.go mirrors the root package's dispatch switch; OpPut is
// deliberately not dispatched.
package srv // want `OpPut is not referenced in server\.go`

import "wireexhaustive/wire"

func dispatch(op uint8) string {
	switch op {
	case wire.OpHello:
		return "hello"
	case wire.OpGet:
		return "get"
	}
	return "?"
}
