// other.go uses one opcode but is not a protocol surface file, so it
// carries no obligation to reference the rest.
package srv

import "wireexhaustive/wire"

func isHello(op uint8) bool { return op == wire.OpHello }
