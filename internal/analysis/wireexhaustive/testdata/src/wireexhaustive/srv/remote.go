// remote.go mirrors the client codec; every opcode is encoded, so the
// file is clean.
package srv

import "wireexhaustive/wire"

func encode(kind string) uint8 {
	switch kind {
	case "hello":
		return wire.OpHello
	case "get":
		return wire.OpGet
	case "put":
		return wire.OpPut
	}
	return 0
}
