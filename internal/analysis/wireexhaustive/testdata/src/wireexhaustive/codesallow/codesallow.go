// Package codesallow proves the allow directive suppresses both rule-1
// diagnostics: CodeOrphan is unwired on both sides but annotated.
package codesallow

import "errors"

//forkvet:allow wireexhaustive — fixture: negative case
const (
	CodeGeneric uint8 = iota
	CodeOK
	CodeOrphan
)

var codeSentinels = map[uint8]error{
	CodeOK: errOK,
}

var errOK = errors.New("codesallow: ok")

func ErrorCode(err error) uint8 {
	for _, code := range []uint8{CodeOK} {
		if errors.Is(err, codeSentinels[code]) {
			return code
		}
	}
	return CodeGeneric
}
