// Package wire mirrors the opcode block of forkbase/internal/wire.
package wire

const (
	OpHello uint8 = iota + 1
	OpGet
	OpPut

	opMax // unexported: not part of the protocol surface
)

// KnownOp keeps opMax referenced, as in the real package.
func KnownOp(op uint8) bool { return op >= OpHello && op < opMax }
