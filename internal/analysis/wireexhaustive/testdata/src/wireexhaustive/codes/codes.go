// Package codes mirrors the error-codec shape of internal/wire:
// CodeHalfWired decodes but is never produced, CodeOrphan is wired on
// neither side, and core.ErrUncovered has no code at all.
package codes

import (
	"errors"

	"wireexhaustive/core"
)

const (
	CodeGeneric uint8 = iota
	CodeKeyNotFound
	CodeTypeMismatch
	CodeHalfWired // want `CodeHalfWired is missing from ErrorCode's classification list`
	CodeOrphan    // want `CodeOrphan has no codeSentinels entry` `CodeOrphan is missing from ErrorCode's classification list`
)

var codeSentinels = map[uint8]error{ // want `core\.ErrUncovered has no wire error code`
	CodeKeyNotFound:  core.ErrKeyNotFound,
	CodeTypeMismatch: core.ErrTypeMismatch,
	CodeHalfWired:    errHalf,
}

var errHalf = errors.New("codes: half wired")

func ErrorCode(err error) uint8 {
	for _, code := range []uint8{CodeKeyNotFound, CodeTypeMismatch} {
		if errors.Is(err, codeSentinels[code]) {
			return code
		}
	}
	return CodeGeneric
}
