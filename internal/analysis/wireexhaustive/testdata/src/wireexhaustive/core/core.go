// Package core mirrors forkbase/internal/core's sentinel block.
package core

import "errors"

var (
	ErrKeyNotFound  = errors.New("core: key not found")
	ErrTypeMismatch = errors.New("core: type mismatch")
	ErrUncovered    = errors.New("core: no wire plumbing yet")
)
