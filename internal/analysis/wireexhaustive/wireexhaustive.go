// Package wireexhaustive cross-checks the wire protocol's two
// exhaustiveness invariants (PR 5):
//
//  1. Error-codec completeness. In the package that declares the
//     `codeSentinels` map and the `ErrorCode` classifier, every
//     `Code*` constant (except CodeGeneric, the deliberate catch-all)
//     must appear both as a key of codeSentinels — the decode side,
//     or the client rebuilds an opaque error and errors.Is breaks —
//     and in ErrorCode's ordered classification list — the encode
//     side, or the server downgrades the sentinel to CodeGeneric.
//     Every exported `Err*` sentinel of the imported core package must
//     appear as a codeSentinels value, so adding an engine error
//     without wire plumbing is a build failure.
//
//  2. Opcode-surface completeness. In files named server.go (the
//     dispatch switch) and remote.go (the client codec), every
//     exported `Op*` constant of the wire package must be referenced:
//     an opcode the server does not dispatch costs a whole request
//     (CodeProto), and one the client cannot issue is dead protocol.
//
// Both rules are driven by the declared names, so renaming a constant
// moves the obligation with it.
package wireexhaustive

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"forkbase/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wireexhaustive",
	Doc:  "cross-checks wire error codes and opcodes against their encode/decode/dispatch surfaces",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkErrorCodec(pass)
	checkOpSurfaces(pass)
	return nil
}

// --- rule 1: error-codec completeness ---------------------------------

func checkErrorCodec(pass *analysis.Pass) {
	sentinelsSpec, sentinelsLit := findCodeSentinels(pass)
	errorCodeDecl := findFunc(pass, "ErrorCode")
	if sentinelsSpec == nil || sentinelsLit == nil || errorCodeDecl == nil {
		return // not the error-codec package
	}

	// The declared code space.
	var codes []*types.Const
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok &&
			strings.HasPrefix(name, "Code") && name != "Code" && name != "CodeGeneric" {
			codes = append(codes, c)
		}
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i].Pos() < codes[j].Pos() })

	// Decode side: keys of the codeSentinels literal.
	keys := make(map[types.Object]bool)
	values := make(map[types.Object]bool)
	for _, el := range sentinelsLit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if obj := usedObject(pass, kv.Key); obj != nil {
			keys[obj] = true
		}
		if obj := usedObject(pass, kv.Value); obj != nil {
			values[obj] = true
		}
	}

	// Encode side: the ordered classification list inside ErrorCode.
	ordered := make(map[types.Object]bool)
	ast.Inspect(errorCodeDecl.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range cl.Elts {
			if obj := usedObject(pass, el); obj != nil {
				ordered[obj] = true
			}
		}
		return true
	})

	for _, c := range codes {
		if !keys[c] {
			pass.Reportf(c.Pos(), "%s has no codeSentinels entry: a response carrying this code decodes as an opaque error, so errors.Is fails against a RemoteStore (PR 5)", c.Name())
		}
		if !ordered[c] {
			pass.Reportf(c.Pos(), "%s is missing from ErrorCode's classification list: errors matching its sentinel are sent as CodeGeneric (PR 5)", c.Name())
		}
	}

	// Every core sentinel must be covered by some code.
	for _, imp := range pass.Pkg.Imports() {
		if imp.Name() != "core" {
			continue
		}
		iscope := imp.Scope()
		var missing []string
		for _, name := range iscope.Names() {
			v, ok := iscope.Lookup(name).(*types.Var)
			if !ok || !v.Exported() || !strings.HasPrefix(name, "Err") || !isErrorType(v.Type()) {
				continue
			}
			if !values[v] {
				missing = append(missing, imp.Name()+"."+name)
			}
		}
		sort.Strings(missing)
		for _, name := range missing {
			pass.Reportf(sentinelsSpec.Pos(), "%s has no wire error code: it cannot round-trip the wire typed — add a Code constant, a codeSentinels entry and an ErrorCode list entry (PR 5)", name)
		}
	}
}

// findCodeSentinels locates the codeSentinels map declaration and its
// composite literal.
func findCodeSentinels(pass *analysis.Pass) (*ast.ValueSpec, *ast.CompositeLit) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "codeSentinels" || i >= len(vs.Values) {
						continue
					}
					if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
						return vs, cl
					}
				}
			}
		}
	}
	return nil, nil
}

func findFunc(pass *analysis.Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// --- rule 2: opcode-surface completeness ------------------------------

// opSurfaces are the files that must each reference every opcode.
var opSurfaces = map[string]string{
	"server.go": "the server dispatch",
	"remote.go": "the client codec",
}

func checkOpSurfaces(pass *analysis.Pass) {
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		role, ok := opSurfaces[base]
		if !ok {
			continue
		}
		used := make(map[types.Object]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					used[obj] = true
				}
			}
			return true
		})
		// The op space: exported Op* constants of any imported package
		// named "wire" (plus this package's own, if it declares them).
		var ops []*types.Const
		scopes := []*types.Scope{pass.Pkg.Scope()}
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == "wire" {
				scopes = append(scopes, imp.Scope())
			}
		}
		for _, scope := range scopes {
			for _, name := range scope.Names() {
				c, ok := scope.Lookup(name).(*types.Const)
				if !ok || !c.Exported() || !strings.HasPrefix(name, "Op") || name == "Op" {
					continue
				}
				if _, isBasic := c.Type().Underlying().(*types.Basic); isBasic {
					ops = append(ops, c)
				}
			}
		}
		// Only a file that already speaks the protocol is a surface.
		any := false
		for _, op := range ops {
			if used[op] {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		var missing []string
		for _, op := range ops {
			if !used[op] {
				missing = append(missing, op.Name())
			}
		}
		sort.Strings(missing)
		for _, name := range missing {
			pass.Reportf(f.Name.Pos(), "%s is not referenced in %s (%s): every opcode needs both server dispatch and client encoding, or adding an op silently half-plumbs the protocol (PR 5)", name, base, role)
		}
	}
}

// usedObject resolves an identifier or selector element to its object.
func usedObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
