package ctxflow

import (
	"testing"

	"forkbase/internal/analysis/analysistest"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, Analyzer, "ctxflow", "ctxflowmain")
}
