// Package ctxflow flags context.Background() and context.TODO() in
// library code.
//
// Invariant (PR 5): every deep walk and every wire call must honour
// the caller's cancellation, so a context minted mid-path silently
// detaches everything below it from the caller — the exact bug where
// remote.go's lazy chunk fetch kept reading after the client hung up.
// Library code is presumed reachable from a ctx-bearing entry point;
// the few places that legitimately own a root context (daemon mains
// are exempt as package main; connection roots, bench harness drivers
// and deprecated ctx-less wrappers) carry //forkvet:allow ctxflow with
// a reason.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"forkbase/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Background()/TODO() in non-main, non-test code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		// ctxDepth counts enclosing functions that receive a
		// context.Context; inside one, a fresh root context is not just
		// suspect but provably discards the caller's.
		var walk func(n ast.Node, ctxDepth int)
		walk = func(n ast.Node, ctxDepth int) {
			switch n := n.(type) {
			case *ast.FuncDecl:
				d := ctxDepth
				if n.Type != nil && hasCtxParam(pass, n.Type) {
					d++
				}
				if n.Body != nil {
					walk(n.Body, d)
				}
				return
			case *ast.FuncLit:
				d := ctxDepth
				if hasCtxParam(pass, n.Type) {
					d++
				}
				walk(n.Body, d)
				return
			case *ast.CallExpr:
				if name := rootCtxCall(pass, n); name != "" {
					if ctxDepth > 0 {
						pass.Reportf(n.Pos(), "context.%s() discards the ctx already in scope; thread the caller's context through (PR 5: walks and wire calls must honour cancellation)", name)
					} else {
						pass.Reportf(n.Pos(), "context.%s() creates a fresh root context in library code; accept a ctx from the caller (or annotate //forkvet:allow ctxflow with a reason)", name)
					}
				}
			}
			// Generic descent.
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n || c == nil {
					return c == n
				}
				walk(c, ctxDepth)
				return false
			})
		}
		for _, decl := range f.Decls {
			walk(decl, 0)
		}
	}
	return nil
}

// rootCtxCall returns "Background" or "TODO" when call is
// context.Background()/context.TODO(), else "".
func rootCtxCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// hasCtxParam reports whether a function type declares a
// context.Context parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if isContext(tv.Type) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
