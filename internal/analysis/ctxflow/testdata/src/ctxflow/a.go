package fixture

import "context"

// withCtx has a ctx in scope: a fresh root provably discards it.
func withCtx(ctx context.Context) {
	_ = context.Background() // want `discards the ctx already in scope`
	use(ctx)
}

// noCtx is library code with no ctx parameter: still flagged, since
// library paths are presumed reachable from ctx-bearing entry points.
func noCtx() {
	_ = context.TODO() // want `creates a fresh root context in library code`
}

// root is a package-level root context: flagged.
var root = context.Background() // want `creates a fresh root context in library code`

// nested ctx parameters count through closures.
func nested(ctx context.Context) func() {
	return func() {
		_ = context.Background() // want `discards the ctx already in scope`
	}
}

// litWithCtx: the literal's own ctx parameter counts too.
var litWithCtx = func(ctx context.Context) {
	_ = context.Background() // want `discards the ctx already in scope`
}

// derived contexts are fine.
func derived(ctx context.Context) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	use(c)
}

func use(ctx context.Context) { _ = ctx }
