package fixture

import "context"

// Negative fixture: every occurrence below is suppressed by a
// //forkvet:allow directive, so none produces a diagnostic.

func allowedSameLine() context.Context {
	return context.Background() //forkvet:allow ctxflow — fixture: suppressed on the same line
}

func allowedLineAbove() context.Context {
	//forkvet:allow ctxflow — fixture: suppressed from the line above
	return context.Background()
}

// allowedDecl owns a root context for its whole body.
//
//forkvet:allow ctxflow — fixture: suppressed for the whole declaration
func allowedDecl(ctx context.Context) context.Context {
	c := context.Background()
	return c
}

//forkvet:allow ctxflow — fixture: package-level var, suppressed via doc comment
var allowedRoot = context.Background()
