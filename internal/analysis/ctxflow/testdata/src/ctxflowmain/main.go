// Package main is exempt: entry points own their root context.
package main

import "context"

func main() {
	ctx := context.Background()
	helper(ctx)
}

func helper(ctx context.Context) { _ = ctx }
