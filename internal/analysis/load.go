package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// GoVersion-independent: test files are not loaded; forkvet checks
	// production code (see cmd/forkvet doc).
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (relative to dir,
// which must be inside a module) without any network or external
// dependency: `go list -deps -export -json` supplies compiled export
// data for every dependency — the standard library included — and the
// matched packages themselves are parsed and checked from source so
// analyzers see syntax.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var targets []listPkg
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: parsing go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := &exportImporter{under: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(e)
	})}

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkDir(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkDir parses and type-checks one package from source.
func checkDir(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	var terrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			terrs = append(terrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(terrs) > 0 {
		const max = 5
		if len(terrs) > max {
			terrs = append(terrs[:max], fmt.Sprintf("... and %d more", len(terrs)-max))
		}
		return nil, fmt.Errorf("analysis: type errors in %s:\n  %s", path, strings.Join(terrs, "\n  "))
	}
	name := ""
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	return &Package{
		PkgPath: path,
		Name:    name,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// NewInfo returns a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// exportImporter resolves "unsafe" specially (it has no export data)
// and delegates everything else to the gc export-data importer.
type exportImporter struct {
	under types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.under.Import(path)
}
