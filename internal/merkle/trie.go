package merkle

import (
	"crypto/sha256"
)

// Trie is Hyperledger's alternative state structure: a 16-way trie over
// the key's nibbles with per-node hash caching. Updates touch only the
// path to the changed key (low write amplification), but the structure
// is as deep as the keys are long and not balanced, so traversals are
// longer than in a balanced tree — the behaviour Figure 11 observes.
type Trie struct {
	root *trieNode
	// HashedBytes counts bytes hashed across commits.
	HashedBytes int64
	size        int
	dirtyKeys   []string
}

// HashSize is the digest length of trie node hashes.
const HashSize = len(Hash{})

type trieNode struct {
	children [16]*trieNode
	value    []byte
	hasValue bool
	hash     Hash
	hashed   bool // cache validity
}

// NewTrie returns an empty trie.
func NewTrie() *Trie {
	return &Trie{root: &trieNode{}}
}

// nibbles expands a key into 4-bit digits.
func nibbles(key string) []byte {
	out := make([]byte, 0, 2*len(key))
	for i := 0; i < len(key); i++ {
		out = append(out, key[i]>>4, key[i]&0x0f)
	}
	return out
}

// Set stores key = value, invalidating hash caches along the path.
func (t *Trie) Set(key string, value []byte) {
	n := t.root
	n.hashed = false
	for _, d := range nibbles(key) {
		if n.children[d] == nil {
			n.children[d] = &trieNode{}
		}
		n = n.children[d]
		n.hashed = false
	}
	if !n.hasValue {
		t.size++
	}
	n.value = value
	n.hasValue = true
	t.dirtyKeys = append(t.dirtyKeys, key)
}

// DirtySerialized returns a serialized record for every trie node on
// the path of each key changed since the last call — the node writes
// Hyperledger performs against its KV store at commit time.
func (t *Trie) DirtySerialized() map[string][]byte {
	out := make(map[string][]byte)
	for _, key := range t.dirtyKeys {
		n := t.root
		path := ""
		for _, d := range nibbles(key) {
			if n.children[d] == nil {
				break
			}
			n = n.children[d]
			path += string('a' + rune(d))
			rec := make([]byte, 0, 16*HashSize+len(n.value))
			for _, c := range n.children {
				if c != nil {
					rec = append(rec, c.hash[:]...)
				}
			}
			rec = append(rec, n.value...)
			out["trienode/"+path] = rec
		}
	}
	t.dirtyKeys = t.dirtyKeys[:0]
	return out
}

// Delete removes key. Empty subtrees are left in place (as pruning is
// not needed for the hash to change).
func (t *Trie) Delete(key string) {
	n := t.root
	path := []*trieNode{n}
	for _, d := range nibbles(key) {
		if n.children[d] == nil {
			return
		}
		n = n.children[d]
		path = append(path, n)
	}
	if n.hasValue {
		t.size--
	}
	n.value = nil
	n.hasValue = false
	for _, p := range path {
		p.hashed = false
	}
}

// Get returns the value of key.
func (t *Trie) Get(key string) ([]byte, bool) {
	n := t.root
	for _, d := range nibbles(key) {
		if n.children[d] == nil {
			return nil, false
		}
		n = n.children[d]
	}
	if !n.hasValue {
		return nil, false
	}
	return n.value, true
}

// Commit recomputes invalidated hashes bottom-up and returns the root.
func (t *Trie) Commit() Hash {
	return t.hashNode(t.root)
}

func (t *Trie) hashNode(n *trieNode) Hash {
	if n.hashed {
		return n.hash
	}
	h := sha256.New()
	for i, c := range n.children {
		if c == nil {
			continue
		}
		ch := t.hashNode(c)
		h.Write([]byte{byte(i)})
		h.Write(ch[:])
		t.HashedBytes += 1 + sha256.Size
	}
	if n.hasValue {
		h.Write([]byte{0xff})
		h.Write(n.value)
		t.HashedBytes += 1 + int64(len(n.value))
	}
	h.Sum(n.hash[:0])
	n.hashed = true
	return n.hash
}

// Len returns the number of live keys.
func (t *Trie) Len() int { return t.size }

// StateDelta records, for one block, the previous value of every state
// the block changed (nil marks a key created by the block). Hyperledger
// keeps a delta per block so historical states can be reconstructed by
// walking deltas backwards — the expensive pre-processing the paper's
// scan queries pay for (§5.1.2).
type StateDelta struct {
	// Old maps key to the value before the block (nil = did not exist).
	Old map[string][]byte
}

// NewStateDelta returns an empty delta.
func NewStateDelta() *StateDelta {
	return &StateDelta{Old: make(map[string][]byte)}
}

// Record notes the pre-image of key if not already recorded for this
// delta. existed=false marks creation.
func (d *StateDelta) Record(key string, old []byte, existed bool) {
	if _, done := d.Old[key]; done {
		return
	}
	if !existed {
		d.Old[key] = nil
		return
	}
	cp := make([]byte, len(old))
	copy(cp, old)
	d.Old[key] = cp
}
