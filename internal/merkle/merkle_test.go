package merkle

import (
	"fmt"
	"testing"
)

func TestBucketTreeRootChangesOnUpdate(t *testing.T) {
	bt := NewBucketTree(16)
	bt.Set("a", []byte("1"))
	r1 := bt.Commit()
	bt.Set("b", []byte("2"))
	r2 := bt.Commit()
	if r1 == r2 {
		t.Fatal("root unchanged after update")
	}
	bt.Delete("b")
	r3 := bt.Commit()
	if r3 != r1 {
		t.Fatal("root should return to the prior value after undoing the change")
	}
	if v, ok := bt.Get("a"); !ok || string(v) != "1" {
		t.Fatal("lost value")
	}
	if _, ok := bt.Get("b"); ok {
		t.Fatal("deleted value still present")
	}
}

func TestBucketTreeDeterministic(t *testing.T) {
	build := func(order []int) Hash {
		bt := NewBucketTree(8)
		for _, i := range order {
			bt.Set(fmt.Sprintf("key-%d", i), []byte{byte(i)})
		}
		return bt.Commit()
	}
	a := build([]int{1, 2, 3, 4, 5})
	b := build([]int{5, 3, 1, 4, 2})
	if a != b {
		t.Fatal("bucket tree root depends on insertion order")
	}
}

// The Figure 11 effect: fewer buckets means each commit re-hashes
// bigger buckets, i.e. more write amplification.
func TestBucketCountAmplification(t *testing.T) {
	load := func(nb int) int64 {
		bt := NewBucketTree(nb)
		for i := 0; i < 2000; i++ {
			bt.Set(fmt.Sprintf("key-%06d", i), make([]byte, 50))
		}
		bt.Commit()
		bt.HashedBytes = 0
		// 20 commits of 10 updates each.
		for c := 0; c < 20; c++ {
			for i := 0; i < 10; i++ {
				bt.Set(fmt.Sprintf("key-%06d", (c*10+i)%2000), []byte{byte(c)})
			}
			bt.Commit()
		}
		return bt.HashedBytes
	}
	small := load(4)
	large := load(4096)
	if small <= large*2 {
		t.Fatalf("expected heavy amplification with few buckets: nb=4 hashed %d, nb=4096 hashed %d", small, large)
	}
}

func TestTrieBasics(t *testing.T) {
	tr := NewTrie()
	tr.Set("alpha", []byte("1"))
	tr.Set("alphabet", []byte("2"))
	tr.Set("beta", []byte("3"))
	if tr.Len() != 3 {
		t.Fatalf("len %d", tr.Len())
	}
	for k, want := range map[string]string{"alpha": "1", "alphabet": "2", "beta": "3"} {
		v, ok := tr.Get(k)
		if !ok || string(v) != want {
			t.Fatalf("Get(%q) = %q %v", k, v, ok)
		}
	}
	if _, ok := tr.Get("alp"); ok {
		t.Fatal("prefix of a key should not resolve")
	}
	r1 := tr.Commit()
	tr.Set("alpha", []byte("changed"))
	r2 := tr.Commit()
	if r1 == r2 {
		t.Fatal("root unchanged after update")
	}
	tr.Delete("alpha")
	tr.Set("alpha", []byte("1"))
	if tr.Commit() != r1 {
		t.Fatal("trie root not content-deterministic")
	}
	tr.Delete("nonexistent") // no-op, must not panic
}

func TestTrieLowAmplification(t *testing.T) {
	tr := NewTrie()
	for i := 0; i < 2000; i++ {
		tr.Set(fmt.Sprintf("key-%06d", i), make([]byte, 50))
	}
	tr.Commit()
	tr.HashedBytes = 0
	tr.Set("key-000000", []byte("x"))
	tr.Commit()
	// One update re-hashes only the path, a tiny fraction of the 2000
	// keys' worth of structure.
	if tr.HashedBytes > 100_000 {
		t.Fatalf("single update hashed %d bytes", tr.HashedBytes)
	}
}

func TestStateDelta(t *testing.T) {
	d := NewStateDelta()
	d.Record("k", []byte("old"), true)
	d.Record("k", []byte("newer-old"), true) // first record wins
	d.Record("created", nil, false)
	if string(d.Old["k"]) != "old" {
		t.Fatalf("delta overwritten: %q", d.Old["k"])
	}
	if v, ok := d.Old["created"]; !ok || v != nil {
		t.Fatal("creation marker lost")
	}
}
