// Package merkle implements the state-commitment structures of
// Hyperledger v0.6 (paper §5.1.1, §6.2.2): the bucket Merkle tree whose
// leaf count is fixed at start-up, the unbalanced Patricia-style trie,
// and the state delta that preserves old values across blocks. These are
// the baselines Figure 11 compares against ForkBase Map objects.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// Hash is a state digest.
type Hash [sha256.Size]byte

// BucketTree is Hyperledger's default state structure: keys hash into a
// fixed number of buckets; each bucket's digest covers all its entries,
// and a binary Merkle tree reduces bucket digests to a root. Because the
// bucket count is fixed, a small count means large buckets and severe
// write amplification (every update re-hashes the whole bucket), which
// is exactly the Figure 11 effect.
type BucketTree struct {
	nb      int
	buckets []map[string][]byte
	dirty   map[int]bool
	// tree is a heap-shaped binary tree over the padded bucket count;
	// tree[1] is the root, leaves start at leafBase.
	tree     []Hash
	leafBase int
	// HashedBytes counts bytes fed to the hash function across all
	// commits, a direct measure of write amplification.
	HashedBytes int64
}

// NewBucketTree returns a bucket tree with nb buckets.
func NewBucketTree(nb int) *BucketTree {
	if nb < 1 {
		nb = 1
	}
	pow := 1
	for pow < nb {
		pow *= 2
	}
	t := &BucketTree{
		nb:       nb,
		buckets:  make([]map[string][]byte, nb),
		dirty:    make(map[int]bool),
		tree:     make([]Hash, 2*pow),
		leafBase: pow,
	}
	for i := range t.buckets {
		t.buckets[i] = make(map[string][]byte)
	}
	return t
}

func (t *BucketTree) bucketOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % t.nb
}

// Set stages key = value; Commit folds staged changes into the root.
func (t *BucketTree) Set(key string, value []byte) {
	b := t.bucketOf(key)
	t.buckets[b][key] = value
	t.dirty[b] = true
}

// Delete stages removal of key.
func (t *BucketTree) Delete(key string) {
	b := t.bucketOf(key)
	delete(t.buckets[b], key)
	t.dirty[b] = true
}

// Get returns the current value of key.
func (t *BucketTree) Get(key string) ([]byte, bool) {
	v, ok := t.buckets[t.bucketOf(key)][key]
	return v, ok
}

// Commit re-hashes every dirty bucket and the paths above them,
// returning the new root hash.
func (t *BucketTree) Commit() Hash {
	var zero Hash
	for b := range t.dirty {
		t.tree[t.leafBase+b] = t.hashBucket(b)
		// Bubble the change to the root. An all-empty subtree keeps
		// the zero hash so the tree stays canonical: undoing every
		// change restores the original root.
		for i := (t.leafBase + b) / 2; i >= 1; i /= 2 {
			if t.tree[2*i] == zero && t.tree[2*i+1] == zero {
				t.tree[i] = zero
				continue
			}
			h := sha256.New()
			h.Write(t.tree[2*i][:])
			h.Write(t.tree[2*i+1][:])
			t.HashedBytes += 2 * sha256.Size
			h.Sum(t.tree[i][:0])
		}
	}
	t.dirty = make(map[int]bool)
	return t.tree[1]
}

// hashBucket digests one bucket's full sorted contents — the write
// amplification at the heart of the bucket-count trade-off.
func (t *BucketTree) hashBucket(b int) Hash {
	if len(t.buckets[b]) == 0 {
		// An empty bucket digests to the zero hash, matching the
		// tree's initial state so deletions are reversible.
		return Hash{}
	}
	keys := make([]string, 0, len(t.buckets[b]))
	for k := range t.buckets[b] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	var lenBuf [4]byte
	for _, k := range keys {
		v := t.buckets[b][k]
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(k)))
		h.Write(lenBuf[:])
		h.Write([]byte(k))
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(v)))
		h.Write(lenBuf[:])
		h.Write(v)
		t.HashedBytes += int64(8 + len(k) + len(v))
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// Root returns the current root hash without committing.
func (t *BucketTree) Root() Hash { return t.tree[1] }

// DirtySerialized returns the serialized contents of every currently
// dirty bucket, keyed by a storage key. Hyperledger persists changed
// buckets to its KV store at commit; callers write these through before
// Commit clears the dirty set.
func (t *BucketTree) DirtySerialized() map[string][]byte {
	out := make(map[string][]byte, len(t.dirty))
	for b := range t.dirty {
		keys := make([]string, 0, len(t.buckets[b]))
		for k := range t.buckets[b] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var buf []byte
		var lenBuf [4]byte
		for _, k := range keys {
			v := t.buckets[b][k]
			binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(k)))
			buf = append(buf, lenBuf[:]...)
			buf = append(buf, k...)
			binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(v)))
			buf = append(buf, lenBuf[:]...)
			buf = append(buf, v...)
		}
		out[fmt.Sprintf("bucket/%08d", b)] = buf
	}
	return out
}

// Len returns the number of live keys.
func (t *BucketTree) Len() int {
	n := 0
	for _, b := range t.buckets {
		n += len(b)
	}
	return n
}
