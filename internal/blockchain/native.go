package blockchain

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"forkbase"
	"forkbase/internal/postree"
)

// Native is Hyperledger's data model re-expressed on ForkBase
// (Figure 7b). The Merkle tree and state delta are replaced by two
// levels of Map objects: the first level maps contract id to the
// version of a second-level Map, which maps data keys to the versions
// of Blob objects holding state values. The state hash of a block is
// simply the first-level Map's version uid — tamper evidence comes for
// free, and every state's history is reachable by following base
// versions (no pre-processing, no delta walk).
type Native struct {
	db       forkbase.Store
	contract string
	buffer   map[string][]byte
	// stateRefs[h] is the first-level Map uid committed at block h.
	stateRefs []forkbase.UID
}

// NewNative returns a native ForkBase backend for one contract. It
// runs against any Store — the embedded DB or a cluster client — since
// it only touches the unified client API.
func NewNative(db forkbase.Store, contract string) *Native {
	return &Native{db: db, contract: contract, buffer: make(map[string][]byte)}
}

// Name implements Backend.
func (n *Native) Name() string { return "ForkBase" }

func (n *Native) stateKey(key string) string { return "s/" + n.contract + "/" + key }

// blobOf decodes the Blob held by o, which was fetched under key.
func (n *Native) blobOf(ctx context.Context, key string, o *forkbase.FObject) (*forkbase.Blob, error) {
	v, err := n.db.Value(ctx, key, o)
	if err != nil {
		return nil, err
	}
	return forkbase.AsBlob(v)
}

// mapOf decodes the Map held by o, which was fetched under key.
func (n *Native) mapOf(ctx context.Context, key string, o *forkbase.FObject) (*forkbase.Map, error) {
	v, err := n.db.Value(ctx, key, o)
	if err != nil {
		return nil, err
	}
	return forkbase.AsMap(v)
}

// Read implements Backend: it fetches the committed value from storage
// (Hyperledger reads do not observe the in-block write buffer, §5.1.1).
func (n *Native) Read(ctx context.Context, key string) ([]byte, error) {
	o, err := n.db.Get(ctx, n.stateKey(key))
	if errors.Is(err, forkbase.ErrKeyNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	b, err := n.blobOf(ctx, n.stateKey(key), o)
	if err != nil {
		return nil, err
	}
	return b.Bytes()
}

// BufferWrite implements Backend.
func (n *Native) BufferWrite(key string, value []byte) {
	cp := make([]byte, len(value))
	copy(cp, value)
	n.buffer[key] = cp
}

// Commit implements Backend: each dirty state gets a new Blob version,
// the second-level Map is updated in one batch, and the first-level Map
// version becomes the block's state reference.
func (n *Native) Commit(ctx context.Context, height uint64) ([]byte, error) {
	keys := make([]string, 0, len(n.buffer))
	for k := range n.buffer {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// All dirty states commit as one batch: the engine takes each
	// state key's lock once and the cluster pays one dispatch per
	// servlet, instead of one per state.
	batch := forkbase.NewBatch()
	for _, k := range keys {
		batch.Put(n.stateKey(k), forkbase.NewBlob(n.buffer[k]))
	}
	uids, err := n.db.Apply(ctx, batch)
	if err != nil {
		return nil, err
	}
	sets := make([]postree.KV, 0, len(keys))
	for i, k := range keys {
		sets = append(sets, postree.KV{Key: []byte(k), Value: uids[i][:]})
	}
	n.buffer = make(map[string][]byte)

	// Second-level Map: data key -> Blob version.
	contractKey := "contract/" + n.contract
	var cmap *forkbase.Map
	if o, err := n.db.Get(ctx, contractKey); err == nil {
		cmap, err = n.mapOf(ctx, contractKey, o)
		if err != nil {
			return nil, err
		}
	} else if errors.Is(err, forkbase.ErrKeyNotFound) {
		cmap = forkbase.NewMap()
	} else {
		return nil, err
	}
	if err := cmap.Apply(sets, nil); err != nil {
		return nil, err
	}
	cuid, err := n.db.Put(ctx, contractKey, cmap)
	if err != nil {
		return nil, err
	}

	// First-level Map: contract -> second-level version.
	var smap *forkbase.Map
	if o, err := n.db.Get(ctx, "states"); err == nil {
		smap, err = n.mapOf(ctx, "states", o)
		if err != nil {
			return nil, err
		}
	} else if errors.Is(err, forkbase.ErrKeyNotFound) {
		smap = forkbase.NewMap()
	} else {
		return nil, err
	}
	if err := smap.Set([]byte(n.contract), cuid[:]); err != nil {
		return nil, err
	}
	suid, err := n.db.Put(ctx, "states", smap)
	if err != nil {
		return nil, err
	}
	for uint64(len(n.stateRefs)) < height {
		// Fill gaps if blocks committed without state changes.
		n.stateRefs = append(n.stateRefs, suid)
	}
	n.stateRefs = append(n.stateRefs, suid)
	return suid[:], nil
}

// StateScan implements Backend: follow the Blob's base-version chain —
// no chain scan, no pre-processing (§5.1.3).
func (n *Native) StateScan(ctx context.Context, key string, max int) ([][]byte, error) {
	o, err := n.db.Get(ctx, n.stateKey(key))
	if errors.Is(err, forkbase.ErrKeyNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	hist, err := n.db.Track(ctx, n.stateKey(key), 0, max-1, forkbase.WithBase(o.UID()))
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, len(hist))
	for _, h := range hist {
		b, err := n.blobOf(ctx, n.stateKey(key), h)
		if err != nil {
			return nil, err
		}
		data, err := b.Bytes()
		if err != nil {
			return nil, err
		}
		out = append(out, data)
	}
	return out, nil
}

// ScanStates implements Backend: each key's history is one cheap walk
// down its base-version chain; no shared pre-processing is needed.
func (n *Native) ScanStates(ctx context.Context, keys []string, max int) (map[string][][]byte, error) {
	out := make(map[string][][]byte, len(keys))
	for _, k := range keys {
		hist, err := n.StateScan(ctx, k, max)
		if err != nil {
			return nil, err
		}
		if hist != nil {
			out[k] = hist
		}
	}
	return out, nil
}

// BlockScan implements Backend: resolve the block's first-level Map,
// then the contract's second-level Map, then each Blob version.
func (n *Native) BlockScan(ctx context.Context, height uint64) (map[string][]byte, error) {
	if height >= uint64(len(n.stateRefs)) {
		return nil, fmt.Errorf("blockchain: no block %d", height)
	}
	top, err := n.db.Get(ctx, "states", forkbase.WithBase(n.stateRefs[height]))
	if err != nil {
		return nil, err
	}
	tm, err := n.mapOf(ctx, "states", top)
	if err != nil {
		return nil, err
	}
	cref, ok, err := tm.Get([]byte(n.contract))
	if err != nil || !ok {
		return nil, err
	}
	var cuid forkbase.UID
	copy(cuid[:], cref)
	contractKey := "contract/" + n.contract
	co, err := n.db.Get(ctx, contractKey, forkbase.WithBase(cuid))
	if err != nil {
		return nil, err
	}
	cm, err := n.mapOf(ctx, contractKey, co)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte)
	var iterErr error
	cm.Iter(func(k, v []byte) bool {
		var buid forkbase.UID
		copy(buid[:], v)
		bo, err := n.db.Get(ctx, n.stateKey(string(k)), forkbase.WithBase(buid))
		if err != nil {
			iterErr = err
			return false
		}
		b, err := n.blobOf(ctx, n.stateKey(string(k)), bo)
		if err != nil {
			iterErr = err
			return false
		}
		data, err := b.Bytes()
		if err != nil {
			iterErr = err
			return false
		}
		out[string(k)] = data
		return true
	})
	if iterErr != nil {
		return nil, iterErr
	}
	return out, nil
}

// Close implements Backend.
func (n *Native) Close() error { return nil }
