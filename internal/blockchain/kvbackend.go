package blockchain

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"forkbase"
	"forkbase/internal/lsm"
	"forkbase/internal/merkle"
)

// kvStore abstracts the flat key-value engine under the original
// Hyperledger design (Figure 7a): an LSM store playing RocksDB, or
// ForkBase driven as a plain KV store.
type kvStore interface {
	get(ctx context.Context, key string) ([]byte, bool, error)
	put(ctx context.Context, key string, value []byte) error
	scanPrefix(ctx context.Context, prefix string, fn func(key string, value []byte) bool) error
	close() error
}

// stateTree abstracts the application-level Merkle structure.
type stateTree interface {
	Set(key string, value []byte)
	Commit() []byte
	// DirtySerialized returns the structure records Hyperledger would
	// persist to its KV store for this commit (changed buckets, or
	// trie path nodes).
	DirtySerialized() map[string][]byte
}

type bucketTreeAdapter struct{ t *merkle.BucketTree }

func (a bucketTreeAdapter) Set(k string, v []byte) { a.t.Set(k, v) }
func (a bucketTreeAdapter) Commit() []byte {
	h := a.t.Commit()
	return h[:]
}
func (a bucketTreeAdapter) DirtySerialized() map[string][]byte { return a.t.DirtySerialized() }

type trieAdapter struct{ t *merkle.Trie }

func (a trieAdapter) Set(k string, v []byte) { a.t.Set(k, v) }
func (a trieAdapter) Commit() []byte {
	h := a.t.Commit()
	return h[:]
}
func (a trieAdapter) DirtySerialized() map[string][]byte { return a.t.DirtySerialized() }

// KVBackend is the original Hyperledger storage design: states in a
// flat KV store, integrity from an application-maintained Merkle
// structure, history from per-block state deltas. Analytical queries
// must parse every block's delta — the pre-processing cost Figure 12
// measures.
type KVBackend struct {
	name      string
	kv        kvStore
	tree      stateTree
	buffer    map[string][]byte
	stateRefs [][]byte
	height    uint64
}

// MerkleKind selects the state structure for a KVBackend.
type MerkleKind int

const (
	// BucketMerkle uses Hyperledger's default bucket tree.
	BucketMerkle MerkleKind = iota
	// TrieMerkle uses the trie alternative.
	TrieMerkle
)

// NewRocksDBStyle returns the "Rocksdb" baseline: our LSM engine under
// a bucket tree (or trie) with state deltas.
func NewRocksDBStyle(dir string, kind MerkleKind, buckets int) (*KVBackend, error) {
	db, err := lsm.Open(dir, lsm.Options{})
	if err != nil {
		return nil, err
	}
	return newKVBackend("Rocksdb", &lsmKV{db: db}, kind, buckets), nil
}

// NewForkBaseKV returns the "ForkBase-KV" baseline: ForkBase as a plain
// key-value store, hashing both inside the storage (uids) and outside
// (the application Merkle tree) — the double-hashing overhead §6.2.1
// calls out.
func NewForkBaseKV(db *forkbase.DB, kind MerkleKind, buckets int) *KVBackend {
	return newKVBackend("ForkBase-KV", &fbKV{db: db}, kind, buckets)
}

func newKVBackend(name string, kv kvStore, kind MerkleKind, buckets int) *KVBackend {
	var tree stateTree
	if kind == TrieMerkle {
		tree = trieAdapter{t: merkle.NewTrie()}
	} else {
		if buckets <= 0 {
			buckets = 1024
		}
		tree = bucketTreeAdapter{t: merkle.NewBucketTree(buckets)}
	}
	return &KVBackend{name: name, kv: kv, tree: tree, buffer: make(map[string][]byte)}
}

// Name implements Backend.
func (b *KVBackend) Name() string { return b.name }

// Read implements Backend.
func (b *KVBackend) Read(ctx context.Context, key string) ([]byte, error) {
	v, ok, err := b.kv.get(ctx, "s/"+key)
	if err != nil || !ok {
		return nil, err
	}
	return v, nil
}

// BufferWrite implements Backend.
func (b *KVBackend) BufferWrite(key string, value []byte) {
	cp := make([]byte, len(value))
	copy(cp, value)
	b.buffer[key] = cp
}

// Commit implements Backend: record the delta, update the Merkle
// structure and the flat store, persist the delta for history queries.
func (b *KVBackend) Commit(ctx context.Context, height uint64) ([]byte, error) {
	keys := make([]string, 0, len(b.buffer))
	for k := range b.buffer {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	delta := merkle.NewStateDelta()
	for _, k := range keys {
		old, existed, err := b.kv.get(ctx, "s/"+k)
		if err != nil {
			return nil, err
		}
		delta.Record(k, old, existed)
		b.tree.Set(k, b.buffer[k])
		if err := b.kv.put(ctx, "s/"+k, b.buffer[k]); err != nil {
			return nil, err
		}
	}
	b.buffer = make(map[string][]byte)
	// Persist the changed state-structure records before sealing the
	// root, as Hyperledger writes changed buckets / trie nodes to its
	// KV store on every commit.
	for k, v := range b.tree.DirtySerialized() {
		if err := b.kv.put(ctx, k, v); err != nil {
			return nil, err
		}
	}
	root := b.tree.Commit()
	if err := b.kv.put(ctx, deltaKey(height), encodeDelta(delta)); err != nil {
		return nil, err
	}
	for uint64(len(b.stateRefs)) < height {
		b.stateRefs = append(b.stateRefs, root)
	}
	b.stateRefs = append(b.stateRefs, root)
	b.height = height + 1
	return root, nil
}

func deltaKey(height uint64) string { return fmt.Sprintf("delta/%012d", height) }

func encodeDelta(d *merkle.StateDelta) []byte {
	keys := make([]string, 0, len(d.Old))
	for k := range d.Old {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(keys)))
	out = append(out, b[:]...)
	for _, k := range keys {
		old := d.Old[k]
		binary.LittleEndian.PutUint32(b[:], uint32(len(k)))
		out = append(out, b[:]...)
		out = append(out, k...)
		if old == nil {
			out = append(out, 0)
			binary.LittleEndian.PutUint32(b[:], 0)
			out = append(out, b[:]...)
		} else {
			out = append(out, 1)
			binary.LittleEndian.PutUint32(b[:], uint32(len(old)))
			out = append(out, b[:]...)
			out = append(out, old...)
		}
	}
	return out
}

func decodeDelta(data []byte) (map[string][]byte, error) {
	if len(data) < 4 {
		return nil, errors.New("blockchain: truncated delta")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	out := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		if len(data) < 4 {
			return nil, errors.New("blockchain: truncated delta")
		}
		kl := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		k := string(data[:kl])
		data = data[kl:]
		existed := data[0] == 1
		vl := int(binary.LittleEndian.Uint32(data[1:5]))
		data = data[5:]
		if existed {
			out[k] = append([]byte(nil), data[:vl]...)
			data = data[vl:]
		} else {
			out[k] = nil
		}
	}
	return out, nil
}

// preprocess parses every block's delta — "a pre-processing step that
// parses all the internal structures of all the blocks" (§5.1.2) —
// and returns them newest-first.
func (b *KVBackend) preprocess(ctx context.Context) ([]map[string][]byte, error) {
	deltas := make([]map[string][]byte, 0, b.height)
	for h := int64(b.height) - 1; h >= 0; h-- {
		raw, ok, err := b.kv.get(ctx, deltaKey(uint64(h)))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("blockchain: missing delta %d", h)
		}
		d, err := decodeDelta(raw)
		if err != nil {
			return nil, err
		}
		deltas = append(deltas, d)
	}
	return deltas, nil
}

// StateScan implements Backend via the full delta walk.
func (b *KVBackend) StateScan(ctx context.Context, key string, max int) ([][]byte, error) {
	m, err := b.ScanStates(ctx, []string{key}, max)
	if err != nil {
		return nil, err
	}
	return m[key], nil
}

// ScanStates returns the history of each requested key. One delta walk
// serves all keys, which is why the gap to ForkBase narrows as more
// keys are scanned per query (Figure 12a).
func (b *KVBackend) ScanStates(ctx context.Context, keys []string, max int) (map[string][][]byte, error) {
	deltas, err := b.preprocess(ctx)
	if err != nil {
		return nil, err
	}
	out := make(map[string][][]byte, len(keys))
	for _, k := range keys {
		cur, ok, err := b.kv.get(ctx, "s/"+k)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		hist := [][]byte{cur}
		for _, d := range deltas {
			if len(hist) >= max {
				break
			}
			old, touched := d[k]
			if !touched {
				continue
			}
			if old == nil {
				break // creation point
			}
			hist = append(hist, old)
		}
		out[k] = hist
	}
	return out, nil
}

// BlockScan implements Backend. Like the paper's Hyperledger port, it
// pays a pre-processing pass over every block's internal structures
// before reconstructing the requested block's states by rolling deltas
// back from the current state.
func (b *KVBackend) BlockScan(ctx context.Context, height uint64) (map[string][]byte, error) {
	if height >= b.height {
		return nil, fmt.Errorf("blockchain: no block %d", height)
	}
	deltas, err := b.preprocess(ctx) // newest first, one per block
	if err != nil {
		return nil, err
	}
	state := make(map[string][]byte)
	if err := b.kv.scanPrefix(ctx, "s/", func(k string, v []byte) bool {
		state[strings.TrimPrefix(k, "s/")] = v
		return true
	}); err != nil {
		return nil, err
	}
	for i, h := 0, int64(b.height)-1; h > int64(height); i, h = i+1, h-1 {
		for k, old := range deltas[i] {
			if old == nil {
				delete(state, k)
			} else {
				state[k] = old
			}
		}
	}
	return state, nil
}

// Close implements Backend.
func (b *KVBackend) Close() error { return b.kv.close() }

// lsmKV adapts lsm.DB to kvStore.
type lsmKV struct{ db *lsm.DB }

func (l *lsmKV) get(ctx context.Context, key string) ([]byte, bool, error) {
	v, err := l.db.Get([]byte(key))
	if errors.Is(err, lsm.ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

func (l *lsmKV) put(ctx context.Context, key string, value []byte) error {
	return l.db.Put([]byte(key), value)
}

func (l *lsmKV) scanPrefix(ctx context.Context, prefix string, fn func(string, []byte) bool) error {
	end := prefix[:len(prefix)-1] + string(prefix[len(prefix)-1]+1)
	return l.db.Scan([]byte(prefix), []byte(end), func(k, v []byte) bool {
		return fn(string(k), v)
	})
}

func (l *lsmKV) close() error { return l.db.Close() }

// fbKV adapts forkbase.DB to kvStore, deliberately ignoring all of
// ForkBase's versioning features.
type fbKV struct{ db *forkbase.DB }

func (f *fbKV) get(ctx context.Context, key string) ([]byte, bool, error) {
	o, err := f.db.Get(ctx, key)
	if errors.Is(err, forkbase.ErrKeyNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return o.Data, true, nil
}

func (f *fbKV) put(ctx context.Context, key string, value []byte) error {
	_, err := f.db.Put(ctx, key, forkbase.String(value))
	return err
}

func (f *fbKV) scanPrefix(ctx context.Context, prefix string, fn func(string, []byte) bool) error {
	keys, err := f.db.ListKeys(ctx)
	if err != nil {
		return err
	}
	for _, k := range keys {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		o, err := f.db.Get(ctx, k)
		if err != nil {
			return err
		}
		if !fn(k, o.Data) {
			return nil
		}
	}
	return nil
}

func (f *fbKV) close() error { return nil }
