// Package blockchain implements a miniature Hyperledger-style ledger
// (paper §5.1): blocks of key-value transactions chained by hash, a
// pluggable state backend, and the two analytical queries of §5.1.2 —
// state scan (history of one key) and block scan (all states at one
// block). Three backends reproduce the paper's comparison:
//
//   - Native: Hyperledger's data structures re-expressed on ForkBase
//     (Figure 7b) — two levels of Map objects plus a Blob per state.
//   - KVMerkle: the original design (Figure 7a) — an LSM store (the
//     RocksDB stand-in) under a bucket Merkle tree or trie with state
//     deltas.
//   - ForkBaseKV: ForkBase used as a dumb key-value store with the
//     Merkle machinery still implemented at the application layer.
//
// Consensus is replaced by a single sequencer: the paper's §6.2
// evaluation isolates the storage component on one server, where
// consensus contributes nothing to the measured path.
package blockchain

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Hash is a block or transaction digest.
type Hash [sha256.Size]byte

// Op is one state access within a transaction.
type Op struct {
	Key   string
	Value []byte // ignored for reads
	Read  bool
}

// Tx is one transaction against the key-value smart contract.
type Tx struct {
	Contract string
	Ops      []Op
}

func (t *Tx) hash() Hash {
	h := sha256.New()
	h.Write([]byte(t.Contract))
	var b [8]byte
	for _, op := range t.Ops {
		binary.LittleEndian.PutUint64(b[:], uint64(len(op.Key)))
		h.Write(b[:])
		h.Write([]byte(op.Key))
		if op.Read {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
			h.Write(op.Value)
		}
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// Block is one ledger entry.
type Block struct {
	Height   uint64
	PrevHash Hash
	TxRoot   Hash
	StateRef []byte // backend state commitment: Merkle root or FObject uid
	NumTxs   int
	Hash     Hash
}

func (b *Block) computeHash() Hash {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], b.Height)
	h.Write(buf[:])
	h.Write(b.PrevHash[:])
	h.Write(b.TxRoot[:])
	h.Write(b.StateRef)
	var out Hash
	h.Sum(out[:0])
	return out
}

// Backend is the storage engine under the ledger.
type Backend interface {
	// Name identifies the backend in benchmark output.
	Name() string
	// Read returns the latest committed (or block-buffered) value.
	Read(ctx context.Context, key string) ([]byte, error)
	// BufferWrite stages a write for the current block, as
	// Hyperledger buffers writes in memory until commit (§5.1.1).
	BufferWrite(key string, value []byte)
	// Commit applies the buffered writes as block `height` and
	// returns the state commitment to embed in the block.
	Commit(ctx context.Context, height uint64) ([]byte, error)
	// StateScan returns the historical values of key, newest first,
	// up to max entries (§5.1.2).
	StateScan(ctx context.Context, key string, max int) ([][]byte, error)
	// ScanStates answers a state-scan query covering several keys at
	// once; Figure 12a varies the number of keys per query.
	ScanStates(ctx context.Context, keys []string, max int) (map[string][][]byte, error)
	// BlockScan returns all states as of block height (§5.1.2).
	BlockScan(ctx context.Context, height uint64) (map[string][]byte, error)
	// Close releases resources.
	Close() error
}

// Ledger batches transactions into blocks over a backend.
type Ledger struct {
	backend   Backend
	blockSize int
	pending   []Tx
	blocks    []*Block
}

// NewLedger returns a ledger committing a block every blockSize
// transactions (the paper uses b=50).
func NewLedger(b Backend, blockSize int) *Ledger {
	if blockSize <= 0 {
		blockSize = 50
	}
	return &Ledger{backend: b, blockSize: blockSize}
}

// Backend returns the ledger's storage backend.
func (l *Ledger) Backend() Backend { return l.backend }

// Submit executes a transaction: reads go to the backend, writes are
// buffered. A block commits automatically when blockSize transactions
// have accumulated.
func (l *Ledger) Submit(ctx context.Context, tx Tx) error {
	for _, op := range tx.Ops {
		if op.Read {
			if _, err := l.backend.Read(ctx, op.Key); err != nil {
				return err
			}
		} else {
			l.backend.BufferWrite(op.Key, op.Value)
		}
	}
	l.pending = append(l.pending, tx)
	if len(l.pending) >= l.blockSize {
		return l.CommitBlock(ctx)
	}
	return nil
}

// CommitBlock seals the pending transactions into a new block.
func (l *Ledger) CommitBlock(ctx context.Context) error {
	if len(l.pending) == 0 {
		return nil
	}
	height := uint64(len(l.blocks))
	stateRef, err := l.backend.Commit(ctx, height)
	if err != nil {
		return err
	}
	blk := &Block{Height: height, StateRef: stateRef, NumTxs: len(l.pending)}
	if height > 0 {
		blk.PrevHash = l.blocks[height-1].Hash
	}
	th := sha256.New()
	for i := range l.pending {
		x := l.pending[i].hash()
		th.Write(x[:])
	}
	th.Sum(blk.TxRoot[:0])
	blk.Hash = blk.computeHash()
	l.blocks = append(l.blocks, blk)
	l.pending = l.pending[:0]
	return nil
}

// Height returns the number of committed blocks.
func (l *Ledger) Height() int { return len(l.blocks) }

// Block returns block i.
func (l *Ledger) Block(i int) *Block { return l.blocks[i] }

// VerifyChain re-computes the hash chain, detecting any tampering with
// committed blocks.
func (l *Ledger) VerifyChain() error {
	for i, b := range l.blocks {
		if b.computeHash() != b.Hash {
			return fmt.Errorf("blockchain: block %d hash mismatch", i)
		}
		if i > 0 && b.PrevHash != l.blocks[i-1].Hash {
			return fmt.Errorf("blockchain: block %d prev-hash broken", i)
		}
	}
	return nil
}
