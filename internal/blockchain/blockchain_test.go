package blockchain

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"forkbase"
	"forkbase/internal/workload"
)

// ctx is the shared root for tests: nothing here exercises cancellation.
var ctx = context.Background()

// backends returns one of each backend kind over fresh storage.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	rocks, err := NewRocksDBStyle(t.TempDir(), BucketMerkle, 64)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{
		"native":     NewNative(forkbase.Open(), "kv"),
		"rocksdb":    rocks,
		"forkbasekv": NewForkBaseKV(forkbase.Open(), BucketMerkle, 64),
	}
}

func TestLedgerAllBackendsAgree(t *testing.T) {
	const blocks, txPerBlock = 8, 10
	gen := func() *workload.YCSB {
		return workload.NewYCSB(workload.YCSBConfig{Seed: 1, Keys: 40, ReadRatio: 0.3, ValueSize: 40})
	}
	results := map[string]map[string][]byte{}
	histories := map[string]map[string][][]byte{}
	for name, be := range backends(t) {
		l := NewLedger(be, txPerBlock)
		y := gen()
		for i := 0; i < blocks*txPerBlock; i++ {
			op := y.Next()
			if err := l.Submit(ctx, Tx{Contract: "kv", Ops: []Op{{Key: op.Key, Value: op.Value, Read: op.Read}}}); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if l.Height() != blocks {
			t.Fatalf("%s: height %d, want %d", name, l.Height(), blocks)
		}
		if err := l.VerifyChain(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Snapshot the full latest state and one key's history.
		state, err := be.BlockScan(ctx, uint64(blocks-1))
		if err != nil {
			t.Fatalf("%s: block scan: %v", name, err)
		}
		results[name] = state
		hist, err := be.ScanStates(ctx, keysOf(state), 1<<30)
		if err != nil {
			t.Fatalf("%s: state scan: %v", name, err)
		}
		histories[name] = hist
		be.Close()
	}
	// All three backends must agree on the final state and histories.
	ref := results["native"]
	if len(ref) == 0 {
		t.Fatal("empty final state")
	}
	for name, state := range results {
		if len(state) != len(ref) {
			t.Fatalf("%s: %d states, native has %d", name, len(state), len(ref))
		}
		for k, v := range ref {
			if !bytes.Equal(state[k], v) {
				t.Fatalf("%s: state[%s] = %q, native %q", name, k, state[k], v)
			}
		}
	}
	refHist := histories["native"]
	for name, hist := range histories {
		for k, versions := range refHist {
			got := hist[k]
			if len(got) != len(versions) {
				t.Fatalf("%s: history len of %s = %d, native %d", name, k, len(got), len(versions))
			}
			for i := range versions {
				if !bytes.Equal(got[i], versions[i]) {
					t.Fatalf("%s: history[%s][%d] mismatch", name, k, i)
				}
			}
		}
	}
}

func keysOf(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestBlockScanHistorical(t *testing.T) {
	for name, be := range backends(t) {
		l := NewLedger(be, 1)
		// Block h writes key "k" = "v<h>".
		for h := 0; h < 5; h++ {
			if err := l.Submit(ctx, Tx{Contract: "kv", Ops: []Op{
				{Key: "k", Value: []byte(fmt.Sprintf("v%d", h))},
				{Key: fmt.Sprintf("only-%d", h), Value: []byte("x")},
			}}); err != nil {
				t.Fatal(err)
			}
		}
		for h := 0; h < 5; h++ {
			state, err := be.BlockScan(ctx, uint64(h))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if string(state["k"]) != fmt.Sprintf("v%d", h) {
				t.Fatalf("%s: block %d state k = %q", name, h, state["k"])
			}
			// Keys created later must be absent.
			if _, ok := state[fmt.Sprintf("only-%d", h+1)]; ok {
				t.Fatalf("%s: block %d sees a future key", name, h)
			}
			// Keys created earlier must be present.
			if h > 0 {
				if _, ok := state[fmt.Sprintf("only-%d", h-1)]; !ok {
					t.Fatalf("%s: block %d lost a past key", name, h)
				}
			}
		}
		be.Close()
	}
}

func TestStateScanOrder(t *testing.T) {
	for name, be := range backends(t) {
		l := NewLedger(be, 1)
		for h := 0; h < 6; h++ {
			l.Submit(ctx, Tx{Contract: "kv", Ops: []Op{{Key: "x", Value: []byte(fmt.Sprintf("v%d", h))}}})
		}
		hist, err := be.StateScan(ctx, "x", 100)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(hist) != 6 {
			t.Fatalf("%s: history length %d, want 6", name, len(hist))
		}
		for i, v := range hist {
			want := fmt.Sprintf("v%d", 5-i)
			if string(v) != want {
				t.Fatalf("%s: hist[%d] = %q, want %q", name, i, v, want)
			}
		}
		// Limited scan.
		hist, _ = be.StateScan(ctx, "x", 2)
		if len(hist) != 2 || string(hist[0]) != "v5" {
			t.Fatalf("%s: limited scan: %v", name, hist)
		}
		// Missing key.
		if h, err := be.StateScan(ctx, "never-written", 5); err != nil || len(h) != 0 {
			t.Fatalf("%s: missing key scan: %v %v", name, h, err)
		}
		be.Close()
	}
}

func TestChainTamperDetection(t *testing.T) {
	be := NewNative(forkbase.Open(), "kv")
	defer be.Close()
	l := NewLedger(be, 2)
	for i := 0; i < 10; i++ {
		l.Submit(ctx, Tx{Contract: "kv", Ops: []Op{{Key: "k", Value: []byte{byte(i)}}}})
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	l.blocks[2].StateRef = []byte("forged")
	if err := l.VerifyChain(); err == nil {
		t.Fatal("forged block passed verification")
	}
}

func TestReadsDoNotSeeBuffer(t *testing.T) {
	for name, be := range backends(t) {
		l := NewLedger(be, 100) // never auto-commits
		l.Submit(ctx, Tx{Contract: "kv", Ops: []Op{{Key: "k", Value: []byte("buffered")}}})
		v, err := be.Read(ctx, "k")
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			t.Fatalf("%s: read observed the write buffer: %q", name, v)
		}
		l.CommitBlock(ctx)
		v, _ = be.Read(ctx, "k")
		if string(v) != "buffered" {
			t.Fatalf("%s: read after commit: %q", name, v)
		}
		be.Close()
	}
}

func TestStateRefsDifferAcrossBlocks(t *testing.T) {
	be := NewNative(forkbase.Open(), "kv")
	defer be.Close()
	l := NewLedger(be, 1)
	l.Submit(ctx, Tx{Contract: "kv", Ops: []Op{{Key: "a", Value: []byte("1")}}})
	l.Submit(ctx, Tx{Contract: "kv", Ops: []Op{{Key: "a", Value: []byte("2")}}})
	if bytes.Equal(l.Block(0).StateRef, l.Block(1).StateRef) {
		t.Fatal("state commitment did not change across blocks")
	}
}
