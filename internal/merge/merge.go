// Package merge implements version reconciliation (paper §3.3.3, §4.5.2):
// least-common-ancestor search over the object derivation graph and
// three-way merge with type-specific semantics and pluggable conflict
// resolution.
package merge

import (
	"bytes"
	"container/heap"
	"context"
	"errors"
	"fmt"

	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
)

// ErrConflict is returned when a merge has unresolved conflicts; the
// conflict list accompanies it so the application can decide how to
// resolve them (§3.3.3).
var ErrConflict = errors.New("merge: unresolved conflicts")

// Conflict describes one irreconcilable difference. For element-wise
// types (Map, Set) Key is the element key; for whole-object conflicts
// Key is nil. Each field holds the serialized value on that side; nil
// means absent/deleted.
type Conflict struct {
	Key     []byte
	Base    []byte
	A, B    []byte
	Message string
}

// Resolver turns a conflict into a resolved value. ok=false leaves the
// conflict unresolved. Applications can hook custom strategies; the
// built-ins below cover the paper's append / aggregate / choose-one.
type Resolver func(c Conflict) (resolved []byte, ok bool)

// ChooseA resolves every conflict in favor of the first (target) side.
func ChooseA(c Conflict) ([]byte, bool) { return c.A, true }

// ChooseB resolves every conflict in favor of the second (ref) side.
func ChooseB(c Conflict) ([]byte, bool) { return c.B, true }

// Append concatenates both sides' values.
func Append(c Conflict) ([]byte, bool) {
	out := make([]byte, 0, len(c.A)+len(c.B))
	out = append(out, c.A...)
	out = append(out, c.B...)
	return out, true
}

// Aggregate treats the three values as little-endian Int encodings and
// combines the deltas: base + (a-base) + (b-base). An absent base
// counts as zero.
func Aggregate(c Conflict) ([]byte, bool) {
	dec := func(b []byte) (int64, bool) {
		if b == nil {
			return 0, true
		}
		v, err := decodeInt(b)
		if err != nil {
			return 0, false
		}
		return int64(v), true
	}
	base, ok1 := dec(c.Base)
	a, ok2 := dec(c.A)
	b, ok3 := dec(c.B)
	if !ok1 || !ok2 || !ok3 {
		return nil, false
	}
	return encodeInt(base + (a - base) + (b - base)), true
}

func decodeInt(b []byte) (types.Int, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("merge: bad int")
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return types.Int(v), nil
}

func encodeInt(v int64) []byte {
	out := make([]byte, 8)
	u := uint64(v)
	for i := 0; i < 8; i++ {
		out[i] = byte(u >> (8 * i))
	}
	return out
}

// LCA finds the least common ancestor of two versions: the deepest
// FObject reachable from both (M17). It is the three-way merge base —
// "the most recent version where they start to fork" (§4.5.2). Returns
// nil when the histories are disjoint. The walk checks ctx at every
// expanded node: deep or bushy histories abort promptly when the
// caller cancels or a remote client disconnects.
func LCA(ctx context.Context, s store.Store, a, b types.UID) (*types.FObject, error) {
	if a == b {
		return types.LoadFObject(s, a)
	}
	const markA, markB = 1, 2
	marks := map[types.UID]int{}
	h := &objHeap{}
	push := func(uid types.UID, mark int) error {
		if marks[uid]&mark != 0 {
			return nil
		}
		marks[uid] |= mark
		o, err := types.LoadFObject(s, uid)
		if err != nil {
			return err
		}
		heap.Push(h, o)
		return nil
	}
	if err := push(a, markA); err != nil {
		return nil, err
	}
	if err := push(b, markB); err != nil {
		return nil, err
	}
	for h.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o := heap.Pop(h).(*types.FObject)
		m := marks[o.UID()]
		if m == markA|markB {
			return o, nil
		}
		for _, base := range o.Bases {
			if err := push(base, m); err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

// objHeap is a max-heap of FObjects by depth, so the LCA search always
// expands the deepest frontier node first.
type objHeap []*types.FObject

func (h objHeap) Len() int            { return len(h) }
func (h objHeap) Less(i, j int) bool  { return h[i].Depth > h[j].Depth }
func (h objHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *objHeap) Push(x interface{}) { *h = append(*h, x.(*types.FObject)) }
func (h *objHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ThreeWay merges versions a and b against their common ancestor base
// (which may be nil for disjoint histories) and returns the merged
// value. Unresolved conflicts are returned alongside ErrConflict.
func ThreeWay(ctx context.Context, s store.Store, cfg postree.Config, base, a, b *types.FObject, res Resolver) (types.Value, []Conflict, error) {
	if a.VType != b.VType {
		return nil, []Conflict{{Message: fmt.Sprintf("type mismatch: %v vs %v", a.VType, b.VType)}}, ErrConflict
	}
	switch a.VType {
	case types.TypeMap:
		return mergeMap(ctx, s, cfg, base, a, b, res)
	case types.TypeSet:
		return mergeSet(ctx, s, cfg, base, a, b, res)
	default:
		return mergeOpaque(s, cfg, base, a, b, res)
	}
}

// mergeOpaque merges values without element structure: take the side
// that changed; if both changed differently, it is a single conflict
// over the whole value.
func mergeOpaque(s store.Store, cfg postree.Config, base, a, b *types.FObject, res Resolver) (types.Value, []Conflict, error) {
	aData, bData := a.Data, b.Data
	var baseData []byte
	if base != nil {
		baseData = base.Data
	}
	pick := func(o *types.FObject) (types.Value, []Conflict, error) {
		v, err := o.Value(s, cfg)
		return v, nil, err
	}
	switch {
	case bytes.Equal(aData, bData):
		return pick(a)
	case base != nil && bytes.Equal(aData, baseData):
		return pick(b)
	case base != nil && bytes.Equal(bData, baseData):
		return pick(a)
	}
	c := Conflict{Base: rawValueBytes(s, cfg, base), A: rawValueBytes(s, cfg, a), B: rawValueBytes(s, cfg, b)}
	if res != nil {
		if resolved, ok := res(c); ok {
			return materialize(a.VType, resolved)
		}
	}
	return nil, []Conflict{c}, ErrConflict
}

// rawValueBytes extracts comparable/resolvable bytes for a value: the
// full content for String/Blob, the inline encoding otherwise.
func rawValueBytes(s store.Store, cfg postree.Config, o *types.FObject) []byte {
	if o == nil {
		return nil
	}
	switch o.VType {
	case types.TypeBlob:
		v, err := o.Value(s, cfg)
		if err != nil {
			return nil
		}
		data, err := v.(*types.Blob).Bytes()
		if err != nil {
			return nil
		}
		return data
	default:
		return o.Data
	}
}

// materialize turns resolved bytes back into a value of the right type.
func materialize(t types.Type, data []byte) (types.Value, []Conflict, error) {
	switch t {
	case types.TypeString:
		return types.String(data), nil, nil
	case types.TypeBlob:
		return types.NewBlob(data), nil, nil
	case types.TypeInt:
		v, err := decodeInt(data)
		if err != nil {
			return nil, nil, err
		}
		return v, nil, nil
	default:
		return nil, nil, fmt.Errorf("merge: cannot materialize resolved %v", t)
	}
}

// change records one side's element-level delta from the base.
type change struct {
	value []byte // nil for delete
	del   bool
}

// mapChanges computes the key-level delta base -> o.
func mapChanges(ctx context.Context, s store.Store, cfg postree.Config, base, o *types.FObject) (map[string]change, error) {
	var baseTree, tree *postree.Tree
	v, err := o.Value(s, cfg)
	if err != nil {
		return nil, err
	}
	tree = v.(*types.Map).Tree()
	if base != nil {
		bv, err := base.Value(s, cfg)
		if err != nil {
			return nil, err
		}
		baseTree = bv.(*types.Map).Tree()
	} else {
		baseTree = postree.Empty(tree.Store(), cfg, postree.KindMap)
	}
	d, err := postree.DiffSorted(ctx, baseTree, tree)
	if err != nil {
		return nil, err
	}
	out := make(map[string]change, len(d.Added)+len(d.Removed)+len(d.Modified))
	for _, kv := range d.Added {
		out[string(kv.Key)] = change{value: kv.Value}
	}
	for _, kv := range d.Modified {
		out[string(kv.Key)] = change{value: kv.Value}
	}
	for _, kv := range d.Removed {
		out[string(kv.Key)] = change{del: true}
	}
	return out, nil
}

// mergeMap performs key-wise three-way merge of Map objects: changes
// from both sides are combined; a key changed on both sides to
// different results is a conflict.
func mergeMap(ctx context.Context, s store.Store, cfg postree.Config, base, a, b *types.FObject, res Resolver) (types.Value, []Conflict, error) {
	ca, err := mapChanges(ctx, s, cfg, base, a)
	if err != nil {
		return nil, nil, err
	}
	cb, err := mapChanges(ctx, s, cfg, base, b)
	if err != nil {
		return nil, nil, err
	}
	var baseMap *types.Map
	if base != nil {
		bv, err := base.Value(s, cfg)
		if err != nil {
			return nil, nil, err
		}
		baseMap = bv.(*types.Map)
	} else {
		av, err := a.Value(s, cfg)
		if err != nil {
			return nil, nil, err
		}
		// Start from an empty tree in the same store.
		empty := postree.Empty(av.(*types.Map).Tree().Store(), cfg, postree.KindMap)
		baseMap = types.AttachMap(empty)
	}

	var sets []postree.KV
	var deletes [][]byte
	var conflicts []Conflict
	apply := func(key string, ch change) {
		if ch.del {
			deletes = append(deletes, []byte(key))
		} else {
			sets = append(sets, postree.KV{Key: []byte(key), Value: ch.value})
		}
	}
	for key, cha := range ca {
		chb, both := cb[key]
		if !both {
			apply(key, cha)
			continue
		}
		if cha.del == chb.del && bytes.Equal(cha.value, chb.value) {
			apply(key, cha) // both sides agree
			continue
		}
		baseVal, _, err := baseMap.Get([]byte(key))
		if err != nil {
			return nil, nil, err
		}
		c := Conflict{Key: []byte(key), Base: baseVal, A: cha.value, B: chb.value}
		if res != nil {
			if resolved, ok := res(c); ok {
				apply(key, change{value: resolved})
				continue
			}
		}
		conflicts = append(conflicts, c)
	}
	for key, chb := range cb {
		if _, both := ca[key]; !both {
			apply(key, chb)
		}
	}
	if len(conflicts) > 0 {
		return nil, conflicts, ErrConflict
	}
	merged := types.CloneMap(baseMap)
	if err := merged.Apply(sets, deletes); err != nil {
		return nil, nil, err
	}
	return merged, nil, nil
}

// mergeSet merges Set objects: additions and removals from both sides
// union together; add-vs-remove of the same element conflicts.
func mergeSet(ctx context.Context, s store.Store, cfg postree.Config, base, a, b *types.FObject, res Resolver) (types.Value, []Conflict, error) {
	changes := func(o *types.FObject) (map[string]change, *types.Set, error) {
		v, err := o.Value(s, cfg)
		if err != nil {
			return nil, nil, err
		}
		set := v.(*types.Set)
		var baseTree *postree.Tree
		if base != nil {
			bv, err := base.Value(s, cfg)
			if err != nil {
				return nil, nil, err
			}
			baseTree = bv.(*types.Set).Tree()
		} else {
			baseTree = postree.Empty(set.Tree().Store(), cfg, postree.KindSet)
		}
		d, err := postree.DiffSorted(ctx, baseTree, set.Tree())
		if err != nil {
			return nil, nil, err
		}
		out := make(map[string]change)
		for _, kv := range d.Added {
			out[string(kv.Key)] = change{value: kv.Key}
		}
		for _, kv := range d.Removed {
			out[string(kv.Key)] = change{del: true}
		}
		return out, set, nil
	}
	ca, _, err := changes(a)
	if err != nil {
		return nil, nil, err
	}
	cb, setB, err := changes(b)
	if err != nil {
		return nil, nil, err
	}
	_ = setB
	var add, remove [][]byte
	var conflicts []Conflict
	for key, cha := range ca {
		chb, both := cb[key]
		if both && cha.del != chb.del {
			c := Conflict{Key: []byte(key), A: cha.value, B: chb.value,
				Message: "element added on one side and removed on the other"}
			if res != nil {
				if resolved, ok := res(c); ok {
					if resolved != nil {
						add = append(add, resolved)
					}
					continue
				}
			}
			conflicts = append(conflicts, c)
			continue
		}
		if cha.del {
			remove = append(remove, []byte(key))
		} else {
			add = append(add, []byte(key))
		}
	}
	for key, chb := range cb {
		if _, both := ca[key]; both {
			continue
		}
		if chb.del {
			remove = append(remove, []byte(key))
		} else {
			add = append(add, []byte(key))
		}
	}
	if len(conflicts) > 0 {
		return nil, conflicts, ErrConflict
	}
	var baseSet *types.Set
	if base != nil {
		bv, err := base.Value(s, cfg)
		if err != nil {
			return nil, nil, err
		}
		baseSet = bv.(*types.Set)
	} else {
		av, err := a.Value(s, cfg)
		if err != nil {
			return nil, nil, err
		}
		baseSet = types.AttachSet(postree.Empty(av.(*types.Set).Tree().Store(), cfg, postree.KindSet))
	}
	merged := types.CloneSet(baseSet)
	if err := merged.Add(add...); err != nil {
		return nil, nil, err
	}
	if err := merged.Remove(remove...); err != nil {
		return nil, nil, err
	}
	return merged, nil, nil
}
