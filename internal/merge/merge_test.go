package merge

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
)

type env struct {
	s   store.Store
	cfg postree.Config
}

func newEnv() *env {
	return &env{s: store.NewMemStore(), cfg: postree.Config{LeafQ: 8, IndexR: 3}}
}

func (e *env) save(t *testing.T, v types.Value, bases ...*types.FObject) *types.FObject {
	t.Helper()
	o, err := types.Save(e.s, e.cfg, []byte("k"), v, bases, nil)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func (e *env) mapOf(t *testing.T, kvs map[string]string, bases ...*types.FObject) *types.FObject {
	t.Helper()
	m := types.NewMap()
	for k, v := range kvs {
		m.Set([]byte(k), []byte(v))
	}
	return e.save(t, m, bases...)
}

func TestLCALinear(t *testing.T) {
	e := newEnv()
	v0 := e.save(t, types.String("0"))
	v1 := e.save(t, types.String("1"), v0)
	v2 := e.save(t, types.String("2"), v1)
	got, err := LCA(context.Background(), e.s, v2.UID(), v1.UID())
	if err != nil {
		t.Fatal(err)
	}
	if got.UID() != v1.UID() {
		t.Fatalf("LCA of ancestor chain = %s, want v1", got.UID().Short())
	}
}

func TestLCAFork(t *testing.T) {
	e := newEnv()
	v0 := e.save(t, types.String("0"))
	v1 := e.save(t, types.String("1"), v0)
	a := e.save(t, types.String("a"), v1)
	a2 := e.save(t, types.String("a2"), a)
	b := e.save(t, types.String("b"), v1)
	got, err := LCA(context.Background(), e.s, a2.UID(), b.UID())
	if err != nil {
		t.Fatal(err)
	}
	if got.UID() != v1.UID() {
		t.Fatalf("LCA = %s, want fork point v1", got.UID().Short())
	}
	// Same version.
	self, err := LCA(context.Background(), e.s, a.UID(), a.UID())
	if err != nil || self.UID() != a.UID() {
		t.Fatalf("LCA(x,x): %v", err)
	}
}

func TestLCADisjoint(t *testing.T) {
	e := newEnv()
	a := e.save(t, types.String("a"))
	b := e.save(t, types.String("b"))
	got, err := LCA(context.Background(), e.s, a.UID(), b.UID())
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("LCA of disjoint histories should be nil")
	}
}

func TestLCAThroughMergeNode(t *testing.T) {
	e := newEnv()
	root := e.save(t, types.String("r"))
	a := e.save(t, types.String("a"), root)
	b := e.save(t, types.String("b"), root)
	m := e.save(t, types.String("m"), a, b) // merge node with two bases
	c := e.save(t, types.String("c"), b)
	got, err := LCA(context.Background(), e.s, m.UID(), c.UID())
	if err != nil {
		t.Fatal(err)
	}
	if got.UID() != b.UID() {
		t.Fatalf("LCA through merge node = %s, want b", got.UID().Short())
	}
}

func TestMergeMapDisjointChanges(t *testing.T) {
	e := newEnv()
	base := e.mapOf(t, map[string]string{"a": "1", "b": "2", "c": "3"})
	left := e.mapOf(t, map[string]string{"a": "1-left", "b": "2", "c": "3"}, base)
	right := e.mapOf(t, map[string]string{"a": "1", "b": "2", "c": "3", "d": "4"}, base)

	merged, conflicts, err := ThreeWay(context.Background(), e.s, e.cfg, base, left, right, nil)
	if err != nil {
		t.Fatalf("%v (conflicts %v)", err, conflicts)
	}
	m := merged.(*types.Map)
	for k, want := range map[string]string{"a": "1-left", "b": "2", "c": "3", "d": "4"} {
		got, ok, _ := m.Get([]byte(k))
		if !ok || string(got) != want {
			t.Fatalf("merged[%s] = %q ok=%v, want %q", k, got, ok, want)
		}
	}
}

func TestMergeMapDeleteVsUntouched(t *testing.T) {
	e := newEnv()
	base := e.mapOf(t, map[string]string{"a": "1", "b": "2"})
	left := e.mapOf(t, map[string]string{"b": "2"}, base) // deleted a
	right := e.mapOf(t, map[string]string{"a": "1", "b": "2", "c": "3"}, base)
	merged, _, err := ThreeWay(context.Background(), e.s, e.cfg, base, left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := merged.(*types.Map)
	if _, ok, _ := m.Get([]byte("a")); ok {
		t.Fatal("deletion lost in merge")
	}
	if v, ok, _ := m.Get([]byte("c")); !ok || string(v) != "3" {
		t.Fatal("addition lost in merge")
	}
}

func TestMergeMapConflict(t *testing.T) {
	e := newEnv()
	base := e.mapOf(t, map[string]string{"a": "1"})
	left := e.mapOf(t, map[string]string{"a": "left"}, base)
	right := e.mapOf(t, map[string]string{"a": "right"}, base)
	_, conflicts, err := ThreeWay(context.Background(), e.s, e.cfg, base, left, right, nil)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	if len(conflicts) != 1 || string(conflicts[0].Key) != "a" {
		t.Fatalf("conflicts: %+v", conflicts)
	}
	if string(conflicts[0].A) != "left" || string(conflicts[0].B) != "right" || string(conflicts[0].Base) != "1" {
		t.Fatalf("conflict sides wrong: %+v", conflicts[0])
	}
	// With a resolver the merge succeeds.
	merged, _, err := ThreeWay(context.Background(), e.s, e.cfg, base, left, right, ChooseB)
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ := merged.(*types.Map).Get([]byte("a"))
	if string(v) != "right" {
		t.Fatalf("resolved = %q", v)
	}
}

func TestMergeMapBothSidesSameChange(t *testing.T) {
	e := newEnv()
	base := e.mapOf(t, map[string]string{"a": "1"})
	left := e.mapOf(t, map[string]string{"a": "same"}, base)
	right := e.mapOf(t, map[string]string{"a": "same"}, base)
	merged, _, err := ThreeWay(context.Background(), e.s, e.cfg, base, left, right, nil)
	if err != nil {
		t.Fatalf("identical changes conflicted: %v", err)
	}
	v, _, _ := merged.(*types.Map).Get([]byte("a"))
	if string(v) != "same" {
		t.Fatalf("merged = %q", v)
	}
}

func TestMergeSet(t *testing.T) {
	e := newEnv()
	mk := func(elems []string, bases ...*types.FObject) *types.FObject {
		s := types.NewSet()
		for _, el := range elems {
			s.Add([]byte(el))
		}
		return e.save(t, s, bases...)
	}
	base := mk([]string{"a", "b", "c"})
	left := mk([]string{"a", "b", "c", "d"}, base) // +d
	right := mk([]string{"a", "c"}, base)          // -b
	merged, _, err := ThreeWay(context.Background(), e.s, e.cfg, base, left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := merged.(*types.Set)
	for el, want := range map[string]bool{"a": true, "b": false, "c": true, "d": true} {
		got, _ := set.Has([]byte(el))
		if got != want {
			t.Fatalf("merged set has %q = %v, want %v", el, got, want)
		}
	}
	// One-sided change: no conflict.
	l2 := mk([]string{"a", "b", "c", "x"}, base)
	if _, _, err = ThreeWay(context.Background(), e.s, e.cfg, base, l2, mk([]string{"a", "b", "c"}, base), nil); err != nil {
		t.Fatalf("one-sided set change conflicted: %v", err)
	}
}

func TestMergeSetAddRemoveConflict(t *testing.T) {
	e := newEnv()
	mk := func(elems []string, bases ...*types.FObject) *types.FObject {
		s := types.NewSet()
		for _, el := range elems {
			s.Add([]byte(el))
		}
		return e.save(t, s, bases...)
	}
	base := mk([]string{"a", "x"})
	left := mk([]string{"a"}, base)       // removed x
	right := mk([]string{"a", "x"}, base) // kept x — no change, no conflict
	if _, _, err := ThreeWay(context.Background(), e.s, e.cfg, base, left, right, nil); err != nil {
		t.Fatalf("remove vs untouched conflicted: %v", err)
	}
	// The true conflict: one side removes x, the other re-adds it
	// after removal (both changed x's membership differently from a
	// shared base where x is absent).
	base2 := mk([]string{"a"})
	addX := mk([]string{"a", "x"}, base2)
	keep := mk([]string{"a"}, base2)
	if _, _, err := ThreeWay(context.Background(), e.s, e.cfg, base2, addX, keep, nil); err != nil {
		t.Fatalf("add vs untouched conflicted: %v", err)
	}
}

func TestMergeOpaqueStrings(t *testing.T) {
	e := newEnv()
	base := e.save(t, types.String("base"))
	same := e.save(t, types.String("base"), base)
	changed := e.save(t, types.String("changed"), base)

	merged, _, err := ThreeWay(context.Background(), e.s, e.cfg, base, same, changed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if merged.(types.String) != "changed" {
		t.Fatalf("merged = %q", merged)
	}
	// Both changed differently: conflict; Append resolver concatenates.
	l := e.save(t, types.String("L"), base)
	r := e.save(t, types.String("R"), base)
	_, _, err = ThreeWay(context.Background(), e.s, e.cfg, base, l, r, nil)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v", err)
	}
	merged, _, err = ThreeWay(context.Background(), e.s, e.cfg, base, l, r, Append)
	if err != nil {
		t.Fatal(err)
	}
	if merged.(types.String) != "LR" {
		t.Fatalf("append-resolved = %q", merged)
	}
}

func TestMergeTypeMismatch(t *testing.T) {
	e := newEnv()
	a := e.save(t, types.String("s"))
	b := e.save(t, types.Int(1))
	_, conflicts, err := ThreeWay(context.Background(), e.s, e.cfg, nil, a, b, nil)
	if !errors.Is(err, ErrConflict) || len(conflicts) != 1 {
		t.Fatalf("type mismatch: %v %v", err, conflicts)
	}
}

func TestAggregateResolver(t *testing.T) {
	e := newEnv()
	base := e.save(t, types.Int(100))
	l := e.save(t, types.Int(110), base) // +10
	r := e.save(t, types.Int(95), base)  // -5
	merged, _, err := ThreeWay(context.Background(), e.s, e.cfg, base, l, r, Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	if merged.(types.Int) != 105 {
		t.Fatalf("aggregate = %d, want 105", merged)
	}
}

func TestMergeMapNoBase(t *testing.T) {
	e := newEnv()
	left := e.mapOf(t, map[string]string{"a": "1"})
	right := e.mapOf(t, map[string]string{"b": "2"})
	merged, _, err := ThreeWay(context.Background(), e.s, e.cfg, nil, left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := merged.(*types.Map)
	if m.Len() != 2 {
		t.Fatalf("merged len %d", m.Len())
	}
}

func TestMergeLargeMapsSharedStructure(t *testing.T) {
	e := newEnv()
	kvs := make(map[string]string, 3000)
	for i := 0; i < 3000; i++ {
		kvs[fmt.Sprintf("key-%05d", i)] = fmt.Sprintf("val-%d", i)
	}
	base := e.mapOf(t, kvs)
	lm := make(map[string]string, len(kvs))
	rm := make(map[string]string, len(kvs))
	for k, v := range kvs {
		lm[k], rm[k] = v, v
	}
	lm["key-00010"] = "left-change"
	rm["key-02900"] = "right-change"
	left := e.mapOf(t, lm, base)
	right := e.mapOf(t, rm, base)
	merged, _, err := ThreeWay(context.Background(), e.s, e.cfg, base, left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := merged.(*types.Map)
	if v, _, _ := m.Get([]byte("key-00010")); string(v) != "left-change" {
		t.Fatalf("left change lost: %q", v)
	}
	if v, _, _ := m.Get([]byte("key-02900")); string(v) != "right-change" {
		t.Fatalf("right change lost: %q", v)
	}
	if m.Len() != 3000 {
		t.Fatalf("len %d", m.Len())
	}
}
