// Package workload generates the synthetic workloads of the paper's
// evaluation (§6): YCSB-style key-value operation streams for the
// blockchain smart contract, Zipf-skewed page accesses for the wiki
// engine, and record streams for the collaborative-analytics datasets.
package workload

import (
	"fmt"
	"math/rand"
)

// RandBytes fills a new n-byte slice with pseudo-random data.
func RandBytes(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// RandText returns n bytes of word-like ASCII text; compressible like
// natural-language page content.
func RandText(rng *rand.Rand, n int) []byte {
	const letters = "abcdefghijklmnopqrstuvwxyz     "
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(len(letters))]
	}
	return out
}

// Op is one key-value operation.
type Op struct {
	Key   string
	Value []byte
	Read  bool
}

// YCSB generates an operation stream over a fixed key population with a
// given read ratio, mirroring the Blockbench setup of §6.2 (the smart
// contract implementing a key-value store, r=w=0.5 by default).
type YCSB struct {
	rng       *rand.Rand
	keys      int
	readRatio float64
	valueSize int
	zipf      *rand.Zipf // nil for uniform
	seq       int
}

// YCSBConfig configures a generator.
type YCSBConfig struct {
	Seed      int64
	Keys      int
	ReadRatio float64 // fraction of reads, e.g. 0.5
	ValueSize int     // bytes per written value
	ZipfS     float64 // 0 for uniform; >1 enables skew
}

// NewYCSB returns a generator.
func NewYCSB(cfg YCSBConfig) *YCSB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Keys <= 0 {
		cfg.Keys = 1 << 10
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 100
	}
	y := &YCSB{rng: rng, keys: cfg.Keys, readRatio: cfg.ReadRatio, valueSize: cfg.ValueSize}
	if cfg.ZipfS > 1 {
		y.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	}
	return y
}

// Key returns the i-th key name.
func Key(i int) string { return fmt.Sprintf("user%08d", i) }

// Next returns the next operation.
func (y *YCSB) Next() Op {
	var idx int
	if y.zipf != nil {
		idx = int(y.zipf.Uint64())
	} else {
		idx = y.rng.Intn(y.keys)
	}
	op := Op{Key: Key(idx)}
	if y.rng.Float64() < y.readRatio {
		op.Read = true
		return op
	}
	y.seq++
	op.Value = []byte(fmt.Sprintf("v%08d-%s", y.seq, RandText(y.rng, y.valueSize-10)))
	return op
}

// WikiEdit describes one page edit: either an in-place update or an
// insertion, per the xU knob of Figure 13.
type WikiEdit struct {
	Page    string
	Offset  int
	Content []byte
	InPlace bool // overwrite (100U) vs insert
}

// WikiTrace generates edits over a page population.
type WikiTrace struct {
	rng          *rand.Rand
	pages        int
	editSize     int
	inPlaceRatio float64
	zipf         *rand.Zipf
}

// NewWikiTrace returns a trace over `pages` pages where inPlaceRatio of
// the edits overwrite text in place and the rest insert new text.
// zipfS > 1 skews page popularity (Figure 15).
func NewWikiTrace(seed int64, pages, editSize int, inPlaceRatio, zipfS float64) *WikiTrace {
	rng := rand.New(rand.NewSource(seed))
	w := &WikiTrace{rng: rng, pages: pages, editSize: editSize, inPlaceRatio: inPlaceRatio}
	if zipfS > 1 {
		w.zipf = rand.NewZipf(rng, zipfS, 1, uint64(pages-1))
	}
	return w
}

// Next returns the next edit against a page of the given current size.
func (w *WikiTrace) Next(pageSize int) WikiEdit {
	var idx int
	if w.zipf != nil {
		idx = int(w.zipf.Uint64())
	} else {
		idx = w.rng.Intn(w.pages)
	}
	e := WikiEdit{
		Page:    fmt.Sprintf("page-%05d", idx),
		Content: RandText(w.rng, w.editSize),
		InPlace: w.rng.Float64() < w.inPlaceRatio,
	}
	if pageSize > w.editSize {
		e.Offset = w.rng.Intn(pageSize - w.editSize)
	}
	return e
}

// Record is one synthetic relational record matching §6.4's dataset: a
// 12-byte primary key, two integer fields, and textual fields of
// variable length, around 180 bytes in total.
type Record struct {
	PK    string
	Int1  int64
	Int2  int64
	Text1 string
	Text2 string
}

// Dataset deterministically generates n records.
func Dataset(seed int64, n int) []Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Record, n)
	for i := range out {
		t1 := 40 + rng.Intn(60)
		t2 := 40 + rng.Intn(60)
		out[i] = Record{
			PK:    fmt.Sprintf("pk-%09d", i),
			Int1:  rng.Int63n(1 << 30),
			Int2:  rng.Int63n(1 << 30),
			Text1: string(RandText(rng, t1)),
			Text2: string(RandText(rng, t2)),
		}
	}
	return out
}
