package workload

import (
	"math/rand"
	"testing"
)

func TestYCSBDeterministic(t *testing.T) {
	a := NewYCSB(YCSBConfig{Seed: 1, Keys: 100, ReadRatio: 0.5, ValueSize: 50})
	b := NewYCSB(YCSBConfig{Seed: 1, Keys: 100, ReadRatio: 0.5, ValueSize: 50})
	for i := 0; i < 500; i++ {
		x, y := a.Next(), b.Next()
		if x.Key != y.Key || x.Read != y.Read || string(x.Value) != string(y.Value) {
			t.Fatalf("op %d diverged", i)
		}
	}
}

func TestYCSBReadRatio(t *testing.T) {
	y := NewYCSB(YCSBConfig{Seed: 2, Keys: 100, ReadRatio: 0.3, ValueSize: 50})
	reads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if y.Next().Read {
			reads++
		}
	}
	if reads < n*25/100 || reads > n*35/100 {
		t.Fatalf("read ratio %f, want about 0.3", float64(reads)/n)
	}
}

func TestYCSBValueSizeAndKeys(t *testing.T) {
	y := NewYCSB(YCSBConfig{Seed: 3, Keys: 10, ReadRatio: 0, ValueSize: 80})
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		op := y.Next()
		if op.Read {
			t.Fatal("read with ratio 0")
		}
		if len(op.Value) != 80 {
			t.Fatalf("value size %d", len(op.Value))
		}
		seen[op.Key] = true
	}
	if len(seen) != 10 {
		t.Fatalf("keys used: %d, want 10", len(seen))
	}
}

func TestYCSBZipfSkew(t *testing.T) {
	y := NewYCSB(YCSBConfig{Seed: 4, Keys: 1000, ReadRatio: 0, ValueSize: 10, ZipfS: 1.5})
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[y.Next().Key]++
	}
	if counts[Key(0)] < n/10 {
		t.Fatalf("hottest key got %d of %d ops; zipf not skewing", counts[Key(0)], n)
	}
}

func TestWikiTraceBounds(t *testing.T) {
	w := NewWikiTrace(5, 20, 100, 0.5, 0)
	inPlace := 0
	for i := 0; i < 2000; i++ {
		e := w.Next(15 << 10)
		if len(e.Content) != 100 {
			t.Fatalf("edit size %d", len(e.Content))
		}
		if e.Offset < 0 || e.Offset >= 15<<10 {
			t.Fatalf("offset %d out of page", e.Offset)
		}
		if e.InPlace {
			inPlace++
		}
	}
	if inPlace < 800 || inPlace > 1200 {
		t.Fatalf("in-place ratio %f, want about 0.5", float64(inPlace)/2000)
	}
}

func TestDatasetShape(t *testing.T) {
	records := Dataset(42, 500)
	if len(records) != 500 {
		t.Fatalf("len %d", len(records))
	}
	seen := map[string]bool{}
	for i, r := range records {
		if len(r.PK) != 12 {
			t.Fatalf("pk %q not 12 bytes", r.PK)
		}
		if seen[r.PK] {
			t.Fatalf("duplicate pk %q", r.PK)
		}
		seen[r.PK] = true
		if i > 0 && records[i-1].PK >= r.PK {
			t.Fatal("pks not sorted")
		}
		total := len(r.PK) + 16 + len(r.Text1) + len(r.Text2)
		if total < 100 || total > 260 {
			t.Fatalf("record size %d far from the paper's ~180 bytes", total)
		}
	}
	// Deterministic across calls.
	again := Dataset(42, 500)
	if again[123] != records[123] {
		t.Fatal("dataset not deterministic")
	}
}

func TestRandTextCompressibleAlphabet(t *testing.T) {
	rngText := RandText(newRand(1), 10000)
	for _, b := range rngText {
		if !(b == ' ' || (b >= 'a' && b <= 'z')) {
			t.Fatalf("unexpected byte %q in text", b)
		}
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
