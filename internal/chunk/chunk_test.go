package chunk

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func TestNewComputesDigestOverTypeAndData(t *testing.T) {
	data := []byte("hello forkbase")
	c := New(TypeBlob, data)
	h := sha256.New()
	h.Write([]byte{byte(TypeBlob)})
	h.Write(data)
	var want ID
	h.Sum(want[:0])
	if c.ID() != want {
		t.Fatalf("ID = %s, want %s", c.ID(), want)
	}
}

func TestSameContentSameID(t *testing.T) {
	a := New(TypeMap, []byte("abc"))
	b := New(TypeMap, []byte("abc"))
	if a.ID() != b.ID() {
		t.Fatalf("identical chunks got different ids")
	}
}

func TestTypeAffectsID(t *testing.T) {
	a := New(TypeBlob, []byte("abc"))
	b := New(TypeList, []byte("abc"))
	if a.ID() == b.ID() {
		t.Fatalf("different chunk types produced the same id")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, typ := range []Type{TypeMeta, TypeUIndex, TypeSIndex, TypeBlob, TypeList, TypeSet, TypeMap} {
		c := New(typ, []byte{1, 2, 3, 4})
		got, err := Decode(c.Bytes())
		if err != nil {
			t.Fatalf("Decode(%v): %v", typ, err)
		}
		if got.Type() != typ || !bytes.Equal(got.Data(), c.Data()) || got.ID() != c.ID() {
			t.Fatalf("round trip mismatch for %v", typ)
		}
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte{0xff, 1, 2}); err == nil {
		t.Fatal("Decode with unknown type succeeded")
	}
	if _, err := Decode([]byte{0}); err == nil {
		t.Fatal("Decode with TypeInvalid succeeded")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	c := New(TypeBlob, []byte("original"))
	forged := New(TypeBlob, []byte("tampered"))
	if err := forged.Verify(c.ID()); err == nil {
		t.Fatal("Verify accepted tampered content")
	}
	if err := c.Verify(c.ID()); err != nil {
		t.Fatalf("Verify rejected valid content: %v", err)
	}
}

func TestParseIDRoundTrip(t *testing.T) {
	c := New(TypeBlob, []byte("x"))
	id, err := ParseID(c.ID().String())
	if err != nil {
		t.Fatal(err)
	}
	if id != c.ID() {
		t.Fatal("ParseID round trip mismatch")
	}
	if _, err := ParseID("zz"); err == nil {
		t.Fatal("ParseID accepted short input")
	}
	if _, err := ParseID(string(make([]byte, 64))); err == nil {
		t.Fatal("ParseID accepted non-hex input")
	}
}

func TestNilID(t *testing.T) {
	if !NilID.IsNil() {
		t.Fatal("NilID.IsNil() = false")
	}
	if New(TypeBlob, nil).ID().IsNil() {
		t.Fatal("real chunk id is nil")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		c := New(TypeBlob, data)
		got, err := Decode(c.Bytes())
		return err == nil && got.ID() == c.ID() && bytes.Equal(got.Data(), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
