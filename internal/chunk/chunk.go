// Package chunk defines the basic unit of storage in ForkBase.
//
// A chunk is an immutable, typed byte string identified by its cid, the
// SHA-256 hash of its serialized form (type byte followed by payload).
// Because the cid is a cryptographic digest of the content, chunks with
// equal cids contain identical bytes; this property underpins both the
// deduplication and the tamper evidence of the engine (paper §4.2.1).
package chunk

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Type tags the payload layout of a chunk (paper Table 2).
type Type byte

const (
	// TypeInvalid is the zero Type; no valid chunk carries it.
	TypeInvalid Type = iota
	// TypeMeta holds the serialized FObject structure.
	TypeMeta
	// TypeUIndex holds index entries for unsorted chunkable types
	// (Blob, List): pairs of (subtree element count, child cid).
	TypeUIndex
	// TypeSIndex holds index entries for sorted chunkable types
	// (Set, Map): pairs of (split key, child cid).
	TypeSIndex
	// TypeBlob holds a raw byte sequence.
	TypeBlob
	// TypeList holds a sequence of length-prefixed elements.
	TypeList
	// TypeSet holds a sequence of sorted, length-prefixed elements.
	TypeSet
	// TypeMap holds a sequence of sorted, length-prefixed key-value pairs.
	TypeMap
)

var typeNames = map[Type]string{
	TypeInvalid: "Invalid",
	TypeMeta:    "Meta",
	TypeUIndex:  "UIndex",
	TypeSIndex:  "SIndex",
	TypeBlob:    "Blob",
	TypeList:    "List",
	TypeSet:     "Set",
	TypeMap:     "Map",
}

// String returns the human-readable chunk type name.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", byte(t))
}

// IDSize is the size of a cid in bytes (SHA-256 digest length).
const IDSize = sha256.Size

// ID is a chunk identifier: the SHA-256 digest of the chunk bytes.
// The zero ID is reserved as "no chunk".
type ID [IDSize]byte

// NilID is the zero chunk identifier, meaning "no chunk".
var NilID ID

// IsNil reports whether id is the zero identifier.
func (id ID) IsNil() bool { return id == NilID }

// String returns the full hexadecimal form of the identifier.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short returns an abbreviated hexadecimal prefix for logs and errors.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) }

// ParseID decodes a 64-character hexadecimal string into an ID.
func ParseID(s string) (ID, error) {
	var id ID
	if len(s) != IDSize*2 {
		return id, fmt.Errorf("chunk: bad id length %d", len(s))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("chunk: bad id: %w", err)
	}
	return id, nil
}

// Chunk is an immutable typed byte string. Construct one with New or
// Decode; do not mutate Data after construction, as the cid is computed
// from it.
type Chunk struct {
	t    Type
	data []byte
	id   ID
}

// New builds a chunk of type t around data and computes its cid.
// The chunk takes ownership of data.
func New(t Type, data []byte) *Chunk {
	c := &Chunk{t: t, data: data}
	h := sha256.New()
	h.Write([]byte{byte(t)})
	h.Write(data)
	h.Sum(c.id[:0])
	return c
}

// Type returns the chunk's type tag.
func (c *Chunk) Type() Type { return c.t }

// Data returns the chunk payload. Callers must not modify it.
func (c *Chunk) Data() []byte { return c.data }

// ID returns the chunk's content identifier.
func (c *Chunk) ID() ID { return c.id }

// Size returns the serialized size in bytes (type byte + payload).
func (c *Chunk) Size() int { return 1 + len(c.data) }

// Bytes returns the serialized form: one type byte followed by the payload.
func (c *Chunk) Bytes() []byte {
	b := make([]byte, 1+len(c.data))
	b[0] = byte(c.t)
	copy(b[1:], c.data)
	return b
}

// Decode reconstructs a chunk from its serialized form and verifies
// nothing about it; use Verify to check integrity against an expected id.
func Decode(b []byte) (*Chunk, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("chunk: empty serialized chunk")
	}
	t := Type(b[0])
	if _, ok := typeNames[t]; !ok || t == TypeInvalid {
		return nil, fmt.Errorf("chunk: unknown chunk type %d", b[0])
	}
	data := make([]byte, len(b)-1)
	copy(data, b[1:])
	return New(t, data), nil
}

// Verify recomputes the chunk's digest and reports whether it matches
// want. It is the tamper-evidence check at the chunk level (§4.4).
func (c *Chunk) Verify(want ID) error {
	if c.id != want {
		return fmt.Errorf("chunk: integrity violation: have %s want %s", c.id.Short(), want.Short())
	}
	return nil
}
