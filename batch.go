package forkbase

import "forkbase/internal/core"

// Batch groups writes so a Store can amortize per-operation costs:
// the embedded engine acquires each key's update lock once per batch
// group and defers the branch-table head update to the end of the
// group, and the cluster client dispatches one request per owning
// servlet instead of one per write (paying the network hop once).
//
// Writes to the same key and branch chain within the batch: each
// derives from the previous one, exactly as the same sequence of
// individual Puts would. A batch is applied atomically per key — if
// any write in a key's group fails (e.g. a guard mismatch), none of
// that key's head updates become visible — but not across keys.
//
// Build a batch with NewBatch and Put, then hand it to Store.Apply:
//
//	b := forkbase.NewBatch().
//		Put("k1", forkbase.String("v1")).
//		Put("k2", forkbase.String("v2"), forkbase.WithBranch("dev"))
//	uids, err := st.Apply(ctx, b)
type Batch struct {
	puts []core.BatchPut
	err  error
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Put appends a write to the batch. The options mirror Store.Put:
// WithBranch selects the branch, WithGuard makes the write conditional
// on the branch head, WithMeta attaches version metadata. WithBase
// (fork-on-conflict) is not supported in batches — use Store.Put; a
// batch carrying one fails at Apply with ErrBadOptions rather than
// silently dropping the option.
func (b *Batch) Put(key string, v Value, opts ...Option) *Batch {
	o := resolveOpts(opts)
	if len(o.bases) > 0 && b.err == nil {
		b.err = ErrBadOptions
	}
	b.puts = append(b.puts, core.BatchPut{
		Key:    []byte(key),
		Branch: o.branchOr(DefaultBranch),
		Value:  v,
		Meta:   o.meta,
		Guard:  o.guard,
	})
	return b
}

// Len returns the number of writes in the batch.
func (b *Batch) Len() int { return len(b.puts) }
