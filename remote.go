package forkbase

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/chunksync"
	"forkbase/internal/obs"
	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
	"forkbase/internal/wire"
)

// ErrRemoteClosed is returned by calls on a RemoteStore after Close.
var ErrRemoteClosed = errors.New("forkbase: remote store is closed")

// RemoteConfig configures Dial.
type RemoteConfig struct {
	// Conns is the connection-pool size; requests round-robin across
	// it. Each connection multiplexes any number of in-flight
	// requests, so 1 (the default) is already fully pipelined — more
	// connections add TCP-level parallelism for large transfers.
	Conns int
	// AuthToken is presented in each connection's Hello; it must match
	// the server's ServerOptions.AuthToken.
	AuthToken string
	// DialTimeout bounds each TCP connect; 0 means 10s.
	DialTimeout time.Duration
	// MaxFrame caps response frames (0 = wire.DefaultMaxFrame).
	MaxFrame int
	// ChunkSync opts into chunk-granular transfer when the server
	// advertises FeatureChunkSync: chunkable values are read by
	// fetching only the POS-Tree chunks missing from a local chunk
	// cache, and written by uploading only the chunks the server
	// reports missing. Servers without the feature (or proxy backends)
	// fall back to full-ship transparently. Implied by ChunkCacheDir.
	ChunkSync bool
	// ChunkCacheDir, when non-empty, backs the client chunk cache with
	// a persistent on-disk store at that path, so chunks survive
	// process restarts — a fresh client re-reading a barely-changed
	// object moves only the delta. Empty means the cache is in-memory
	// only (per-process).
	ChunkCacheDir string
	// ChunkCacheBytes bounds the in-memory chunk cache layered over
	// the on-disk store (or standing alone); 0 means 64 MiB.
	ChunkCacheBytes int64
	// PullWindow is the number of fetch batches a chunk-sync read
	// keeps in flight (0 = chunksync.DefaultPullWindow). Negative
	// disables pipelining: the level-synchronous baseline walk, one
	// round trip per tree level per batch.
	PullWindow int
	// DisableWantStream opts out of the streamed Want protocol even
	// when the server advertises FeatureWantStream, forcing the
	// one-batch-per-request prefix answering of older servers. Mainly
	// a benchmark and debugging knob.
	DisableWantStream bool
}

// WireStats counts bytes moved over the connection pool since Dial,
// framing included. The versioned-workload benchmark and the delta-
// transfer tests use it to prove chunk sync's bytes-on-wire claim.
//
// Deprecated: WireStats is a shim over the client metrics registry —
// the same two counters appear in MetricsSnapshot as
// forkbase_client_wire_bytes_total{dir="out"|"in"}, alongside per-op
// call counts and latency histograms.
type WireStats struct {
	BytesSent     int64
	BytesReceived int64
}

// clientMetrics is the client's instrument table, the mirror of the
// server's serverMetrics: per-op arrays sized by wire.OpMax so the
// call path indexes by op code without a map lookup or allocation.
type clientMetrics struct {
	reqs [wire.OpMax]*obs.Counter
	errs [wire.OpMax]*obs.Counter
	lat  [wire.OpMax]*obs.Histogram

	// bytesSent/bytesRecv count every byte on the pool's sockets,
	// framing included. Outbound is counted by the frame writer at the
	// flush syscall — the one chokepoint all frames pass through,
	// including streamed want parts — and inbound by the read loop, so
	// the pair cannot drift from what actually moved.
	bytesSent *obs.Counter
	bytesRecv *obs.Counter
}

func (m *clientMetrics) init(r *obs.Registry) {
	for op := wire.OpHello; op < wire.OpMax; op++ {
		tag := `op="` + wire.OpName(op) + `"`
		m.reqs[op] = r.Counter("forkbase_client_requests_total", tag)
		m.errs[op] = r.Counter("forkbase_client_request_errors_total", tag)
		m.lat[op] = r.Histogram("forkbase_client_latency_ns", tag)
	}
	m.bytesSent = r.Counter("forkbase_client_wire_bytes_total", `dir="out"`)
	m.bytesRecv = r.Counter("forkbase_client_wire_bytes_total", `dir="in"`)
}

// observe records one finished call attempt: local failures (dial,
// cancellation, frame-cap rejections) count as errors exactly like
// server-typed ones — from the caller's seat both are failed calls.
func (m *clientMetrics) observe(op uint8, start time.Time, isErr bool) {
	m.reqs[op].Inc()
	m.lat[op].ObserveSince(start)
	if isErr {
		m.errs[op].Inc()
	}
}

// RemoteStore is the network Store implementation: the same client
// API as the embedded DB and the ClusterClient, executed by a
// forkserved daemon on the other end of a TCP connection. Because it
// satisfies Store, application code — and the whole conformance suite
// — runs against it unchanged.
//
// Concurrency: safe for concurrent use. Requests are multiplexed over
// a small connection pool; each call is one request frame and one
// response frame, matched by request id, so slow calls never block
// fast ones behind them (pipelining). Cancelling a call's context
// aborts it locally at once and sends a best-effort cancel to the
// server, which stops the request's server-side work (history walks
// observe it mid-walk).
//
// Values: chunkable values fetched through Value come back staged
// (fully materialized, detached from any store), ready to edit and
// Put back. Custom merge resolvers cannot cross the wire; the
// built-ins (ChooseA, ChooseB, AppendResolve, Aggregate) are
// translated by code.
type RemoteStore struct {
	addr string
	cfg  RemoteConfig

	reqID atomic.Uint64
	next  atomic.Uint64 // round-robin cursor over the pool

	// features is the capability bitmask from the most recent Hello;
	// chunk sync engages only when the server advertises it.
	features atomic.Uint32

	// local is the client-side chunk cache stack (Cache over FileStore
	// or MemStore); nil unless chunk sync was requested. treeCfg is the
	// POS-Tree configuration local trees are built with — DefaultConfig,
	// matching the server default, so client-built and server-built
	// trees chunk identically and deduplicate against each other.
	local   store.Store
	treeCfg postree.Config

	// reg holds the client-side instruments (cm resolves into it once
	// at Dial); see Metrics and MetricsSnapshot.
	reg *obs.Registry
	cm  clientMetrics

	mu     sync.Mutex
	conns  []*remoteConn // fixed-size pool; nil slots dial lazily
	closed bool
}

// Dial connects to a forkserved instance and returns its Store. The
// first connection is established (and authenticated) eagerly so a
// bad address or token fails here, not on the first call.
func Dial(addr string, cfg RemoteConfig) (*RemoteStore, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	rs := &RemoteStore{addr: addr, cfg: cfg, conns: make([]*remoteConn, cfg.Conns), treeCfg: postree.DefaultConfig()}
	rs.reg = obs.NewRegistry()
	rs.cm.init(rs.reg)
	if cfg.ChunkSync || cfg.ChunkCacheDir != "" {
		cacheBytes := cfg.ChunkCacheBytes
		if cacheBytes <= 0 {
			cacheBytes = 64 << 20
		}
		var inner store.Store = store.NewMemStore()
		if cfg.ChunkCacheDir != "" {
			fs, err := store.OpenFileStore(cfg.ChunkCacheDir, store.FileStoreOptions{})
			if err != nil {
				return nil, fmt.Errorf("forkbase: chunk cache at %s: %w", cfg.ChunkCacheDir, err)
			}
			inner = fs
		}
		rs.local = store.NewCache(inner, cacheBytes)
	}
	if _, err := rs.conn(0); err != nil {
		rs.Close()
		return nil, err
	}
	return rs, nil
}

// WireStats reports bytes moved over the pool since Dial.
//
// Deprecated: read forkbase_client_wire_bytes_total from
// MetricsSnapshot instead; this accessor remains for existing callers.
func (rs *RemoteStore) WireStats() WireStats {
	return WireStats{BytesSent: rs.cm.bytesSent.Value(), BytesReceived: rs.cm.bytesRecv.Value()}
}

// Metrics returns the client-side instrument registry: per-op call
// counters and latency histograms plus wire byte counters, all scoped
// to this RemoteStore's connection pool.
func (rs *RemoteStore) Metrics() *obs.Registry { return rs.reg }

// MetricsSnapshot returns the client-side metrics, sorted by name then
// tags. For the server's view of the same traffic, see ServerStats.
func (rs *RemoteStore) MetricsSnapshot() []MetricSample { return rs.reg.Snapshot() }

// ServerStats fetches the server's live observability snapshot — per-op
// request counts and latency histograms, wire and chunksync byte
// counters, and (for embedded-DB backends) engine and store metrics.
// Servers predating the stats op do not advertise wire.FeatureServerStats
// in their Hello; the call then fails locally with ErrUnsupported,
// before any bytes move.
func (rs *RemoteStore) ServerStats(ctx context.Context) ([]MetricSample, error) {
	if rs.features.Load()&wire.FeatureServerStats == 0 {
		return nil, fmt.Errorf("forkbase: server does not advertise per-op metrics (pre-stats forkserved): %w", wire.ErrUnsupported)
	}
	d, ep, err := rs.call(ctx, wire.OpServerStats, okStatsPayload())
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	samples := wire.DecodeSamples(d)
	return samples, d.Err()
}

// chunkSyncOn reports whether chunk-granular transfer is active: the
// client asked for it and the server's Hello advertised it.
func (rs *RemoteStore) chunkSyncOn() bool {
	return rs.local != nil && rs.features.Load()&wire.FeatureChunkSync != 0
}

// Close tears down the connection pool; in-flight calls fail with
// ErrRemoteClosed.
func (rs *RemoteStore) Close() error {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil
	}
	rs.closed = true
	conns := append([]*remoteConn(nil), rs.conns...)
	rs.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.fail(ErrRemoteClosed)
		}
	}
	if rs.local != nil {
		return rs.local.Close()
	}
	return nil
}

// conn returns the pool slot, dialing it (or re-dialing a dead one)
// on demand.
func (rs *RemoteStore) conn(slot uint64) (*remoteConn, error) {
	i := int(slot % uint64(len(rs.conns)))
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil, ErrRemoteClosed
	}
	if c := rs.conns[i]; c != nil && !c.isDead() {
		rs.mu.Unlock()
		return c, nil
	}
	rs.mu.Unlock()
	// Dial outside the lock; a racing caller may dial the same slot —
	// the loser's connection is closed again, which is harmless.
	c, err := rs.dial()
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		c.fail(ErrRemoteClosed)
		return nil, ErrRemoteClosed
	}
	if old := rs.conns[i]; old != nil && !old.isDead() {
		c.fail(ErrRemoteClosed)
		return old, nil
	}
	rs.conns[i] = c
	return c, nil
}

// dial opens and authenticates one connection, then starts its reader.
func (rs *RemoteStore) dial() (*remoteConn, error) {
	nc, err := net.DialTimeout("tcp", rs.addr, rs.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &remoteConn{
		c:        nc,
		br:       bufio.NewReaderSize(nc, connBufSize),
		maxFrame: rs.cfg.MaxFrame,
		pending:  make(map[uint64]pendingCall),
		recv:     rs.cm.bytesRecv,
	}
	// A write failure anywhere fails the whole connection: pending
	// calls get the error instead of hanging. The frame writer also
	// counts outbound bytes at the flush syscall — the one chokepoint
	// every frame passes through.
	c.fw = newFrameWriter(nc, rs.cm.bytesSent, func(err error) { c.fail(err) })
	// Hello is synchronous: the reader starts only once the handshake
	// frame has been consumed.
	start := time.Now()
	var e wire.Enc
	e.U32(wire.ProtoVersion)
	e.Str(rs.cfg.AuthToken)
	id := rs.reqID.Add(1)
	if err := c.write(id, wire.OpHello, e.Bytes()); err != nil {
		nc.Close()
		return nil, err
	}
	respID, op, payload, err := wire.ReadFrame(c.br, rs.cfg.MaxFrame)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("forkbase: dial %s: %w", rs.addr, err)
	}
	c.recv.Add(frameWireBytes + int64(len(payload)))
	if respID != id || op != wire.OpHello {
		nc.Close()
		return nil, fmt.Errorf("forkbase: dial %s: out-of-order hello response", rs.addr)
	}
	d, ep, err := decodeStatus(payload)
	if err != nil {
		nc.Close()
		return nil, err
	} else if ep != nil {
		nc.Close()
		return nil, fmt.Errorf("forkbase: dial %s: %w", rs.addr, ep.Err)
	}
	// Banner, then the optional capability bitmask (absent on older
	// servers — the trailing bytes simply aren't there).
	d.Str()
	var features uint32
	if d.Err() == nil && d.Rest() >= 4 {
		features = d.U32()
	}
	rs.features.Store(features)
	rs.cm.observe(wire.OpHello, start, false)
	go c.readLoop()
	return c, nil
}

// frameWireBytes is the fixed per-frame cost beyond the payload: the
// u32 length prefix plus reqID, op and crc.
const frameWireBytes = 4 + 8 + 1 + 4

// remoteConn is one pooled connection: a batching frame writer
// coalescing concurrent callers' frames into shared syscalls, and a
// pending map matching responses to waiting calls.
type remoteConn struct {
	c        net.Conn
	br       *bufio.Reader
	fw       *frameWriter
	maxFrame int

	// recv points at the owning RemoteStore's inbound wire-byte
	// counter; the outbound twin lives inside fw, which counts at the
	// flush syscall.
	recv *obs.Counter

	mu      sync.Mutex
	pending map[uint64]pendingCall
	dead    bool
	err     error
}

// pendingCall is one registered in-flight request. Stream calls
// (streamed Want) receive every OpChunkWantPart frame on ch and stay
// registered until the final frame (any other op) or a connection
// failure; ordinary calls receive exactly one response.
type pendingCall struct {
	ch     chan remoteResp
	stream bool
}

type remoteResp struct {
	op      uint8
	payload []byte
	err     error
}

func (c *remoteConn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// fail marks the connection dead and releases every waiting call.
func (c *remoteConn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.err = err
	pending := c.pending
	c.pending = make(map[uint64]pendingCall)
	c.mu.Unlock()
	c.c.Close()
	for _, pc := range pending {
		pc.ch <- remoteResp{err: err}
	}
}

func (c *remoteConn) readLoop() {
	for {
		reqID, op, payload, err := wire.ReadFrame(c.br, c.maxFrame)
		if err != nil {
			c.fail(fmt.Errorf("forkbase: remote connection lost: %w", err))
			return
		}
		c.recv.Add(frameWireBytes + int64(len(payload)))
		c.mu.Lock()
		pc, ok := c.pending[reqID]
		// A stream call stays registered across its part frames; any
		// other op is its final frame. Ordinary calls unregister on
		// their single response.
		if ok && !(pc.stream && op == wire.OpChunkWantPart) {
			delete(c.pending, reqID)
		}
		c.mu.Unlock()
		if ok {
			pc.ch <- remoteResp{op: op, payload: payload}
		}
		// Unknown ids are responses to abandoned (cancelled) calls.
	}
}

// respChanPool recycles the one-shot response channels of call —
// otherwise every request allocates one. A channel may only return to
// the pool after its waiter has RECEIVED: each registered channel
// gets exactly one buffered send (read loop or fail), so post-receive
// it is provably empty. Channels abandoned on cancellation are never
// repooled — their send may still be in flight.
var respChanPool = sync.Pool{New: func() any { return make(chan remoteResp, 1) }}

func (c *remoteConn) register(id uint64) (chan remoteResp, error) {
	ch := respChanPool.Get().(chan remoteResp)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		respChanPool.Put(ch) // never registered, provably empty
		return nil, c.err
	}
	c.pending[id] = pendingCall{ch: ch}
	return ch, nil
}

// registerStream registers a stream call. Its channel is buffered
// deep enough that the read loop rarely blocks handing over parts
// (and when it does, that is exactly the backpressure wanted), and it
// is NEVER pooled: an abandoned stream's channel may still receive
// in-flight sends from the read loop — see reapStream.
func (c *remoteConn) registerStream(id uint64) (chan remoteResp, error) {
	ch := make(chan remoteResp, 32)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil, c.err
	}
	c.pending[id] = pendingCall{ch: ch, stream: true}
	return ch, nil
}

// reapStream drains an abandoned stream call in the background until
// its final frame (or the connection's failure notice) arrives. The
// server terminates every request with exactly one non-part frame —
// including cancelled ones — and fail() notifies every registered
// call, so the reaper always terminates; keeping the registration
// alive until then is what keeps the read loop from blocking forever
// on a consumer that walked away.
func reapStream(ch chan remoteResp) {
	go func() {
		for r := range ch {
			if r.err != nil || r.op != wire.OpChunkWantPart {
				return
			}
		}
	}()
}

func (c *remoteConn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *remoteConn) write(id uint64, op uint8, payload []byte) error {
	return c.fw.writeFrame(id, op, payload)
}

// call performs one request/response exchange. Exactly one of the
// three results is meaningful: a decoder positioned after the status
// byte (success), the server's typed error payload, or a local /
// transport error.
func (rs *RemoteStore) call(ctx context.Context, op uint8, payload []byte) (*wire.Dec, *wire.ErrorPayload, error) {
	return rs.callSlot(ctx, rs.next.Add(1), op, payload)
}

// callSlot is call pinned to a pool slot. The chunk-sync ops of one
// logical Put must all travel on the same connection: the server
// scopes the GC shields taken during negotiation to the connection
// that negotiated them, so a commit arriving on a different connection
// would not release them (and a mid-upload disconnect could not be
// told apart from a still-negotiating client).
func (rs *RemoteStore) callSlot(ctx context.Context, slot uint64, op uint8, payload []byte) (d *wire.Dec, ep *wire.ErrorPayload, err error) {
	start := time.Now()
	defer func() { rs.cm.observe(op, start, err != nil || ep != nil) }()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if max := wire.MaxPayload(rs.cfg.MaxFrame); len(payload) > max {
		// An oversized frame would desynchronize the stream and kill
		// every request multiplexed on the connection; fail only this
		// one, before any bytes move.
		return nil, nil, fmt.Errorf("forkbase: request of %d bytes exceeds the %d-byte frame cap (RemoteConfig.MaxFrame)", len(payload), max)
	}
	c, err := rs.conn(slot)
	if err != nil {
		return nil, nil, err
	}
	id := rs.reqID.Add(1)
	ch, err := c.register(id)
	if err != nil {
		return nil, nil, err
	}
	if err := c.write(id, op, payload); err != nil {
		c.unregister(id)
		c.fail(err)
		return nil, nil, err
	}
	select {
	case r := <-ch:
		respChanPool.Put(ch) // received its one send; empty again
		if r.err != nil {
			return nil, nil, r.err
		}
		return decodeStatus(r.payload)
	case <-ctx.Done():
		// Abandon locally at once; tell the server so it stops paying
		// for the walk. The response, if it still arrives, is dropped
		// by the read loop.
		c.unregister(id)
		var e wire.Enc
		e.U64(id)
		go c.write(rs.reqID.Add(1), wire.OpCancel, e.Bytes())
		return nil, nil, ctx.Err()
	}
}

// decodeStatus splits a response payload into success decoder or
// typed error.
func decodeStatus(payload []byte) (*wire.Dec, *wire.ErrorPayload, error) {
	d := wire.NewDec(payload)
	switch status := d.U8(); status {
	case 0:
		return d, nil, nil
	case 1:
		ep, err := wire.DecodeError(d)
		if err != nil {
			return nil, nil, err
		}
		return nil, &ep, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown response status %d", wire.ErrCodec, status)
	}
}

// wireOpts converts a resolved option set to its wire form; custom
// resolvers cannot be serialized and are rejected before any bytes
// move.
func wireOpts(o callOpts) (wire.CallOptions, error) {
	code, ok := wire.ResolverCode(o.resolver)
	if !ok {
		return wire.CallOptions{}, fmt.Errorf(
			"%w: custom resolvers cannot cross the wire; use ChooseA/ChooseB/AppendResolve/Aggregate", ErrBadOptions)
	}
	return wire.CallOptions{
		User:      o.user,
		Branch:    o.branch,
		BranchSet: o.branchSet,
		Bases:     o.bases,
		Guard:     o.guard,
		Meta:      o.meta,
		Resolver:  code,
	}, nil
}

// request encodes the common prefix (options) and hands the encoder
// over for op-specific fields.
func (rs *RemoteStore) request(ctx context.Context, op uint8, opts []Option, fill func(e *wire.Enc) error) (*wire.Dec, *wire.ErrorPayload, error) {
	co, err := wireOpts(resolveOpts(opts))
	if err != nil {
		return nil, nil, err
	}
	// The request encoding rides a pooled buffer: the frame writer
	// consumes the payload before writeFrame returns, so it is free
	// for reuse once the call has been sent.
	e := wire.EncWith(wire.GetFrameBuf())
	wire.EncodeCallOptions(&e, co)
	if fill != nil {
		if err := fill(&e); err != nil {
			wire.PutFrameBuf(e.Bytes())
			return nil, nil, err
		}
	}
	d, ep, err := rs.call(ctx, op, e.Bytes())
	wire.PutFrameBuf(e.Bytes())
	return d, ep, err
}

// Get implements Store.
func (rs *RemoteStore) Get(ctx context.Context, key string, opts ...Option) (*FObject, error) {
	d, ep, err := rs.request(ctx, wire.OpGet, opts, func(e *wire.Enc) error {
		e.Str(key)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	return wire.DecodeFObject(d)
}

// Put implements Store. With chunk sync active, chunkable values take
// the delta path: build the POS-Tree locally, negotiate which chunks
// the server is missing, upload only those, and commit by tree root —
// a 1% edit to a large object ships roughly 1% of its bytes.
func (rs *RemoteStore) Put(ctx context.Context, key string, v Value, opts ...Option) (UID, error) {
	if rs.chunkSyncOn() && !v.Type().Primitive() {
		uid, err := rs.putChunked(ctx, key, v, opts)
		if err == nil || !errors.Is(err, wire.ErrUnsupported) {
			return uid, err
		}
		// The server stopped serving chunk ops (e.g. failed over to a
		// proxy backend); full-ship still works.
	}
	d, ep, err := rs.request(ctx, wire.OpPut, opts, func(e *wire.Enc) error {
		e.Str(key)
		return wire.EncodeValue(e, v)
	})
	if err != nil {
		return UID{}, err
	}
	if ep != nil {
		return ep.UID, ep.Err
	}
	uid := d.UID()
	return uid, d.Err()
}

// Apply implements Store: the whole batch travels as one request and
// executes as one batched apply on the server, keeping the
// per-servlet grouping benefits.
func (rs *RemoteStore) Apply(ctx context.Context, b *Batch, opts ...Option) ([]UID, error) {
	if b.err != nil {
		return nil, b.err
	}
	d, ep, err := rs.request(ctx, wire.OpApply, opts, func(e *wire.Enc) error {
		e.U32(uint32(len(b.puts)))
		for _, p := range b.puts {
			e.Str(string(p.Key))
			wire.EncodeCallOptions(e, wire.CallOptions{
				Branch:    p.Branch,
				BranchSet: true,
				Guard:     p.Guard,
				Meta:      p.Meta,
			})
			if err := wire.EncodeValue(e, p.Value); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	uids := wire.DecodeUIDs(d)
	return uids, d.Err()
}

// Fork implements Store.
func (rs *RemoteStore) Fork(ctx context.Context, key, newBranch string, opts ...Option) error {
	_, ep, err := rs.request(ctx, wire.OpFork, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.Str(newBranch)
		return nil
	})
	if err != nil {
		return err
	}
	if ep != nil {
		return ep.Err
	}
	return nil
}

// Merge implements Store. Conflict lists — and the uid of a merge
// that applied but failed a durability report — round-trip inside
// error responses.
func (rs *RemoteStore) Merge(ctx context.Context, key, tgtBranch string, opts ...Option) (UID, []Conflict, error) {
	d, ep, err := rs.request(ctx, wire.OpMerge, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.Str(tgtBranch)
		return nil
	})
	if err != nil {
		return UID{}, nil, err
	}
	if ep != nil {
		return ep.UID, ep.Conflicts, ep.Err
	}
	uid := d.UID()
	return uid, nil, d.Err()
}

// Track implements Store.
func (rs *RemoteStore) Track(ctx context.Context, key string, from, to int, opts ...Option) ([]*FObject, error) {
	d, ep, err := rs.request(ctx, wire.OpTrack, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.I64(int64(from))
		e.I64(int64(to))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	n := d.Count(4)
	out := make([]*FObject, 0, n)
	for i := 0; i < n; i++ {
		o, err := wire.DecodeFObject(d)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, d.Err()
}

// Diff implements Store.
func (rs *RemoteStore) Diff(ctx context.Context, key string, a, b UID, opts ...Option) (*Diff, error) {
	d, ep, err := rs.request(ctx, wire.OpDiff, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.UID(a)
		e.UID(b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	return wire.DecodeDiff(d)
}

// ListKeys implements Store.
func (rs *RemoteStore) ListKeys(ctx context.Context, opts ...Option) ([]string, error) {
	d, ep, err := rs.request(ctx, wire.OpListKeys, opts, nil)
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	n := d.Count(4)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Str())
	}
	return out, d.Err()
}

// ListBranches implements Store.
func (rs *RemoteStore) ListBranches(ctx context.Context, key string, opts ...Option) (BranchList, error) {
	d, ep, err := rs.request(ctx, wire.OpListBranches, opts, func(e *wire.Enc) error {
		e.Str(key)
		return nil
	})
	if err != nil {
		return BranchList{}, err
	}
	if ep != nil {
		return BranchList{}, ep.Err
	}
	bl := BranchList{
		Tagged:   wire.DecodeTaggedBranches(d),
		Untagged: wire.DecodeUIDs(d),
	}
	return bl, d.Err()
}

// RenameBranch implements Store.
func (rs *RemoteStore) RenameBranch(ctx context.Context, key, branchName, newName string, opts ...Option) error {
	_, ep, err := rs.request(ctx, wire.OpRenameBranch, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.Str(branchName)
		e.Str(newName)
		return nil
	})
	if err != nil {
		return err
	}
	if ep != nil {
		return ep.Err
	}
	return nil
}

// RemoveBranch implements Store.
func (rs *RemoteStore) RemoveBranch(ctx context.Context, key, branchName string, opts ...Option) error {
	_, ep, err := rs.request(ctx, wire.OpRemoveBranch, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.Str(branchName)
		return nil
	})
	if err != nil {
		return err
	}
	if ep != nil {
		return ep.Err
	}
	return nil
}

// Pin implements Store.
func (rs *RemoteStore) Pin(ctx context.Context, key string, uid UID, opts ...Option) error {
	return rs.pinOp(ctx, wire.OpPin, key, uid, opts)
}

// Unpin implements Store.
func (rs *RemoteStore) Unpin(ctx context.Context, key string, uid UID, opts ...Option) error {
	return rs.pinOp(ctx, wire.OpUnpin, key, uid, opts)
}

func (rs *RemoteStore) pinOp(ctx context.Context, op uint8, key string, uid UID, opts []Option) error {
	_, ep, err := rs.request(ctx, op, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.UID(uid)
		return nil
	})
	if err != nil {
		return err
	}
	if ep != nil {
		return ep.Err
	}
	return nil
}

// GC implements Store: the collection runs on the server against
// whatever backend forkserved wraps.
func (rs *RemoteStore) GC(ctx context.Context, opts ...Option) (GCStats, error) {
	d, ep, err := rs.request(ctx, wire.OpGC, opts, nil)
	if err != nil {
		return GCStats{}, err
	}
	if ep != nil {
		return GCStats{}, ep.Err
	}
	stats := wire.DecodeGCStats(d)
	return stats, d.Err()
}

// Value implements Store. The value is materialized by the server
// and comes back staged, ready to edit and Put back. Primitives could
// decode locally from o.Data, but the round trip is made anyway so
// the server-side ACL check runs exactly as it would embedded —
// deployment modes must not diverge on who may decode what.
func (rs *RemoteStore) Value(ctx context.Context, key string, o *FObject, opts ...Option) (Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if o.UID().IsNil() {
		return nil, fmt.Errorf("%w: Value needs a version fetched from the store", ErrBadOptions)
	}
	if rs.chunkSyncOn() && !o.VType.Primitive() {
		v, err := rs.valueChunked(ctx, key, o, opts)
		if err == nil || !errors.Is(err, wire.ErrUnsupported) {
			return v, err
		}
	}
	d, ep, err := rs.request(ctx, wire.OpValue, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.UID(o.UID())
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	return wire.DecodeValue(d)
}

// Stats reports the server backend's chunk-storage counters (tooling;
// not part of the Store interface — backends without counters return
// an error).
func (rs *RemoteStore) Stats(ctx context.Context) (StoreStats, error) {
	d, ep, err := rs.call(ctx, wire.OpStats, okStatsPayload())
	if err != nil {
		return StoreStats{}, err
	}
	if ep != nil {
		return StoreStats{}, ep.Err
	}
	stats := wire.DecodeStats(d)
	return stats, d.Err()
}

// okStatsPayload is an empty option set — Stats carries no options
// but the request layout always leads with one.
func okStatsPayload() []byte {
	var e wire.Enc
	wire.EncodeCallOptions(&e, wire.CallOptions{})
	return e.Bytes()
}

// --- chunk-granular transfer (chunksync) ----------------------------

// chunkOpts is the option prefix chunk ops carry: only the user
// identity matters — the server checks it against the routing key.
func chunkOpts(user, key string) *wire.Enc {
	var e wire.Enc
	wire.EncodeCallOptions(&e, wire.CallOptions{User: user})
	e.Str(key)
	return &e
}

// chunkHave asks which of ids the server already stores. Shield-taking
// ops ride a caller-pinned slot; see callSlot.
func (rs *RemoteStore) chunkHave(ctx context.Context, slot uint64, user, key string, ids []chunk.ID) ([]bool, error) {
	e := chunkOpts(user, key)
	wire.EncodeUIDs(e, ids)
	d, ep, err := rs.callSlot(ctx, slot, wire.OpChunkHave, e.Bytes())
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	bits := wire.DecodeBitmap(d, len(ids))
	return bits, d.Err()
}

// chunkWant fetches raw chunks by id; the server may answer a prefix.
func (rs *RemoteStore) chunkWant(ctx context.Context, user, key string, ids []chunk.ID) ([][]byte, error) {
	e := chunkOpts(user, key)
	wire.EncodeUIDs(e, ids)
	d, ep, err := rs.call(ctx, wire.OpChunkWant, e.Bytes())
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	out := wire.DecodeWantResponse(d)
	return out, d.Err()
}

// wantStreamOn reports whether streamed Want is usable: chunk sync is
// configured, the server's Hello advertised FeatureWantStream, and
// the client did not opt out. Against older servers the bit is absent
// and every Want stays on the classic prefix-answering path.
func (rs *RemoteStore) wantStreamOn() bool {
	return rs.local != nil && !rs.cfg.DisableWantStream &&
		rs.features.Load()&wire.FeatureWantStream != 0
}

// chunkWantStream performs one streamed Want: the server ships chunks
// in OpChunkWantPart frames, handed to sink in arrival order, then a
// final status frame ends the call. deep marks the ids as POS-Tree
// roots whose whole reachable subtrees are wanted. sink runs on this
// goroutine; a ChunkFrame's Bytes are backed by the frame's own
// buffer and may be retained. Returns how many chunks arrived.
func (rs *RemoteStore) chunkWantStream(ctx context.Context, user, key string, ids []chunk.ID, deep bool, sink func(f wire.ChunkFrame) error) (got int, retErr error) {
	// Stream calls bypass callSlot, so they record their own per-op
	// sample; the whole stream is one logical OpChunkWant call.
	start := time.Now()
	defer func() { rs.cm.observe(wire.OpChunkWant, start, retErr != nil) }()
	e := chunkOpts(user, key)
	wire.EncodeUIDs(e, ids)
	flags := wire.WantFlagStream
	if deep {
		flags |= wire.WantFlagDeep
	}
	e.U8(flags)
	payload := e.Bytes()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if max := wire.MaxPayload(rs.cfg.MaxFrame); len(payload) > max {
		return 0, fmt.Errorf("forkbase: request of %d bytes exceeds the %d-byte frame cap (RemoteConfig.MaxFrame)", len(payload), max)
	}
	c, err := rs.conn(rs.next.Add(1))
	if err != nil {
		return 0, err
	}
	id := rs.reqID.Add(1)
	ch, err := c.registerStream(id)
	if err != nil {
		return 0, err
	}
	if err := c.write(id, wire.OpChunkWant, payload); err != nil {
		c.unregister(id)
		c.fail(err)
		return 0, err
	}
	// abort walks away mid-stream: tell the server to stop paying for
	// it, and hand the registration to a reaper so the read loop can
	// keep delivering (and discarding) whatever is already in flight
	// until the server's final frame lands.
	abort := func(err error) (int, error) {
		var ce wire.Enc
		ce.U64(id)
		go c.write(rs.reqID.Add(1), wire.OpCancel, ce.Bytes())
		reapStream(ch)
		return got, err
	}
	for {
		select {
		case <-ctx.Done():
			return abort(ctx.Err())
		case r := <-ch:
			if r.err != nil {
				return got, r.err // connection failed; nothing left to reap
			}
			if r.op == wire.OpChunkWantPart {
				d := wire.NewDec(r.payload)
				frames := wire.DecodeChunkUpload(d)
				if err := d.Err(); err != nil {
					return abort(err)
				}
				for _, f := range frames {
					if err := sink(f); err != nil {
						return abort(err)
					}
					got++
				}
				continue
			}
			// The final frame carries the usual status payload; its
			// count is advisory (got tracks actual arrivals).
			d, ep, err := decodeStatus(r.payload)
			if err != nil {
				return got, err
			}
			if ep != nil {
				return got, ep.Err
			}
			d.U32()
			return got, d.Err()
		}
	}
}

// chunkWantFetch is the chunksync.FetchFunc over a streamed Want: one
// round trip answers the whole batch, aligned back to ids with nil
// for chunks the server does not hold — exactly the classic contract,
// without its frame-cap prefix limit.
func (rs *RemoteStore) chunkWantFetch(ctx context.Context, user, key string, ids []chunk.ID) ([][]byte, error) {
	raws := make(map[chunk.ID][]byte, len(ids))
	if _, err := rs.chunkWantStream(ctx, user, key, ids, false, func(f wire.ChunkFrame) error {
		raws[f.ID] = f.Bytes
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([][]byte, len(ids))
	for i, id := range ids {
		out[i] = raws[id]
	}
	return out, nil
}

// chunkSend uploads a batch of chunks; the server re-verifies each
// chunk's id before admission. Shield-taking ops ride a caller-pinned
// slot; see callSlot.
func (rs *RemoteStore) chunkSend(ctx context.Context, slot uint64, user, key string, chunks []*chunk.Chunk) error {
	e := chunkOpts(user, key)
	wire.EncodeChunkUpload(e, chunks)
	_, ep, err := rs.callSlot(ctx, slot, wire.OpChunkSend, e.Bytes())
	if err != nil {
		return err
	}
	if ep != nil {
		return ep.Err
	}
	return nil
}

// haveBatch caps ids per Have request so the request fits the frame.
func (rs *RemoteStore) haveBatch() int {
	if n := (wire.MaxPayload(rs.cfg.MaxFrame) - 1024) / (chunk.IDSize + 1); n < chunksync.DefaultHaveBatch {
		return n
	}
	return chunksync.DefaultHaveBatch
}

// sendBytes caps cumulative chunk payload per Send request.
func (rs *RemoteStore) sendBytes() int {
	if n := wire.MaxPayload(rs.cfg.MaxFrame) / 2; n < chunksync.DefaultSendBytes {
		return n
	}
	return chunksync.DefaultSendBytes
}

// valueChunked is Value over chunk sync: pull the POS-Tree into the
// local chunk cache — fetching only what the cache is missing — and
// attach the handle locally. Reads after this touch no network; edits
// stage copy-on-write chunks in the cache, ready for a delta Put.
func (rs *RemoteStore) valueChunked(ctx context.Context, key string, o *FObject, opts []Option) (Value, error) {
	kind, ok := types.KindOfType(o.VType)
	if !ok {
		return nil, fmt.Errorf("forkbase: cannot decode value of type %v", o.VType)
	}
	root, count, height, err := types.ParseChunkRef(o.Data)
	if err != nil {
		return nil, err
	}
	user := resolveOpts(opts).user
	streamOn := rs.wantStreamOn()
	fetch := func(ctx context.Context, ids []chunk.ID) ([][]byte, error) {
		if streamOn {
			return rs.chunkWantFetch(ctx, user, key, ids)
		}
		return rs.chunkWant(ctx, user, key, ids)
	}
	// On a completely cold cache, a deep Want streams the whole tree in
	// one round trip instead of one per level. The policy is deliberately
	// all-or-nothing: the moment anything is cached, the value probably
	// shares most of its chunks with what is already here (the dedup
	// argument), and a deep stream would ship the full tree where the
	// discovery pull moves only the delta.
	deepFetched := 0
	if streamOn && !root.IsNil() && rs.local.Stats().Chunks == 0 {
		deepFetched, err = rs.chunkWantStream(ctx, user, key, []chunk.ID{root}, true, func(f wire.ChunkFrame) error {
			c, derr := chunk.Decode(f.Bytes)
			if derr != nil {
				return fmt.Errorf("forkbase: streamed chunk %s: %w", f.ID.Short(), derr)
			}
			if c.ID() != f.ID {
				return fmt.Errorf("forkbase: streamed chunk hashes to %s, claimed %s: %w", c.ID().Short(), f.ID.Short(), store.ErrCorrupt)
			}
			_, perr := rs.local.Put(c)
			return perr
		})
		if err != nil {
			return nil, err
		}
	}
	// The pull is the completeness sweep whether or not a deep Want ran:
	// deep streaming is best-effort (the server skips chunks it cannot
	// find), so the walk below re-verifies reachability and fetches any
	// stragglers — from a warm cache it touches no network at all.
	st, err := chunksync.Pull(ctx, rs.local, fetch, root, height, chunksync.PullConfig{Window: rs.cfg.PullWindow})
	if err != nil {
		return nil, err
	}
	if st.ChunksFetched == 0 && deepFetched == 0 {
		// Everything was cached, so no request carried the user's
		// identity to the server. Deployment modes must not diverge on
		// who may decode what: make an empty Want purely for the
		// access check, exactly as the full-ship Value would.
		if _, err := rs.chunkWant(ctx, user, key, nil); err != nil {
			return nil, err
		}
	}
	tree := postree.Attach(&remoteChunkStore{rs: rs, user: user, key: key, ctx: ctx}, rs.treeCfg, kind, root, count, height)
	v, _ := types.AttachValue(o.VType, tree)
	return v, nil
}

// putChunked is Put over chunk sync: persist the value's tree into the
// local cache (a no-op for values already attached there), negotiate
// the server's missing set, upload it, and commit by root. The commit
// op re-derives the tree shape server-side and verifies completeness
// before the put executes.
func (rs *RemoteStore) putChunked(ctx context.Context, key string, v Value, opts []Option) (UID, error) {
	if err := types.Persist(rs.local, rs.treeCfg, v); err != nil {
		return UID{}, err
	}
	tree := types.TreeOf(v)
	if tree == nil {
		return UID{}, fmt.Errorf("forkbase: chunked put: value of type %v has no tree", v.Type())
	}
	var ids []chunk.ID
	if err := tree.WalkChunkIDs(func(id chunk.ID, _ bool) error {
		ids = append(ids, id)
		return nil
	}); err != nil {
		return UID{}, err
	}
	user := resolveOpts(opts).user
	// One slot for the whole negotiate→upload→commit sequence: the
	// server scopes the GC shields taken by Have/Send to the connection
	// that took them, and only the commit (or teardown) on that same
	// connection releases them.
	slot := rs.next.Add(1)
	var st chunksync.Stats
	have := func(ctx context.Context, ids []chunk.ID) ([]bool, error) {
		return rs.chunkHave(ctx, slot, user, key, ids)
	}
	missing, err := chunksync.Missing(ctx, ids, have, rs.haveBatch(), &st)
	if err != nil {
		return UID{}, err
	}
	send := func(ctx context.Context, chunks []*chunk.Chunk) error {
		return rs.chunkSend(ctx, slot, user, key, chunks)
	}
	if err := chunksync.Push(ctx, tree.Store(), missing, send, rs.sendBytes(), &st); err != nil {
		return UID{}, err
	}
	co, err := wireOpts(resolveOpts(opts))
	if err != nil {
		return UID{}, err
	}
	var e wire.Enc
	wire.EncodeCallOptions(&e, co)
	e.Str(key)
	e.U8(uint8(v.Type()))
	e.UID(tree.Root())
	d, ep, err := rs.callSlot(ctx, slot, wire.OpPutChunked, e.Bytes())
	if err != nil {
		return UID{}, err
	}
	if ep != nil {
		return ep.UID, ep.Err
	}
	uid := d.UID()
	return uid, d.Err()
}

// remoteChunkStore is the store chunk-synced value handles attach to:
// reads are served from the local cache and fall through to the wire
// for anything missing (verified before admission); writes — the
// copy-on-write chunks of local edits — land in the cache, where the
// next delta Put finds them.
type remoteChunkStore struct {
	rs   *RemoteStore
	user string
	key  string
	// ctx is the context of the Value call that attached this handle.
	// Handle reads mirror the embedded store's context-free interface,
	// so lazy fetches inherit the attaching call's lifetime: cancel it
	// and a cold cache miss aborts instead of riding an unbounded
	// background request.
	ctx context.Context
}

func (s *remoteChunkStore) Get(id chunk.ID) (*chunk.Chunk, error) {
	c, err := s.rs.local.Get(id)
	if err == nil || !errors.Is(err, store.ErrNotFound) {
		return c, err
	}
	got, werr := s.rs.chunkWant(s.ctx, s.user, s.key, []chunk.ID{id})
	if werr != nil {
		return nil, werr
	}
	if len(got) != 1 || got[0] == nil {
		return nil, fmt.Errorf("forkbase: chunk %s: %w", id.Short(), store.ErrNotFound)
	}
	c, derr := chunk.Decode(got[0])
	if derr != nil {
		return nil, derr
	}
	if c.ID() != id {
		return nil, fmt.Errorf("forkbase: fetched chunk hashes to %s, requested %s: %w", c.ID().Short(), id.Short(), store.ErrCorrupt)
	}
	if _, err := s.rs.local.Put(c); err != nil {
		return nil, err
	}
	return c, nil
}

func (s *remoteChunkStore) Put(c *chunk.Chunk) (bool, error) { return s.rs.local.Put(c) }
func (s *remoteChunkStore) Has(id chunk.ID) bool             { return s.rs.local.Has(id) }
func (s *remoteChunkStore) Stats() store.Stats               { return s.rs.local.Stats() }
func (s *remoteChunkStore) Close() error                     { return nil }

var _ Store = (*RemoteStore)(nil)
