package forkbase

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"forkbase/internal/wire"
)

// ErrRemoteClosed is returned by calls on a RemoteStore after Close.
var ErrRemoteClosed = errors.New("forkbase: remote store is closed")

// RemoteConfig configures Dial.
type RemoteConfig struct {
	// Conns is the connection-pool size; requests round-robin across
	// it. Each connection multiplexes any number of in-flight
	// requests, so 1 (the default) is already fully pipelined — more
	// connections add TCP-level parallelism for large transfers.
	Conns int
	// AuthToken is presented in each connection's Hello; it must match
	// the server's ServerOptions.AuthToken.
	AuthToken string
	// DialTimeout bounds each TCP connect; 0 means 10s.
	DialTimeout time.Duration
	// MaxFrame caps response frames (0 = wire.DefaultMaxFrame).
	MaxFrame int
}

// RemoteStore is the network Store implementation: the same client
// API as the embedded DB and the ClusterClient, executed by a
// forkserved daemon on the other end of a TCP connection. Because it
// satisfies Store, application code — and the whole conformance suite
// — runs against it unchanged.
//
// Concurrency: safe for concurrent use. Requests are multiplexed over
// a small connection pool; each call is one request frame and one
// response frame, matched by request id, so slow calls never block
// fast ones behind them (pipelining). Cancelling a call's context
// aborts it locally at once and sends a best-effort cancel to the
// server, which stops the request's server-side work (history walks
// observe it mid-walk).
//
// Values: chunkable values fetched through Value come back staged
// (fully materialized, detached from any store), ready to edit and
// Put back. Custom merge resolvers cannot cross the wire; the
// built-ins (ChooseA, ChooseB, AppendResolve, Aggregate) are
// translated by code.
type RemoteStore struct {
	addr string
	cfg  RemoteConfig

	reqID atomic.Uint64
	next  atomic.Uint64 // round-robin cursor over the pool

	mu     sync.Mutex
	conns  []*remoteConn // fixed-size pool; nil slots dial lazily
	closed bool
}

// Dial connects to a forkserved instance and returns its Store. The
// first connection is established (and authenticated) eagerly so a
// bad address or token fails here, not on the first call.
func Dial(addr string, cfg RemoteConfig) (*RemoteStore, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	rs := &RemoteStore{addr: addr, cfg: cfg, conns: make([]*remoteConn, cfg.Conns)}
	if _, err := rs.conn(0); err != nil {
		return nil, err
	}
	return rs, nil
}

// Close tears down the connection pool; in-flight calls fail with
// ErrRemoteClosed.
func (rs *RemoteStore) Close() error {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil
	}
	rs.closed = true
	conns := append([]*remoteConn(nil), rs.conns...)
	rs.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.fail(ErrRemoteClosed)
		}
	}
	return nil
}

// conn returns the pool slot, dialing it (or re-dialing a dead one)
// on demand.
func (rs *RemoteStore) conn(slot uint64) (*remoteConn, error) {
	i := int(slot % uint64(len(rs.conns)))
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil, ErrRemoteClosed
	}
	if c := rs.conns[i]; c != nil && !c.isDead() {
		rs.mu.Unlock()
		return c, nil
	}
	rs.mu.Unlock()
	// Dial outside the lock; a racing caller may dial the same slot —
	// the loser's connection is closed again, which is harmless.
	c, err := rs.dial()
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		c.fail(ErrRemoteClosed)
		return nil, ErrRemoteClosed
	}
	if old := rs.conns[i]; old != nil && !old.isDead() {
		c.fail(ErrRemoteClosed)
		return old, nil
	}
	rs.conns[i] = c
	return c, nil
}

// dial opens and authenticates one connection, then starts its reader.
func (rs *RemoteStore) dial() (*remoteConn, error) {
	nc, err := net.DialTimeout("tcp", rs.addr, rs.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &remoteConn{
		c:        nc,
		br:       bufio.NewReader(nc),
		maxFrame: rs.cfg.MaxFrame,
		pending:  make(map[uint64]chan remoteResp),
	}
	// Hello is synchronous: the reader starts only once the handshake
	// frame has been consumed.
	var e wire.Enc
	e.U32(wire.ProtoVersion)
	e.Str(rs.cfg.AuthToken)
	id := rs.reqID.Add(1)
	if err := wire.WriteFrame(nc, id, wire.OpHello, e.Bytes()); err != nil {
		nc.Close()
		return nil, err
	}
	respID, op, payload, err := wire.ReadFrame(c.br, rs.cfg.MaxFrame)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("forkbase: dial %s: %w", rs.addr, err)
	}
	if respID != id || op != wire.OpHello {
		nc.Close()
		return nil, fmt.Errorf("forkbase: dial %s: out-of-order hello response", rs.addr)
	}
	if _, ep, err := decodeStatus(payload); err != nil {
		nc.Close()
		return nil, err
	} else if ep != nil {
		nc.Close()
		return nil, fmt.Errorf("forkbase: dial %s: %w", rs.addr, ep.Err)
	}
	go c.readLoop()
	return c, nil
}

// remoteConn is one pooled connection: a write mutex for frame
// atomicity and a pending map matching responses to waiting calls.
type remoteConn struct {
	c        net.Conn
	br       *bufio.Reader
	maxFrame int

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan remoteResp
	dead    bool
	err     error
}

type remoteResp struct {
	payload []byte
	err     error
}

func (c *remoteConn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// fail marks the connection dead and releases every waiting call.
func (c *remoteConn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.err = err
	pending := c.pending
	c.pending = make(map[uint64]chan remoteResp)
	c.mu.Unlock()
	c.c.Close()
	for _, ch := range pending {
		ch <- remoteResp{err: err}
	}
}

func (c *remoteConn) readLoop() {
	for {
		reqID, _, payload, err := wire.ReadFrame(c.br, c.maxFrame)
		if err != nil {
			c.fail(fmt.Errorf("forkbase: remote connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[reqID]
		delete(c.pending, reqID)
		c.mu.Unlock()
		if ch != nil {
			ch <- remoteResp{payload: payload}
		}
		// Unknown ids are responses to abandoned (cancelled) calls.
	}
}

func (c *remoteConn) register(id uint64) (chan remoteResp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil, c.err
	}
	ch := make(chan remoteResp, 1)
	c.pending[id] = ch
	return ch, nil
}

func (c *remoteConn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *remoteConn) write(id uint64, op uint8, payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return wire.WriteFrame(c.c, id, op, payload)
}

// call performs one request/response exchange. Exactly one of the
// three results is meaningful: a decoder positioned after the status
// byte (success), the server's typed error payload, or a local /
// transport error.
func (rs *RemoteStore) call(ctx context.Context, op uint8, payload []byte) (*wire.Dec, *wire.ErrorPayload, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if max := wire.MaxPayload(rs.cfg.MaxFrame); len(payload) > max {
		// An oversized frame would desynchronize the stream and kill
		// every request multiplexed on the connection; fail only this
		// one, before any bytes move.
		return nil, nil, fmt.Errorf("forkbase: request of %d bytes exceeds the %d-byte frame cap (RemoteConfig.MaxFrame)", len(payload), max)
	}
	c, err := rs.conn(rs.next.Add(1))
	if err != nil {
		return nil, nil, err
	}
	id := rs.reqID.Add(1)
	ch, err := c.register(id)
	if err != nil {
		return nil, nil, err
	}
	if err := c.write(id, op, payload); err != nil {
		c.unregister(id)
		c.fail(err)
		return nil, nil, err
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, nil, r.err
		}
		return decodeStatus(r.payload)
	case <-ctx.Done():
		// Abandon locally at once; tell the server so it stops paying
		// for the walk. The response, if it still arrives, is dropped
		// by the read loop.
		c.unregister(id)
		var e wire.Enc
		e.U64(id)
		go c.write(rs.reqID.Add(1), wire.OpCancel, e.Bytes())
		return nil, nil, ctx.Err()
	}
}

// decodeStatus splits a response payload into success decoder or
// typed error.
func decodeStatus(payload []byte) (*wire.Dec, *wire.ErrorPayload, error) {
	d := wire.NewDec(payload)
	switch status := d.U8(); status {
	case 0:
		return d, nil, nil
	case 1:
		ep, err := wire.DecodeError(d)
		if err != nil {
			return nil, nil, err
		}
		return nil, &ep, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown response status %d", wire.ErrCodec, status)
	}
}

// wireOpts converts a resolved option set to its wire form; custom
// resolvers cannot be serialized and are rejected before any bytes
// move.
func wireOpts(o callOpts) (wire.CallOptions, error) {
	code, ok := wire.ResolverCode(o.resolver)
	if !ok {
		return wire.CallOptions{}, fmt.Errorf(
			"%w: custom resolvers cannot cross the wire; use ChooseA/ChooseB/AppendResolve/Aggregate", ErrBadOptions)
	}
	return wire.CallOptions{
		User:      o.user,
		Branch:    o.branch,
		BranchSet: o.branchSet,
		Bases:     o.bases,
		Guard:     o.guard,
		Meta:      o.meta,
		Resolver:  code,
	}, nil
}

// request encodes the common prefix (options) and hands the encoder
// over for op-specific fields.
func (rs *RemoteStore) request(ctx context.Context, op uint8, opts []Option, fill func(e *wire.Enc) error) (*wire.Dec, *wire.ErrorPayload, error) {
	co, err := wireOpts(resolveOpts(opts))
	if err != nil {
		return nil, nil, err
	}
	var e wire.Enc
	wire.EncodeCallOptions(&e, co)
	if fill != nil {
		if err := fill(&e); err != nil {
			return nil, nil, err
		}
	}
	return rs.call(ctx, op, e.Bytes())
}

// Get implements Store.
func (rs *RemoteStore) Get(ctx context.Context, key string, opts ...Option) (*FObject, error) {
	d, ep, err := rs.request(ctx, wire.OpGet, opts, func(e *wire.Enc) error {
		e.Str(key)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	return wire.DecodeFObject(d)
}

// Put implements Store.
func (rs *RemoteStore) Put(ctx context.Context, key string, v Value, opts ...Option) (UID, error) {
	d, ep, err := rs.request(ctx, wire.OpPut, opts, func(e *wire.Enc) error {
		e.Str(key)
		return wire.EncodeValue(e, v)
	})
	if err != nil {
		return UID{}, err
	}
	if ep != nil {
		return ep.UID, ep.Err
	}
	uid := d.UID()
	return uid, d.Err()
}

// Apply implements Store: the whole batch travels as one request and
// executes as one batched apply on the server, keeping the
// per-servlet grouping benefits.
func (rs *RemoteStore) Apply(ctx context.Context, b *Batch, opts ...Option) ([]UID, error) {
	if b.err != nil {
		return nil, b.err
	}
	d, ep, err := rs.request(ctx, wire.OpApply, opts, func(e *wire.Enc) error {
		e.U32(uint32(len(b.puts)))
		for _, p := range b.puts {
			e.Str(string(p.Key))
			wire.EncodeCallOptions(e, wire.CallOptions{
				Branch:    p.Branch,
				BranchSet: true,
				Guard:     p.Guard,
				Meta:      p.Meta,
			})
			if err := wire.EncodeValue(e, p.Value); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	uids := wire.DecodeUIDs(d)
	return uids, d.Err()
}

// Fork implements Store.
func (rs *RemoteStore) Fork(ctx context.Context, key, newBranch string, opts ...Option) error {
	_, ep, err := rs.request(ctx, wire.OpFork, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.Str(newBranch)
		return nil
	})
	if err != nil {
		return err
	}
	if ep != nil {
		return ep.Err
	}
	return nil
}

// Merge implements Store. Conflict lists — and the uid of a merge
// that applied but failed a durability report — round-trip inside
// error responses.
func (rs *RemoteStore) Merge(ctx context.Context, key, tgtBranch string, opts ...Option) (UID, []Conflict, error) {
	d, ep, err := rs.request(ctx, wire.OpMerge, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.Str(tgtBranch)
		return nil
	})
	if err != nil {
		return UID{}, nil, err
	}
	if ep != nil {
		return ep.UID, ep.Conflicts, ep.Err
	}
	uid := d.UID()
	return uid, nil, d.Err()
}

// Track implements Store.
func (rs *RemoteStore) Track(ctx context.Context, key string, from, to int, opts ...Option) ([]*FObject, error) {
	d, ep, err := rs.request(ctx, wire.OpTrack, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.I64(int64(from))
		e.I64(int64(to))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	n := d.Count(4)
	out := make([]*FObject, 0, n)
	for i := 0; i < n; i++ {
		o, err := wire.DecodeFObject(d)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, d.Err()
}

// Diff implements Store.
func (rs *RemoteStore) Diff(ctx context.Context, key string, a, b UID, opts ...Option) (*Diff, error) {
	d, ep, err := rs.request(ctx, wire.OpDiff, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.UID(a)
		e.UID(b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	return wire.DecodeDiff(d)
}

// ListKeys implements Store.
func (rs *RemoteStore) ListKeys(ctx context.Context, opts ...Option) ([]string, error) {
	d, ep, err := rs.request(ctx, wire.OpListKeys, opts, nil)
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	n := d.Count(4)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Str())
	}
	return out, d.Err()
}

// ListBranches implements Store.
func (rs *RemoteStore) ListBranches(ctx context.Context, key string, opts ...Option) (BranchList, error) {
	d, ep, err := rs.request(ctx, wire.OpListBranches, opts, func(e *wire.Enc) error {
		e.Str(key)
		return nil
	})
	if err != nil {
		return BranchList{}, err
	}
	if ep != nil {
		return BranchList{}, ep.Err
	}
	bl := BranchList{
		Tagged:   wire.DecodeTaggedBranches(d),
		Untagged: wire.DecodeUIDs(d),
	}
	return bl, d.Err()
}

// RenameBranch implements Store.
func (rs *RemoteStore) RenameBranch(ctx context.Context, key, branchName, newName string, opts ...Option) error {
	_, ep, err := rs.request(ctx, wire.OpRenameBranch, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.Str(branchName)
		e.Str(newName)
		return nil
	})
	if err != nil {
		return err
	}
	if ep != nil {
		return ep.Err
	}
	return nil
}

// RemoveBranch implements Store.
func (rs *RemoteStore) RemoveBranch(ctx context.Context, key, branchName string, opts ...Option) error {
	_, ep, err := rs.request(ctx, wire.OpRemoveBranch, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.Str(branchName)
		return nil
	})
	if err != nil {
		return err
	}
	if ep != nil {
		return ep.Err
	}
	return nil
}

// Pin implements Store.
func (rs *RemoteStore) Pin(ctx context.Context, key string, uid UID, opts ...Option) error {
	return rs.pinOp(ctx, wire.OpPin, key, uid, opts)
}

// Unpin implements Store.
func (rs *RemoteStore) Unpin(ctx context.Context, key string, uid UID, opts ...Option) error {
	return rs.pinOp(ctx, wire.OpUnpin, key, uid, opts)
}

func (rs *RemoteStore) pinOp(ctx context.Context, op uint8, key string, uid UID, opts []Option) error {
	_, ep, err := rs.request(ctx, op, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.UID(uid)
		return nil
	})
	if err != nil {
		return err
	}
	if ep != nil {
		return ep.Err
	}
	return nil
}

// GC implements Store: the collection runs on the server against
// whatever backend forkserved wraps.
func (rs *RemoteStore) GC(ctx context.Context, opts ...Option) (GCStats, error) {
	d, ep, err := rs.request(ctx, wire.OpGC, opts, nil)
	if err != nil {
		return GCStats{}, err
	}
	if ep != nil {
		return GCStats{}, ep.Err
	}
	stats := wire.DecodeGCStats(d)
	return stats, d.Err()
}

// Value implements Store. The value is materialized by the server
// and comes back staged, ready to edit and Put back. Primitives could
// decode locally from o.Data, but the round trip is made anyway so
// the server-side ACL check runs exactly as it would embedded —
// deployment modes must not diverge on who may decode what.
func (rs *RemoteStore) Value(ctx context.Context, key string, o *FObject, opts ...Option) (Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if o.UID().IsNil() {
		return nil, fmt.Errorf("%w: Value needs a version fetched from the store", ErrBadOptions)
	}
	d, ep, err := rs.request(ctx, wire.OpValue, opts, func(e *wire.Enc) error {
		e.Str(key)
		e.UID(o.UID())
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ep != nil {
		return nil, ep.Err
	}
	return wire.DecodeValue(d)
}

// Stats reports the server backend's chunk-storage counters (tooling;
// not part of the Store interface — backends without counters return
// an error).
func (rs *RemoteStore) Stats(ctx context.Context) (StoreStats, error) {
	d, ep, err := rs.call(ctx, wire.OpStats, okStatsPayload())
	if err != nil {
		return StoreStats{}, err
	}
	if ep != nil {
		return StoreStats{}, ep.Err
	}
	stats := wire.DecodeStats(d)
	return stats, d.Err()
}

// okStatsPayload is an empty option set — Stats carries no options
// but the request layout always leads with one.
func okStatsPayload() []byte {
	var e wire.Enc
	wire.EncodeCallOptions(&e, wire.CallOptions{})
	return e.Bytes()
}

var _ Store = (*RemoteStore)(nil)
