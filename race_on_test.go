//go:build race

package forkbase_test

// raceEnabled lets allocation-pinning tests skip themselves: the race
// runtime instruments allocations and the counts stop meaning anything.
const raceEnabled = true
