package forkbase

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// tctx is the context for test calls on the unified Store API.
var tctx = context.Background()

// TestPaperExample reproduces Figure 4 of the paper: fork a Blob to a
// new branch, edit it locally, commit to that branch.
func TestPaperExample(t *testing.T) {
	db := Open()
	defer db.Close()

	if _, err := db.Put(tctx, "my key", NewBlob([]byte("my value"))); err != nil {
		t.Fatal(err)
	}
	if err := db.Fork(tctx, "my key", "new branch"); err != nil {
		t.Fatal(err)
	}
	obj, err := db.GetBranch("my key", "new branch")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := db.BlobOf(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := blob.Remove(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := blob.Append([]byte(" and some more")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.PutBranch("my key", "new branch", blob); err != nil {
		t.Fatal(err)
	}
	// The new branch sees the edit; master does not.
	check := func(branch, want string) {
		o, err := db.GetBranch("my key", branch)
		if err != nil {
			t.Fatal(err)
		}
		b, err := db.BlobOf(o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("%s = %q, want %q", branch, got, want)
		}
	}
	check("new branch", "value and some more")
	check("master", "my value")
}

func TestKeyValueCompliance(t *testing.T) {
	// With only the default branch, ForkBase is a plain KV store (§3.1).
	db := Open()
	defer db.Close()
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%d", i)
		if _, err := db.Put(tctx, k, String(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		o, err := db.Get(tctx, fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		v, err := db.ValueOf(o)
		if err != nil {
			t.Fatal(err)
		}
		if v.(String) != String(fmt.Sprintf("v-%d", i)) {
			t.Fatalf("key-%d = %q", i, v)
		}
	}
	keys, err := db.ListKeys(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 50 {
		t.Fatalf("keys: %d", len(keys))
	}
	if _, err := db.Get(tctx, "no-such-key"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestVersionHistoryAndTrack(t *testing.T) {
	db := Open()
	defer db.Close()
	var uids []UID
	for i := 0; i < 10; i++ {
		uid, err := db.Put(tctx, "doc", String(fmt.Sprintf("version-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		uids = append(uids, uid)
	}
	// Track distances 0..3 from head (M15).
	hist, err := db.Track(tctx, "doc", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("track returned %d versions", len(hist))
	}
	for i, o := range hist {
		want := fmt.Sprintf("version-%d", 9-i)
		if string(o.Data) != want {
			t.Fatalf("track[%d] = %q, want %q", i, o.Data, want)
		}
	}
	// Distances 2..2 from a uid (M16).
	hist, err = db.TrackUID(uids[5], 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || string(hist[0].Data) != "version-3" {
		t.Fatalf("TrackUID: %q", hist[0].Data)
	}
	// History is tamper-evident end to end.
	head, _ := db.Get(tctx, "doc")
	n, err := db.VerifyHistory(head)
	if err != nil || n != 10 {
		t.Fatalf("VerifyHistory: %d %v", n, err)
	}
	// Old versions stay readable by uid (M2).
	o, err := db.GetUID(uids[0])
	if err != nil || string(o.Data) != "version-0" {
		t.Fatalf("GetUID: %v", err)
	}
}

func TestForkOnDemandIsolation(t *testing.T) {
	db := Open()
	defer db.Close()
	db.Put(tctx, "cfg", String("v1"))
	if err := db.Fork(tctx, "cfg", "dev"); err != nil {
		t.Fatal(err)
	}
	db.PutBranch("cfg", "dev", String("v2-dev"))
	db.Put(tctx, "cfg", String("v2-master"))

	branches := db.ListTaggedBranches("cfg")
	if len(branches) != 2 {
		t.Fatalf("branches: %v", branches)
	}
	dev, _ := db.GetBranch("cfg", "dev")
	master, _ := db.Get(tctx, "cfg")
	if string(dev.Data) != "v2-dev" || string(master.Data) != "v2-master" {
		t.Fatalf("isolation broken: %q / %q", dev.Data, master.Data)
	}
	// LCA of the two heads is the fork point (M17).
	lca, err := db.LCA(dev.UID(), master.UID())
	if err != nil {
		t.Fatal(err)
	}
	if string(lca.Data) != "v1" {
		t.Fatalf("LCA = %q", lca.Data)
	}
}

func TestForkUIDRevivesHistory(t *testing.T) {
	db := Open()
	defer db.Close()
	old, _ := db.Put(tctx, "k", String("old"))
	db.Put(tctx, "k", String("new"))
	// A historical version becomes modifiable by forking it (§3.3).
	if err := db.ForkUID("k", old, "revival"); err != nil {
		t.Fatal(err)
	}
	db.PutBranch("k", "revival", String("revived"))
	o, _ := db.GetBranch("k", "revival")
	if string(o.Data) != "revived" {
		t.Fatalf("revival = %q", o.Data)
	}
	if len(o.Bases) != 1 || o.Bases[0] != old {
		t.Fatal("revival does not derive from the old version")
	}
}

func TestBranchRenameRemove(t *testing.T) {
	db := Open()
	defer db.Close()
	db.Put(tctx, "k", String("v"))
	db.Fork(tctx, "k", "tmp")
	if err := db.Rename("k", "tmp", "kept"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetBranch("k", "tmp"); !errors.Is(err, ErrBranchNotFound) {
		t.Fatalf("renamed branch: %v", err)
	}
	if err := db.RemoveBranch(tctx, "k", "kept"); err != nil {
		t.Fatal(err)
	}
	if got := db.ListTaggedBranches("k"); len(got) != 1 {
		t.Fatalf("branches after remove: %v", got)
	}
}

func TestGuardedPut(t *testing.T) {
	db := Open()
	defer db.Close()
	v1, _ := db.Put(tctx, "k", String("v1"))
	if _, err := db.PutGuarded("k", DefaultBranch, String("v2"), v1); err != nil {
		t.Fatal(err)
	}
	// The stale guard must fail and leave the head untouched.
	if _, err := db.PutGuarded("k", DefaultBranch, String("v3"), v1); !errors.Is(err, ErrGuardFailed) {
		t.Fatalf("stale guard: %v", err)
	}
	o, _ := db.Get(tctx, "k")
	if string(o.Data) != "v2" {
		t.Fatalf("head = %q", o.Data)
	}
}

func TestForkOnConflict(t *testing.T) {
	db := Open()
	defer db.Close()
	base, err := db.PutBase("state", UID{}, String("genesis"))
	if err != nil {
		t.Fatal(err)
	}
	// Two concurrent writers derive from the same base (Figure 3b).
	u1, err := db.PutBase("state", base, String("writer-1"))
	if err != nil {
		t.Fatal(err)
	}
	u2, err := db.PutBase("state", base, String("writer-2"))
	if err != nil {
		t.Fatal(err)
	}
	heads := db.ListUntaggedBranches("state")
	if len(heads) != 2 {
		t.Fatalf("untagged heads: %d, want 2", len(heads))
	}
	// Merge the conflicting heads (M7) with choose-one resolution.
	merged, _, err := db.MergeUntagged("state", ChooseB, u1, u2)
	if err != nil {
		t.Fatal(err)
	}
	heads = db.ListUntaggedBranches("state")
	if len(heads) != 1 || heads[0] != merged {
		t.Fatalf("after merge: %v", heads)
	}
	o, _ := db.GetUID(merged)
	if len(o.Bases) != 2 {
		t.Fatalf("merge node bases: %d", len(o.Bases))
	}
}

func TestMergeBranchesMapTypes(t *testing.T) {
	db := Open()
	defer db.Close()
	m := NewMap()
	m.Set([]byte("shared"), []byte("base"))
	db.Put(tctx, "data", m)
	db.Fork(tctx, "data", "feature")

	// master adds one key, feature adds another.
	mo, _ := db.Get(tctx, "data")
	mm, _ := db.MapOf(mo)
	mm.Set([]byte("from-master"), []byte("m"))
	db.Put(tctx, "data", mm)

	fo, _ := db.GetBranch("data", "feature")
	fm, _ := db.MapOf(fo)
	fm.Set([]byte("from-feature"), []byte("f"))
	db.PutBranch("data", "feature", fm)
	featureHead, _ := db.GetBranch("data", "feature")

	uid, conflicts, err := db.Merge(tctx, "data", "master", WithBranch("feature"))
	if err != nil {
		t.Fatalf("%v %v", err, conflicts)
	}
	o, _ := db.GetUID(uid)
	merged, _ := db.MapOf(o)
	for _, k := range []string{"shared", "from-master", "from-feature"} {
		if _, ok, _ := merged.Get([]byte(k)); !ok {
			t.Fatalf("merged map missing %q", k)
		}
	}
	// The head of master moved to the merge result; feature unchanged.
	head, _ := db.Get(tctx, "data")
	if head.UID() != uid {
		t.Fatal("master head not updated by merge")
	}
	f2, _ := db.GetBranch("data", "feature")
	if f2.UID() != featureHead.UID() {
		t.Fatal("merge modified the reference branch")
	}
}

func TestMergeConflictSurfaced(t *testing.T) {
	db := Open()
	defer db.Close()
	db.Put(tctx, "k", String("base"))
	db.Fork(tctx, "k", "other")
	db.Put(tctx, "k", String("left"))
	db.PutBranch("k", "other", String("right"))
	_, conflicts, err := db.Merge(tctx, "k", "master", WithBranch("other"))
	if !errors.Is(err, ErrConflict) || len(conflicts) != 1 {
		t.Fatalf("conflict surfacing: %v %v", err, conflicts)
	}
	// Resolve with append.
	uid, _, err := db.Merge(tctx, "k", "master", WithBranch("other"), WithResolver(AppendResolve))
	if err != nil {
		t.Fatal(err)
	}
	o, _ := db.GetUID(uid)
	if string(o.Data) != "leftright" {
		t.Fatalf("resolved = %q", o.Data)
	}
}

func TestDiffVersions(t *testing.T) {
	db := Open()
	defer db.Close()
	m := NewMap()
	for i := 0; i < 500; i++ {
		m.Set([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	u1, _ := db.Put(tctx, "d", m)
	o, _ := db.Get(tctx, "d")
	m2, _ := db.MapOf(o)
	m2.Set([]byte("k0100"), []byte("changed"))
	m2.Set([]byte("brand-new"), []byte("x"))
	u2, _ := db.Put(tctx, "d", m2)

	d, err := db.DiffVersions(u1, u2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Sorted == nil || len(d.Sorted.Added) != 1 || len(d.Sorted.Modified) != 1 {
		t.Fatalf("diff: %+v", d.Sorted)
	}
}

func TestDedupAcrossVersions(t *testing.T) {
	db := Open()
	defer db.Close()
	base := make([]byte, 256<<10)
	rng := uint64(42)
	for i := range base {
		rng = rng*6364136223846793005 + 1442695040888963407
		base[i] = byte(rng >> 56)
	}
	db.Put(tctx, "blob", NewBlob(base))
	grew := db.Stats().Bytes
	// 20 small edits: storage should grow far slower than 20 full
	// copies (naive versioning would add 21x the object size).
	for i := 0; i < 20; i++ {
		o, _ := db.Get(tctx, "blob")
		b, _ := db.BlobOf(o)
		b.Splice(uint64(i*1000), 4, []byte(fmt.Sprintf("%04d", i)))
		db.Put(tctx, "blob", b)
	}
	total := db.Stats().Bytes
	if total > grew*4 {
		t.Fatalf("20 small edits grew storage %dx (naive would be 21x)", total/grew)
	}
	// All 21 versions remain readable.
	hist, err := db.Track(tctx, "blob", 0, 20)
	if err != nil || len(hist) != 21 {
		t.Fatalf("history: %d %v", len(hist), err)
	}
}

func TestConcurrentPutsSerialized(t *testing.T) {
	db := Open()
	defer db.Close()
	db.Put(tctx, "ctr", String("start"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := db.Put(tctx, "ctr", String(fmt.Sprintf("g%d-i%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Exactly 201 versions in a single linear history.
	hist, err := db.Track(tctx, "ctr", 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 201 {
		t.Fatalf("history length %d, want 201", len(hist))
	}
}

func TestPersistencePath(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	uid, err := db.Put(tctx, "k", NewBlob([]byte("persisted value")))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Branch tables are in-memory (as in the paper's servlet), but all
	// versions remain reachable by uid from the persistent chunk log.
	o, err := db2.GetUID(uid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db2.BlobOf(o)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := b.Bytes()
	if string(got) != "persisted value" {
		t.Fatalf("recovered %q", got)
	}
}

func TestTamperEvidenceEndToEnd(t *testing.T) {
	db := Open()
	defer db.Close()
	uid, _ := db.Put(tctx, "k", NewBlob(bytes.Repeat([]byte("secure"), 2000)))
	o, err := db.GetUID(uid)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := db.BlobOf(o)
	if b.Tree() == nil {
		t.Fatal("not attached")
	}
	if err := b.Tree().Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Asking for a uid that is not a Meta chunk fails type checking.
	root := b.Tree().Root()
	if _, err := db.GetUID(root); err == nil {
		t.Fatal("GetUID accepted a non-meta chunk")
	}
}
