package forkbase_test

// The streamed Want protocol: part framing and flush bounds at the
// wire level, the one-round-trip deep tree walk, cancellation ending a
// stream without costing the connection, and the fallback matrix that
// keeps old and new peers interoperable.

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"testing"

	forkbase "forkbase"
	"forkbase/internal/chunk"
	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
	"forkbase/internal/wire"
)

// streamWantRaw sends one flagged OpChunkWant and collects the whole
// streamed answer: every part's chunk frames, then the final status
// frame decoded like any other response. Each ReadFrame call allocates
// its own buffer, so retaining frames across parts is safe here.
func streamWantRaw(t *testing.T, c net.Conn, key string, ids []chunk.ID, flags uint8) (parts [][]wire.ChunkFrame, final *wire.Dec, ep *wire.ErrorPayload) {
	t.Helper()
	var e wire.Enc
	wire.EncodeCallOptions(&e, wire.CallOptions{})
	e.Str(key)
	wire.EncodeUIDs(&e, ids)
	e.U8(flags)
	if err := wire.WriteFrame(c, 7, wire.OpChunkWant, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	for {
		_, op, payload, err := wire.ReadFrame(c, 0)
		if err != nil {
			t.Fatalf("stream torn down mid-answer: %v", err)
		}
		if op == wire.OpChunkWantPart {
			d := wire.NewDec(payload)
			frames := wire.DecodeChunkUpload(d)
			if err := d.Err(); err != nil {
				t.Fatalf("undecodable part frame: %v", err)
			}
			parts = append(parts, frames)
			continue
		}
		if op != wire.OpChunkWant {
			t.Fatalf("stream answered with op %d", op)
		}
		if len(payload) == 0 {
			t.Fatal("empty final frame")
		}
		d := wire.NewDec(payload[1:])
		if payload[0] != 0 {
			e, derr := wire.DecodeError(d)
			if derr != nil {
				t.Fatalf("undecodable error payload: %v", derr)
			}
			return parts, nil, &e
		}
		return parts, d, nil
	}
}

// TestWantStreamParts: a flagged Want for a batch far beyond one part's
// budget arrives as multiple bounded OpChunkWantPart frames whose union
// is exactly the requested-and-present set, ids the server does not
// hold are skipped, and the final status frame carries the count.
func TestWantStreamParts(t *testing.T) {
	db := forkbase.Open()
	addr, _ := startServer(t, db, forkbase.ServerOptions{})
	c := rawChunkConn(t, addr)

	rnd := rand.New(rand.NewSource(21))
	var uploaded []*chunk.Chunk
	for i := 0; i < 40; i++ {
		body := make([]byte, 100<<10)
		rnd.Read(body)
		uploaded = append(uploaded, chunk.New(chunk.TypeBlob, body))
	}
	d, ep := chunkReq(t, c, wire.OpChunkSend, func(e *wire.Enc) {
		e.Str("doc")
		wire.EncodeChunkUpload(e, uploaded)
	})
	if ep != nil {
		t.Fatalf("upload: %v", ep.Err)
	}
	if stored := d.U32(); stored != 40 {
		t.Fatalf("upload admitted %d of 40 chunks", stored)
	}

	ids := make([]chunk.ID, 0, 41)
	for _, ch := range uploaded {
		ids = append(ids, ch.ID())
	}
	ids = append(ids, chunk.ID{0xde, 0xad}) // phantom: must be skipped, not failed

	parts, final, ep := streamWantRaw(t, c, "doc", ids, wire.WantFlagStream)
	if ep != nil {
		t.Fatalf("streamed want failed: %v", ep.Err)
	}
	if len(parts) < 4 {
		t.Fatalf("4 MB answer arrived in %d parts — streaming did not bound the frames", len(parts))
	}
	got := make(map[chunk.ID][]byte)
	for _, frames := range parts {
		var partBytes int
		for _, f := range frames {
			cc, err := chunk.Decode(f.Bytes)
			if err != nil {
				t.Fatalf("streamed chunk undecodable: %v", err)
			}
			if cc.ID() != f.ID {
				t.Fatalf("streamed chunk hashes to %s, claimed %s", cc.ID().Short(), f.ID.Short())
			}
			got[f.ID] = f.Bytes
			partBytes += len(f.Bytes)
		}
		if partBytes > 512<<10 {
			t.Fatalf("one part carries %d bytes — parts must stay well under the frame cap", partBytes)
		}
	}
	if n := final.U32(); n != 40 || final.Err() != nil {
		t.Fatalf("final frame counts %d streamed chunks (err %v), want 40", n, final.Err())
	}
	for _, ch := range uploaded {
		if !bytes.Equal(got[ch.ID()], ch.Bytes()) {
			t.Fatalf("chunk %s missing or corrupted in the stream", ch.ID().Short())
		}
	}
	if len(got) != 40 {
		t.Fatalf("stream answered %d distinct chunks, want 40 (phantom skipped)", len(got))
	}
}

// TestWantStreamDeep: a deep Want for a POS-Tree root streams the whole
// reachable tree — every index node and leaf — in one round trip, and
// the pulled chunks reproduce the content bit-for-bit.
func TestWantStreamDeep(t *testing.T) {
	db := forkbase.Open()
	addr, _ := startServer(t, db, forkbase.ServerOptions{})
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(22))
	data := make([]byte, 2<<20)
	rnd.Read(data)
	if _, err := db.Put(ctx, "doc", forkbase.NewBlob(data)); err != nil {
		t.Fatal(err)
	}
	o, err := db.Get(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	root, count, height, err := types.ParseChunkRef(o.Data)
	if err != nil {
		t.Fatalf("stored blob is not chunked: %v", err)
	}

	c := rawChunkConn(t, addr)
	parts, final, ep := streamWantRaw(t, c, "doc", []chunk.ID{root}, wire.WantFlagDeep)
	if ep != nil {
		t.Fatalf("deep want failed: %v", ep.Err)
	}
	local := store.NewMemStore()
	streamed := uint32(0)
	for _, frames := range parts {
		for _, f := range frames {
			cc, err := chunk.Decode(f.Bytes)
			if err != nil || cc.ID() != f.ID {
				t.Fatalf("deep stream shipped a corrupt chunk: %v", err)
			}
			if _, err := local.Put(cc); err != nil {
				t.Fatal(err)
			}
			streamed++
		}
	}
	if n := final.U32(); n != streamed || final.Err() != nil {
		t.Fatalf("final frame counts %d, client received %d", n, streamed)
	}
	at := postree.Attach(local, postree.DefaultConfig(), postree.KindBlob, root, count, height)
	got, err := at.Bytes()
	if err != nil {
		t.Fatalf("deep-pulled tree is incomplete: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("deep-pulled tree does not reproduce the content")
	}
}

// TestWantStreamCancelTerminates: cancelling a streamed Want mid-flight
// still ends the stream with exactly one final frame — the invariant
// the client's reaper relies on — and costs nothing but that request:
// the same connection keeps answering.
func TestWantStreamCancelTerminates(t *testing.T) {
	db := forkbase.Open()
	addr, _ := startServer(t, db, forkbase.ServerOptions{})
	ctx := context.Background()
	data := make([]byte, 8<<20)
	rand.New(rand.NewSource(23)).Read(data)
	if _, err := db.Put(ctx, "doc", forkbase.NewBlob(data)); err != nil {
		t.Fatal(err)
	}
	o, err := db.Get(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	root, _, _, err := types.ParseChunkRef(o.Data)
	if err != nil {
		t.Fatal(err)
	}

	c := rawChunkConn(t, addr)
	var e wire.Enc
	wire.EncodeCallOptions(&e, wire.CallOptions{})
	e.Str("doc")
	wire.EncodeUIDs(&e, []chunk.ID{root})
	e.U8(wire.WantFlagDeep)
	if err := wire.WriteFrame(c, 7, wire.OpChunkWant, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	var ce wire.Enc
	ce.U64(7)
	if err := wire.WriteFrame(c, 8, wire.OpCancel, ce.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Drain to the final frame. Whether the cancel won the race (typed
	// error) or the stream completed first (ok) is timing; that it
	// terminates — and the connection survives — is the contract.
	for {
		_, op, _, err := wire.ReadFrame(c, 0)
		if err != nil {
			t.Fatalf("cancelled stream killed the connection: %v", err)
		}
		if op == wire.OpChunkWant {
			break
		}
		if op != wire.OpChunkWantPart {
			t.Fatalf("unexpected op %d in stream", op)
		}
	}
	if present := probeChunk(t, c, root); !present {
		t.Fatal("connection no longer answers after a cancelled stream")
	}
}

// TestWantStreamFallbackMatrix: every opt-out combination reads the
// same bytes. A client that disables streaming speaks the classic
// prefix protocol; a level-synchronous client (PullWindow < 0) walks
// the old baseline; both re-read warm with only delta traffic, so the
// fallbacks preserve the dedup property too.
func TestWantStreamFallbackMatrix(t *testing.T) {
	db := forkbase.Open()
	addr, _ := startServer(t, db, forkbase.ServerOptions{})
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(24))
	data := make([]byte, 4<<20)
	rnd.Read(data)
	if _, err := db.Put(ctx, "doc", forkbase.NewBlob(data)); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		cfg  forkbase.RemoteConfig
	}{
		{"streamed", forkbase.RemoteConfig{ChunkSync: true}},
		{"classic-want", forkbase.RemoteConfig{ChunkSync: true, DisableWantStream: true}},
		{"level-sync", forkbase.RemoteConfig{ChunkSync: true, PullWindow: -1, DisableWantStream: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.ChunkCacheDir = t.TempDir()
			rc, err := forkbase.Dial(addr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer rc.Close()
			if got := readDoc(t, rc, "doc"); !bytes.Equal(got, data) {
				t.Fatal("cold read corrupted the object")
			}
			base := rc.WireStats().BytesReceived
			if got := readDoc(t, rc, "doc"); !bytes.Equal(got, data) {
				t.Fatal("warm read corrupted the object")
			}
			if moved := rc.WireStats().BytesReceived - base; moved > int64(len(data))/10 {
				t.Fatalf("warm re-read moved %d bytes — fallback lost the dedup property", moved)
			}
		})
	}
}
