package forkbase

// Server-side observability: every request the server dispatches is
// counted, timed and classified through internal/obs instruments that
// are resolved once at construction and indexed by op code — the hot
// path does array loads and atomic adds, nothing else. The snapshot
// surface (OpServerStats, forkserved -debug-addr) merges the server's
// registry with its backend DB's, so one scrape sees the wire layer
// and the engine together.

import (
	"time"

	"forkbase/internal/obs"
	"forkbase/internal/wire"
)

// MetricSample is one metric's state in an observability snapshot.
// Alias of the internal obs.Sample so CLI tooling and embedding
// applications can consume snapshots without reaching into internal
// packages.
type MetricSample = obs.Sample

// Indexes into serverMetrics.chunksync.
const (
	csHave = iota
	csWant
	csSend
	csStream
	csOps
)

// serverMetrics is the server's instrument table: per-op arrays sized
// by wire.OpMax so the dispatch path indexes by op code without a map
// lookup or allocation.
type serverMetrics struct {
	reqs    [wire.OpMax]*obs.Counter
	errs    [wire.OpMax]*obs.Counter
	lat     [wire.OpMax]*obs.Histogram
	errCode [wire.NumErrorCodes]*obs.Counter

	inflight *obs.Gauge
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	putBatch *obs.Histogram

	// chunksync byte counters, one per transfer direction: ids
	// negotiated (have), chunk bytes answered classically (want),
	// admitted on upload (send) and shipped in want-part frames
	// (stream).
	chunksync [csOps]*obs.Counter
}

func (m *serverMetrics) init(r *obs.Registry) {
	for op := wire.OpHello; op < wire.OpMax; op++ {
		tag := `op="` + wire.OpName(op) + `"`
		m.reqs[op] = r.Counter("forkbase_server_requests_total", tag)
		m.errs[op] = r.Counter("forkbase_server_request_errors_total", tag)
		m.lat[op] = r.Histogram("forkbase_server_latency_ns", tag)
	}
	for code := uint8(0); code < wire.NumErrorCodes; code++ {
		m.errCode[code] = r.Counter("forkbase_server_errors_by_code_total", `code="`+wire.CodeName(code)+`"`)
	}
	m.inflight = r.Gauge("forkbase_server_inflight_requests", "")
	m.bytesIn = r.Counter("forkbase_server_wire_bytes_total", `dir="in"`)
	m.bytesOut = r.Counter("forkbase_server_wire_bytes_total", `dir="out"`)
	m.putBatch = r.Histogram("forkbase_server_put_batch_size", "")
	for i, dir := range []string{"have", "want", "send", "stream"} {
		m.chunksync[i] = r.Counter("forkbase_server_chunksync_bytes_total", `op="`+dir+`"`)
	}
}

// observe records one dispatched request: count, latency, error
// classification (the response payload's status byte and wire code),
// and the threshold-gated slow-op log line. Zero allocations unless
// the slow-op line actually fires.
func (s *Server) observe(sc *serverConn, op uint8, start time.Time, resp []byte) {
	s.observeDur(sc, op, time.Since(start), resp)
}

// observeDur is observe with the duration already taken — the batched
// put path times the whole batch once instead of calling time.Since
// per member.
func (s *Server) observeDur(sc *serverConn, op uint8, d time.Duration, resp []byte) {
	s.met.reqs[op].Inc()
	s.met.lat[op].Observe(int64(d))
	if len(resp) > 0 && resp[0] == 1 {
		s.met.errs[op].Inc()
		if len(resp) > 1 && resp[1] < wire.NumErrorCodes {
			s.met.errCode[resp[1]].Inc()
		}
	}
	if t := s.opts.SlowOpThreshold; t > 0 && d >= t {
		status := "ok"
		if len(resp) > 0 && resp[0] == 1 {
			status = "error"
			if len(resp) > 1 {
				status = "error=" + wire.CodeName(resp[1])
			}
		}
		s.logf("forkserved: slow op %s from %s: %v (threshold %v, %s)",
			wire.OpName(op), sc.c.RemoteAddr(), d, t, status)
	}
}

// reqDone releases one admitted request. The drain WaitGroup and the
// in-flight gauge move together here, always — a site calling one
// without the other would skew the gauge for the server's lifetime.
func (s *Server) reqDone() {
	s.met.inflight.Add(-1)
	s.inflight.Done()
}

// Metrics returns the server's own registry: per-op request counters
// and latency histograms, wire byte counters, in-flight gauge, queue
// depth. Engine metrics live on the backend DB's registry; use
// MetricsSnapshot for the merged view.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// MetricsSnapshot returns the merged observability snapshot — the
// server's registry plus the backend DB's (when the backend is an
// embedded *DB) — sorted by metric name then tags. This is the body
// of an OpServerStats response and of forkserved's /metrics page.
func (s *Server) MetricsSnapshot() []MetricSample {
	if db, ok := s.st.(*DB); ok {
		return obs.MergeSamples(s.reg.Snapshot(), db.reg.Snapshot())
	}
	return s.reg.Snapshot()
}

// newDBMetrics builds a DB's registry: engine and store gauges
// re-homed from the ad-hoc stat structs (sampled at snapshot time, so
// the hot path pays nothing it was not already paying), plus the GC
// pause and journal fsync histograms the engine feeds directly.
func newDBMetrics(db *DB) *obs.Registry {
	r := obs.NewRegistry()
	stat := func(f func(StoreStats) int64) func() int64 {
		return func() int64 { return f(db.Stats()) }
	}
	r.CounterFunc("forkbase_store_puts_total", "", stat(func(s StoreStats) int64 { return s.Puts }))
	r.CounterFunc("forkbase_store_gets_total", "", stat(func(s StoreStats) int64 { return s.Gets }))
	r.CounterFunc("forkbase_store_dup_chunks_total", "", stat(func(s StoreStats) int64 { return s.Dups }))
	r.CounterFunc("forkbase_store_dup_bytes_total", "", stat(func(s StoreStats) int64 { return s.DupBytes }))
	r.CounterFunc("forkbase_store_read_bytes_total", "", stat(func(s StoreStats) int64 { return s.ReadBytes }))
	r.CounterFunc("forkbase_store_cache_hits_total", "", stat(func(s StoreStats) int64 { return s.CacheHits }))
	r.CounterFunc("forkbase_store_cache_misses_total", "", stat(func(s StoreStats) int64 { return s.CacheMisses }))
	r.CounterFunc("forkbase_store_cache_evictions_total", "", stat(func(s StoreStats) int64 { return s.CacheEvictions }))
	r.GaugeFunc("forkbase_store_cache_bytes", "", stat(func(s StoreStats) int64 { return s.CacheBytes }))
	r.GaugeFunc("forkbase_store_chunks", "", stat(func(s StoreStats) int64 { return int64(s.Chunks) }))
	r.GaugeFunc("forkbase_store_bytes", "", stat(func(s StoreStats) int64 { return s.Bytes }))
	r.GaugeFunc("forkbase_meta_wal_bytes", "", func() int64 {
		ms, ok := db.MetaStats()
		if !ok {
			return 0
		}
		return ms.WALBytes
	})
	return r
}

// MetricsSnapshot returns the DB's engine/store metrics, sorted. For
// a DB behind a Server the server's MetricsSnapshot already includes
// these.
func (db *DB) MetricsSnapshot() []MetricSample { return db.reg.Snapshot() }
