package forkbase

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"forkbase/internal/chunk"
	"forkbase/internal/postree"
	"forkbase/internal/store"
	"forkbase/internal/types"
	"forkbase/internal/wire"
)

// ErrServerClosed is the typed error a draining server answers new
// requests with; in-flight requests still complete. It round-trips to
// clients, so a RemoteStore caller can tell "server going away" from
// a data error and fail over.
var ErrServerClosed = wire.ErrShutdown

// ServerOptions configures NewServer.
type ServerOptions struct {
	// AuthToken, when non-empty, must be presented by every
	// connection's Hello before any request is served. The protocol is
	// plaintext: the token gates accidental cross-talk, it is not a
	// substitute for a trusted network (see README, "Serving over the
	// network").
	AuthToken string
	// MaxFrame caps a single request or response frame in bytes; 0
	// means wire.DefaultMaxFrame (256 MiB). Values a client ships in
	// one Put must fit in one frame.
	MaxFrame int
	// Logf, when set, receives connection-level diagnostics (framing
	// violations, disconnects). Nil discards them.
	Logf func(format string, args ...any)
	// DisableChunkSync turns off the chunk-granular transfer ops even
	// when the backend could serve them: the server stops advertising
	// FeatureChunkSync and answers the chunk ops with ErrUnsupported,
	// forcing clients onto the full-ship path.
	DisableChunkSync bool
}

// chunkBackend is the optional capability a wrapped store can expose
// to serve the chunk-granular transfer ops. The embedded *DB
// implements it; proxy backends (ClusterClient, RemoteStore) do not —
// they have no local chunk store to negotiate against — so a server
// wrapping one simply never advertises FeatureChunkSync and clients
// fall back to full-ship transparently.
type chunkBackend interface {
	// chunkStore is the content-addressed store chunk ops read from
	// and admit into.
	chunkStore() store.Store
	// treeConfig is the POS-Tree configuration committed versions are
	// attached with.
	treeConfig() postree.Config
	// shieldChunks / unshieldChunks bracket the window between a chunk
	// becoming known to a client (uploaded, or reported present during
	// negotiation) and the commit that references it, keeping GC from
	// sweeping it mid-upload.
	shieldChunks(ids []chunk.ID)
	unshieldChunks(ids []chunk.ID)
	// checkChunkAccess runs the access controller for a chunk-level
	// read (write=false) or upload/commit (write=true) on key.
	checkChunkAccess(user, key string, write bool) error
}

// Server exposes any Store — an embedded *DB, a ClusterClient, even
// another RemoteStore — over the forkbase wire protocol. This is the
// paper's dispatcher made real (§4.1): requests arrive over TCP,
// carry the user identity the access controller checks, and execute
// against the wrapped store with full pipelining — many in-flight
// requests per connection, each answered as it completes.
//
//	srv := forkbase.NewServer(db, forkbase.ServerOptions{})
//	ln, _ := net.Listen("tcp", ":7707")
//	go srv.Serve(ln)
//	...
//	srv.Shutdown(ctx) // graceful: drain in-flight, refuse new work
type Server struct {
	st   Store
	opts ServerOptions

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*serverConn]struct{}
	draining bool
	closed   bool

	inflight sync.WaitGroup // request handlers across all connections
	connWG   sync.WaitGroup // connection read loops
}

// NewServer returns a server over st. The store stays owned by the
// caller: Shutdown/Close never close it, so one store can outlive —
// or be shared by — several listeners.
func NewServer(st Store, opts ServerOptions) *Server {
	return &Server{st: st, opts: opts, conns: make(map[*serverConn]struct{})}
}

// Serve accepts connections on ln until Shutdown or Close. It always
// returns a non-nil error; after a clean Shutdown that error is
// ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	var retryDelay time.Duration
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.draining || s.closed
			s.mu.Unlock()
			if stopped {
				return ErrServerClosed
			}
			// Transient accept failures (fd exhaustion under load,
			// ECONNABORTED) must not kill a daemon with established
			// clients; back off and retry, the way net/http does.
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if retryDelay == 0 {
					retryDelay = 5 * time.Millisecond
				} else if retryDelay *= 2; retryDelay > time.Second {
					retryDelay = time.Second
				}
				s.logf("forkserved: accept: %v; retrying in %v", err, retryDelay)
				time.Sleep(retryDelay)
				continue
			}
			return err
		}
		retryDelay = 0
		sc := s.newConn(c)
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[sc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go sc.readLoop()
	}
}

// Shutdown drains the server: the listener closes, requests already
// executing run to completion and their responses are flushed, and
// new requests are refused with ErrServerClosed. It returns nil once
// every in-flight request has finished, or ctx.Err() if the drain
// outlives ctx — in which case the remaining work is cut off as Close
// would.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeConns()
	s.connWG.Wait()
	return err
}

// Close stops the server immediately: the listener and every
// connection close, cancelling in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.closeConns()
	s.connWG.Wait()
	return nil
}

func (s *Server) closeConns() {
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.close()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// serverConn is one client connection: a read loop feeding pipelined
// request handlers, a write mutex serializing their response frames,
// and a cancel registry so OpCancel (or the connection dropping)
// aborts exactly the in-flight work it should.
type serverConn struct {
	srv *Server
	c   net.Conn
	br  *bufio.Reader

	ctx    context.Context // cancelled when the connection dies
	cancel context.CancelFunc

	writeMu sync.Mutex

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc
	authed   bool
	closed   bool

	// shields tracks, per chunk id, how many GC shield references this
	// connection holds on the backend (taken during chunk negotiation
	// and upload, released when the referencing commit lands). Whatever
	// is left when the connection dies — a client that uploaded and
	// hung up — is released wholesale, returning the orphaned chunks to
	// the collector.
	shields map[chunk.ID]int
}

func (s *Server) newConn(c net.Conn) *serverConn {
	//forkvet:allow ctxflow — a connection IS a context root: per-request contexts hang off it and die with the socket, not with any caller
	ctx, cancel := context.WithCancel(context.Background())
	return &serverConn{
		srv:      s,
		c:        c,
		br:       bufio.NewReader(c),
		ctx:      ctx,
		cancel:   cancel,
		inflight: make(map[uint64]context.CancelFunc),
	}
}

// chunkBack returns the wrapped store's chunk capability, nil when
// absent or disabled.
func (s *Server) chunkBack() chunkBackend {
	if s.opts.DisableChunkSync {
		return nil
	}
	cb, _ := s.st.(chunkBackend)
	return cb
}

// features is the capability bitmask advertised in the Hello response.
func (s *Server) features() uint32 {
	if s.chunkBack() != nil {
		return wire.FeatureChunkSync
	}
	return 0
}

// addShields takes one backend shield per unique id and records it
// against this connection.
func (sc *serverConn) addShields(cb chunkBackend, ids []chunk.ID) {
	if len(ids) == 0 {
		return
	}
	sc.mu.Lock()
	if sc.shields == nil {
		sc.shields = make(map[chunk.ID]int)
	}
	for _, id := range ids {
		sc.shields[id]++
	}
	sc.mu.Unlock()
	cb.shieldChunks(ids)
}

// dropShields releases one connection-held shield per unique id (ids
// the connection never shielded are ignored).
func (sc *serverConn) dropShields(cb chunkBackend, ids []chunk.ID) {
	seen := make(map[chunk.ID]bool, len(ids))
	release := make([]chunk.ID, 0, len(ids))
	sc.mu.Lock()
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		if n, ok := sc.shields[id]; ok && n > 0 {
			if n == 1 {
				delete(sc.shields, id)
			} else {
				sc.shields[id] = n - 1
			}
			release = append(release, id)
		}
	}
	sc.mu.Unlock()
	if len(release) > 0 {
		cb.unshieldChunks(release)
	}
}

// dropAllShields releases every shield reference the connection still
// holds (connection teardown).
func (sc *serverConn) dropAllShields() {
	cb, _ := sc.srv.st.(chunkBackend)
	if cb == nil {
		return
	}
	sc.mu.Lock()
	var release []chunk.ID
	for id, n := range sc.shields {
		for i := 0; i < n; i++ {
			release = append(release, id)
		}
	}
	sc.shields = nil
	sc.mu.Unlock()
	if len(release) > 0 {
		cb.unshieldChunks(release)
	}
}

// close tears the connection down and cancels its in-flight requests.
func (sc *serverConn) close() {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	sc.closed = true
	sc.mu.Unlock()
	sc.dropAllShields()
	sc.cancel() // aborts handlers blocked in ctx-aware walks
	sc.c.Close()
	sc.srv.mu.Lock()
	delete(sc.srv.conns, sc)
	sc.srv.mu.Unlock()
}

// readLoop parses frames until the connection dies. Framing
// violations close this connection only — the stream cannot be
// resynchronized — while well-framed garbage (unknown ops, undecodable
// payloads) is answered with a typed error and the connection lives.
func (sc *serverConn) readLoop() {
	defer sc.srv.connWG.Done()
	defer sc.close()
	for {
		reqID, op, payload, err := wire.ReadFrame(sc.br, sc.srv.opts.MaxFrame)
		if err != nil {
			if !errors.Is(err, io.EOF) && !sc.isClosed() {
				sc.srv.logf("forkserved: %s: %v", sc.c.RemoteAddr(), err)
			}
			return
		}
		switch {
		case op == wire.OpCancel:
			// Abort the named request; no response of its own.
			d := wire.NewDec(payload)
			target := d.U64()
			if d.Err() == nil {
				sc.mu.Lock()
				if cancel := sc.inflight[target]; cancel != nil {
					cancel()
				}
				sc.mu.Unlock()
			}
		case op == wire.OpHello:
			if !sc.hello(reqID, payload) {
				return
			}
		case !sc.isAuthed():
			// Requests before a successful Hello are a protocol
			// violation; refuse and hang up.
			sc.respondErr(reqID, op, fmt.Errorf("%w: hello required before requests", ErrAccessDenied), nil, UID{})
			return
		case !wire.KnownOp(op):
			sc.respondErr(reqID, op, fmt.Errorf("%w: unknown op %d", wire.ErrCodec, op), nil, UID{})
		case !sc.srv.admit():
			sc.respondErr(reqID, op, ErrServerClosed, nil, UID{})
		default:
			// The in-flight slot is held (admit). Register the
			// request's cancel func HERE, on the read loop, before the
			// handler goroutine exists: an OpCancel frame can arrive
			// on this same loop immediately after the request, and a
			// registration done inside the handler would race it —
			// losing the cancel and walking a deep history for a
			// client that already hung up.
			ctx, cancel := context.WithCancel(sc.ctx)
			sc.mu.Lock()
			sc.inflight[reqID] = cancel
			sc.mu.Unlock()
			go sc.handle(ctx, cancel, reqID, op, payload)
		}
	}
}

func (sc *serverConn) isClosed() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.closed
}

func (sc *serverConn) isAuthed() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.authed
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// admit reserves an in-flight slot for a new request unless the
// server is draining. The check and the WaitGroup Add happen under
// the same lock Shutdown takes to set draining, so once Shutdown's
// Wait begins no further Add can slip in — which is both what keeps
// the drain contract (every admitted request finishes and flushes)
// and what makes the Add/Wait pair race-free.
func (s *Server) admit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return false
	}
	s.inflight.Add(1)
	return true
}

// hello performs the version/auth handshake. Returns false when the
// connection must close (bad version or bad token).
func (sc *serverConn) hello(reqID uint64, payload []byte) bool {
	d := wire.NewDec(payload)
	version := d.U32()
	token := d.Str()
	if err := d.Err(); err != nil {
		sc.respondErr(reqID, wire.OpHello, err, nil, UID{})
		return false
	}
	if version != wire.ProtoVersion {
		sc.respondErr(reqID, wire.OpHello,
			fmt.Errorf("%w: protocol version %d, server speaks %d", wire.ErrCodec, version, wire.ProtoVersion), nil, UID{})
		return false
	}
	if sc.srv.opts.AuthToken != "" && token != sc.srv.opts.AuthToken {
		sc.respondErr(reqID, wire.OpHello, fmt.Errorf("%w: bad auth token", ErrAccessDenied), nil, UID{})
		return false
	}
	sc.mu.Lock()
	sc.authed = true
	sc.mu.Unlock()
	var e wire.Enc
	e.U8(0)
	e.Str("forkbase/1")
	// Optional-capability bitmask; clients that predate it ignore the
	// trailing bytes, so this is compatible with ProtoVersion 1 peers.
	e.U32(sc.srv.features())
	sc.write(reqID, wire.OpHello, e.Bytes())
	return true
}

// handle executes one pipelined request on its own goroutine; its
// cancel func was registered by the read loop before spawn.
func (sc *serverConn) handle(ctx context.Context, cancel context.CancelFunc, reqID uint64, op uint8, payload []byte) {
	defer sc.srv.inflight.Done()
	defer func() {
		sc.mu.Lock()
		delete(sc.inflight, reqID)
		sc.mu.Unlock()
		cancel()
	}()
	sc.write(reqID, op, sc.srv.dispatch(ctx, sc, op, payload))
}

func (sc *serverConn) write(reqID uint64, op uint8, payload []byte) {
	if max := wire.MaxPayload(sc.srv.opts.MaxFrame); len(payload) > max {
		// An oversized response frame would make the client drop the
		// whole connection (stream desync), failing its other
		// in-flight requests; downgrade to a typed per-request error.
		payload = errPayload(fmt.Errorf("response of %d bytes exceeds the %d-byte frame cap", len(payload), max), nil, UID{})
	}
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	//forkvet:allow lockhold — writeMu exists to serialize frames on the shared socket; an interleaved frame would desync the stream
	if err := wire.WriteFrame(sc.c, reqID, op, payload); err != nil {
		// The read loop (or close) will notice; nothing to salvage here.
		sc.srv.logf("forkserved: write to %s: %v", sc.c.RemoteAddr(), err)
	}
}

func (sc *serverConn) respondErr(reqID uint64, op uint8, err error, conflicts []Conflict, uid UID) {
	sc.write(reqID, op, errPayload(err, conflicts, uid))
}

// --- request dispatch -------------------------------------------------

func okPayload(fill func(e *wire.Enc)) []byte {
	var e wire.Enc
	e.U8(0)
	if fill != nil {
		fill(&e)
	}
	return e.Bytes()
}

func errPayload(err error, conflicts []Conflict, uid UID) []byte {
	var e wire.Enc
	e.U8(1)
	wire.EncodeError(&e, err, conflicts, uid)
	return e.Bytes()
}

// callOptions reconstructs the per-call option slice a request's
// CallOptions describe — including WithUser, which is what routes the
// request through the wrapped store's access controller.
func callOptions(o wire.CallOptions) ([]Option, error) {
	var opts []Option
	if o.User != "" {
		opts = append(opts, WithUser(o.User))
	}
	if o.BranchSet {
		opts = append(opts, WithBranch(o.Branch))
	}
	for _, b := range o.Bases {
		opts = append(opts, WithBase(b))
	}
	if o.Guard != nil {
		opts = append(opts, WithGuard(*o.Guard))
	}
	if o.Meta != nil {
		opts = append(opts, WithMeta(string(o.Meta)))
	}
	if o.Resolver != wire.ResolverNone {
		r := wire.ResolverFromCode(o.Resolver)
		if r == nil {
			return nil, fmt.Errorf("%w: unknown resolver code %d", ErrBadOptions, o.Resolver)
		}
		opts = append(opts, WithResolver(r))
	}
	return opts, nil
}

// dispatch decodes one request, runs it against the wrapped store and
// returns the response payload. Decode failures — truncated or
// garbage payloads inside intact frames — fail the request, never the
// process: every decoder is bounds-checked by construction. sc is the
// originating connection: the chunk ops scope their GC shields to it,
// so a client that disconnects mid-negotiation releases whatever it
// had protected.
func (s *Server) dispatch(ctx context.Context, sc *serverConn, op uint8, payload []byte) []byte {
	d := wire.NewDec(payload)
	co := wire.DecodeCallOptions(d)
	opts, err := callOptions(co)
	if err == nil {
		err = d.Err()
	}
	if err != nil {
		return errPayload(err, nil, UID{})
	}
	fail := func(err error) []byte { return errPayload(err, nil, UID{}) }
	switch op {
	case wire.OpGet:
		key := d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		o, err := s.st.Get(ctx, key, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeFObject(e, o) })
	case wire.OpPut:
		key := d.Str()
		v, verr := wire.DecodeValue(d)
		if verr == nil {
			verr = d.Err()
		}
		if verr != nil {
			return fail(verr)
		}
		uid, err := s.st.Put(ctx, key, v, opts...)
		if err != nil {
			return errPayload(err, nil, uid)
		}
		return okPayload(func(e *wire.Enc) { e.UID(uid) })
	case wire.OpApply:
		n := d.Count(4)
		b := NewBatch()
		for i := 0; i < n; i++ {
			key := d.Str()
			putOpts, oerr := callOptions(wire.DecodeCallOptions(d))
			v, verr := wire.DecodeValue(d)
			if verr == nil {
				verr = oerr
			}
			if verr == nil {
				verr = d.Err()
			}
			if verr != nil {
				return fail(verr)
			}
			b.Put(key, v, putOpts...)
		}
		if err := d.Err(); err != nil {
			return fail(err)
		}
		uids, err := s.st.Apply(ctx, b, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeUIDs(e, uids) })
	case wire.OpFork:
		key, newBranch := d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := s.st.Fork(ctx, key, newBranch, opts...); err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpMerge:
		key, tgt := d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		uid, conflicts, err := s.st.Merge(ctx, key, tgt, opts...)
		if err != nil {
			return errPayload(err, conflicts, uid)
		}
		return okPayload(func(e *wire.Enc) { e.UID(uid) })
	case wire.OpTrack:
		key := d.Str()
		from, to := int(d.I64()), int(d.I64())
		if err := d.Err(); err != nil {
			return fail(err)
		}
		hist, err := s.st.Track(ctx, key, from, to, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) {
			e.U32(uint32(len(hist)))
			for _, o := range hist {
				wire.EncodeFObject(e, o)
			}
		})
	case wire.OpDiff:
		key := d.Str()
		a, b := d.UID(), d.UID()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		df, err := s.st.Diff(ctx, key, a, b, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeDiff(e, df) })
	case wire.OpListKeys:
		keys, err := s.st.ListKeys(ctx, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) {
			e.U32(uint32(len(keys)))
			for _, k := range keys {
				e.Str(k)
			}
		})
	case wire.OpListBranches:
		key := d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		bl, err := s.st.ListBranches(ctx, key, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) {
			wire.EncodeTaggedBranches(e, bl.Tagged)
			wire.EncodeUIDs(e, bl.Untagged)
		})
	case wire.OpRenameBranch:
		key, br, newName := d.Str(), d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := s.st.RenameBranch(ctx, key, br, newName, opts...); err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpRemoveBranch:
		key, br := d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := s.st.RemoveBranch(ctx, key, br, opts...); err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpPin, wire.OpUnpin:
		key, uid := d.Str(), d.UID()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		var err error
		if op == wire.OpPin {
			err = s.st.Pin(ctx, key, uid, opts...)
		} else {
			err = s.st.Unpin(ctx, key, uid, opts...)
		}
		if err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpGC:
		stats, err := s.st.GC(ctx, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeGCStats(e, stats) })
	case wire.OpValue:
		key, uid := d.Str(), d.UID()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		// Only the user identity applies here: the version is named by
		// uid, and forwarding the caller's branch/base options into the
		// internal Get would redirect it to a different version (or
		// trip ErrBadOptions) — semantics the embedded Value does not
		// have.
		var userOpts []Option
		if co.User != "" {
			userOpts = append(userOpts, WithUser(co.User))
		}
		o, err := s.st.Get(ctx, key, append(userOpts[:len(userOpts):len(userOpts)], WithBase(uid))...)
		if err != nil {
			return fail(err)
		}
		v, err := s.st.Value(ctx, key, o, userOpts...)
		if err != nil {
			return fail(err)
		}
		return okPayload2(func(e *wire.Enc) error { return wire.EncodeValue(e, v) })
	case wire.OpChunkHave, wire.OpChunkWant, wire.OpChunkSend, wire.OpPutChunked:
		cb := s.chunkBack()
		if cb == nil {
			return fail(fmt.Errorf("%w: backend %T does not serve chunk-granular transfer", wire.ErrUnsupported, s.st))
		}
		return s.dispatchChunk(ctx, sc, cb, op, d, co, opts)
	case wire.OpStats:
		type statser interface{ Stats() StoreStats }
		ss, ok := s.st.(statser)
		if !ok {
			return fail(fmt.Errorf("%w: backend %T has no storage counters", wire.ErrUnsupported, s.st))
		}
		stats := ss.Stats()
		return okPayload(func(e *wire.Enc) { wire.EncodeStats(e, stats) })
	}
	return fail(fmt.Errorf("%w: unhandled op %d", wire.ErrCodec, op))
}

// dispatchChunk executes the chunk-granular transfer ops. Three rules
// govern every path here:
//
//  1. Admission is verified: a chunk enters the store only if its
//     bytes hash to the id it was claimed under. A mismatch — or any
//     undecodable chunk in the batch — fails the whole request before
//     anything is admitted, so corrupt uploads cost one request and
//     leave no trace.
//  2. Negotiated chunks are shielded: an id the server reported as
//     present (OpChunkHave) or admitted (OpChunkSend) becomes a
//     transient GC root scoped to this connection, because the client
//     will rely on it when it commits. The matching OpPutChunked
//     releases the shields; a dropped connection releases the rest.
//  3. Access is per key: every chunk op carries the routing key being
//     read or written and runs the same ACL check the materialized op
//     would. Within a granted key, chunk ids act as capabilities —
//     the server cannot cheaply prove a content-addressed chunk
//     "belongs" to a key, and does not try (see README, trust model).
func (s *Server) dispatchChunk(ctx context.Context, sc *serverConn, cb chunkBackend, op uint8, d *wire.Dec, co wire.CallOptions, opts []Option) []byte {
	fail := func(err error) []byte { return errPayload(err, nil, UID{}) }
	cs := cb.chunkStore()
	switch op {
	case wire.OpChunkHave:
		key := d.Str()
		ids := wire.DecodeUIDs(d)
		if err := d.Err(); err != nil {
			return fail(err)
		}
		// Have is the upload negotiation, so it needs write intent —
		// a read-only user learns nothing about what the store holds.
		if err := cb.checkChunkAccess(co.User, key, true); err != nil {
			return fail(err)
		}
		bits := make([]bool, len(ids))
		var present []chunk.ID
		seen := make(map[chunk.ID]bool, len(ids))
		for i, id := range ids {
			if cs.Has(id) {
				bits[i] = true
				if !seen[id] {
					seen[id] = true
					present = append(present, id)
				}
			}
		}
		// The client will skip re-sending these; keep them alive until
		// its commit (or disconnect).
		sc.addShields(cb, present)
		return okPayload(func(e *wire.Enc) { wire.EncodeBitmap(e, bits) })
	case wire.OpChunkWant:
		key := d.Str()
		ids := wire.DecodeUIDs(d)
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := cb.checkChunkAccess(co.User, key, false); err != nil {
			return fail(err)
		}
		// Answer a prefix of the request, stopping before the response
		// would overflow the frame cap; the client re-requests the
		// tail. Half the cap leaves comfortable room for per-chunk
		// framing no matter how the sizes fall.
		budget := wire.MaxPayload(s.opts.MaxFrame) / 2
		var answered []*chunk.Chunk
		total := 0
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				return fail(err)
			}
			c, err := store.GetVerified(cs, id)
			if errors.Is(err, store.ErrNotFound) {
				answered = append(answered, nil)
				continue
			}
			if err != nil {
				return fail(err)
			}
			if total+len(c.Bytes()) > budget && len(answered) > 0 {
				break
			}
			answered = append(answered, c)
			total += len(c.Bytes())
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeWantResponse(e, answered) })
	case wire.OpChunkSend:
		key := d.Str()
		frames := wire.DecodeChunkUpload(d)
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := cb.checkChunkAccess(co.User, key, true); err != nil {
			return fail(err)
		}
		// Verify the whole batch before admitting any of it.
		decoded := make([]*chunk.Chunk, 0, len(frames))
		var ids []chunk.ID
		seen := make(map[chunk.ID]bool, len(frames))
		for _, f := range frames {
			c, err := chunk.Decode(f.Bytes)
			if err != nil {
				return fail(fmt.Errorf("%w: undecodable chunk claimed as %s: %v", store.ErrCorrupt, f.ID.Short(), err))
			}
			if c.ID() != f.ID {
				return fail(fmt.Errorf("%w: chunk claimed as %s hashes to %s", store.ErrCorrupt, f.ID.Short(), c.ID().Short()))
			}
			decoded = append(decoded, c)
			if !seen[c.ID()] {
				seen[c.ID()] = true
				ids = append(ids, c.ID())
			}
		}
		// Shield before Put: a collection sweeping between the Put and
		// the commit must treat these as roots.
		sc.addShields(cb, ids)
		var stored, dups uint32
		for _, c := range decoded {
			dup, err := cs.Put(c)
			if err != nil {
				return fail(err)
			}
			if dup {
				dups++
			} else {
				stored++
			}
		}
		return okPayload(func(e *wire.Enc) {
			e.U32(stored)
			e.U32(dups)
		})
	case wire.OpPutChunked:
		key := d.Str()
		vt := types.Type(d.U8())
		root := d.UID()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		kind, ok := types.KindOfType(vt)
		if !ok {
			return fail(fmt.Errorf("%w: type %v is not chunkable", ErrBadOptions, vt))
		}
		if err := cb.checkChunkAccess(co.User, key, true); err != nil {
			return fail(err)
		}
		// Load derives count and height by walking the root path —
		// trusting the client's claimed shape would let it commit a
		// version whose meta chunk misdescribes the tree.
		tree, err := postree.Load(cs, cb.treeConfig(), kind, root)
		if err != nil {
			return fail(fmt.Errorf("chunked put of %s: %w", root.Short(), err))
		}
		// The tree must be complete before the commit: every index node
		// must decode and every leaf must exist. The walked id set is
		// also exactly what this connection's shields protect for this
		// value, so it doubles as the release list.
		var ids []chunk.ID
		err = tree.WalkChunkIDs(func(id chunk.ID, isLeaf bool) error {
			ids = append(ids, id)
			if isLeaf && !cs.Has(id) {
				return fmt.Errorf("chunked put: leaf %s: %w (upload incomplete)", id.Short(), store.ErrNotFound)
			}
			return nil
		})
		if err != nil {
			// Leave the shields in place: the client can finish the
			// upload and retry; disconnect still releases them.
			return fail(err)
		}
		v, _ := types.AttachValue(vt, tree)
		uid, perr := s.st.Put(ctx, key, v, opts...)
		// Success or failure, the negotiation window is over: on
		// success the new version roots the chunks; on failure the
		// client renegotiates from OpChunkHave, which re-shields.
		sc.dropShields(cb, ids)
		if perr != nil {
			return errPayload(perr, nil, uid)
		}
		return okPayload(func(e *wire.Enc) { e.UID(uid) })
	}
	return fail(fmt.Errorf("%w: unhandled chunk op %d", wire.ErrCodec, op))
}

// okPayload2 is okPayload for encoders that can fail mid-way (value
// materialization reads chunks); the failure downgrades the response
// to an error payload.
func okPayload2(fill func(e *wire.Enc) error) []byte {
	var e wire.Enc
	e.U8(0)
	if err := fill(&e); err != nil {
		return errPayload(err, nil, UID{})
	}
	return e.Bytes()
}
