package forkbase

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"forkbase/internal/wire"
)

// ErrServerClosed is the typed error a draining server answers new
// requests with; in-flight requests still complete. It round-trips to
// clients, so a RemoteStore caller can tell "server going away" from
// a data error and fail over.
var ErrServerClosed = wire.ErrShutdown

// ServerOptions configures NewServer.
type ServerOptions struct {
	// AuthToken, when non-empty, must be presented by every
	// connection's Hello before any request is served. The protocol is
	// plaintext: the token gates accidental cross-talk, it is not a
	// substitute for a trusted network (see README, "Serving over the
	// network").
	AuthToken string
	// MaxFrame caps a single request or response frame in bytes; 0
	// means wire.DefaultMaxFrame (256 MiB). Values a client ships in
	// one Put must fit in one frame.
	MaxFrame int
	// Logf, when set, receives connection-level diagnostics (framing
	// violations, disconnects). Nil discards them.
	Logf func(format string, args ...any)
}

// Server exposes any Store — an embedded *DB, a ClusterClient, even
// another RemoteStore — over the forkbase wire protocol. This is the
// paper's dispatcher made real (§4.1): requests arrive over TCP,
// carry the user identity the access controller checks, and execute
// against the wrapped store with full pipelining — many in-flight
// requests per connection, each answered as it completes.
//
//	srv := forkbase.NewServer(db, forkbase.ServerOptions{})
//	ln, _ := net.Listen("tcp", ":7707")
//	go srv.Serve(ln)
//	...
//	srv.Shutdown(ctx) // graceful: drain in-flight, refuse new work
type Server struct {
	st   Store
	opts ServerOptions

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*serverConn]struct{}
	draining bool
	closed   bool

	inflight sync.WaitGroup // request handlers across all connections
	connWG   sync.WaitGroup // connection read loops
}

// NewServer returns a server over st. The store stays owned by the
// caller: Shutdown/Close never close it, so one store can outlive —
// or be shared by — several listeners.
func NewServer(st Store, opts ServerOptions) *Server {
	return &Server{st: st, opts: opts, conns: make(map[*serverConn]struct{})}
}

// Serve accepts connections on ln until Shutdown or Close. It always
// returns a non-nil error; after a clean Shutdown that error is
// ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	var retryDelay time.Duration
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopped := s.draining || s.closed
			s.mu.Unlock()
			if stopped {
				return ErrServerClosed
			}
			// Transient accept failures (fd exhaustion under load,
			// ECONNABORTED) must not kill a daemon with established
			// clients; back off and retry, the way net/http does.
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if retryDelay == 0 {
					retryDelay = 5 * time.Millisecond
				} else if retryDelay *= 2; retryDelay > time.Second {
					retryDelay = time.Second
				}
				s.logf("forkserved: accept: %v; retrying in %v", err, retryDelay)
				time.Sleep(retryDelay)
				continue
			}
			return err
		}
		retryDelay = 0
		sc := s.newConn(c)
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[sc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go sc.readLoop()
	}
}

// Shutdown drains the server: the listener closes, requests already
// executing run to completion and their responses are flushed, and
// new requests are refused with ErrServerClosed. It returns nil once
// every in-flight request has finished, or ctx.Err() if the drain
// outlives ctx — in which case the remaining work is cut off as Close
// would.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeConns()
	s.connWG.Wait()
	return err
}

// Close stops the server immediately: the listener and every
// connection close, cancelling in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.closeConns()
	s.connWG.Wait()
	return nil
}

func (s *Server) closeConns() {
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.close()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// serverConn is one client connection: a read loop feeding pipelined
// request handlers, a write mutex serializing their response frames,
// and a cancel registry so OpCancel (or the connection dropping)
// aborts exactly the in-flight work it should.
type serverConn struct {
	srv *Server
	c   net.Conn
	br  *bufio.Reader

	ctx    context.Context // cancelled when the connection dies
	cancel context.CancelFunc

	writeMu sync.Mutex

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc
	authed   bool
	closed   bool
}

func (s *Server) newConn(c net.Conn) *serverConn {
	ctx, cancel := context.WithCancel(context.Background())
	return &serverConn{
		srv:      s,
		c:        c,
		br:       bufio.NewReader(c),
		ctx:      ctx,
		cancel:   cancel,
		inflight: make(map[uint64]context.CancelFunc),
	}
}

// close tears the connection down and cancels its in-flight requests.
func (sc *serverConn) close() {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	sc.closed = true
	sc.mu.Unlock()
	sc.cancel() // aborts handlers blocked in ctx-aware walks
	sc.c.Close()
	sc.srv.mu.Lock()
	delete(sc.srv.conns, sc)
	sc.srv.mu.Unlock()
}

// readLoop parses frames until the connection dies. Framing
// violations close this connection only — the stream cannot be
// resynchronized — while well-framed garbage (unknown ops, undecodable
// payloads) is answered with a typed error and the connection lives.
func (sc *serverConn) readLoop() {
	defer sc.srv.connWG.Done()
	defer sc.close()
	for {
		reqID, op, payload, err := wire.ReadFrame(sc.br, sc.srv.opts.MaxFrame)
		if err != nil {
			if !errors.Is(err, io.EOF) && !sc.isClosed() {
				sc.srv.logf("forkserved: %s: %v", sc.c.RemoteAddr(), err)
			}
			return
		}
		switch {
		case op == wire.OpCancel:
			// Abort the named request; no response of its own.
			d := wire.NewDec(payload)
			target := d.U64()
			if d.Err() == nil {
				sc.mu.Lock()
				if cancel := sc.inflight[target]; cancel != nil {
					cancel()
				}
				sc.mu.Unlock()
			}
		case op == wire.OpHello:
			if !sc.hello(reqID, payload) {
				return
			}
		case !sc.isAuthed():
			// Requests before a successful Hello are a protocol
			// violation; refuse and hang up.
			sc.respondErr(reqID, op, fmt.Errorf("%w: hello required before requests", ErrAccessDenied), nil, UID{})
			return
		case !wire.KnownOp(op):
			sc.respondErr(reqID, op, fmt.Errorf("%w: unknown op %d", wire.ErrCodec, op), nil, UID{})
		case !sc.srv.admit():
			sc.respondErr(reqID, op, ErrServerClosed, nil, UID{})
		default:
			// The in-flight slot is held (admit). Register the
			// request's cancel func HERE, on the read loop, before the
			// handler goroutine exists: an OpCancel frame can arrive
			// on this same loop immediately after the request, and a
			// registration done inside the handler would race it —
			// losing the cancel and walking a deep history for a
			// client that already hung up.
			ctx, cancel := context.WithCancel(sc.ctx)
			sc.mu.Lock()
			sc.inflight[reqID] = cancel
			sc.mu.Unlock()
			go sc.handle(ctx, cancel, reqID, op, payload)
		}
	}
}

func (sc *serverConn) isClosed() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.closed
}

func (sc *serverConn) isAuthed() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.authed
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// admit reserves an in-flight slot for a new request unless the
// server is draining. The check and the WaitGroup Add happen under
// the same lock Shutdown takes to set draining, so once Shutdown's
// Wait begins no further Add can slip in — which is both what keeps
// the drain contract (every admitted request finishes and flushes)
// and what makes the Add/Wait pair race-free.
func (s *Server) admit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return false
	}
	s.inflight.Add(1)
	return true
}

// hello performs the version/auth handshake. Returns false when the
// connection must close (bad version or bad token).
func (sc *serverConn) hello(reqID uint64, payload []byte) bool {
	d := wire.NewDec(payload)
	version := d.U32()
	token := d.Str()
	if err := d.Err(); err != nil {
		sc.respondErr(reqID, wire.OpHello, err, nil, UID{})
		return false
	}
	if version != wire.ProtoVersion {
		sc.respondErr(reqID, wire.OpHello,
			fmt.Errorf("%w: protocol version %d, server speaks %d", wire.ErrCodec, version, wire.ProtoVersion), nil, UID{})
		return false
	}
	if sc.srv.opts.AuthToken != "" && token != sc.srv.opts.AuthToken {
		sc.respondErr(reqID, wire.OpHello, fmt.Errorf("%w: bad auth token", ErrAccessDenied), nil, UID{})
		return false
	}
	sc.mu.Lock()
	sc.authed = true
	sc.mu.Unlock()
	var e wire.Enc
	e.U8(0)
	e.Str("forkbase/1")
	sc.write(reqID, wire.OpHello, e.Bytes())
	return true
}

// handle executes one pipelined request on its own goroutine; its
// cancel func was registered by the read loop before spawn.
func (sc *serverConn) handle(ctx context.Context, cancel context.CancelFunc, reqID uint64, op uint8, payload []byte) {
	defer sc.srv.inflight.Done()
	defer func() {
		sc.mu.Lock()
		delete(sc.inflight, reqID)
		sc.mu.Unlock()
		cancel()
	}()
	sc.write(reqID, op, sc.srv.dispatch(ctx, op, payload))
}

func (sc *serverConn) write(reqID uint64, op uint8, payload []byte) {
	if max := wire.MaxPayload(sc.srv.opts.MaxFrame); len(payload) > max {
		// An oversized response frame would make the client drop the
		// whole connection (stream desync), failing its other
		// in-flight requests; downgrade to a typed per-request error.
		payload = errPayload(fmt.Errorf("response of %d bytes exceeds the %d-byte frame cap", len(payload), max), nil, UID{})
	}
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	if err := wire.WriteFrame(sc.c, reqID, op, payload); err != nil {
		// The read loop (or close) will notice; nothing to salvage here.
		sc.srv.logf("forkserved: write to %s: %v", sc.c.RemoteAddr(), err)
	}
}

func (sc *serverConn) respondErr(reqID uint64, op uint8, err error, conflicts []Conflict, uid UID) {
	sc.write(reqID, op, errPayload(err, conflicts, uid))
}

// --- request dispatch -------------------------------------------------

func okPayload(fill func(e *wire.Enc)) []byte {
	var e wire.Enc
	e.U8(0)
	if fill != nil {
		fill(&e)
	}
	return e.Bytes()
}

func errPayload(err error, conflicts []Conflict, uid UID) []byte {
	var e wire.Enc
	e.U8(1)
	wire.EncodeError(&e, err, conflicts, uid)
	return e.Bytes()
}

// callOptions reconstructs the per-call option slice a request's
// CallOptions describe — including WithUser, which is what routes the
// request through the wrapped store's access controller.
func callOptions(o wire.CallOptions) ([]Option, error) {
	var opts []Option
	if o.User != "" {
		opts = append(opts, WithUser(o.User))
	}
	if o.BranchSet {
		opts = append(opts, WithBranch(o.Branch))
	}
	for _, b := range o.Bases {
		opts = append(opts, WithBase(b))
	}
	if o.Guard != nil {
		opts = append(opts, WithGuard(*o.Guard))
	}
	if o.Meta != nil {
		opts = append(opts, WithMeta(string(o.Meta)))
	}
	if o.Resolver != wire.ResolverNone {
		r := wire.ResolverFromCode(o.Resolver)
		if r == nil {
			return nil, fmt.Errorf("%w: unknown resolver code %d", ErrBadOptions, o.Resolver)
		}
		opts = append(opts, WithResolver(r))
	}
	return opts, nil
}

// dispatch decodes one request, runs it against the wrapped store and
// returns the response payload. Decode failures — truncated or
// garbage payloads inside intact frames — fail the request, never the
// process: every decoder is bounds-checked by construction.
func (s *Server) dispatch(ctx context.Context, op uint8, payload []byte) []byte {
	d := wire.NewDec(payload)
	co := wire.DecodeCallOptions(d)
	opts, err := callOptions(co)
	if err == nil {
		err = d.Err()
	}
	if err != nil {
		return errPayload(err, nil, UID{})
	}
	fail := func(err error) []byte { return errPayload(err, nil, UID{}) }
	switch op {
	case wire.OpGet:
		key := d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		o, err := s.st.Get(ctx, key, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeFObject(e, o) })
	case wire.OpPut:
		key := d.Str()
		v, verr := wire.DecodeValue(d)
		if verr == nil {
			verr = d.Err()
		}
		if verr != nil {
			return fail(verr)
		}
		uid, err := s.st.Put(ctx, key, v, opts...)
		if err != nil {
			return errPayload(err, nil, uid)
		}
		return okPayload(func(e *wire.Enc) { e.UID(uid) })
	case wire.OpApply:
		n := d.Count(4)
		b := NewBatch()
		for i := 0; i < n; i++ {
			key := d.Str()
			putOpts, oerr := callOptions(wire.DecodeCallOptions(d))
			v, verr := wire.DecodeValue(d)
			if verr == nil {
				verr = oerr
			}
			if verr == nil {
				verr = d.Err()
			}
			if verr != nil {
				return fail(verr)
			}
			b.Put(key, v, putOpts...)
		}
		if err := d.Err(); err != nil {
			return fail(err)
		}
		uids, err := s.st.Apply(ctx, b, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeUIDs(e, uids) })
	case wire.OpFork:
		key, newBranch := d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := s.st.Fork(ctx, key, newBranch, opts...); err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpMerge:
		key, tgt := d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		uid, conflicts, err := s.st.Merge(ctx, key, tgt, opts...)
		if err != nil {
			return errPayload(err, conflicts, uid)
		}
		return okPayload(func(e *wire.Enc) { e.UID(uid) })
	case wire.OpTrack:
		key := d.Str()
		from, to := int(d.I64()), int(d.I64())
		if err := d.Err(); err != nil {
			return fail(err)
		}
		hist, err := s.st.Track(ctx, key, from, to, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) {
			e.U32(uint32(len(hist)))
			for _, o := range hist {
				wire.EncodeFObject(e, o)
			}
		})
	case wire.OpDiff:
		key := d.Str()
		a, b := d.UID(), d.UID()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		df, err := s.st.Diff(ctx, key, a, b, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeDiff(e, df) })
	case wire.OpListKeys:
		keys, err := s.st.ListKeys(ctx, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) {
			e.U32(uint32(len(keys)))
			for _, k := range keys {
				e.Str(k)
			}
		})
	case wire.OpListBranches:
		key := d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		bl, err := s.st.ListBranches(ctx, key, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) {
			wire.EncodeTaggedBranches(e, bl.Tagged)
			wire.EncodeUIDs(e, bl.Untagged)
		})
	case wire.OpRenameBranch:
		key, br, newName := d.Str(), d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := s.st.RenameBranch(ctx, key, br, newName, opts...); err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpRemoveBranch:
		key, br := d.Str(), d.Str()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if err := s.st.RemoveBranch(ctx, key, br, opts...); err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpPin, wire.OpUnpin:
		key, uid := d.Str(), d.UID()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		var err error
		if op == wire.OpPin {
			err = s.st.Pin(ctx, key, uid, opts...)
		} else {
			err = s.st.Unpin(ctx, key, uid, opts...)
		}
		if err != nil {
			return fail(err)
		}
		return okPayload(nil)
	case wire.OpGC:
		stats, err := s.st.GC(ctx, opts...)
		if err != nil {
			return fail(err)
		}
		return okPayload(func(e *wire.Enc) { wire.EncodeGCStats(e, stats) })
	case wire.OpValue:
		key, uid := d.Str(), d.UID()
		if err := d.Err(); err != nil {
			return fail(err)
		}
		// Only the user identity applies here: the version is named by
		// uid, and forwarding the caller's branch/base options into the
		// internal Get would redirect it to a different version (or
		// trip ErrBadOptions) — semantics the embedded Value does not
		// have.
		var userOpts []Option
		if co.User != "" {
			userOpts = append(userOpts, WithUser(co.User))
		}
		o, err := s.st.Get(ctx, key, append(userOpts[:len(userOpts):len(userOpts)], WithBase(uid))...)
		if err != nil {
			return fail(err)
		}
		v, err := s.st.Value(ctx, key, o, userOpts...)
		if err != nil {
			return fail(err)
		}
		return okPayload2(func(e *wire.Enc) error { return wire.EncodeValue(e, v) })
	case wire.OpStats:
		type statser interface{ Stats() StoreStats }
		ss, ok := s.st.(statser)
		if !ok {
			return fail(fmt.Errorf("%w: backend %T has no storage counters", wire.ErrUnsupported, s.st))
		}
		stats := ss.Stats()
		return okPayload(func(e *wire.Enc) { wire.EncodeStats(e, stats) })
	}
	return fail(fmt.Errorf("%w: unhandled op %d", wire.ErrCodec, op))
}

// okPayload2 is okPayload for encoders that can fail mid-way (value
// materialization reads chunks); the failure downgrades the response
// to an error payload.
func okPayload2(fill func(e *wire.Enc) error) []byte {
	var e wire.Enc
	e.U8(0)
	if err := fill(&e); err != nil {
		return errPayload(err, nil, UID{})
	}
	return e.Bytes()
}
